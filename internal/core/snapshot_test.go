package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/afa"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	doc := []byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`)
	for name, opts := range allOptionCombos() {
		t.Run(name, func(t *testing.T) {
			warm := runningMachine(t, opts)
			if _, err := warm.FilterDocument(doc); err != nil {
				t.Fatal(err)
			}
			warmStates := warm.Stats().BStates
			var buf bytes.Buffer
			if err := warm.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}

			cold := runningMachine(t, opts)
			if err := cold.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if cold.Stats().BStates != warmStates {
				t.Fatalf("restored states = %d, want %d", cold.Stats().BStates, warmStates)
			}
			// The restored machine answers correctly and — crucially —
			// without creating any new states or missing any lookups.
			l0, h0 := cold.Stats().Lookups, cold.Stats().Hits
			got, err := cold.FilterDocument(doc)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != "[0 1]" {
				t.Fatalf("matches = %v", got)
			}
			st := cold.Stats()
			if st.BStates != warmStates {
				t.Errorf("restored machine created states: %d -> %d", warmStates, st.BStates)
			}
			if st.Hits-h0 != st.Lookups-l0 {
				t.Errorf("restored machine missed: %d/%d", st.Hits-h0, st.Lookups-l0)
			}
		})
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	warm := runningMachine(t, Options{})
	if _, err := warm.FilterDocument([]byte(`<a><b>1</b></a>`)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Different workload.
	other := New(compileWorkload(t, "/different[q=1]"), Options{})
	if err := other.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong-workload snapshot must be rejected")
	}
	// Different options.
	td := runningMachine(t, Options{TopDown: true})
	if err := td.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("wrong-options snapshot must be rejected")
	}
}

func TestSnapshotCorruption(t *testing.T) {
	warm := runningMachine(t, Options{})
	if _, err := warm.FilterDocument([]byte(`<a><b>1</b></a>`)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations and bit flips must be rejected, never panic.
	for _, n := range []int{0, 1, 7, 8, 16, len(data) / 2, len(data) - 1} {
		m := runningMachine(t, Options{})
		if err := m.ReadSnapshot(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	for _, pos := range []int{20, len(data) / 2, len(data) - 4} {
		mutated := append([]byte(nil), data...)
		mutated[pos] ^= 0xff
		m := runningMachine(t, Options{})
		if err := m.ReadSnapshot(bytes.NewReader(mutated)); err == nil {
			// A bit flip may land in a state-set payload and still
			// decode structurally; verify such a machine still
			// answers without panicking.
			if _, err := m.FilterDocument([]byte(`<a><b>1</b></a>`)); err != nil {
				t.Errorf("mutated snapshot at %d: %v", pos, err)
			}
		}
	}
	if err := runningMachine(t, Options{}).ReadSnapshot(bytes.NewReader([]byte("garbage stream"))); err == nil {
		t.Error("garbage accepted")
	}
}

// TestSnapshotTrainedMachine: the training + snapshot combination is the
// intended production flow — train once, snapshot, restart warm forever.
func TestSnapshotTrainedMachine(t *testing.T) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, workload.Params{Seed: 77, NumQueries: 200, MeanPreds: 3})
	build := func() *Machine {
		a, err := afa.Compile(filters)
		if err != nil {
			t.Fatal(err)
		}
		return New(a, Options{TopDown: true, Order: ds.DTD.SiblingOrder()})
	}
	trained := build()
	if err := trained.Train(workload.TrainingData(filters, ds.DTD)); err != nil {
		t.Fatal(err)
	}
	data := datagen.NewGenerator(ds, 78).GenerateBytes(128 << 10)
	if err := trained.Run(data); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trained.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := build()
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var a, b []string
	trained.OnDocument = func(m []int32) { a = append(a, fmt.Sprint(m)) }
	restored.OnDocument = func(m []int32) { b = append(b, fmt.Sprint(m)) }
	if err := trained.Run(data); err != nil {
		t.Fatal(err)
	}
	if err := restored.Run(data); err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("doc counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("doc %d: trained %s vs restored %s", i, a[i], b[i])
		}
	}
	st := restored.Stats()
	if st.HitRatio() < 0.99 {
		t.Errorf("restored machine hit ratio %.3f", st.HitRatio())
	}
}
