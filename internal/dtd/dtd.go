// Package dtd parses the subset of XML DTDs needed by the paper's
// optimizations and generators: <!ELEMENT> content models and <!ATTLIST>
// declarations. From a parsed DTD the package derives
//
//   - the sibling partial order a ≺ b of Sec. 5 ("a must precede b whenever
//     a and b are siblings"), which drives the order optimization,
//   - the element/attribute graph used to expand wildcards and descendant
//     axes when generating training data (Sec. 5) and synthetic documents,
//   - recursion detection and a depth estimate (the paper distinguishes the
//     non-recursive Protein DTD, depth 7, from the recursive NASA DTD,
//     depth 8).
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// ContentKind classifies an element's declared content.
type ContentKind uint8

const (
	// Empty is EMPTY content.
	Empty ContentKind = iota
	// Any is ANY content.
	Any
	// PCData is (#PCDATA) text-only content.
	PCData
	// Mixed is (#PCDATA|a|b)* mixed content. The paper's data model
	// excludes mixed content; we parse it but generators refuse it.
	Mixed
	// Children is a regular-expression content model over child elements.
	Children
)

// Rep is a repetition suffix on a content particle.
type Rep uint8

const (
	// One means exactly once (no suffix).
	One Rep = iota
	// Opt is the ? suffix.
	Opt
	// Star is the * suffix.
	Star
	// Plus is the + suffix.
	Plus
)

func (r Rep) String() string {
	switch r {
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	default:
		return ""
	}
}

// ParticleKind classifies a content-model particle.
type ParticleKind uint8

const (
	// NameParticle is a child element name.
	NameParticle ParticleKind = iota
	// SeqParticle is a comma sequence (p1, p2, ...).
	SeqParticle
	// ChoiceParticle is a bar choice (p1 | p2 | ...).
	ChoiceParticle
)

// Particle is a node of a content-model expression.
type Particle struct {
	Kind     ParticleKind
	Name     string // for NameParticle
	Children []*Particle
	Rep      Rep
}

func (p *Particle) String() string {
	var sb strings.Builder
	p.write(&sb)
	return sb.String()
}

func (p *Particle) write(sb *strings.Builder) {
	switch p.Kind {
	case NameParticle:
		sb.WriteString(p.Name)
	default:
		sep := ", "
		if p.Kind == ChoiceParticle {
			sep = " | "
		}
		sb.WriteByte('(')
		for i, c := range p.Children {
			if i > 0 {
				sb.WriteString(sep)
			}
			c.write(sb)
		}
		sb.WriteByte(')')
	}
	sb.WriteString(p.Rep.String())
}

// ContentSpec renders an element's declared content as valid DTD syntax
// (re-parseable by Parse).
func (el *Element) ContentSpec() string {
	switch el.Kind {
	case Empty:
		return "EMPTY"
	case Any:
		return "ANY"
	case PCData:
		return "(#PCDATA)"
	case Mixed:
		return "(#PCDATA|" + strings.Join(el.Mixed, "|") + ")*"
	default:
		s := el.Content.String()
		if !strings.HasPrefix(s, "(") {
			// A bare name particle needs the group parentheses.
			return "(" + s + ")"
		}
		return s
	}
}

// String renders the full <!ELEMENT>/<!ATTLIST> declarations of a DTD; the
// result re-parses to an equivalent DTD.
func (d *DTD) String() string {
	var sb strings.Builder
	for _, name := range d.order {
		el := d.Elements[name]
		fmt.Fprintf(&sb, "<!ELEMENT %s %s>\n", name, el.ContentSpec())
		if len(el.Attrs) > 0 {
			fmt.Fprintf(&sb, "<!ATTLIST %s", name)
			for _, a := range el.Attrs {
				typ := a.Type
				if typ == "ENUM" {
					typ = "(" + strings.Join(a.Enum, "|") + ")"
				}
				def := "#IMPLIED"
				switch {
				case a.Required && a.Default != "":
					def = fmt.Sprintf("#FIXED %q", a.Default)
				case a.Required:
					def = "#REQUIRED"
				case a.Default != "":
					def = fmt.Sprintf("%q", a.Default)
				}
				fmt.Fprintf(&sb, " %s %s %s", a.Name, typ, def)
			}
			sb.WriteString(">\n")
		}
	}
	return sb.String()
}

// Attr is one declared attribute.
type Attr struct {
	Name     string
	Type     string // CDATA, ID, NMTOKEN, or an enumeration "(a|b)"
	Enum     []string
	Required bool
	Default  string
}

// Element is one declared element.
type Element struct {
	Name    string
	Kind    ContentKind
	Content *Particle // set when Kind == Children
	Mixed   []string  // child names when Kind == Mixed
	Attrs   []Attr
}

// DTD is a parsed document type definition.
type DTD struct {
	// Root is the name of the first declared element, the conventional
	// document root for generation purposes.
	Root     string
	Elements map[string]*Element
	order    []string // declaration order
}

// ElementNames returns the declared element names in declaration order.
func (d *DTD) ElementNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Element returns a declared element, or nil.
func (d *DTD) Element(name string) *Element { return d.Elements[name] }

// Error reports a DTD parse failure.
type Error struct {
	Offset int
	Msg    string
}

func (e *Error) Error() string { return fmt.Sprintf("dtd: %s at offset %d", e.Msg, e.Offset) }

// Parse parses a standalone DTD text (the external-subset syntax; the same
// declarations accepted inside <!DOCTYPE x [...]>).
func Parse(text string) (*DTD, error) {
	p := &dtdParser{in: text}
	d := &DTD{Elements: map[string]*Element{}}
	for {
		p.skipMisc()
		if p.pos >= len(p.in) {
			break
		}
		switch {
		case p.consume("<!ELEMENT"):
			if err := p.parseElement(d); err != nil {
				return nil, err
			}
		case p.consume("<!ATTLIST"):
			if err := p.parseAttlist(d); err != nil {
				return nil, err
			}
		case p.consume("<!ENTITY"):
			// Entities are outside our subset: skip to '>'.
			if !p.skipTo('>') {
				return nil, p.errf("unterminated <!ENTITY")
			}
		case p.consume("<!NOTATION"):
			if !p.skipTo('>') {
				return nil, p.errf("unterminated <!NOTATION")
			}
		default:
			return nil, p.errf("expected declaration, got %q", p.peekSnippet())
		}
	}
	if d.Root == "" {
		return nil, p.errf("DTD declares no elements")
	}
	return d, nil
}

// MustParse panics on error; for statically known DTDs.
func MustParse(text string) *DTD {
	d, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return d
}

type dtdParser struct {
	in  string
	pos int
}

func (p *dtdParser) errf(format string, args ...any) error {
	return &Error{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *dtdParser) peekSnippet() string {
	end := p.pos + 20
	if end > len(p.in) {
		end = len(p.in)
	}
	return p.in[p.pos:end]
}

func (p *dtdParser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// skipMisc skips whitespace, comments and processing instructions.
func (p *dtdParser) skipMisc() {
	for {
		p.skipSpace()
		if strings.HasPrefix(p.in[p.pos:], "<!--") {
			i := strings.Index(p.in[p.pos+4:], "-->")
			if i < 0 {
				p.pos = len(p.in)
				return
			}
			p.pos += 4 + i + 3
			continue
		}
		if strings.HasPrefix(p.in[p.pos:], "<?") {
			i := strings.Index(p.in[p.pos+2:], "?>")
			if i < 0 {
				p.pos = len(p.in)
				return
			}
			p.pos += 2 + i + 2
			continue
		}
		return
	}
}

func (p *dtdParser) consume(prefix string) bool {
	if strings.HasPrefix(p.in[p.pos:], prefix) {
		p.pos += len(prefix)
		return true
	}
	return false
}

func (p *dtdParser) skipTo(c byte) bool {
	i := strings.IndexByte(p.in[p.pos:], c)
	if i < 0 {
		p.pos = len(p.in)
		return false
	}
	p.pos += i + 1
	return true
}

func isDTDNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *dtdParser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && isDTDNameChar(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected name")
	}
	return p.in[start:p.pos], nil
}

func (p *dtdParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *dtdParser) parseElement(d *DTD) error {
	name, err := p.name()
	if err != nil {
		return err
	}
	if _, dup := d.Elements[name]; dup {
		return p.errf("element %s declared twice", name)
	}
	el := &Element{Name: name}
	p.skipSpace()
	switch {
	case p.consume("EMPTY"):
		el.Kind = Empty
	case p.consume("ANY"):
		el.Kind = Any
	default:
		if err := p.expect('('); err != nil {
			return err
		}
		p.skipSpace()
		if p.consume("#PCDATA") {
			// (#PCDATA) or (#PCDATA|a|b)*
			p.skipSpace()
			if p.consume(")") {
				p.consume("*") // (#PCDATA)* is legal
				el.Kind = PCData
			} else {
				el.Kind = Mixed
				for {
					if err := p.expect('|'); err != nil {
						return err
					}
					child, err := p.name()
					if err != nil {
						return err
					}
					el.Mixed = append(el.Mixed, child)
					p.skipSpace()
					if p.consume(")") {
						break
					}
				}
				if !p.consume("*") {
					return p.errf("mixed content must end with )*")
				}
			}
		} else {
			el.Kind = Children
			content, err := p.parseGroup()
			if err != nil {
				return err
			}
			el.Content = content
		}
	}
	if err := p.expect('>'); err != nil {
		return err
	}
	d.Elements[name] = el
	d.order = append(d.order, name)
	if d.Root == "" {
		d.Root = name
	}
	return nil
}

// parseGroup parses a parenthesised content particle; the opening '(' has
// been consumed.
func (p *dtdParser) parseGroup() (*Particle, error) {
	var parts []*Particle
	var sep byte
	for {
		p.skipSpace()
		var part *Particle
		if p.consume("(") {
			inner, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			part = inner
		} else {
			name, err := p.name()
			if err != nil {
				return nil, err
			}
			part = &Particle{Kind: NameParticle, Name: name}
		}
		part.Rep = p.rep(part.Rep)
		parts = append(parts, part)
		p.skipSpace()
		if p.pos >= len(p.in) {
			return nil, p.errf("unterminated content group")
		}
		c := p.in[p.pos]
		if c == ')' {
			p.pos++
			break
		}
		if c != ',' && c != '|' {
			return nil, p.errf("expected ',' '|' or ')' in content model")
		}
		if sep == 0 {
			sep = c
		} else if sep != c {
			return nil, p.errf("cannot mix ',' and '|' in one group")
		}
		p.pos++
	}
	var g *Particle
	if len(parts) == 1 && sep == 0 {
		g = parts[0]
	} else if sep == '|' {
		g = &Particle{Kind: ChoiceParticle, Children: parts}
	} else {
		g = &Particle{Kind: SeqParticle, Children: parts}
	}
	g.Rep = p.rep(g.Rep)
	return g, nil
}

// rep consumes an optional repetition suffix; if the particle already has
// one (a single name whose suffix was read inside the group), the outer
// suffix composes conservatively to Star.
func (p *dtdParser) rep(existing Rep) Rep {
	if p.pos >= len(p.in) {
		return existing
	}
	var r Rep
	switch p.in[p.pos] {
	case '?':
		r = Opt
	case '*':
		r = Star
	case '+':
		r = Plus
	default:
		return existing
	}
	p.pos++
	if existing == One {
		return r
	}
	return Star
}

func (p *dtdParser) parseAttlist(d *DTD) error {
	elName, err := p.name()
	if err != nil {
		return err
	}
	el := d.Elements[elName]
	if el == nil {
		// ATTLIST may precede ELEMENT; create a placeholder.
		el = &Element{Name: elName, Kind: Any}
		d.Elements[elName] = el
		d.order = append(d.order, elName)
		if d.Root == "" {
			d.Root = elName
		}
	}
	for {
		p.skipSpace()
		if p.consume(">") {
			return nil
		}
		a := Attr{}
		a.Name, err = p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.consume("(") {
			a.Type = "ENUM"
			for {
				v, err := p.name()
				if err != nil {
					return err
				}
				a.Enum = append(a.Enum, v)
				p.skipSpace()
				if p.consume(")") {
					break
				}
				if err := p.expect('|'); err != nil {
					return err
				}
			}
		} else {
			a.Type, err = p.name()
			if err != nil {
				return err
			}
		}
		p.skipSpace()
		switch {
		case p.consume("#REQUIRED"):
			a.Required = true
		case p.consume("#IMPLIED"):
		case p.consume("#FIXED"):
			def, err := p.quoted()
			if err != nil {
				return err
			}
			a.Default = def
			a.Required = true
		default:
			def, err := p.quoted()
			if err != nil {
				return err
			}
			a.Default = def
		}
		el.Attrs = append(el.Attrs, a)
	}
}

func (p *dtdParser) quoted() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '"' && p.in[p.pos] != '\'' {
		return "", p.errf("expected quoted default value")
	}
	q := p.in[p.pos]
	p.pos++
	i := strings.IndexByte(p.in[p.pos:], q)
	if i < 0 {
		return "", p.errf("unterminated default value")
	}
	s := p.in[p.pos : p.pos+i]
	p.pos += i + 1
	return s, nil
}

// childNames returns the set of element names reachable as direct children.
func (el *Element) childNames() []string {
	switch el.Kind {
	case Mixed:
		out := make([]string, len(el.Mixed))
		copy(out, el.Mixed)
		return out
	case Children:
		seen := map[string]bool{}
		var out []string
		var walk func(*Particle)
		walk = func(q *Particle) {
			if q.Kind == NameParticle {
				if !seen[q.Name] {
					seen[q.Name] = true
					out = append(out, q.Name)
				}
				return
			}
			for _, c := range q.Children {
				walk(c)
			}
		}
		walk(el.Content)
		sort.Strings(out)
		return out
	default:
		return nil
	}
}

// Children returns the possible direct child element names of an element.
func (d *DTD) Children(name string) []string {
	el := d.Elements[name]
	if el == nil {
		return nil
	}
	if el.Kind == Any {
		return d.ElementNames()
	}
	return el.childNames()
}

// HasText reports whether an element may directly contain character data.
func (d *DTD) HasText(name string) bool {
	el := d.Elements[name]
	return el != nil && (el.Kind == PCData || el.Kind == Mixed || el.Kind == Any)
}

// IsRecursive reports whether some element can (transitively) contain
// itself.
func (d *DTD) IsRecursive() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(n string) bool {
		switch color[n] {
		case gray:
			return true
		case black:
			return false
		}
		color[n] = gray
		for _, c := range d.Children(n) {
			if d.Elements[c] != nil && visit(c) {
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range d.order {
		if visit(n) {
			return true
		}
	}
	return false
}

// MaxDepth returns the maximum element nesting depth from the root, counting
// the root as depth 1. Recursive DTDs return the supplied cap.
func (d *DTD) MaxDepth(cap int) int {
	memo := map[string]int{}
	onPath := map[string]bool{}
	var depth func(string) int
	depth = func(n string) int {
		if onPath[n] {
			return cap // recursion: report the cap
		}
		if v, ok := memo[n]; ok {
			return v
		}
		onPath[n] = true
		best := 1
		for _, c := range d.Children(n) {
			if d.Elements[c] == nil {
				continue
			}
			dc := depth(c) + 1
			if dc > best {
				best = dc
			}
			if best >= cap {
				best = cap
				break
			}
		}
		onPath[n] = false
		memo[n] = best
		return best
	}
	if d.Root == "" {
		return 0
	}
	return depth(d.Root)
}
