package load

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"strings"
)

// BenchPhase is one phase of a run rendered for the BENCH_PR*.json
// trajectory: flat numeric keys (microseconds) so shell gates can extract
// a quantile with grep/awk, matching how scripts/bench_gate.sh reads the
// other trajectory files.
type BenchPhase struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`

	Seconds      float64 `json:"seconds"`
	TargetRate   float64 `json:"target_rate_per_sec"`
	AchievedRate float64 `json:"achieved_rate_per_sec"`

	Published         uint64 `json:"published"`
	AckErrors         uint64 `json:"ack_errors"`
	Deliveries        uint64 `json:"deliveries"`
	DurableDeliveries uint64 `json:"durable_deliveries"`
	ChurnOps          uint64 `json:"churn_ops"`
	Reconnects        uint64 `json:"reconnects"`
	Errors            uint64 `json:"errors"`

	MaxSchedLagMs float64 `json:"max_sched_lag_ms"`

	PubAckP50Us  float64 `json:"pub_ack_p50_us"`
	PubAckP99Us  float64 `json:"pub_ack_p99_us"`
	PubAckP999Us float64 `json:"pub_ack_p999_us"`
	PubAckMaxUs  float64 `json:"pub_ack_max_us"`

	DeliveryP50Us  float64 `json:"delivery_p50_us"`
	DeliveryP90Us  float64 `json:"delivery_p90_us"`
	DeliveryP99Us  float64 `json:"delivery_p99_us"`
	DeliveryP999Us float64 `json:"delivery_p999_us"`
	DeliveryMaxUs  float64 `json:"delivery_max_us"`
}

// BenchWorkload summarizes the spec inside the report so a trajectory file
// is self-describing.
type BenchWorkload struct {
	Name         string  `json:"name"`
	Seed         int64   `json:"seed"`
	Dataset      string  `json:"dataset"`
	Subscribers  int     `json:"subscribers"`
	Filters      int     `json:"filters"`
	Popularity   string  `json:"popularity"`
	ZipfTheta    float64 `json:"zipf_theta,omitempty"`
	DurableRatio float64 `json:"durable_ratio"`
	DocSizes     string  `json:"doc_sizes"`
	Rate         float64 `json:"rate_per_sec"`
	Connections  int     `json:"connections"`
	DurableConns int     `json:"durable_connections"`
}

// BenchReport is the top-level document, shaped like the repo's
// BENCH_PR*.json files ({title, command, cpu, goos, goarch, benchmarks}).
type BenchReport struct {
	Title      string        `json:"title"`
	Command    string        `json:"command"`
	CPU        string        `json:"cpu,omitempty"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Workload   BenchWorkload `json:"workload"`
	Benchmarks []BenchPhase  `json:"benchmarks"`
}

// BenchReport renders the run in trajectory form. Title and command label
// the run the way the hand-written trajectory files do.
func (r *Result) BenchReport(title, command string) *BenchReport {
	rep := &BenchReport{
		Title:   title,
		Command: command,
		CPU:     cpuModel(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Workload: BenchWorkload{
			Name:         r.Spec.Name,
			Seed:         r.Spec.Seed,
			Dataset:      r.Spec.Dataset,
			Subscribers:  r.Spec.Subscribers,
			Filters:      r.Spec.Filters,
			Popularity:   r.Spec.Popularity,
			ZipfTheta:    r.Spec.ZipfTheta,
			DurableRatio: r.Spec.DurableRatio,
			DocSizes:     SizeMixString(r.Spec.DocSizes),
			Rate:         r.Spec.Rate,
			Connections:  r.Spec.Connections,
			DurableConns: r.Spec.DurableConnections,
		},
	}
	for _, ph := range r.Phases {
		note := ""
		if ph.MaxSchedLagMs > 100 {
			note = "generator fell behind its arrival schedule; latencies include scheduler lag"
		}
		rep.Benchmarks = append(rep.Benchmarks, BenchPhase{
			Name:              "xpushload/" + r.Spec.Name + "/" + ph.Name,
			Note:              note,
			Seconds:           ph.Seconds,
			TargetRate:        ph.TargetRate,
			AchievedRate:      ph.AchievedRate,
			Published:         ph.Published,
			AckErrors:         ph.AckErrors,
			Deliveries:        ph.Deliveries,
			DurableDeliveries: ph.DurableDeliveries,
			ChurnOps:          ph.ChurnOps,
			Reconnects:        ph.Reconnects,
			Errors:            ph.Errors,
			MaxSchedLagMs:     ph.MaxSchedLagMs,
			PubAckP50Us:       us(ph.PubAck.P50),
			PubAckP99Us:       us(ph.PubAck.P99),
			PubAckP999Us:      us(ph.PubAck.P999),
			PubAckMaxUs:       us(ph.PubAck.Max),
			DeliveryP50Us:     us(ph.Delivery.P50),
			DeliveryP90Us:     us(ph.Delivery.P90),
			DeliveryP99Us:     us(ph.Delivery.P99),
			DeliveryP999Us:    us(ph.Delivery.P999),
			DeliveryMaxUs:     us(ph.Delivery.Max),
		})
	}
	return rep
}

// WriteJSON writes the report indented, trailing newline included.
func (b *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

func us(d interface{ Nanoseconds() int64 }) float64 {
	return float64(d.Nanoseconds()) / 1e3
}

// cpuModel best-effort reads the CPU model name (Linux /proc/cpuinfo).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
