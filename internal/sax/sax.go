// Package sax provides the modified SAX event model of Sec. 2 of the paper
// and two streaming XML parsers that produce it: a hand-written Scanner (the
// paper's "faster parser") and a reference parser built on encoding/xml
// (standing in for the Apache parser the paper compares against).
//
// The event model has five event types:
//
//	startDocument()
//	startElement(a)
//	text(s)
//	endElement(a)
//	endDocument()
//
// Attributes are treated like elements, per the paper: an attribute c="3" on
// element a is delivered as startElement(@c), text(3), endElement(@c),
// immediately after startElement(a) and before any of a's content. Attribute
// event names carry the "@" prefix.
package sax

import (
	"fmt"
	"strings"
)

// EventKind identifies one of the five SAX event types.
type EventKind uint8

const (
	// StartDocument opens a document.
	StartDocument EventKind = iota
	// StartElement opens an element or attribute (name has "@" prefix).
	StartElement
	// Text delivers character data (of an element or attribute value).
	Text
	// EndElement closes an element or attribute.
	EndElement
	// EndDocument closes a document.
	EndDocument
)

func (k EventKind) String() string {
	switch k {
	case StartDocument:
		return "startDocument"
	case StartElement:
		return "startElement"
	case Text:
		return "text"
	case EndElement:
		return "endElement"
	case EndDocument:
		return "endDocument"
	default:
		return "event(?)"
	}
}

// Event is one parsed SAX event.
type Event struct {
	Kind EventKind
	// Name is the element label for StartElement/EndElement; attribute
	// labels are prefixed with '@'.
	Name string
	// Data is the character data for Text events.
	Data string
}

func (e Event) String() string {
	switch e.Kind {
	case StartElement, EndElement:
		return fmt.Sprintf("%s(%s)", e.Kind, e.Name)
	case Text:
		return fmt.Sprintf("text(%q)", e.Data)
	default:
		return e.Kind.String()
	}
}

// Handler receives SAX events. It mirrors the five call-back functions of
// Fig. 2 of the paper.
type Handler interface {
	StartDocument()
	StartElement(name string)
	Text(data string)
	EndElement(name string)
	EndDocument()
}

// IsAttr reports whether an event name denotes an attribute pseudo-element.
func IsAttr(name string) bool { return len(name) > 0 && name[0] == '@' }

// EscapeText escapes character data for embedding in XML element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

// EscapeAttr escapes an attribute value for embedding in a double-quoted
// attribute.
func EscapeAttr(s string) string {
	s = EscapeText(s)
	if strings.ContainsRune(s, '"') {
		s = strings.ReplaceAll(s, `"`, "&quot;")
	}
	return s
}

// ParseError reports a malformed-XML failure with a byte offset.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: %s at offset %d", e.Msg, e.Offset)
}

// Drive feeds a sequence of events to a handler.
func Drive(events []Event, h Handler) {
	for _, e := range events {
		switch e.Kind {
		case StartDocument:
			h.StartDocument()
		case StartElement:
			h.StartElement(e.Name)
		case Text:
			h.Text(e.Data)
		case EndElement:
			h.EndElement(e.Name)
		case EndDocument:
			h.EndDocument()
		}
	}
}

// Collector is a Handler that records the events it receives: used by the
// sharded engine to parse each document once, and in tests for differential
// comparison of parsers.
type Collector struct {
	Events []Event
}

// Reset drops recorded events, retaining capacity for reuse across
// documents.
func (c *Collector) Reset() { c.Events = c.Events[:0] }

// StartDocument implements Handler.
func (c *Collector) StartDocument() {
	c.Events = append(c.Events, Event{Kind: StartDocument})
}

// StartElement implements Handler.
func (c *Collector) StartElement(name string) {
	c.Events = append(c.Events, Event{Kind: StartElement, Name: name})
}

// Text implements Handler.
func (c *Collector) Text(data string) {
	c.Events = append(c.Events, Event{Kind: Text, Data: data})
}

// EndElement implements Handler.
func (c *Collector) EndElement(name string) {
	c.Events = append(c.Events, Event{Kind: EndElement, Name: name})
}

// EndDocument implements Handler.
func (c *Collector) EndDocument() {
	c.Events = append(c.Events, Event{Kind: EndDocument})
}
