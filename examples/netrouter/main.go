// Netrouter: XML packet routing over TCP — the mesh-based content routing
// application the paper cites as a driver for XML stream processing. The
// demo is a thin consumer of the repro/server broker and repro/client
// connection: subscribers register XPath filters over the framed protocol,
// a producer publishes XML packets, and the broker forwards each packet to
// every subscriber whose filter matches. Subscriptions land while traffic
// flows: the broker inserts them as copy-on-write machine layers (the
// paper's layered-machine update path) without discarding warm state.
//
// Slow subscribers are handled by the broker's backpressure policy instead
// of a silent drop: this demo runs the lossless "block" policy, and the
// scraped xpushserve_dropped_total counter proves no delivery was lost.
//
// The demo runs the broker, three subscribers, and a producer in one
// process over real loopback TCP. The broker serves GET /metrics
// (Prometheus text — filter-latency and delivery-latency quantiles,
// documents/events/bytes, warm-machine hit ratio, per-policy drop counters)
// and GET /healthz on a second loopback port; the demo scrapes it at the
// end to show the machine warming up, then shuts the broker down
// gracefully so every queued delivery is flushed before exit.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/server"
)

// subscriber connects, registers filters, and counts received packets until
// the broker closes the connection (at drain time).
type subscriber struct {
	name  string
	conn  *client.Client
	count atomic.Int64
}

func newSubscriber(addr, name string, filters []string) *subscriber {
	s := &subscriber{name: name}
	conn, err := client.Dial(addr, client.Options{
		Timeout:   5 * time.Second,
		OnDeliver: func(d client.Delivery) { s.count.Add(1) },
	})
	if err != nil {
		log.Fatal(err)
	}
	s.conn = conn
	for _, f := range filters {
		if _, err := conn.Subscribe(f); err != nil {
			log.Fatalf("%s: subscribe %q: %v", name, f, err)
		}
	}
	return s
}

func main() {
	broker, err := server.New(server.Config{
		MetricsAddr: "127.0.0.1:0",
		Policy:      server.Block, // lossless: a slow subscriber stalls the publisher, nothing is dropped
		QueueDepth:  128,
	})
	if err != nil {
		log.Fatal(err)
	}

	subs := []*subscriber{
		newSubscriber(broker.Addr(), "alerts", []string{
			`//order[total > 1000]`,
			`//order[@priority = "high"]`,
		}),
		newSubscriber(broker.Addr(), "eu-desk", []string{
			`//order[customer/country != "US"]`,
		}),
		newSubscriber(broker.Addr(), "audit", []string{
			`//order`,
		}),
	}

	// Producer: publish packets over its own connection. The first round is
	// shown packet by packet; then the same traffic repeats so the lazy
	// machine warms up and the scraped window hit ratio climbs (the live
	// view of the paper's Fig. 8).
	producer, err := client.Dial(broker.Addr(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	packets := []string{
		`<order id="1" priority="high"><customer><country>US</country></customer><total>40</total></order>`,
		`<order id="2" priority="low"><customer><country>DE</country></customer><total>2500</total></order>`,
		`<order id="3" priority="low"><customer><country>US</country></customer><total>10</total></order>`,
		`<note>not an order</note>`,
	}
	const rounds = 25
	published := 0
	for round := 0; round < rounds; round++ {
		for _, p := range packets {
			n, err := producer.Publish([]byte(p))
			if err != nil {
				log.Fatal(err)
			}
			published++
			if round == 0 {
				fmt.Printf("published order -> broker says: %d match(es)\n", n)
			}
		}
	}
	fmt.Printf("... and %d more packets to warm the machine\n", published-len(packets))
	producer.Close()

	// Scrape the broker's Prometheus endpoint while it is still serving.
	fmt.Printf("\nscraping http://%s/metrics:\n", broker.MetricsAddr())
	for _, line := range scrapeMetrics(broker.MetricsAddr()) {
		fmt.Println(" ", line)
	}

	// Graceful drain: every queued delivery is flushed, then subscriber
	// connections are closed.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := broker.Shutdown(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	for _, s := range subs {
		<-s.conn.Done()
	}

	fmt.Println("\npackets received per subscriber:")
	for _, name := range []string{"alerts", "audit", "eu-desk"} {
		for _, s := range subs {
			if s.name == name {
				fmt.Printf("  %-8s %d\n", name, s.count.Load())
			}
		}
	}
}

// scrapeMetrics fetches /metrics and returns the headline series: latency
// quantiles, stream totals, hit ratios, and broker counters.
func scrapeMetrics(addr string) []string {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "xpush_filter_latency_seconds{"),
			strings.HasPrefix(line, "xpush_filter_latency_seconds_max"),
			strings.HasPrefix(line, "xpush_documents_total"),
			strings.HasPrefix(line, "xpush_events_total"),
			strings.HasPrefix(line, "xpush_bytes_total"),
			strings.HasPrefix(line, "xpush_hit_ratio"),
			strings.HasPrefix(line, "xpush_window_hit_ratio"),
			strings.HasPrefix(line, "xpushserve_publishes_total"),
			strings.HasPrefix(line, "xpushserve_deliveries_total"),
			strings.HasPrefix(line, "xpushserve_dropped_total"),
			strings.HasPrefix(line, "xpushserve_subscriptions"),
			strings.HasPrefix(line, "xpushserve_delivery_latency_seconds{"):
			lines = append(lines, line)
		}
	}
	return lines
}
