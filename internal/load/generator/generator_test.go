package generator

import (
	"testing"
)

// drawn collects n draws from a generator.
func drawn(g Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// TestSeededDeterminism pins the reproducibility contract: same parameters
// and seed, same sequence — across every distribution.
func TestSeededDeterminism(t *testing.T) {
	build := map[string]func() Generator{
		"uniform":    func() Generator { return NewUniform(1000, 42) },
		"zipfian":    func() Generator { return NewZipfian(1000, 0.99, 42) },
		"latest":     func() Generator { return NewLatest(1000, 0.99, 42) },
		"sequential": func() Generator { return NewSequential(1000) },
	}
	for name, mk := range build {
		a, b := drawn(mk(), 5000), drawn(mk(), 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: sequences diverge at %d: %d vs %d", name, i, a[i], b[i])
			}
		}
	}
	// And a different seed must give a different sequence (not for
	// sequential, which is seedless by design).
	a, b := drawn(NewZipfian(1000, 0.99, 1), 1000), drawn(NewZipfian(1000, 0.99, 2), 1000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("zipfian: different seeds produced identical sequences")
	}
}

// TestBounds checks every distribution stays in [0, n).
func TestBounds(t *testing.T) {
	gens := []Generator{
		NewUniform(17, 7),
		NewZipfian(17, 0.99, 7),
		NewLatest(17, 0.99, 7),
		NewSequential(17),
	}
	for _, g := range gens {
		for i := 0; i < 10000; i++ {
			v := g.Next()
			if v < 0 || v >= 17 {
				t.Fatalf("%T: draw %d out of [0,17)", g, v)
			}
		}
	}
}

// TestZipfianHeadMass checks the distribution's shape: with theta=0.99 over
// 1000 items, the top 1% of items must receive a dominant share of draws
// (analytically ~36%; assert a loose floor so the test is robust) and vastly
// more than the uniform 1%.
func TestZipfianHeadMass(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipfian(n, 0.99, 123)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	head := 0
	for i := 0; i < n/100; i++ {
		head += counts[i]
	}
	frac := float64(head) / draws
	if frac < 0.25 {
		t.Fatalf("zipfian head mass: top 1%% of items drew %.1f%% of traffic, want >= 25%%", 100*frac)
	}
	// Rank ordering: item 0 must beat the median-rank item decisively.
	if counts[0] <= counts[n/2]*10 {
		t.Fatalf("zipfian rank order: head item %d draws vs mid item %d", counts[0], counts[n/2])
	}
}

// TestUniformIsFlat guards against a skewed "uniform": no item may draw
// more than 3x its fair share over a large sample.
func TestUniformIsFlat(t *testing.T) {
	const n, draws = 100, 100000
	u := NewUniform(n, 99)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[u.Next()]++
	}
	for i, c := range counts {
		if c > 3*draws/n {
			t.Fatalf("uniform: item %d drew %d of %d (fair share %d)", i, c, draws, draws/n)
		}
	}
}

// TestLatestRecencyBias checks the "latest" shape: draws concentrate on the
// recency frontier, and follow it when it moves.
func TestLatestRecencyBias(t *testing.T) {
	const n, draws = 1000, 100000
	l := NewLatest(n, 0.99, 7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[l.Next()]++
	}
	// The newest 1% of items (indexes n-10..n-1) must dominate.
	recent := 0
	for i := n - 10; i < n; i++ {
		recent += counts[i]
	}
	if frac := float64(recent) / draws; frac < 0.25 {
		t.Fatalf("latest recency bias: newest 1%% drew %.1f%%, want >= 25%%", 100*frac)
	}
	// Move the frontier to the middle; the hot spot must follow.
	l.Insert(n / 2)
	counts = make([]int, n)
	for i := 0; i < draws; i++ {
		counts[l.Next()]++
	}
	if counts[n/2] < counts[n-1] {
		t.Fatalf("latest frontier moved to %d but old head still hotter: %d vs %d",
			n/2, counts[n-1], counts[n/2])
	}
}

// TestSequentialCycles pins the round-robin order.
func TestSequentialCycles(t *testing.T) {
	s := NewSequential(3)
	want := []int64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("sequential draw %d = %d, want %d", i, got, w)
		}
	}
}

// TestNewByName covers the name dispatcher.
func TestNewByName(t *testing.T) {
	for _, name := range []string{"uniform", "zipfian", "latest", "sequential", ""} {
		g, err := New(name, 10, 0, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.N() != 10 {
			t.Fatalf("New(%q).N() = %d", name, g.N())
		}
	}
	if _, err := New("gaussian", 10, 0, 1); err == nil {
		t.Fatal("New(gaussian) should fail")
	}
}
