package xpath

import (
	"repro/internal/xmlval"
)

// Parse parses a top-level XPath filter (the P production: /E or //E).
func Parse(input string) (*Filter, error) {
	p := &parser{lex: lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var first Axis
	switch p.tok.kind {
	case tokSlash:
		first = Child
	case tokDblSlash:
		first = Descendant
	default:
		return nil, p.lex.errf(p.tok.pos, "filter must start with / or //, got %s", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	path, err := p.parseSteps(first)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errf(p.tok.pos, "unexpected %s after filter", p.tok.kind)
	}
	return &Filter{Path: path, Source: input}, nil
}

// MustParse is Parse for statically known inputs; it panics on error.
func MustParse(input string) *Filter {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// parseSteps parses a step sequence whose first step uses the given axis.
// The current token must be the first step's node test.
func (p *parser) parseSteps(first Axis) (*Path, error) {
	path := &Path{}
	axis := first
	for {
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		switch p.tok.kind {
		case tokSlash:
			axis = Child
		case tokDblSlash:
			axis = Descendant
		default:
			if err := validatePath(p, path); err != nil {
				return nil, err
			}
			return path, nil
		}
		prev := path.Steps[len(path.Steps)-1]
		if prev.Test.Kind == Text || prev.Test.IsAttribute() {
			return nil, p.lex.errf(p.tok.pos, "no step may follow %s", prev.Test)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func validatePath(p *parser, path *Path) error {
	for i := range path.Steps {
		s := &path.Steps[i]
		if (s.Test.Kind == Text || s.Test.Kind == Self) && len(s.Preds) > 0 {
			return p.lex.errf(p.tok.pos, "predicates not allowed on %s", s.Test)
		}
	}
	return nil
}

// parseStep parses one node test plus trailing [Q] predicates.
func (p *parser) parseStep(axis Axis) (Step, error) {
	step := Step{Axis: axis}
	switch p.tok.kind {
	case tokStar:
		step.Test = NodeTest{Kind: AnyElement}
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokDot:
		step.Test = NodeTest{Kind: Self}
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokAt:
		if err := p.advance(); err != nil {
			return step, err
		}
		switch p.tok.kind {
		case tokStar:
			step.Test = NodeTest{Kind: AnyAttribute}
		case tokName:
			step.Test = NodeTest{Kind: Attribute, Name: p.tok.text}
		default:
			return step, p.lex.errf(p.tok.pos, "expected attribute name or * after @, got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokName:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return step, err
		}
		if name == "text" && p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return step, err
			}
			if p.tok.kind != tokRParen {
				return step, p.lex.errf(p.tok.pos, "expected ) after text(")
			}
			if err := p.advance(); err != nil {
				return step, err
			}
			step.Test = NodeTest{Kind: Text}
		} else {
			step.Test = NodeTest{Kind: Element, Name: name}
		}
	default:
		return step, p.lex.errf(p.tok.pos, "expected node test, got %s", p.tok.kind)
	}
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return step, err
		}
		q, err := p.parseOr()
		if err != nil {
			return step, err
		}
		if p.tok.kind != tokRBracket {
			return step, p.lex.errf(p.tok.pos, "expected ], got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return step, err
		}
		step.Preds = append(step.Preds, q)
	}
	return step, nil
}

// parseOr parses Q ::= Q or Q at the lowest precedence.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		q, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.lex.errf(p.tok.pos, "expected ), got %s", p.tok.kind)
		}
		return q, p.advance()
	case tokName:
		// not/contains/starts-with are functions only when followed by
		// an opening paren; otherwise they are ordinary labels.
		if p.followedByParen() {
			switch p.tok.text {
			case "not":
				return p.parseNot()
			case "contains":
				return p.parseStringFunc(xmlval.OpContains)
			case "starts-with":
				return p.parseStringFunc(xmlval.OpStartsWith)
			}
		}
	}
	return p.parseComparison()
}

// followedByParen peeks past the current token for a '(' without consuming.
func (p *parser) followedByParen() bool {
	save := p.lex.pos
	t, err := p.lex.next()
	p.lex.pos = save
	return err == nil && t.kind == tokLParen
}

func (p *parser) parseNot() (Expr, error) {
	if err := p.advance(); err != nil { // consume 'not'
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, p.lex.errf(p.tok.pos, "expected ( after not")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokRParen {
		return nil, p.lex.errf(p.tok.pos, "expected ) closing not(...)")
	}
	return &Not{X: q}, p.advance()
}

func (p *parser) parseStringFunc(op xmlval.Op) (Expr, error) {
	if err := p.advance(); err != nil { // consume function name
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, p.lex.errf(p.tok.pos, "expected ( after %s", op)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	path, err := p.parseRelativePath()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokComma {
		return nil, p.lex.errf(p.tok.pos, "expected , in %s(...)", op)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokString {
		return nil, p.lex.errf(p.tok.pos, "%s requires a string literal", op)
	}
	c := xmlval.StringConst(p.tok.text)
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRParen {
		return nil, p.lex.errf(p.tok.pos, "expected ) closing %s(...)", op)
	}
	return &Cmp{Path: path, Op: op, Const: c}, p.advance()
}

// parseComparison parses E or E Oprel Const.
func (p *parser) parseComparison() (Expr, error) {
	path, err := p.parseRelativePath()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return &Exists{Path: path}, nil
	}
	var op xmlval.Op
	switch p.tok.text {
	case "=":
		op = xmlval.OpEq
	case "!=":
		op = xmlval.OpNe
	case "<":
		op = xmlval.OpLt
	case "<=":
		op = xmlval.OpLe
	case ">":
		op = xmlval.OpGt
	case ">=":
		op = xmlval.OpGe
	default:
		return nil, p.lex.errf(p.tok.pos, "unknown operator %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var c xmlval.Const
	switch p.tok.kind {
	case tokNumber:
		c = xmlval.NumberConst(p.tok.num)
	case tokString:
		c = xmlval.StringConst(p.tok.text)
	default:
		return nil, p.lex.errf(p.tok.pos, "expected constant after %s, got %s", op, p.tok.kind)
	}
	return &Cmp{Path: path, Op: op, Const: c}, p.advance()
}

// parseRelativePath parses a relative path inside a predicate: E forms such
// as b/text(), .//a[@c>2], @c, ., * . A leading self step that is followed
// by further steps is normalised away (./x ≡ x, .//x ≡ descendant x).
func (p *parser) parseRelativePath() (*Path, error) {
	axis := Child
	if p.tok.kind == tokDot {
		// Could be a bare self path or a ./ or .// prefix.
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokSlash:
			axis = Child
		case tokDblSlash:
			axis = Descendant
		default:
			return &Path{Steps: []Step{{Axis: Child, Test: NodeTest{Kind: Self}}}}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return p.parseSteps(axis)
}
