// Package xmlval defines the ordered domain of atomic data values V used by
// the XPath fragment of the paper (Sec. 2). The paper fixes V = int or
// V = string; we support both simultaneously: every textual value carries its
// string form and, when it parses as an integer or decimal, a numeric form.
//
// Comparison follows the convention used throughout the paper's examples:
// a predicate with a numeric constant compares numerically (and is false on
// non-numeric text), while a predicate with a string constant compares
// lexicographically on the raw text.
package xmlval

import (
	"bytes"
	"strconv"
	"strings"
	"unsafe"
)

// Kind discriminates the two constant domains of the XPath fragment.
type Kind uint8

const (
	// String constants compare lexicographically.
	String Kind = iota
	// Number constants compare numerically.
	Number
)

func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Number:
		return "number"
	default:
		return "kind(?)"
	}
}

// Value is a data value from the stream: the text of a text node or
// attribute. It memoizes whether the text parses as a number.
type Value struct {
	Text    string
	Num     float64
	IsNum   bool
	trimmed string
}

// New builds a Value from raw text. Leading and trailing XML whitespace is
// ignored for numeric interpretation but preserved in Text.
func New(text string) Value {
	t := strings.TrimSpace(text)
	v := Value{Text: text, trimmed: t}
	if n, ok := parseNum(t); ok {
		v.Num = n
		v.IsNum = true
	}
	return v
}

// NewBytes builds a Value whose string fields are zero-copy views of the
// byte slice. The Value borrows the buffer: it is only valid until the
// caller mutates or recycles the slice, so it must be consumed immediately
// (the machine's per-event predicate evaluation does exactly that). Callers
// that retain the Value must use New(string(text)) instead.
func NewBytes(text []byte) Value {
	t := byteView(bytes.TrimSpace(text))
	v := Value{Text: byteView(text), trimmed: t}
	if n, ok := parseNum(t); ok {
		v.Num = n
		v.IsNum = true
	}
	return v
}

// byteView reinterprets a byte slice as a string without copying. The result
// aliases b's storage and must not outlive it.
func byteView(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// FromNumber builds a numeric Value.
func FromNumber(n float64) Value {
	s := strconv.FormatFloat(n, 'g', -1, 64)
	return Value{Text: s, trimmed: s, Num: n, IsNum: true}
}

// Trimmed returns the whitespace-trimmed text form.
func (v Value) Trimmed() string { return v.trimmed }

func parseNum(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	// Fast path rejection: must start with digit, sign, or dot.
	c := s[0]
	if c != '-' && c != '+' && c != '.' && (c < '0' || c > '9') {
		return 0, false
	}
	// strconv.ParseFloat allocates a *NumError on failure, which would put
	// an allocation on the hot path for every non-numeric text node that
	// happens to start with a digit ("3rd", "12-31", ...). Pre-validate
	// with a strict decimal grammar so ParseFloat is only called on input
	// it accepts; inputs using ParseFloat's extended forms (hex floats,
	// digit-separating underscores, inf/nan spellings) are rare and take
	// the fallible call.
	if !isPlainFloat(s) && !maybeSpecialFloat(s) {
		return 0, false
	}
	n, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// isPlainFloat reports whether s matches [+-]?digits[.digits][(e|E)[+-]digits]
// with at least one mantissa digit — a subset of what strconv.ParseFloat
// accepts, so ParseFloat cannot fail on it except for range errors.
func isPlainFloat(s string) bool {
	i := 0
	if s[i] == '+' || s[i] == '-' {
		i++
	}
	mantissa := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
		mantissa++
	}
	if i < len(s) && s[i] == '.' {
		i++
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
			mantissa++
		}
	}
	if mantissa == 0 {
		return false
	}
	if i == len(s) {
		return true
	}
	if s[i] != 'e' && s[i] != 'E' {
		return false
	}
	i++
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	exp := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
		exp++
	}
	return exp > 0 && i == len(s)
}

// maybeSpecialFloat reports whether s could be one of ParseFloat's extended
// forms that isPlainFloat rejects: hex floats (0x1p-2), underscore digit
// separators (1_000), or inf/nan spellings (+inf, -Infinity, nan).
func maybeSpecialFloat(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'x', 'X', '_', 'i', 'I', 'n', 'N':
			return true
		}
	}
	return false
}

// Const is a typed constant appearing in an atomic predicate.
type Const struct {
	Kind Kind
	Str  string
	Num  float64
}

// StringConst returns a string-typed constant.
func StringConst(s string) Const { return Const{Kind: String, Str: s} }

// NumberConst returns a number-typed constant.
func NumberConst(n float64) Const { return Const{Kind: Number, Num: n} }

// String renders the constant as it would appear in an XPath expression.
// String literals use double quotes; embedded double quotes are doubled
// (XPath 2.0-style escaping, which this library's parser accepts — XPath 1.0
// has no escape mechanism at all).
func (c Const) String() string {
	if c.Kind == Number {
		return strconv.FormatFloat(c.Num, 'g', -1, 64)
	}
	return `"` + strings.ReplaceAll(c.Str, `"`, `""`) + `"`
}

// Compare orders a stream value against a constant. It reports -1, 0 or +1
// when the value is comparable with the constant, and ok=false when it is not
// (a non-numeric value against a numeric constant).
func Compare(v Value, c Const) (cmp int, ok bool) {
	switch c.Kind {
	case Number:
		if !v.IsNum {
			return 0, false
		}
		switch {
		case v.Num < c.Num:
			return -1, true
		case v.Num > c.Num:
			return +1, true
		default:
			return 0, true
		}
	default:
		return strings.Compare(v.trimmed, c.Str), true
	}
}

// Op is a relational comparison operator of the XPath fragment (Fig. 1).
type Op uint8

const (
	OpEq Op = iota // =
	OpNe           // !=
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
	// OpExists is the implicit "true" predicate the paper assumes for
	// filters without an explicit comparison ("If the query does not have
	// a predicate, then we assume a true predicate").
	OpExists
	// OpContains and OpStartsWith are the string-function extension the
	// paper sketches via the Aho–Corasick dictionary index (Sec. 2).
	OpContains
	OpStartsWith
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpExists:
		return "exists"
	case OpContains:
		return "contains"
	case OpStartsWith:
		return "starts-with"
	default:
		return "op(?)"
	}
}

// Negate returns the complementary relational operator, when one exists in
// the fragment. Used by workload analysis, not by evaluation.
func (o Op) Negate() (Op, bool) {
	switch o {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpGe:
		return OpLt, true
	case OpGt:
		return OpLe, true
	case OpLe:
		return OpGt, true
	default:
		return o, false
	}
}

// Eval applies the operator to a stream value and a constant, implementing
// the atomic predicate semantics π_s(v) of Sec. 3.
func Eval(op Op, v Value, c Const) bool {
	switch op {
	case OpExists:
		return true
	case OpContains:
		return strings.Contains(v.trimmed, c.Str)
	case OpStartsWith:
		return strings.HasPrefix(v.trimmed, c.Str)
	}
	cmp, ok := Compare(v, c)
	if !ok {
		// Incomparable (non-numeric text against a numeric constant):
		// no relational predicate holds, != included. This keeps the
		// satisfied-predicate set a pure function of the value's
		// position in the ordered domain, which the interval-partition
		// predicate index relies on.
		return false
	}
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}
