// Protein: a scaled-down rerun of the paper's experimental setting —
// a synthetic Protein-like dataset, a generated workload of predicate-heavy
// filters, and a side-by-side of the optimization stacks (basic bottom-up
// versus fully optimized), printing the measurements behind Figs. 5-7.
package main

import (
	"fmt"
	"log"
	"time"

	xpushstream "repro"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func main() {
	ds := datagen.ProteinLike()
	data := datagen.NewGenerator(ds, 1).GenerateBytes(2 << 20)
	filters := workload.Generate(ds, workload.Params{
		Seed:       1,
		NumQueries: 5000,
		MeanPreds:  5,
	})
	queries := make([]string, len(filters))
	for i, f := range filters {
		queries[i] = f.Source
	}
	fmt.Printf("workload: %d filters, %d atomic predicates; data: %.2f MB\n",
		len(queries), workload.TotalAtomicPredicates(filters), float64(len(data))/(1<<20))

	d, err := xpushstream.ParseDTD(ds.DTD.String())
	if err != nil {
		log.Fatal(err)
	}
	configs := []struct {
		name string
		cfg  xpushstream.Config
	}{
		{"basic bottom-up", xpushstream.Config{}},
		{"top-down pruning", xpushstream.Config{TopDownPruning: true}},
		{"TD + order", xpushstream.Config{TopDownPruning: true, OrderOptimization: true, DTD: d}},
		{"TD + order + training", xpushstream.Config{TopDownPruning: true, OrderOptimization: true, Training: true, DTD: d}},
		{"TD + order + early + training", xpushstream.Config{TopDownPruning: true, OrderOptimization: true, EarlyNotification: true, Training: true, DTD: d}},
	}
	fmt.Printf("%-30s %10s %10s %10s %10s %10s\n", "configuration", "time", "MB/s", "states", "avg size", "hit")
	for _, c := range configs {
		engine, err := xpushstream.Compile(queries, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		matches := 0
		start := time.Now()
		err = engine.FilterBytes(data, func(m []int) { matches += len(m) })
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		s := engine.Stats()
		fmt.Printf("%-30s %10v %10.2f %10d %10.1f %10.3f\n",
			c.name, el.Round(time.Millisecond), float64(len(data))/(1<<20)/el.Seconds(),
			s.States, s.AvgStateSize, s.HitRatio)
	}
}
