package server

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		typ     byte
		payload []byte
	}{
		{FrameSubscribe, []byte(`//a[b = 1]`)},
		{FramePing, nil},
		{FramePublish, []byte(`<a><b>1</b></a>`)},
		{FrameOK, AppendUint64(nil, 42)},
		{FrameErr, []byte("boom")},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f.typ, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.typ || !bytes.Equal(got.Payload, want.payload) {
			t.Fatalf("frame %d: got (0x%02x, %q), want (0x%02x, %q)",
				i, got.Type, got.Payload, want.typ, want.payload)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePublish, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(&buf, 256)
	var tooLarge *ErrFrameTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if tooLarge.Size != 1024 || tooLarge.Limit != 256 {
		t.Errorf("ErrFrameTooLarge = %+v, want Size=1024 Limit=256", tooLarge)
	}
}

func TestFrameEmptyAndTruncated(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil), 1<<20); err == nil {
		t.Error("reading an empty stream succeeded")
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FramePublish, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc), 1<<20); err == nil {
		t.Error("reading a truncated frame succeeded")
	}
}

func TestUint64Codec(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		b := AppendUint64(nil, v)
		got, err := ParseUint64(b)
		if err != nil || got != v {
			t.Errorf("ParseUint64(AppendUint64(%d)) = %d, %v", v, got, err)
		}
	}
	if _, err := ParseUint64([]byte{1, 2, 3}); err == nil {
		t.Error("short uint64 payload parsed")
	}
}

func TestDeliverPayloadCodec(t *testing.T) {
	doc := []byte(`<m><v>7</v></m>`)
	filters := []uint64{3, 17, 1 << 33}
	p := AppendDeliverPayload(nil, filters, doc)
	gotFilters, gotDoc, err := ParseDeliverPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFilters) != len(filters) {
		t.Fatalf("got %d filters, want %d", len(gotFilters), len(filters))
	}
	for i := range filters {
		if gotFilters[i] != filters[i] {
			t.Errorf("filter %d: got %d, want %d", i, gotFilters[i], filters[i])
		}
	}
	if !bytes.Equal(gotDoc, doc) {
		t.Errorf("doc: got %q, want %q", gotDoc, doc)
	}

	// Corrupt payloads fail cleanly.
	if _, _, err := ParseDeliverPayload(nil); err == nil {
		t.Error("nil deliver payload parsed")
	}
	if _, _, err := ParseDeliverPayload(p[:5]); err == nil {
		t.Error("truncated deliver payload parsed")
	}
}

func TestDeliverPayloadTraceCodec(t *testing.T) {
	doc := []byte(`<m><v>7</v></m>`)
	filters := []uint64{3, 17}

	// A zero trace id is byte-identical to the plain encoding — old clients
	// keep working against untraced deliveries.
	if plain, traced := AppendDeliverPayload(nil, filters, doc), AppendDeliverPayloadTrace(nil, filters, doc, 0); !bytes.Equal(plain, traced) {
		t.Errorf("zero-trace-id encoding differs from plain: %x vs %x", plain, traced)
	}

	p := AppendDeliverPayloadTrace(nil, filters, doc, 0xDEADBEEF)
	gotFilters, gotDoc, traceID, err := ParseDeliverPayloadTrace(p)
	if err != nil || traceID != 0xDEADBEEF {
		t.Fatalf("traceID = %#x, %v", traceID, err)
	}
	if len(gotFilters) != 2 || gotFilters[0] != 3 || gotFilters[1] != 17 || !bytes.Equal(gotDoc, doc) {
		t.Fatalf("round-trip = (%v, %q)", gotFilters, gotDoc)
	}
	// The flag is masked out of the filter count: the doc boundary is intact.
	if fs, d2, err := ParseDeliverPayload(p); err != nil || len(fs) != 2 || !bytes.Equal(d2, doc) {
		t.Fatalf("legacy parse of traced payload = (%v, %q, %v)", fs, d2, err)
	}
	// A traced payload too short for its trace id fails cleanly.
	short := AppendDeliverPayloadTrace(nil, filters, nil, 7)
	if _, _, _, err := ParseDeliverPayloadTrace(short[:len(short)-4]); err == nil {
		t.Error("truncated traced payload parsed")
	}

	// DeliverAt carries the same optional trace id after its offset.
	ap := AppendDeliverAtPayloadTrace(nil, 99, filters, doc, 7)
	off, fs, d2, tid, err := ParseDeliverAtPayloadTrace(ap)
	if err != nil || off != 99 || tid != 7 || len(fs) != 2 || !bytes.Equal(d2, doc) {
		t.Fatalf("deliver-at round-trip = (%d, %v, %q, %d, %v)", off, fs, d2, tid, err)
	}
}

func TestSubscribeDurablePayloadCodec(t *testing.T) {
	p := AppendSubscribeDurablePayload(nil, "billing-1", `//order[total > 1000]`)
	name, xpath, err := ParseSubscribeDurablePayload(p)
	if err != nil || name != "billing-1" || xpath != `//order[total > 1000]` {
		t.Fatalf("round-trip = (%q, %q, %v)", name, xpath, err)
	}
	// Empty name and empty xpath are representable (validation is the
	// server's job).
	if name, xpath, err = ParseSubscribeDurablePayload(AppendSubscribeDurablePayload(nil, "", "")); err != nil || name != "" || xpath != "" {
		t.Fatalf("empty round-trip = (%q, %q, %v)", name, xpath, err)
	}
	for _, bad := range [][]byte{nil, {0, 0}, {0, 0, 0, 9, 'x'}} {
		if _, _, err := ParseSubscribeDurablePayload(bad); err == nil {
			t.Errorf("ParseSubscribeDurablePayload(%x) succeeded", bad)
		}
	}
}

func TestDeliverAtPayloadCodec(t *testing.T) {
	doc := []byte(`<order total="2000"/>`)
	p := AppendDeliverAtPayload(nil, 1<<40, []uint64{3, 9}, doc)
	off, filters, got, err := ParseDeliverAtPayload(p)
	if err != nil || off != 1<<40 {
		t.Fatalf("offset = %d, %v", off, err)
	}
	if len(filters) != 2 || filters[0] != 3 || filters[1] != 9 || !bytes.Equal(got, doc) {
		t.Fatalf("round-trip = (%v, %q)", filters, got)
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, AppendUint64(nil, 7)} {
		if _, _, _, err := ParseDeliverAtPayload(bad); err == nil {
			t.Errorf("ParseDeliverAtPayload(%x) succeeded", bad)
		}
	}
}

func TestPublishAsyncPayloadCodec(t *testing.T) {
	doc := []byte(`<order total="2000"/>`)
	p := AppendPublishAsyncPayload(nil, 1<<50|7, doc)
	seq, got, err := ParsePublishAsyncPayload(p)
	if err != nil || seq != 1<<50|7 || !bytes.Equal(got, doc) {
		t.Fatalf("round-trip = (%d, %q, %v)", seq, got, err)
	}
	// An empty document is representable (the server rejects it, but at the
	// protocol layer it parses).
	if seq, got, err = ParsePublishAsyncPayload(AppendPublishAsyncPayload(nil, 3, nil)); err != nil || seq != 3 || len(got) != 0 {
		t.Fatalf("empty-doc round-trip = (%d, %q, %v)", seq, got, err)
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}} {
		if _, _, err := ParsePublishAsyncPayload(bad); err == nil {
			t.Errorf("ParsePublishAsyncPayload(%x) succeeded", bad)
		}
	}
}

func TestPubAcksPayloadCodec(t *testing.T) {
	acks := []PubAck{
		{Seq: 1, Matches: 0},
		{Seq: 2, Matches: 1 << 33},
		{Seq: 9, Err: "server: wal append: disk on fire"},
	}
	p := AppendPubAcksPayload(nil, acks)
	got, err := ParsePubAcksPayload(p)
	if err != nil || len(got) != 3 {
		t.Fatalf("round-trip = (%v, %v)", got, err)
	}
	for i := range acks {
		if got[i] != acks[i] {
			t.Fatalf("ack %d = %+v, want %+v", i, got[i], acks[i])
		}
	}
	if got, err = ParsePubAcksPayload(AppendPubAcksPayload(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip = (%v, %v)", got, err)
	}
	bads := [][]byte{
		nil,
		{0, 0, 0},                      // short header
		{0, 0, 0, 1},                   // count promises an entry that is absent
		p[:len(p)-1],                   // truncated error message
		append(p[:len(p):len(p)], 'x'), // trailing garbage
	}
	// Unknown status byte.
	unk := AppendPubAcksPayload(nil, []PubAck{{Seq: 1}})
	unk[len(unk)-9] = 0xff
	bads = append(bads, unk)
	for _, bad := range bads {
		if _, err := ParsePubAcksPayload(bad); err == nil {
			t.Errorf("ParsePubAcksPayload(%x) succeeded", bad)
		}
	}
}
