package bench

import (
	"encoding/json"
	"io"
	"sort"
)

// jsonRow is the JSON view of a sweep Row: durations in seconds, field
// names stable for external tooling.
type jsonRow struct {
	Series     string  `json:"series"`
	X          float64 `json:"x"`
	Seconds    float64 `json:"seconds"`
	MBPerSec   float64 `json:"mb_per_sec"`
	States     int     `json:"states"`
	AvgSize    float64 `json:"avg_state_size"`
	HitRatio   float64 `json:"hit_ratio"`
	TotalPreds int     `json:"total_atomic_preds"`
	Matches    int64   `json:"matches"`
	MemBytes   int64   `json:"approx_mem_bytes"`
}

// jsonAbstract is the JSON view of an abstract-claim run.
type jsonAbstract struct {
	Workload          string  `json:"workload"`
	TotalPreds        int     `json:"total_atomic_preds"`
	MeanPreds         float64 `json:"mean_preds_per_query"`
	ColdMBPerSec      float64 `json:"cold_mb_per_sec"`
	WarmMBPerSec      float64 `json:"warm_mb_per_sec"`
	ScannerMBPerSec   float64 `json:"scanner_mb_per_sec"`
	StdParserMBPerSec float64 `json:"std_parser_mb_per_sec"`
	WarmP50Sec        float64 `json:"warm_latency_p50_sec"`
	WarmP90Sec        float64 `json:"warm_latency_p90_sec"`
	WarmP99Sec        float64 `json:"warm_latency_p99_sec"`
	WarmMaxSec        float64 `json:"warm_latency_max_sec"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Dataset  string               `json:"dataset"`
	Scale    string               `json:"scale"`
	Sweeps   map[string][]jsonRow `json:"sweeps"`
	Abstract []jsonAbstract       `json:"abstract,omitempty"`
}

// WriteJSON dumps every cached sweep and any abstract-claim results as one
// indented JSON document, for diffing runs across commits (see
// BENCH_PR2.json).
func (r *Runner) WriteJSON(w io.Writer) error {
	rep := jsonReport{
		Dataset: r.DS.Name,
		Scale:   r.Scale.Name,
		Sweeps:  map[string][]jsonRow{},
	}
	names := make([]string, 0, len(r.cache))
	for name := range r.cache {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := make([]jsonRow, 0, len(r.cache[name]))
		for _, row := range r.cache[name] {
			rows = append(rows, jsonRow{
				Series:     row.Series,
				X:          row.X,
				Seconds:    row.Time.Seconds(),
				MBPerSec:   row.MBPerSec,
				States:     row.States,
				AvgSize:    row.AvgSize,
				HitRatio:   row.HitRatio,
				TotalPreds: row.TotalPred,
				Matches:    row.Matches,
				MemBytes:   row.MemBytes,
			})
		}
		rep.Sweeps[name] = rows
	}
	for _, a := range r.abstracts {
		rep.Abstract = append(rep.Abstract, jsonAbstract{
			Workload:          a.name,
			TotalPreds:        a.res.TotalPreds,
			MeanPreds:         a.res.MeanPreds,
			ColdMBPerSec:      a.res.ColdMBPerSec,
			WarmMBPerSec:      a.res.WarmMBPerSec,
			ScannerMBPerSec:   a.res.ScannerMBPerSec,
			StdParserMBPerSec: a.res.StdParserMBPerSec,
			WarmP50Sec:        a.res.WarmLatency.P50,
			WarmP90Sec:        a.res.WarmLatency.P90,
			WarmP99Sec:        a.res.WarmLatency.P99,
			WarmMaxSec:        a.res.WarmLatency.Max,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
