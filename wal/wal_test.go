package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTest(t *testing.T, opt Options) *Log {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	if opt.Fsync == "" {
		opt.Fsync = FsyncNever
	}
	l, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("<doc n='%d'/>", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func readAll(t *testing.T, l *Log, from uint64) []string {
	t.Helper()
	r, err := l.OpenReader(from)
	if err != nil {
		t.Fatalf("OpenReader(%d): %v", from, err)
	}
	defer r.Close()
	var out []string
	want := from
	for {
		off, doc, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next at offset %d: %v", want, err)
		}
		if off != want {
			t.Fatalf("offset = %d, want %d", off, want)
		}
		out = append(out, string(doc))
		want++
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	l := openTest(t, Options{})
	appendN(t, l, 10)
	docs := readAll(t, l, 0)
	if len(docs) != 10 {
		t.Fatalf("read %d docs, want 10", len(docs))
	}
	for i, d := range docs {
		if want := fmt.Sprintf("<doc n='%d'/>", i); d != want {
			t.Fatalf("doc %d = %q, want %q", i, d, want)
		}
	}
	if got := readAll(t, l, 7); len(got) != 3 || got[0] != "<doc n='7'/>" {
		t.Fatalf("read from 7 = %v", got)
	}
	if l.NextOffset() != 10 || l.FirstOffset() != 0 {
		t.Fatalf("offsets = [%d, %d), want [0, 10)", l.FirstOffset(), l.NextOffset())
	}
}

func TestAppendRejectsEmptyAndOversized(t *testing.T) {
	l := openTest(t, Options{MaxRecordBytes: 16})
	if _, err := l.Append(nil); err == nil {
		t.Fatal("Append(nil) succeeded")
	}
	if _, err := l.Append(bytes.Repeat([]byte("x"), 17)); err == nil {
		t.Fatal("oversized Append succeeded")
	}
	if st := l.Stats(); st.NextOffset != 0 {
		t.Fatalf("rejected appends assigned offsets: %+v", st)
	}
}

func TestReopenContinuesOffsets(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir})
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := openTest(t, Options{Dir: dir})
	if l2.NextOffset() != 5 {
		t.Fatalf("NextOffset after reopen = %d, want 5", l2.NextOffset())
	}
	appendN(t, l2, 5)
	if got := readAll(t, l2, 0); len(got) != 10 {
		t.Fatalf("read %d docs after reopen, want 10", len(got))
	}
}

// TestRecoveryTruncatesTornTail simulates crashes mid-append by corrupting
// the tail of a closed log, then checks Open keeps exactly the valid prefix.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	cases := []struct {
		name string
		tail []byte // appended raw to the segment file
	}{
		{"partial header", []byte{0x00, 0x00, 0x01}},
		{"zero filled", make([]byte, 64)},
		{"length without payload", []byte{0x00, 0x00, 0x00, 0x40, 0xde, 0xad, 0xbe, 0xef}},
		{"bad crc", func() []byte {
			b := []byte{0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 'x', 'y', 'z'}
			return b
		}()},
		{"implausible length", []byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openTest(t, Options{Dir: dir})
			appendN(t, l, 4)
			l.Close()

			seg := filepath.Join(dir, fmt.Sprintf("%016x%s", 0, segSuffix))
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatalf("opening segment: %v", err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatalf("writing torn tail: %v", err)
			}
			f.Close()

			if v, err := Verify(dir); err != nil || !v.Torn {
				t.Fatalf("Verify = %+v, %v; want Torn", v, err)
			}
			l2 := openTest(t, Options{Dir: dir})
			if l2.NextOffset() != 4 {
				t.Fatalf("NextOffset after recovery = %d, want 4", l2.NextOffset())
			}
			if got := readAll(t, l2, 0); len(got) != 4 {
				t.Fatalf("read %d docs after recovery, want 4", len(got))
			}
			// The log must be appendable again and verify clean.
			appendN(t, l2, 1)
			l2.Close()
			if v, err := Verify(dir); err != nil || v.Torn || v.Records != 5 {
				t.Fatalf("Verify after recovery+append = %+v, %v; want 5 clean records", v, err)
			}
		})
	}
}

func TestRecoveryDropsUnreachableSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentBytes: 64})
	appendN(t, l, 10) // several segments at 64-byte rotation
	if l.Stats().Segments < 3 {
		t.Fatalf("want >= 3 segments, got %d", l.Stats().Segments)
	}
	l.Close()

	// Corrupt the header of the second segment: everything from it on is
	// unreachable and must be deleted, keeping only segment 0's records.
	entries, _ := os.ReadDir(dir)
	if err := os.WriteFile(filepath.Join(dir, entries[1].Name()), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, Options{Dir: dir})
	st := l2.Stats()
	if st.Segments != 1 || st.FirstOffset != 0 {
		t.Fatalf("after recovery: %+v, want 1 segment from offset 0", st)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("unreachable segments not deleted: %d files remain", len(files))
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentBytes: 128, RetentionBytes: 256})
	appendN(t, l, 40)
	st := l.Stats()
	if st.Rotations == 0 || st.RetiredSegments == 0 {
		t.Fatalf("expected rotation and retention, got %+v", st)
	}
	if st.FirstOffset == 0 {
		t.Fatal("retention did not advance FirstOffset")
	}
	// Reading below the retained range must fail with ErrTruncated...
	r, err := l.OpenReader(0)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if _, _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Next below retention = %v, want ErrTruncated", err)
	}
	r.Close()
	// ...and restarting from FirstOffset reads through to the tail.
	docs := readAll(t, l, st.FirstOffset)
	if uint64(len(docs)) != st.NextOffset-st.FirstOffset {
		t.Fatalf("read %d docs, want %d", len(docs), st.NextOffset-st.FirstOffset)
	}
}

// TestRotationRetriesAfterCreateFailure: a rotation that seals the active
// segment but fails to create the next one (transient disk trouble) must not
// wedge the log — the retried rotation skips the already-sealed file and goes
// straight to segment creation once the condition clears.
func TestRotationRetriesAfterCreateFailure(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentBytes: 64})
	// Overfill the active segment so the next append must rotate first.
	for {
		l.mu.Lock()
		full := l.segs[len(l.segs)-1].size >= 64
		l.mu.Unlock()
		if full {
			break
		}
		appendN(t, l, 1)
	}
	want := l.NextOffset()
	// Make createSegment fail by pointing the log at a missing directory.
	l.mu.Lock()
	l.opt.Dir = filepath.Join(dir, "missing")
	l.mu.Unlock()
	if _, err := l.Append([]byte("<doc/>")); err == nil {
		t.Fatal("append rotated into a missing directory")
	}
	// While the condition persists every append keeps failing cleanly...
	if _, err := l.Append([]byte("<doc/>")); err == nil {
		t.Fatal("append succeeded with the directory still missing")
	}
	// ...and once it clears the log recovers without a restart.
	l.mu.Lock()
	l.opt.Dir = dir
	l.mu.Unlock()
	off, err := l.Append([]byte("<doc/>"))
	if err != nil {
		t.Fatalf("append after the directory came back: %v", err)
	}
	if off != want {
		t.Fatalf("offset = %d, want %d", off, want)
	}
	if got := readAll(t, l, 0); uint64(len(got)) != want+1 {
		t.Fatalf("read %d docs, want %d", len(got), want+1)
	}
}

// TestRetentionAgeUsesLastAppendTime: RetentionAge measures the newest
// record's age, not the segment file's — a segment that was active for a long
// time must not be deleted right after sealing.
func TestRetentionAgeUsesLastAppendTime(t *testing.T) {
	l := openTest(t, Options{SegmentBytes: 64, RetentionAge: time.Hour})
	appendN(t, l, 1)
	l.mu.Lock()
	l.segs[0].created = time.Now().Add(-2 * time.Hour)
	l.mu.Unlock()
	for l.Stats().Rotations == 0 {
		appendN(t, l, 1)
	}
	// Segment 0 was created long ago but written to just now: the rotation's
	// retention pass must keep it.
	if first := l.FirstOffset(); first != 0 {
		t.Fatalf("recently-written segment deleted: FirstOffset = %d", first)
	}
	// Once its newest record is older than the window, it is deleted.
	l.mu.Lock()
	l.segs[0].lastAppend = time.Now().Add(-2 * time.Hour)
	base := l.segs[1].base
	rot := l.rotations
	l.mu.Unlock()
	for l.Stats().Rotations == rot {
		appendN(t, l, 1)
	}
	if first := l.FirstOffset(); first != base {
		t.Fatalf("FirstOffset = %d after aged-out segment, want %d", first, base)
	}
}

// TestReaderFollowsLiveTail interleaves appends with reads through a single
// reader, crossing segment boundaries.
func TestReaderFollowsLiveTail(t *testing.T) {
	l := openTest(t, Options{SegmentBytes: 64})
	r, err := l.OpenReader(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty log = %v, want io.EOF", err)
	}
	var want uint64
	for round := 0; round < 5; round++ {
		appendN(t, l, 3)
		for i := 0; i < 3; i++ {
			off, doc, err := r.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if off != want || len(doc) == 0 {
				t.Fatalf("off = %d, want %d", off, want)
			}
			want++
		}
		if _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("Next at tail = %v, want io.EOF", err)
		}
	}
}

func TestCursorStore(t *testing.T) {
	cs, err := OpenCursorStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cs.Load("sub-1"); ok || err != nil {
		t.Fatalf("Load of absent cursor = ok=%v err=%v", ok, err)
	}
	for _, off := range []uint64{0, 7, 1 << 40} {
		if err := cs.Store("sub-1", off); err != nil {
			t.Fatalf("Store(%d): %v", off, err)
		}
		got, ok, err := cs.Load("sub-1")
		if err != nil || !ok || got != off {
			t.Fatalf("Load = %d, %v, %v; want %d", got, ok, err, off)
		}
	}
	if names, err := cs.Names(); err != nil || len(names) != 1 || names[0] != "sub-1" {
		t.Fatalf("Names = %v, %v", names, err)
	}
	for _, bad := range []string{"", ".hidden", "-x", "a/b", "a b", string(bytes.Repeat([]byte("n"), 129))} {
		if ValidCursorName(bad) {
			t.Errorf("ValidCursorName(%q) = true", bad)
		}
		if err := cs.Store(bad, 1); err == nil {
			t.Errorf("Store(%q) succeeded", bad)
		}
	}
	// A corrupt cursor file is an error, not silently zero.
	if err := os.WriteFile(filepath.Join(cs.dir, "bad.cur"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Load("bad"); err == nil {
		t.Fatal("Load of corrupt cursor succeeded")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"": FsyncInterval, "always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever,
	} {
		if got, err := ParseFsyncPolicy(s); err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted an unknown policy")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(string(pol), func(t *testing.T) {
			l := openTest(t, Options{Fsync: pol, FsyncEvery: 5 * time.Millisecond})
			appendN(t, l, 5)
			if pol == FsyncAlways && l.Stats().Syncs < 5 {
				t.Fatalf("always: %d syncs for 5 appends", l.Stats().Syncs)
			}
			if pol == FsyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for l.Stats().Syncs == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if l.Stats().Syncs == 0 {
					t.Fatal("interval: no sync observed")
				}
				if l.FsyncLatency().Count == 0 {
					t.Fatal("interval: fsync latency histogram empty")
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Append after Close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestVerifyCleanLog(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, SegmentBytes: 128})
	appendN(t, l, 20)
	l.Close()
	v, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v.Torn || v.Records != 20 || v.FirstOffset != 0 || v.NextOffset != 20 {
		t.Fatalf("Verify = %+v", v)
	}
}
