package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE process_start_time_seconds gauge",
		"# TYPE process_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	var start, uptime float64
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			continue
		}
		switch f[0] {
		case "process_start_time_seconds":
			start = v
		case "process_uptime_seconds":
			uptime = v
		}
	}
	now := float64(time.Now().UnixNano()) / 1e9
	if start <= 0 || start > now {
		t.Errorf("process_start_time_seconds = %v (now %v)", start, now)
	}
	if uptime < 0 || uptime > now-start+1 {
		t.Errorf("process_uptime_seconds = %v inconsistent with start %v", uptime, start)
	}
	// Both series must come from the same captured instant: start + uptime
	// reconstructs "now" to within scrape skew.
	if diff := now - (start + uptime); diff < -1 || diff > 1 {
		t.Errorf("start+uptime drifts from wall clock by %vs", diff)
	}
}
