package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// cursorMagic identifies a cursor file; the trailing byte is a version.
var cursorMagic = [4]byte{'X', 'P', 'C', '1'}

const cursorFileSize = 16 // 4-byte magic + u64 BE offset + u32 BE CRC32C

// CursorStore persists durable-subscriber cursors: one 16-byte file per
// subscriber name, written crash-atomically (temp file + fsync + rename), so
// a crash mid-update leaves the previous cursor readable. A cursor is the
// next log offset the subscriber should receive.
type CursorStore struct {
	dir string
}

// OpenCursorStore opens (or creates) a cursor directory.
func OpenCursorStore(dir string) (*CursorStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &CursorStore{dir: dir}, nil
}

// ValidCursorName reports whether name is usable as a cursor identity: 1-128
// characters from [A-Za-z0-9._-], starting with an alphanumeric (names
// become file names, so path metacharacters are rejected).
func ValidCursorName(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

func (s *CursorStore) path(name string) string {
	return filepath.Join(s.dir, name+".cur")
}

// Load reads a cursor; ok is false when the name has never been stored.
func (s *CursorStore) Load(name string) (offset uint64, ok bool, err error) {
	if !ValidCursorName(name) {
		return 0, false, fmt.Errorf("wal: invalid cursor name %q", name)
	}
	b, err := os.ReadFile(s.path(name))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if len(b) != cursorFileSize || [4]byte(b[:4]) != cursorMagic ||
		crc32.Checksum(b[4:12], castagnoli) != beU32(b[12:]) {
		return 0, false, fmt.Errorf("wal: cursor %q is corrupt", name)
	}
	return beU64(b[4:12]), true, nil
}

// Store persists a cursor crash-atomically.
func (s *CursorStore) Store(name string, offset uint64) (err error) {
	if !ValidCursorName(name) {
		return fmt.Errorf("wal: invalid cursor name %q", name)
	}
	var b [cursorFileSize]byte
	copy(b[:4], cursorMagic[:])
	putU64(b[4:12], offset)
	putU32(b[12:], crc32.Checksum(b[4:12], castagnoli))
	f, err := os.CreateTemp(s.dir, "."+name+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(b[:]); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, s.path(name)); err != nil {
		return err
	}
	syncDir(s.dir)
	return nil
}

// Names lists the stored cursor names.
func (s *CursorStore) Names() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".cur"); ok && ValidCursorName(name) {
			out = append(out, name)
		}
	}
	return out, nil
}
