// Package core implements the XPush Machine of the paper (Sec. 3-5): a
// single deterministic pushdown automaton, lazily constructed at runtime,
// that evaluates an entire workload of XPath filters over a stream of SAX
// events in O(1) time per event.
//
// A bottom-up state q^b is a set of AFA states — the states that have
// matched the current XML node so far; a top-down state q^t (when top-down
// pruning is enabled) is the set of enabled AFA states. Both are interned as
// sorted arrays with 64-bit signatures (Sec. 4). The six transition
// functions tpush, tvalue, tpop, tbadd, ttadd, taccept are realised as
// lazily filled hash tables; the paper's "hit ratio" statistic counts their
// lookups.
//
// Deviations from the paper's Fig. 2 pseudo-code are deliberate and
// documented in DESIGN.md:
//
//   - text(str) merges the value state into q^b instead of overwriting it,
//     so documents mixing attributes and text (<a c="2"> 1 </a>, which
//     Sec. 3.2 requires to work) are handled;
//   - purely structural sub-filters use TrueTerminal states that are
//     injected into eval at every endElement instead of being stored in
//     states;
//   - the no-mixed-content pruning of Sec. 3.2 is unnecessary under lazy
//     construction (states that never occur are never built), so mixed
//     content is processed with union semantics and merely counted; a
//     strict mode reports it as an error.
package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/afa"
	"repro/internal/predindex"
	"repro/internal/sax"
	"repro/internal/xmlval"
)

// Order is the sibling partial order consumed by the order optimization
// (satisfied by *dtd.Order).
type Order interface {
	Precedes(a, b string) bool
}

// Options selects the optimizations of Sec. 5.
type Options struct {
	// TopDown enables top-down pruning: bottom-up computation starts only
	// at branches enabled by the downward navigation.
	TopDown bool
	// Order, when non-nil, enables the order optimization using the
	// sibling partial order (usually derived from a DTD).
	Order Order
	// Early enables early notification: a filter is reported as soon as
	// its first branching state matches, and its states are dropped from
	// subsequent XPush states. Implies TopDown (required for
	// correctness, Sec. 5). Firings only count for states enabled in the
	// current top-down state, and with descendant axes in the workload
	// the machine additionally intersects the bottom-up state with the
	// top-down state after every pop — the two halves of the paper's
	// "intersect bottom-up with top-down" correction. Filters whose
	// first branching state can fire through a not(...) branch opt out
	// entirely (see afa.QueryInfo.Early).
	Early bool
	// PrecomputeValues eagerly computes the atomic predicate index's
	// point-interval value states (Sec. 4, "State Precomputation"). Only
	// effective without TopDown: with top-down pruning, value states
	// depend on the top-down state and cannot be precomputed — exactly
	// the deficiency the paper observes for TD in isolation — but
	// training regenerates them.
	PrecomputeValues bool
	// StrictMixedContent makes mixed element/text content an error
	// reported by Err; by default it is processed with union semantics
	// and counted in Stats.
	StrictMixedContent bool
	// MaxStates, when positive, caps the number of interned bottom-up
	// states: at the next document boundary past the cap, all lazily
	// built states and tables are flushed ("equivalent to flushing an
	// entire cache", Sec. 8). Zero means unlimited.
	MaxStates int
}

// Stats exposes the machine's runtime counters, which drive every figure of
// the paper's evaluation section.
type Stats struct {
	// BStates and TStates count interned bottom-up / top-down states.
	BStates int
	TStates int
	// BStateAFASum is the total number of AFA states across all interned
	// bottom-up states; BStateAFASum/BStates is the paper's "average
	// size of each state" (Figs. 7 and 11).
	BStateAFASum int64
	// Lookups and Hits count transition-table lookups and successful
	// ones (Fig. 8's hit ratio).
	Lookups, Hits int64
	// Docs and Events count processed documents and SAX events.
	Docs, Events int64
	// Matches counts reported (document, filter) match pairs.
	Matches int64
	// MixedContentEvents counts violations of the no-mixed-content
	// assumption.
	MixedContentEvents int64
	// Flushes counts MaxStates cache flushes.
	Flushes int64

	// Windowed series over the most recent WindowDocs documents (at most
	// StatsWindow). They expose the machine's warm-up trajectory — the
	// time-local view of Fig. 8's hit-ratio curve — where the cumulative
	// counters above average over the whole stream: a long-running broker
	// watches WindowHitRatio approach 1 as the lazy machine completes.
	WindowDocs int
	// WindowLookups and WindowHits are table lookups within the window.
	WindowLookups, WindowHits int64
	// WindowStatesAdded counts bottom-up states interned within the
	// window (clamped at 0 across a cache flush).
	WindowStatesAdded int64
	// WindowFlushes counts MaxStates flushes within the window.
	WindowFlushes int64
}

// WindowHitRatio returns the hit ratio over the window (0 if no lookups).
func (s Stats) WindowHitRatio() float64 {
	if s.WindowLookups == 0 {
		return 0
	}
	return float64(s.WindowHits) / float64(s.WindowLookups)
}

// StatsWindow is the number of most recent documents covered by the
// windowed Stats series.
const StatsWindow = 64

// counters holds the machine's runtime counters. Increments happen only on
// the machine's single filtering goroutine, but they are atomic so that
// Stats can be read concurrently (e.g. a /metrics scrape of a live broker,
// or Pool/ShardedEngine aggregation) without a data race.
type counters struct {
	bstates, tstates atomic.Int64
	bstateAFASum     atomic.Int64
	lookups, hits    atomic.Int64
	docs, events     atomic.Int64
	matches          atomic.Int64
	mixed            atomic.Int64
	flushes          atomic.Int64
}

// winSample is a snapshot of the cumulative counters taken at a document
// boundary; the window series are differences against the oldest sample.
type winSample struct {
	lookups, hits, bstates, flushes int64
}

// AvgStateSize returns the mean number of AFA states per XPush state.
func (s Stats) AvgStateSize() float64 {
	if s.BStates == 0 {
		return 0
	}
	return float64(s.BStateAFASum) / float64(s.BStates)
}

// HitRatio returns Hits/Lookups.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// entry is a transition-table value: the resulting state plus the filter
// oids whose early state fired while computing it.
type entry struct {
	state int32
	early []int32
}

type frame struct {
	qt, qb       int32
	sawText      bool
	sawElemChild bool
}

// Machine is a lazy XPush machine. It implements both sax.Handler and
// sax.BytesHandler (the byte path avoids a string allocation per event); one
// Machine serves one stream (it is not safe for concurrent use).
type Machine struct {
	afa   *afa.AFA
	opts  Options
	ev    *afa.Evaluator
	index *predindex.Index

	// Interned states. Id 0 is the empty bottom-up state q0^b and the
	// initial top-down state q0^t respectively. The intern indexes are
	// flat signature tables (table.go).
	bsets   [][]int32
	bintern internTab
	baccept [][]int32
	tsets   [][]int32
	tintern internTab
	ttOf    [][]int32 // per top-down state: enabled TrueTerminals

	// Transition tables: open-addressing flat tables on packed integer
	// keys (table.go), preserving the lazy-fill and MaxStates flush
	// semantics of the former map implementation.
	pushTab  tab64 // packPush(qt, sym) -> qt'
	popTab   tabE  // packPop(qb, qt, sym) -> entry
	addTab   tab64 // packAdd(qbs, qaux) -> qb'
	valueTab tabE  // packValue(qt, interval) -> entry
	sectTab  tab64 // packAdd(qaux, qt) -> qb'

	isEarly     []bool // per AFA state
	needIsect   bool   // early + descendant: intersect after pops
	earlyOn     bool
	trueTermAll []int32

	// Run state.
	qt, qb  int32
	stack   []frame
	cur     frame // flags of the current element
	matched []bool
	results []int32
	inDoc   bool
	err     error

	ctr      counters
	training bool

	// Per-event counters are batched in plain locals and flushed to the
	// atomics at document boundaries: an atomic RMW per SAX event would
	// dominate the O(1) per-event work the tables buy. Stats() read
	// between document boundaries lags by at most one document's worth of
	// events/lookups/hits; the concurrent-read guarantee is unchanged.
	pendEvents  int64
	pendLookups int64
	pendHits    int64

	// bscan is the reusable byte-level scanner behind Run, FilterDocument
	// and Train; holding it here keeps its internal buffers warm across
	// documents.
	bscan sax.ByteScanner

	// Document-boundary samples for the windowed Stats series, guarded by
	// winMu (written once per document, read by Stats).
	winMu   sync.Mutex
	win     [StatsWindow]winSample
	winLen  int
	winHead int // next write position

	// OnDocument, when set, receives the sorted oids of matching filters
	// at every endDocument.
	OnDocument func(matches []int32)

	scratch  []int32
	scratch2 []int32
}

// New builds a lazy XPush machine for a compiled AFA. The machine takes
// ownership of the AFA (ApplyOrder mutates it).
func New(a *afa.AFA, opts Options) *Machine {
	if opts.Early {
		opts.TopDown = true // required for correctness (Sec. 5)
	}
	m := &Machine{
		afa:     a,
		opts:    opts,
		ev:      a.NewEvaluator(),
		matched: make([]bool, len(a.Queries)),
	}
	b := predindex.NewBuilder()
	a.EachLeafTerminal(func(s int32, op xmlval.Op, c xmlval.Const) {
		b.Add(s, op, c)
	})
	m.index = b.Build()
	if opts.Order != nil {
		a.ApplyOrder(opts.Order)
	}
	m.isEarly = make([]bool, a.NumStates())
	for _, q := range a.Queries {
		if q.Early >= 0 {
			m.isEarly[q.Early] = true
		}
	}
	m.earlyOn = opts.Early
	m.needIsect = opts.Early && a.HasDescendant()
	m.trueTermAll = a.TrueTerminals()
	m.reset()
	return m
}

// reset drops all lazily built states and tables (the cache-flush of
// Sec. 8's update discussion and of the MaxStates cap).
func (m *Machine) reset() {
	m.bsets = [][]int32{nil}
	m.bintern = internTab{}
	m.baccept = [][]int32{nil}
	m.tsets = [][]int32{nil}
	m.tintern = internTab{}
	m.ttOf = [][]int32{nil}
	if m.opts.TopDown {
		m.tsets[0] = m.afa.Initials()
		m.ttOf[0] = intersectSorted(m.trueTermAll, m.tsets[0], nil)
	} else {
		m.ttOf[0] = m.trueTermAll
	}
	m.pushTab = tab64{}
	m.popTab = tabE{}
	m.addTab = tab64{}
	m.valueTab = tabE{}
	m.sectTab = tab64{}
	m.ctr.bstates.Store(1)
	m.ctr.tstates.Store(1)
	m.ctr.bstateAFASum.Store(0)
	if m.opts.PrecomputeValues && !m.opts.TopDown {
		for _, v := range m.index.Representatives() {
			m.valueState(0, v)
		}
		// Precomputation lookups happen outside any document; publish
		// them now so they are not attributed to the next document.
		m.flushPending()
	}
}

// Counters returns the four counters the tracing layer reads at document
// boundaries to compute per-document deltas (span attributes): bottom-up
// states, table flushes, matches, and events. It reads only atomics —
// cheap enough to call twice per traced document — and unlike Stats never
// touches the window lock.
func (m *Machine) Counters() (bstates, flushes, matches, events int64) {
	return m.ctr.bstates.Load(), m.ctr.flushes.Load(),
		m.ctr.matches.Load(), m.ctr.events.Load()
}

// Stats returns a snapshot of the runtime counters. It is safe to call
// concurrently with filtering (the snapshot is per-counter consistent, not
// globally consistent — fine for monitoring).
func (m *Machine) Stats() Stats {
	s := Stats{
		BStates:            int(m.ctr.bstates.Load()),
		TStates:            int(m.ctr.tstates.Load()),
		BStateAFASum:       m.ctr.bstateAFASum.Load(),
		Lookups:            m.ctr.lookups.Load(),
		Hits:               m.ctr.hits.Load(),
		Docs:               m.ctr.docs.Load(),
		Events:             m.ctr.events.Load(),
		Matches:            m.ctr.matches.Load(),
		MixedContentEvents: m.ctr.mixed.Load(),
		Flushes:            m.ctr.flushes.Load(),
	}
	m.winMu.Lock()
	if m.winLen > 0 {
		oldest := m.win[(m.winHead-m.winLen+StatsWindow)%StatsWindow]
		s.WindowDocs = m.winLen
		s.WindowLookups = s.Lookups - oldest.lookups
		s.WindowHits = s.Hits - oldest.hits
		s.WindowStatesAdded = int64(s.BStates) - oldest.bstates
		if s.WindowStatesAdded < 0 { // cache flush inside the window
			s.WindowStatesAdded = 0
		}
		s.WindowFlushes = s.Flushes - oldest.flushes
	}
	m.winMu.Unlock()
	return s
}

// sampleWindow records the cumulative counters at a document boundary.
func (m *Machine) sampleWindow() {
	m.winMu.Lock()
	m.win[m.winHead] = winSample{
		lookups: m.ctr.lookups.Load(),
		hits:    m.ctr.hits.Load(),
		bstates: m.ctr.bstates.Load(),
		flushes: m.ctr.flushes.Load(),
	}
	m.winHead = (m.winHead + 1) % StatsWindow
	if m.winLen < StatsWindow {
		m.winLen++
	}
	m.winMu.Unlock()
}

// Err reports the first strict-mode violation encountered, if any.
func (m *Machine) Err() error { return m.err }

// Results returns the match oids of the most recently completed document.
func (m *Machine) Results() []int32 { return m.results }

// NumQueries returns the workload size.
func (m *Machine) NumQueries() int { return len(m.afa.Queries) }

// internB interns a sorted AFA-state set as a bottom-up state.
func (m *Machine) internB(set []int32) int32 {
	if len(set) == 0 {
		return 0
	}
	h := hashIDs(set)
	if id := m.bintern.lookup(h, func(id int32) bool { return equalIDs(m.bsets[id], set) }); id >= 0 {
		return id
	}
	cp := make([]int32, len(set))
	copy(cp, set)
	id := int32(len(m.bsets))
	m.bsets = append(m.bsets, cp)
	m.baccept = append(m.baccept, nil)
	m.bintern.add(h, id)
	m.ctr.bstates.Add(1)
	m.ctr.bstateAFASum.Add(int64(len(set)))
	return id
}

// internT interns a sorted AFA-state set as a top-down state and caches its
// enabled TrueTerminal subset. Unlike bottom-up states, the empty set is NOT
// id 0: id 0 is the initial state q0^t, which is non-empty under top-down
// pruning.
func (m *Machine) internT(set []int32) int32 {
	if equalIDs(set, m.tsets[0]) {
		return 0
	}
	h := hashIDs(set)
	if id := m.tintern.lookup(h, func(id int32) bool { return equalIDs(m.tsets[id], set) }); id >= 0 {
		return id
	}
	cp := make([]int32, len(set))
	copy(cp, set)
	id := int32(len(m.tsets))
	m.tsets = append(m.tsets, cp)
	m.ttOf = append(m.ttOf, intersectSorted(m.trueTermAll, cp, nil))
	m.tintern.add(h, id)
	m.ctr.tstates.Add(1)
	return id
}

// flushPending publishes the batched per-event counters to the atomics.
// Called at document boundaries and after every parse, so concurrent
// Stats() readers lag by at most the in-flight document.
func (m *Machine) flushPending() {
	if m.pendEvents != 0 {
		m.ctr.events.Add(m.pendEvents)
		m.pendEvents = 0
	}
	if m.pendLookups != 0 {
		m.ctr.lookups.Add(m.pendLookups)
		m.pendLookups = 0
	}
	if m.pendHits != 0 {
		m.ctr.hits.Add(m.pendHits)
		m.pendHits = 0
	}
}

// StartDocument implements sax.Handler.
func (m *Machine) StartDocument() {
	m.flushPending()
	if m.opts.MaxStates > 0 && len(m.bsets) > m.opts.MaxStates {
		m.reset()
		m.ctr.flushes.Add(1)
	}
	if !m.training {
		m.sampleWindow()
	}
	m.qt, m.qb = 0, 0
	m.stack = m.stack[:0]
	m.cur = frame{}
	for i := range m.matched {
		m.matched[i] = false
	}
	m.results = m.results[:0]
	m.inDoc = true
	m.pendEvents++
	m.ctr.docs.Add(1)
}

// StartElement implements sax.Handler (the tpush transition).
func (m *Machine) StartElement(name string) {
	m.startElement(m.afa.Syms.InputSym(name))
}

// StartElementBytes implements sax.BytesHandler; the symbol is resolved
// straight from the borrowed name bytes.
func (m *Machine) StartElementBytes(name []byte) {
	m.startElement(m.afa.Syms.InputSymBytes(name))
}

func (m *Machine) startElement(sym int32) {
	m.pendEvents++
	isAttr := m.afa.Syms.IsAttr(sym)
	if !isAttr {
		if m.cur.sawText {
			m.mixedContent()
		}
		m.cur.sawElemChild = true
	}
	m.stack = append(m.stack, frame{qt: m.qt, qb: m.qb, sawText: m.cur.sawText, sawElemChild: m.cur.sawElemChild})
	m.cur = frame{}
	if m.opts.TopDown {
		m.qt = m.pushState(m.qt, sym)
	}
	m.qb = 0
}

// pushState computes tpush(qt, sym) = close({δ(s, sym) | s ∈ qt}) lazily.
func (m *Machine) pushState(qt, sym int32) int32 {
	key := packPush(qt, sym)
	m.pendLookups++
	if id, ok := m.pushTab.get(key); ok {
		m.pendHits++
		return id
	}
	m.scratch = m.scratch[:0]
	for _, s := range m.tsets[qt] {
		m.scratch = m.afa.Delta(s, sym, m.scratch)
	}
	slices.Sort(m.scratch)
	closed := m.ev.CloseEps(dedupSorted(m.scratch))
	id := m.internT(closed)
	m.pushTab.put(key, id)
	return id
}

// Text implements sax.Handler (the tvalue transition, merged into q^b).
func (m *Machine) Text(data string) {
	m.text(xmlval.New(data))
}

// TextBytes implements sax.BytesHandler; the Value borrows the scanner's
// buffer and is consumed before the callback returns.
func (m *Machine) TextBytes(data []byte) {
	m.text(xmlval.NewBytes(data))
}

func (m *Machine) text(v xmlval.Value) {
	m.pendEvents++
	if m.cur.sawElemChild {
		m.mixedContent()
	}
	m.cur.sawText = true
	vb := m.valueState(m.qt, v)
	if vb != 0 {
		m.qb = m.addStates(m.qb, vb)
	}
}

// valueState computes tvalue(qt, v): the interned state of leaf terminals
// whose predicate holds on v (restricted to enabled states under top-down
// pruning).
func (m *Machine) valueState(qt int32, v xmlval.Value) int32 {
	cacheable := !m.index.HasStringFuncs()
	var key key128
	if cacheable {
		key = packValue(qt, m.index.IntervalKey(v))
		m.pendLookups++
		if e, ok := m.valueTab.get(key); ok {
			m.pendHits++
			m.recordEarly(e.early)
			return e.state
		}
	}
	ids := m.index.Match(v)
	if m.opts.TopDown {
		m.scratch = intersectSorted(ids, m.tsets[qt], m.scratch[:0])
		ids = m.scratch
	}
	e := m.stripEarly(ids)
	if len(e.early) > 0 {
		// Intern without the matched filters' states.
		e.state = m.internB(m.scratch2)
	} else {
		e.state = m.internB(ids)
	}
	if cacheable {
		m.valueTab.put(key, e)
	}
	m.recordEarly(e.early)
	return e.state
}

// stripEarly scans a set for early states; when any fire, it writes the set
// minus all states of the matched filters into m.scratch2 and returns their
// oids.
func (m *Machine) stripEarly(set []int32) entry {
	if !m.earlyOn {
		return entry{}
	}
	var oids []int32
	for _, s := range set {
		if m.isEarly[s] {
			oids = insertSorted(oids, m.afa.QueryOf(s))
		}
	}
	if len(oids) == 0 {
		return entry{}
	}
	m.scratch2 = m.scratch2[:0]
	for _, s := range set {
		if !containsSorted(oids, m.afa.QueryOf(s)) {
			m.scratch2 = append(m.scratch2, s)
		}
	}
	return entry{early: oids}
}

func (m *Machine) recordEarly(oids []int32) {
	for _, q := range oids {
		if !m.matched[q] {
			m.matched[q] = true
			m.results = append(m.results, q)
		}
	}
}

// EndElement implements sax.Handler (tpop followed by tbadd/ttadd).
func (m *Machine) EndElement(name string) {
	m.endElement(m.afa.Syms.InputSym(name))
}

// EndElementBytes implements sax.BytesHandler.
func (m *Machine) EndElementBytes(name []byte) {
	m.endElement(m.afa.Syms.InputSymBytes(name))
}

func (m *Machine) endElement(sym int32) {
	m.pendEvents++
	if len(m.stack) == 0 {
		// Malformed event sequence (only possible via Drive on
		// hand-built events; the scanners guarantee balance).
		return
	}
	qaux := m.popState(m.qb, m.qt, sym)
	top := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	if m.needIsect && qaux != 0 && top.qt != 0 {
		qaux = m.intersectState(qaux, top.qt)
	}
	m.qt = top.qt // ttadd(qt_s, qaux) = qt_s
	m.qb = m.addStates(top.qb, qaux)
	m.cur = frame{sawText: top.sawText, sawElemChild: top.sawElemChild}
}

// popState computes tpop(qb, sym) = δ⁻¹(eval(qb ∪ TT_enabled), sym) lazily.
// The top-down state participates in the key because the TrueTerminal
// injection depends on it.
func (m *Machine) popState(qb, qt, sym int32) int32 {
	key := packPop(qb, qt, sym)
	m.pendLookups++
	if e, ok := m.popTab.get(key); ok {
		m.pendHits++
		m.recordEarly(e.early)
		return e.state
	}
	evaled := m.ev.Eval(m.bsets[qb], m.ttOf[qt])
	res := m.afa.DeltaInv(evaled, sym, m.scratch[:0])
	m.scratch = res
	var e entry
	if m.earlyOn {
		// Early states become true in the eval closure; scan it. A
		// firing counts only when the state is enabled in the current
		// top-down state: eval adds NOT states (and AND states whose
		// conjuncts include position-sloppy descendant branches) at
		// arbitrary nodes, and qt membership is what pins the firing
		// to a node that actually matches the filter's navigation —
		// the bottom-up ∩ top-down correction of Sec. 5.
		for _, s := range evaled {
			if m.isEarly[s] && containsSorted(m.tsets[qt], s) {
				e.early = insertSorted(e.early, m.afa.QueryOf(s))
			}
		}
		if len(e.early) > 0 {
			m.scratch2 = m.scratch2[:0]
			for _, s := range res {
				if !containsSorted(e.early, m.afa.QueryOf(s)) {
					m.scratch2 = append(m.scratch2, s)
				}
			}
			res = m.scratch2
		}
	}
	e.state = m.internB(res)
	m.popTab.put(key, e)
	m.recordEarly(e.early)
	return e.state
}

// intersectState implements the early-notification descendant fix: keep only
// the bottom-up states enabled in the parent's top-down state.
func (m *Machine) intersectState(qaux, qt int32) int32 {
	key := packAdd(qaux, qt)
	m.pendLookups++
	if id, ok := m.sectTab.get(key); ok {
		m.pendHits++
		return id
	}
	out := intersectSorted(m.bsets[qaux], m.tsets[qt], m.scratch[:0])
	m.scratch = out
	id := m.internB(out)
	m.sectTab.put(key, id)
	return id
}

// addStates computes tbadd(qbs, qaux) = qbs ∪ qaux lazily, with the order
// optimization's filter {s ∈ qaux | prec(s) ⊆ qbs} when enabled.
func (m *Machine) addStates(qbs, qaux int32) int32 {
	if qaux == 0 {
		return qbs
	}
	if qbs == 0 && m.opts.Order == nil {
		return qaux
	}
	key := packAdd(qbs, qaux)
	m.pendLookups++
	if id, ok := m.addTab.get(key); ok {
		m.pendHits++
		return id
	}
	b := m.bsets[qbs]
	add := m.bsets[qaux]
	if m.opts.Order != nil {
		m.scratch2 = m.scratch2[:0]
		for _, s := range add {
			if p := m.afa.Prec(s); len(p) == 0 || subsetOfSorted(p, b) {
				m.scratch2 = append(m.scratch2, s)
			}
		}
		add = m.scratch2
	}
	out := unionSorted(b, add, m.scratch[:0])
	m.scratch = out
	id := m.internB(out)
	m.addTab.put(key, id)
	return id
}

// EndDocument implements sax.Handler (taccept plus early matches).
func (m *Machine) EndDocument() {
	m.pendEvents++
	m.inDoc = false
	for _, q := range m.acceptOf(m.qb) {
		if !m.matched[q] {
			m.matched[q] = true
			m.results = append(m.results, q)
		}
	}
	slices.Sort(m.results)
	m.ctr.matches.Add(int64(len(m.results)))
	m.flushPending()
	if m.OnDocument != nil && !m.training {
		m.OnDocument(m.results)
	}
}

// acceptOf computes taccept(qb): the oids whose initial AFA state is in the
// set. Results are cached per state.
func (m *Machine) acceptOf(qb int32) []int32 {
	if qb == 0 {
		return nil
	}
	if acc := m.baccept[qb]; acc != nil {
		return acc
	}
	m.scratch = intersectSorted(m.bsets[qb], m.afa.Initials(), m.scratch[:0])
	acc := make([]int32, 0, len(m.scratch))
	for _, s := range m.scratch {
		acc = append(acc, m.afa.QueryOf(s))
	}
	slices.Sort(acc)
	if len(acc) == 0 {
		acc = emptyAccept
	}
	m.baccept[qb] = acc
	return acc
}

var emptyAccept = make([]int32, 0)

func (m *Machine) mixedContent() {
	m.ctr.mixed.Add(1)
	if m.opts.StrictMixedContent && m.err == nil {
		m.err = fmt.Errorf("xpush: mixed element/text content encountered (document %d)", m.ctr.docs.Load())
	}
}

// Run streams one or more concatenated XML documents through the machine.
// Match sets are delivered via OnDocument. Parsing goes through the
// machine's reusable byte scanner, so a warmed machine runs the whole
// document without heap allocation.
func (m *Machine) Run(data []byte) error {
	err := m.bscan.Parse(data, m)
	m.flushPending()
	if err != nil {
		return err
	}
	return m.err
}

// FilterDocument processes a single document and returns the sorted oids of
// matching filters.
func (m *Machine) FilterDocument(data []byte) ([]int32, error) {
	err := m.bscan.Parse(data, m)
	m.flushPending()
	if err != nil {
		return nil, err
	}
	if m.err != nil {
		return nil, m.err
	}
	out := make([]int32, len(m.results))
	copy(out, m.results)
	return out, nil
}

// Train runs the machine over training data (Sec. 5): states created here
// persist, warming the caches, but lookup statistics and document counters
// are reset afterwards so subsequent measurements reflect the warmed
// machine.
func (m *Machine) Train(data []byte) error {
	m.training = true
	err := m.bscan.Parse(data, m)
	m.training = false
	m.flushPending()
	m.ctr.lookups.Store(0)
	m.ctr.hits.Store(0)
	m.ctr.docs.Store(0)
	m.ctr.events.Store(0)
	m.ctr.matches.Store(0)
	m.winMu.Lock()
	m.winLen, m.winHead = 0, 0
	m.winMu.Unlock()
	return err
}

func dedupSorted(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// ApproxMemoryBytes estimates the memory held by the lazily built states
// and transition tables: state arrays plus the allocated slots of the flat
// tables and intern indexes (a slot's cost is its key + value footprint;
// open addressing has no per-entry boxes, so no overhead factor applies).
// It backs the paper's observation that total memory grows slightly above
// linearly with the workload (Figs. 6 + 7 combined).
func (m *Machine) ApproxMemoryBytes() int64 {
	var b int64
	b += 4 * m.ctr.bstateAFASum.Load() // bottom-up state arrays
	for _, t := range m.tsets {
		b += 4 * int64(len(t))
	}
	b += m.pushTab.memBytes()
	b += m.popTab.memBytes()
	b += m.addTab.memBytes()
	b += m.valueTab.memBytes()
	b += m.sectTab.memBytes()
	b += m.bintern.memBytes()
	b += m.tintern.memBytes()
	return b
}

// BStateSet exposes an interned bottom-up state's AFA set (for tests and
// debugging).
func (m *Machine) BStateSet(id int32) []int32 { return m.bsets[id] }

// Current returns the current (top-down, bottom-up) state ids.
func (m *Machine) Current() (qt, qb int32) { return m.qt, m.qb }

// StackDepth returns the current stack depth.
func (m *Machine) StackDepth() int { return len(m.stack) }
