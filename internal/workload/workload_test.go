package workload

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dtd"
	"repro/internal/naive"
	"repro/internal/sax"
	"repro/internal/xpath"
)

func TestGenerateBasics(t *testing.T) {
	ds := datagen.ProteinLike()
	fs := Generate(ds, Params{Seed: 1, NumQueries: 500, MeanPreds: 1.15})
	if len(fs) != 500 {
		t.Fatalf("queries = %d", len(fs))
	}
	total := TotalAtomicPredicates(fs)
	mean := float64(total) / float64(len(fs))
	if mean < 1.0 || mean > 1.4 {
		t.Errorf("mean preds = %.2f, want ≈1.15", mean)
	}
	for _, f := range fs[:20] {
		if _, err := xpath.Parse(f.String()); err != nil {
			t.Errorf("round trip of %s: %v", f.Source, err)
		}
	}
}

func TestGenerateMeanPredsHigh(t *testing.T) {
	ds := datagen.ProteinLike()
	fs := Generate(ds, Params{Seed: 2, NumQueries: 300, MeanPreds: 10.45, NestedPredProb: 0.3})
	mean := float64(TotalAtomicPredicates(fs)) / float64(len(fs))
	if mean < 8.5 || mean > 12.5 {
		t.Errorf("mean preds = %.2f, want ≈10.45", mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds := datagen.NASALike()
	p := Params{Seed: 9, NumQueries: 50, MeanPreds: 3, DescendantProb: 0.2, WildcardProb: 0.1}
	a := Generate(ds, p)
	b := Generate(ds, p)
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatalf("nondeterministic at %d: %s vs %s", i, a[i].Source, b[i].Source)
		}
	}
}

func TestGenerateWildcardsAndDescendants(t *testing.T) {
	ds := datagen.ProteinLike()
	fs := Generate(ds, Params{Seed: 3, NumQueries: 200, MeanPreds: 1, WildcardProb: 0.5, DescendantProb: 0.5})
	stars, descs := 0, 0
	for _, f := range fs {
		if strings.Contains(f.Source, "*") {
			stars++
		}
		if strings.Contains(f.Source, "//") {
			descs++
		}
	}
	if stars < 20 || descs < 50 {
		t.Errorf("wildcards=%d descendants=%d, too few", stars, descs)
	}
}

func TestGeneratedQueriesMatchData(t *testing.T) {
	// Predicates are drawn from the data pools, so a decent fraction of
	// queries should match a reasonably large generated stream.
	ds := datagen.ProteinLike()
	fs := Generate(ds, Params{Seed: 4, NumQueries: 60, MeanPreds: 1})
	data := datagen.NewGenerator(ds, 5).GenerateBytes(400 << 10)
	e := naive.NewEngine(fs)
	got, err := e.FilterDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("no generated query matched the generated data")
	}
}

func TestTrainingDataSatisfiesConjunctiveFilters(t *testing.T) {
	// For not-free filters, the training document of a filter should
	// match that filter (predicates replaced by satisfying values, paths
	// expanded via the DTD).
	ds := datagen.ProteinLike()
	fs := Generate(ds, Params{Seed: 6, NumQueries: 120, MeanPreds: 4, NestedPredProb: 0.3, DescendantProb: 0.2, WildcardProb: 0.1})
	matched, generated := 0, 0
	for _, f := range fs {
		data := TrainingData([]*xpath.Filter{f}, ds.DTD)
		if len(data) == 0 {
			continue
		}
		generated++
		docs, err := naive.Build(data)
		if err != nil {
			t.Fatalf("training doc for %s unparsable: %v\n%s", f.Source, err, data)
		}
		for _, d := range docs {
			if naive.Matches(f, d) {
				matched++
				break
			}
		}
	}
	if generated < 100 {
		t.Errorf("training generated only %d/120 docs", generated)
	}
	if matched < generated*9/10 {
		t.Errorf("only %d/%d training docs match their filter", matched, generated)
	}
}

func TestTrainingDataParses(t *testing.T) {
	ds := datagen.NASALike()
	fs := Generate(ds, Params{Seed: 7, NumQueries: 80, MeanPreds: 5, NestedPredProb: 0.4})
	data := TrainingData(fs, ds.DTD)
	var c sax.Collector
	if err := sax.Parse(data, &c); err != nil {
		t.Fatalf("training data unparsable: %v", err)
	}
	docs := 0
	for _, e := range c.Events {
		if e.Kind == sax.StartDocument {
			docs++
		}
	}
	if docs < 60 {
		t.Errorf("training docs = %d, want most of 80", docs)
	}
}

func TestTrainingOrderRespectsDTD(t *testing.T) {
	// The Sec. 5 example: b and d swapped when the DTD requires d first.
	ds := &datagen.Dataset{
		Name: "toy",
		DTD: dtd.MustParse(`
<!ELEMENT a (d?, b?)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ATTLIST a c CDATA #IMPLIED>
`),
		Pools: map[string]*datagen.Pool{},
	}
	f := xpath.MustParse(`/a[(b/text()=3 and @c=4) or d/text()=5]`)
	data := string(TrainingData([]*xpath.Filter{f}, ds.DTD))
	// Expected: <a c="4"> <d>5</d> <b>3</b> </a> — d before b.
	bi, di := strings.Index(data, "<b>"), strings.Index(data, "<d>")
	if bi < 0 || di < 0 || di > bi {
		t.Errorf("training doc order wrong: %s", data)
	}
	if !strings.Contains(data, `c="4"`) {
		t.Errorf("attribute not materialised: %s", data)
	}
}
