// Command xpushdump inspects a compiled workload: it renders the
// alternating automata (Fig. 4 of the paper) as Graphviz dot, dumps the
// eagerly constructed machine tables (Fig. 3), and reports the Theorem 6.1
// pairwise state analysis.
//
// Usage:
//
//	xpushdump -q '//a[b/text()=1 and .//a[@c>2]]' -q '//a[@c>2 and b/text()=1]' -tables
//	xpushdump -queries filters.txt -dot > afa.dot && dot -Tsvg afa.dot > afa.svg
//	xpushdump -queries filters.txt -analyze
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/afa"
	"repro/internal/core"
	"repro/internal/xpath"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, "; ") }
func (q *queryList) Set(v string) error { *q = append(*q, v); return nil }

func main() {
	var inline queryList
	flag.Var(&inline, "q", "an XPath filter (repeatable)")
	queriesPath := flag.String("queries", "", "file with one XPath filter per line")
	dot := flag.Bool("dot", false, "write the AFA as Graphviz dot")
	tables := flag.Bool("tables", false, "eagerly construct the machine and dump its tables")
	analyze := flag.Bool("analyze", false, "print the Theorem 6.1 pairwise analysis")
	maxStates := flag.Int("maxstates", 100000, "eager-construction state cap for -tables")
	flag.Parse()

	queries := []string(inline)
	if *queriesPath != "" {
		fromFile, err := readLines(*queriesPath)
		if err != nil {
			fatalf("%v", err)
		}
		queries = append(queries, fromFile...)
	}
	if len(queries) == 0 {
		fatalf("no queries: use -q or -queries")
	}
	filters := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		f, err := xpath.Parse(q)
		if err != nil {
			fatalf("query %d: %v", i, err)
		}
		filters[i] = f
	}
	a, err := afa.Compile(filters)
	if err != nil {
		fatalf("%v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if !*dot && !*tables && !*analyze {
		*tables = true // default action
	}
	if *dot {
		if err := a.WriteDot(w); err != nil {
			fatalf("%v", err)
		}
	}
	if *analyze {
		r := a.Analyze()
		fmt.Fprintf(w, "AFA: %d states across %d filters\n", r.States, len(filters))
		fmt.Fprintf(w, "subsumption pairs:   %d\n", r.SubsumptionPairs)
		fmt.Fprintf(w, "equivalent pairs:    %d\n", r.EquivalentPairs)
		fmt.Fprintf(w, "inconsistent pairs:  %d\n", r.InconsistentPairs)
		fmt.Fprintf(w, "independent pairs:   %d\n", r.IndependentPairs)
		fmt.Fprintf(w, "max independent degree: %d\n", r.MaxIndependentDegree)
	}
	if *tables {
		m := core.New(a, core.Options{})
		n, err := m.PrecomputeEager(*maxStates)
		if err != nil {
			fatalf("eager construction: %v (reached %d states; raise -maxstates?)", err, n)
		}
		fmt.Fprintf(w, "eager XPush machine: %d bottom-up states\n", n)
		if err := m.DumpTables(w); err != nil {
			fatalf("%v", err)
		}
	}
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xpushdump: "+format+"\n", args...)
	os.Exit(1)
}
