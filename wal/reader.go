package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// Reader iterates the log from a starting offset, following the live tail:
// Next returns io.EOF at the committed end of the log and can be called
// again after more appends (pair it with a notification from the appender).
// A Reader is owned by one goroutine; the payload returned by Next is valid
// only until the following Next call.
type Reader struct {
	l   *Log
	off uint64 // next offset to return

	f       *os.File
	segBase uint64
	cur     uint64 // offset of the record at pos
	pos     int64
	buf     []byte
}

// OpenReader returns a reader positioned at offset. An offset older than the
// retained log is detected on the first Next (ErrTruncated); an offset at or
// past the tail reads io.EOF until appends catch up.
func (l *Log) OpenReader(offset uint64) (*Reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	return &Reader{l: l, off: offset}, nil
}

// Next returns the next record and its offset. It returns io.EOF at the
// committed end of the log and ErrTruncated when the wanted offset has been
// deleted by retention (restart from FirstOffset).
func (r *Reader) Next() (uint64, []byte, error) {
	l := r.l
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, ErrClosed
	}
	if r.off >= l.next {
		l.mu.Unlock()
		return 0, nil, io.EOF
	}
	// Locate the segment containing r.off: the last one with base <= r.off.
	i := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].base > r.off }) - 1
	if i < 0 {
		l.mu.Unlock()
		return 0, nil, ErrTruncated
	}
	base, path := l.segs[i].base, l.segs[i].path
	l.mu.Unlock()

	if r.f == nil || r.segBase != base {
		if r.f != nil {
			r.f.Close()
			r.f = nil
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				return 0, nil, ErrTruncated
			}
			return 0, nil, err
		}
		var hdr [headerSize]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return 0, nil, fmt.Errorf("wal: reading header of %s: %w", path, err)
		}
		if [8]byte(hdr[:8]) != segMagic || beU64(hdr[8:]) != base {
			f.Close()
			return 0, nil, fmt.Errorf("wal: %s has a corrupt header", path)
		}
		r.f, r.segBase, r.cur, r.pos = f, base, base, headerSize
	}
	// Skip records below the wanted offset (only after (re)opening a
	// segment mid-way, e.g. resuming a cursor).
	for r.cur < r.off {
		plen, _, err := r.recHdr()
		if err != nil {
			return 0, nil, err
		}
		r.pos += recHdrSize + int64(plen)
		r.cur++
	}
	plen, crc, err := r.recHdr()
	if err != nil {
		return 0, nil, err
	}
	if cap(r.buf) < plen {
		r.buf = make([]byte, plen)
	}
	buf := r.buf[:plen]
	if _, err := r.f.ReadAt(buf, r.pos+recHdrSize); err != nil {
		return 0, nil, fmt.Errorf("wal: reading record at offset %d: %w", r.off, err)
	}
	if crc32.Checksum(buf, castagnoli) != crc {
		return 0, nil, fmt.Errorf("wal: CRC mismatch at offset %d", r.off)
	}
	off := r.off
	r.pos += recHdrSize + int64(plen)
	r.cur++
	r.off++
	return off, buf, nil
}

// recHdr reads and sanity-checks the record header at the current position.
func (r *Reader) recHdr() (plen int, crc uint32, err error) {
	var rh [recHdrSize]byte
	if _, err := r.f.ReadAt(rh[:], r.pos); err != nil {
		return 0, 0, fmt.Errorf("wal: reading record header at offset %d: %w", r.off, err)
	}
	plen = int(beU32(rh[:4]))
	if plen <= 0 || plen > r.l.opt.maxRecordBytes() {
		return 0, 0, fmt.Errorf("wal: implausible record length %d at offset %d", plen, r.off)
	}
	return plen, beU32(rh[4:]), nil
}

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
