package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// The per-query cost profiler attributes traced documents' filter cost to
// the canonical queries that matched them, keyed by the dedup registry's
// stable keys. It exists so "which query is expensive?" has an answer from
// a running broker: the paper's cost currency (states created, matches)
// plus wall time and fan-out, ranked per canonical filter.
//
// Attribution rule: a document's filter span covers the whole machine run,
// which is shared across every compiled query — so its duration and states
// are charged in full to each key the document matched. The numbers are
// therefore a matched-document cost share, not an exclusive decomposition;
// they rank queries by how much expensive traffic they attract, which is
// what subsumption-collapse and replay-sharing decisions need.
//
// The profiler is fed exclusively from traced documents (tc != nil) and is
// nil when tracing is disabled — the same nil-receiver discipline as
// trace.Recorder, so the untraced hot path stays zero-allocation
// (TestUntracedProfilerZeroAllocs pins it).
const (
	// profilerMaxQueries caps the accounting table's cardinality; keys past
	// the cap accumulate in the "other" bucket instead of growing the map.
	profilerMaxQueries = 1024
	// profilerTopK bounds how many per-query labeled series the metrics
	// endpoint exports (the JSON ranking reports the full table).
	profilerTopK = 10
	// profilerQueryLabelLen truncates canonical query text in metric labels.
	profilerQueryLabelLen = 64
)

// queryCost accumulates one canonical key's traced totals. canon is
// captured at first observation so the ranking stays resolvable after the
// last subscriber unsubscribes and the key leaves the dedup registry.
type queryCost struct {
	canon      string
	filterNS   int64 // cumulative filter span time of matched traced docs
	states     int64 // machine states created while filtering those docs
	matches    int64 // traced documents that matched this key
	fanout     int64 // subscriber deliveries fanned out for this key
	replayDocs int64 // durable replay-pump docs that matched this key
}

type queryProfiler struct {
	mu       sync.Mutex
	entries  map[uint64]*queryCost
	max      int
	other    queryCost // overflow bucket for keys past the cardinality cap
	overflow int64     // observations routed to the other bucket
}

func newQueryProfiler(maxQueries int) *queryProfiler {
	if maxQueries <= 0 {
		maxQueries = profilerMaxQueries
	}
	return &queryProfiler{entries: make(map[uint64]*queryCost), max: maxQueries}
}

// get returns the key's cost cell, or the other bucket once the table is at
// its cardinality cap. canon is stored on first sight of the key (an empty
// canon never overwrites a stored one). Callers hold p.mu.
func (p *queryProfiler) get(key uint64, canon string) *queryCost {
	if e, ok := p.entries[key]; ok {
		return e
	}
	if len(p.entries) >= p.max {
		p.overflow++
		return &p.other
	}
	e := &queryCost{canon: canon}
	p.entries[key] = e
	return e
}

// observeFilter charges one traced document's filter cost to every matched
// key (see the attribution rule above). canons carries the matched keys'
// canonical text, index-aligned with keys; deadKey slots are skipped.
func (p *queryProfiler) observeFilter(keys []uint64, canons []string, filterNS, states int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for i, key := range keys {
		if key == deadKey {
			continue
		}
		e := p.get(key, canons[i])
		e.matches++
		e.filterNS += filterNS
		e.states += states
	}
	p.mu.Unlock()
}

// observeFanout counts subscriber deliveries fanned out for a matched key.
// The entry always exists already: fanout observation follows an
// observeFilter of the same key set within the same document.
func (p *queryProfiler) observeFanout(key uint64, n int64) {
	if p == nil || key == deadKey {
		return
	}
	p.mu.Lock()
	p.get(key, "").fanout += n
	p.mu.Unlock()
}

// observeReplay counts one durable replay-pump document against every key
// it matched — the per-query view of ROADMAP's replay-lag bottleneck.
// canons is index-aligned with keys, as in observeFilter.
func (p *queryProfiler) observeReplay(keys []uint64, canons []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	for i, key := range keys {
		if key == deadKey {
			continue
		}
		p.get(key, canons[i]).replayDocs++
	}
	p.mu.Unlock()
}

// QueryCost is one ranked /debug/queries entry.
type QueryCost struct {
	Key           uint64  `json:"key"`
	Query         string  `json:"query,omitempty"`
	FilterSeconds float64 `json:"filter_seconds"`
	StatesCreated int64   `json:"states_created"`
	Matches       int64   `json:"matches"`
	Fanout        int64   `json:"fanout"`
	ReplayDocs    int64   `json:"replay_docs"`
}

func costToJSON(key uint64, c *queryCost, canons map[uint64]string) QueryCost {
	q := c.canon
	if q == "" {
		q = canons[key]
	}
	return QueryCost{
		Key:           key,
		Query:         q,
		FilterSeconds: float64(c.filterNS) / 1e9,
		StatesCreated: c.states,
		Matches:       c.matches,
		Fanout:        c.fanout,
		ReplayDocs:    c.replayDocs,
	}
}

// snapshot returns the tracked entries ranked by cumulative filter time
// (ties: matches, then key), the other bucket, and the overflow count.
// canons resolves keys to canonical text (nil skips resolution).
func (p *queryProfiler) snapshot(canons map[uint64]string) (entries []QueryCost, other QueryCost, overflow int64) {
	if p == nil {
		return nil, QueryCost{}, 0
	}
	p.mu.Lock()
	entries = make([]QueryCost, 0, len(p.entries))
	for key, c := range p.entries {
		entries = append(entries, costToJSON(key, c, canons))
	}
	other = costToJSON(0, &p.other, nil)
	other.Query = "other"
	overflow = p.overflow
	p.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		a, b := &entries[i], &entries[j]
		if a.FilterSeconds != b.FilterSeconds {
			return a.FilterSeconds > b.FilterSeconds
		}
		if a.Matches != b.Matches {
			return a.Matches > b.Matches
		}
		return a.Key < b.Key
	})
	return entries, other, overflow
}

// profilerTop returns the top-K ranked entries plus the other bucket, the
// labeled-metrics view of the table.
func (s *Server) profilerTop() ([]QueryCost, QueryCost) {
	entries, other, _ := s.prof.snapshot(s.subs.Canons())
	if len(entries) > profilerTopK {
		// Everything past the top K folds into the exported other bucket so
		// the label cardinality stays bounded no matter the workload.
		for _, e := range entries[profilerTopK:] {
			other.FilterSeconds += e.FilterSeconds
			other.StatesCreated += e.StatesCreated
			other.Matches += e.Matches
			other.Fanout += e.Fanout
			other.ReplayDocs += e.ReplayDocs
		}
		entries = entries[:profilerTopK]
	}
	return entries, other
}

func profilerLabel(e *QueryCost) string {
	q := e.Query
	if len(q) > profilerQueryLabelLen {
		q = q[:profilerQueryLabelLen]
	}
	return fmt.Sprintf("key=\"%d\",query=%q", e.Key, q)
}

// registerProfilerMetrics exports the top-K per-query cost series. Only
// called when the profiler exists (tracing enabled), mirroring the tracer
// counters.
func (s *Server) registerProfilerMetrics() {
	labeled := func(pick func(*QueryCost) float64) func() []obs.Labeled {
		return func() []obs.Labeled {
			entries, other := s.profilerTop()
			out := make([]obs.Labeled, 0, len(entries)+1)
			for i := range entries {
				out = append(out, obs.Labeled{Labels: profilerLabel(&entries[i]), Value: pick(&entries[i])})
			}
			out = append(out, obs.Labeled{Labels: `key="other"`, Value: pick(&other)})
			return out
		}
	}
	s.reg.GaugeVecFunc("xpush_query_filter_seconds_total",
		"cumulative traced filter time attributed to each matched canonical query (top-K by cost + other)",
		labeled(func(e *QueryCost) float64 { return e.FilterSeconds }))
	s.reg.GaugeVecFunc("xpush_query_matches_total",
		"traced documents matched per canonical query (top-K by filter cost + other)",
		labeled(func(e *QueryCost) float64 { return float64(e.Matches) }))
	s.reg.GaugeVecFunc("xpush_query_fanout_total",
		"subscriber deliveries fanned out per canonical query on traced documents (top-K by filter cost + other)",
		labeled(func(e *QueryCost) float64 { return float64(e.Fanout) }))
	s.reg.GaugeVecFunc("xpush_query_states_created_total",
		"machine states created filtering traced documents, attributed per matched canonical query (top-K by filter cost + other)",
		labeled(func(e *QueryCost) float64 { return float64(e.StatesCreated) }))
	s.reg.GaugeVecFunc("xpush_query_replay_docs_total",
		"durable replay-pump documents matched per canonical query on traced replays (top-K by filter cost + other)",
		labeled(func(e *QueryCost) float64 { return float64(e.ReplayDocs) }))
}
