package xpushstream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/xpath"
)

// Copy-on-write workload derivation. A broker serving live traffic cannot
// mutate the engine its publishers are filtering on: AddQueries appends to
// the layer list mid-iteration and RemoveQuery flips the removed mask that
// match assembly reads. WithQueries and WithoutQuery instead derive a new
// Engine that SHARES the receiver's warm machine layers (the lazily built
// state tables are the expensive part) while leaving the receiver
// completely untouched, so a server can build the next workload generation
// off to the side and swap an atomic pointer — publishers either see the
// old engine or the new one, never a half-updated workload.
//
// Sharing rules: the receiver and the derived engine reference the same
// machine layers, and a machine processes one stream at a time, so the two
// engines must not filter concurrently. The intended pattern is a swap:
// once the derived engine is published, the old one is retired (in-flight
// documents on it may finish first — they only touch layers both engines
// share, under the caller's filtering serialization).

// WithQueries returns a new engine whose workload is the receiver's plus
// the given filters, compiled as one additional machine layer (the paper's
// layered insertion path, Sec. 8). The receiver is not modified and keeps
// serving its current workload; the shared base layers stay warm. The new
// filters' indexes start at the receiver's NumQueries. See the package
// comment on cow.go for the sharing rules.
func (e *Engine) WithQueries(queries []string) (*Engine, error) {
	filters, err := parseQueries(queries, len(e.queries))
	if err != nil {
		return nil, err
	}
	n := e.derive(len(queries))
	if len(queries) == 0 {
		return n, nil
	}
	m, err := e.buildMachine(filters)
	if err != nil {
		return nil, err
	}
	n.layerOff = append(n.layerOff, len(e.queries))
	n.layers = append(n.layers, m)
	n.queries = append(n.queries, queries...)
	n.filters = append(n.filters, filters...)
	n.removed = append(n.removed, make([]bool, len(queries))...)
	return n, nil
}

// WithoutQuery returns a new engine with filter i marked removed (its
// states are physically removed at the next Consolidate, as with
// RemoveQuery). The receiver is not modified; machine layers are shared.
func (e *Engine) WithoutQuery(i int) (*Engine, error) {
	if i < 0 || i >= len(e.removed) {
		return nil, fmt.Errorf("xpushstream: no query %d", i)
	}
	n := e.derive(0)
	n.removed[i] = true
	return n, nil
}

// derive makes a shallow copy of the engine: fresh slice headers (with
// spare capacity for extra more queries) over copied contents, shared
// machine layers, and carried-over stream counters.
func (e *Engine) derive(extra int) *Engine {
	n := &Engine{cfg: e.cfg}
	n.queries = make([]string, len(e.queries), len(e.queries)+extra)
	copy(n.queries, e.queries)
	n.filters = make([]*xpath.Filter, len(e.filters), len(e.filters)+extra)
	copy(n.filters, e.filters)
	n.layers = append(make([]*core.Machine, 0, len(e.layers)+1), e.layers...)
	n.layerOff = append(make([]int, 0, len(e.layerOff)+1), e.layerOff...)
	n.removed = make([]bool, len(e.removed), len(e.removed)+extra)
	copy(n.removed, e.removed)
	n.bytes.Store(e.bytes.Load())
	n.lat.CopyFrom(&e.lat)
	return n
}

// Consolidated returns a fresh engine with all layers recompiled into one
// machine and removed filters physically dropped — Consolidate's "brute
// force" rebuild, but copy-on-write: the receiver keeps serving its layered
// workload untouched while the caller swaps in the compacted engine. The
// returned mapping translates the receiver's filter indexes to the new
// engine's (-1 for removed filters), so a broker can remap its fan-out
// routing in the same swap.
//
// The consolidated machine starts cold (lazily built states are not
// carried over); counters and latency history are.
func (e *Engine) Consolidated() (*Engine, []int, error) {
	mapping := make([]int, len(e.filters))
	var queries []string
	var filters []*xpath.Filter
	for i := range e.filters {
		if e.removed[i] {
			mapping[i] = -1
			continue
		}
		mapping[i] = len(filters)
		queries = append(queries, e.queries[i])
		filters = append(filters, e.filters[i])
	}
	n := &Engine{cfg: e.cfg, queries: queries, filters: filters}
	m, err := n.buildMachine(filters)
	if err != nil {
		return nil, nil, err
	}
	n.layers = []*core.Machine{m}
	n.layerOff = []int{0}
	n.removed = make([]bool, len(filters))
	n.bytes.Store(e.bytes.Load())
	n.lat.CopyFrom(&e.lat)
	return n, mapping, nil
}

// ApproxMemoryBytes estimates the memory held by the engine's machine
// layers (state arrays, transition tables, intern indexes). Layered
// engines derived from a shared base double-count nothing: each layer is
// one machine, counted once.
func (e *Engine) ApproxMemoryBytes() int64 {
	var b int64
	for _, m := range e.layers {
		b += m.ApproxMemoryBytes()
	}
	return b
}

// Queries returns a copy of the workload's filter texts (including removed
// slots, which keep their index).
func (e *Engine) Queries() []string {
	return append([]string(nil), e.queries...)
}

// Removed returns a copy of the removed-filter mask: Removed()[i] reports
// whether filter i has been unregistered with RemoveQuery/WithoutQuery.
func (e *Engine) Removed() []bool {
	return append([]bool(nil), e.removed...)
}
