// Flat open-addressing hash tables for the lazily filled transition
// functions. The built-in map costs a hash-function call through an
// interface, bucket chasing and (for the intern indexes) a slice-of-slices
// allocation per entry; these tables are linear-probed arrays over packed
// integer keys, so a warm-path lookup is one multiply-shift hash plus a few
// contiguous compares, with zero allocation.
//
// All transition-table key components are non-negative int32 state/symbol
// ids, so a packed key never has the top bit of either half set and
// ^uint64(0) can serve as the empty-slot marker.

package core

// mix64 is the splitmix64 finalizer: a cheap full-avalanche hash for packed
// integer keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	emptyKey64  = ^uint64(0)
	tabMinSlots = 16
)

// packPush packs a (top-down state, symbol) pair for the push table.
func packPush(qt, sym int32) uint64 {
	return uint64(uint32(qt))<<32 | uint64(uint32(sym))
}

// packAdd packs a (state, state) pair for the add and intersect tables.
func packAdd(qbs, qaux int32) uint64 {
	return uint64(uint32(qbs))<<32 | uint64(uint32(qaux))
}

// tab64 maps a packed uint64 key to an int32 state id.
type tab64 struct {
	keys []uint64
	vals []int32
	n    int
}

func (t *tab64) init(n int) {
	t.keys = make([]uint64, n)
	t.vals = make([]int32, n)
	t.n = 0
	for i := range t.keys {
		t.keys[i] = emptyKey64
	}
}

func (t *tab64) get(key uint64) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == emptyKey64 {
			return 0, false
		}
	}
}

func (t *tab64) put(key uint64, val int32) {
	if len(t.keys) == 0 {
		t.init(tabMinSlots)
	} else if (t.n+1)*4 > len(t.keys)*3 {
		old := *t
		t.init(len(t.keys) * 2)
		for i, k := range old.keys {
			if k != emptyKey64 {
				t.set(k, old.vals[i])
			}
		}
	}
	t.set(key, val)
}

// set inserts or overwrites without growth checks.
func (t *tab64) set(key uint64, val int32) {
	mask := uint64(len(t.keys) - 1)
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			t.vals[i] = val
			return
		}
		if k == emptyKey64 {
			t.keys[i] = key
			t.vals[i] = val
			t.n++
			return
		}
	}
}

// each visits all entries in unspecified order.
func (t *tab64) each(f func(key uint64, val int32)) {
	for i, k := range t.keys {
		if k != emptyKey64 {
			f(k, t.vals[i])
		}
	}
}

func (t *tab64) len() int { return t.n }

func (t *tab64) memBytes() int64 { return int64(len(t.keys)) * 12 }

// key128 is a two-word key for the transitions whose inputs exceed 64 bits
// (pop: two states + symbol; value: state + interval id). lo is never
// ^uint64(0) for a real key, which marks empty slots.
type key128 struct{ lo, hi uint64 }

// packPop packs (bottom-up state, top-down state, symbol) for the pop table.
func packPop(qb, qt, sym int32) key128 {
	return key128{lo: uint64(uint32(qb))<<32 | uint64(uint32(qt)), hi: uint64(uint32(sym))}
}

// packValue packs (top-down state, predicate-index interval id) for the
// value table. IntervalKey is always non-negative.
func packValue(qt int32, interval int64) key128 {
	return key128{lo: uint64(uint32(qt)), hi: uint64(interval)}
}

func (k key128) hash() uint64 { return mix64(k.lo ^ mix64(k.hi)) }

// tabE maps a key128 to an entry (resulting state + early-fired filter
// oids).
type tabE struct {
	keys   []key128
	states []int32
	early  [][]int32
	n      int
}

func (t *tabE) init(n int) {
	t.keys = make([]key128, n)
	t.states = make([]int32, n)
	t.early = make([][]int32, n)
	t.n = 0
	for i := range t.keys {
		t.keys[i].lo = emptyKey64
	}
}

func (t *tabE) get(key key128) (entry, bool) {
	if t.n == 0 {
		return entry{}, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := key.hash() & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			return entry{state: t.states[i], early: t.early[i]}, true
		}
		if k.lo == emptyKey64 {
			return entry{}, false
		}
	}
}

func (t *tabE) put(key key128, e entry) {
	if len(t.keys) == 0 {
		t.init(tabMinSlots)
	} else if (t.n+1)*4 > len(t.keys)*3 {
		old := *t
		t.init(len(t.keys) * 2)
		for i, k := range old.keys {
			if k.lo != emptyKey64 {
				t.set(k, entry{state: old.states[i], early: old.early[i]})
			}
		}
	}
	t.set(key, e)
}

func (t *tabE) set(key key128, e entry) {
	mask := uint64(len(t.keys) - 1)
	for i := key.hash() & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			t.states[i] = e.state
			t.early[i] = e.early
			return
		}
		if k.lo == emptyKey64 {
			t.keys[i] = key
			t.states[i] = e.state
			t.early[i] = e.early
			t.n++
			return
		}
	}
}

func (t *tabE) each(f func(key key128, e entry)) {
	for i, k := range t.keys {
		if k.lo != emptyKey64 {
			f(k, entry{state: t.states[i], early: t.early[i]})
		}
	}
}

func (t *tabE) len() int { return t.n }

func (t *tabE) memBytes() int64 {
	b := int64(len(t.keys)) * 44 // 16B key + 4B state + 24B slice header
	for _, e := range t.early {
		b += 4 * int64(len(e))
	}
	return b
}

// internTab is the hash-cons index for interned state sets: it maps a 64-bit
// set signature to candidate set ids. Signatures may collide, so linear
// probing keeps walking past entries whose signature matches but whose set
// (checked via eq) does not.
type internTab struct {
	sigs []uint64
	ids  []int32
	n    int
}

func (t *internTab) init(n int) {
	t.sigs = make([]uint64, n)
	t.ids = make([]int32, n)
	t.n = 0
	for i := range t.ids {
		t.ids[i] = -1
	}
}

// lookup returns the id of the set with this signature for which eq holds,
// or -1. Empty slots are marked by id -1 (signatures carry no reserved
// value).
func (t *internTab) lookup(sig uint64, eq func(id int32) bool) int32 {
	if t.n == 0 {
		return -1
	}
	mask := uint64(len(t.sigs) - 1)
	for i := mix64(sig) & mask; ; i = (i + 1) & mask {
		id := t.ids[i]
		if id < 0 {
			return -1
		}
		if t.sigs[i] == sig && eq(id) {
			return id
		}
	}
}

// add inserts a (signature, id) pair; the caller has already checked the id
// is absent.
func (t *internTab) add(sig uint64, id int32) {
	if len(t.sigs) == 0 {
		t.init(tabMinSlots)
	} else if (t.n+1)*4 > len(t.sigs)*3 {
		old := *t
		t.init(len(t.sigs) * 2)
		for i, oid := range old.ids {
			if oid >= 0 {
				t.set(old.sigs[i], oid)
			}
		}
	}
	t.set(sig, id)
}

func (t *internTab) set(sig uint64, id int32) {
	mask := uint64(len(t.sigs) - 1)
	for i := mix64(sig) & mask; ; i = (i + 1) & mask {
		if t.ids[i] < 0 {
			t.sigs[i] = sig
			t.ids[i] = id
			t.n++
			return
		}
	}
}

func (t *internTab) memBytes() int64 { return int64(len(t.sigs)) * 12 }
