package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/server"
)

// queriesDoc mirrors the /debug/queries payload.
type queriesDoc struct {
	Enabled  bool  `json:"enabled"`
	Tracked  int   `json:"tracked"`
	Cap      int   `json:"cap"`
	Overflow int64 `json:"overflow"`
	Queries  []struct {
		Key           uint64  `json:"key"`
		Query         string  `json:"query"`
		FilterSeconds float64 `json:"filter_seconds"`
		StatesCreated int64   `json:"states_created"`
		Matches       int64   `json:"matches"`
		Fanout        int64   `json:"fanout"`
		ReplayDocs    int64   `json:"replay_docs"`
	} `json:"queries"`
}

func getQueries(t testing.TB, debugAddr string) queriesDoc {
	t.Helper()
	resp, err := http.Get("http://" + debugAddr + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc queriesDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("decode /debug/queries: %v\n%s", err, b)
	}
	return doc
}

// TestDebugQueriesRanking drives traced traffic at two subscriptions and
// checks /debug/queries ranks the one attracting the expensive documents,
// with the per-query top-K series on /metrics agreeing.
func TestDebugQueriesRanking(t *testing.T) {
	srv := startServer(t, server.Config{DebugAddr: "127.0.0.1:0", TraceSample: 1})
	col := newCollector()
	c := dialSub(t, srv.Addr(), col)
	if _, err := c.Subscribe("//order"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("//never"); err != nil {
		t.Fatal(err)
	}
	pub := dialSub(t, srv.Addr(), nil)
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, err := pub.Publish([]byte(`<order><sku>1</sku></order>`)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "deliveries", func() bool { return col.count() == rounds })

	doc := getQueries(t, srv.DebugAddr())
	if !doc.Enabled {
		t.Fatal("/debug/queries reports disabled with tracing on")
	}
	if doc.Tracked != 1 || len(doc.Queries) != 1 {
		t.Fatalf("tracked = %d, queries = %+v; want exactly the matched query", doc.Tracked, doc.Queries)
	}
	top := doc.Queries[0]
	if !strings.Contains(top.Query, "order") {
		t.Fatalf("top query = %q, want the //order filter", top.Query)
	}
	if top.Matches != rounds || top.Fanout != rounds {
		t.Fatalf("top = %+v, want %d matches and fanout", top, rounds)
	}
	if top.FilterSeconds <= 0 {
		t.Fatalf("top filter_seconds = %v, want > 0", top.FilterSeconds)
	}

	body := scrape(t, srv.DebugAddr())
	for _, want := range []string{
		"xpush_query_filter_seconds_total{",
		"xpush_query_matches_total{",
		`key="other"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
	got := -1.0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `xpush_query_matches_total{key="`) && !strings.Contains(line, `key="other"`) {
			if i := strings.LastIndexByte(line, ' '); i >= 0 {
				fmt.Sscanf(line[i+1:], "%g", &got)
			}
			break
		}
	}
	if got != rounds {
		t.Fatalf("xpush_query_matches_total top series = %v, want %d", got, rounds)
	}
}

// TestDebugQueriesDisabled: without tracing the profiler does not exist and
// the endpoint says so instead of serving an empty ranking as real data.
func TestDebugQueriesDisabled(t *testing.T) {
	srv := startServer(t, server.Config{DebugAddr: "127.0.0.1:0"})
	pub := dialSub(t, srv.Addr(), nil)
	if _, err := pub.Publish([]byte(`<a/>`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if doc := getQueries(t, srv.DebugAddr()); doc.Enabled || len(doc.Queries) != 0 {
		t.Fatalf("disabled profiler served %+v", doc)
	}
}
