package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokSlash
	tokDblSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokComma
	tokStar
	tokAt
	tokDot
	tokName   // identifier: label, and, or, not, text, contains, ...
	tokNumber // numeric literal
	tokString // quoted string literal
	tokOp     // relational operator
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokSlash:
		return "/"
	case tokDblSlash:
		return "//"
	case tokLBracket:
		return "["
	case tokRBracket:
		return "]"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokStar:
		return "*"
	case tokAt:
		return "@"
	case tokDot:
		return "."
	case tokName:
		return "name"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokOp:
		return "operator"
	default:
		return "token(?)"
	}
}

type token struct {
	kind tokenKind
	text string  // for tokName, tokOp, tokString (unquoted)
	num  float64 // for tokNumber
	pos  int
}

// SyntaxError reports a parse failure with a byte offset into the input.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Input)
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Input: l.input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.input) {
		switch l.input[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.input[l.pos]
	switch c {
	case '/':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '/' {
			l.pos++
			return token{kind: tokDblSlash, pos: start}, nil
		}
		return token{kind: tokSlash, pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case '!':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case '<', '>':
		l.pos++
		op := string(c)
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			op += "="
		}
		return token{kind: tokOp, text: op, pos: start}, nil
	case '"', '\'':
		// String literal. A doubled quote character inside the literal
		// denotes one literal quote (XPath 2.0-style escaping).
		quote := c
		l.pos++
		var sb strings.Builder
		for {
			i := strings.IndexByte(l.input[l.pos:], quote)
			if i < 0 {
				return token{}, l.errf(start, "unterminated string literal")
			}
			sb.WriteString(l.input[l.pos : l.pos+i])
			l.pos += i + 1
			if l.pos < len(l.input) && l.input[l.pos] == quote {
				sb.WriteByte(quote)
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case '.':
		// Either the self step '.' or a number like .5 — disambiguate
		// on the following character.
		if l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9' {
			return l.lexNumber(start)
		}
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	}
	if c == '-' || c >= '0' && c <= '9' {
		return l.lexNumber(start)
	}
	if isNameStart(c) {
		l.pos++
		for l.pos < len(l.input) && isNameChar(l.input[l.pos]) {
			l.pos++
		}
		return token{kind: tokName, text: l.input[start:l.pos], pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func (l *lexer) lexNumber(start int) (token, error) {
	i := l.pos
	if i < len(l.input) && l.input[i] == '-' {
		i++
	}
	for i < len(l.input) && (l.input[i] >= '0' && l.input[i] <= '9' || l.input[i] == '.') {
		i++
	}
	// Optional exponent.
	if i < len(l.input) && (l.input[i] == 'e' || l.input[i] == 'E') {
		j := i + 1
		if j < len(l.input) && (l.input[j] == '+' || l.input[j] == '-') {
			j++
		}
		if j < len(l.input) && l.input[j] >= '0' && l.input[j] <= '9' {
			for j < len(l.input) && l.input[j] >= '0' && l.input[j] <= '9' {
				j++
			}
			i = j
		}
	}
	text := l.input[l.pos:i]
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "bad number %q", text)
	}
	l.pos = i
	return token{kind: tokNumber, num: n, pos: start}, nil
}
