package xpushstream

import (
	"strings"
	"testing"
)

func TestEngineStatsObservability(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]", "/m[v=2]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	stream := strings.Repeat("<m><v>1</v></m>", 100)
	if err := e.FilterStream(strings.NewReader(stream), func([]int) {}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Documents != 100 {
		t.Errorf("documents = %d", s.Documents)
	}
	if s.Bytes != int64(len(stream)) {
		t.Errorf("bytes = %d, want %d", s.Bytes, len(stream))
	}
	if s.FilterLatency.Count != 100 {
		t.Errorf("latency observations = %d", s.FilterLatency.Count)
	}
	sum := s.LatencySummary()
	if sum.P50 <= 0 || sum.Max < sum.P50 || sum.P99 < sum.P50 {
		t.Errorf("implausible latency summary: %+v", sum)
	}
	// Identical documents: after the first few, lookups are all hits, so
	// the window over the last <=64 documents must be warmer than the
	// cumulative ratio that still carries the cold start.
	if s.WindowDocuments == 0 || s.WindowDocuments > 100 {
		t.Errorf("window documents = %d", s.WindowDocuments)
	}
	if s.WindowHitRatio < s.HitRatio {
		t.Errorf("window hit ratio %.4f < cumulative %.4f", s.WindowHitRatio, s.HitRatio)
	}
	if s.WindowHitRatio != 1 {
		t.Errorf("warm window hit ratio = %.4f, want 1", s.WindowHitRatio)
	}
	if s.WindowStatesAdded != 0 {
		t.Errorf("warm window added %d states", s.WindowStatesAdded)
	}
}

func TestRegisterMetricsPrometheusOutput(t *testing.T) {
	e, err := Compile([]string{"//order[total > 10]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.FilterDocument([]byte("<order><total>50</total></order>")); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	RegisterMetrics(reg, "", e)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"xpush_documents_total 10",
		"xpush_matches_total 10",
		"xpush_events_total ",
		"xpush_bytes_total ",
		"xpush_hit_ratio ",
		"xpush_window_hit_ratio ",
		"# TYPE xpush_filter_latency_seconds summary",
		`xpush_filter_latency_seconds{quantile="0.5"}`,
		`xpush_filter_latency_seconds{quantile="0.99"}`,
		"xpush_filter_latency_seconds_count 10",
		"xpush_filter_latency_seconds_max ",
		`xpush_filter_latency_histogram_seconds_bucket{le="+Inf"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

func TestPoolStats(t *testing.T) {
	base, err := Compile([]string{"//x"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	stream := strings.Repeat("<d><x/></d>", 300)
	if err := pool.FilterStream(strings.NewReader(stream), func(Result) {}); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Documents != 300 {
		t.Errorf("documents = %d", s.Documents)
	}
	if s.Matches != 300 {
		t.Errorf("matches = %d", s.Matches)
	}
	if s.FilterLatency.Count != 300 {
		t.Errorf("latency observations = %d", s.FilterLatency.Count)
	}
	if s.Bytes != int64(len(stream)) {
		t.Errorf("bytes = %d, want %d", s.Bytes, len(stream))
	}
}
