package afa

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xpath"
)

func TestWriteDot(t *testing.T) {
	a := compileRunning(t)
	var buf bytes.Buffer
	if err := a.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph afa {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a dot digraph:\n%s", out)
	}
	for _, want := range []string{
		"subgraph cluster_q0",
		"subgraph cluster_q1",
		`label="ε"`,
		"shape=box",     // the AND states
		"peripheries=2", // terminals
		"s0 -> s0",      // the // self-loop on the initial state
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q", want)
		}
	}
	// One node line per state.
	if n := strings.Count(out, "[shape="); n != a.NumStates() {
		t.Errorf("node lines = %d, want %d", n, a.NumStates())
	}
}

func TestWriteDotNotState(t *testing.T) {
	a := MustCompile(xpath.MustParse("/a[not(b=1)]"))
	var buf bytes.Buffer
	if err := a.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shape=diamond") {
		t.Error("NOT state not rendered as diamond")
	}
}
