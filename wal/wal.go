// Package wal is the broker's durability layer: a segmented, CRC32C-framed
// append-only document log. Every published XML document is appended (and
// assigned a monotonic offset) before fan-out, so a broker crash loses no
// accepted documents; durable subscribers persist a cursor (see CursorStore)
// and replay matched documents from it on reconnect — the at-least-once half
// of the paper's message-routing application (Sec. 1) that the filter engine
// alone cannot provide.
//
// On-disk layout: Options.Dir holds segment files named
// <base-offset-hex-16>.wseg. Each segment starts with a 16-byte header (an
// 8-byte magic and the big-endian base offset) followed by records:
//
//	+--------+--------+----------------+
//	| u32 BE | u32 BE | payload        |
//	| length | CRC32C | length bytes   |
//	+--------+--------+----------------+
//
// Records are never rewritten; the log grows by appending to the active
// (last) segment and rotating to a new one on size/age bounds. Retention
// deletes whole sealed segments from the front. Recovery (Open) scans every
// segment and truncates the log at the first invalid record — a torn tail
// from a crash mid-append loses only the record being written, never an
// earlier one. A zero-length record is invalid by construction so a
// zero-filled tail (filesystems may zero-extend on crash) is recognized as
// torn.
//
// Durability is configurable per Options.Fsync: "always" fsyncs each append,
// "interval" fsyncs on a timer (bounded loss window), "never" leaves
// flushing to the OS (rotation and Close still fsync).
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	segSuffix  = ".wseg"
	headerSize = 16 // 8-byte magic + u64 BE base offset
	recHdrSize = 8  // u32 BE length + u32 BE CRC32C
)

var segMagic = [8]byte{'X', 'P', 'W', 'A', 'L', 'S', 'G', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrTruncated reports a read at an offset older than the retained log
	// (the segment holding it was deleted by retention). Readers recover by
	// restarting from FirstOffset.
	ErrTruncated = errors.New("wal: offset predates the retained log")
)

// FsyncPolicy selects when appends are flushed to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every append: no accepted document is lost
	// to a crash, at the cost of one fsync per publish.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval fsyncs on a timer (Options.FsyncEvery): a crash loses
	// at most one interval of appends.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS; rotation and Close still fsync.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy name from configuration ("" =
// FsyncInterval).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch p := FsyncPolicy(s); p {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return p, nil
	case "":
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want %s, %s, or %s)",
		s, FsyncAlways, FsyncInterval, FsyncNever)
}

// Options configures a Log. Only Dir is required.
type Options struct {
	// Dir is the segment directory (created if missing).
	Dir string
	// SegmentBytes rotates the active segment when it exceeds this size
	// (<= 0 = 64 MiB).
	SegmentBytes int64
	// SegmentAge rotates a non-empty active segment older than this
	// (0 = size-based rotation only). Evaluated on append.
	SegmentAge time.Duration
	// Fsync selects the flush policy ("" = FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (<= 0 = 100ms).
	FsyncEvery time.Duration
	// RetentionBytes deletes the oldest sealed segments while the log
	// exceeds this size (0 = unlimited). The active segment is never
	// deleted. Evaluated on rotation.
	RetentionBytes int64
	// RetentionAge deletes sealed segments whose newest record is older
	// than this (0 = unlimited). Evaluated on rotation.
	RetentionAge time.Duration
	// MaxRecordBytes bounds one record's payload (<= 0 = 64 MiB); larger
	// lengths in a file are treated as corruption during recovery.
	MaxRecordBytes int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return 64 << 20
}

func (o *Options) fsyncEvery() time.Duration {
	if o.FsyncEvery > 0 {
		return o.FsyncEvery
	}
	return 100 * time.Millisecond
}

func (o *Options) maxRecordBytes() int {
	if o.MaxRecordBytes > 0 {
		return o.MaxRecordBytes
	}
	return 64 << 20
}

// segment is one on-disk log file. base is the offset of its first record;
// sealed segments are immutable, the last segment is the append target.
type segment struct {
	base       uint64
	records    uint64
	size       int64 // bytes including the header
	path       string
	created    time.Time
	lastAppend time.Time // newest record's write time (RetentionAge basis)
}

// Log is the append-only document log. Append/Sync/Close and the reader API
// are safe for concurrent use; there is a single writer (the Log itself).
type Log struct {
	opt Options

	mu     sync.Mutex
	segs   []*segment
	f      *os.File // active segment, positioned at its end
	wbuf   []byte
	next   uint64 // next offset to assign
	dirty  bool   // active segment has unsynced appends
	closed bool

	appends, appendErrs, syncs, rotations, retired int64

	stop chan struct{}
	wg   sync.WaitGroup

	fsyncLat obs.Histogram
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	Segments        int
	Bytes           int64
	FirstOffset     uint64
	NextOffset      uint64
	Appends         int64
	AppendErrors    int64
	Syncs           int64
	Rotations       int64
	RetiredSegments int64
}

func (l *Log) logf(format string, args ...any) {
	if l.opt.Logf != nil {
		l.opt.Logf(format, args...)
	}
}

// Open opens (or creates) the log in opt.Dir, recovering from a previous
// crash: every segment is scanned and the log is truncated at the first
// invalid record (torn tail). The returned log is positioned to append.
func Open(opt Options) (*Log, error) {
	if opt.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	pol, err := ParseFsyncPolicy(string(opt.Fsync))
	if err != nil {
		return nil, err
	}
	opt.Fsync = pol
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{opt: opt, stop: make(chan struct{})}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.createSegment(l.next); err != nil {
			return nil, err
		}
	} else {
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(last.size, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
	}
	if pol == FsyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// recover scans the segment directory, truncating the log at the first
// invalid record and deleting any unreachable later segments.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return err
	}
	type found struct {
		base uint64
		path string
	}
	var files []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			l.logf("wal: ignoring unparsable segment name %s", name)
			continue
		}
		files = append(files, found{base, filepath.Join(l.opt.Dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].base < files[j].base })

	drop := func(from int, why string) {
		for _, f := range files[from:] {
			l.logf("wal: removing unreachable segment %s (%s)", f.path, why)
			os.Remove(f.path)
		}
	}
	for i, f := range files {
		if i > 0 && f.base != l.next {
			drop(i, fmt.Sprintf("base %d does not continue offset %d", f.base, l.next))
			break
		}
		sc, err := scanSegment(f.path, f.base, l.opt.maxRecordBytes())
		if err != nil {
			return err
		}
		if !sc.headerOK {
			drop(i, "invalid segment header")
			break
		}
		if sc.torn {
			l.logf("wal: truncating torn tail of %s at %d bytes (%d valid records)",
				f.path, sc.validSize, sc.records)
			if err := os.Truncate(f.path, sc.validSize); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", f.path, err)
			}
		}
		info, ierr := os.Stat(f.path)
		created := time.Now()
		if ierr == nil {
			created = info.ModTime()
		}
		// ModTime is when the segment was last written, i.e. its newest
		// record's age — the right basis for both rotation and retention
		// after a restart.
		l.segs = append(l.segs, &segment{
			base: f.base, records: sc.records, size: sc.validSize, path: f.path,
			created: created, lastAppend: created,
		})
		l.next = f.base + sc.records
		if sc.torn {
			drop(i+1, "follows a torn segment")
			break
		}
	}
	return nil
}

// segScan is the result of scanning one segment file.
type segScan struct {
	headerOK  bool
	records   uint64
	validSize int64
	torn      bool // trailing bytes past validSize are invalid
}

// scanSegment validates a segment sequentially: header, then records until
// the first invalid one.
func scanSegment(path string, wantBase uint64, maxRecord int) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return segScan{torn: true}, nil // shorter than a header: unusable
	}
	if [8]byte(hdr[:8]) != segMagic || beU64(hdr[8:]) != wantBase {
		return segScan{torn: true}, nil
	}
	sc := segScan{headerOK: true, validSize: headerSize}
	var rh [recHdrSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			sc.torn = err == io.ErrUnexpectedEOF
			return sc, nil
		}
		plen := int(beU32(rh[:4]))
		if plen <= 0 || plen > maxRecord {
			sc.torn = true
			return sc, nil
		}
		if cap(buf) < plen {
			buf = make([]byte, plen)
		}
		if _, err := io.ReadFull(f, buf[:plen]); err != nil {
			sc.torn = true
			return sc, nil
		}
		if crc32.Checksum(buf[:plen], castagnoli) != beU32(rh[4:]) {
			sc.torn = true
			return sc, nil
		}
		sc.records++
		sc.validSize += recHdrSize + int64(plen)
	}
}

// createSegment seals nothing and opens a fresh active segment at base.
func (l *Log) createSegment(base uint64) error {
	path := filepath.Join(l.opt.Dir, fmt.Sprintf("%016x%s", base, segSuffix))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], segMagic[:])
	putU64(hdr[8:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	syncDir(l.opt.Dir)
	l.f = f
	now := time.Now()
	l.segs = append(l.segs, &segment{base: base, size: headerSize, path: path, created: now, lastAppend: now})
	return nil
}

// Append appends one document and returns its offset. The document is on
// disk (modulo the fsync policy) before Append returns; a failed append
// assigns no offset and leaves the log consistent — under FsyncAlways a
// record whose fsync fails is truncated back out, unless that truncation
// itself fails, in which case the record (and its offset) stand and the
// error is still returned: the caller sees a rejected append that may
// nevertheless be replayed, the at-least-once-safe direction.
func (l *Log) Append(doc []byte) (uint64, error) {
	return l.AppendTraced(doc, nil, trace.NoSpan)
}

// AppendTraced is Append with span recording: when tc is non-nil and the
// fsync policy is FsyncAlways, the wait for stable storage is recorded as
// an "fsync_wait" child span of parent (under the other policies the
// append returns before any sync, so there is no wait to record). A nil tc
// selects the plain path.
func (l *Log) AppendTraced(doc []byte, tc *trace.Ctx, parent trace.SpanID) (uint64, error) {
	if len(doc) == 0 {
		return 0, errors.New("wal: empty document")
	}
	if len(doc) > l.opt.maxRecordBytes() {
		return 0, fmt.Errorf("wal: document %d bytes exceeds record limit %d", len(doc), l.opt.maxRecordBytes())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	active := l.segs[len(l.segs)-1]
	if active.size >= l.opt.segmentBytes() ||
		(l.opt.SegmentAge > 0 && active.records > 0 && time.Since(active.created) >= l.opt.SegmentAge) {
		if err := l.rotateLocked(); err != nil {
			l.appendErrs++
			return 0, err
		}
		active = l.segs[len(l.segs)-1]
	}
	l.wbuf = l.wbuf[:0]
	var rh [recHdrSize]byte
	putU32(rh[:4], uint32(len(doc)))
	putU32(rh[4:], crc32.Checksum(doc, castagnoli))
	l.wbuf = append(append(l.wbuf, rh[:]...), doc...)
	n, err := l.f.Write(l.wbuf)
	if err != nil {
		l.appendErrs++
		if n > 0 {
			// Undo the partial write so the on-disk tail stays valid.
			if terr := l.f.Truncate(active.size); terr == nil {
				l.f.Seek(active.size, io.SeekStart)
			} else {
				l.logf("wal: cannot undo partial append (%v); recovery will truncate it", terr)
			}
		}
		return 0, err
	}
	lastAppend := active.lastAppend
	active.size += int64(n)
	active.records++
	active.lastAppend = time.Now()
	off := l.next
	l.next++
	l.appends++
	switch l.opt.Fsync {
	case FsyncAlways:
		fsSpan := tc.StartSpan("fsync_wait", parent)
		serr := l.syncLocked(true)
		tc.EndSpan(fsSpan)
		if serr != nil {
			// The record reached the file but not stable storage. Undo it so
			// the failed append assigns no offset: the server rejects the
			// publish, and a surviving record would be replayed to durable
			// subscribers as a document nobody accepted.
			l.appendErrs++
			if terr := l.f.Truncate(active.size - int64(n)); terr != nil {
				l.logf("wal: cannot undo append after failed fsync (%v); offset %d stands and may be redelivered", terr, off)
				return off, serr
			}
			l.f.Seek(active.size-int64(n), io.SeekStart)
			active.size -= int64(n)
			active.records--
			active.lastAppend = lastAppend
			l.next--
			l.appends--
			return 0, serr
		}
	case FsyncNever:
	default: // FsyncInterval
		l.dirty = true
	}
	return off, nil
}

// rotateLocked seals the active segment (fsync + close) and opens the next.
// l.f is nil when a previous rotation sealed the segment but failed in
// createSegment (e.g. transient disk-full); a retry then proceeds straight to
// segment creation instead of failing forever on the nil file.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
		l.dirty = false
	}
	if err := l.createSegment(l.next); err != nil {
		return err
	}
	l.rotations++
	l.applyRetentionLocked()
	return nil
}

// applyRetentionLocked deletes sealed segments from the front per the
// retention options. The active segment is never deleted.
func (l *Log) applyRetentionLocked() {
	if l.opt.RetentionBytes <= 0 && l.opt.RetentionAge <= 0 {
		return
	}
	for len(l.segs) > 1 {
		oldest := l.segs[0]
		drop := false
		if l.opt.RetentionBytes > 0 {
			var total int64
			for _, s := range l.segs {
				total += s.size
			}
			drop = total > l.opt.RetentionBytes
		}
		if !drop && l.opt.RetentionAge > 0 && time.Since(oldest.lastAppend) > l.opt.RetentionAge {
			drop = true
		}
		if !drop {
			break
		}
		l.logf("wal: retention deleting segment %s (offsets %d-%d)",
			oldest.path, oldest.base, oldest.base+oldest.records-1)
		os.Remove(oldest.path)
		l.segs = l.segs[1:]
		l.retired++
	}
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked(true)
}

func (l *Log) syncLocked(force bool) error {
	if l.f == nil || (!force && !l.dirty) {
		return nil
	}
	t := time.Now()
	err := l.f.Sync()
	l.fsyncLat.Observe(time.Since(t).Seconds())
	l.syncs++
	if err == nil {
		l.dirty = false
	}
	return err
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.fsyncEvery())
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				if err := l.syncLocked(false); err != nil {
					l.logf("wal: interval fsync: %v", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close fsyncs and closes the active segment. Readers and appends fail with
// ErrClosed afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// FirstOffset returns the offset of the oldest retained record (equal to
// NextOffset when the log is empty).
func (l *Log) FirstOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.next
	}
	return l.segs[0].base
}

// NextOffset returns the offset the next append will be assigned.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:        len(l.segs),
		NextOffset:      l.next,
		FirstOffset:     l.next,
		Appends:         l.appends,
		AppendErrors:    l.appendErrs,
		Syncs:           l.syncs,
		Rotations:       l.rotations,
		RetiredSegments: l.retired,
	}
	if len(l.segs) > 0 {
		st.FirstOffset = l.segs[0].base
	}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	return st
}

// FsyncLatency returns the fsync latency histogram snapshot (seconds).
func (l *Log) FsyncLatency() obs.Snapshot { return l.fsyncLat.Snapshot() }

// VerifyResult summarizes a read-only integrity check of a log directory.
type VerifyResult struct {
	Segments    int
	Records     uint64
	FirstOffset uint64
	NextOffset  uint64
	Bytes       int64
	// Torn reports whether any invalid bytes follow the valid prefix (a
	// crash mid-append, or corruption); Open would truncate them.
	Torn bool
}

// Verify scans dir read-only and reports the valid record range and whether
// a torn tail (or unreachable segments) would be truncated by Open. It does
// not modify any file, so it is safe to run against a live log for tests
// and tooling.
func Verify(dir string) (VerifyResult, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return VerifyResult{}, err
	}
	type found struct {
		base uint64
		path string
	}
	var files []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue
		}
		files = append(files, found{base, filepath.Join(dir, name)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].base < files[j].base })
	var res VerifyResult
	first := true
	for i, f := range files {
		if !first && f.base != res.NextOffset {
			res.Torn = true
			break
		}
		sc, err := scanSegment(f.path, f.base, (&Options{}).maxRecordBytes())
		if err != nil {
			return res, err
		}
		if !sc.headerOK {
			res.Torn = true
			break
		}
		if first {
			res.FirstOffset = f.base
			first = false
		}
		res.Segments++
		res.Records += sc.records
		res.Bytes += sc.validSize
		res.NextOffset = f.base + sc.records
		if sc.torn {
			res.Torn = true
			break
		}
		if sc.records == 0 && i < len(files)-1 {
			// An empty sealed segment is only left behind by a crash.
			res.Torn = true
			break
		}
	}
	return res, nil
}

// syncDir fsyncs a directory so a new file's name survives a crash
// (best-effort: some platforms reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func beU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func beU64(b []byte) uint64 {
	return uint64(beU32(b[:4]))<<32 | uint64(beU32(b[4:8]))
}

func putU64(b []byte, v uint64) {
	putU32(b[:4], uint32(v>>32))
	putU32(b[4:8], uint32(v))
}
