package afa

// Theorem 6.1 analysis (Sec. 6): relationships between AFA states bound the
// number of accessible XPush states. Two states are related by
//
//   - subsumption  s ⇒ s': every node matched by s is matched by s',
//   - inconsistency s | s': no node is matched by both,
//   - independence otherwise,
//
// and the accessible-state count is at most the number of cliques in the
// independence graph. Deciding subsumption exactly is tree-pattern
// containment; this module implements a sound, conservative approximation
// (it may miss relationships but never invents them), which still yields a
// valid clique bound. The paper's examples hold under it: for the running
// example, the A2 initial state subsumes A1's .//a[@c>2] context state, the
// two =1 leaves are equivalent, and value leaves are inconsistent with all
// element states (no mixed content).

import (
	"math"

	"repro/internal/xmlval"
)

// Relation classifies a state pair.
type Relation uint8

const (
	// Independent states can match overlapping but incomparable node
	// sets.
	Independent Relation = iota
	// Subsumes means the first state's matches are contained in the
	// second's (s ⇒ s').
	Subsumes
	// SubsumedBy is the converse (s' ⇒ s).
	SubsumedBy
	// Equivalent means mutual subsumption.
	Equivalent
	// Inconsistent states never match the same node.
	Inconsistent
)

func (r Relation) String() string {
	switch r {
	case Subsumes:
		return "⇒"
	case SubsumedBy:
		return "⇐"
	case Equivalent:
		return "⇔"
	case Inconsistent:
		return "|"
	default:
		return "∥"
	}
}

// Report summarises the pairwise analysis.
type Report struct {
	States            int
	SubsumptionPairs  int // ordered pairs s ⇒ s' with s ≠ s'
	EquivalentPairs   int // unordered
	InconsistentPairs int // unordered
	IndependentPairs  int // unordered
	// MaxIndependentDegree is the largest independence-graph degree; a
	// rough clique-bound indicator (cliques are at most 2^degree+1
	// around any vertex).
	MaxIndependentDegree int
}

// Analyzer performs pairwise relationship queries with memoisation.
type Analyzer struct {
	a    *AFA
	memo map[[2]int32]bool // subsumption cache
	open map[[2]int32]bool // cycle guard (self-loops)
}

// NewAnalyzer returns an Analyzer for the AFA.
func (a *AFA) NewAnalyzer() *Analyzer {
	return &Analyzer{a: a, memo: map[[2]int32]bool{}, open: map[[2]int32]bool{}}
}

// Relate classifies a state pair.
func (an *Analyzer) Relate(s, t int32) Relation {
	// Exact-equivalence fast path: structurally identical states (common
	// subexpressions across filters, or duplicate filters in a workload)
	// are equivalent without the two recursive subsumption walks. Sound:
	// identical structure trivially implies mutual subsumption.
	if an.sameShape(s, t) {
		return Equivalent
	}
	if an.Inconsistent(s, t) {
		return Inconsistent
	}
	fw := an.Subsumes(s, t)
	bw := an.Subsumes(t, s)
	switch {
	case fw && bw:
		return Equivalent
	case fw:
		return Subsumes
	case bw:
		return SubsumedBy
	default:
		return Independent
	}
}

// Subsumes conservatively decides s ⇒ s' (false negatives possible, no
// false positives).
func (an *Analyzer) Subsumes(s, t int32) bool {
	if s == t {
		return true
	}
	key := [2]int32{s, t}
	if v, ok := an.memo[key]; ok {
		return v
	}
	if an.open[key] {
		// Recursing through self-loops: assume the weaker answer.
		return false
	}
	an.open[key] = true
	v := an.subsumes(s, t)
	delete(an.open, key)
	an.memo[key] = v
	return v
}

func (an *Analyzer) subsumes(s, t int32) bool {
	a := an.a
	ss, ts := &a.states[s], &a.states[t]
	// Anything subsumed by a universal terminal.
	if ts.terminal == TrueTerminal {
		return true
	}
	if ss.terminal == TrueTerminal {
		return false // TT matches everything; t (≠TT) does not
	}
	// Value leaves match data nodes only; element states match elements.
	if ss.terminal == LeafTerminal || ts.terminal == LeafTerminal {
		if ss.terminal != LeafTerminal || ts.terminal != LeafTerminal {
			return false
		}
		return predImplies(ss.op, ss.konst, ts.op, ts.konst)
	}
	// NOT: only the syntactically identical structure (not handled
	// beyond equality) — conservative.
	if ss.kind == NOT || ts.kind == NOT {
		return an.sameShape(s, t)
	}
	// s AND: every conjunct must hold, so a single conjunct subsuming t
	// suffices. t AND: s must imply every conjunct.
	if ts.kind == AND {
		for _, c := range ts.eps {
			if !an.Subsumes(s, c) {
				return false
			}
		}
		return true
	}
	if ss.kind == AND {
		for _, c := range ss.eps {
			if an.Subsumes(c, t) {
				return true
			}
		}
		return false
	}
	// OR s (ε alternatives): all alternatives must be subsumed.
	// OR t: finding one subsuming alternative suffices.
	if len(ss.eps) > 0 {
		for _, c := range ss.eps {
			if !an.Subsumes(c, t) {
				return false
			}
		}
		if len(ss.edges) == 0 {
			return true
		}
	}
	if len(ts.eps) > 0 {
		for _, c := range ts.eps {
			if an.Subsumes(s, c) {
				return true
			}
		}
		if len(ts.edges) == 0 {
			return false
		}
	}
	// Navigation OR states: s matches x via some edge (sym → tgt) on a
	// matching child; t must be able to cover every such way. For each
	// edge of s there must be an edge of t whose label covers it and
	// whose target subsumes it. Self-loops (descendant) require t to be
	// descendant-closed too.
	if len(ss.edges) == 0 {
		return false
	}
	for _, es := range ss.edges {
		if es.to == s {
			// Descendant loop: t must also loop (deep matches).
			if !hasSelfLoop(ts, t) {
				return false
			}
			continue
		}
		ok := false
		for _, et := range ts.edges {
			if et.to == t {
				continue
			}
			if symCovers(a.Syms, et.sym, es.sym) && an.Subsumes(es.to, et.to) {
				ok = true
				break
			}
			// A descendant loop on t also covers deeper matches
			// of s... handled conservatively by the loop check.
		}
		if !ok {
			return false
		}
	}
	return true
}

func hasSelfLoop(st *state, id int32) bool {
	for _, e := range st.edges {
		if e.to == id {
			return true
		}
	}
	return false
}

// symCovers reports whether transition label a fires on every input label b
// fires on.
func symCovers(s *Symbols, a, b int32) bool {
	if a == b {
		return true
	}
	if a == SymAnyElem {
		return !s.IsAttr(b)
	}
	if a == SymAnyAttr {
		return s.IsAttr(b)
	}
	return false
}

// sameShape checks structural identity (same kinds, labels, predicates) —
// the equivalence that arises from common subexpressions across filters.
func (an *Analyzer) sameShape(s, t int32) bool {
	if s == t {
		return true
	}
	a := an.a
	ss, ts := &a.states[s], &a.states[t]
	if ss.kind != ts.kind || ss.terminal != ts.terminal ||
		len(ss.eps) != len(ts.eps) || len(ss.edges) != len(ts.edges) {
		return false
	}
	if ss.terminal == LeafTerminal {
		return ss.op == ts.op && ss.konst == ts.konst
	}
	key := [2]int32{s, t}
	if an.open[key] {
		return true // self-loop pair: assume shapes match along the loop
	}
	an.open[key] = true
	defer delete(an.open, key)
	for i := range ss.eps {
		if !an.sameShape(ss.eps[i], ts.eps[i]) {
			return false
		}
	}
	for i := range ss.edges {
		es, et := ss.edges[i], ts.edges[i]
		if es.sym != et.sym {
			return false
		}
		esSelf, etSelf := es.to == s, et.to == t
		if esSelf != etSelf {
			return false
		}
		if !esSelf && !an.sameShape(es.to, et.to) {
			return false
		}
	}
	return true
}

// Inconsistent conservatively decides s | s'.
func (an *Analyzer) Inconsistent(s, t int32) bool {
	if s == t {
		return false
	}
	a := an.a
	ss, ts := &a.states[s], &a.states[t]
	sLeaf := ss.terminal == LeafTerminal
	tLeaf := ts.terminal == LeafTerminal
	// No mixed content: a value leaf never matches together with an
	// element-matching state (Sec. 6: "4 | s for every state s ≠ 13").
	if sLeaf != tLeaf {
		return true
	}
	if sLeaf && tLeaf {
		return predsDisjoint(ss.op, ss.konst, ts.op, ts.konst)
	}
	return false
}

// predImplies decides whether satisfying (op1 c1) forces (op2 c2) on every
// value.
func predImplies(op1 xmlval.Op, c1 xmlval.Const, op2 xmlval.Op, c2 xmlval.Const) bool {
	if op2 == xmlval.OpExists {
		return true
	}
	if op1 == op2 && c1 == c2 {
		return true
	}
	// Mixed domains: a numeric range never pins down string predicates
	// and vice versa, except equality of the same literal (handled
	// above).
	if c1.Kind != c2.Kind {
		return false
	}
	if c1.Kind != xmlval.Number {
		// String implication: only via equality.
		if op1 == xmlval.OpEq {
			v := xmlval.New(c1.Str)
			return xmlval.Eval(op2, v, c2)
		}
		return false
	}
	a, b := c1.Num, c2.Num
	switch op1 {
	case xmlval.OpEq:
		return xmlval.Eval(op2, xmlval.FromNumber(a), c2)
	case xmlval.OpLt: // v < a
		switch op2 {
		case xmlval.OpLt:
			return a <= b
		case xmlval.OpLe:
			return a <= b // v < a ≤ b ⇒ v ≤ b (even v < b)
		case xmlval.OpNe:
			return a <= b
		}
	case xmlval.OpLe: // v ≤ a
		switch op2 {
		case xmlval.OpLe:
			return a <= b
		case xmlval.OpLt:
			return a < b
		case xmlval.OpNe:
			return a < b
		}
	case xmlval.OpGt: // v > a
		switch op2 {
		case xmlval.OpGt:
			return a >= b
		case xmlval.OpGe:
			return a >= b
		case xmlval.OpNe:
			return a >= b
		}
	case xmlval.OpGe: // v ≥ a
		switch op2 {
		case xmlval.OpGe:
			return a >= b
		case xmlval.OpGt:
			return a > b
		case xmlval.OpNe:
			return a > b
		}
	}
	return false
}

// predsDisjoint decides whether two atomic predicates can never hold on the
// same value.
func predsDisjoint(op1 xmlval.Op, c1 xmlval.Const, op2 xmlval.Op, c2 xmlval.Const) bool {
	if op1 == xmlval.OpExists || op2 == xmlval.OpExists {
		return false
	}
	if c1.Kind != c2.Kind {
		// A value can satisfy a numeric and a string predicate at
		// once ("10" = 10 and "10" = "10").
		return false
	}
	if c1.Kind != xmlval.Number {
		if op1 == xmlval.OpEq && op2 == xmlval.OpEq {
			return c1.Str != c2.Str
		}
		return false
	}
	a, b := c1.Num, c2.Num
	type iv struct {
		lo, hi         float64
		loOpen, hiOpen bool
	}
	toIv := func(op xmlval.Op, c float64) (iv, bool) {
		inf := math.Inf(1)
		switch op {
		case xmlval.OpEq:
			return iv{lo: c, hi: c}, true
		case xmlval.OpLt:
			return iv{lo: -inf, hi: c, hiOpen: true}, true
		case xmlval.OpLe:
			return iv{lo: -inf, hi: c}, true
		case xmlval.OpGt:
			return iv{lo: c, hi: inf, loOpen: true}, true
		case xmlval.OpGe:
			return iv{lo: c, hi: inf}, true
		default:
			return iv{}, false // !=, contains, ... not intervals
		}
	}
	i1, ok1 := toIv(op1, a)
	i2, ok2 := toIv(op2, b)
	if !ok1 || !ok2 {
		// != c1 vs = c2 conflicts only when c1 == c2.
		if op1 == xmlval.OpNe && op2 == xmlval.OpEq {
			return a == b
		}
		if op2 == xmlval.OpNe && op1 == xmlval.OpEq {
			return a == b
		}
		return false
	}
	lo, loOpen := i1.lo, i1.loOpen
	if i2.lo > lo || i2.lo == lo && i2.loOpen {
		lo, loOpen = i2.lo, i2.loOpen
	}
	hi, hiOpen := i1.hi, i1.hiOpen
	if i2.hi < hi || i2.hi == hi && i2.hiOpen {
		hi, hiOpen = i2.hi, i2.hiOpen
	}
	if lo > hi {
		return true
	}
	if lo == hi && (loOpen || hiOpen) {
		return true
	}
	return false
}

// RelateQueries classifies two compiled filters by relating their initial
// states: filter i subsumes filter j when every document matching i matches
// j, etc. Conservative like Relate — it may report Independent for related
// filters, never the converse.
func (an *Analyzer) RelateQueries(i, j int) Relation {
	return an.Relate(an.a.Queries[i].Initial, an.a.Queries[j].Initial)
}

// QueryReport summarises the pairwise filter-level analysis — the workload
// dedup registry exposes these as metrics so operators can see how much
// further subsumption-based sharing (beyond exact equality) could collapse
// the workload.
type QueryReport struct {
	Queries           int
	SubsumedPairs     int // ordered pairs i ⇒ j with i ≠ j
	EquivalentPairs   int // unordered
	InconsistentPairs int // unordered
}

// AnalyzeQueries computes the filter-level pairwise report. Quadratic in the
// number of filters; each pair costs one Relate on the filters' initial
// states (memoised within the analyzer).
func (a *AFA) AnalyzeQueries() QueryReport {
	an := a.NewAnalyzer()
	n := len(a.Queries)
	r := QueryReport{Queries: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch an.RelateQueries(i, j) {
			case Equivalent:
				r.EquivalentPairs++
				r.SubsumedPairs += 2
			case Subsumes, SubsumedBy:
				r.SubsumedPairs++
			case Inconsistent:
				r.InconsistentPairs++
			}
		}
	}
	return r
}

// Analyze computes the pairwise report. Quadratic in the number of AFA
// states; intended for workload diagnostics, not the hot path.
func (a *AFA) Analyze() Report {
	an := a.NewAnalyzer()
	n := a.NumStates()
	r := Report{States: n}
	degree := make([]int, n)
	for s := int32(0); s < int32(n); s++ {
		for t := s + 1; t < int32(n); t++ {
			switch an.Relate(s, t) {
			case Inconsistent:
				r.InconsistentPairs++
			case Equivalent:
				r.EquivalentPairs++
				r.SubsumptionPairs += 2
			case Subsumes, SubsumedBy:
				r.SubsumptionPairs++
			default:
				r.IndependentPairs++
				degree[s]++
				degree[t]++
			}
		}
	}
	for _, d := range degree {
		if d > r.MaxIndependentDegree {
			r.MaxIndependentDegree = d
		}
	}
	return r
}
