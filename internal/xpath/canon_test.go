package xpath

import "testing"

func TestCanonicalEquivalences(t *testing.T) {
	groups := [][]string{
		// Whitespace and redundant self steps.
		{"/a/b[c = \"x\"]", "/a/b[ c = \"x\" ]", "/ a / b [c=\"x\"]", "/a/./b[c=\"x\"]"},
		// Commutative operand ordering for and.
		{"/a[b and c]", "/a[c and b]", "/a[ c and b ]"},
		// Commutative operand ordering for or.
		{"/a[b or c]", "/a[c or b]"},
		// Associativity: flattened chains order the same.
		{"/a[(b and c) and d]", "/a[b and (c and d)]", "/a[d and c and b]"},
		// Idempotence of and/or: duplicate operands collapse.
		{"/a[b and b]", "/a[b]", "/a[b and b and b]"},
		{"/a[b or b or c]", "/a[c or b]"},
		// Step predicate split: [p and q] == [p][q] in either order.
		{"/a[b and c = 1]", "/a[b][c = 1]", "/a[c = 1][b]", "/a[c=1 and b]"},
		// Nested paths inside predicates canonicalize too.
		{"/a[b[d and c]/e]", "/a[b[c and d]/e]"},
		// Descendant axes and attributes survive.
		{"//a[@k = \"v\"]", "// a [ @k = \"v\" ]"},
		// A descendant self step folds into the following step.
		{"//a//b", "//a//./b", "//a/.//b"},
		// Trailing child-axis self step is a no-op.
		{"/a/b", "/a/b/."},
		// Mixed and/or keeps precedence but sorts within each level.
		{"/a[(b or c) and d]", "/a[d and (c or b)]"},
	}
	for _, g := range groups {
		want, err := Canonicalize(g[0])
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", g[0], err)
		}
		for _, q := range g[1:] {
			got, err := Canonicalize(q)
			if err != nil {
				t.Fatalf("Canonicalize(%q): %v", q, err)
			}
			if got != want {
				t.Errorf("Canonicalize(%q) = %q, want %q (from %q)", q, got, want, g[0])
			}
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"/a/b", "/a//b"},
		{"/a[b]", "/a[c]"},
		{"/a[b and c]", "/a[b or c]"},
		{"/a[not(b and c)]", "/a[not(b) and not(c)]"},
		{"/a[b = 1]", "/a[b = 2]"},
		{"/a[b < 1]", "/a[b > 1]"},
	}
	for _, p := range pairs {
		a, err := Canonicalize(p[0])
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", p[0], err)
		}
		b, err := Canonicalize(p[1])
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", p[1], err)
		}
		if a == b {
			t.Errorf("Canonicalize(%q) == Canonicalize(%q) == %q; want distinct", p[0], p[1], a)
		}
	}
}

func TestCanonicalIdempotentAndReparses(t *testing.T) {
	queries := []string{
		"/a/b[c = \"x\"]",
		"/a[c and b][d or e]",
		"//doc//item[@k = \"v\" and text() = \"w\"]",
		"/a[not(b or c/d[e])]",
		"/a[contains(b, \"s\") and starts-with(c, \"t\")]",
		"/a[.//b and c//d]",
		"/*[@* and text()]",
	}
	for _, q := range queries {
		c1, err := Canonicalize(q)
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", q, err)
		}
		// Idempotent: canonical form is a fixed point.
		c2, err := Canonicalize(c1)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", c1, err)
		}
		if c1 != c2 {
			t.Errorf("not idempotent: %q -> %q -> %q", q, c1, c2)
		}
		// Equivalent: canonical form parses to a filter that the
		// structural walk agrees has the same shape measures.
		f, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		g, err := Parse(c1)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c1, err)
		}
		if f.HasDescendant() != g.HasDescendant() {
			t.Errorf("%q vs %q: HasDescendant mismatch", q, c1)
		}
	}
}
