package perquery

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/naive"
	"repro/internal/workload"
	"repro/internal/xpath"
)

func TestBasic(t *testing.T) {
	fs := []*xpath.Filter{
		xpath.MustParse("/a[b=1]"),
		xpath.MustParse("/a[b=2]"),
		xpath.MustParse("//b"),
	}
	e, err := NewEngine(fs)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumQueries() != 3 {
		t.Errorf("queries = %d", e.NumQueries())
	}
	got, err := e.FilterDocument([]byte("<a><b>2</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Errorf("matches = %v", got)
	}
}

func TestMultiDocument(t *testing.T) {
	e, _ := NewEngine([]*xpath.Filter{xpath.MustParse("/a"), xpath.MustParse("/b")})
	got, err := e.FilterDocument([]byte("<a/><b/>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("matches = %v", got)
	}
}

func TestDifferentialAgainstNaive(t *testing.T) {
	ds := datagen.NASALike()
	fs := workload.Generate(ds, workload.Params{
		Seed: 21, NumQueries: 60, MeanPreds: 2,
		DescendantProb: 0.2, NestedPredProb: 0.2, NotProb: 0.1,
	})
	e, err := NewEngine(fs)
	if err != nil {
		t.Fatal(err)
	}
	oracle := naive.NewEngine(fs)
	gen := datagen.NewGenerator(ds, 22)
	for i := 0; i < 10; i++ {
		doc := gen.GenerateDocument()
		got, err := e.FilterDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.FilterDocument(doc)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("doc %d: perquery %v vs oracle %v", i, got, want)
		}
	}
}
