// Package datagen generates synthetic XML streams from a DTD with
// controllable value distributions. It substitutes for the two real datasets
// of the paper's evaluation (Sec. 7): the Protein Information Resource
// dataset (non-recursive DTD, maximum depth 7) and the NASA ADC dataset
// (recursive DTD, maximum depth 8). The experiments depend on document
// shape, depth, fan-out and value selectivity — all reproduced here — not on
// the actual biological or astronomical payload; DESIGN.md records the
// substitution.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dtd"
	"repro/internal/sax"
)

// PoolKind selects a value pool's domain.
type PoolKind uint8

const (
	// IntPool draws integers from [Lo, Hi].
	IntPool PoolKind = iota
	// StrPool draws from a fixed word list.
	StrPool
)

// Pool describes the value distribution of one leaf element or attribute
// label. Sampling is Zipf-skewed when Skew > 0, so some values are frequent
// (high selectivity) and most are rare (low selectivity) — the regime
// Theorem 6.2 analyses.
type Pool struct {
	Kind  PoolKind
	Lo    int64
	Hi    int64
	Words []string
	Skew  float64
}

// Sample draws a data value from the pool.
func (p *Pool) Sample(r *rand.Rand) string {
	switch p.Kind {
	case IntPool:
		n := p.Hi - p.Lo + 1
		return fmt.Sprintf("%d", p.Lo+p.rank(r, n))
	default:
		return p.Words[p.rank(r, int64(len(p.Words)))]
	}
}

// rank picks an index in [0, n) with optional Zipf skew.
func (p *Pool) rank(r *rand.Rand, n int64) int64 {
	if n <= 1 {
		return 0
	}
	if p.Skew <= 0 {
		return r.Int63n(n)
	}
	// Inverse-CDF of a power-law: small indexes are frequent.
	u := r.Float64()
	idx := int64(float64(n) * math.Pow(u, 1+p.Skew))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Dataset bundles a DTD with its value pools.
type Dataset struct {
	Name  string
	DTD   *dtd.DTD
	Pools map[string]*Pool
	// DepthCap bounds recursion (NASA-like DTDs recurse).
	DepthCap int
}

// Pool returns the value pool for a label ("@name" for attributes), falling
// back to a generic pool.
func (d *Dataset) Pool(label string) *Pool {
	if p, ok := d.Pools[label]; ok {
		return p
	}
	return genericPool
}

var genericPool = &Pool{Kind: IntPool, Lo: 0, Hi: 9999}

// Generator produces a deterministic XML stream for a dataset.
type Generator struct {
	ds *Dataset
	r  *rand.Rand
}

// NewGenerator returns a generator with its own deterministic source.
func NewGenerator(ds *Dataset, seed int64) *Generator {
	return &Generator{ds: ds, r: rand.New(rand.NewSource(seed))}
}

// GenerateBytes produces at least target bytes of XML: a concatenation of
// documents, each rooted at the DTD's root element.
func (g *Generator) GenerateBytes(target int) []byte {
	var sb strings.Builder
	sb.Grow(target + 4096)
	for sb.Len() < target {
		g.writeDocument(&sb)
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// GenerateDocument produces a single document.
func (g *Generator) GenerateDocument() []byte {
	var sb strings.Builder
	g.writeDocument(&sb)
	return []byte(sb.String())
}

func (g *Generator) writeDocument(sb *strings.Builder) {
	g.writeElement(sb, g.ds.DTD.Root, 1)
}

func (g *Generator) writeElement(sb *strings.Builder, name string, depth int) {
	el := g.ds.DTD.Element(name)
	sb.WriteByte('<')
	sb.WriteString(name)
	if el != nil {
		for _, a := range el.Attrs {
			if !a.Required && g.r.Intn(2) == 0 {
				continue
			}
			var v string
			switch {
			case len(a.Enum) > 0:
				v = a.Enum[g.r.Intn(len(a.Enum))]
			case a.Default != "" && g.r.Intn(3) == 0:
				v = a.Default
			default:
				v = g.ds.Pool("@" + a.Name).Sample(g.r)
			}
			fmt.Fprintf(sb, ` %s="%s"`, a.Name, sax.EscapeAttr(v))
		}
	}
	cap := g.ds.DepthCap
	if cap == 0 {
		cap = 32
	}
	if el == nil || depth >= cap && el.Kind != dtd.PCData {
		sb.WriteString("/>")
		return
	}
	switch el.Kind {
	case dtd.Empty:
		sb.WriteString("/>")
		return
	case dtd.PCData, dtd.Mixed, dtd.Any:
		sb.WriteByte('>')
		sb.WriteString(sax.EscapeText(g.ds.Pool(name).Sample(g.r)))
	case dtd.Children:
		sb.WriteByte('>')
		g.writeParticle(sb, name, el.Content, depth)
	}
	sb.WriteString("</")
	sb.WriteString(name)
	sb.WriteByte('>')
}

func (g *Generator) writeParticle(sb *strings.Builder, parent string, p *dtd.Particle, depth int) {
	count := 1
	switch p.Rep {
	case dtd.Opt:
		if g.r.Intn(2) == 0 {
			return
		}
	case dtd.Star:
		count = g.geometric()
		if count == 0 {
			return
		}
	case dtd.Plus:
		count = 1 + g.geometric()
	}
	for i := 0; i < count; i++ {
		switch p.Kind {
		case dtd.NameParticle:
			if depth+1 > g.depthCap() && (p.Rep == dtd.Star || p.Rep == dtd.Opt) {
				// Prune optional subtrees at the depth cap;
				// required ones are flattened by writeElement.
				return
			}
			g.writeElement(sb, p.Name, depth+1)
		case dtd.SeqParticle:
			for _, c := range p.Children {
				g.writeParticle(sb, parent, c, depth)
			}
		case dtd.ChoiceParticle:
			g.writeParticle(sb, parent, p.Children[g.r.Intn(len(p.Children))], depth)
		}
	}
}

func (g *Generator) depthCap() int {
	if g.ds.DepthCap == 0 {
		return 32
	}
	return g.ds.DepthCap
}

// geometric returns a small geometric count with mean ≈ 1.5 (list fan-out).
func (g *Generator) geometric() int {
	n := 1
	for g.r.Intn(3) == 0 && n < 8 {
		n++
	}
	return n
}
