package core

import (
	"fmt"
	"io"
	"sort"
)

// DumpTables renders the machine's materialised states and transition
// tables in the style of Fig. 3 of the paper: the bottom-up state family,
// the value index entries, Tpop, Tbadd and Taccept. Intended for
// debugging, teaching, and the xpushdump tool; combine with PrecomputeEager
// to see the complete machine of a small workload.
func (m *Machine) DumpTables(w io.Writer) error {
	fmt.Fprintf(w, "bottom-up states (%d):\n", len(m.bsets))
	for i, set := range m.bsets {
		fmt.Fprintf(w, "  q%-4d = %v\n", i, set)
	}
	if m.opts.TopDown {
		fmt.Fprintf(w, "top-down states (%d):\n", len(m.tsets))
		for i, set := range m.tsets {
			fmt.Fprintf(w, "  t%-4d = %v\n", i, set)
		}
	}

	fmt.Fprintln(w, "Tvalue (representative value -> state):")
	for _, v := range m.index.Representatives() {
		id := m.valueState(m.qtForDump(), v)
		fmt.Fprintf(w, "  %-16q -> q%d\n", v.Text, id)
	}

	fmt.Fprintln(w, "Tpop[q][label] -> q:")
	type popRow struct {
		qb, qt, sym int32
		e           entry
	}
	popRows := make([]popRow, 0, m.popTab.len())
	m.popTab.each(func(k key128, e entry) {
		popRows = append(popRows, popRow{
			qb: int32(k.lo >> 32), qt: int32(uint32(k.lo)), sym: int32(uint32(k.hi)), e: e,
		})
	})
	sort.Slice(popRows, func(i, j int) bool {
		a, b := popRows[i], popRows[j]
		if a.qb != b.qb {
			return a.qb < b.qb
		}
		return a.sym < b.sym
	})
	for _, r := range popRows {
		fmt.Fprintf(w, "  Tpop[q%d][%s] = q%d", r.qb, m.afa.Syms.Name(r.sym), r.e.state)
		if len(r.e.early) > 0 {
			fmt.Fprintf(w, "  (early: %v)", r.e.early)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "Tbadd[qs][q] -> q:")
	type addRow struct {
		qbs, qaux, val int32
	}
	addRows := make([]addRow, 0, m.addTab.len())
	m.addTab.each(func(k uint64, v int32) {
		addRows = append(addRows, addRow{qbs: int32(k >> 32), qaux: int32(uint32(k)), val: v})
	})
	sort.Slice(addRows, func(i, j int) bool {
		a, b := addRows[i], addRows[j]
		if a.qbs != b.qbs {
			return a.qbs < b.qbs
		}
		return a.qaux < b.qaux
	})
	for _, r := range addRows {
		fmt.Fprintf(w, "  Tbadd[q%d][q%d] = q%d\n", r.qbs, r.qaux, r.val)
	}

	fmt.Fprintln(w, "Taccept (non-empty):")
	for i := range m.bsets {
		if acc := m.acceptOf(int32(i)); len(acc) > 0 {
			fmt.Fprintf(w, "  Taccept[q%d] = %v\n", i, acc)
		}
	}
	m.flushPending()
	return nil
}

// qtForDump returns the top-down state to key dump lookups by (the basic
// machine always uses 0).
func (m *Machine) qtForDump() int32 { return 0 }
