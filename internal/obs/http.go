package obs

import (
	"net/http"
)

// MetricsHandler returns an http.Handler that serves the registry in
// Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}

// NewMux returns a ServeMux with the conventional observability endpoints:
// GET /metrics (Prometheus text) and GET /healthz (always "ok" — the
// process is healthy if it can answer).
func (r *Registry) NewMux() *http.ServeMux {
	return r.NewMuxWithReadiness(nil)
}

// NewMuxWithReadiness is NewMux with a readiness probe: while ready returns
// false, GET /healthz answers 503 "draining" so load balancers stop routing
// to an instance that is shutting down, while /metrics stays scrapeable for
// the final flush. A nil ready means always ready.
func (r *Registry) NewMuxWithReadiness(ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil && !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}
