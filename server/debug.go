package server

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Tracer returns the server's trace recorder (nil when tracing is disabled)
// so embedders can serve or export traces themselves.
func (s *Server) Tracer() *trace.Recorder { return s.tracer }

// DebugAddr returns the introspection listen address ("" when disabled).
func (s *Server) DebugAddr() string {
	if s.dln == nil {
		return ""
	}
	return s.dln.Addr().String()
}

// WriteChromeTrace dumps every retained trace in Chrome trace_event format
// (load the file at ui.perfetto.dev or chrome://tracing). cmd/xpushserve
// calls this on shutdown for -trace-out.
func (s *Server) WriteChromeTrace(w io.Writer) error {
	return s.tracer.WriteChrome(w)
}

// debugMux assembles the introspection endpoints: /metrics and /healthz
// (same handlers as the metrics listener), /debug/pprof/*, /debug/traces,
// and /debug/machine.
func (s *Server) debugMux() *http.ServeMux {
	mux := s.reg.NewMuxWithStatus(s.healthStatus)
	obs.RegisterPprof(mux)
	mux.Handle("/debug/traces", s.tracer.Handler())
	mux.HandleFunc("/debug/machine", s.handleMachine)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	return mux
}

// queriesSnapshot is the /debug/queries payload: the per-query cost table
// ranked by cumulative traced filter time. Enabled only when tracing is on
// (the profiler rides the trace sample).
type queriesSnapshot struct {
	Enabled  bool        `json:"enabled"`
	Tracked  int         `json:"tracked"`
	Cap      int         `json:"cap"`
	Overflow int64       `json:"overflow"`
	Queries  []QueryCost `json:"queries"`
	Other    QueryCost   `json:"other"`
}

func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if s.prof == nil {
		enc.Encode(queriesSnapshot{Queries: []QueryCost{}})
		return
	}
	entries, other, overflow := s.prof.snapshot(s.subs.Canons())
	enc.Encode(queriesSnapshot{
		Enabled:  true,
		Tracked:  len(entries),
		Cap:      s.prof.max,
		Overflow: overflow,
		Queries:  entries,
		Other:    other,
	})
}

// machineSnapshot is the /debug/machine payload: one consistent look at the
// live filter machine, the workload, and the delivery plane.
type machineSnapshot struct {
	Backend Backend `json:"backend"`
	// Queries counts engine slots (including removed-but-unconsolidated
	// ones); UniqueQueries the live compiled machine queries in the dedup
	// registry; Subscriptions the subscriber fan-out riding on them. With
	// deduplication, Subscriptions >> UniqueQueries on zipfian workloads.
	Queries        int    `json:"queries"`
	UniqueQueries  int    `json:"unique_queries"`
	Subscriptions  int    `json:"subscriptions"`
	DedupHits      uint64 `json:"dedup_hits"`
	SubsumedPairs  int    `json:"subsumed_pairs"` // -1 = workload too large to analyze
	Layers         int    `json:"layers,omitempty"`
	RemovedSlots   int    `json:"removed_slots"`
	Consolidations int64  `json:"consolidations"`
	MemoryBytes    int64  `json:"memory_bytes,omitempty"`
	Connections    int    `json:"connections"`
	ConnsRejected  int64  `json:"conns_rejected"`
	QueueDepth     int    `json:"queue_depth"`

	States        int     `json:"states"`
	TopDownStates int     `json:"top_down_states"`
	AvgStateSize  float64 `json:"avg_state_size"`
	Lookups       int64   `json:"lookups"`
	Hits          int64   `json:"hits"`
	HitRatio      float64 `json:"hit_ratio"`
	Flushes       int64   `json:"flushes"`
	Documents     int64   `json:"documents"`
	Events        int64   `json:"events"`
	Matches       int64   `json:"matches"`

	PoolSize int             `json:"pool_size,omitempty"`
	Shards   []shardSnapshot `json:"shards,omitempty"`

	DurablePumps int `json:"durable_pumps"`

	Trace traceSnapshot `json:"trace"`
}

// shardSnapshot is one shard's slice of the sharded backend.
type shardSnapshot struct {
	Shard    int     `json:"shard"`
	Queries  int     `json:"queries"`
	States   int     `json:"states"`
	HitRatio float64 `json:"hit_ratio"`
	Flushes  int64   `json:"flushes"`
	Matches  int64   `json:"matches"`
}

type traceSnapshot struct {
	Enabled     bool                `json:"enabled"`
	SampleEvery int                 `json:"sample_every"`
	SlowNS      int64               `json:"slow_threshold_ns"`
	Stats       trace.RecorderStats `json:"stats"`
}

func (s *Server) handleMachine(w http.ResponseWriter, r *http.Request) {
	c := s.cur.Load()
	st := c.stats()
	snap := machineSnapshot{
		Backend:        s.cfg.Backend,
		Queries:        len(c.canon),
		UniqueQueries:  s.subs.UniqueQueries(),
		Subscriptions:  s.subs.Subscriptions(),
		DedupHits:      s.subs.Hits(),
		SubsumedPairs:  int(s.subsumedPairs()),
		RemovedSlots:   len(c.removed) - c.liveQueries(),
		Consolidations: s.consolidations.Load(),
		ConnsRejected:  s.mConnReject.Value(),

		States:        st.States,
		TopDownStates: st.TopDownStates,
		AvgStateSize:  st.AvgStateSize,
		Lookups:       st.Lookups,
		Hits:          st.Hits,
		HitRatio:      st.HitRatio,
		Flushes:       st.Flushes,
		Documents:     st.Documents,
		Events:        st.Events,
		Matches:       st.Matches,

		DurablePumps: int(s.pumpsActive.Load()),
		Trace: traceSnapshot{
			Enabled:     s.tracer.Enabled(),
			SampleEvery: s.tracer.SampleEvery(),
			SlowNS:      s.tracer.SlowThreshold().Nanoseconds(),
			Stats:       s.tracer.Stats(),
		},
	}
	s.connMu.Lock()
	snap.Connections = len(s.conns)
	for cn := range s.conns {
		snap.QueueDepth += cn.queueDepth()
	}
	s.connMu.Unlock()
	if c.engine != nil {
		snap.Layers = c.engine.NumLayers()
		snap.MemoryBytes = c.engine.ApproxMemoryBytes()
	}
	if c.pool != nil {
		snap.PoolSize = c.pool.Size()
	}
	if c.sharded != nil {
		for i, ss := range c.sharded.ShardStats() {
			snap.Shards = append(snap.Shards, shardSnapshot{
				Shard:    i,
				Queries:  c.sharded.ShardQueries(i),
				States:   ss.States,
				HitRatio: ss.HitRatio,
				Flushes:  ss.Flushes,
				Matches:  ss.Matches,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}
