package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/server"
)

// poolEvents records OnUp/OnDown transitions for assertions.
type poolEvents struct {
	mu   sync.Mutex
	ups  int
	dns  int
	cond *sync.Cond
}

func newPoolEvents() *poolEvents {
	e := &poolEvents{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

func (e *poolEvents) up(string, *client.Client) {
	e.mu.Lock()
	e.ups++
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *poolEvents) down(string, error) {
	e.mu.Lock()
	e.dns++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// waitFor blocks until pred holds or the deadline passes.
func (e *poolEvents) waitFor(t *testing.T, what string, pred func(ups, dns int) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	timer := time.AfterFunc(10*time.Second, func() { e.cond.Broadcast() })
	defer timer.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for !pred(e.ups, e.dns) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (ups=%d downs=%d)", what, e.ups, e.dns)
		}
		e.cond.Wait()
	}
}

// TestPoolHealthTransitions walks one node through the full lifecycle:
// up → killed (down) → rebooted on the same address (up again).
func TestPoolHealthTransitions(t *testing.T) {
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	ev := newPoolEvents()
	p := NewPool([]string{addr}, PoolOptions{
		Client:       client.Options{Timeout: 2 * time.Second},
		Backoff:      client.Backoff{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		PingInterval: 50 * time.Millisecond,
		OnUp:         ev.up,
		OnDown:       ev.down,
	})
	defer p.Close()

	ev.waitFor(t, "initial connect", func(ups, _ int) bool { return ups >= 1 })
	if !p.Up(addr) {
		t.Fatal("node not marked up after OnUp")
	}
	if c, ok := p.Get(addr); !ok {
		t.Fatal("Get returned no connection for an up node")
	} else if err := c.Ping(); err != nil {
		t.Fatalf("pooled connection unusable: %v", err)
	}

	// Kill the node: the ping loop (or the conn's Done) must mark it down.
	srv.Close()
	ev.waitFor(t, "node down", func(_, dns int) bool { return dns >= 1 })
	// Down state is set before OnDown fires, so this is race-free.
	if p.Up(addr) {
		t.Fatal("node still marked up after OnDown")
	}
	if _, ok := p.Get(addr); ok {
		t.Fatal("Get returned a connection for a down node")
	}

	// Reboot on the same address: the manage loop reconnects on its own.
	srv2, err := server.New(server.Config{Addr: addr})
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()
	ev.waitFor(t, "reconnect", func(ups, _ int) bool { return ups >= 2 })

	snap := p.Snapshot()
	if len(snap) != 1 || snap[0].Node != addr || !snap[0].Up || snap[0].Reconnects < 2 {
		t.Fatalf("snapshot = %+v, want up with >=2 connects", snap)
	}
}

// TestPoolProbeAcceleratesDetection: with a long ping interval, a Probe
// right after the node dies must surface the failure well before the next
// scheduled ping.
func TestPoolProbeAcceleratesDetection(t *testing.T) {
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	ev := newPoolEvents()
	p := NewPool([]string{addr}, PoolOptions{
		Client:       client.Options{Timeout: 2 * time.Second},
		Backoff:      client.Backoff{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		PingInterval: time.Hour, // only Probe (or conn death) can trigger checks
		OnUp:         ev.up,
		OnDown:       ev.down,
	})
	defer p.Close()
	ev.waitFor(t, "initial connect", func(ups, _ int) bool { return ups >= 1 })

	srv.Close()
	p.Probe(addr)
	start := time.Now()
	ev.waitFor(t, "probed failure detection", func(_, dns int) bool { return dns >= 1 })
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe took %v to surface a dead node", elapsed)
	}
}

// TestPoolCloseInterruptsRetry: Close must return promptly even while a
// node is down and the manage loop is deep in backoff.
func TestPoolCloseInterruptsRetry(t *testing.T) {
	// Address with nothing listening: manage loops in DialRetryContext.
	srv, _ := server.New(server.Config{Addr: "127.0.0.1:0"})
	addr := srv.Addr()
	srv.Close()

	p := NewPool([]string{addr}, PoolOptions{
		Backoff: client.Backoff{Min: 10 * time.Second, Max: 10 * time.Second},
	})
	time.Sleep(100 * time.Millisecond) // let the first dial fail, backoff start
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Pool.Close blocked behind a backoff sleep")
	}
}
