package core

import (
	"sort"
	"testing"
	"testing/quick"
)

// normalize turns an arbitrary int32 slice into a sorted set.
func normalize(in []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range in {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func isSet(a []int32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			return false
		}
	}
	return true
}

func TestUnionSortedProperties(t *testing.T) {
	f := func(x, y []int32) bool {
		a, b := normalize(x), normalize(y)
		u := unionSorted(a, b, nil)
		if !isSet(u) {
			return false
		}
		// u ⊇ a, u ⊇ b, and every element of u is in a or b.
		if !subsetOfSorted(a, u) || !subsetOfSorted(b, u) {
			return false
		}
		for _, e := range u {
			if !containsSorted(a, e) && !containsSorted(b, e) {
				return false
			}
		}
		// Commutative.
		v := unionSorted(b, a, nil)
		return equalIDs(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectSortedProperties(t *testing.T) {
	f := func(x, y []int32) bool {
		a, b := normalize(x), normalize(y)
		s := intersectSorted(a, b, nil)
		if !isSet(s) {
			return false
		}
		for _, e := range s {
			if !containsSorted(a, e) || !containsSorted(b, e) {
				return false
			}
		}
		// Every common element appears.
		for _, e := range a {
			if containsSorted(b, e) && !containsSorted(s, e) {
				return false
			}
		}
		// Intersection is a subset of the union.
		return subsetOfSorted(s, unionSorted(a, b, nil))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetOfSortedProperties(t *testing.T) {
	f := func(x, y []int32) bool {
		a, b := normalize(x), normalize(y)
		want := true
		for _, e := range a {
			if !containsSorted(b, e) {
				want = false
				break
			}
		}
		if subsetOfSorted(a, b) != want {
			return false
		}
		// Reflexive, and everything contains the empty set.
		return subsetOfSorted(a, a) && subsetOfSorted(nil, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContainsSortedMatchesLinearScan(t *testing.T) {
	f := func(x []int32, probe int32) bool {
		a := normalize(x)
		want := false
		for _, e := range a {
			if e == probe {
				want = true
			}
		}
		return containsSorted(a, probe) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashIDsProperties(t *testing.T) {
	// Equal sets hash equal; hash must depend on content and length.
	f := func(x []int32) bool {
		a := normalize(x)
		b := append([]int32(nil), a...)
		if hashIDs(a) != hashIDs(b) {
			return false
		}
		if len(a) > 0 {
			mutated := append([]int32(nil), a...)
			mutated[0]++
			if hashIDs(mutated) == hashIDs(a) && !equalIDs(mutated, a) {
				// A single collision is possible in principle but
				// astronomically unlikely for FNV-64 on short inputs;
				// treat it as a failure to surface bugs.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if hashIDs(nil) != hashIDs([]int32{}) {
		t.Error("nil and empty must hash equal")
	}
	if hashIDs([]int32{0}) == hashIDs(nil) {
		t.Error("zero-element set must differ from empty")
	}
}

func TestEqualIDs(t *testing.T) {
	if !equalIDs(nil, nil) || !equalIDs([]int32{1, 2}, []int32{1, 2}) {
		t.Error("equal sets misreported")
	}
	if equalIDs([]int32{1}, []int32{1, 2}) || equalIDs([]int32{1, 2}, []int32{1, 3}) {
		t.Error("unequal sets misreported")
	}
}
