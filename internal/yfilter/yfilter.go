// Package yfilter is a YFilter-style baseline [11]: the navigation skeletons
// of all filters are merged into one prefix-shared NFA that is simulated
// top-down over the event stream, so common path prefixes (including
// wildcards and descendant axes) are evaluated once. Value predicates,
// however, are NOT shared: filters whose skeleton matched are re-checked
// individually on an in-memory tree — the post-processing approach of the
// prior systems the paper improves on. The gap between this engine and the
// XPush machine on predicate-heavy workloads is the paper's central claim.
package yfilter

import (
	"sort"

	"repro/internal/naive"
	"repro/internal/sax"
	"repro/internal/xpath"
)

// stepKey identifies one navigation step for prefix sharing.
type stepKey struct {
	axis xpath.Axis
	kind xpath.TestKind
	name string
}

// node is one NFA state of the shared path trie.
type node struct {
	children map[stepKey]int32

	// Flattened runtime transitions, built in finish().
	clabel map[string][]int32 // child axis, concrete label ("@x" for attrs)
	cstar  []int32            // child axis, * (elements)
	cattr  []int32            // child axis, @*
	dlabel map[string][]int32 // descendant axis
	dstar  []int32
	dattr  []int32
	sticky bool // has descendant edges: stays active below

	acceptElem []int32 // queries whose skeleton ends by entering this node
	acceptText []int32 // queries whose skeleton ends with a text() child here
	dtext      []int32 // queries whose skeleton ends with a descendant text()
}

// Engine is the shared-navigation baseline engine.
type Engine struct {
	filters   []*xpath.Filter
	needsFull []bool // filter has predicates → needs the per-query recheck
	nodes     []*node

	// Run scratch.
	active  [][]int32
	matched []bool
}

// NewEngine builds the shared NFA over the workload's navigation skeletons.
func NewEngine(filters []*xpath.Filter) *Engine {
	e := &Engine{filters: filters, needsFull: make([]bool, len(filters))}
	e.nodes = append(e.nodes, &node{children: map[stepKey]int32{}})
	for qi, f := range filters {
		e.addSkeleton(int32(qi), f)
	}
	for _, n := range e.nodes {
		n.finish()
	}
	e.matched = make([]bool, len(filters))
	return e
}

// addSkeleton inserts the filter's top-level path, predicates stripped.
func (e *Engine) addSkeleton(qi int32, f *xpath.Filter) {
	cur := int32(0)
	hasPreds := false
	steps := f.Path.Steps
	for si := range steps {
		step := &steps[si]
		if len(step.Preds) > 0 {
			hasPreds = true
		}
		if step.Test.Kind == xpath.Self {
			continue
		}
		if step.Test.Kind == xpath.Text {
			// Terminal text step: record on the current node.
			n := e.nodes[cur]
			if step.Axis == xpath.Descendant {
				n.dtext = append(n.dtext, qi)
				n.sticky = true
			} else {
				n.acceptText = append(n.acceptText, qi)
			}
			break
		}
		key := stepKey{axis: step.Axis, kind: step.Test.Kind, name: step.Test.Name}
		next, ok := e.nodes[cur].children[key]
		if !ok {
			next = int32(len(e.nodes))
			e.nodes = append(e.nodes, &node{children: map[stepKey]int32{}})
			e.nodes[cur].children[key] = next
		}
		if si == len(steps)-1 {
			e.nodes[next].acceptElem = append(e.nodes[next].acceptElem, qi)
		}
		cur = next
	}
	e.needsFull[int(qi)] = hasPreds
}

// finish flattens trie children into runtime transition tables.
func (n *node) finish() {
	n.clabel = map[string][]int32{}
	n.dlabel = map[string][]int32{}
	for key, target := range n.children {
		var lbl map[string][]int32
		var star, attr *[]int32
		if key.axis == xpath.Descendant {
			lbl = n.dlabel
			star, attr = &n.dstar, &n.dattr
			n.sticky = true
		} else {
			lbl = n.clabel
			star, attr = &n.cstar, &n.cattr
		}
		switch key.kind {
		case xpath.Element:
			lbl[key.name] = append(lbl[key.name], target)
		case xpath.Attribute:
			lbl["@"+key.name] = append(lbl["@"+key.name], target)
		case xpath.AnyElement:
			*star = append(*star, target)
		case xpath.AnyAttribute:
			*attr = append(*attr, target)
		}
	}
}

// FilterDocument runs the engine over one or more documents and returns the
// sorted oids of filters matching any of them.
func (e *Engine) FilterDocument(data []byte) ([]int32, error) {
	var c sax.Collector
	if err := sax.Parse(data, &c); err != nil {
		return nil, err
	}
	return e.FilterEvents(c.Events)
}

// FilterEvents runs the engine over pre-parsed events.
func (e *Engine) FilterEvents(events []sax.Event) ([]int32, error) {
	for i := range e.matched {
		e.matched[i] = false
	}
	var docEvents []sax.Event
	var out []int32
	skeleton := make([]bool, len(e.filters))
	for _, ev := range events {
		switch ev.Kind {
		case sax.StartDocument:
			docEvents = docEvents[:0]
			for i := range skeleton {
				skeleton[i] = false
			}
			e.active = e.active[:0]
			e.active = append(e.active, []int32{0})
			docEvents = append(docEvents, ev)
		case sax.StartElement:
			docEvents = append(docEvents, ev)
			e.pushLevel(ev.Name, skeleton)
		case sax.Text:
			docEvents = append(docEvents, ev)
			cur := e.active[len(e.active)-1]
			for _, entry := range cur {
				ni, fresh := decode(entry)
				n := e.nodes[ni]
				if fresh {
					for _, q := range n.acceptText {
						skeleton[q] = true
					}
				}
				for _, q := range n.dtext {
					skeleton[q] = true
				}
			}
		case sax.EndElement:
			docEvents = append(docEvents, ev)
			e.active = e.active[:len(e.active)-1]
		case sax.EndDocument:
			docEvents = append(docEvents, ev)
			e.finishDoc(docEvents, skeleton)
		}
	}
	for q, ok := range e.matched {
		if ok {
			out = append(out, int32(q))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Active-set entries distinguish fresh activations (the node was entered at
// this exact level — its child-axis edges apply) from sticky residues (the
// node is an ancestor with descendant edges — only those apply). Sticky
// entries are encoded as the bitwise complement of the node id.
func decode(entry int32) (ni int32, fresh bool) {
	if entry < 0 {
		return ^entry, false
	}
	return entry, true
}

// pushLevel advances the NFA one element down.
func (e *Engine) pushLevel(label string, skeleton []bool) {
	cur := e.active[len(e.active)-1]
	isAttr := sax.IsAttr(label)
	var next []int32
	enter := func(targets []int32) {
		for _, t := range targets {
			next = append(next, t)
			for _, q := range e.nodes[t].acceptElem {
				skeleton[q] = true
			}
		}
	}
	for _, entry := range cur {
		ni, fresh := decode(entry)
		n := e.nodes[ni]
		if fresh {
			enter(n.clabel[label])
			if isAttr {
				enter(n.cattr)
			} else {
				enter(n.cstar)
			}
		}
		enter(n.dlabel[label])
		if isAttr {
			enter(n.dattr)
		} else {
			enter(n.dstar)
		}
		if n.sticky && !isAttr {
			next = append(next, ^ni)
		}
	}
	e.active = append(e.active, dedupInt32(next))
}

// finishDoc rechecks predicate-bearing filters whose skeleton matched.
func (e *Engine) finishDoc(docEvents []sax.Event, skeleton []bool) {
	var tree *naive.Node
	for q, ok := range skeleton {
		if !ok || e.matched[q] {
			continue
		}
		if !e.needsFull[q] {
			e.matched[q] = true
			continue
		}
		if tree == nil {
			tree = buildTree(docEvents)
		}
		if naive.Matches(e.filters[q], tree) {
			e.matched[q] = true
		}
	}
}

func buildTree(events []sax.Event) *naive.Node {
	root := &naive.Node{Kind: naive.RootNode}
	stack := []*naive.Node{root}
	for _, ev := range events {
		switch ev.Kind {
		case sax.StartElement:
			kind := naive.ElementNode
			if sax.IsAttr(ev.Name) {
				kind = naive.AttrNode
			}
			n := &naive.Node{Kind: kind, Name: ev.Name}
			top := stack[len(stack)-1]
			top.Children = append(top.Children, n)
			stack = append(stack, n)
		case sax.Text:
			top := stack[len(stack)-1]
			top.Children = append(top.Children, &naive.Node{Kind: naive.TextNode, Value: ev.Data})
		case sax.EndElement:
			stack = stack[:len(stack)-1]
		}
	}
	return root
}

func dedupInt32(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// NumNodes reports the shared NFA size (for tests and reporting).
func (e *Engine) NumNodes() int { return len(e.nodes) }
