package xpushstream

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
	"repro/internal/xpath"
)

// zipfWorkload is a broker-shaped subscription workload: `subscribers`
// subscriptions drawn zipfian over `distinct` logical filters, each
// subscription phrased as one of several textual variants (whitespace,
// duplicate predicates, conjunction splits) of its filter — the shape a real
// fleet of clients produces, where popular feeds are subscribed thousands of
// times but almost never with byte-identical query strings.
func zipfWorkload(subscribers, distinct int) []string {
	r := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(r, 1.2, 1, uint64(distinct-1))
	texts := make([]string, subscribers)
	for i := range texts {
		rank := int(zipf.Uint64())
		switch i % 4 {
		case 0:
			texts[i] = fmt.Sprintf("//item[id=%d]", rank)
		case 1:
			texts[i] = fmt.Sprintf("//item[ id = %d ]", rank)
		case 2:
			texts[i] = fmt.Sprintf("// item [id=%d]", rank)
		default:
			texts[i] = fmt.Sprintf("//item[id=%d and id=%d]", rank, rank)
		}
	}
	return texts
}

func zipfDocs(n, distinct int) [][]byte {
	r := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(r, 1.2, 1, uint64(distinct-1))
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf("<item><id>%d</id></item>", zipf.Uint64()))
	}
	return docs
}

// runZipfianFilter measures docs/sec over the doc set plus per-subscription
// delivery accounting through the registry fan-out (nil reg = naive: every
// machine match already is a subscription).
func runZipfianFilter(b *testing.B, e *Engine, reg *workload.Dedup[int], keys []uint64, docs [][]byte) {
	b.Helper()
	deliveries := 0
	matchKeys := make([]uint64, 0, 64)
	filter := func(doc []byte) {
		m, err := e.FilterDocument(doc)
		if err != nil {
			b.Fatal(err)
		}
		if reg == nil {
			deliveries += len(m)
			return
		}
		matchKeys = matchKeys[:0]
		for _, q := range m {
			matchKeys = append(matchKeys, keys[q])
		}
		reg.Fanout(matchKeys, func(uint64, bool, int, uint64, int, bool) {
			deliveries++
		})
	}
	for _, d := range docs[:4] { // warm the lazy machine
		filter(d)
	}
	deliveries = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter(docs[i%len(docs)])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/sec")
	if b.N > 0 {
		b.ReportMetric(float64(deliveries)/float64(b.N), "deliveries/doc")
	}
}

// BenchmarkZipfianSubscribers is the workload-deduplication headline number:
// 50k zipfian subscriptions over 1k distinct filters, filtered through the
// broker's actual subscribe path — one COW machine layer per compiled query.
//
//   - naive is the pre-dedup broker: every subscription compiles its own
//     machine query, so every document crosses 50k layers.
//   - dedup compiles one query per canonical filter and fans matches out
//     through the refcount registry: ~1k layers do the SAX work, the
//     per-subscription cost collapses to an O(matches) map walk.
//   - dedup+consolidated adds the PR's consolidation pass (the steady state
//     a churning broker converges to): all unique queries in one layer.
//
// All sides report docs/sec including per-subscription delivery accounting;
// scripts/bench_gate.sh gates dedup at >= 5x naive.
func BenchmarkZipfianSubscribers(b *testing.B) {
	const (
		subscribers = 50_000
		distinct    = 1_000
		ndocs       = 256
	)
	texts := zipfWorkload(subscribers, distinct)
	docs := zipfDocs(ndocs, distinct)

	// layered replays the broker's subscribe path: one engine layer per
	// query batch, exactly what WithQueries produces per subscribe.
	layered := func(qs []string) *Engine {
		e, err := Compile(qs[:1], Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range qs[1:] {
			if err := e.AddQueries([]string{q}); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}

	// Dedup setup once, shared by both dedup variants: canonicalize,
	// register, subscribe; compile only first-seen canonical filters.
	reg := workload.NewDedup[int]()
	var unique []string
	keys := make([]uint64, 0, distinct)
	for i, q := range texts {
		canon, err := xpath.Canonicalize(q)
		if err != nil {
			b.Fatal(err)
		}
		key, ok := reg.Resolve(canon)
		if !ok {
			key = reg.Register(canon, true)
			keys = append(keys, key)
			unique = append(unique, canon)
		}
		reg.Subscribe(key, i, false)
	}

	b.Run("naive", func(b *testing.B) {
		runZipfianFilter(b, layered(texts), nil, nil, docs)
	})
	b.Run("dedup", func(b *testing.B) {
		b.Logf("compiled %d machine queries for %d subscriptions (%.0fx shared)",
			len(unique), subscribers, float64(subscribers)/float64(len(unique)))
		runZipfianFilter(b, layered(unique), reg, keys, docs)
	})
	b.Run("dedup+consolidated", func(b *testing.B) {
		e := layered(unique)
		if _, err := e.Consolidate(); err != nil {
			b.Fatal(err)
		}
		runZipfianFilter(b, e, reg, keys, docs)
	})
}
