package load

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/server"
	"repro/wal"
)

func TestParseProps(t *testing.T) {
	props := `
# smoke scenario
name = smoke
seed = 7
subscribers = 200
filters = 50
popularity = zipfian
zipf-theta = 0.9
durable-ratio = 0.2
doc-sizes = 8k:1, 1024:4
rate = 400
phase.warmup = 1s
phase.steady = 3s
phase.churn = 3s churn=50 reconnect=5
`
	spec := DefaultSpec()
	if err := ParseProps(strings.NewReader(props), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || spec.Seed != 7 || spec.Subscribers != 200 {
		t.Fatalf("scalars: %+v", spec)
	}
	if spec.DurableRatio != 0.2 || spec.ZipfTheta != 0.9 {
		t.Fatalf("floats: %+v", spec)
	}
	// Mix parses k-suffixes and sorts ascending.
	want := []SizeClass{{1024, 4}, {8192, 1}}
	if !reflect.DeepEqual(spec.DocSizes, want) {
		t.Fatalf("doc-sizes = %v, want %v", spec.DocSizes, want)
	}
	if len(spec.Phases) != 3 {
		t.Fatalf("phases = %v", spec.Phases)
	}
	churn := spec.Phases[2]
	if churn.Name != "churn" || churn.Duration != 3*time.Second || churn.ChurnRate != 50 || churn.ReconnectRate != 5 {
		t.Fatalf("churn phase = %+v", churn)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	// Later keys override, including re-set phases (order preserved).
	if err := spec.Set("phase.steady", "5s rate=100"); err != nil {
		t.Fatal(err)
	}
	if spec.Phases[1].Duration != 5*time.Second || spec.Phases[1].Rate != 100 {
		t.Fatalf("phase update: %+v", spec.Phases[1])
	}
	if err := spec.Set("bogus-key", "1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if err := ParseProps(strings.NewReader("no equals sign"), &spec); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Subscribers = 0 },
		func(s *Spec) { s.Filters = 0 },
		func(s *Spec) { s.Rate = 0 },
		func(s *Spec) { s.DurableRatio = 1.5 },
		func(s *Spec) { s.DocSizes = nil },
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Popularity = "parabolic" },
		func(s *Spec) { s.Dataset = "moondust" },
		func(s *Spec) { s.Phases = []Phase{{Name: "x"}} }, // no duration
	}
	for i, mutate := range bad {
		s := DefaultSpec()
		s.Phases = []Phase{{Name: "steady", Duration: time.Second}}
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: bad spec validated", i)
		}
	}
}

// TestPlanDeterminism is the acceptance criterion: two runs with the same
// seed produce the same workload sequence — the same filter pool, the same
// subscriber assignments, the same document pool, and the same publish and
// churn draw sequences.
func TestPlanDeterminism(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 42
	spec.DurableRatio = 0.25
	spec.DocSizes = []SizeClass{{Bytes: 1024, Weight: 3}, {Bytes: 8192, Weight: 1}}
	spec.Phases = []Phase{{Name: "steady", Duration: time.Second}}

	a, err := BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Filters, b.Filters) {
		t.Fatal("filter pools differ across same-seed builds")
	}
	if !reflect.DeepEqual(a.Subs, b.Subs) {
		t.Fatal("subscriber assignments differ across same-seed builds")
	}
	if !reflect.DeepEqual(a.Docs, b.Docs) {
		t.Fatal("document pools differ across same-seed builds")
	}
	da, db := a.newDocPicker(), b.newDocPicker()
	for i := 0; i < 1000; i++ {
		c1, d1 := da.next()
		c2, d2 := db.next()
		if c1 != c2 || d1 != d2 {
			t.Fatalf("publish draw %d diverged: (%d,%d) vs (%d,%d)", i, c1, d1, c2, d2)
		}
	}
	ca, err := a.newChurnPicker()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.newChurnPicker()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s1, f1, _ := ca.next()
		s2, f2, _ := cb.next()
		if s1 != s2 || f1 != f2 {
			t.Fatalf("churn draw %d diverged", i)
		}
	}

	// A different seed must actually change the workload.
	spec.Seed = 43
	c, err := BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Subs, c.Subs) && reflect.DeepEqual(a.Filters, c.Filters) {
		t.Fatal("seed 42 and 43 built identical plans")
	}
}

func TestPlanShape(t *testing.T) {
	spec := DefaultSpec()
	spec.Subscribers = 120
	spec.Filters = 30
	spec.DurableRatio = 0.5
	spec.DocSizes = []SizeClass{{Bytes: 4096, Weight: 1}}
	spec.DocPool = 8
	spec.Phases = []Phase{{Name: "steady", Duration: time.Second}}
	p, err := BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Filters) != 30 || len(p.Subs) != 120 {
		t.Fatalf("pool sizes: %d filters, %d subs", len(p.Filters), len(p.Subs))
	}
	durables := 0
	for _, s := range p.Subs {
		if s.Filter < 0 || s.Filter >= 30 {
			t.Fatalf("filter index %d out of pool", s.Filter)
		}
		if s.Durable {
			durables++
			if s.Conn >= spec.DurableConnections {
				t.Fatalf("durable conn %d out of range", s.Conn)
			}
		} else if s.Conn >= spec.Connections {
			t.Fatalf("ephemeral conn %d out of range", s.Conn)
		}
	}
	// DurableRatio 0.5 over 120 subscribers: expect a real mix.
	if durables < 30 || durables > 90 {
		t.Fatalf("durables = %d of 120, want near 60", durables)
	}
	// Documents are padded to at least the class size.
	for _, doc := range p.Docs[0] {
		if len(doc) < 4096 {
			t.Fatalf("doc of %d bytes under 4096 class", len(doc))
		}
	}
}

func TestDocTagRoundTrip(t *testing.T) {
	doc := []byte("<doc><a/></doc>")
	tagged := appendDocTag(nil, 2, 123456789*time.Nanosecond, doc)
	ph, intended, ok := parseDocTag(tagged)
	if !ok || ph != 2 || intended != 123456789 {
		t.Fatalf("round trip: ok=%v phase=%d intended=%d", ok, ph, intended)
	}
	if !strings.HasSuffix(string(tagged), string(doc)) {
		t.Fatal("tag clobbered the document")
	}
	if _, _, ok := parseDocTag(doc); ok {
		t.Fatal("untagged doc parsed as tagged")
	}
	if _, _, ok := parseDocTag([]byte("<!--xpl:pxyz-->")); ok {
		t.Fatal("garbage tag parsed")
	}
}

// TestRunnerEndToEnd drives a miniature zipfian+durable+churn scenario
// against a real broker over TCP — the whole harness stack: plan, connect,
// open-loop publish, churn, reconnect storm, measurement.
func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end load run")
	}
	base := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: filepath.Join(base, "wal"), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cs, err := wal.OpenCursorStore(filepath.Join(base, "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", WAL: server.WrapWAL(l), Cursors: cs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := DefaultSpec()
	spec.Name = "e2e"
	spec.Seed = 11
	spec.Subscribers = 60
	spec.Filters = 20
	spec.DurableRatio = 0.25
	spec.Connections = 4
	spec.DurableConnections = 2
	spec.Rate = 300
	spec.DocSizes = []SizeClass{{Bytes: 1024, Weight: 3}, {Bytes: 4096, Weight: 1}}
	spec.DocPool = 8
	spec.ReportInterval = 250 * time.Millisecond
	spec.Phases = []Phase{
		{Name: "steady", Duration: 700 * time.Millisecond},
		{Name: "churn", Duration: 700 * time.Millisecond, ChurnRate: 40, ReconnectRate: 4},
	}
	plan, err := BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var logs strings.Builder
	res, err := (&Runner{Plan: plan, Addr: srv.Addr(), Log: &logs}).Run(ctx)
	if err != nil {
		t.Fatalf("run: %v\nprogress:\n%s", err, logs.String())
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	steady, churn := res.Phases[0], res.Phases[1]
	if steady.Published == 0 || churn.Published == 0 {
		t.Fatalf("no publishes: %+v", res.Phases)
	}
	if steady.AckErrors != 0 || churn.AckErrors != 0 {
		t.Fatalf("ack errors: steady=%d churn=%d", steady.AckErrors, churn.AckErrors)
	}
	total := steady.Deliveries + churn.Deliveries
	if total == 0 {
		t.Fatal("no deliveries measured")
	}
	if steady.PubAck.Count == 0 || steady.PubAck.P99 <= 0 {
		t.Fatalf("pub-ack summary empty: %+v", steady.PubAck)
	}
	if steady.Delivery.Count == 0 || steady.Delivery.P999 < steady.Delivery.P50 {
		t.Fatalf("delivery summary broken: %+v", steady.Delivery)
	}
	if churn.ChurnOps == 0 {
		t.Fatal("churn phase performed no churn ops")
	}
	if churn.Reconnects == 0 {
		t.Fatal("churn phase performed no reconnect storms")
	}
	if steady.Errors != 0 {
		t.Fatalf("steady phase errors: %d", steady.Errors)
	}
	// Durable subscribers existed, so some deliveries must be durable.
	if steady.DurableDeliveries+churn.DurableDeliveries == 0 {
		t.Fatal("durable mix produced no durable deliveries")
	}
	if !strings.Contains(logs.String(), "steady") {
		t.Fatalf("progress log missing phase name:\n%s", logs.String())
	}
}
