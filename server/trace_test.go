package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/server"
	"repro/wal"
)

// tracesPayload mirrors the /debug/traces JSON document.
type tracesPayload struct {
	Enabled     bool        `json:"enabled"`
	SampleEvery int         `json:"sample_every"`
	SlowNS      int64       `json:"slow_threshold_ns"`
	Traces      []jsonTrace `json:"traces"`
	SlowTraces  []jsonTrace `json:"slow_traces"`
}

type jsonTrace struct {
	ID      uint64     `json:"id"`
	Kind    string     `json:"kind"`
	TotalNS int64      `json:"total_ns"`
	Slow    bool       `json:"slow"`
	Sampled bool       `json:"sampled"`
	Spans   []jsonSpan `json:"spans"`
}

type jsonSpan struct {
	Name    string `json:"name"`
	Parent  int32  `json:"parent"`
	Track   int32  `json:"track"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []struct {
		Key string `json:"Key"`
		Val int64  `json:"Val"`
	} `json:"attrs"`
}

func (t *jsonTrace) span(name string) *jsonSpan {
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

func (s *jsonSpan) attr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// getJSON fetches a debug endpoint and decodes it into out.
func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decoding %s: %v\n%s", url, err, body)
	}
}

// traceCollector records deliveries together with their trace ids.
type traceCollector struct {
	mu       sync.Mutex
	traceIDs []uint64
	offsets  []uint64
}

func (c *traceCollector) deliver(d client.Delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traceIDs = append(c.traceIDs, d.TraceID)
	c.offsets = append(c.offsets, d.Offset)
}

func (c *traceCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traceIDs)
}

func (c *traceCollector) traceID(i int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceIDs[i]
}

// TestTracedLoopbackEndToEnd is the tracing acceptance scenario: with
// sampling at 1/1 over a WAL-backed broker (fsync always), one published
// document yields a trace whose spans cover every pipeline stage — WAL
// append with its fsync wait, filtering, queue wait, and the DELIVER write —
// the client sees the trace id stamped into the delivery frame, and the
// trace round-trips through /debug/traces, /debug/machine, and the Chrome
// export.
func TestTracedLoopbackEndToEnd(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cs, err := wal.OpenCursorStore(filepath.Join(dir, "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, server.Config{
		DebugAddr:   "127.0.0.1:0",
		TraceSample: 1,
		TraceSlow:   time.Nanosecond, // everything is "slow": exercises tail capture too
		Policy:      server.Block,
		WAL:         server.WrapWAL(l),
		Cursors:     cs,
	})

	col := &traceCollector{}
	subc, err := client.Dial(srv.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: col.deliver})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { subc.Close() })
	if _, err := subc.Subscribe(`//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	pub := dialSub(t, srv.Addr(), nil)
	if n, err := pub.Publish([]byte(`<order><total>2500</total></order>`)); err != nil || n != 1 {
		t.Fatalf("publish: n=%d err=%v, want 1 match", n, err)
	}
	waitFor(t, "traced delivery", func() bool { return col.count() >= 1 })
	traceID := col.traceID(0)
	if traceID == 0 {
		t.Fatal("delivery carried no trace id with sampling at 1/1")
	}

	// The trace completes at the last DELIVER write; poll /debug/traces
	// until it lands in the ring.
	base := "http://" + srv.DebugAddr()
	var got *jsonTrace
	waitFor(t, "trace in /debug/traces", func() bool {
		var p tracesPayload
		getJSON(t, base+"/debug/traces", &p)
		for i := range p.Traces {
			if p.Traces[i].ID == traceID {
				got = &p.Traces[i]
				return true
			}
		}
		return false
	})
	if got.Kind != "publish" || !got.Sampled || got.TotalNS <= 0 {
		t.Fatalf("trace %d: kind=%q sampled=%v total=%dns", got.ID, got.Kind, got.Sampled, got.TotalNS)
	}
	if !got.Slow {
		t.Errorf("trace %d not marked slow with a 1ns threshold", got.ID)
	}
	// The acceptance bar: at least 5 distinct pipeline stages with non-zero
	// durations.
	for _, name := range []string{"publish", "wal_append", "fsync_wait", "filter", "queue_wait", "deliver_write"} {
		sp := got.span(name)
		if sp == nil {
			t.Fatalf("trace %d has no %q span; spans: %v", got.ID, name, spanNames(got))
		}
		if sp.DurNS <= 0 {
			t.Errorf("span %q has zero duration", name)
		}
	}
	// Machine telemetry rides on the filter span.
	fsp := got.span("filter")
	if v, ok := fsp.attr("matches"); !ok || v != 1 {
		t.Errorf("filter span matches attr = %d (present=%v), want 1", v, ok)
	}
	if _, ok := fsp.attr("events"); !ok {
		t.Error("filter span has no events attr")
	}
	// Per-layer child spans stack under the filter span.
	if got.span("layer0") == nil {
		t.Errorf("no layer0 span; spans: %v", spanNames(got))
	}

	// The same trace also sits in the slow ring (1ns threshold).
	var p tracesPayload
	getJSON(t, base+"/debug/traces", &p)
	foundSlow := false
	for _, tr := range p.SlowTraces {
		if tr.ID == traceID {
			foundSlow = true
		}
	}
	if !foundSlow {
		t.Error("trace missing from slow_traces despite the 1ns threshold")
	}

	// /debug/machine serves a live snapshot.
	var m struct {
		Backend string `json:"backend"`
		Queries int    `json:"queries"`
		States  int    `json:"states"`
		Trace   struct {
			Enabled bool `json:"enabled"`
		} `json:"trace"`
	}
	getJSON(t, base+"/debug/machine", &m)
	if m.Backend != "engine" || m.Queries != 1 || m.States == 0 || !m.Trace.Enabled {
		t.Errorf("machine snapshot: %+v", m)
	}

	// The Chrome export round-trips as a JSON array carrying the trace id.
	var buf bytes.Buffer
	if err := srv.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v\n%s", err, buf.String())
	}
	foundRoot := false
	for _, ev := range events {
		if ev["name"] == "publish" && ev["ph"] == "X" {
			if args, ok := ev["args"].(map[string]any); ok && uint64(args["trace_id"].(float64)) == traceID {
				foundRoot = true
			}
		}
	}
	if !foundRoot {
		t.Errorf("chrome export has no publish event for trace %d", traceID)
	}

	// pprof is mounted on the same mux.
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %s", resp.Status)
	}
}

func spanNames(tr *jsonTrace) []string {
	names := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		names[i] = s.Name
	}
	return names
}

// TestDurableTracedReplay: the durable pump's replay path produces "replay"
// traces (log read, re-filter, DELIVERAT write) with a replay_lag attribute,
// and the delivery frame carries the trace id.
func TestDurableTracedReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "wal"), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cs, err := wal.OpenCursorStore(filepath.Join(dir, "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, server.Config{
		DebugAddr:   "127.0.0.1:0",
		TraceSample: 1,
		WAL:         server.WrapWAL(l),
		Cursors:     cs,
	})

	col := &traceCollector{}
	sub, err := client.Dial(srv.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: col.deliver})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sub.Close() })
	if _, _, err := sub.SubscribeDurable("tracer", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	pub := dialSub(t, srv.Addr(), nil)
	if _, err := pub.Publish([]byte(`<order><total>9000</total></order>`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "durable traced delivery", func() bool { return col.count() >= 1 })
	traceID := col.traceID(0)
	if traceID == 0 {
		t.Fatal("durable delivery carried no trace id with sampling at 1/1")
	}

	base := "http://" + srv.DebugAddr()
	var got *jsonTrace
	waitFor(t, "replay trace in /debug/traces", func() bool {
		var p tracesPayload
		getJSON(t, base+"/debug/traces", &p)
		for i := range p.Traces {
			if p.Traces[i].ID == traceID {
				got = &p.Traces[i]
				return true
			}
		}
		return false
	})
	if got.Kind != "replay" {
		t.Fatalf("trace %d kind = %q, want replay", got.ID, got.Kind)
	}
	for _, name := range []string{"log_read", "filter", "deliver_write"} {
		if got.span(name) == nil {
			t.Errorf("replay trace has no %q span; spans: %v", name, spanNames(got))
		}
	}
	root := got.span("replay")
	if root == nil {
		t.Fatalf("no root span; spans: %v", spanNames(got))
	}
	if _, ok := root.attr("replay_lag"); !ok {
		t.Error("replay trace has no replay_lag attr")
	}
	if off, ok := root.attr("offset"); !ok || off != 0 {
		t.Errorf("replay trace offset attr = %d (present=%v), want 0", off, ok)
	}
}

// TestDurableReplayLagMetric: the per-subscriber replay-lag gauge tracks
// cursor-vs-head distance and drains to zero once the subscriber acks, and
// the pump-active gauge counts the running pump.
func TestDurableReplayLagMetric(t *testing.T) {
	base := t.TempDir()
	srv, _, _ := walServer(t, filepath.Join(base, "wal"), server.Config{MetricsAddr: "127.0.0.1:0"})

	col := &durCollector{}
	sub := dialDur(t, srv.Addr(), col)
	if _, _, err := sub.SubscribeDurable("billing", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	const docs = 4
	pub := dialDur(t, srv.Addr(), nil)
	for i := 0; i < docs; i++ {
		if _, err := pub.Publish(matchDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "durable deliveries", func() bool { return col.count() >= docs })

	lagSeries := `xpush_durable_replay_lag_offsets{name="billing"} `
	if v := labeledValue(t, scrape(t, srv.MetricsAddr()), lagSeries); v != docs {
		t.Errorf("replay lag before ack = %v, want %d", v, docs)
	}
	if v := metricValue(t, scrape(t, srv.MetricsAddr()), "xpush_durable_pump_active"); v != 1 {
		t.Errorf("pump active = %v, want 1", v)
	}

	_, lastOff := col.at(docs - 1)
	if err := sub.Ack(lastOff); err != nil {
		t.Fatal(err)
	}
	// Acks are fire-and-forget; the cursor advances asynchronously.
	waitFor(t, "replay lag drains to 0", func() bool {
		return labeledValue(t, scrape(t, srv.MetricsAddr()), lagSeries) == 0
	})
}

// labeledValue extracts one labeled series value from a scrape by its full
// "name{labels} " prefix.
func labeledValue(t testing.TB, text, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, prefix), "%g", &v)
			return v
		}
	}
	t.Fatalf("no series with prefix %q in scrape", prefix)
	return 0
}

// TestUntracedDeliveryHasZeroTraceID: with tracing disabled the wire format
// is the pre-flag encoding and clients see TraceID zero.
func TestUntracedDeliveryHasZeroTraceID(t *testing.T) {
	srv := startServer(t, server.Config{})
	col := &traceCollector{}
	sub, err := client.Dial(srv.Addr(), client.Options{Timeout: 5 * time.Second, OnDeliver: col.deliver})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sub.Close() })
	if _, err := sub.Subscribe(`//a`); err != nil {
		t.Fatal(err)
	}
	pub := dialSub(t, srv.Addr(), nil)
	if _, err := pub.Publish([]byte(`<a/>`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool { return col.count() >= 1 })
	if id := col.traceID(0); id != 0 {
		t.Fatalf("untraced delivery carried trace id %d", id)
	}
}

// BenchmarkServeLoopbackTraced measures the loopback round-trip with tracing
// in three states: fully off (the zero-overhead claim), sampling 1/1000 (the
// production setting), and sampling 1/1 (worst case, every document traced).
func BenchmarkServeLoopbackTraced(b *testing.B) {
	for _, bc := range []struct {
		name   string
		sample int
	}{
		{"off", 0},
		{"sample1000", 1000},
		{"sample1", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			srv := startServer(b, server.Config{
				TraceSample: bc.sample,
				Policy:      server.Block,
				QueueDepth:  1024,
			})
			col := newCollector()
			sub := dialSub(b, srv.Addr(), col)
			for _, q := range []string{`//order[total > 1000]`, `//order[@priority = "high"]`, `//order`} {
				if _, err := sub.Subscribe(q); err != nil {
					b.Fatal(err)
				}
			}
			pub := dialSub(b, srv.Addr(), nil)
			doc := []byte(`<order id="7" priority="high"><customer><country>DE</country></customer><total>2500</total></order>`)
			for i := 0; i < 100; i++ {
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			waitFor(b, "all deliveries flushed", func() bool { return col.count() >= b.N+100 })
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/sec")
		})
	}
}
