package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// processStart is captured at program init so every registry exporting
// process metrics reports the same start time.
var processStart = time.Now()

// RegisterProcessMetrics adds the standard process series Prometheus needs
// for restart detection and uptime queries (`time() -
// process_start_time_seconds`, resets of the uptime gauge).
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc("process_start_time_seconds",
		"unix time the process started", func() float64 {
			return float64(processStart.UnixNano()) / 1e9
		})
	r.GaugeFunc("process_uptime_seconds",
		"seconds since the process started", func() float64 {
			return time.Since(processStart).Seconds()
		})
	RegisterRuntimeMetrics(r)
}

// runtimeSupported reports whether the runtime/metrics name exists in this
// Go version, so the exported set degrades gracefully across toolchains.
func runtimeSupported(name string) bool {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	return s[0].Value.Kind() != metrics.KindBad
}

// readRuntimeFloat reads one runtime/metrics sample as a float64 (uint64
// samples are converted). The per-scrape allocation is deliberate: scrapes
// are rare and a shared sample slice would race between concurrent scrapes.
func readRuntimeFloat(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	switch s[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(s[0].Value.Uint64())
	case metrics.KindFloat64:
		return s[0].Value.Float64()
	}
	return 0
}

// runtimeHistSnapshot converts a runtime/metrics Float64Histogram into an
// obs Snapshot by attributing each runtime bucket's count to the obs bucket
// containing its midpoint. The runtime's bucket layout is finer than ours
// near zero, so the conversion only coarsens, never misplaces beyond one
// obs bucket.
func runtimeHistSnapshot(name string) Snapshot {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	var snap Snapshot
	snap.Buckets = make([]uint64, numBuckets+1)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return snap
	}
	h := s[0].Value.Float64Histogram()
	if h == nil {
		return snap
	}
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := 0.0
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			mid = 0
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		if mid < 0 {
			mid = 0
		}
		snap.Buckets[bucketIndex(mid)] += n
		snap.Count += n
		snap.Sum += float64(n) * mid
		if mid > snap.Max {
			snap.Max = mid
		}
	}
	return snap
}

// RegisterRuntimeMetrics exports Go runtime health via runtime/metrics:
// goroutine count, heap bytes, the GC pause histogram, and the scheduler
// latency histogram. Names missing from the running toolchain are skipped.
// Called once per registry by RegisterProcessMetrics.
func RegisterRuntimeMetrics(r *Registry) {
	gauges := []struct {
		runtime, name, help string
	}{
		{"/sched/goroutines:goroutines", "go_goroutines", "number of live goroutines"},
		{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "bytes of allocated heap objects"},
		{"/memory/classes/total:bytes", "go_memory_total_bytes", "all memory mapped by the Go runtime"},
		{"/gc/heap/goal:bytes", "go_gc_heap_goal_bytes", "heap size target of the next GC cycle"},
	}
	for _, g := range gauges {
		if !runtimeSupported(g.runtime) {
			continue
		}
		rt := g.runtime
		r.GaugeFunc(g.name, g.help, func() float64 { return readRuntimeFloat(rt) })
	}
	hists := []struct {
		runtime, name, help string
	}{
		{"/sched/pauses/total/gc:seconds", "go_gc_pauses_seconds", "distribution of stop-the-world GC pause latencies"},
		{"/sched/latencies:seconds", "go_sched_latencies_seconds", "distribution of goroutine scheduling latencies"},
	}
	for _, h := range hists {
		if !runtimeSupported(h.runtime) {
			continue
		}
		rt := h.runtime
		r.HistogramFunc(h.name, h.help, func() Snapshot { return runtimeHistSnapshot(rt) })
	}
}
