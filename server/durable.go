package server

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/wal"
)

// DocLog is the append-ordered document log behind durable delivery. The
// production implementation is *wal.Log (via WrapWAL); tests inject failing
// or in-memory logs through the same seam.
type DocLog interface {
	// Append stores one document and returns its monotonic offset.
	Append(doc []byte) (uint64, error)
	// OpenReader starts a reader at offset; its Next returns io.EOF at the
	// committed tail and wal.ErrTruncated below the retained range.
	OpenReader(offset uint64) (DocReader, error)
	// FirstOffset is the oldest retained offset; NextOffset the next to be
	// assigned.
	FirstOffset() uint64
	NextOffset() uint64
}

// DocReader iterates a DocLog; the payload is valid until the next call.
type DocReader interface {
	Next() (uint64, []byte, error)
	Close() error
}

// CursorStore persists durable subscribers' replay cursors by name.
type CursorStore interface {
	Load(name string) (offset uint64, ok bool, err error)
	Store(name string, offset uint64) error
}

// docLogTraced is the optional tracing seam on DocLog: a log implementing
// it records the fsync wait of a traced append as a child span. The server
// type-asserts at publish time, so injected test logs without the method
// still work.
type docLogTraced interface {
	AppendTraced(doc []byte, tc *trace.Ctx, parent trace.SpanID) (uint64, error)
}

// PendingAppend is an append staged into a group-commit batch but not yet
// committed; Wait blocks for the batch outcome (see wal.Pending).
type PendingAppend interface {
	Wait() (uint64, error)
}

// docLogAsync is the optional group-commit seam on DocLog: AppendAsync
// stages the document and returns immediately, letting the publish path
// overlap filtering with the batch fsync. Asserted at publish time, so
// injected test logs without the method fall back to the blocking Append.
type docLogAsync interface {
	AppendAsync(doc []byte) PendingAppend
}

// docLogHealth is the optional health seam on DocLog: Failed reports a
// latched persistent storage failure (the /healthz degraded state).
type docLogHealth interface {
	Failed() error
}

type walDocLog struct{ l *wal.Log }

func (w walDocLog) Append(doc []byte) (uint64, error)        { return w.l.Append(doc) }
func (w walDocLog) OpenReader(off uint64) (DocReader, error) { return w.l.OpenReader(off) }
func (w walDocLog) FirstOffset() uint64                      { return w.l.FirstOffset() }
func (w walDocLog) NextOffset() uint64                       { return w.l.NextOffset() }

func (w walDocLog) AppendTraced(doc []byte, tc *trace.Ctx, parent trace.SpanID) (uint64, error) {
	return w.l.AppendTraced(doc, tc, parent)
}

func (w walDocLog) AppendAsync(doc []byte) PendingAppend { return w.l.AppendAsync(doc) }
func (w walDocLog) Failed() error                        { return w.l.Failed() }

// WrapWAL adapts a *wal.Log to the DocLog seam for Config.WAL.
func WrapWAL(l *wal.Log) DocLog {
	if l == nil {
		return nil
	}
	return walDocLog{l}
}

// walChan returns the channel closed by the next walBroadcast. Pumps grab it
// BEFORE checking the log tail so an append between the check and the wait
// cannot be missed.
func (s *Server) walChan() <-chan struct{} {
	s.noteMu.Lock()
	defer s.noteMu.Unlock()
	return s.walNote
}

// walBroadcast wakes every pump parked at the log tail (close-and-replace).
func (s *Server) walBroadcast() {
	s.noteMu.Lock()
	ch := s.walNote
	s.walNote = make(chan struct{})
	s.noteMu.Unlock()
	close(ch)
}

// subscribeDurable registers a durable filter for cn under name and returns
// the filter id plus the offset replay resumes from. Durable subscribers are
// not fed from delivery queues: a per-connection pump reads the log from the
// persisted cursor, re-filters each document through the current engine, and
// writes DeliverAt frames paced by the TCP connection itself — nothing is
// ever dropped, only delayed (at-least-once; Ack advances the cursor).
//
// A name identifies one logical subscriber: reconnecting under a live name
// takes it over (the previous connection is closed), so a crashed client's
// half-dead session cannot wedge its replacement.
func (s *Server) subscribeDurable(cn *conn, name, xpath string) (id, resume uint64, err error) {
	if s.wal == nil || s.cursors == nil {
		return 0, 0, errors.New("server: durable subscriptions require a WAL-backed server (-wal-dir)")
	}
	cn.mu.Lock()
	if cn.durName != "" && cn.durName != name {
		have := cn.durName
		cn.mu.Unlock()
		return 0, 0, fmt.Errorf("server: connection already owns durable name %q", have)
	}
	cn.mu.Unlock()
	cursor, haveCursor, err := s.cursors.Load(name)
	if err != nil {
		return 0, 0, err
	}
	resume = s.wal.NextOffset()
	if haveCursor && cursor < resume {
		// A cursor past the tail (the log was rebuilt) clamps to the tail.
		resume = cursor
	}
	id, err = s.subscribe(cn, xpath, true)
	if err != nil {
		return 0, 0, err
	}
	if !haveCursor {
		// Persist the subscription point before any delivery: a subscriber
		// that disconnects or crashes before its first ack must resume from
		// here on reconnect, not from whatever the tail has grown to.
		if serr := s.cursors.Store(name, resume); serr != nil {
			if uerr := s.unsubscribe(cn, id); uerr != nil {
				s.logf("durable %q: rolling back filter %d: %v", name, id, uerr)
			}
			return 0, 0, fmt.Errorf("server: persisting initial cursor for durable %q: %w", name, serr)
		}
	}

	s.durMu.Lock()
	if prev := s.durables[name]; prev != nil && prev != cn {
		// Takeover: the newest session wins; the previous connection tears
		// down asynchronously in its own serve goroutine.
		s.logf("durable %q taken over by %s", name, cn.nc.RemoteAddr())
		prev.close()
	}
	s.durables[name] = cn
	s.durMu.Unlock()

	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.pumpOn {
		// Additional filters share the connection's existing pump.
		return id, cn.resume, nil
	}
	cn.durName = name
	cn.resume = resume
	cn.acked.Store(resume)
	cn.pumpOff.Store(resume)
	cn.pumpOn = true
	cn.pumpStop = make(chan struct{})
	cn.pumpWG.Add(1)
	go cn.pump(name, resume)
	return id, resume, nil
}

// pump is the durable delivery loop: replay from start, then follow the live
// tail. Each replayed document gets its own "replay" trace (under the same
// sampling rules as publishes) covering the log read, the re-filter, and the
// frame write, with the cursor's distance from the log head as replay_lag.
func (cn *conn) pump(name string, start uint64) {
	defer cn.pumpWG.Done()
	s := cn.s
	s.pumpsActive.Add(1)
	defer s.pumpsActive.Add(-1)
	r, err := s.wal.OpenReader(start)
	if err != nil {
		s.logf("durable %q: open reader: %v", name, err)
		cn.close()
		return
	}
	defer r.Close()
	// Frames are buffered and flushed when the pump catches up with the log
	// tail (or every pumpFlushEvery frames mid-replay), so a burst of
	// replayed documents shares one flush instead of paying one per frame.
	unflushed := 0
	for {
		ch := s.walChan() // before Next: see walChan
		t0 := time.Now()
		off, doc, err := r.Next()
		switch {
		case err == io.EOF:
			if unflushed > 0 {
				unflushed = 0
				if werr := cn.flushFrames(); werr != nil {
					s.logf("durable %q: flush: %v", name, werr)
					cn.close()
					return
				}
			}
			select {
			case <-ch:
				continue
			case <-cn.pumpStop:
				return
			}
		case errors.Is(err, wal.ErrTruncated):
			// Retention deleted the wanted range before this subscriber
			// caught up; skip to the oldest retained document.
			first := s.wal.FirstOffset()
			s.logf("durable %q: offsets below %d lost to retention", name, first)
			r.Close()
			if r, err = s.wal.OpenReader(first); err != nil {
				s.logf("durable %q: reopen reader: %v", name, err)
				cn.close()
				return
			}
			continue
		case err != nil:
			s.logf("durable %q: log read: %v", name, err)
			cn.close()
			return
		}
		cn.pumpScanned.Add(1)
		// BeginAt backdates the trace to before Next so the log read is
		// covered; the tail-parked EOF path above never reaches here, so t0
		// measures an actual read, not a wait.
		tc := s.tracer.BeginAt("replay", t0)
		tc.AddSpan("log_read", trace.Root, 0, tc.Offset(time.Now()))
		tc.SetAttr(trace.Root, "offset", int64(off))
		tc.SetAttr(trace.Root, "doc_bytes", int64(len(doc)))
		if next := s.wal.NextOffset(); next > off {
			tc.SetAttr(trace.Root, "replay_lag", int64(next-(off+1)))
		}
		ids, err := s.matchDurable(cn, doc, tc, trace.Root)
		if err != nil {
			// The document is already accepted into the log; a filter error
			// here (e.g. malformed XML vs a stricter engine config) must not
			// wedge the stream.
			s.logf("durable %q: filter error at offset %d: %v", name, off, err)
		}
		if len(ids) > 0 {
			payload := AppendDeliverAtPayloadTrace(make([]byte, 0, 20+8*len(ids)+len(doc)), off, ids, doc, tc.TraceID())
			wspan := tc.StartSpan("deliver_write", trace.Root)
			werr := cn.writeFrameBuffered(FrameDeliverAt, payload)
			if unflushed++; werr == nil && unflushed >= pumpFlushEvery {
				unflushed = 0
				werr = cn.flushFrames()
			}
			tc.EndSpan(wspan)
			if werr != nil {
				// A failed frame write (e.g. a write-deadline expiry mid-frame)
				// leaves the stream unusable; tear the connection down so the
				// serve loop releases the durable name and the client can
				// reconnect, instead of silently stopping deliveries.
				s.logf("durable %q: write at offset %d: %v", name, off, werr)
				tc.Finish()
				cn.close()
				return
			}
			s.mDurDeliver.Inc()
			cn.pumpDelivered.Add(1)
		}
		tc.Finish()
		cn.pumpOff.Store(off + 1)
	}
}

// matchDurable filters one replayed document and returns the matched filter
// ids that belong to cn's durable subscriptions.
func (s *Server) matchDurable(cn *conn, doc []byte, tc *trace.Ctx, parent trace.SpanID) ([]uint64, error) {
	var (
		c       *core
		matches []int
		err     error
	)
	if cc := s.cur.Load(); cc.concurrent() {
		c = cc
		matches, err = cc.filterDocument(doc, tc, parent)
	} else {
		s.pubMu.Lock()
		c = s.cur.Load()
		matches, err = c.filterDocument(doc, tc, parent)
		s.pubMu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, nil
	}
	keys := make([]uint64, 0, len(matches))
	for _, m := range matches {
		keys = append(keys, c.keys[m])
	}
	// Traced replays feed the per-query profiler's replay column: which
	// canonical queries the pump keeps re-filtering documents for.
	if tc != nil && s.prof != nil {
		canons := make([]string, 0, len(matches))
		for _, m := range matches {
			canons = append(canons, c.canon[m])
		}
		s.prof.observeReplay(keys, canons)
	}
	return s.subs.OwnerSubs(keys, cn, true), nil
}

// handleAck persists an advanced cursor. Acks carry no response frame, so
// problems are logged rather than reported (a lost ack only widens the
// at-least-once redelivery window).
func (cn *conn) handleAck(off uint64) {
	s := cn.s
	cn.mu.Lock()
	name := cn.durName
	cn.mu.Unlock()
	if name == "" || s.cursors == nil {
		s.logf("ignoring ACK(%d) from non-durable connection %s", off, cn.nc.RemoteAddr())
		return
	}
	next := off + 1
	if next <= cn.acked.Load() {
		return // stale or duplicate ack
	}
	// Only the connection currently owning the name may advance its cursor:
	// a late ack from a taken-over session must not move the new session's
	// replay point. durMu stays held across the Store — releasing it between
	// the ownership check and the write would let a takeover slip in and the
	// old session's stale cursor overwrite the new session's.
	s.durMu.Lock()
	if s.durables[name] != cn {
		s.durMu.Unlock()
		return
	}
	err := s.cursors.Store(name, next)
	if err == nil {
		cn.acked.Store(next)
	}
	s.durMu.Unlock()
	if err != nil {
		s.logf("durable %q: persisting cursor %d: %v", name, next, err)
		return
	}
	s.mAcks.Inc()
}

// stopPump asks the pump to exit; teardown closes the socket first so a pump
// blocked in a frame write unsticks.
func (cn *conn) stopPump() {
	cn.mu.Lock()
	on := cn.pumpOn
	cn.mu.Unlock()
	if !on {
		return
	}
	cn.pumpOnce.Do(func() { close(cn.pumpStop) })
	cn.pumpWG.Wait()
}

// releaseDurable drops the name binding if cn still owns it.
func (s *Server) releaseDurable(cn *conn) {
	cn.mu.Lock()
	name := cn.durName
	cn.mu.Unlock()
	if name == "" {
		return
	}
	s.durMu.Lock()
	if s.durables[name] == cn {
		delete(s.durables, name)
	}
	s.durMu.Unlock()
}

// registerDurableMetrics adds the WAL and durable-delivery series. Called
// only when Config.WAL is set.
func (s *Server) registerDurableMetrics() {
	s.mAcks = s.reg.Counter("xpushserve_acks_total", "ACK frames that advanced a durable cursor")
	s.mDurDeliver = s.reg.Counter("xpushserve_durable_deliveries_total", "DELIVERAT frames written to durable subscribers")
	s.reg.GaugeFunc("xpushserve_durable_subscribers", "connected durable subscribers", func() float64 {
		s.durMu.Lock()
		defer s.durMu.Unlock()
		return float64(len(s.durables))
	})
	s.reg.GaugeFunc("xpushserve_replay_lag", "log records not yet replayed to the slowest durable subscriber", func() float64 {
		next := s.wal.NextOffset()
		var max uint64
		s.durMu.Lock()
		for _, cn := range s.durables {
			if at := cn.pumpOff.Load(); at < next && next-at > max {
				max = next - at
			}
		}
		s.durMu.Unlock()
		return float64(max)
	})
	s.reg.GaugeVecFunc("xpush_durable_replay_lag_offsets",
		"log records between a durable subscriber's persisted cursor and the log head", func() []obs.Labeled {
			next := s.wal.NextOffset()
			s.durMu.Lock()
			out := make([]obs.Labeled, 0, len(s.durables))
			for name, cn := range s.durables {
				var lag uint64
				if a := cn.acked.Load(); a < next {
					lag = next - a
				}
				out = append(out, obs.Labeled{Labels: fmt.Sprintf("name=%q", name), Value: float64(lag)})
			}
			s.durMu.Unlock()
			sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
			return out
		})
	s.reg.GaugeFunc("xpush_durable_pump_active", "running durable replay pumps", func() float64 {
		return float64(s.pumpsActive.Load())
	})
	pumpVec := func(pick func(*conn) int64) func() []obs.Labeled {
		return func() []obs.Labeled {
			s.durMu.Lock()
			out := make([]obs.Labeled, 0, len(s.durables))
			for name, cn := range s.durables {
				out = append(out, obs.Labeled{Labels: fmt.Sprintf("name=%q", name), Value: float64(pick(cn))})
			}
			s.durMu.Unlock()
			sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
			return out
		}
	}
	s.reg.GaugeVecFunc("xpush_durable_pump_docs_scanned_total",
		"log records read and re-filtered by each durable subscriber's replay pump",
		pumpVec(func(cn *conn) int64 { return cn.pumpScanned.Load() }))
	s.reg.GaugeVecFunc("xpush_durable_pump_deliveries_total",
		"DELIVERAT frames each durable subscriber's replay pump wrote",
		pumpVec(func(cn *conn) int64 { return cn.pumpDelivered.Load() }))
	s.reg.GaugeFunc("xpushserve_acked_offset_min", "lowest persisted cursor among connected durable subscribers", func() float64 {
		s.durMu.Lock()
		defer s.durMu.Unlock()
		min := float64(-1)
		for _, cn := range s.durables {
			if a := float64(cn.acked.Load()); min < 0 || a < min {
				min = a
			}
		}
		if min < 0 {
			return 0
		}
		return min
	})
	wl, ok := s.wal.(walDocLog)
	if !ok {
		return
	}
	l := wl.l
	s.reg.GaugeFunc("xpushserve_wal_bytes", "bytes retained in the document log", func() float64 {
		return float64(l.Stats().Bytes)
	})
	s.reg.GaugeFunc("xpushserve_wal_segments", "segment files in the document log", func() float64 {
		return float64(l.Stats().Segments)
	})
	s.reg.GaugeFunc("xpushserve_wal_first_offset", "oldest retained log offset", func() float64 {
		return float64(l.FirstOffset())
	})
	s.reg.GaugeFunc("xpushserve_wal_next_offset", "next log offset to be assigned", func() float64 {
		return float64(l.NextOffset())
	})
	s.reg.CounterFunc("xpushserve_wal_appends_total", "documents appended to the log", func() int64 {
		return l.Stats().Appends
	})
	s.reg.CounterFunc("xpushserve_wal_append_errors_total", "failed log appends", func() int64 {
		return l.Stats().AppendErrors
	})
	s.reg.CounterFunc("xpushserve_wal_syncs_total", "fsyncs of the active log segment", func() int64 {
		return l.Stats().Syncs
	})
	s.reg.CounterFunc("xpush_wal_fsync_errors_total", "failed fsyncs of the active log segment", func() int64 {
		return l.Stats().FsyncErrors
	})
	s.reg.HistogramFunc("xpushserve_wal_batch_size_records",
		"documents per group-commit batch (log buckets)", l.BatchSizes)
	s.reg.SummaryFunc("xpushserve_wal_fsync_latency_seconds",
		"log fsync latency quantiles", []float64{0.5, 0.9, 0.99}, l.FsyncLatency)
	s.reg.HistogramFunc("xpushserve_wal_fsync_latency_histogram_seconds",
		"log fsync latency (log buckets)", l.FsyncLatency)
}
