// Quickstart: compile a handful of XPath filters into one XPush machine and
// route a few XML messages through it.
package main

import (
	"fmt"
	"log"

	xpushstream "repro"
)

func main() {
	// A message broker's subscription table: boolean XPath filters with
	// structure navigation and value predicates. The engine compiles all
	// of them into a single machine; common subexpressions — like the
	// [total > 1000] predicate below — are evaluated once per message no
	// matter how many filters share them.
	queries := []string{
		`//order[total > 1000]`,
		`//order[total > 1000 and customer/country = "US"]`,
		`//order[@priority = "high"]`,
		`//order[not(customer/country = "US")]`,
		`//order[item/qty >= 10 or @priority = "high"]`,
	}
	engine, err := xpushstream.Compile(queries, xpushstream.Config{})
	if err != nil {
		log.Fatal(err)
	}

	messages := []string{
		`<order id="1" priority="high">
		   <customer><name>Ada</name><country>US</country></customer>
		   <item><sku>X</sku><qty>2</qty></item>
		   <total>1500</total>
		 </order>`,
		`<order id="2" priority="low">
		   <customer><name>Grace</name><country>NL</country></customer>
		   <item><sku>Y</sku><qty>12</qty></item>
		   <total>80</total>
		 </order>`,
		`<order id="3" priority="low">
		   <customer><name>Alan</name><country>US</country></customer>
		   <item><sku>Z</sku><qty>1</qty></item>
		   <total>950</total>
		 </order>`,
	}

	for i, msg := range messages {
		matches, err := engine.FilterDocument([]byte(msg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("message %d matches %d filter(s):\n", i+1, len(matches))
		for _, m := range matches {
			fmt.Printf("  [%d] %s\n", m, engine.Query(m))
		}
	}

	s := engine.Stats()
	fmt.Printf("\nmachine: %d states, %.1f AFA states/state, hit ratio %.2f\n",
		s.States, s.AvgStateSize, s.HitRatio)
}
