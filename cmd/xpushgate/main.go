// Command xpushgate runs the cluster ingress: it makes N unmodified
// xpushserve nodes look like one broker speaking the ordinary framed
// protocol. Subscriptions are partitioned across nodes by the consistent
// hash of their canonical filter text (durable subscriptions by durable
// name, so replay cursors stay node-local), publishes fan out to every node
// owning at least one live filter, delivery streams merge back per
// subscriber, and a publish acks only once every owning node has acked it.
//
// Usage:
//
//	xpushgate [-addr :9410] -nodes host1:9310,host2:9310 | -nodes-file hosts
//	          [-metrics-addr :9411] [-vnodes 256] [-ping-interval 2s]
//	          [-publish-window 256] [-max-doc-bytes 0]
//	          [-request-timeout 10s] [-dial-timeout 2s]
//	          [-trace-sample 0] [-trace-slow 0] [-node-debug addrs]
//	          [-version]
//
// Membership is static: the node set is fixed at startup. When a node's
// connection dies the gate marks it down, fails the publishes pending on
// it, and replays its subscriptions onto the ring's next owners (ephemeral
// filters resume seamlessly; durable subscriptions restart from the
// takeover node's own cursor — see DESIGN.md "Cluster mode" for the exact
// guarantees and the WAL-shipping follow-on that closes the gap).
//
// /metrics exposes per-node health (xpushgate_node_up), live-key counts,
// publish fan-out width and per-node ack latency; /debug/cluster returns
// the same as JSON. /healthz reports degraded until every node is
// connected, naming every disconnected node.
//
// With -trace-sample N (and/or -trace-slow D) the gate traces one of every
// N fan-out publishes end to end: the sampled publish's trace id rides the
// node-bound frames, each node records its own wal/filter/deliver spans
// under that id, and /debug/cluster/traces fetches the nodes'
// /debug/traces (via -node-debug, a comma-separated list of node
// introspection addresses parallel to -nodes) and merges everything into
// one Chrome trace_event document — load it at ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/cluster"
)

func main() {
	cfg, opts, err := buildConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpushgate: %v\n", err)
		os.Exit(2)
	}
	if opts.version {
		fmt.Println(versionString())
		return
	}
	logger := log.New(os.Stderr, "xpushgate: ", log.LstdFlags)
	cfg.Logf = logger.Printf

	g, err := cluster.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("gating %d nodes on %s (vnodes=%d)", len(cfg.Nodes), g.Addr(), cfg.VirtualNodes)
	if g.MetricsAddr() != "" {
		logger.Printf("metrics on http://%s/metrics (+ /debug/cluster)", g.MetricsAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	logger.Printf("%v: shutting down", got)
	g.Close()
	logger.Printf("closed")
}

// options carries the non-Config outputs of flag parsing.
type options struct {
	version bool
}

// buildConfig parses flags into a gate configuration; factored out of main
// for testing.
func buildConfig(args []string) (cluster.Config, options, error) {
	fs := flag.NewFlagSet("xpushgate", flag.ContinueOnError)
	addr := fs.String("addr", ":9410", "subscriber-facing listen address")
	nodes := fs.String("nodes", "", "comma-separated xpushserve node addresses")
	nodesFile := fs.String("nodes-file", "", "hosts file: one node address per line, # comments")
	metricsAddr := fs.String("metrics-addr", ":9411", "metrics listen address: /metrics, /healthz, /debug/cluster (empty disables)")
	vnodes := fs.Int("vnodes", cluster.DefaultVirtualNodes, "virtual points per node on the hash ring")
	pingInterval := fs.Duration("ping-interval", cluster.DefaultPingInterval, "node health-check cadence")
	publishWindow := fs.Int("publish-window", 0, "per-connection and per-node in-flight publish window (0 = 256)")
	maxDocBytes := fs.Int("max-doc-bytes", 0, "published document size bound in bytes (0 = 64 MiB)")
	requestTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request node round-trip bound (also bounds a fan-out publish's wait for all node acks)")
	dialTimeout := fs.Duration("dial-timeout", 2*time.Second, "single node dial attempt bound")
	traceSample := fs.Int("trace-sample", 0, "trace 1 of every N fan-out publishes across the cluster (0 disables)")
	traceSlow := fs.Duration("trace-slow", 0, "also keep any fan-out publish slower than this threshold (0 disables)")
	nodeDebug := fs.String("node-debug", "", "comma-separated node introspection addresses, parallel to -nodes; enables node-side span merging on /debug/cluster/traces")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return cluster.Config{}, options{}, err
	}
	if *version {
		return cluster.Config{}, options{version: true}, nil
	}
	if (*nodes == "") == (*nodesFile == "") {
		return cluster.Config{}, options{}, fmt.Errorf("exactly one of -nodes or -nodes-file is required")
	}
	var members []string
	var err error
	if *nodes != "" {
		members, err = cluster.ParseNodes(*nodes)
	} else {
		members, err = cluster.ReadNodesFile(*nodesFile)
	}
	if err != nil {
		return cluster.Config{}, options{}, err
	}
	cfg := cluster.Config{
		Addr:         *addr,
		Nodes:        members,
		VirtualNodes: *vnodes,
		MetricsAddr:  *metricsAddr,
		Client: client.Options{
			Timeout:     *requestTimeout,
			DialTimeout: *dialTimeout,
			MaxDocBytes: *maxDocBytes,
		},
		PingInterval:  *pingInterval,
		PublishWindow: *publishWindow,
		TraceSample:   *traceSample,
		TraceSlow:     *traceSlow,
	}
	if *nodeDebug != "" {
		dbg, err := cluster.ParseNodes(*nodeDebug)
		if err != nil {
			return cluster.Config{}, options{}, err
		}
		if len(dbg) != len(members) {
			return cluster.Config{}, options{}, fmt.Errorf("-node-debug lists %d addresses for %d nodes", len(dbg), len(members))
		}
		cfg.NodeDebug = dbg
	}
	return cfg, options{}, nil
}

// versionString reports the module version (from build info, "(devel)" for
// a plain `go build`) and the Go runtime.
func versionString() string {
	v := "(unknown)"
	if bi, ok := debug.ReadBuildInfo(); ok {
		v = bi.Main.Version
		if v == "" {
			v = "(devel)"
		}
	}
	return fmt.Sprintf("xpushgate %s %s %s/%s", v, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
