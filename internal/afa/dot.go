package afa

import (
	"fmt"
	"io"
)

// WriteDot renders the AFA in Graphviz dot format, one cluster per filter —
// the picture of Fig. 4. Label transitions are solid edges, ε transitions
// dashed; AND states are boxes, NOT states diamonds, terminals doubled.
func (a *AFA) WriteDot(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph afa {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [fontname=\"Helvetica\", fontsize=11];")

	// Assign states to their filters for clustering.
	owner := make([]int32, a.NumStates())
	for i := range a.states {
		owner[i] = a.states[i].query
	}
	for qi, q := range a.Queries {
		fmt.Fprintf(w, "  subgraph cluster_q%d {\n", qi)
		fmt.Fprintf(w, "    label=%q;\n", fmt.Sprintf("P%d: %s", qi+1, q.Source))
		fmt.Fprintln(w, "    color=gray;")
		for s := int32(0); s < int32(a.NumStates()); s++ {
			if owner[s] != int32(qi) {
				continue
			}
			fmt.Fprintf(w, "    s%d %s;\n", s, a.dotNodeAttrs(s, q))
		}
		fmt.Fprintln(w, "  }")
	}
	for s := int32(0); s < int32(a.NumStates()); s++ {
		st := &a.states[s]
		for _, e := range st.edges {
			fmt.Fprintf(w, "  s%d -> s%d [label=%q];\n", s, e.to, a.Syms.Name(e.sym))
		}
		for _, t := range st.eps {
			fmt.Fprintf(w, "  s%d -> s%d [style=dashed, label=\"ε\"];\n", s, t)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func (a *AFA) dotNodeAttrs(s int32, q QueryInfo) string {
	st := &a.states[s]
	label := fmt.Sprintf("%d", s)
	shape := "ellipse"
	extra := ""
	switch st.kind {
	case AND:
		shape = "box"
		label += " AND"
	case NOT:
		shape = "diamond"
		label += " NOT"
	}
	switch st.terminal {
	case LeafTerminal:
		label += fmt.Sprintf("\\n%s%s", st.op, st.konst)
		extra = ", peripheries=2"
	case TrueTerminal:
		label += "\\ntrue"
		extra = ", peripheries=2"
	}
	if s == q.Initial {
		extra += ", style=bold"
	}
	return fmt.Sprintf("[shape=%s, label=%q%s]", shape, label, extra)
}
