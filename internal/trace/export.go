package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// JSONSpan and JSONTrace shape the /debug/traces payload. They are exported
// so a downstream consumer — the xpushgate cluster merge exporter — can
// decode a node's payload and re-emit its spans inside a merged trace.
type JSONSpan struct {
	Name    string `json:"name"`
	Parent  SpanID `json:"parent"`
	Track   int32  `json:"track,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

type JSONTrace struct {
	ID        uint64     `json:"id"`
	Kind      string     `json:"kind"`
	Wall      time.Time  `json:"wall"`
	TotalNS   int64      `json:"total_ns"`
	Slow      bool       `json:"slow"`
	Sampled   bool       `json:"sampled"`
	Remote    bool       `json:"remote,omitempty"`
	Truncated int32      `json:"truncated_spans,omitempty"`
	Spans     []JSONSpan `json:"spans"`
}

// TracesPayload is the full /debug/traces document.
type TracesPayload struct {
	Enabled     bool          `json:"enabled"`
	SampleEvery int           `json:"sample_every"`
	SlowNS      int64         `json:"slow_threshold_ns"`
	Stats       RecorderStats `json:"stats"`
	Traces      []JSONTrace   `json:"traces"`
	SlowTraces  []JSONTrace   `json:"slow_traces"`
}

// ToJSON renders one trace in the /debug/traces shape.
func ToJSON(c *Ctx) JSONTrace {
	spans := c.Spans()
	js := make([]JSONSpan, len(spans))
	for i := range spans {
		s := &spans[i]
		js[i] = JSONSpan{
			Name:    s.Name,
			Parent:  s.Parent,
			Track:   s.Track,
			StartNS: s.Start,
			DurNS:   s.Dur().Nanoseconds(),
		}
		if a := s.Attrs(); len(a) > 0 {
			js[i].Attrs = append([]Attr(nil), a...)
		}
	}
	return JSONTrace{
		ID:        c.ID,
		Kind:      c.Kind,
		Wall:      c.Wall,
		TotalNS:   c.Total.Nanoseconds(),
		Slow:      c.Slow,
		Sampled:   c.Sampled,
		Remote:    c.Remote,
		Truncated: c.Truncated(),
		Spans:     js,
	}
}

// Payload snapshots the recorder state in the /debug/traces shape. Safe on
// a nil recorder (reports enabled=false).
func (r *Recorder) Payload() TracesPayload {
	p := TracesPayload{
		Enabled:     r.Enabled(),
		SampleEvery: r.SampleEvery(),
		SlowNS:      r.SlowThreshold().Nanoseconds(),
		Traces:      []JSONTrace{},
		SlowTraces:  []JSONTrace{},
	}
	if r == nil {
		return p
	}
	p.Stats = r.Stats()
	for _, c := range r.Traces() {
		p.Traces = append(p.Traces, ToJSON(c))
	}
	for _, c := range r.SlowTraces() {
		p.SlowTraces = append(p.SlowTraces, ToJSON(c))
	}
	return p
}

// Handler returns the /debug/traces HTTP handler: a JSON document with the
// recorder config, counters, the last N head-sampled traces, and the
// retained slow traces. Safe on a nil recorder (reports enabled=false).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Payload())
	})
}

// WriteChrome renders traces in the Chrome trace_event JSON array format
// ("X" complete events, microsecond timestamps), loadable in
// chrome://tracing and https://ui.perfetto.dev. Each trace becomes one
// process (pid = trace id) and each span track one thread, so concurrent
// delivery/shard spans render as parallel rows.
func WriteChrome(w io.Writer, traces []*Ctx) error {
	var base time.Time
	for _, c := range traces {
		if base.IsZero() || c.Wall.Before(base) {
			base = c.Wall
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	for _, c := range traces {
		off := c.Wall.Sub(base).Nanoseconds()
		spans := c.Spans()
		for i := range spans {
			s := &spans[i]
			if !first {
				if _, err := io.WriteString(w, ",\n"); err != nil {
					return err
				}
			}
			first = false
			ts := float64(off+s.Start) / 1e3
			dur := float64(s.Dur().Nanoseconds()) / 1e3
			args := map[string]any{"trace_id": c.ID}
			for _, a := range s.Attrs() {
				args[a.Key] = a.Val
			}
			ev := map[string]any{
				"name": s.Name,
				"ph":   "X",
				"ts":   ts,
				"dur":  dur,
				"pid":  c.ID,
				"tid":  s.Track + 1,
				"args": args,
			}
			if s.Name == c.Kind && s.Parent == NoSpan {
				ev["cat"] = "root"
			} else {
				ev["cat"] = "span"
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
		// Thread-name metadata so Perfetto labels each trace's rows.
		if len(spans) > 0 {
			meta := map[string]any{
				"name": "process_name", "ph": "M", "pid": c.ID,
				"args": map[string]any{"name": fmt.Sprintf("%s trace %d", c.Kind, c.ID)},
			}
			b, err := json.Marshal(meta)
			if err != nil {
				return err
			}
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// WriteChrome dumps every retained trace in Chrome trace_event format.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChrome(w, r.Collect())
}
