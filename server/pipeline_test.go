package server_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/server"
	"repro/wal"
)

// alwaysWalServer is walServer with fsync=always: the configuration the
// pipelined-publish path exists for, where naive one-publish-one-fsync is
// slowest and group commit matters most.
func alwaysWalServer(t testing.TB, dir string, cfg server.Config) (*server.Server, *wal.Log) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cs, err := wal.OpenCursorStore(filepath.Join(filepath.Dir(dir), "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = server.WrapWAL(l)
	cfg.Cursors = cs
	return startServer(t, cfg), l
}

// TestPublishPipelinedE2E drives the full pipelined path against a
// fsync=always broker: every publish is acked with its match count, acks
// arrive in submission order, and the documents reach a durable subscriber
// in log order.
func TestPublishPipelinedE2E(t *testing.T) {
	base := t.TempDir()
	srv, l := alwaysWalServer(t, filepath.Join(base, "wal"), server.Config{})

	col := &durCollector{}
	sub := dialDur(t, srv.Addr(), col)
	if _, _, err := sub.SubscribeDurable("pipe", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}

	pub := dialDur(t, srv.Addr(), nil)
	var mu sync.Mutex
	var results []client.PublishResult
	p, err := pub.PublishPipelined(8, func(r client.PublishResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		seq, err := p.Publish(matchDoc(i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("publish %d assigned seq %d, want %d", i, seq, i+1)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("pipeline close: %v", err)
	}

	// Acks are matched by sequence, not guaranteed in submission order (the
	// broker's per-document workers complete independently): every sequence
	// must be acked exactly once, cleanly.
	mu.Lock()
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	seen := map[uint64]bool{}
	for _, r := range results {
		if seen[r.Seq] {
			t.Fatalf("seq %d acked twice", r.Seq)
		}
		seen[r.Seq] = true
		if r.Seq < 1 || r.Seq > n || r.Err != nil || r.Matches != 1 {
			t.Fatalf("result %+v, want seq in [1,%d], 1 match, no error", r, n)
		}
	}
	mu.Unlock()

	if got := l.NextOffset(); got != n {
		t.Fatalf("log holds %d records, want %d", got, n)
	}
	waitFor(t, "all pipelined docs delivered", func() bool { return col.count() >= n })
	for i := 0; i < n; i++ {
		doc, off := col.at(i)
		if off != uint64(i) || doc != string(matchDoc(i)) {
			t.Fatalf("delivery %d = (%d, %q), want offset %d doc %q", i, off, doc, i, matchDoc(i))
		}
	}

	// The window is free again: a second pipeline on the same client works.
	p2, err := pub.PublishPipelined(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Publish(matchDoc(n)); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatalf("second pipeline close: %v", err)
	}
}

// TestPublishPipelinedOnePerClient pins the one-active-pipeline contract.
func TestPublishPipelinedOnePerClient(t *testing.T) {
	base := t.TempDir()
	srv, _ := alwaysWalServer(t, filepath.Join(base, "wal"), server.Config{})
	c := dialDur(t, srv.Addr(), nil)
	p, err := c.PublishPipelined(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishPipelined(4, nil); err == nil {
		t.Fatal("second concurrent pipeline accepted")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPublishPipelinedErrorPropagation: a broker-side append failure comes
// back as that document's PubAck error — the pipeline keeps running, Close
// reports the first failure, and publishes recover with the disk.
func TestPublishPipelinedErrorPropagation(t *testing.T) {
	base := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: filepath.Join(base, "wal"), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cs, err := wal.OpenCursorStore(filepath.Join(base, "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyLog{DocLog: server.WrapWAL(l)}
	srv := startServer(t, server.Config{WAL: flaky, Cursors: cs})

	c := dialDur(t, srv.Addr(), nil)
	var mu sync.Mutex
	byseq := map[uint64]client.PublishResult{}
	p, err := c.PublishPipelined(4, func(r client.PublishResult) {
		mu.Lock()
		byseq[r.Seq] = r
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish(matchDoc(0)); err != nil {
		t.Fatal(err)
	}
	// Publishes are processed asynchronously: wait for the first ack before
	// breaking the disk so the failure hits exactly the second document.
	waitFor(t, "first publish acked", func() bool {
		mu.Lock()
		defer mu.Unlock()
		_, ok := byseq[1]
		return ok
	})
	flaky.fail.Store(true)
	seqBad, err := p.Publish(matchDoc(1))
	if err != nil {
		t.Fatalf("pipelined publish write failed: %v", err)
	}
	waitFor(t, "failed publish acked", func() bool {
		mu.Lock()
		defer mu.Unlock()
		_, ok := byseq[seqBad]
		return ok
	})
	flaky.fail.Store(false)
	if _, err := p.Publish(matchDoc(2)); err != nil {
		t.Fatal(err)
	}
	closeErr := p.Close()
	if closeErr == nil || !strings.Contains(closeErr.Error(), "wal append") {
		t.Fatalf("pipeline close = %v, want the wal append error", closeErr)
	}
	mu.Lock()
	defer mu.Unlock()
	if r := byseq[seqBad]; r.Err == nil || !strings.Contains(r.Err.Error(), "wal append") {
		t.Fatalf("failed publish result = %+v, want a wal append error", r)
	}
	if r := byseq[seqBad-1]; r.Err != nil {
		t.Fatalf("publish before failure errored: %+v", r)
	}
	if r := byseq[seqBad+1]; r.Err != nil {
		t.Fatalf("publish after recovery errored: %+v", r)
	}
	// Only the two successful documents are in the log.
	if n := l.NextOffset(); n != 2 {
		t.Fatalf("log holds %d records, want 2", n)
	}
}

// blockingCursors gates one Store call: after arm(), the next Store parks on
// entered/release so a test can hold an ack's cursor write open while racing
// a takeover against it.
type blockingCursors struct {
	server.CursorStore
	mu      sync.Mutex
	armed   bool
	entered chan struct{}
	release chan struct{}
}

func (b *blockingCursors) Store(name string, off uint64) error {
	b.mu.Lock()
	hold := b.armed
	b.armed = false
	b.mu.Unlock()
	if hold {
		close(b.entered)
		<-b.release
	}
	return b.CursorStore.Store(name, off)
}

func (b *blockingCursors) arm() {
	b.mu.Lock()
	b.armed = true
	b.mu.Unlock()
}

// TestAckTakeoverRace is the regression test for the handleAck TOCTOU: the
// ownership check and the cursor write must happen under one durMu critical
// section. With the old code (durMu released in between), a takeover slips
// in while the old session's Store is in flight and the old session's stale
// cursor lands last, moving the new session's replay point backwards.
func TestAckTakeoverRace(t *testing.T) {
	base := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: filepath.Join(base, "wal"), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	real, err := wal.OpenCursorStore(filepath.Join(base, "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	bc := &blockingCursors{
		CursorStore: real,
		entered:     make(chan struct{}),
		release:     make(chan struct{}),
	}
	srv := startServer(t, server.Config{WAL: server.WrapWAL(l), Cursors: bc})

	col1 := &durCollector{}
	old := dialDur(t, srv.Addr(), col1)
	if _, _, err := old.SubscribeDurable("race", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	pub := dialDur(t, srv.Addr(), nil)
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(matchDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "old session caught up", func() bool { return col1.count() >= 5 })

	// Park the old session's ack inside cursors.Store.
	bc.arm()
	if err := old.Ack(1); err != nil { // would persist cursor 2
		t.Fatal(err)
	}
	select {
	case <-bc.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("old session's ack never reached the cursor store")
	}

	// While it is parked, take the name over and advance the cursor from the
	// new session. Under the fix these block behind the held durMu until the
	// old Store completes, so the new session's cursor always lands last.
	done := make(chan error, 1)
	go func() {
		col2 := &durCollector{}
		fresh := dialDur(t, srv.Addr(), col2)
		if _, _, err := fresh.SubscribeDurable("race", `//order[total > 1000]`); err != nil {
			done <- err
			return
		}
		if err := fresh.Ack(4); err != nil { // persists cursor 5
			done <- err
			return
		}
		// Wait until the new session's ack is persisted.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if got, ok, err := real.Load("race"); err == nil && ok && got == 5 {
				done <- nil
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		done <- fmt.Errorf("new session's cursor never persisted")
	}()

	time.Sleep(50 * time.Millisecond) // let the takeover queue up behind durMu
	close(bc.release)                 // old session's Store(2) proceeds
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The stale Store must not have overwritten the new session's cursor.
	// Give any late write a moment to land before the final check.
	time.Sleep(50 * time.Millisecond)
	if got, ok, err := real.Load("race"); err != nil || !ok || got != 5 {
		t.Fatalf("final cursor = (%d, %v, %v), want 5 — stale ack won the race", got, ok, err)
	}
}

// TestCrashMidBatchPipelined: a pipelined publisher against fsync=always is
// killed mid-stream and the broker crashes with a torn record on disk. The
// durability contract under group commit is exactly the old one: every
// publish that was ACKED survives recovery; un-acked publishes may or may
// not (they are the at-least-once redelivery window).
func TestCrashMidBatchPipelined(t *testing.T) {
	base := t.TempDir()
	walDir := filepath.Join(base, "wal")
	srv, _ := alwaysWalServer(t, walDir, server.Config{})

	pub := dialDur(t, srv.Addr(), nil)
	var mu sync.Mutex
	acked := map[uint64]bool{}
	p, err := pub.PublishPipelined(8, func(r client.PublishResult) {
		if r.Err == nil {
			mu.Lock()
			acked[r.Seq] = true
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	docs := map[uint64][]byte{}
	for i := 0; i < n; i++ {
		doc := matchDoc(i)
		seq, err := p.Publish(doc)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		docs[seq] = doc
	}
	// Crash the publisher without draining the pipeline: in-flight acks are
	// lost, whatever was acked so far is the durability obligation.
	pub.Close()
	mu.Lock()
	ackedSeqs := make(map[uint64]bool, len(acked))
	for s := range acked {
		ackedSeqs[s] = true
	}
	mu.Unlock()
	if len(ackedSeqs) == 0 {
		t.Skip("no acks arrived before the crash; nothing to verify")
	}

	// Crash the broker and tear the log tail as an interrupted batch write
	// would: a record header promising more payload than is present.
	srv.Close()
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0, 0, 0, 100, 0xde, 0xad, 0xbe, 0xef}, []byte("tornbatch")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	v, err := wal.Verify(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Torn {
		t.Fatalf("pre-recovery Verify = %+v, want a torn tail", v)
	}

	// Recover and index every surviving document.
	l2, err := wal.Open(wal.Options{Dir: walDir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if v, err = wal.Verify(walDir); err != nil || v.Torn {
		t.Fatalf("post-recovery Verify = %+v, %v; want clean", v, err)
	}
	survived := map[string]bool{}
	r, err := l2.OpenReader(l2.FirstOffset())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, doc, err := r.Next()
		if err != nil {
			break // io.EOF at the committed tail
		}
		survived[string(doc)] = true
	}
	for seq := range ackedSeqs {
		if !survived[string(docs[seq])] {
			t.Errorf("acked publish seq %d missing after crash recovery", seq)
		}
	}
	t.Logf("crash-mid-batch: %d/%d acked, all acked docs survived (%d records recovered)",
		len(ackedSeqs), n, l2.NextOffset())
}

// TestPipelinedConcurrentPublishers exercises the whole group-commit +
// async-ack machinery under -race: several pipelining connections publish
// concurrently into one fsync=always log, every publish is acked exactly
// once with no errors, and the log holds every document.
func TestPipelinedConcurrentPublishers(t *testing.T) {
	base := t.TempDir()
	srv, l := alwaysWalServer(t, filepath.Join(base, "wal"), server.Config{})

	const pubs, per = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, pubs)
	for pi := 0; pi < pubs; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr(), client.Options{Timeout: 10 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			p, err := c.PublishPipelined(8, nil)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < per; i++ {
				if _, err := p.Publish(matchDoc(pi*per + i)); err != nil {
					errs <- fmt.Errorf("publisher %d doc %d: %w", pi, i, err)
					return
				}
			}
			if err := p.Close(); err != nil {
				errs <- fmt.Errorf("publisher %d close: %w", pi, err)
			}
		}(pi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := l.NextOffset(); got != pubs*per {
		t.Fatalf("log holds %d records, want %d", got, pubs*per)
	}
	if st := l.Stats(); st.AppendErrors != 0 {
		t.Fatalf("append errors: %d", st.AppendErrors)
	}
}

// BenchmarkServeDurableLoopbackPipelined is the pipelined companion of
// BenchmarkServeDurableLoopback: a windowed PUBLISH_ASYNC stream instead of
// one round trip per document, so fsync=always publishes share group
// commits. The bench gate holds fsync=always within a small ratio of
// fsync=interval here — the headline number of this change.
func BenchmarkServeDurableLoopbackPipelined(b *testing.B) {
	for _, pol := range []wal.FsyncPolicy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		b.Run("fsync="+string(pol), func(b *testing.B) {
			base := b.TempDir()
			l, err := wal.Open(wal.Options{Dir: filepath.Join(base, "wal"), Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			cs, err := wal.OpenCursorStore(filepath.Join(base, "cursors"))
			if err != nil {
				b.Fatal(err)
			}
			srv := startServer(b, server.Config{WAL: server.WrapWAL(l), Cursors: cs})

			got := make(chan uint64, 4096)
			sub, err := client.Dial(srv.Addr(), client.Options{
				Timeout:   10 * time.Second,
				OnDeliver: func(d client.Delivery) { got <- d.Offset },
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Close()
			if _, _, err := sub.SubscribeDurable("bench", `//order[total > 1000]`); err != nil {
				b.Fatal(err)
			}
			pub := dialDur(b, srv.Addr(), nil)
			p, err := pub.PublishPipelined(64, nil)
			if err != nil {
				b.Fatal(err)
			}
			doc := []byte(`<order id="7" priority="high"><customer><country>DE</country></customer><total>2500</total></order>`)
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			received := 0
			for i := 0; i < b.N; i++ {
				if _, err := p.Publish(doc); err != nil {
					b.Fatal(err)
				}
				// Drain deliveries opportunistically, acking every 64th so the
				// cursor advances without a sync round trip per document.
				for {
					select {
					case off := <-got:
						received++
						if received%64 == 0 {
							if err := sub.Ack(off); err != nil {
								b.Fatal(err)
							}
						}
						continue
					default:
					}
					break
				}
			}
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			for received < b.N {
				select {
				case <-got:
					received++
				case <-time.After(30 * time.Second):
					b.Fatalf("only %d/%d deliveries arrived", received, b.N)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/sec")
		})
	}
}
