// Package xpushstream is the public API of this repository: a streaming
// XPath filtering engine for XML message brokers, implementing the XPush
// Machine of
//
//	A. K. Gupta and D. Suciu. Stream Processing of XPath Queries with
//	Predicates. SIGMOD 2003.
//
// An Engine compiles a workload of boolean XPath filters — typically tens or
// hundreds of thousands, each with value predicates — into a single lazily
// constructed deterministic pushdown automaton that processes every SAX
// event of an XML stream in O(1) time, independent of the workload size.
// Common subexpressions are eliminated in both the structure-navigation part
// and the predicate-evaluation part of the filters.
//
// Quickstart:
//
//	engine, err := xpushstream.Compile([]string{
//	        `//order[total > 1000]`,
//	        `//order[customer/country = "US" and total > 100]`,
//	}, xpushstream.Config{})
//	...
//	matches, err := engine.FilterDocument(xmlBytes) // -> filter indexes
//
// The supported XPath fragment (Fig. 1 of the paper) is
//
//	P      ::= /E | //E
//	E      ::= label | text() | * | @label | @* | . | E/E | E//E | E[Q]
//	Q      ::= E | E op Const | Q and Q | Q or Q | not(Q)
//	op     ::= = | != | < | <= | > | >=
//
// plus the contains(E, "s") and starts-with(E, "s") string predicates.
package xpushstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/afa"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/obs"
	"repro/internal/sax"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// Config selects the engine's optimizations (Sec. 5 of the paper). The zero
// value is the basic bottom-up machine with eager value-state
// precomputation, a good default for workloads without a DTD.
type Config struct {
	// TopDownPruning starts bottom-up computations only at branches
	// enabled by downward navigation, avoiding states for predicates
	// that match under the wrong element context.
	TopDownPruning bool
	// OrderOptimization exploits sibling order from the DTD (requires
	// DTD): out-of-order partial matches are discarded, shrinking the
	// state space from subsets to prefixes (Theorem 6.2).
	OrderOptimization bool
	// EarlyNotification reports a filter as soon as its first branching
	// state matches and drops its states from further processing. It
	// implies TopDownPruning. Most effective for filters with a single
	// predicate.
	EarlyNotification bool
	// Training warms the machine before the first document: a synthetic
	// training document is generated per filter (requires DTD) and run
	// through the machine, precomputing the states real data will reuse.
	Training bool
	// DisablePrecompute turns off eager computation of the atomic
	// predicate index's value states (precomputation is on by default
	// for the non-top-down machine, per Sec. 4).
	DisablePrecompute bool
	// DTD provides content-model information for OrderOptimization and
	// Training.
	DTD *DTD
	// StrictMixedContent reports mixed element/text content as an error
	// instead of processing it with union semantics.
	StrictMixedContent bool
	// MaxStates caps the lazily built state tables; past the cap the
	// tables are flushed at the next document boundary (bounded-memory
	// operation on infinite streams). Zero means unlimited.
	MaxStates int
}

// Stats is a snapshot of engine runtime counters. They correspond directly
// to the measurements in the paper's evaluation: States and AvgStateSize
// (Figs. 6, 7, 10, 11), HitRatio (Fig. 8).
type Stats struct {
	// States is the number of lazily materialised machine states.
	States int
	// TopDownStates counts top-down (navigation) states.
	TopDownStates int
	// AvgStateSize is the mean number of AFA states per machine state.
	AvgStateSize float64
	// Lookups and Hits count transition-table lookups; HitRatio is
	// Hits/Lookups.
	Lookups, Hits int64
	HitRatio      float64
	// Documents and Events count the processed stream.
	Documents, Events int64
	// Matches counts reported (document, filter) pairs.
	Matches int64
	// MixedContentEvents counts violations of the no-mixed-content data
	// model.
	MixedContentEvents int64
	// Flushes counts MaxStates cache flushes.
	Flushes int64
	// Bytes counts stream bytes processed.
	Bytes int64
	// FilterLatency is a snapshot of the per-document filter-latency
	// histogram, in seconds. Use FilterLatency.Summary() for
	// p50/p90/p99/max, or feed it to an obs.Registry for Prometheus
	// exposition.
	FilterLatency obs.Snapshot
	// Windowed counters over the most recent WindowDocuments documents
	// (at most core.StatsWindow per layer): the time-local view of
	// Fig. 8's warm-up curve. On a long-running broker WindowHitRatio
	// climbs toward 1 as the lazy machine completes, while the cumulative
	// HitRatio above stays depressed by cold-start misses.
	WindowDocuments           int
	WindowLookups, WindowHits int64
	WindowStatesAdded         int64
	WindowHitRatio            float64
}

// LatencySummary returns the per-document filter-latency quantile summary
// (seconds).
func (s Stats) LatencySummary() obs.Summary { return s.FilterLatency.Summary() }

// DTD is a parsed document type definition (the <!ELEMENT>/<!ATTLIST>
// subset), used for the order optimization and training-data generation.
type DTD struct {
	d *dtd.DTD
}

// ParseDTD parses DTD text.
func ParseDTD(text string) (*DTD, error) {
	d, err := dtd.Parse(text)
	if err != nil {
		return nil, err
	}
	return &DTD{d: d}, nil
}

// IsRecursive reports whether some element can transitively contain itself.
func (d *DTD) IsRecursive() bool { return d.d.IsRecursive() }

// MaxDepth estimates the maximum document depth (capped for recursive
// DTDs).
func (d *DTD) MaxDepth(cap int) int { return d.d.MaxDepth(cap) }

// Engine is a compiled filter workload. An Engine processes one stream at a
// time (it is not safe for concurrent use); use Clone for parallel streams.
//
// Filters can be added after compilation with AddQueries: following the
// layering approach sketched in the paper's conclusion, new filters form a
// small additional machine run in lockstep with the base machine, so the
// warmed-up base is not discarded. Consolidate merges all layers back into
// one machine.
type Engine struct {
	queries []string
	filters []*xpath.Filter
	cfg     Config
	// layers[i] filters report oids offset by layerOff[i]. Layer 0 is
	// the base machine.
	layers   []*core.Machine
	layerOff []int
	removed  []bool

	// Runtime observability: stream bytes and per-document filter
	// latency. Atomic/lock-free so Stats can be scraped while a stream is
	// being filtered.
	bytes atomic.Int64
	lat   obs.Histogram

	// Reusable byte-level scanner and event fan-out for FilterBytes; kept
	// on the engine so their buffers stay warm across documents.
	bscan sax.ByteScanner
	drv   byteDriver
}

// Compile parses and compiles a workload of XPath filters. The returned
// engine reports matches as indexes into the queries slice.
func Compile(queries []string, cfg Config) (*Engine, error) {
	filters, err := parseQueries(queries, 0)
	if err != nil {
		return nil, err
	}
	e := &Engine{queries: append([]string(nil), queries...), filters: filters, cfg: cfg}
	m, err := e.buildMachine(filters)
	if err != nil {
		return nil, err
	}
	e.layers = []*core.Machine{m}
	e.layerOff = []int{0}
	e.removed = make([]bool, len(filters))
	return e, nil
}

func parseQueries(queries []string, base int) ([]*xpath.Filter, error) {
	filters := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		f, err := xpath.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", base+i, err)
		}
		filters[i] = f
	}
	return filters, nil
}

// buildMachine compiles a filter slice into one machine under the engine's
// configuration.
func (e *Engine) buildMachine(filters []*xpath.Filter) (*core.Machine, error) {
	a, err := afa.Compile(filters)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		TopDown:            e.cfg.TopDownPruning,
		Early:              e.cfg.EarlyNotification,
		PrecomputeValues:   !e.cfg.DisablePrecompute,
		StrictMixedContent: e.cfg.StrictMixedContent,
		MaxStates:          e.cfg.MaxStates,
	}
	if e.cfg.OrderOptimization {
		if e.cfg.DTD == nil {
			return nil, fmt.Errorf("xpushstream: OrderOptimization requires a DTD")
		}
		opts.Order = e.cfg.DTD.d.SiblingOrder()
	}
	m := core.New(a, opts)
	if e.cfg.Training {
		if e.cfg.DTD == nil {
			return nil, fmt.Errorf("xpushstream: Training requires a DTD")
		}
		data := workload.TrainingData(filters, e.cfg.DTD.d)
		if err := m.Train(data); err != nil {
			return nil, fmt.Errorf("xpushstream: training failed: %w", err)
		}
	}
	return m, nil
}

// AddQueries inserts filters into a live engine without discarding the
// lazily built state of the existing machine (the insertion path of the
// paper's Sec. 8): the new filters compile into an additional small machine
// that runs in lockstep with the previous layers. The new filters' indexes
// start at the previous NumQueries. Engines with many accumulated layers
// slow down linearly in the layer count; call Consolidate to merge them.
func (e *Engine) AddQueries(queries []string) error {
	if len(queries) == 0 {
		return nil
	}
	filters, err := parseQueries(queries, len(e.queries))
	if err != nil {
		return err
	}
	m, err := e.buildMachine(filters)
	if err != nil {
		return err
	}
	e.layerOff = append(e.layerOff, len(e.queries))
	e.layers = append(e.layers, m)
	e.queries = append(e.queries, queries...)
	e.filters = append(e.filters, filters...)
	e.removed = append(e.removed, make([]bool, len(queries))...)
	return nil
}

// RemoveQuery stops reporting a filter. Indexes of other filters are
// unchanged; the filter's states are physically removed at the next
// Consolidate.
func (e *Engine) RemoveQuery(i int) error {
	if i < 0 || i >= len(e.removed) {
		return fmt.Errorf("xpushstream: no query %d", i)
	}
	e.removed[i] = true
	return nil
}

// NumLayers reports how many machines the engine currently runs per event.
func (e *Engine) NumLayers() int { return len(e.layers) }

// Consolidate recompiles all layers (minus removed filters) into a single
// fresh machine — the paper's "brute force" update path, applied on the
// operator's schedule rather than per insertion. Filter indexes are
// compacted; the mapping from old to new indexes is returned (-1 for
// removed filters).
func (e *Engine) Consolidate() ([]int, error) {
	mapping := make([]int, len(e.filters))
	var queries []string
	var filters []*xpath.Filter
	for i := range e.filters {
		if e.removed[i] {
			mapping[i] = -1
			continue
		}
		mapping[i] = len(filters)
		queries = append(queries, e.queries[i])
		filters = append(filters, e.filters[i])
	}
	m, err := e.buildMachine(filters)
	if err != nil {
		return nil, err
	}
	e.queries = queries
	e.filters = filters
	e.layers = []*core.Machine{m}
	e.layerOff = []int{0}
	e.removed = make([]bool, len(filters))
	return mapping, nil
}

// Clone returns an independent engine over the same workload and
// configuration, for filtering a second stream in parallel.
func (e *Engine) Clone() (*Engine, error) {
	queries := append([]string(nil), e.queries...)
	c, err := Compile(queries, e.cfg)
	if err != nil {
		return nil, err
	}
	copy(c.removed, e.removed)
	return c, nil
}

// NumQueries returns the workload size.
func (e *Engine) NumQueries() int { return len(e.filters) }

// Query returns the i-th filter's source text.
func (e *Engine) Query(i int) string { return e.queries[i] }

// FilterDocument processes one XML document and returns the sorted indexes
// of the filters that match it.
func (e *Engine) FilterDocument(doc []byte) ([]int, error) {
	var out []int
	var n int
	err := e.FilterBytes(doc, func(matches []int) {
		n++
		out = append(out[:0], matches...)
	})
	if err != nil {
		return nil, err
	}
	if n != 1 {
		return nil, errExpectOneDocument(n)
	}
	return out, nil
}

func errExpectOneDocument(n int) error {
	return fmt.Errorf("xpushstream: FilterDocument expects exactly one document, got %d", n)
}

// FilterStream processes a stream of concatenated XML documents, invoking
// onDocument with the matching filter indexes after each document. The
// matches slice is reused between calls; copy it to retain it.
func (e *Engine) FilterStream(r io.Reader, onDocument func(matches []int)) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return e.FilterBytes(data, onDocument)
}

// FilterStreaming processes a possibly unbounded stream of concatenated XML
// documents with memory bounded by the largest single document (plus the
// machine's state tables, which MaxStates can cap): documents are split off
// the reader incrementally instead of buffering the whole stream. This is
// the deployment mode for long-running brokers.
func (e *Engine) FilterStreaming(r io.Reader, onDocument func(matches []int)) error {
	return e.FilterStreamingLimit(r, 0, onDocument)
}

// FilterStreamingLimit is FilterStreaming with an explicit per-document
// size bound, wired to the stream splitter (sax.Splitter.MaxDocBytes): a
// document larger than maxDocBytes fails the stream with a clean parse
// error instead of buffering without bound. 0 selects the 64 MiB default.
func (e *Engine) FilterStreamingLimit(r io.Reader, maxDocBytes int, onDocument func(matches []int)) error {
	return sax.StreamDocumentsLimit(r, maxDocBytes, func(doc []byte) error {
		return e.FilterBytes(doc, onDocument)
	})
}

// byteDriver fans the byte-level SAX events of a stream to every machine
// layer and emits the combined match set at each document boundary. It is
// the zero-copy counterpart of the former per-Event dispatch loop: element
// and attribute names flow from the input buffer to the machines' symbol
// interner without a string allocation per event.
type byteDriver struct {
	e          *Engine
	onDocument func(matches []int)
	scratch    []int
	docStart   time.Time

	// Tracing state, set only by FilterBytesTraced for sampled documents.
	// The common untraced case pays exactly one nil check per event method;
	// the traced path times each layer's event handling into layerNS and
	// synthesizes per-layer child spans at the document boundary (see
	// tracing.go).
	tc       *trace.Ctx
	tcParent trace.SpanID
	tcSpan   trace.SpanID
	layerNS  []int64
	ctrBase  [4]int64 // bstates, flushes, matches, events at doc start
}

func (d *byteDriver) StartDocument() {
	d.docStart = time.Now()
	if d.tc != nil {
		d.traceStartDocument()
	}
	for _, m := range d.e.layers {
		m.StartDocument()
	}
}

func (d *byteDriver) StartElementBytes(name []byte) {
	if d.tc == nil {
		for _, m := range d.e.layers {
			m.StartElementBytes(name)
		}
		return
	}
	for li, m := range d.e.layers {
		t0 := time.Now()
		m.StartElementBytes(name)
		d.layerNS[li] += time.Since(t0).Nanoseconds()
	}
}

func (d *byteDriver) TextBytes(data []byte) {
	if d.tc == nil {
		for _, m := range d.e.layers {
			m.TextBytes(data)
		}
		return
	}
	for li, m := range d.e.layers {
		t0 := time.Now()
		m.TextBytes(data)
		d.layerNS[li] += time.Since(t0).Nanoseconds()
	}
}

func (d *byteDriver) EndElementBytes(name []byte) {
	if d.tc == nil {
		for _, m := range d.e.layers {
			m.EndElementBytes(name)
		}
		return
	}
	for li, m := range d.e.layers {
		t0 := time.Now()
		m.EndElementBytes(name)
		d.layerNS[li] += time.Since(t0).Nanoseconds()
	}
}

func (d *byteDriver) EndDocument() {
	for _, m := range d.e.layers {
		m.EndDocument()
	}
	d.e.lat.Observe(time.Since(d.docStart).Seconds())
	d.scratch = d.scratch[:0]
	for li, m := range d.e.layers {
		off := d.e.layerOff[li]
		for _, o := range m.Results() {
			idx := off + int(o)
			if !d.e.removed[idx] {
				d.scratch = append(d.scratch, idx)
			}
		}
	}
	sort.Ints(d.scratch)
	if d.tc != nil {
		d.traceEndDocument(len(d.scratch))
	}
	d.onDocument(d.scratch)
}

// FilterBytes is FilterStream over a byte slice. All layers run in lockstep
// off a single parse of the stream.
func (e *Engine) FilterBytes(data []byte, onDocument func(matches []int)) error {
	e.bytes.Add(int64(len(data)))
	e.drv.e = e
	e.drv.onDocument = onDocument
	e.drv.tc = nil
	err := e.bscan.Parse(data, &e.drv)
	e.drv.onDocument = nil
	if err != nil {
		return err
	}
	for _, m := range e.layers {
		if err := m.Err(); err != nil {
			return err
		}
	}
	return nil
}

// filterParsedDocument drives the pre-parsed events of exactly one document
// through all layers and returns the global match indexes. It lets the
// sharded engine parse each document once instead of once per shard.
func (e *Engine) filterParsedDocument(events []sax.Event) ([]int, error) {
	start := time.Now()
	for _, m := range e.layers {
		sax.Drive(events, m)
	}
	e.lat.Observe(time.Since(start).Seconds())
	var out []int
	for li, m := range e.layers {
		if err := m.Err(); err != nil {
			return nil, err
		}
		off := e.layerOff[li]
		for _, o := range m.Results() {
			idx := off + int(o)
			if !e.removed[idx] {
				out = append(out, idx)
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

// PrecomputeEager materialises every accessible machine state ahead of any
// input (the eager construction of Sec. 3.2 of the paper). Afterwards,
// streams over the workload's alphabet run entirely on cache hits. The
// worst case is exponential in the workload's predicate count — the reason
// the machine is lazy by default — so maxStates bounds the exploration
// (<= 0 selects a ~1M-state default); exceeding it returns an error and
// leaves the engine valid, partially warmed. Requires the basic machine
// (no TopDownPruning/EarlyNotification).
func (e *Engine) PrecomputeEager(maxStates int) (states int, err error) {
	total := 0
	for _, m := range e.layers {
		n, err := m.PrecomputeEager(maxStates)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Train runs all layers over warm-up data: states created are kept, and
// runtime counters are reset afterwards (Sec. 5, "Training the XPush
// Machine"). Use it with recorded traffic, or rely on Config.Training for
// synthetic training data.
func (e *Engine) Train(data []byte) error {
	for _, m := range e.layers {
		if err := m.Train(data); err != nil {
			return err
		}
	}
	return nil
}

// TrainingData generates the synthetic training documents for this
// workload (requires a DTD in the configuration).
func (e *Engine) TrainingData() ([]byte, error) {
	if e.cfg.DTD == nil {
		return nil, fmt.Errorf("xpushstream: TrainingData requires a DTD")
	}
	return workload.TrainingData(e.filters, e.cfg.DTD.d), nil
}

// WriteSnapshot persists the engine's lazily built (or trained) machine
// state, so a restarted broker can resume warm instead of re-learning its
// states from traffic. The snapshot is bound to the exact workload and
// configuration; load it with ReadSnapshot on an engine compiled from the
// same queries and Config.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(e.layers)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Each machine snapshot is length-prefixed: the machine reader buffers
	// internally and would otherwise consume bytes belonging to the next
	// layer.
	var buf bytes.Buffer
	for _, m := range e.layers {
		buf.Reset()
		if err := m.WriteSnapshot(&buf); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(hdr[:], uint64(buf.Len()))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot restores machine state persisted by WriteSnapshot into an
// engine with the same queries, layer structure, and configuration.
func (e *Engine) ReadSnapshot(r io.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if n := binary.LittleEndian.Uint64(hdr[:]); n != uint64(len(e.layers)) {
		return fmt.Errorf("xpushstream: snapshot has %d layers, engine has %d (Consolidate before snapshotting, or rebuild the same layer structure)", n, len(e.layers))
	}
	for _, m := range e.layers {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return err
		}
		n := binary.LittleEndian.Uint64(hdr[:])
		if n > 1<<33 {
			return fmt.Errorf("xpushstream: corrupt snapshot (layer of %d bytes)", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return err
		}
		if err := m.ReadSnapshot(bytes.NewReader(data)); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of runtime counters, aggregated over layers
// (documents and events count the stream once; state and lookup counters
// sum across layers).
func (e *Engine) Stats() Stats {
	var out Stats
	var sizeSum float64
	for li, m := range e.layers {
		s := m.Stats()
		out.States += s.BStates
		out.TopDownStates += s.TStates
		sizeSum += s.AvgStateSize() * float64(s.BStates)
		out.Lookups += s.Lookups
		out.Hits += s.Hits
		out.Matches += s.Matches
		out.MixedContentEvents += s.MixedContentEvents
		out.Flushes += s.Flushes
		out.WindowLookups += s.WindowLookups
		out.WindowHits += s.WindowHits
		out.WindowStatesAdded += s.WindowStatesAdded
		if li == 0 {
			out.Documents = s.Docs
			out.Events = s.Events
			out.WindowDocuments = s.WindowDocs
		}
	}
	out.Bytes = e.bytes.Load()
	out.FilterLatency = e.lat.Snapshot()
	finishStats(&out, sizeSum)
	return out
}

// finishStats computes the derived ratio fields from the summed counters.
func finishStats(s *Stats, stateSizeSum float64) {
	if s.States > 0 {
		s.AvgStateSize = stateSizeSum / float64(s.States)
	}
	if s.Lookups > 0 {
		s.HitRatio = float64(s.Hits) / float64(s.Lookups)
	}
	if s.WindowLookups > 0 {
		s.WindowHitRatio = float64(s.WindowHits) / float64(s.WindowLookups)
	}
}

// WorkloadReport summarises the pairwise state relationships of Theorem 6.1
// (Sec. 6): subsumptions and inconsistencies between the workload's
// automaton states bound the machine's accessible state count; large
// independent degrees signal workloads that may create many states.
type WorkloadReport struct {
	States               int
	SubsumptionPairs     int
	EquivalentPairs      int
	InconsistentPairs    int
	IndependentPairs     int
	MaxIndependentDegree int
	TotalAtomicPreds     int
}

// AnalyzeWorkload runs the Theorem 6.1 pairwise analysis. It is quadratic
// in the number of automaton states — a diagnostics tool for workload
// authoring, not a hot path.
func (e *Engine) AnalyzeWorkload() (WorkloadReport, error) {
	a, err := afa.Compile(e.filters)
	if err != nil {
		return WorkloadReport{}, err
	}
	r := a.Analyze()
	total := 0
	for _, f := range e.filters {
		total += f.CountAtomicPredicates()
	}
	return WorkloadReport{
		States:               r.States,
		SubsumptionPairs:     r.SubsumptionPairs,
		EquivalentPairs:      r.EquivalentPairs,
		InconsistentPairs:    r.InconsistentPairs,
		IndependentPairs:     r.IndependentPairs,
		MaxIndependentDegree: r.MaxIndependentDegree,
		TotalAtomicPreds:     total,
	}, nil
}

// ValidateQuery parses a single filter, returning a descriptive error when
// it lies outside the supported fragment.
func ValidateQuery(query string) error {
	f, err := xpath.Parse(query)
	if err != nil {
		return err
	}
	_, err = afa.Compile([]*xpath.Filter{f})
	return err
}
