package xpath

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmlval"
)

func TestParseRunningExample(t *testing.T) {
	// P1 and P2 from Example 1.1.
	p1, err := Parse("//a[b/text()=1 and .//a[@c>2]]")
	if err != nil {
		t.Fatalf("P1: %v", err)
	}
	if len(p1.Path.Steps) != 1 {
		t.Fatalf("P1 steps = %d", len(p1.Path.Steps))
	}
	s := p1.Path.Steps[0]
	if s.Axis != Descendant || s.Test != (NodeTest{Kind: Element, Name: "a"}) {
		t.Fatalf("P1 step = %+v", s)
	}
	if len(s.Preds) != 1 {
		t.Fatalf("P1 preds = %d", len(s.Preds))
	}
	and, ok := s.Preds[0].(*And)
	if !ok {
		t.Fatalf("P1 pred not And: %T", s.Preds[0])
	}
	cmp, ok := and.L.(*Cmp)
	if !ok {
		t.Fatalf("P1 left not Cmp: %T", and.L)
	}
	if cmp.Op != xmlval.OpEq || cmp.Const != xmlval.NumberConst(1) {
		t.Errorf("P1 left cmp = %v %v", cmp.Op, cmp.Const)
	}
	if len(cmp.Path.Steps) != 2 || cmp.Path.Steps[0].Test.Name != "b" ||
		cmp.Path.Steps[1].Test.Kind != Text {
		t.Errorf("P1 left path = %v", cmp.Path)
	}
	ex, ok := and.R.(*Exists)
	if !ok {
		t.Fatalf("P1 right not Exists: %T", and.R)
	}
	if len(ex.Path.Steps) != 1 || ex.Path.Steps[0].Axis != Descendant {
		t.Errorf("P1 right path = %v", ex.Path)
	}
	inner := ex.Path.Steps[0]
	if len(inner.Preds) != 1 {
		t.Fatalf("inner preds = %d", len(inner.Preds))
	}
	icmp, ok := inner.Preds[0].(*Cmp)
	if !ok || icmp.Op != xmlval.OpGt || icmp.Const != xmlval.NumberConst(2) {
		t.Errorf("inner pred = %#v", inner.Preds[0])
	}
	if icmp.Path.Steps[0].Test != (NodeTest{Kind: Attribute, Name: "c"}) {
		t.Errorf("inner pred path = %v", icmp.Path)
	}

	p2, err := Parse("//a[@c>2 and b/text()=1]")
	if err != nil {
		t.Fatalf("P2: %v", err)
	}
	if p2.String() != "//a[@c>2 and b/text()=1]" {
		t.Errorf("P2 round trip: %q", p2.String())
	}
}

func TestParseAccepts(t *testing.T) {
	inputs := []string{
		"/a",
		"//a",
		"/a/b/c",
		"/a//b",
		"/*",
		"//*",
		"/a/*/b",
		"/a/@b",
		"/a/@*",
		"/a/text()",
		"/a[b]",
		"/a[@b]",
		"/a[.=1]",
		"/a[. = 'x']",
		"/a[text()=1]",
		"/a[b/text()=1]",
		"/a[b = 1]",
		"/a[b != 1]",
		"/a[b < 1 and c > 2]",
		"/a[b <= 1 or c >= 2]",
		"/a[not(b)]",
		"/a[not(not(b=1))]",
		"/a[(b or c) and d]",
		"/a[b and c and d]",
		"/a[b or c or d]",
		"/a[.//b/text()='x']",
		"/a[./b=1]",
		"/a[b][c]",
		"/a[b[c[d=1]]]",
		"//a[b/text()=1 and .//a[@c>2]]",
		"/a[b=-5]",
		"/a[b=3.25]",
		"/a[b=1e3]",
		`/a[b="quoted string"]`,
		"/a[b='single']",
		"/a[contains(b, 'x')]",
		"/a[starts-with(@c, 'pre')]",
		"/a[contains(b/text(), 'x') and not(starts-with(c, 'y'))]",
		"/text()",
		"//text()",
		"/a[*=1]",
		"/a[@*=1]",
		"/a[b/c/d/e=1]",
		"/and/or[not=1]", // keywords usable as labels in path position
	}
	for _, in := range inputs {
		if _, err := Parse(in); err != nil {
			t.Errorf("Parse(%q) failed: %v", in, err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	inputs := []string{
		"",
		"a",           // must start with / or //
		"/",           // missing node test
		"/a[",         // unterminated predicate
		"/a[]",        // empty predicate
		"/a[b=]",      // missing constant
		"/a[b=)",      // bad constant
		"/a[=1]",      // missing path
		"/a[b!1]",     // bad operator
		"/a[b='x]",    // unterminated string
		"/a/text()/b", // nothing may follow text()
		"/a/@b/c",     // nothing may follow an attribute
		"/a[not b]",   // not requires parens
		"/a[not(b]",   // unbalanced
		"/a[(b]",      // unbalanced paren
		"/a]",         // trailing junk
		"/a[b=1] extra",
		"/a[text()[b]]", // predicates on text()
		"/a[contains(b)]",
		"/a[contains(b, 1)]", // needs string literal
		"/a[b==1]",
		"/@",
		"/a[b=1]]",
	}
	for _, in := range inputs {
		if f, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded: %v", in, f)
		}
	}
}

func TestStringLiteralQuoteEscaping(t *testing.T) {
	// XPath 2.0-style doubled quotes.
	f := MustParse(`/a[b="say ""hi"""]`)
	cmp := f.Path.Steps[0].Preds[0].(*Cmp)
	if cmp.Const.Str != `say "hi"` {
		t.Errorf("unescaped = %q", cmp.Const.Str)
	}
	if got := f.String(); got != `/a[b="say ""hi"""]` {
		t.Errorf("printed = %q", got)
	}
	// Single-quoted literal containing double quotes.
	g := MustParse(`/a[b='"x"']`)
	if g.Path.Steps[0].Preds[0].(*Cmp).Const.Str != `"x"` {
		t.Error("single-quoted literal mangled")
	}
	h, err := Parse(g.String())
	if err != nil || !g.Equal(h) {
		t.Errorf("round trip failed: %q -> %v", g.String(), err)
	}
	// Literal with both quote kinds.
	both := MustParse(`/a[b='mix "d" q']`)
	again, err := Parse(both.String())
	if err != nil || !both.Equal(again) {
		t.Errorf("mixed quotes round trip: %q -> %v", both.String(), err)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("/a[b=]")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos == 0 || !strings.Contains(se.Error(), "offset") {
		t.Errorf("unhelpful error: %v", se)
	}
}

func TestPrinterCanonical(t *testing.T) {
	cases := map[string]string{
		"/a":                         "/a",
		"//a [ b ]":                  "//a[b]",
		"/a[b/text() = 1]":           "/a[b/text()=1]",
		"/a[b and (c or d)]":         "/a[b and (c or d)]",
		"/a[(b and c) or d]":         "/a[b and c or d]",
		"/a[not(b = 'x')]":           `/a[not(b="x")]`,
		"/a[./b=1]":                  "/a[b=1]",
		"/a[.//b=1]":                 "/a[.//b=1]",
		"/a[.=1]":                    "/a[.=1]",
		"/a[contains(b, 'x')]":       `/a[contains(b, "x")]`,
		"/a[starts-with(b, 'x')]":    `/a[starts-with(b, "x")]`,
		"/a/@c":                      "/a/@c",
		"/a/@*":                      "/a/@*",
		"//*[. = 2]":                 "//*[.=2]",
		"/a[b[c=1]/d[e=2]/text()=3]": "/a[b[c=1]/d[e=2]/text()=3]",
	}
	for in, want := range cases {
		f, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got := f.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("//a[b/text()=1 and .//a[@c>2]]")
	b := MustParse("//a[ b/text() = 1 and .//a[@c > 2] ]")
	c := MustParse("//a[.//a[@c>2] and b/text()=1]")
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) {
		t.Error("a should differ from c (operand order)")
	}
}

func TestCountAtomicPredicates(t *testing.T) {
	cases := map[string]int{
		"/a":                             1, // implicit true predicate
		"/a[b=1]":                        1,
		"/a[b=1 and c=2]":                2,
		"/a[b=1 or not(c=2)]":            2,
		"/a[b[c=1 and d=2]]":             2, // exists(b) subsumed by nested comparisons
		"//a[b/text()=1 and .//a[@c>2]]": 2,
		"/a[b=1]/c[d=2]":                 2,
	}
	for in, want := range cases {
		f := MustParse(in)
		if got := f.CountAtomicPredicates(); got != want {
			t.Errorf("CountAtomicPredicates(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestHasDescendant(t *testing.T) {
	if MustParse("/a/b[c=1]").HasDescendant() {
		t.Error("no // expected")
	}
	for _, q := range []string{"//a", "/a//b", "/a[.//b=1]", "/a[b[c//d]]"} {
		if !MustParse(q).HasDescendant() {
			t.Errorf("%s should report //", q)
		}
	}
}

// TestRoundTripProperty: printing a random filter and re-parsing yields a
// structurally equal filter.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		f := randomFilter(r)
		s := f.String()
		g, err := Parse(s)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", s, err)
		}
		if !f.Equal(g) {
			t.Fatalf("round trip mismatch:\n  printed  %q\n  reparsed %q", s, g.String())
		}
	}
}

// randomFilter builds a random AST within the fragment.
func randomFilter(r *rand.Rand) *Filter {
	return &Filter{Path: randomPath(r, 2, true)}
}

var names = []string{"a", "b", "c", "d", "item", "price"}

func randomPath(r *rand.Rand, depth int, top bool) *Path {
	n := 1 + r.Intn(3)
	p := &Path{}
	for i := 0; i < n; i++ {
		st := Step{Axis: Child}
		if r.Intn(3) == 0 {
			st.Axis = Descendant
		}
		last := i == n-1
		switch k := r.Intn(10); {
		case k < 6:
			st.Test = NodeTest{Kind: Element, Name: names[r.Intn(len(names))]}
		case k < 7:
			st.Test = NodeTest{Kind: AnyElement}
		case k < 8 && last:
			st.Test = NodeTest{Kind: Attribute, Name: names[r.Intn(len(names))]}
		case k < 9 && last && !top:
			st.Test = NodeTest{Kind: Text}
		default:
			st.Test = NodeTest{Kind: Element, Name: names[r.Intn(len(names))]}
		}
		if depth > 0 && st.Test.Kind == Element && r.Intn(2) == 0 {
			np := 1
			if r.Intn(4) == 0 {
				np = 2
			}
			for j := 0; j < np; j++ {
				st.Preds = append(st.Preds, randomExpr(r, depth-1))
			}
		}
		p.Steps = append(p.Steps, st)
	}
	// A relative path inside a predicate may be a bare self step.
	if !top && r.Intn(12) == 0 {
		return &Path{Steps: []Step{{Axis: Child, Test: NodeTest{Kind: Self}}}}
	}
	return p
}

func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) > 0 {
		// Atomic.
		path := randomPath(r, depth, false)
		if r.Intn(2) == 0 {
			return &Exists{Path: path}
		}
		ops := []xmlval.Op{xmlval.OpEq, xmlval.OpNe, xmlval.OpLt, xmlval.OpLe, xmlval.OpGt, xmlval.OpGe}
		var c xmlval.Const
		if r.Intn(2) == 0 {
			c = xmlval.NumberConst(float64(r.Intn(100)))
		} else {
			c = xmlval.StringConst(names[r.Intn(len(names))])
		}
		return &Cmp{Path: path, Op: ops[r.Intn(len(ops))], Const: c}
	}
	switch r.Intn(3) {
	case 0:
		return &And{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return &Or{L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	default:
		return &Not{X: randomExpr(r, depth-1)}
	}
}
