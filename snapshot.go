package xpushstream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Workload snapshots. Engine.WriteSnapshot/ReadSnapshot persist only the
// machine state and require the caller to rebuild an engine with the exact
// same queries, layer structure, and configuration first — fine for a
// process checkpointing itself, awkward for a broker restarting from disk.
// A workload snapshot is self-describing: it records the filter texts, the
// layer partition, and the removed mask alongside the machine state, so
// OpenWorkloadSnapshot can reconstruct the whole engine (warm) from the
// file alone plus the Config.

// workloadSnapshotMagic identifies the self-describing snapshot format.
// The trailing byte is a format version.
var workloadSnapshotMagic = [8]byte{'X', 'P', 'W', 'S', 'N', 'A', 'P', '1'}

// Sanity bounds for reading untrusted snapshot files: counts and string
// lengths beyond these indicate corruption, not a real workload.
const (
	maxSnapshotQueries  = 1 << 24 // 16M filters
	maxSnapshotQueryLen = 1 << 20 // 1 MiB per filter text
)

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteWorkloadSnapshot persists the engine's queries, layer structure,
// removed mask, and lazily built (or trained) machine state. Restore with
// OpenWorkloadSnapshot under the same Config. The engine must not be
// filtering while the snapshot is written.
func (e *Engine) WriteWorkloadSnapshot(w io.Writer) error {
	if _, err := w.Write(workloadSnapshotMagic[:]); err != nil {
		return err
	}
	if err := writeU64(w, uint64(len(e.layers))); err != nil {
		return err
	}
	for li := range e.layers {
		lo := e.layerOff[li]
		hi := len(e.queries)
		if li+1 < len(e.layerOff) {
			hi = e.layerOff[li+1]
		}
		if err := writeU64(w, uint64(hi-lo)); err != nil {
			return err
		}
		for _, q := range e.queries[lo:hi] {
			if err := writeU64(w, uint64(len(q))); err != nil {
				return err
			}
			if _, err := io.WriteString(w, q); err != nil {
				return err
			}
		}
	}
	mask := make([]byte, len(e.removed))
	for i, r := range e.removed {
		if r {
			mask[i] = 1
		}
	}
	if _, err := w.Write(mask); err != nil {
		return err
	}
	return e.WriteSnapshot(w)
}

// OpenWorkloadSnapshot reads a snapshot written by WriteWorkloadSnapshot
// and returns a warm engine: the recorded workload is recompiled layer by
// layer (Compile for the base, AddQueries per insertion layer, so the layer
// structure matches the snapshot exactly) under cfg, and the persisted
// machine state is restored into it. cfg must equal the configuration the
// snapshot was taken under.
func OpenWorkloadSnapshot(r io.Reader, cfg Config) (*Engine, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("xpushstream: reading snapshot header: %w", err)
	}
	if magic != workloadSnapshotMagic {
		return nil, fmt.Errorf("xpushstream: not a workload snapshot (bad magic %q)", magic[:])
	}
	nLayers, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if nLayers == 0 || nLayers > maxSnapshotQueries {
		return nil, fmt.Errorf("xpushstream: snapshot has implausible layer count %d", nLayers)
	}
	layers := make([][]string, nLayers)
	total := 0
	for li := range layers {
		n, err := readU64(r)
		if err != nil {
			return nil, err
		}
		if n > maxSnapshotQueries || total+int(n) > maxSnapshotQueries {
			return nil, fmt.Errorf("xpushstream: snapshot has implausible query count")
		}
		layers[li] = make([]string, n)
		for qi := range layers[li] {
			l, err := readU64(r)
			if err != nil {
				return nil, err
			}
			if l > maxSnapshotQueryLen {
				return nil, fmt.Errorf("xpushstream: snapshot query longer than %d bytes", maxSnapshotQueryLen)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			layers[li][qi] = string(buf)
		}
		total += int(n)
	}
	mask := make([]byte, total)
	if _, err := io.ReadFull(r, mask); err != nil {
		return nil, err
	}
	e, err := Compile(layers[0], cfg)
	if err != nil {
		return nil, fmt.Errorf("xpushstream: recompiling snapshot workload: %w", err)
	}
	for _, lq := range layers[1:] {
		if err := e.AddQueries(lq); err != nil {
			return nil, fmt.Errorf("xpushstream: recompiling snapshot layer: %w", err)
		}
	}
	for i, m := range mask {
		if m != 0 {
			e.removed[i] = true
		}
	}
	if err := e.ReadSnapshot(r); err != nil {
		return nil, fmt.Errorf("xpushstream: restoring machine state: %w", err)
	}
	return e, nil
}

// WriteFileAtomic writes a file crash-atomically: the content goes to a
// temporary file in the target's directory, is flushed and fsynced, and only
// then renamed over path — a crash (or a write error) at any point leaves
// either the previous file or nothing, never a truncated half-write. The
// directory entry is fsynced best-effort so the rename itself survives a
// crash.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SaveWorkloadSnapshot writes a workload snapshot to path crash-atomically
// (see WriteFileAtomic). The engine must not be filtering during the call.
func (e *Engine) SaveWorkloadSnapshot(path string) error {
	return WriteFileAtomic(path, e.WriteWorkloadSnapshot)
}
