// Package afa implements the Alternating Finite Automata of Sec. 3.2 (step 1
// of the XPush compilation): each XPath filter becomes an AFA whose states
// are labeled AND, OR, or NOT, with ε-transitions for boolean structure and
// label transitions for navigation. When stripped of the AND/OR/NOT labels
// the AFAs are precisely the NFAs used by earlier XML filtering systems.
//
// The package also provides the two primitives the XPush machine needs at
// runtime: δ⁻¹ (backward transition over a label) and eval (the logical
// closure adding implied AND/OR/NOT states, stratified to handle nested
// not(...) bottom-up, as the paper requires for cases like not(not(Q))).
package afa

import (
	"fmt"
	"slices"

	"repro/internal/xmlval"
)

// StateKind labels an AFA state, per Sec. 3.2.
type StateKind uint8

const (
	// OR states match a node if some transition matches (or the terminal
	// predicate holds on a data value).
	OR StateKind = iota
	// AND states have only ε transitions and match if all successors do.
	AND
	// NOT states have a single ε transition and match if it does not.
	NOT
)

func (k StateKind) String() string {
	switch k {
	case OR:
		return "OR"
	case AND:
		return "AND"
	case NOT:
		return "NOT"
	default:
		return "kind(?)"
	}
}

// TerminalKind classifies terminal states.
type TerminalKind uint8

const (
	// NonTerminal states are inner states.
	NonTerminal TerminalKind = iota
	// LeafTerminal states carry an atomic predicate π_s(v) on data
	// values; they are activated by tvalue.
	LeafTerminal
	// TrueTerminal states match any element or attribute node: the
	// implicit true predicate of purely structural (sub)filters. They are
	// injected into every eval at endElement time rather than stored.
	TrueTerminal
)

// edge is a labeled transition.
type edge struct {
	sym int32
	to  int32
}

// state is one AFA state.
type state struct {
	kind     StateKind
	terminal TerminalKind
	op       xmlval.Op
	konst    xmlval.Const
	query    int32
	notRank  int16

	eps   []int32 // ε successors (AND/OR/NOT structure)
	edges []edge  // label transitions (navigation)
	back  []edge  // incoming label transitions (sym, source)

	epsParents []int32 // states with an ε edge to this one

	// prec lists the AND-siblings that must precede this state under the
	// order optimization (Sec. 5); nil when the optimization is off or
	// no order is known.
	prec []int32
}

// QueryInfo describes one compiled filter.
type QueryInfo struct {
	// Initial is the filter's initial state; taccept reports the filter
	// when its Initial state is in the final bottom-up state.
	Initial int32
	// Early is the first branching state, used by the early-notification
	// optimization: once Early matches (under top-down pruning) the
	// filter is known to match. It is -1 when the filter cannot use
	// early notification soundly (its first branching state can fire
	// through a not(...) branch without navigation gating).
	Early int32
	// HasDescendant reports whether the filter uses //.
	HasDescendant bool
	// Source is the filter's XPath text.
	Source string
}

// AFA is the union of the per-filter automata over a shared symbol table.
type AFA struct {
	Syms    *Symbols
	Queries []QueryInfo

	states []state

	// trueTerminals is the sorted list of TrueTerminal states, injected
	// into eval at every endElement.
	trueTerminals []int32

	maxNotRank  int16
	notsByRank  [][]int32
	leafCount   int
	initials    []int32 // sorted initial states (the top-down start set)
	anyDescends bool
}

// NumStates returns the total number of AFA states across all filters.
func (a *AFA) NumStates() int { return len(a.states) }

// NumLeafTerminals returns the number of atomic value predicates.
func (a *AFA) NumLeafTerminals() int { return a.leafCount }

// Kind returns a state's kind.
func (a *AFA) Kind(s int32) StateKind { return a.states[s].kind }

// Terminal returns a state's terminal classification.
func (a *AFA) Terminal(s int32) TerminalKind { return a.states[s].terminal }

// Predicate returns the atomic predicate of a LeafTerminal.
func (a *AFA) Predicate(s int32) (xmlval.Op, xmlval.Const) {
	return a.states[s].op, a.states[s].konst
}

// QueryOf returns the filter index owning a state.
func (a *AFA) QueryOf(s int32) int32 { return a.states[s].query }

// TrueTerminals returns the sorted TrueTerminal states. Callers must not
// modify the slice.
func (a *AFA) TrueTerminals() []int32 { return a.trueTerminals }

// Initials returns the sorted initial states of all filters (the top-down
// start state q0^t = {s1, ..., sn} of the top-down pruning optimization).
func (a *AFA) Initials() []int32 { return a.initials }

// HasDescendant reports whether any filter uses //.
func (a *AFA) HasDescendant() bool { return a.anyDescends }

// EachLeafTerminal calls fn for every LeafTerminal with its predicate; the
// XPush machine uses this to build the atomic predicate index.
func (a *AFA) EachLeafTerminal(fn func(s int32, op xmlval.Op, c xmlval.Const)) {
	for i := range a.states {
		if a.states[i].terminal == LeafTerminal {
			fn(int32(i), a.states[i].op, a.states[i].konst)
		}
	}
}

// Eps returns a state's ε successors. Callers must not modify the slice.
func (a *AFA) Eps(s int32) []int32 { return a.states[s].eps }

// Prec returns the must-precede siblings of a state under the order
// optimization (nil when unordered).
func (a *AFA) Prec(s int32) []int32 { return a.states[s].prec }

// Delta appends δ(s, in) — the targets of s's transitions firing on the
// concrete input symbol in — to out.
func (a *AFA) Delta(s int32, in int32, out []int32) []int32 {
	for _, e := range a.states[s].edges {
		if a.Syms.Matches(e.sym, in) {
			out = append(out, e.to)
		}
	}
	return out
}

// DeltaInv computes δ⁻¹(q, in) = { s' | δ(s', in) ∩ q ≠ ∅ } for a sorted
// state set q, appending to out. The result is sorted and deduplicated.
// Back-pointers keep this linear in the number of incoming edges, as the
// paper's implementation notes prescribe (Sec. 4).
func (a *AFA) DeltaInv(q []int32, in int32, out []int32) []int32 {
	start := len(out)
	for _, s := range q {
		for _, e := range a.states[s].back {
			if a.Syms.Matches(e.sym, in) {
				out = append(out, e.to)
			}
		}
	}
	tail := out[start:]
	slices.Sort(tail)
	return out[:start+len(dedup(tail))]
}

func dedup(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// Evaluator computes eval(q) — the closure of a state set under logical
// implication: an AND state joins when all its ε successors are present, an
// OR state when some successor is present, and a NOT state (processed in
// rank order, innermost first) when its successor is absent. One Evaluator
// serves one goroutine; it reuses epoch-marked scratch space so eval does
// not allocate per call in the steady state.
type Evaluator struct {
	a     *AFA
	mark  []uint32
	epoch uint32
	out   []int32
}

// NewEvaluator returns an Evaluator for the AFA.
func (a *AFA) NewEvaluator() *Evaluator {
	return &Evaluator{a: a, mark: make([]uint32, len(a.states))}
}

func (ev *Evaluator) has(s int32) bool { return ev.mark[s] == ev.epoch }

func (ev *Evaluator) add(s int32) bool {
	if ev.mark[s] == ev.epoch {
		return false
	}
	ev.mark[s] = ev.epoch
	ev.out = append(ev.out, s)
	return true
}

// Eval returns the closure of q ∪ extra, sorted. The returned slice is valid
// until the next Eval call. extra is the (possibly filtered) true-terminal
// injection.
func (ev *Evaluator) Eval(q []int32, extra []int32) []int32 {
	a := ev.a
	ev.epoch++
	if ev.epoch == 0 { // epoch wrapped: clear marks
		for i := range ev.mark {
			ev.mark[i] = 0
		}
		ev.epoch = 1
	}
	ev.out = ev.out[:0]
	for _, s := range q {
		ev.add(s)
	}
	for _, s := range extra {
		ev.add(s)
	}
	ev.closeAndOr(0)
	// NOT strata, innermost first. After adding the NOTs of one rank the
	// AND/OR closure may cascade before the next rank is decided.
	for r := int16(1); r <= a.maxNotRank; r++ {
		frontier := len(ev.out)
		for _, s := range a.notsByRank[r] {
			succ := a.states[s].eps[0]
			if !ev.has(succ) {
				ev.add(s)
			}
		}
		if len(ev.out) > frontier {
			ev.closeAndOr(frontier)
		}
	}
	slices.Sort(ev.out)
	return ev.out
}

// CloseEps returns the ε-closure close(q) = q ∪ δ(·, ε) applied to fixpoint
// (the close() of the top-down pruning definitions, Sec. 5), sorted. The
// returned slice is valid until the next Eval/CloseEps call.
func (ev *Evaluator) CloseEps(q []int32) []int32 {
	a := ev.a
	ev.epoch++
	if ev.epoch == 0 {
		for i := range ev.mark {
			ev.mark[i] = 0
		}
		ev.epoch = 1
	}
	ev.out = ev.out[:0]
	for _, s := range q {
		ev.add(s)
	}
	for i := 0; i < len(ev.out); i++ {
		for _, t := range a.states[ev.out[i]].eps {
			ev.add(t)
		}
	}
	slices.Sort(ev.out)
	return ev.out
}

// closeAndOr propagates AND/OR implications from states at positions >= from
// in the worklist until fixpoint.
func (ev *Evaluator) closeAndOr(from int) {
	a := ev.a
	for i := from; i < len(ev.out); i++ {
		s := ev.out[i]
		for _, p := range a.states[s].epsParents {
			if ev.has(p) {
				continue
			}
			switch a.states[p].kind {
			case OR:
				ev.add(p)
			case AND:
				all := true
				for _, c := range a.states[p].eps {
					if !ev.has(c) {
						all = false
						break
					}
				}
				if all {
					ev.add(p)
				}
			}
			// NOT parents are handled by rank strata.
		}
	}
}

// String renders a state for debugging.
func (a *AFA) String() string {
	return fmt.Sprintf("AFA{%d queries, %d states, %d leaf predicates}",
		len(a.Queries), len(a.states), a.leafCount)
}

// DumpState renders one state for debugging and tests.
func (a *AFA) DumpState(s int32) string {
	st := &a.states[s]
	out := fmt.Sprintf("%d:%s", s, st.kind)
	switch st.terminal {
	case LeafTerminal:
		out += fmt.Sprintf("[%s%s]", st.op, st.konst)
	case TrueTerminal:
		out += "[true]"
	}
	for _, e := range st.edges {
		out += fmt.Sprintf(" --%s-->%d", a.Syms.Name(e.sym), e.to)
	}
	for _, t := range st.eps {
		out += fmt.Sprintf(" ..%d", t)
	}
	return out
}
