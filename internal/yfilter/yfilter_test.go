package yfilter

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/naive"
	"repro/internal/workload"
	"repro/internal/xpath"
)

func filters(qs ...string) []*xpath.Filter {
	out := make([]*xpath.Filter, len(qs))
	for i, q := range qs {
		out[i] = xpath.MustParse(q)
	}
	return out
}

func TestBasicMatching(t *testing.T) {
	e := NewEngine(filters(
		"/a/b",
		"/a/c",
		"//c",
		"/a/*",
		"/a/@x",
		"/a/text()",
		"/a[b=1]",
		"/a[b=2]",
	))
	got, err := e.FilterDocument([]byte(`<a x="7">hello<b>1</b><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4 5 6]" {
		t.Errorf("matches = %v", got)
	}
}

func TestPrefixSharing(t *testing.T) {
	// 50 queries sharing the prefix /a/b must share trie nodes.
	var qs []string
	for i := 0; i < 50; i++ {
		qs = append(qs, fmt.Sprintf("/a/b/c%d", i))
	}
	e := NewEngine(filters(qs...))
	// root + a + b + 50 leaves = 53.
	if e.NumNodes() != 53 {
		t.Errorf("nodes = %d, want 53", e.NumNodes())
	}
}

func TestDescendantAndWildcard(t *testing.T) {
	e := NewEngine(filters("//b", "/a//c", "/*/b", "//*"))
	got, err := e.FilterDocument([]byte(`<a><b><c/></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3]" {
		t.Errorf("matches = %v", got)
	}
	got, _ = e.FilterDocument([]byte(`<x><y/></x>`))
	if fmt.Sprint(got) != "[3]" {
		t.Errorf("matches = %v", got)
	}
}

func TestDescendantText(t *testing.T) {
	e := NewEngine(filters("/a//text()", "/a/text()"))
	got, _ := e.FilterDocument([]byte(`<a><b>deep</b></a>`))
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("matches = %v", got)
	}
}

// TestDifferentialAgainstNaive compares the engine with the oracle on a
// generated workload over generated data.
func TestDifferentialAgainstNaive(t *testing.T) {
	ds := datagen.ProteinLike()
	fs := workload.Generate(ds, workload.Params{
		Seed: 11, NumQueries: 150, MeanPreds: 2,
		DescendantProb: 0.2, WildcardProb: 0.1, NestedPredProb: 0.2,
		OrProb: 0.2, NotProb: 0.1,
	})
	e := NewEngine(fs)
	oracle := naive.NewEngine(fs)
	gen := datagen.NewGenerator(ds, 12)
	for i := 0; i < 15; i++ {
		doc := gen.GenerateDocument()
		got, err := e.FilterDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.FilterDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("doc %d mismatch: yfilter %v vs oracle %v", i, got, want)
		}
	}
}

func TestMultiDocument(t *testing.T) {
	e := NewEngine(filters("/a", "/b"))
	got, err := e.FilterDocument([]byte(`<a/><b/>`))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("matches = %v", got)
	}
}
