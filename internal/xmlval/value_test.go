package xmlval

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNewNumeric(t *testing.T) {
	cases := []struct {
		in    string
		isNum bool
		num   float64
	}{
		{"1", true, 1},
		{" 42 ", true, 42},
		{"-3.5", true, -3.5},
		{"+7", true, 7},
		{".5", true, 0.5},
		{"1e3", true, 1000},
		{"", false, 0},
		{"abc", false, 0},
		{"12abc", false, 0},
		{"- 1", false, 0},
		{"0x10", false, 0}, // hex not in the paper's domain
	}
	for _, c := range cases {
		v := New(c.in)
		if v.IsNum != c.isNum {
			t.Errorf("New(%q).IsNum = %v, want %v", c.in, v.IsNum, c.isNum)
			continue
		}
		if c.isNum && v.Num != c.num {
			t.Errorf("New(%q).Num = %v, want %v", c.in, v.Num, c.num)
		}
	}
}

func TestTrimmed(t *testing.T) {
	v := New("  hello  ")
	if v.Trimmed() != "hello" {
		t.Errorf("Trimmed = %q", v.Trimmed())
	}
	if v.Text != "  hello  " {
		t.Errorf("Text mangled: %q", v.Text)
	}
}

func TestCompareNumeric(t *testing.T) {
	c := NumberConst(2)
	for _, tc := range []struct {
		text string
		cmp  int
		ok   bool
	}{
		{"1", -1, true},
		{"2", 0, true},
		{"3", 1, true},
		{"2.0", 0, true},
		{"x", 0, false},
	} {
		cmp, ok := Compare(New(tc.text), c)
		if cmp != tc.cmp || ok != tc.ok {
			t.Errorf("Compare(%q, 2) = (%d,%v), want (%d,%v)", tc.text, cmp, ok, tc.cmp, tc.ok)
		}
	}
}

func TestCompareString(t *testing.T) {
	c := StringConst("m")
	if cmp, ok := Compare(New("a"), c); !ok || cmp >= 0 {
		t.Errorf("a vs m: %d %v", cmp, ok)
	}
	if cmp, ok := Compare(New("m"), c); !ok || cmp != 0 {
		t.Errorf("m vs m: %d %v", cmp, ok)
	}
	if cmp, ok := Compare(New("z"), c); !ok || cmp <= 0 {
		t.Errorf("z vs m: %d %v", cmp, ok)
	}
}

func TestEvalOps(t *testing.T) {
	two := NumberConst(2)
	cases := []struct {
		op   Op
		text string
		want bool
	}{
		{OpEq, "2", true},
		{OpEq, "3", false},
		{OpNe, "3", true},
		{OpNe, "2", false},
		{OpLt, "1", true},
		{OpLt, "2", false},
		{OpLe, "2", true},
		{OpGt, "3", true},
		{OpGt, "2", false},
		{OpGe, "2", true},
		{OpExists, "anything", true},
		// Non-numeric text against numeric constant: nothing holds,
		// != included (see Eval's incomparability rule).
		{OpEq, "abc", false},
		{OpNe, "abc", false},
		{OpLt, "abc", false},
		{OpGt, "abc", false},
	}
	for _, tc := range cases {
		if got := Eval(tc.op, New(tc.text), two); got != tc.want {
			t.Errorf("Eval(%v, %q, 2) = %v, want %v", tc.op, tc.text, got, tc.want)
		}
	}
}

func TestEvalStringOps(t *testing.T) {
	if !Eval(OpContains, New("hello world"), StringConst("lo wo")) {
		t.Error("contains failed")
	}
	if Eval(OpContains, New("hello"), StringConst("xyz")) {
		t.Error("contains false positive")
	}
	if !Eval(OpStartsWith, New("  hello"), StringConst("he")) {
		t.Error("starts-with should apply to trimmed text")
	}
	if Eval(OpStartsWith, New("hello"), StringConst("el")) {
		t.Error("starts-with false positive")
	}
}

func TestNegate(t *testing.T) {
	pairs := [][2]Op{{OpEq, OpNe}, {OpLt, OpGe}, {OpGt, OpLe}}
	for _, p := range pairs {
		if n, ok := p[0].Negate(); !ok || n != p[1] {
			t.Errorf("Negate(%v) = %v,%v", p[0], n, ok)
		}
		if n, ok := p[1].Negate(); !ok || n != p[0] {
			t.Errorf("Negate(%v) = %v,%v", p[1], n, ok)
		}
	}
	if _, ok := OpExists.Negate(); ok {
		t.Error("OpExists should not negate")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

// Property: for numeric values, Eval(OpLt) ∨ Eval(OpEq) ∨ Eval(OpGt) is a
// partition — exactly one holds.
func TestTrichotomyProperty(t *testing.T) {
	f := func(a, b int32) bool {
		v := New(strconv.Itoa(int(a)))
		c := NumberConst(float64(b))
		lt := Eval(OpLt, v, c)
		eq := Eval(OpEq, v, c)
		gt := Eval(OpGt, v, c)
		n := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				n++
			}
		}
		return n == 1 &&
			Eval(OpLe, v, c) == (lt || eq) &&
			Eval(OpGe, v, c) == (gt || eq) &&
			Eval(OpNe, v, c) == !eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Op.Negate is an involution on the six relational operators, and
// Eval of the negated op is the logical complement for comparable values.
func TestNegateComplementProperty(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		op := ops[r.Intn(len(ops))]
		v := New(strconv.Itoa(r.Intn(20) - 10))
		c := NumberConst(float64(r.Intn(20) - 10))
		neg, ok := op.Negate()
		if !ok {
			t.Fatalf("negate %v", op)
		}
		if back, _ := neg.Negate(); back != op {
			t.Fatalf("negate not involutive for %v", op)
		}
		if Eval(op, v, c) == Eval(neg, v, c) {
			t.Fatalf("Eval(%v) and Eval(%v) agree on %q", op, neg, v.Text)
		}
	}
}

func TestFromNumber(t *testing.T) {
	v := FromNumber(3.5)
	if !v.IsNum || v.Num != 3.5 || v.Text != "3.5" {
		t.Errorf("FromNumber(3.5) = %+v", v)
	}
}

func TestConstString(t *testing.T) {
	if s := NumberConst(2).String(); s != "2" {
		t.Errorf("NumberConst(2).String() = %q", s)
	}
	if s := StringConst("ab").String(); s != `"ab"` {
		t.Errorf("StringConst.String() = %q", s)
	}
}
