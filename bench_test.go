package xpushstream

// Benchmarks regenerating the paper's evaluation (one per figure; see
// DESIGN.md for the experiment index). Figures sharing a sweep are
// benchmarked through that sweep. The default scale is "smoke" so that
// `go test -bench=.` terminates quickly; set XPUSH_BENCH_SCALE=default or
// =paper for larger runs (cmd/xpushbench is the full harness with table
// output).
//
// Custom metrics reported: states (machine states created), avgsize (AFA
// states per machine state), hitratio, and MB/s where meaningful.

import (
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/afa"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/perquery"
	"repro/internal/sax"
	"repro/internal/workload"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

func benchScale() bench.Scale {
	name := os.Getenv("XPUSH_BENCH_SCALE")
	if name == "" {
		name = "smoke"
	}
	s, ok := bench.Scales[name]
	if !ok {
		panic("unknown XPUSH_BENCH_SCALE " + name)
	}
	return s
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(datagen.ProteinLike(), scale, io.Discard)
		if err := r.Figure(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5a(b *testing.B)  { runFigure(b, "5a") }
func BenchmarkFig5b(b *testing.B)  { runFigure(b, "5b") }
func BenchmarkFig6a(b *testing.B)  { runFigure(b, "6a") }
func BenchmarkFig6b(b *testing.B)  { runFigure(b, "6b") }
func BenchmarkFig7a(b *testing.B)  { runFigure(b, "7a") }
func BenchmarkFig7b(b *testing.B)  { runFigure(b, "7b") }
func BenchmarkFig8(b *testing.B)   { runFigure(b, "8") }
func BenchmarkFig9a(b *testing.B)  { runFigure(b, "9a") }
func BenchmarkFig9b(b *testing.B)  { runFigure(b, "9b") }
func BenchmarkFig10a(b *testing.B) { runFigure(b, "10a") }
func BenchmarkFig10b(b *testing.B) { runFigure(b, "10b") }
func BenchmarkFig11a(b *testing.B) { runFigure(b, "11a") }
func BenchmarkFig11b(b *testing.B) { runFigure(b, "11b") }

// BenchmarkAbstractThroughput measures the abstract's sustained-throughput
// claim: the fully optimized, trained machine streaming data (MB/s).
func BenchmarkAbstractThroughput(b *testing.B) {
	scale := benchScale()
	ds := datagen.ProteinLike()
	for _, mean := range []float64{1, 10.45} {
		n := scale.AbstractQueries
		if mean > 1 {
			n /= 10
		}
		b.Run(fmt.Sprintf("preds=%.2f", mean), func(b *testing.B) {
			filters := workload.Generate(ds, bench.WorkloadParams(42, n, mean))
			data := datagen.NewGenerator(ds, 3).GenerateBytes(scale.DataBytes)
			a, err := afa.Compile(filters)
			if err != nil {
				b.Fatal(err)
			}
			m := core.New(a, core.Options{TopDown: true, Order: ds.DTD.SiblingOrder(), Early: true})
			if err := m.Train(workload.TrainingData(filters, ds.DTD)); err != nil {
				b.Fatal(err)
			}
			if err := m.Run(data); err != nil { // warm pass
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Run(data); err != nil {
					b.Fatal(err)
				}
			}
			st := m.Stats()
			b.ReportMetric(st.HitRatio(), "hitratio")
			b.ReportMetric(float64(st.BStates), "states")
		})
	}
}

// BenchmarkEnginesComparison pits the XPush machine against the two prior
// approaches it improves on: per-query machines (XFilter-style) and a
// shared-navigation NFA with unshared predicates (YFilter-style).
func BenchmarkEnginesComparison(b *testing.B) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, bench.WorkloadParams(42, 400, 5))
	doc := datagen.NewGenerator(ds, 3).GenerateDocument()

	b.Run("xpush", func(b *testing.B) {
		a, err := afa.Compile(filters)
		if err != nil {
			b.Fatal(err)
		}
		m := core.New(a, core.Options{TopDown: true, Order: ds.DTD.SiblingOrder()})
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := m.FilterDocument(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("yfilter", func(b *testing.B) {
		e := yfilter.NewEngine(filters)
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := e.FilterDocument(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perquery", func(b *testing.B) {
		e, err := perquery.NewEngine(filters)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			if _, err := e.FilterDocument(doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompileWorkload measures workload compilation (XPath parse + AFA
// construction + machine setup).
func BenchmarkCompileWorkload(b *testing.B) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, bench.WorkloadParams(42, 2000, 5))
	queries := make([]string, len(filters))
	for i, f := range filters {
		queries[i] = f.Source
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(queries, Config{TopDownPruning: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventProcessing isolates per-event machine cost on a warm
// machine (the paper's O(1)-per-event claim).
func BenchmarkEventProcessing(b *testing.B) {
	ds := datagen.ProteinLike()
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			filters := workload.Generate(ds, bench.WorkloadParams(42, n, 1.15))
			data := datagen.NewGenerator(ds, 3).GenerateBytes(256 << 10)
			a, err := afa.Compile(filters)
			if err != nil {
				b.Fatal(err)
			}
			m := core.New(a, core.Options{TopDown: true, Order: ds.DTD.SiblingOrder()})
			if err := m.Run(data); err != nil {
				b.Fatal(err)
			}
			events := m.Stats().Events
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Run(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// BenchmarkXPathParse measures the query parser.
func BenchmarkXPathParse(b *testing.B) {
	q := `//a[b/text()=1 and .//a[@c>2] and not(d="x" or e<5)]`
	for i := 0; i < b.N; i++ {
		if _, err := xpath.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSAXScanner compares the hand-written scanner with encoding/xml
// (the paper's fast-parser-vs-Apache comparison).
func BenchmarkSAXScanner(b *testing.B) {
	data := datagen.NewGenerator(datagen.ProteinLike(), 1).GenerateBytes(1 << 20)
	b.Run("scanner", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var h nullSAX
			if err := sax.Parse(data, h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoding-xml", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var h nullSAX
			if err := sax.StdParse(data, h); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type nullSAX struct{}

func (nullSAX) StartDocument()      {}
func (nullSAX) StartElement(string) {}
func (nullSAX) Text(string)         {}
func (nullSAX) EndElement(string)   {}
func (nullSAX) EndDocument()        {}
