// Netrouter: XML packet routing over TCP — the mesh-based content routing
// application the paper cites as a driver for XML stream processing. A
// broker listens for subscribers (who register XPath filters with a
// line-based protocol) and producers (who publish XML packets); each packet
// is forwarded to every subscriber whose filter matches. Subscriptions can
// arrive while traffic flows: the broker inserts them with Engine.AddQueries
// (the paper's layered-machine update path) without discarding its warm
// machine state.
//
// The demo runs a broker, three subscribers, and a producer in one process
// over real loopback TCP connections. The broker is observable: it serves
// GET /metrics (Prometheus text format — per-document filter-latency
// quantiles, cumulative documents/events/bytes, warm-machine hit ratio) and
// GET /healthz on a second loopback port, and the demo scrapes it at the
// end to show the machine warming up.
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	xpushstream "repro"
)

// Broker routes XML packets to matching subscribers.
type Broker struct {
	mu      sync.Mutex
	engine  *xpushstream.Engine
	writers []chan []byte // per filter index
	ln      net.Listener
	wg      sync.WaitGroup

	// Observability: engine metrics plus broker-level counters, served
	// at /metrics on a dedicated loopback listener.
	reg        *xpushstream.Registry
	metricsLn  net.Listener
	httpSrv    *http.Server
	packets    *xpushstream.Counter
	deliveries *xpushstream.Counter
}

// NewBroker starts a broker on a loopback port and its metrics endpoint on
// a second one.
func NewBroker() (*Broker, error) {
	engine, err := xpushstream.Compile(nil, xpushstream.Config{TopDownPruning: true})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b := &Broker{engine: engine, ln: ln, reg: xpushstream.NewRegistry()}
	// Engine stats are read under the broker lock: AddQueries mutates the
	// engine's layer list while traffic flows.
	xpushstream.RegisterMetrics(b.reg, "xpush", xpushstream.StatsFunc(func() xpushstream.Stats {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.engine.Stats()
	}))
	b.packets = b.reg.Counter("netrouter_packets_total", "XML packets published to the broker")
	b.deliveries = b.reg.Counter("netrouter_deliveries_total", "packet deliveries to subscribers")
	b.reg.GaugeFunc("netrouter_subscriptions", "registered filters", func() float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return float64(b.engine.NumQueries())
	})
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		return nil, err
	}
	b.metricsLn = mln
	b.httpSrv = &http.Server{Handler: b.reg.NewMux()}
	go b.httpSrv.Serve(mln)
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// MetricsAddr returns the /metrics + /healthz listen address.
func (b *Broker) MetricsAddr() string { return b.metricsLn.Addr().String() }

// Close stops the broker.
func (b *Broker) Close() {
	b.ln.Close()
	b.httpSrv.Close()
	b.wg.Wait()
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serve(conn)
		}()
	}
}

// serve handles one connection. The first line decides the role:
//
//	SUBSCRIBE <xpath>     (repeatable)  then  READY
//	PUBLISH <byte-count>  followed by that many bytes of XML (repeatable)
//	QUIT
func (b *Broker) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	var mine chan []byte // set once this connection subscribes
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		cmd, rest, _ := strings.Cut(strings.TrimSpace(line), " ")
		switch cmd {
		case "SUBSCRIBE":
			ch, err := b.subscribe(rest, mine)
			if err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			mine = ch
			fmt.Fprintf(conn, "OK\n")
		case "READY":
			// Stream matched packets to this subscriber.
			for doc := range mine {
				fmt.Fprintf(conn, "MSG %d\n", len(doc))
				if _, err := conn.Write(doc); err != nil {
					return
				}
			}
			return
		case "PUBLISH":
			n, err := strconv.Atoi(rest)
			if err != nil || n <= 0 || n > 1<<20 {
				fmt.Fprintf(conn, "ERR bad length\n")
				return
			}
			doc := make([]byte, n)
			if _, err := io.ReadFull(r, doc); err != nil {
				return
			}
			matched, err := b.route(doc)
			if err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			fmt.Fprintf(conn, "ROUTED %d\n", matched)
		case "QUIT":
			return
		default:
			fmt.Fprintf(conn, "ERR unknown command %q\n", cmd)
		}
	}
}

// subscribe registers one filter and binds it to the connection's delivery
// channel (created on the first subscription); several SUBSCRIBE lines on
// one connection share the channel.
func (b *Broker) subscribe(query string, ch chan []byte) (chan []byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.engine.AddQueries([]string{query}); err != nil {
		return nil, err
	}
	if ch == nil {
		ch = make(chan []byte, 128)
	}
	b.writers = append(b.writers, ch)
	return ch, nil
}

// route filters one packet and fans it out.
func (b *Broker) route(doc []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.packets.Inc()
	matches, err := b.engine.FilterDocument(doc)
	if err != nil {
		return 0, err
	}
	delivered := map[chan []byte]bool{}
	for _, m := range matches {
		ch := b.writers[m]
		if !delivered[ch] {
			delivered[ch] = true
			select {
			case ch <- doc:
				b.deliveries.Inc()
			default: // slow subscriber: drop
			}
		}
	}
	return len(matches), nil
}

// CloseSubscribers ends all subscriber streams.
func (b *Broker) CloseSubscribers() {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := map[chan []byte]bool{}
	for _, ch := range b.writers {
		if !seen[ch] {
			seen[ch] = true
			close(ch)
		}
	}
}

// subscriber connects, registers filters, and counts received packets.
func subscriber(addr, name string, filters []string, got *sync.Map, done *sync.WaitGroup) {
	defer done.Done()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	for _, f := range filters {
		fmt.Fprintf(conn, "SUBSCRIBE %s\n", f)
		resp, _ := r.ReadString('\n')
		if !strings.HasPrefix(resp, "OK") {
			log.Fatalf("%s: subscribe failed: %s", name, resp)
		}
	}
	fmt.Fprintf(conn, "READY\n")
	count := 0
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		var n int
		if _, err := fmt.Sscanf(line, "MSG %d", &n); err != nil {
			break
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			break
		}
		count++
	}
	got.Store(name, count)
}

func main() {
	broker, err := NewBroker()
	if err != nil {
		log.Fatal(err)
	}
	var got sync.Map
	var subs sync.WaitGroup
	subs.Add(3)
	go subscriber(broker.Addr(), "alerts", []string{
		`//order[total > 1000]`,
		`//order[@priority = "high"]`,
	}, &got, &subs)
	go subscriber(broker.Addr(), "eu-desk", []string{
		`//order[customer/country != "US"]`,
	}, &got, &subs)
	go subscriber(broker.Addr(), "audit", []string{
		`//order`,
	}, &got, &subs)

	// Wait until all four filters are registered (a real broker would
	// acknowledge out of band).
	for {
		broker.mu.Lock()
		n := broker.engine.NumQueries()
		broker.mu.Unlock()
		if n == 4 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Producer: publish packets over its own TCP connection. The first
	// round is shown packet by packet; then the same traffic repeats so
	// the lazy machine warms up and the scraped window hit ratio climbs
	// (the live view of the paper's Fig. 8).
	conn, err := net.Dial("tcp", broker.Addr())
	if err != nil {
		log.Fatal(err)
	}
	pr := bufio.NewReader(conn)
	packets := []string{
		`<order id="1" priority="high"><customer><country>US</country></customer><total>40</total></order>`,
		`<order id="2" priority="low"><customer><country>DE</country></customer><total>2500</total></order>`,
		`<order id="3" priority="low"><customer><country>US</country></customer><total>10</total></order>`,
		`<note>not an order</note>`,
	}
	const rounds = 25
	published := 0
	for round := 0; round < rounds; round++ {
		for _, p := range packets {
			fmt.Fprintf(conn, "PUBLISH %d\n%s", len(p), p)
			resp, _ := pr.ReadString('\n')
			published++
			if round == 0 {
				fmt.Printf("published order -> broker says: %s", resp)
			}
		}
	}
	fmt.Printf("... and %d more packets to warm the machine\n", published-len(packets))
	fmt.Fprintf(conn, "QUIT\n")
	conn.Close()

	// Scrape the broker's Prometheus endpoint while it is still serving.
	fmt.Printf("\nscraping http://%s/metrics:\n", broker.MetricsAddr())
	for _, line := range scrapeMetrics(broker.MetricsAddr()) {
		fmt.Println(" ", line)
	}

	broker.CloseSubscribers()
	subs.Wait()
	broker.Close()

	fmt.Println("\npackets received per subscriber:")
	for _, name := range []string{"alerts", "audit", "eu-desk"} {
		n, _ := got.Load(name)
		fmt.Printf("  %-8s %v\n", name, n)
	}
}

// scrapeMetrics fetches /metrics and returns the headline series: latency
// quantiles, stream totals, hit ratios, and broker counters.
func scrapeMetrics(addr string) []string {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "xpush_filter_latency_seconds{"),
			strings.HasPrefix(line, "xpush_filter_latency_seconds_max"),
			strings.HasPrefix(line, "xpush_documents_total"),
			strings.HasPrefix(line, "xpush_events_total"),
			strings.HasPrefix(line, "xpush_bytes_total"),
			strings.HasPrefix(line, "xpush_hit_ratio"),
			strings.HasPrefix(line, "xpush_window_hit_ratio"),
			strings.HasPrefix(line, "netrouter_"):
			lines = append(lines, line)
		}
	}
	return lines
}
