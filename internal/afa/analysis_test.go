package afa

import (
	"math/rand"
	"testing"

	"repro/internal/naive"
	"repro/internal/xmlval"
	"repro/internal/xpath"
)

// TestRunningExampleRelations checks the Sec. 6 facts on the running
// example (translated to our numbering: paper 8 ↦ 7, paper 5 ↦ 3, paper
// 4/13 ↦ 1/10).
func TestRunningExampleRelations(t *testing.T) {
	a := compileRunning(t)
	an := a.NewAnalyzer()
	// Paper: "8 ⇒ 5" — A2's initial state subsumes A1's .//a[@c>2]
	// context state (ours: 7 ⇒ 3).
	if !an.Subsumes(7, 3) {
		t.Error("7 (A2 initial) should subsume 3 (.//a[@c>2] context)")
	}
	if an.Subsumes(3, 7) {
		t.Error("3 must not subsume 7 (7 additionally requires b=1)")
	}
	// Paper: "4 ⇔ 13" — the two =1 leaves are equivalent (ours: 1 ⇔ 10).
	if an.Relate(1, 10) != Equivalent {
		t.Errorf("leaves 1 and 10 should be equivalent, got %v", an.Relate(1, 10))
	}
	// Paper: "4 | s for every state s ≠ 13": leaves are inconsistent
	// with all element states.
	for s := int32(0); s < int32(a.NumStates()); s++ {
		if s == 1 || s == 10 {
			continue
		}
		if a.Terminal(s) == LeafTerminal {
			continue // the >2 leaves are merely disjoint ranges
		}
		if !an.Inconsistent(1, s) {
			t.Errorf("leaf 1 should be inconsistent with element state %d", s)
		}
	}
	// The two >2 leaves are equivalent to each other and disjoint from
	// the =1 leaves (1 ∉ (2,∞)).
	if an.Relate(4, 8) != Equivalent {
		t.Errorf("the two >2 leaves: %v", an.Relate(4, 8))
	}
	if !an.Inconsistent(1, 4) {
		t.Error("=1 and >2 are disjoint")
	}
}

func TestPredImplies(t *testing.T) {
	n := xmlval.NumberConst
	cases := []struct {
		op1  xmlval.Op
		c1   xmlval.Const
		op2  xmlval.Op
		c2   xmlval.Const
		want bool
	}{
		{xmlval.OpEq, n(5), xmlval.OpGt, n(2), true},
		{xmlval.OpEq, n(5), xmlval.OpGt, n(5), false},
		{xmlval.OpEq, n(5), xmlval.OpNe, n(4), true},
		{xmlval.OpLt, n(3), xmlval.OpLt, n(5), true},
		{xmlval.OpLt, n(5), xmlval.OpLt, n(3), false},
		{xmlval.OpLt, n(3), xmlval.OpLe, n(3), true},
		{xmlval.OpLe, n(3), xmlval.OpLt, n(3), false},
		{xmlval.OpGe, n(5), xmlval.OpGt, n(3), true},
		{xmlval.OpGt, n(5), xmlval.OpGe, n(5), true},
		{xmlval.OpGt, n(5), xmlval.OpNe, n(5), true},
		{xmlval.OpEq, xmlval.StringConst("x"), xmlval.OpGe, xmlval.StringConst("a"), true},
		{xmlval.OpEq, xmlval.StringConst("x"), xmlval.OpEq, xmlval.StringConst("y"), false},
		{xmlval.OpEq, n(5), xmlval.OpExists, xmlval.Const{}, true},
		{xmlval.OpEq, n(10), xmlval.OpEq, xmlval.StringConst("10"), false}, // cross-domain
	}
	for _, tc := range cases {
		if got := predImplies(tc.op1, tc.c1, tc.op2, tc.c2); got != tc.want {
			t.Errorf("(%v %v) ⇒ (%v %v): got %v, want %v", tc.op1, tc.c1, tc.op2, tc.c2, got, tc.want)
		}
	}
}

func TestPredsDisjoint(t *testing.T) {
	n := xmlval.NumberConst
	cases := []struct {
		op1  xmlval.Op
		c1   xmlval.Const
		op2  xmlval.Op
		c2   xmlval.Const
		want bool
	}{
		{xmlval.OpEq, n(1), xmlval.OpEq, n(2), true},
		{xmlval.OpEq, n(1), xmlval.OpEq, n(1), false},
		{xmlval.OpLt, n(1), xmlval.OpGt, n(2), true},
		{xmlval.OpLt, n(2), xmlval.OpGt, n(1), false},
		{xmlval.OpLe, n(1), xmlval.OpGe, n(1), false}, // both at 1
		{xmlval.OpLt, n(1), xmlval.OpGe, n(1), true},
		{xmlval.OpEq, n(1), xmlval.OpNe, n(1), true},
		{xmlval.OpEq, n(1), xmlval.OpNe, n(2), false},
		{xmlval.OpEq, xmlval.StringConst("a"), xmlval.OpEq, xmlval.StringConst("b"), true},
		{xmlval.OpEq, n(10), xmlval.OpEq, xmlval.StringConst("10"), false},
		{xmlval.OpExists, xmlval.Const{}, xmlval.OpEq, n(1), false},
	}
	for _, tc := range cases {
		if got := predsDisjoint(tc.op1, tc.c1, tc.op2, tc.c2); got != tc.want {
			t.Errorf("(%v %v) | (%v %v): got %v, want %v", tc.op1, tc.c1, tc.op2, tc.c2, got, tc.want)
		}
	}
}

func TestSubsumptionStructural(t *testing.T) {
	a := MustCompile(
		xpath.MustParse("/a[b>5]"),
		xpath.MustParse("/a[b>2]"),
		xpath.MustParse("/a[b]"),
		xpath.MustParse("//a[b>5]"),
	)
	an := a.NewAnalyzer()
	i0 := a.Queries[0].Initial
	i1 := a.Queries[1].Initial
	i2 := a.Queries[2].Initial
	i3 := a.Queries[3].Initial
	if !an.Subsumes(i0, i1) {
		t.Error("/a[b>5] should subsume /a[b>2]")
	}
	if an.Subsumes(i1, i0) {
		t.Error("/a[b>2] must not subsume /a[b>5]")
	}
	if !an.Subsumes(i0, i2) {
		t.Error("/a[b>5] should subsume /a[b] (existence)")
	}
	if !an.Subsumes(i0, i3) {
		t.Error("/a[b>5] should subsume //a[b>5] (child is a descendant)")
	}
	if an.Subsumes(i3, i0) {
		t.Error("//a[b>5] must not subsume /a[b>5]")
	}
}

// TestSubsumptionSoundness validates the conservative subsumption decision
// against the semantics: whenever the analyzer claims s ⇒ s' for query
// initial states, every random document matching the first filter matches
// the second.
func TestSubsumptionSoundness(t *testing.T) {
	queries := []string{
		"/a[b>5]", "/a[b>2]", "/a[b]", "//a[b>2]", "/a[b=7]",
		"/a[b>2 and c=1]", "/a[c=1]", "/a/*[x=1]", "/a/d[x=1]",
		"//b", "/a/b", "/a[not(b=1)]", "/a[b=1 or b=2]",
	}
	filters := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		filters[i] = xpath.MustParse(q)
	}
	a, err := Compile(filters)
	if err != nil {
		t.Fatal(err)
	}
	an := a.NewAnalyzer()
	type pair struct{ i, j int }
	var claimed []pair
	for i := range queries {
		for j := range queries {
			if i != j && an.Subsumes(a.Queries[i].Initial, a.Queries[j].Initial) {
				claimed = append(claimed, pair{i, j})
			}
		}
	}
	if len(claimed) == 0 {
		t.Fatal("analyzer found no subsumptions at all")
	}
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 400; trial++ {
		doc := randomAnalysisDoc(r)
		docs, err := naive.Build([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range claimed {
			if naive.Matches(filters[p.i], docs[0]) && !naive.Matches(filters[p.j], docs[0]) {
				t.Fatalf("unsound subsumption %q ⇒ %q on %s", queries[p.i], queries[p.j], doc)
			}
		}
	}
}

func randomAnalysisDoc(r *rand.Rand) string {
	labels := []string{"a", "b", "c", "d", "x"}
	var build func(depth int) string
	build = func(depth int) string {
		l := labels[r.Intn(len(labels))]
		if depth == 0 || r.Intn(3) == 0 {
			return "<" + l + ">" + []string{"1", "2", "3", "6", "7"}[r.Intn(5)] + "</" + l + ">"
		}
		inner := ""
		for i := 0; i < 1+r.Intn(3); i++ {
			inner += build(depth - 1)
		}
		return "<" + l + ">" + inner + "</" + l + ">"
	}
	return build(3)
}

func TestAnalyzeReport(t *testing.T) {
	a := compileRunning(t)
	r := a.Analyze()
	if r.States != 13 {
		t.Errorf("states = %d", r.States)
	}
	if r.EquivalentPairs < 2 { // the =1 pair and the >2 pair
		t.Errorf("equivalent pairs = %d", r.EquivalentPairs)
	}
	if r.InconsistentPairs == 0 || r.SubsumptionPairs == 0 {
		t.Errorf("report = %+v", r)
	}
	total := r.EquivalentPairs + r.InconsistentPairs + r.IndependentPairs
	for i := 0; i < r.States; i++ {
		// Relate returns one class per unordered pair; Subsumes /
		// SubsumedBy pairs are counted in SubsumptionPairs but are
		// neither equivalent, inconsistent, nor independent.
		_ = i
	}
	if total > r.States*(r.States-1)/2 {
		t.Errorf("pair classes overflow: %+v", r)
	}
	if r.MaxIndependentDegree <= 0 {
		t.Errorf("degree = %d", r.MaxIndependentDegree)
	}
}

// TestAnalyzeQueries exercises the filter-level relation helper behind the
// workload-dedup subsumption metric: duplicate filters are equivalent (via
// the sameShape fast path), a filter with an extra predicate is subsumed by
// its prefix, and disjoint value predicates are inconsistent.
func TestAnalyzeQueries(t *testing.T) {
	a, err := Compile([]*xpath.Filter{
		xpath.MustParse("//a[b/text()=1]"), // 0
		xpath.MustParse("//a[b/text()=1]"), // 1: duplicate of 0
		xpath.MustParse("//a"),             // 2: subsumes 0 and 1
	})
	if err != nil {
		t.Fatal(err)
	}
	an := a.NewAnalyzer()
	if r := an.RelateQueries(0, 1); r != Equivalent {
		t.Errorf("duplicate filters relate as %v, want ⇔", r)
	}
	if r := an.RelateQueries(0, 2); r != Subsumes {
		t.Errorf("//a[b/text()=1] vs //a relate as %v, want ⇒", r)
	}
	rep := a.AnalyzeQueries()
	if rep.Queries != 3 {
		t.Errorf("queries = %d", rep.Queries)
	}
	if rep.EquivalentPairs != 1 {
		t.Errorf("equivalent pairs = %d, want 1", rep.EquivalentPairs)
	}
	// (0,1) contributes 2 ordered pairs, (0,2) and (1,2) one each.
	if rep.SubsumedPairs != 4 {
		t.Errorf("subsumed pairs = %d, want 4", rep.SubsumedPairs)
	}
}
