package xpushstream_test

import (
	"fmt"
	"log"
	"strings"

	xpushstream "repro"
)

// The basic workflow: compile a workload once, filter many documents.
func Example() {
	engine, err := xpushstream.Compile([]string{
		`//order[total > 1000]`,
		`//order[customer/country = "US"]`,
	}, xpushstream.Config{})
	if err != nil {
		log.Fatal(err)
	}
	matches, err := engine.FilterDocument([]byte(
		`<order><customer><country>US</country></customer><total>1500</total></order>`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(matches)
	// Output: [0 1]
}

// Filtering a stream of concatenated documents with a per-document
// callback.
func ExampleEngine_FilterBytes() {
	engine, err := xpushstream.Compile([]string{`/tick[price > 100]`}, xpushstream.Config{})
	if err != nil {
		log.Fatal(err)
	}
	stream := `<tick><price>50</price></tick><tick><price>150</price></tick>`
	err = engine.FilterBytes([]byte(stream), func(matches []int) {
		fmt.Println(len(matches))
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// 0
	// 1
}

// Inserting subscriptions into a live engine without discarding its warm
// state (the paper's layered-machine update path).
func ExampleEngine_AddQueries() {
	engine, err := xpushstream.Compile([]string{`/m[v=1]`}, xpushstream.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.AddQueries([]string{`/m[v=2]`}); err != nil {
		log.Fatal(err)
	}
	matches, _ := engine.FilterDocument([]byte(`<m><v>2</v></m>`))
	fmt.Println(matches, engine.NumLayers())
	// Output: [1] 2
}

// Using a DTD to enable the order optimization and synthetic training.
func ExampleConfig() {
	d, err := xpushstream.ParseDTD(`
<!ELEMENT person (name, age, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT phone (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := xpushstream.Compile(
		[]string{`/person[name="Smith" and age=33 and phone=5551234]`},
		xpushstream.Config{TopDownPruning: true, OrderOptimization: true, Training: true, DTD: d})
	if err != nil {
		log.Fatal(err)
	}
	matches, _ := engine.FilterDocument([]byte(
		`<person><name>Smith</name><age>33</age><phone>5551234</phone></person>`))
	fmt.Println(matches)
	// Output: [0]
}

// Processing an unbounded stream with bounded memory.
func ExampleEngine_FilterStreaming() {
	engine, err := xpushstream.Compile([]string{`//alert`}, xpushstream.Config{MaxStates: 10000})
	if err != nil {
		log.Fatal(err)
	}
	stream := strings.NewReader(`<alert/><info/><alert><level>2</level></alert>`)
	total := 0
	if err := engine.FilterStreaming(stream, func(m []int) { total += len(m) }); err != nil {
		log.Fatal(err)
	}
	fmt.Println(total)
	// Output: 2
}

// Rejecting filters outside the supported fragment up front.
func ExampleValidateQuery() {
	fmt.Println(xpushstream.ValidateQuery(`//a[b=1 and not(c)]`))
	err := xpushstream.ValidateQuery(`//a[`)
	fmt.Println(err != nil)
	// Output:
	// <nil>
	// true
}
