package sax

import (
	"bufio"
	"bytes"
	"io"
	"sync/atomic"
)

// Splitter incrementally cuts a possibly unbounded reader into complete XML
// documents, so a broker can process an infinite stream with memory bounded
// by the largest single document rather than the whole stream. It tracks
// element nesting with a lightweight tokenizer (tags, comments, PIs, CDATA,
// DOCTYPE) without building events; each returned document is then handed
// to the full Scanner.
type Splitter struct {
	r   *bufio.Reader
	buf bytes.Buffer
	// MaxDocBytes bounds a single document (0 = 64 MiB default).
	MaxDocBytes int

	// Stream counters, atomic so a monitoring goroutine can read them
	// while the split loop runs.
	docs, bytesRead atomic.Int64
}

// DocsRead returns the number of complete documents returned so far.
func (s *Splitter) DocsRead() int64 { return s.docs.Load() }

// BytesRead returns the number of input bytes consumed into completed
// documents (including inter-document whitespace).
func (s *Splitter) BytesRead() int64 { return s.bytesRead.Load() }

// NewSplitter wraps a reader.
func NewSplitter(r io.Reader) *Splitter {
	return &Splitter{r: bufio.NewReaderSize(r, 64<<10)}
}

func (s *Splitter) maxDoc() int {
	if s.MaxDocBytes > 0 {
		return s.MaxDocBytes
	}
	return 64 << 20
}

// Next returns the bytes of the next complete document (from its first '<'
// through the close of its root element). It returns io.EOF when the stream
// ends cleanly between documents. The returned slice is valid until the
// next call.
func (s *Splitter) Next() ([]byte, error) {
	s.buf.Reset()
	depth := 0
	started := false
	for {
		c, err := s.r.ReadByte()
		if err == io.EOF {
			if !started && onlySpace(s.buf.Bytes()) {
				return nil, io.EOF
			}
			return nil, &ParseError{Offset: s.buf.Len(), Msg: "unexpected end of stream inside a document"}
		}
		if err != nil {
			return nil, err
		}
		s.buf.WriteByte(c)
		if s.buf.Len() > s.maxDoc() {
			return nil, &ParseError{Offset: s.buf.Len(), Msg: "document exceeds size bound"}
		}
		if c != '<' {
			continue
		}
		// Inspect the construct that starts here.
		kind, selfClosing, err := s.copyMarkup()
		if err != nil {
			return nil, err
		}
		switch kind {
		case markupStart:
			started = true
			if !selfClosing {
				depth++
			}
		case markupEnd:
			depth--
			if depth < 0 {
				return nil, &ParseError{Offset: s.buf.Len(), Msg: "unbalanced end tag in stream"}
			}
		}
		if started && depth == 0 {
			s.docs.Add(1)
			s.bytesRead.Add(int64(s.buf.Len()))
			// Trim inter-document whitespace carried in from before
			// this document's first tag.
			return bytes.TrimLeft(s.buf.Bytes(), " \t\r\n"), nil
		}
	}
}

type markupKind uint8

const (
	markupStart markupKind = iota
	markupEnd
	markupOther // comment, PI, DOCTYPE, CDATA
)

// copyMarkup consumes one markup construct after '<' into the buffer and
// classifies it.
func (s *Splitter) copyMarkup() (markupKind, bool, error) {
	c, err := s.r.ReadByte()
	if err != nil {
		return 0, false, &ParseError{Offset: s.buf.Len(), Msg: "unexpected end of stream after '<'"}
	}
	s.buf.WriteByte(c)
	switch c {
	case '/':
		if err := s.copyUntilByte('>'); err != nil {
			return 0, false, err
		}
		return markupEnd, false, nil
	case '?':
		if err := s.copyUntilSeq("?>"); err != nil {
			return 0, false, err
		}
		return markupOther, false, nil
	case '!':
		// Comment, CDATA, or DOCTYPE.
		peek, _ := s.r.Peek(7)
		switch {
		case bytes.HasPrefix(peek, []byte("--")):
			if err := s.copyUntilSeq("-->"); err != nil {
				return 0, false, err
			}
		case bytes.HasPrefix(peek, []byte("[CDATA[")):
			if err := s.copyUntilSeq("]]>"); err != nil {
				return 0, false, err
			}
		default:
			// DOCTYPE (possibly with an internal subset).
			if err := s.copyDoctype(); err != nil {
				return 0, false, err
			}
		}
		return markupOther, false, nil
	default:
		// Start tag: copy to '>' skipping quoted attribute values.
		selfClosing, err := s.copyStartTag()
		return markupStart, selfClosing, err
	}
}

func (s *Splitter) copyStartTag() (bool, error) {
	prev := byte(0)
	var quote byte
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return false, &ParseError{Offset: s.buf.Len(), Msg: "unterminated start tag"}
		}
		s.buf.WriteByte(c)
		if quote != 0 {
			if c == quote {
				quote = 0
			}
			prev = c
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
		case '>':
			return prev == '/', nil
		}
		prev = c
	}
}

func (s *Splitter) copyUntilByte(stop byte) error {
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return &ParseError{Offset: s.buf.Len(), Msg: "unterminated markup"}
		}
		s.buf.WriteByte(c)
		if c == stop {
			return nil
		}
	}
}

func (s *Splitter) copyUntilSeq(stop string) error {
	matched := 0
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return &ParseError{Offset: s.buf.Len(), Msg: "unterminated markup"}
		}
		s.buf.WriteByte(c)
		if c == stop[matched] {
			matched++
			if matched == len(stop) {
				return nil
			}
		} else if c == stop[0] {
			matched = 1
		} else {
			matched = 0
		}
	}
}

// copyDoctype consumes a DOCTYPE declaration incl. internal subset.
func (s *Splitter) copyDoctype() error {
	depth := 0
	for {
		c, err := s.r.ReadByte()
		if err != nil {
			return &ParseError{Offset: s.buf.Len(), Msg: "unterminated DOCTYPE"}
		}
		s.buf.WriteByte(c)
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				return nil
			}
		}
	}
}

func onlySpace(b []byte) bool {
	for _, c := range b {
		if !isSpace(c) && c != '<' {
			return false
		}
	}
	return true
}

// StreamDocuments reads documents from r one at a time and calls handle for
// each, keeping memory bounded by the largest document. handle may return
// an error to stop the stream.
func StreamDocuments(r io.Reader, handle func(doc []byte) error) error {
	return StreamDocumentsLimit(r, 0, handle)
}

// StreamDocumentsLimit is StreamDocuments with an explicit per-document
// size bound (0 selects the splitter's 64 MiB default): a document that
// exceeds maxDocBytes fails the stream with a *ParseError instead of
// buffering without bound.
func StreamDocumentsLimit(r io.Reader, maxDocBytes int, handle func(doc []byte) error) error {
	sp := NewSplitter(r)
	sp.MaxDocBytes = maxDocBytes
	for {
		doc, err := sp.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := handle(doc); err != nil {
			return err
		}
	}
}
