package obs

import (
	"strings"
	"testing"
)

// TestSnapshotDeltaSince pins the per-interval semantics: only the
// observations between the two snapshots appear in the delta.
func TestSnapshotDeltaSince(t *testing.T) {
	var h Histogram
	h.Observe(10e-6)
	h.Observe(20e-6)
	prev := h.Snapshot()
	h.Observe(5e-3)
	h.Observe(6e-3)
	h.Observe(7e-3)
	d := h.Snapshot().DeltaSince(prev)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if d.Sum < 17e-3 || d.Sum > 19e-3 {
		t.Fatalf("delta sum = %g, want ~18e-3", d.Sum)
	}
	// Old microsecond observations must not leak into the delta quantiles.
	if p50 := d.Quantile(0.5); p50 < 1e-3 {
		t.Fatalf("delta p50 = %g, cumulative history leaked in", p50)
	}
	// Max advanced during the interval: exact.
	if d.Max != 7e-3 {
		t.Fatalf("delta max = %g, want 7e-3", d.Max)
	}

	// Interval with only smaller observations: max falls back to the
	// highest non-empty delta bucket's bound, not the stale cumulative max.
	prev = h.Snapshot()
	h.Observe(1e-3)
	d = h.Snapshot().DeltaSince(prev)
	if d.Count != 1 {
		t.Fatalf("count = %d", d.Count)
	}
	if d.Max < 1e-3 || d.Max > 3e-3 {
		t.Fatalf("plateau delta max = %g, want within the ~1-2ms bucket", d.Max)
	}

	// Empty interval.
	prev = h.Snapshot()
	d = h.Snapshot().DeltaSince(prev)
	if d.Count != 0 || d.Sum != 0 || d.Max != 0 {
		t.Fatalf("empty delta = %+v", d)
	}

	// Delta against a zero-value snapshot is the cumulative view.
	d = h.Snapshot().DeltaSince(Snapshot{})
	if d.Count != h.Snapshot().Count {
		t.Fatalf("delta since zero = %d, want full count %d", d.Count, h.Snapshot().Count)
	}
}

// TestWindowDeltas drives the Window helper through several intervals.
func TestWindowDeltas(t *testing.T) {
	var h Histogram
	w := NewWindow(&h)
	h.Observe(1e-3)
	h.Observe(2e-3)
	if d := w.Delta(); d.Count != 2 {
		t.Fatalf("first delta count = %d, want 2 (everything so far)", d.Count)
	}
	if d := w.Delta(); d.Count != 0 {
		t.Fatalf("idle delta count = %d, want 0", d.Count)
	}
	h.Observe(3e-3)
	if d := w.Delta(); d.Count != 1 {
		t.Fatalf("third delta count = %d, want 1", d.Count)
	}
}

// TestCumulativeEncodingUnchanged guards the satellite's "keep cumulative
// behavior default" half: the Prometheus encoding of a histogram is the
// cumulative view regardless of any Window tracking it.
func TestCumulativeEncodingUnchanged(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	r.Histogram("x_latency_seconds", "test", &h)
	w := NewWindow(&h)
	h.Observe(1e-3)
	w.Delta()
	h.Observe(2e-3)
	w.Delta() // windows consume deltas...
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	// ...but the scrape still carries the cumulative count of 2.
	if !strings.Contains(sb.String(), "x_latency_seconds_count 2") {
		t.Fatalf("scrape lost cumulative behavior:\n%s", sb.String())
	}
}
