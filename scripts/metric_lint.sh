#!/usr/bin/env bash
# metric_lint.sh — static lint of the metric namespace: every name
# registered on an obs.Registry must carry the xpush prefix
# (xpushserve_/xpushgate_/xpush_...), counters must end in _total,
# plain gauges must not, and anything measuring time (latency, duration)
# must end in _seconds. Run standalone or as the tail of
# cluster_smoke.sh; exits non-zero naming each violation.
set -euo pipefail
cd "$(dirname "$0")/.."

pairs=$(grep -rhoE '\.(Counter|CounterFunc|Gauge|GaugeFunc|GaugeVecFunc|HistogramFunc|SummaryFunc|SummaryVecFunc)\("[a-zA-Z0-9_]+"' \
    --include='*.go' --exclude='*_test.go' server internal cmd client 2>/dev/null \
  | sed -E 's/^\.([A-Za-z]+)\("([^"]+)"/\1 \2/' | sort -u)

fail=0
while read -r call name; do
  [ -z "$name" ] && continue
  case "$name" in
    # process_* is the conventional Prometheus process namespace the obs
    # package self-registers; everything else must be ours.
    xpush_*|xpushserve_*|xpushgate_*|xpushload_*|process_*) ;;
    *) echo "metric_lint: $name (via $call) lacks the xpush namespace prefix" >&2; fail=1 ;;
  esac
  case "$call" in
    Counter|CounterFunc)
      case "$name" in
        *_total) ;;
        *) echo "metric_lint: counter $name must end in _total" >&2; fail=1 ;;
      esac ;;
    Gauge|GaugeFunc)
      # GaugeVecFunc is exempt: the repo exports labeled monotonic
      # counters through it (xpush_durable_pump_docs_scanned_total, the
      # per-query xpush_query_*_total series), which legitimately end in
      # _total.
      case "$name" in
        *_total) echo "metric_lint: gauge $name must not end in _total" >&2; fail=1 ;;
      esac ;;
  esac
  case "$name" in
    *latency*|*duration*)
      case "$name" in
        *_seconds) ;;
        *) echo "metric_lint: $name measures time and must end in _seconds" >&2; fail=1 ;;
      esac ;;
  esac
done <<<"$pairs"

if [ "$fail" -ne 0 ]; then
  echo "metric_lint: FAIL" >&2
  exit 1
fi
echo "metric_lint: OK ($(echo "$pairs" | wc -l) registered series checked)"
