// Package bench regenerates the paper's evaluation (Sec. 7, Figs. 5-11).
// The evaluation section contains no numbered tables; the figures are the
// complete result set. Each figure is a view over one of three parameter
// sweeps:
//
//   - SweepQueries (Figs. 5, 6, 7): workload size on the x-axis, one series
//     per machine variant; filtering time, number of states, average state
//     size.
//   - SweepPreds (Figs. 9a, 10a, 11a): predicates per query on the x-axis
//     with the total number of atomic predicates held fixed.
//   - SweepData (Figs. 8, 9b, 10b, 11b): data volume on the x-axis, one
//     series per workload size; hit ratio, cumulative filtering time,
//     states, state size.
//
// Absolute times are hardware-dependent; the reproduction targets the
// figures' shapes (see DESIGN.md for the per-figure shape expectations).
package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/afa"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/sax"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// Variant names one machine configuration (one series in Figs. 5-7).
type Variant struct {
	Name  string
	Opts  core.Options
	Train bool
	// ParseOnly measures the parser alone (the "parse" series).
	ParseOnly bool
	// StdParse measures the heavyweight reference parser (the paper's
	// Apache series).
	StdParse bool
}

// Variants returns the paper's series set for Figs. 5-7.
func Variants(ds *datagen.Dataset) []Variant {
	order := ds.DTD.SiblingOrder()
	return []Variant{
		{Name: "parse", ParseOnly: true},
		{Name: "basic", Opts: core.Options{PrecomputeValues: true}},
		{Name: "td", Opts: core.Options{TopDown: true}},
		{Name: "order", Opts: core.Options{Order: order, PrecomputeValues: true}},
		{Name: "td-order", Opts: core.Options{TopDown: true, Order: order}},
		{Name: "td-order-train", Opts: core.Options{TopDown: true, Order: order}, Train: true},
		{Name: "td-order-early-train", Opts: core.Options{TopDown: true, Order: order, Early: true}, Train: true},
	}
}

// Row is one measured point.
type Row struct {
	Series    string
	X         float64 // figure-specific: #queries, preds/query, or MB
	Time      time.Duration
	MBPerSec  float64
	States    int
	AvgSize   float64
	HitRatio  float64
	TotalPred int
	Matches   int64
	MemBytes  int64
}

// WorkloadParams derives generator parameters for a target mean
// predicates-per-query, mirroring the paper's two workload families (no
// wildcards or descendant axes in the reported runs).
func WorkloadParams(seed int64, n int, meanPreds float64) workload.Params {
	nested := 0.0
	if meanPreds > 3 {
		nested = 0.3 // bushy trees for predicate-heavy workloads
	}
	return workload.Params{
		Seed:           seed,
		NumQueries:     n,
		MeanPreds:      meanPreds,
		NestedPredProb: nested,
	}
}

// buildMachine compiles a workload into a machine for a variant, training it
// when the variant asks for it. It returns the machine and the compile +
// training time (not counted in filtering time, matching the paper, which
// reports filtering time on a constructed machine).
func buildMachine(filters []*xpath.Filter, ds *datagen.Dataset, v Variant) (*core.Machine, error) {
	a, err := afa.Compile(filters)
	if err != nil {
		return nil, err
	}
	m := core.New(a, v.Opts)
	if v.Train {
		if err := m.Train(workload.TrainingData(filters, ds.DTD)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

type nullHandler struct{}

func (nullHandler) StartDocument()      {}
func (nullHandler) StartElement(string) {}
func (nullHandler) Text(string)         {}
func (nullHandler) EndElement(string)   {}
func (nullHandler) EndDocument()        {}

// measure runs one variant over the data and returns a row.
func measure(v Variant, filters []*xpath.Filter, ds *datagen.Dataset, data []byte) (Row, error) {
	row := Row{Series: v.Name}
	switch {
	case v.ParseOnly:
		start := time.Now()
		if err := sax.Parse(data, nullHandler{}); err != nil {
			return row, err
		}
		row.Time = time.Since(start)
	case v.StdParse:
		start := time.Now()
		if err := sax.StdParse(data, nullHandler{}); err != nil {
			return row, err
		}
		row.Time = time.Since(start)
	default:
		m, err := buildMachine(filters, ds, v)
		if err != nil {
			return row, err
		}
		start := time.Now()
		if err := m.Run(data); err != nil {
			return row, err
		}
		row.Time = time.Since(start)
		st := m.Stats()
		row.States = st.BStates
		row.AvgSize = st.AvgStateSize()
		row.HitRatio = st.HitRatio()
		row.Matches = st.Matches
		row.MemBytes = m.ApproxMemoryBytes()
	}
	row.MBPerSec = mbPerSec(len(data), row.Time)
	return row, nil
}

func mbPerSec(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / d.Seconds()
}

// SweepQueries produces the rows behind Figs. 5, 6 and 7: every variant at
// every workload size.
func SweepQueries(ds *datagen.Dataset, queryCounts []int, meanPreds float64, dataBytes int, log io.Writer) ([]Row, error) {
	data := datagen.NewGenerator(ds, 1).GenerateBytes(dataBytes)
	var rows []Row
	for _, n := range queryCounts {
		filters := workload.Generate(ds, WorkloadParams(100+int64(n), n, meanPreds))
		total := workload.TotalAtomicPredicates(filters)
		for _, v := range Variants(ds) {
			row, err := measure(v, filters, ds, data)
			if err != nil {
				return nil, fmt.Errorf("%s at n=%d: %w", v.Name, n, err)
			}
			row.X = float64(n)
			row.TotalPred = total
			rows = append(rows, row)
			if log != nil {
				fmt.Fprintf(log, "  n=%-8d %-22s time=%-12v states=%-8d avgsize=%.1f\n",
					n, v.Name, row.Time.Round(time.Millisecond), row.States, row.AvgSize)
			}
		}
	}
	return rows, nil
}

// SweepPreds produces the rows behind Figs. 9a, 10a and 11a: the number of
// predicates per query varies while the total number of atomic predicates
// stays fixed (n = totalPreds / k).
func SweepPreds(ds *datagen.Dataset, predCounts []int, totalPreds int, dataBytes int, log io.Writer) ([]Row, error) {
	data := datagen.NewGenerator(ds, 1).GenerateBytes(dataBytes)
	var rows []Row
	for _, k := range predCounts {
		n := totalPreds / k
		if n == 0 {
			continue
		}
		filters := workload.Generate(ds, WorkloadParams(200+int64(k), n, float64(k)))
		total := workload.TotalAtomicPredicates(filters)
		for _, v := range Variants(ds) {
			row, err := measure(v, filters, ds, data)
			if err != nil {
				return nil, fmt.Errorf("%s at k=%d: %w", v.Name, k, err)
			}
			row.X = float64(k)
			row.TotalPred = total
			rows = append(rows, row)
			if log != nil {
				fmt.Fprintf(log, "  k=%-4d n=%-7d %-22s time=%-12v states=%-8d avgsize=%.1f\n",
					k, n, v.Name, row.Time.Round(time.Millisecond), row.States, row.AvgSize)
			}
		}
	}
	return rows, nil
}

// SweepData produces the rows behind Figs. 8, 9b, 10b and 11b: the machine
// (td-order-train configuration, 5 predicates per query as in the paper's
// data-size runs) processes a growing stream; after every chunk the
// cumulative time, hit ratio, state count and state size are recorded. One
// series per workload size.
func SweepData(ds *datagen.Dataset, workloadSizes []int, chunkBytes, chunks int, log io.Writer) ([]Row, error) {
	var rows []Row
	for _, n := range workloadSizes {
		filters := workload.Generate(ds, WorkloadParams(300+int64(n), n, 5))
		v := Variant{
			Name:  fmt.Sprintf("%d", n),
			Opts:  core.Options{TopDown: true, Order: ds.DTD.SiblingOrder()},
			Train: true,
		}
		m, err := buildMachine(filters, ds, v)
		if err != nil {
			return nil, err
		}
		gen := datagen.NewGenerator(ds, 2)
		var cum time.Duration
		for c := 1; c <= chunks; c++ {
			chunk := gen.GenerateBytes(chunkBytes)
			start := time.Now()
			if err := m.Run(chunk); err != nil {
				return nil, err
			}
			cum += time.Since(start)
			st := m.Stats()
			row := Row{
				Series:   v.Name,
				X:        float64(c*chunkBytes) / (1 << 20),
				Time:     cum,
				MBPerSec: mbPerSec(c*chunkBytes, cum),
				States:   st.BStates,
				AvgSize:  st.AvgStateSize(),
				HitRatio: st.HitRatio(),
				Matches:  st.Matches,
				MemBytes: m.ApproxMemoryBytes(),
			}
			rows = append(rows, row)
			if log != nil {
				fmt.Fprintf(log, "  n=%-8s mb=%-8.1f time=%-12v hit=%.4f states=%-8d\n",
					v.Name, row.X, cum.Round(time.Millisecond), row.HitRatio, row.States)
			}
		}
	}
	return rows, nil
}

// AbstractClaim measures the throughput claims of the paper's abstract: the
// sustained MB/s of the fully optimized machine at a given total number of
// atomic predicates, and the warm machine's time next to the two parsers.
type AbstractResult struct {
	TotalPreds        int
	MeanPreds         float64
	ColdMBPerSec      float64
	WarmMBPerSec      float64
	ScannerMBPerSec   float64
	StdParserMBPerSec float64
	// WarmLatency is the warm machine's per-document filter-latency
	// histogram summary (seconds) — the operational view behind the MB/s
	// numbers: a broker sizing its queues cares about p99, not the mean.
	WarmLatency obs.Summary
}

// Abstract runs the abstract-claim measurement.
func Abstract(ds *datagen.Dataset, numQueries int, meanPreds float64, dataBytes int) (AbstractResult, error) {
	filters := workload.Generate(ds, WorkloadParams(42, numQueries, meanPreds))
	data := datagen.NewGenerator(ds, 3).GenerateBytes(dataBytes)
	res := AbstractResult{
		TotalPreds: workload.TotalAtomicPredicates(filters),
		MeanPreds:  float64(workload.TotalAtomicPredicates(filters)) / float64(numQueries),
	}
	v := Variant{Name: "full", Opts: core.Options{TopDown: true, Order: ds.DTD.SiblingOrder(), Early: true}, Train: true}
	m, err := buildMachine(filters, ds, v)
	if err != nil {
		return res, err
	}
	start := time.Now()
	if err := m.Run(data); err != nil {
		return res, err
	}
	res.ColdMBPerSec = mbPerSec(len(data), time.Since(start))
	// Second pass over the same data: the "completed" machine.
	start = time.Now()
	if err := m.Run(data); err != nil {
		return res, err
	}
	res.WarmMBPerSec = mbPerSec(len(data), time.Since(start))
	// Third pass, timed per document, for the warm latency distribution.
	var lat obs.Histogram
	err = sax.StreamDocuments(bytes.NewReader(data), func(doc []byte) error {
		t0 := time.Now()
		if err := m.Run(doc); err != nil {
			return err
		}
		lat.Observe(time.Since(t0).Seconds())
		return nil
	})
	if err != nil {
		return res, err
	}
	res.WarmLatency = lat.Snapshot().Summary()
	start = time.Now()
	if err := sax.Parse(data, nullHandler{}); err != nil {
		return res, err
	}
	res.ScannerMBPerSec = mbPerSec(len(data), time.Since(start))
	start = time.Now()
	if err := sax.StdParse(data, nullHandler{}); err != nil {
		return res, err
	}
	res.StdParserMBPerSec = mbPerSec(len(data), time.Since(start))
	return res, nil
}
