package workload

import (
	"fmt"
	"sync"
)

// Dedup is a refcounted registry mapping canonical filter text to a single
// shared machine query plus the fan-out set of subscriptions riding on it.
// It is the sharing layer between a broker's subscribe path and the filter
// engine: the first subscription to a canonical filter compiles a machine
// query, later ones only bump the fan-out set, and the machine query is
// released only when the last subscription (and any boot-time pin) is gone.
//
// Entries are addressed by a stable uint64 key that survives engine layer
// consolidation (which renumbers engine indexes); the broker keeps the
// key -> engine-index mapping alongside its immutable workload generation.
// Subscriptions are addressed by their own uint64 id so one owner can hold
// several subscriptions to the same filter.
//
// O is the subscription owner type (a broker connection, typically). All
// methods are safe for concurrent use; Fanout takes a single read lock so
// the hot match path never blocks on subscribe churn for long.
type Dedup[O comparable] struct {
	mu      sync.RWMutex
	byCanon map[string]*dedupEntry[O]
	byKey   map[uint64]*dedupEntry[O]
	bySub   map[uint64]*dedupEntry[O]
	nextKey uint64
	nextSub uint64
	hits    uint64 // subscriptions that reused an already-compiled query
	subs    int    // live subscriptions across all entries
}

type dedupEntry[O comparable] struct {
	canon  string
	key    uint64
	shared bool // indexed in byCanon (false when dedup is disabled)
	pinned bool // boot/snapshot query: kept compiled with zero subscriptions
	subs   map[uint64]dedupSub[O]
}

type dedupSub[O comparable] struct {
	owner   O
	durable bool
}

// NewDedup returns an empty registry.
func NewDedup[O comparable]() *Dedup[O] {
	return &Dedup[O]{
		byCanon: make(map[string]*dedupEntry[O]),
		byKey:   make(map[uint64]*dedupEntry[O]),
		bySub:   make(map[uint64]*dedupEntry[O]),
	}
}

// Resolve returns the key of the already-registered shared entry for canon,
// if any.
func (d *Dedup[O]) Resolve(canon string) (uint64, bool) {
	d.mu.RLock()
	e, ok := d.byCanon[canon]
	d.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return e.key, true
}

// Register creates a new entry for canon and returns its stable key. The
// caller compiles the machine query first and registers on success. With
// shared=false the entry is not indexed by canonical text, so later
// subscriptions never coalesce onto it — the naive, dedup-disabled mode.
func (d *Dedup[O]) Register(canon string, shared bool) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := d.nextKey
	d.nextKey++
	e := &dedupEntry[O]{canon: canon, key: key, shared: shared, subs: make(map[uint64]dedupSub[O])}
	d.byKey[key] = e
	if shared {
		d.byCanon[canon] = e
	}
	return key
}

// Pin marks the entry as a boot-time query that stays compiled (and keeps
// matching) even with zero subscriptions, mirroring pre-dedup broker
// behavior for InitialQueries and snapshot warm starts.
func (d *Dedup[O]) Pin(key uint64) {
	d.mu.Lock()
	if e := d.byKey[key]; e != nil {
		e.pinned = true
	}
	d.mu.Unlock()
}

// Subscribe attaches a subscription to the entry and returns its id. reused
// reports whether the entry already had subscriptions or a pin — i.e. the
// subscription rode on an existing compiled query (a dedup hit is counted
// only when the entry is shared).
func (d *Dedup[O]) Subscribe(key uint64, owner O, durable bool) (subID uint64, reused bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.byKey[key]
	if e == nil {
		panic(fmt.Sprintf("workload: Subscribe on unknown key %d", key))
	}
	reused = e.pinned || len(e.subs) > 0
	if reused && e.shared {
		d.hits++
	}
	subID = d.nextSub
	d.nextSub++
	e.subs[subID] = dedupSub[O]{owner: owner, durable: durable}
	d.bySub[subID] = e
	d.subs++
	return subID, reused
}

// Unsubscribe detaches subID, verifying it belongs to owner. last is true
// when the entry has no remaining subscriptions and no pin — the caller must
// then release the machine query; the entry is already removed.
func (d *Dedup[O]) Unsubscribe(subID uint64, owner O) (key uint64, last bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.bySub[subID]
	if e == nil {
		return 0, false, fmt.Errorf("unknown subscription id %d", subID)
	}
	if s := e.subs[subID]; s.owner != owner {
		return 0, false, fmt.Errorf("subscription id %d not owned by caller", subID)
	}
	d.dropSubLocked(e, subID)
	if len(e.subs) == 0 && !e.pinned {
		d.removeEntryLocked(e)
		return e.key, true, nil
	}
	return e.key, false, nil
}

// UnsubscribeOwner detaches every subscription held by owner (connection
// teardown) and returns the keys whose entries became empty and were
// removed — the caller releases those machine queries.
func (d *Dedup[O]) UnsubscribeOwner(owner O) (released []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for subID, e := range d.bySub {
		if e.subs[subID].owner != owner {
			continue
		}
		d.dropSubLocked(e, subID)
		if len(e.subs) == 0 && !e.pinned {
			d.removeEntryLocked(e)
			released = append(released, e.key)
		}
	}
	return released
}

func (d *Dedup[O]) dropSubLocked(e *dedupEntry[O], subID uint64) {
	delete(e.subs, subID)
	delete(d.bySub, subID)
	d.subs--
}

func (d *Dedup[O]) removeEntryLocked(e *dedupEntry[O]) {
	delete(d.byKey, e.key)
	if e.shared && d.byCanon[e.canon] == e {
		delete(d.byCanon, e.canon)
	}
}

// Fanout visits every subscription attached to each key, under one read
// lock. keys may contain keys that no longer exist (a match computed on an
// older workload generation); those are skipped. The per-key pinned flag
// lets the caller count boot queries with no subscribers as matches, which
// is what the pre-dedup broker reported.
func (d *Dedup[O]) Fanout(keys []uint64, visit func(key uint64, pinned bool, nsubs int, subID uint64, owner O, durable bool)) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, key := range keys {
		e := d.byKey[key]
		if e == nil {
			continue
		}
		if len(e.subs) == 0 {
			if e.pinned {
				var zeroSub uint64
				var zeroOwner O
				visit(key, true, 0, zeroSub, zeroOwner, false)
			}
			continue
		}
		for subID, s := range e.subs {
			visit(key, e.pinned, len(e.subs), subID, s.owner, s.durable)
		}
	}
}

// OwnerSubs returns the subscription ids owner holds on the given keys,
// filtered to durable or ephemeral subscriptions.
func (d *Dedup[O]) OwnerSubs(keys []uint64, owner O, durable bool) []uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []uint64
	for _, key := range keys {
		e := d.byKey[key]
		if e == nil {
			continue
		}
		for subID, s := range e.subs {
			if s.owner == owner && s.durable == durable {
				out = append(out, subID)
			}
		}
	}
	return out
}

// SubCanon returns the canonical filter text behind a live subscription.
func (d *Dedup[O]) SubCanon(subID uint64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e := d.bySub[subID]
	if e == nil {
		return "", false
	}
	return e.canon, true
}

// UniqueQueries returns the number of live entries — compiled machine
// queries the registry is sharing.
func (d *Dedup[O]) UniqueQueries() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byKey)
}

// Subscriptions returns the number of live subscriptions across all entries.
func (d *Dedup[O]) Subscriptions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.subs
}

// Hits returns the number of subscriptions that coalesced onto an
// already-compiled shared query.
func (d *Dedup[O]) Hits() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.hits
}

// Canons returns the canonical text of every live entry keyed by entry key.
// Used for workload-level analysis (subsumption metrics) and debugging.
func (d *Dedup[O]) Canons() map[uint64]string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[uint64]string, len(d.byKey))
	for k, e := range d.byKey {
		out[k] = e.canon
	}
	return out
}
