package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/obs"
)

// Config configures a Gate.
type Config struct {
	// Addr is the subscriber-facing listen address ("" = 127.0.0.1:0).
	Addr string
	// Nodes is the static cluster membership (xpushserve addresses).
	Nodes []string
	// VirtualNodes is the ring's per-node point count (0 = default).
	VirtualNodes int
	// MetricsAddr, when non-empty, serves /metrics, /healthz and
	// /debug/cluster on that address.
	MetricsAddr string
	// Client configures every node-facing connection (downstream
	// subscription conns and the pool's publish conns). Timeout also bounds
	// a fan-out publish's wait for all node acks (defaulted to 10s).
	Client client.Options
	// Backoff shapes the pool's reconnect schedule.
	Backoff client.Backoff
	// PingInterval is the pool's health-check cadence (0 = default).
	PingInterval time.Duration
	// PublishWindow bounds each subscriber connection's in-flight
	// PUBLISH_ASYNC documents and each node pipeline's window (0 = 256).
	PublishWindow int
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) publishWindow() int {
	if c.PublishWindow > 0 {
		return c.PublishWindow
	}
	return 256
}

func (c *Config) publishTimeout() time.Duration {
	if c.Client.Timeout > 0 {
		return c.Client.Timeout
	}
	return 10 * time.Second
}

// Gate is the cluster ingress: it terminates subscriber connections
// speaking the ordinary framed protocol, routes each subscription to the
// ring owner of its canonical filter text (durable subscriptions by
// durable name), fans publishes out to every node owning at least one live
// filter, merges the nodes' delivery streams back per subscriber, and
// aggregates publish acks so a publish acks only once every owning node
// has. To the client a gate is indistinguishable from one big xpushserve.
type Gate struct {
	cfg  Config
	ring *Ring
	pool *Pool
	ln   net.Listener
	hln  net.Listener
	hsrv *http.Server
	reg  *obs.Registry

	mu     sync.Mutex
	conns  map[*gconn]struct{}
	down   map[string]bool // nodes proven down (OnDown fired, not yet back)
	closed bool
	wg     sync.WaitGroup

	pubs     map[string]*nodePub      // per-node publish plane (fixed keys)
	liveKeys map[string]*atomic.Int64 // per-node live subscription count

	fanout *obs.Histogram // nodes per publish fan-out

	mConns          atomic.Int64
	mSubs           atomic.Int64
	mPublishes      *obs.Counter
	mPublishErrs    *obs.Counter
	mDeliveriesFwd  *obs.Counter
	mAcksFwd        *obs.Counter
	mAcksDropped    *obs.Counter
	mFailovers      *obs.Counter
	mFailoverResubs *obs.Counter
	mFailoverDrops  *obs.Counter
}

// New starts a gate: it builds the ring, starts the node pool, binds the
// subscriber listener (and the metrics listener, if configured), and begins
// accepting. Node connections come up asynchronously; /healthz reports
// degraded until every node is connected.
func New(cfg Config) (*Gate, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g := &Gate{
		cfg:      cfg,
		ring:     ring,
		ln:       ln,
		conns:    map[*gconn]struct{}{},
		down:     map[string]bool{},
		pubs:     map[string]*nodePub{},
		liveKeys: map[string]*atomic.Int64{},
		fanout:   &obs.Histogram{},
		reg:      obs.NewRegistry(),
	}
	for _, n := range ring.Nodes() {
		g.liveKeys[n] = &atomic.Int64{}
		g.pubs[n] = newNodePub(n)
	}
	g.registerMetrics()
	g.pool = NewPool(ring.Nodes(), PoolOptions{
		Client:       cfg.Client,
		Backoff:      cfg.Backoff,
		PingInterval: cfg.PingInterval,
		OnUp:         g.onNodeUp,
		OnDown:       g.onNodeDown,
	})
	if cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			g.pool.Close()
			return nil, err
		}
		g.hln = hln
		mux := g.reg.NewMuxWithStatus(g.health)
		mux.HandleFunc("/debug/cluster", g.debugCluster)
		g.hsrv = &http.Server{Handler: mux}
		go g.hsrv.Serve(hln)
	}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the subscriber-facing listen address.
func (g *Gate) Addr() string { return g.ln.Addr().String() }

// MetricsAddr returns the metrics listen address ("" if not configured).
func (g *Gate) MetricsAddr() string {
	if g.hln == nil {
		return ""
	}
	return g.hln.Addr().String()
}

// Ring exposes the gate's ring (for tests and debug tooling).
func (g *Gate) Ring() *Ring { return g.ring }

func (g *Gate) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

func (g *Gate) acceptLoop() {
	defer g.wg.Done()
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			return
		}
		cn := newGconn(g, nc)
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			nc.Close()
			return
		}
		g.conns[cn] = struct{}{}
		g.mu.Unlock()
		g.mConns.Add(1)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			cn.serve()
			g.mu.Lock()
			delete(g.conns, cn)
			g.mu.Unlock()
			g.mConns.Add(-1)
		}()
	}
}

// isDown reports whether node has been proven down. Nodes that have never
// connected are treated as routable: static membership is assumed healthy
// until a live connection to it fails, so the gate can route before the
// pool's first connect completes.
func (g *Gate) isDown(node string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down[node]
}

// onNodeUp runs on the pool's manage goroutine with a freshly probed
// connection: attach the publish pipeline and clear the down mark.
func (g *Gate) onNodeUp(node string, c *client.Client) {
	np := g.pubs[node]
	pipe, err := c.PublishPipelined(g.cfg.publishWindow(), np.onResult)
	if err != nil {
		return // the connection is already dying; the pool will cycle it
	}
	np.attach(c, pipe)
	g.mu.Lock()
	delete(g.down, node)
	g.mu.Unlock()
	g.logf("cluster: node %s up", node)
}

// onNodeDown runs on the pool's manage goroutine after a node's connection
// died: mark it down, fail the publishes pending on it, and replay its
// subscriptions onto the ring's next owners.
func (g *Gate) onNodeDown(node string, err error) {
	g.mu.Lock()
	g.down[node] = true
	closed := g.closed
	conns := make([]*gconn, 0, len(g.conns))
	for cn := range g.conns {
		conns = append(conns, cn)
	}
	g.mu.Unlock()
	g.pubs[node].fail(fmt.Errorf("cluster: node %s down: %w", node, errOr(err)))
	if closed {
		return
	}
	g.mFailovers.Inc()
	g.logf("cluster: node %s down (%v); rerouting subscriptions", node, err)
	for _, cn := range conns {
		cn := cn
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			cn.rerouteNode(node, nil)
		}()
	}
}

func errOr(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("connection closed")
}

// pubTargets returns the nodes a publish must reach: every node owning at
// least one live filter and not proven down.
func (g *Gate) pubTargets() []string {
	nodes := g.ring.Nodes()
	targets := make([]string, 0, len(nodes))
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range nodes {
		if g.liveKeys[n].Load() > 0 && !g.down[n] {
			targets = append(targets, n)
		}
	}
	return targets
}

// fanPublish publishes doc to every target node and aggregates: the total
// match count across nodes, and the first per-node error. It blocks until
// all targets ack or the publish timeout expires.
func (g *Gate) fanPublish(doc []byte) (int, error) {
	targets := g.pubTargets()
	g.fanout.Observe(float64(len(targets)))
	g.mPublishes.Inc()
	if len(targets) == 0 {
		// No node owns a live filter: the document matches nothing.
		return 0, nil
	}
	agg := &pubAgg{remaining: len(targets), done: make(chan struct{})}
	for _, node := range targets {
		if err := g.pubs[node].publish(doc, agg.settle); err != nil {
			agg.settle(client.PublishResult{Err: err})
		}
	}
	t := time.NewTimer(g.cfg.publishTimeout())
	defer t.Stop()
	select {
	case <-agg.done:
	case <-t.C:
		g.mPublishErrs.Inc()
		return 0, fmt.Errorf("cluster: publish timed out after %v waiting for node acks", g.cfg.publishTimeout())
	}
	agg.mu.Lock()
	defer agg.mu.Unlock()
	if agg.firstErr != nil {
		g.mPublishErrs.Inc()
		return 0, agg.firstErr
	}
	return agg.matches, nil
}

// pubAgg aggregates one fan-out publish's per-node outcomes.
type pubAgg struct {
	mu        sync.Mutex
	remaining int
	matches   int
	firstErr  error
	done      chan struct{}
}

// settle records one node's outcome; callable from node read loops.
func (a *pubAgg) settle(r client.PublishResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.remaining == 0 {
		return
	}
	a.matches += r.Matches
	if r.Err != nil && a.firstErr == nil {
		a.firstErr = r.Err
	}
	a.remaining--
	if a.remaining == 0 {
		close(a.done)
	}
}

// nodePub is one node's publish plane: the pool connection's pipeline plus
// the callbacks of publishes awaiting that node's ack. Acks may arrive on
// the read loop before the publisher registers its callback (the sequence
// number is only known after Publish returns), so early acks park in
// orphans until the registration catches up.
type nodePub struct {
	node string
	hist obs.Histogram // ack latency, seconds

	mu      sync.Mutex
	pipe    *client.Pipeline
	pending map[uint64]*pubWait
	orphans map[uint64]client.PublishResult
}

type pubWait struct {
	cb    func(client.PublishResult)
	start time.Time
}

func newNodePub(node string) *nodePub {
	return &nodePub{
		node:    node,
		pending: map[uint64]*pubWait{},
		orphans: map[uint64]client.PublishResult{},
	}
}

func (np *nodePub) attach(c *client.Client, pipe *client.Pipeline) {
	np.mu.Lock()
	np.pipe = pipe
	np.mu.Unlock()
}

// publish submits doc on the node's pipeline and registers cb for its ack.
func (np *nodePub) publish(doc []byte, cb func(client.PublishResult)) error {
	np.mu.Lock()
	pipe := np.pipe
	np.mu.Unlock()
	if pipe == nil {
		return fmt.Errorf("cluster: node %s not connected", np.node)
	}
	start := time.Now()
	seq, err := pipe.Publish(doc)
	if err != nil {
		return err
	}
	np.mu.Lock()
	if r, ok := np.orphans[seq]; ok {
		delete(np.orphans, seq)
		np.mu.Unlock()
		np.hist.Observe(time.Since(start).Seconds())
		cb(r)
		return nil
	}
	np.pending[seq] = &pubWait{cb: cb, start: start}
	np.mu.Unlock()
	return nil
}

// onResult runs on the node connection's read loop for every ack.
func (np *nodePub) onResult(r client.PublishResult) {
	np.mu.Lock()
	w, ok := np.pending[r.Seq]
	if ok {
		delete(np.pending, r.Seq)
	} else {
		np.orphans[r.Seq] = r
	}
	np.mu.Unlock()
	if ok {
		np.hist.Observe(time.Since(w.start).Seconds())
		w.cb(r)
	}
}

// fail detaches the pipeline and fails every pending publish, so fan-out
// publishers waiting on a dead node unblock with an error instead of
// timing out.
func (np *nodePub) fail(err error) {
	np.mu.Lock()
	np.pipe = nil
	pending := np.pending
	np.pending = map[uint64]*pubWait{}
	np.orphans = map[uint64]client.PublishResult{}
	np.mu.Unlock()
	for _, w := range pending {
		w.cb(client.PublishResult{Err: err})
	}
}

// health backs /healthz: degraded while any node lacks a live connection.
func (g *Gate) health() (bool, string) {
	for _, n := range g.ring.Nodes() {
		if !g.pool.Up(n) {
			return false, fmt.Sprintf("degraded: node %s not connected", n)
		}
	}
	return true, "ok"
}

func (g *Gate) registerMetrics() {
	r := g.reg
	g.mPublishes = r.Counter("xpushgate_publishes_total", "Documents accepted for fan-out publish.")
	g.mPublishErrs = r.Counter("xpushgate_publish_errors_total", "Fan-out publishes that failed or timed out.")
	g.mDeliveriesFwd = r.Counter("xpushgate_deliveries_forwarded_total", "Delivery frames forwarded from nodes to subscribers.")
	g.mAcksFwd = r.Counter("xpushgate_acks_forwarded_total", "Durable acks forwarded to the owning node.")
	g.mAcksDropped = r.Counter("xpushgate_acks_dropped_total", "Durable acks dropped because their offset was outside the current node's forwarded window (stale after failover).")
	g.mFailovers = r.Counter("xpushgate_failovers_total", "Node-down events that triggered subscription rerouting.")
	g.mFailoverResubs = r.Counter("xpushgate_failover_resubscribes_total", "Subscriptions successfully replayed onto a surviving node.")
	g.mFailoverDrops = r.Counter("xpushgate_failover_dropped_subscriptions_total", "Subscriptions dropped because no surviving node could take them.")
	r.GaugeFunc("xpushgate_connections", "Open subscriber connections.", func() float64 { return float64(g.mConns.Load()) })
	r.GaugeFunc("xpushgate_subscriptions", "Live subscriptions across all subscriber connections.", func() float64 { return float64(g.mSubs.Load()) })
	r.GaugeVecFunc("xpushgate_node_up", "Per-node connectivity (1 = live pool connection).", func() []obs.Labeled {
		nodes := g.ring.Nodes()
		out := make([]obs.Labeled, 0, len(nodes))
		for _, n := range nodes {
			v := 0.0
			if g.pool.Up(n) {
				v = 1
			}
			out = append(out, obs.Labeled{Labels: fmt.Sprintf("node=%q", n), Value: v})
		}
		return out
	})
	r.GaugeVecFunc("xpushgate_node_live_keys", "Per-node live subscription count (publish fan-out skips zero).", func() []obs.Labeled {
		nodes := g.ring.Nodes()
		out := make([]obs.Labeled, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, obs.Labeled{Labels: fmt.Sprintf("node=%q", n), Value: float64(g.liveKeys[n].Load())})
		}
		return out
	})
	r.HistogramFunc("xpushgate_publish_fanout_nodes", "Nodes per publish fan-out (bucket bounds are generic; read _sum/_count for the mean).", g.fanout.Snapshot)
	r.SummaryVecFunc("xpushgate_node_ack_latency_seconds", "Per-node publish ack latency.", nil, func() []obs.LabeledSnapshot {
		nodes := g.ring.Nodes()
		out := make([]obs.LabeledSnapshot, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, obs.LabeledSnapshot{Labels: fmt.Sprintf("node=%q", n), Snap: g.pubs[n].hist.Snapshot()})
		}
		return out
	})
}

// debugCluster serves /debug/cluster: per-node health, live-key counts and
// gate totals as JSON.
func (g *Gate) debugCluster(w http.ResponseWriter, req *http.Request) {
	type nodeInfo struct {
		NodeStatus
		LiveKeys int64 `json:"live_keys"`
	}
	snap := g.pool.Snapshot()
	nodes := make([]nodeInfo, 0, len(snap))
	for _, ns := range snap {
		nodes = append(nodes, nodeInfo{NodeStatus: ns, LiveKeys: g.liveKeys[ns.Node].Load()})
	}
	out := struct {
		Nodes         []nodeInfo `json:"nodes"`
		Connections   int64      `json:"connections"`
		Subscriptions int64      `json:"subscriptions"`
		Failovers     int64      `json:"failovers"`
		VirtualNodes  int        `json:"virtual_nodes"`
	}{nodes, g.mConns.Load(), g.mSubs.Load(), g.mFailovers.Value(), len(g.ring.points) / len(g.ring.nodes)}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// Close stops accepting, tears down every subscriber connection, the node
// pool and the metrics listener, and waits for all gate goroutines.
func (g *Gate) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]*gconn, 0, len(g.conns))
	for cn := range g.conns {
		conns = append(conns, cn)
	}
	g.mu.Unlock()
	g.ln.Close()
	for _, cn := range conns {
		cn.shutdown()
	}
	g.pool.Close()
	if g.hsrv != nil {
		g.hsrv.Close()
	}
	g.wg.Wait()
	return nil
}
