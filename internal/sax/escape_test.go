package sax

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: escaping then parsing recovers the original text, for both
// element content and attribute values.
func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// The XML data model cannot represent most control characters;
		// restrict to printable-ish content the generators produce.
		clean := make([]rune, 0, len(s))
		for _, r := range s {
			if r == '�' || r < 0x20 && r != '\t' && r != '\n' {
				continue
			}
			clean = append(clean, r)
		}
		text := string(clean)
		doc := fmt.Sprintf(`<a x="%s">%s</a>`, EscapeAttr(text), EscapeText(text))
		var c Collector
		if err := Parse([]byte(doc), &c); err != nil {
			t.Logf("parse failed for %q: %v", text, err)
			return false
		}
		var gotAttr, gotText string
		for i, e := range c.Events {
			if e.Kind == StartElement && e.Name == "@x" {
				gotAttr = c.Events[i+1].Data
			}
			if e.Kind == Text && i > 0 && c.Events[i-1].Kind != StartElement {
				gotText = e.Data
			}
		}
		// Text events inside <a> follow </@x>; find the element text.
		for i, e := range c.Events {
			if e.Kind == EndElement && e.Name == "@x" && i+1 < len(c.Events) &&
				c.Events[i+1].Kind == Text {
				gotText = c.Events[i+1].Data
			}
		}
		if gotAttr != text {
			t.Logf("attr mismatch: %q -> %q", text, gotAttr)
			return false
		}
		// Whitespace-only element text is dropped by design.
		if isAllSpace(text) {
			return true
		}
		if gotText != text {
			t.Logf("text mismatch: %q -> %q", text, gotText)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func isAllSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isSpace(s[i]) {
			return false
		}
	}
	return true
}

func TestEscapeBasics(t *testing.T) {
	if EscapeText("a<b&c>d") != "a&lt;b&amp;c&gt;d" {
		t.Errorf("EscapeText: %q", EscapeText("a<b&c>d"))
	}
	if EscapeText("plain") != "plain" {
		t.Error("plain must pass through")
	}
	if EscapeAttr(`say "hi"`) != "say &quot;hi&quot;" {
		t.Errorf("EscapeAttr: %q", EscapeAttr(`say "hi"`))
	}
}
