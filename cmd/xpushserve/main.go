// Command xpushserve runs the XPush broker: subscribers register XPath
// filters over the framed TCP protocol, publishers send XML documents, and
// every document is forwarded to the subscribers whose filters match — the
// paper's message-routing application (Sec. 1) as a long-running service.
//
// Usage:
//
//	xpushserve [-addr :9310] [-metrics-addr :9311] [-debug-addr addr]
//	           [-queries filters.txt] [-backend engine|pool|sharded]
//	           [-workers n] [-policy drop-oldest|drop-newest|block|disconnect]
//	           [-queue-depth 128] [-block-deadline 1s]
//	           [-max-conns 0] [-max-doc-bytes 0] [-read-timeout 0]
//	           [-write-timeout 0] [-snapshot state.xpw] [-snapshot-interval 0]
//	           [-drain-timeout 10s]
//	           [-wal-dir dir] [-fsync always|interval|never]
//	           [-fsync-interval 100ms] [-wal-segment-bytes 67108864]
//	           [-wal-batch-records 0] [-wal-batch-wait 0]
//	           [-publish-window 0] [-retention 0] [-retention-bytes 0]
//	           [-trace-sample 0] [-trace-slow 0] [-trace-out trace.json]
//	           [-topdown] [-order] [-early] [-train] [-dtd schema.dtd]
//	           [-strict] [-maxstates 0] [-version]
//
// With -wal-dir the broker is durable: every published document is appended
// to a write-ahead log before fan-out, and durable subscribers (client
// SubscribeDurable) replay unacknowledged documents from their persisted
// cursor on reconnect — at-least-once delivery. -fsync trades publish
// latency against the crash-loss window; -retention / -retention-bytes bound
// the log.
//
// -trace-sample 1000 traces one of every 1000 published documents end to end
// (PUBLISH receive, WAL append and fsync wait, filtering with per-layer
// timings and machine telemetry, per-subscriber queue wait, DELIVER write);
// -trace-slow 50ms additionally captures every document slower than the
// threshold regardless of sampling. Traces are served at -debug-addr's
// /debug/traces (next to /debug/machine, /debug/queries and
// /debug/pprof/*), and -trace-out writes everything retained at shutdown
// as a Chrome trace_event file — load it at ui.perfetto.dev or
// chrome://tracing. With both tracing flags zero the publish hot path is
// unaffected.
//
// Tracing also feeds the per-query cost profiler: every traced document's
// filter time, machine states and fan-out are attributed to the canonical
// queries it matched, ranked at /debug/queries and exported as top-K
// xpush_query_* metric series — the answer to "which subscription is
// expensive?".
//
// On SIGTERM or SIGINT the broker drains gracefully: it stops accepting,
// rejects new publishes, flips /healthz to not-ready, flushes every
// subscriber's queued deliveries (bounded by -drain-timeout), writes a
// final snapshot when -snapshot is set, and exits. With -snapshot, a
// restart warm-starts from the persisted workload and machine state.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	xpushstream "repro"
	"repro/server"
	"repro/wal"
)

// options carries the non-Config outputs of flag parsing.
type options struct {
	drain    time.Duration
	version  bool
	wal      *wal.Log
	traceOut string
}

func main() {
	cfg, opts, err := buildConfig(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpushserve: %v\n", err)
		os.Exit(2)
	}
	if opts.version {
		fmt.Println(versionString())
		return
	}
	logger := log.New(os.Stderr, "xpushserve: ", log.LstdFlags)
	cfg.Logf = logger.Printf

	srv, err := server.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("serving on %s (backend=%s policy=%s queue-depth=%d)",
		srv.Addr(), cfg.Backend, cfg.Policy, cfg.QueueDepth)
	if srv.MetricsAddr() != "" {
		logger.Printf("metrics on http://%s/metrics", srv.MetricsAddr())
	}
	if srv.DebugAddr() != "" {
		logger.Printf("introspection on http://%s/debug/traces (+ /debug/machine, /debug/queries, /debug/pprof)", srv.DebugAddr())
	}
	if r := srv.Tracer(); r.Enabled() {
		logger.Printf("tracing: sample 1/%d, slow threshold %v", r.SampleEvery(), r.SlowThreshold())
	}
	if opts.wal != nil {
		st := opts.wal.Stats()
		logger.Printf("wal: %d segments, offsets [%d, %d)", st.Segments, st.FirstOffset, st.NextOffset)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	logger.Printf("%v: draining (timeout %v)", got, opts.drain)
	ctx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	err = srv.Shutdown(ctx)
	if opts.traceOut != "" {
		if werr := writeTraceFile(srv, opts.traceOut); werr != nil {
			logger.Printf("trace dump: %v", werr)
		} else {
			logger.Printf("traces written to %s", opts.traceOut)
		}
	}
	if opts.wal != nil {
		if werr := opts.wal.Close(); werr != nil {
			logger.Printf("wal close: %v", werr)
		}
	}
	if err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}

// writeTraceFile dumps every retained trace as a Chrome trace_event file.
func writeTraceFile(srv *server.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := srv.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// versionString reports the module version (from build info, "(devel)" for
// a plain `go build`) and the Go runtime.
func versionString() string {
	v := "(unknown)"
	if bi, ok := debug.ReadBuildInfo(); ok {
		v = bi.Main.Version
		if v == "" {
			v = "(devel)"
		}
	}
	return fmt.Sprintf("xpushserve %s %s %s/%s", v, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// buildConfig parses flags into a server configuration; factored out of
// main for testing. When -wal-dir is set the returned options carry the
// opened log; the caller owns closing it after the server shuts down.
func buildConfig(args []string) (server.Config, options, error) {
	fs := flag.NewFlagSet("xpushserve", flag.ContinueOnError)
	addr := fs.String("addr", ":9310", "data-plane listen address")
	metricsAddr := fs.String("metrics-addr", ":9311", "metrics listen address (empty disables /metrics)")
	debugAddr := fs.String("debug-addr", "", "introspection listen address: /debug/traces, /debug/machine, /debug/queries, /debug/pprof (empty disables; pprof exposes heap contents — bind to loopback)")
	traceSample := fs.Int("trace-sample", 0, "trace 1 of every N published documents end to end (0 disables sampling)")
	traceSlow := fs.Duration("trace-slow", 0, "capture every document slower than this end to end, regardless of sampling (0 disables)")
	traceOut := fs.String("trace-out", "", "write retained traces as a Chrome trace_event file on shutdown (view at ui.perfetto.dev)")
	queriesPath := fs.String("queries", "", "file with one initial XPath filter per line (warms the machine)")
	backend := fs.String("backend", "engine", "filter backend: engine, pool, or sharded")
	workers := fs.Int("workers", 0, "pool workers / shard count (0 = GOMAXPROCS)")
	policy := fs.String("policy", "drop-newest", "slow-subscriber backpressure: drop-oldest, drop-newest, block, or disconnect")
	queueDepth := fs.Int("queue-depth", 128, "per-subscriber delivery queue bound")
	blockDeadline := fs.Duration("block-deadline", time.Second, "max publisher wait for queue space under -policy block")
	maxConns := fs.Int("max-conns", 0, "concurrent connection limit (0 = unlimited)")
	maxDocBytes := fs.Int("max-doc-bytes", 0, "published document size bound in bytes (0 = 64 MiB)")
	readTimeout := fs.Duration("read-timeout", 0, "per-frame read deadline for connections without subscriptions (0 = none)")
	writeTimeout := fs.Duration("write-timeout", 0, "per-frame write deadline (0 = none)")
	snapshot := fs.String("snapshot", "", "workload snapshot path: warm-start on boot, checkpoint on drain")
	snapshotInterval := fs.Duration("snapshot-interval", 0, "periodic checkpoint interval (0 = only on drain)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown flush bound")
	walDir := fs.String("wal-dir", "", "write-ahead log directory: enables durable publish + durable subscriptions")
	fsync := fs.String("fsync", "interval", "wal fsync policy: always, interval, or never")
	fsyncInterval := fs.Duration("fsync-interval", 100*time.Millisecond, "wal fsync period under -fsync interval")
	segmentBytes := fs.Int64("wal-segment-bytes", 64<<20, "wal segment rotation size")
	retention := fs.Duration("retention", 0, "delete sealed wal segments older than this (0 = keep)")
	retentionBytes := fs.Int64("retention-bytes", 0, "delete oldest sealed wal segments past this total size (0 = keep)")
	batchRecords := fs.Int("wal-batch-records", 0, "max appends coalesced into one group-committed wal batch (0 = 1024)")
	batchWait := fs.Duration("wal-batch-wait", 0, "wal batch accumulation window (0 = adaptive from the fsync-latency EWMA under -fsync always; negative = commit immediately)")
	publishWindow := fs.Int("publish-window", 0, "per-connection PUBLISH_ASYNC in-flight window (0 = 256)")
	topdown := fs.Bool("topdown", false, "enable top-down pruning")
	order := fs.Bool("order", false, "enable the order optimization (needs -dtd)")
	early := fs.Bool("early", false, "enable early notification (implies -topdown)")
	train := fs.Bool("train", false, "warm the machine with synthetic training data (needs -dtd)")
	dtdPath := fs.String("dtd", "", "DTD file (enables -order and -train)")
	strict := fs.Bool("strict", false, "reject mixed element/text content")
	maxStates := fs.Int("maxstates", 0, "flush lazily built state tables past this count (0 = unlimited)")
	noDedup := fs.Bool("no-dedup", false, "disable workload deduplication: compile every subscription as its own machine query")
	consolidateLayers := fs.Int("consolidate-layers", 0, "consolidate the engine past this many COW layers (0 = 32, negative disables)")
	consolidateRemoved := fs.Int("consolidate-removed", 0, "consolidate the engine past this many removed query slots (0 = 256, negative disables)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return server.Config{}, options{}, err
	}
	if *version {
		return server.Config{}, options{version: true}, nil
	}

	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return server.Config{}, options{}, err
	}
	bk, err := server.ParseBackend(*backend)
	if err != nil {
		return server.Config{}, options{}, err
	}
	fpol, err := wal.ParseFsyncPolicy(*fsync)
	if err != nil {
		return server.Config{}, options{}, err
	}
	ecfg := xpushstream.Config{
		TopDownPruning:     *topdown,
		OrderOptimization:  *order,
		EarlyNotification:  *early,
		Training:           *train,
		StrictMixedContent: *strict,
		MaxStates:          *maxStates,
	}
	if *dtdPath != "" {
		text, err := os.ReadFile(*dtdPath)
		if err != nil {
			return server.Config{}, options{}, err
		}
		d, err := xpushstream.ParseDTD(string(text))
		if err != nil {
			return server.Config{}, options{}, err
		}
		ecfg.DTD = d
	}
	var initial []string
	if *queriesPath != "" {
		initial, err = readQueries(*queriesPath)
		if err != nil {
			return server.Config{}, options{}, err
		}
	}
	if *traceSample < 0 {
		return server.Config{}, options{}, fmt.Errorf("-trace-sample: must be >= 0, got %d", *traceSample)
	}
	cfg := server.Config{
		Addr:               *addr,
		MetricsAddr:        *metricsAddr,
		DebugAddr:          *debugAddr,
		TraceSample:        *traceSample,
		TraceSlow:          *traceSlow,
		Backend:            bk,
		Workers:            *workers,
		Engine:             ecfg,
		InitialQueries:     initial,
		Policy:             pol,
		QueueDepth:         *queueDepth,
		BlockDeadline:      *blockDeadline,
		MaxConns:           *maxConns,
		MaxDocBytes:        *maxDocBytes,
		ReadTimeout:        *readTimeout,
		WriteTimeout:       *writeTimeout,
		SnapshotPath:       *snapshot,
		SnapshotInterval:   *snapshotInterval,
		AsyncPublishWindow: *publishWindow,
		DedupDisabled:      *noDedup,
		ConsolidateLayers:  *consolidateLayers,
		ConsolidateRemoved: *consolidateRemoved,
	}
	opts := options{drain: *drainTimeout, traceOut: *traceOut}
	if *walDir != "" {
		if err := validateDir(*walDir); err != nil {
			return server.Config{}, options{}, fmt.Errorf("-wal-dir: %w", err)
		}
		l, err := wal.Open(wal.Options{
			Dir:             *walDir,
			SegmentBytes:    *segmentBytes,
			Fsync:           fpol,
			FsyncEvery:      *fsyncInterval,
			RetentionBytes:  *retentionBytes,
			RetentionAge:    *retention,
			MaxRecordBytes:  cfg.MaxDocBytes,
			BatchMaxRecords: *batchRecords,
			BatchMaxWait:    *batchWait,
		})
		if err != nil {
			return server.Config{}, options{}, err
		}
		cursors, err := wal.OpenCursorStore(filepath.Join(*walDir, "cursors"))
		if err != nil {
			l.Close()
			return server.Config{}, options{}, err
		}
		cfg.WAL = server.WrapWAL(l)
		cfg.Cursors = cursors
		opts.wal = l
	}
	return cfg, opts, nil
}

// validateDir creates dir if missing and fails fast when it is not a
// writable directory (probed with a throwaway temp file), so a misconfigured
// -wal-dir aborts startup instead of failing on the first publish.
func validateDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".probe-")
	if err != nil {
		return fmt.Errorf("not writable: %w", err)
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// readQueries loads one filter per line; blank lines and '#' comments are
// skipped.
func readQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}
