// Package workload generates synthetic XPath filter workloads against a
// dataset's DTD, modeled on the (modified) YFilter query generator the paper
// uses in Sec. 7: bushy query trees rather than left-linear ones, and atomic
// predicates drawn from data values that actually occur in the generated
// data instance, "ensuring that each predicate is true on at least some XML
// document". Knobs cover the paper's experimental axes: query count,
// predicates per query (1.15 and 10.45 in the paper's two workload
// families), and wildcard / descendant-axis probabilities (set to zero for
// the reported runs).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/datagen"
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// Params control workload generation.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumQueries is the workload size.
	NumQueries int
	// MeanPreds is the mean number of atomic predicates per query
	// (>= 1); per-query counts are 1 + Poisson(MeanPreds-1).
	MeanPreds float64
	// WildcardProb replaces a navigation label with * .
	WildcardProb float64
	// DescendantProb turns a navigation step into a descendant step.
	DescendantProb float64
	// NestedPredProb makes a predicate a two-level nested path
	// (bushy query trees).
	NestedPredProb float64
	// OrProb joins a predicate pair with or instead of and.
	OrProb float64
	// NotProb wraps a predicate in not(...).
	NotProb float64
	// StringFuncProb emits contains(...) predicates (extension).
	StringFuncProb float64
}

// Generate produces a deterministic workload for a dataset.
func Generate(ds *datagen.Dataset, p Params) []*xpath.Filter {
	g := &qgen{ds: ds, r: rand.New(rand.NewSource(p.Seed)), p: p}
	out := make([]*xpath.Filter, 0, p.NumQueries)
	for len(out) < p.NumQueries {
		q := g.query()
		f, err := xpath.Parse(q)
		if err != nil {
			// Generator invariant: queries always parse.
			panic(fmt.Sprintf("workload: generated unparsable query %q: %v", q, err))
		}
		out = append(out, f)
	}
	return out
}

// TotalAtomicPredicates sums the workload-size measure used on the paper's
// x-axes ("total number of atomic predicates").
func TotalAtomicPredicates(filters []*xpath.Filter) int {
	n := 0
	for _, f := range filters {
		n += f.CountAtomicPredicates()
	}
	return n
}

type qgen struct {
	ds *datagen.Dataset
	r  *rand.Rand
	p  Params
}

// query renders one random filter.
func (g *qgen) query() string {
	d := g.ds.DTD
	// Random navigation walk from the root.
	chain := []string{d.Root}
	for {
		children := elementChildren(d, chain[len(chain)-1])
		if len(children) == 0 {
			break
		}
		chain = append(chain, children[g.r.Intn(len(children))])
		// Bias toward mid-depth targets.
		if len(chain) >= 2 && g.r.Intn(3) == 0 {
			break
		}
	}
	// Prefer targets with leaf children to attach predicates to.
	for len(chain) > 1 && len(predTargets(d, chain[len(chain)-1])) == 0 && !d.HasText(chain[len(chain)-1]) {
		chain = chain[:len(chain)-1]
	}
	var sb strings.Builder
	for i, label := range chain {
		axis := "/"
		if g.r.Float64() < g.p.DescendantProb {
			axis = "//"
		}
		sb.WriteString(axis)
		if i > 0 && g.r.Float64() < g.p.WildcardProb {
			sb.WriteString("*")
		} else {
			sb.WriteString(label)
		}
	}
	target := chain[len(chain)-1]
	n := g.predCount()
	if n > 0 {
		sb.WriteString("[")
		for i := 0; i < n; i++ {
			if i > 0 {
				if g.r.Float64() < g.p.OrProb {
					sb.WriteString(" or ")
				} else {
					sb.WriteString(" and ")
				}
			}
			g.writePredicate(&sb, target)
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// predCount draws 1 + Poisson(MeanPreds-1) (Knuth's method).
func (g *qgen) predCount() int {
	lambda := g.p.MeanPreds - 1
	if lambda <= 0 {
		return 1
	}
	l := math.Exp(-lambda)
	k := 0
	prod := 1.0
	for {
		prod *= g.r.Float64()
		if prod <= l {
			break
		}
		k++
		if k > 200 {
			break
		}
	}
	return 1 + k
}

// predTargets lists the leaf predicate anchors of an element: PCDATA
// children and attributes.
func predTargets(d *dtd.DTD, name string) []string {
	el := d.Element(name)
	if el == nil {
		return nil
	}
	var out []string
	for _, a := range el.Attrs {
		out = append(out, "@"+a.Name)
	}
	for _, c := range d.Children(name) {
		if d.HasText(c) {
			out = append(out, c)
		}
	}
	return out
}

// elementChildren lists non-PCDATA children (navigation continues there).
func elementChildren(d *dtd.DTD, name string) []string {
	var out []string
	for _, c := range d.Children(name) {
		if el := d.Element(c); el != nil && el.Kind == dtd.Children {
			out = append(out, c)
		}
	}
	return out
}

// writePredicate emits one atomic (or nested/negated) predicate anchored at
// the target element.
func (g *qgen) writePredicate(sb *strings.Builder, target string) {
	if g.r.Float64() < g.p.NotProb {
		sb.WriteString("not(")
		defer sb.WriteString(")")
	}
	d := g.ds.DTD
	if g.r.Float64() < g.p.NestedPredProb {
		// Bushy: descend one element level, predicate inside.
		inner := elementChildren(d, target)
		if len(inner) > 0 {
			child := inner[g.r.Intn(len(inner))]
			if ts := predTargets(d, child); len(ts) > 0 {
				sb.WriteString(child)
				sb.WriteString("[")
				g.writeAtom(sb, ts[g.r.Intn(len(ts))])
				sb.WriteString("]")
				return
			}
		}
	}
	ts := predTargets(d, target)
	if len(ts) == 0 {
		// Text-only element: compare its own text.
		g.writeAtom(sb, ".")
		return
	}
	g.writeAtom(sb, ts[g.r.Intn(len(ts))])
}

// writeAtom emits anchor OP const, drawing the constant from the anchor's
// value pool so the predicate is satisfiable on the data.
func (g *qgen) writeAtom(sb *strings.Builder, anchor string) {
	poolLabel := anchor
	if anchor == "." {
		poolLabel = "" // generic
	}
	pool := g.ds.Pool(poolLabel)
	val := pool.Sample(g.r)
	numeric := pool.Kind == datagen.IntPool
	if g.p.StringFuncProb > 0 && !numeric && g.r.Float64() < g.p.StringFuncProb {
		fmt.Fprintf(sb, "contains(%s, %q)", anchor, prefixOf(val))
		return
	}
	op := "="
	if numeric && g.r.Float64() < 0.3 {
		ops := []string{"<", "<=", ">", ">=", "!="}
		op = ops[g.r.Intn(len(ops))]
	}
	if numeric {
		fmt.Fprintf(sb, "%s%s%s", anchor, op, val)
	} else {
		fmt.Fprintf(sb, "%s%s%q", anchor, op, val)
	}
}

func prefixOf(s string) string {
	if len(s) > 3 {
		return s[:3]
	}
	return s
}
