package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBuildConfigNodesFlag(t *testing.T) {
	cfg, opts, err := buildConfig([]string{"-nodes", "a:9310, b:9310", "-vnodes", "64", "-request-timeout", "3s"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.version {
		t.Fatal("version flag not set")
	}
	if len(cfg.Nodes) != 2 || cfg.Nodes[0] != "a:9310" || cfg.Nodes[1] != "b:9310" {
		t.Fatalf("Nodes = %v", cfg.Nodes)
	}
	if cfg.VirtualNodes != 64 {
		t.Fatalf("VirtualNodes = %d", cfg.VirtualNodes)
	}
	if cfg.Client.Timeout != 3*time.Second {
		t.Fatalf("Client.Timeout = %v", cfg.Client.Timeout)
	}
}

func TestBuildConfigNodesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts")
	os.WriteFile(path, []byte("# cluster\nn1:9310\nn2:9310\n"), 0o644)
	cfg, _, err := buildConfig([]string{"-nodes-file", path})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 2 {
		t.Fatalf("Nodes = %v", cfg.Nodes)
	}
}

func TestBuildConfigRejectsAmbiguousMembership(t *testing.T) {
	if _, _, err := buildConfig(nil); err == nil {
		t.Fatal("accepted no membership source")
	}
	if _, _, err := buildConfig([]string{"-nodes", "a:1", "-nodes-file", "x"}); err == nil {
		t.Fatal("accepted both membership sources")
	}
}

func TestBuildConfigVersion(t *testing.T) {
	_, opts, err := buildConfig([]string{"-version"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.version {
		t.Fatal("version flag lost")
	}
}
