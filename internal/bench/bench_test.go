package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
)

func smokeRunner(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return NewRunner(datagen.ProteinLike(), Scales["smoke"], &buf), &buf
}

func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep is seconds-long")
	}
	r, buf := smokeRunner(t)
	if err := r.All(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 5(a)", "Fig 8", "Fig 11(b)", "Abstract"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, " ?") {
		t.Errorf("unknown metric leaked:\n%s", out)
	}
}

func TestSweepCacheReuse(t *testing.T) {
	r, _ := smokeRunner(t)
	if err := r.Figure("5a"); err != nil {
		t.Fatal(err)
	}
	first := r.cache["q115"]
	if err := r.Figure("6a"); err != nil {
		t.Fatal(err)
	}
	if &r.cache["q115"][0] != &first[0] {
		t.Error("figures 5a and 6a must share one sweep")
	}
}

func TestWriteCSV(t *testing.T) {
	r, _ := smokeRunner(t)
	if err := r.Figure("5a"); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "sweep,series,x,") {
		t.Errorf("csv:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "q115,basic,") {
		t.Errorf("csv missing basic series:\n%s", lines[1])
	}
}

func TestUnknownFigure(t *testing.T) {
	r, _ := smokeRunner(t)
	if err := r.Figure("99z"); err == nil {
		t.Error("unknown figure must error")
	}
}

func TestShapeOptimizationsReduceStates(t *testing.T) {
	// The core qualitative claim of Figs. 6/7: on a predicate-heavy
	// workload, td-order reduces both the state count and the average
	// state size versus basic.
	ds := datagen.ProteinLike()
	rows, err := SweepQueries(ds, []int{300}, 10.45, 256<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, row := range rows {
		byName[row.Series] = row
	}
	basic, tdOrder := byName["basic"], byName["td-order"]
	if tdOrder.States >= basic.States {
		t.Errorf("td-order states %d !< basic %d", tdOrder.States, basic.States)
	}
	if tdOrder.AvgSize >= basic.AvgSize {
		t.Errorf("td-order avg size %.1f !< basic %.1f", tdOrder.AvgSize, basic.AvgSize)
	}
	// All variants agree on the number of matches (correctness across
	// optimization stacks on real workloads).
	for name, row := range byName {
		if name == "parse" {
			continue
		}
		if row.Matches != basic.Matches {
			t.Errorf("%s matches %d != basic %d", name, row.Matches, basic.Matches)
		}
	}
}

func TestShapeTheorem62(t *testing.T) {
	// Fig. 10(a)'s shape: with total atomic predicates fixed, more
	// predicates per query means fewer states (with order optimization).
	ds := datagen.ProteinLike()
	rows, err := SweepPreds(ds, []int{1, 10}, 2000, 256<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	states := map[float64]int{}
	for _, row := range rows {
		if row.Series == "td-order-train" {
			states[row.X] = row.States
		}
	}
	if states[10] >= states[1] {
		t.Errorf("k=10 states %d !< k=1 states %d", states[10], states[1])
	}
}

func TestShapeHitRatioRises(t *testing.T) {
	// Fig. 8's shape: the hit ratio climbs above 90% as data flows.
	ds := datagen.ProteinLike()
	rows, err := SweepData(ds, []int{400}, 256<<10, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.HitRatio < 0.9 {
		t.Errorf("final hit ratio %.3f < 0.9", last.HitRatio)
	}
	if rows[0].HitRatio > last.HitRatio {
		t.Errorf("hit ratio fell: %.3f -> %.3f", rows[0].HitRatio, last.HitRatio)
	}
}

func TestAbstractMeasurement(t *testing.T) {
	res, err := Abstract(datagen.ProteinLike(), 400, 1, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmMBPerSec <= 0 || res.ColdMBPerSec <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
	// The warm pass skips lazy state construction and should be at least
	// as fast; allow scheduler-noise slack so the check is not flaky
	// under load.
	if res.WarmMBPerSec < 0.5*res.ColdMBPerSec {
		t.Errorf("warm pass much slower than cold: warm %.2f vs cold %.2f",
			res.WarmMBPerSec, res.ColdMBPerSec)
	}
}

func TestScalesDefined(t *testing.T) {
	for _, name := range []string{"smoke", "default", "paper"} {
		s, ok := Scales[name]
		if !ok {
			t.Fatalf("scale %s missing", name)
		}
		if len(s.QueryCounts) == 0 || s.DataBytes == 0 || s.Chunks == 0 {
			t.Errorf("scale %s incomplete: %+v", name, s)
		}
	}
	if Scales["paper"].QueryCounts[3] != 200000 {
		t.Error("paper scale must reach 200k queries")
	}
}
