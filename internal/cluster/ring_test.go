package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// genKeys builds n canonical-filter-shaped keys from seeded randomness, so
// every run exercises the same population (the property tests must be
// deterministic in CI).
func genKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "dept", "emp", "name", "protein", "seq", "org", "ref"}
	keys := make([]string, 0, n)
	seen := map[string]bool{}
	for len(keys) < n {
		var k string
		switch rng.Intn(4) {
		case 0:
			k = fmt.Sprintf("//%s[%s=\"%d\"]", names[rng.Intn(len(names))], names[rng.Intn(len(names))], rng.Intn(1000))
		case 1:
			k = fmt.Sprintf("/%s/%s", names[rng.Intn(len(names))], names[rng.Intn(len(names))])
		case 2:
			k = fmt.Sprintf("//%s//%s[@id=\"%d\"]", names[rng.Intn(len(names))], names[rng.Intn(len(names))], rng.Intn(10000))
		default:
			k = fmt.Sprintf("/%s[%s][%s=\"%d\"]", names[rng.Intn(len(names))], names[rng.Intn(len(names))], names[rng.Intn(len(names))], rng.Intn(100))
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func nodeAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:9310", i+1)
	}
	return out
}

// TestRingBalance is the satellite's balance property: 1k canonical keys
// spread within +-25% of ideal across 4 nodes.
func TestRingBalance(t *testing.T) {
	const keys = 1000
	nodes := nodeAddrs(4)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range genKeys(1, keys) {
		counts[r.Owner(k)]++
	}
	ideal := float64(keys) / float64(len(nodes))
	lo, hi := int(ideal*0.75), int(ideal*1.25)
	for _, n := range nodes {
		if c := counts[n]; c < lo || c > hi {
			t.Errorf("node %s owns %d keys, outside [%d, %d] (ideal %.0f)", n, c, lo, hi, ideal)
		}
	}
	if t.Failed() {
		t.Logf("distribution: %v", counts)
	}
}

// TestRingLeaveMovement pins the consistent-hash contract on node removal:
// only keys owned by the departed node change owner, and that is ~K/N keys.
func TestRingLeaveMovement(t *testing.T) {
	const keyCount = 1000
	nodes := nodeAddrs(4)
	full, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := genKeys(2, keyCount)
	for _, removed := range nodes {
		var rest []string
		for _, n := range nodes {
			if n != removed {
				rest = append(rest, n)
			}
		}
		shrunk, err := NewRing(rest, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), shrunk.Owner(k)
			if before == after {
				continue
			}
			moved++
			if before != removed {
				t.Fatalf("key %q moved %s -> %s, but %s is the node that left", k, before, after, removed)
			}
		}
		// The moved set is exactly the removed node's ownership share:
		// bounded by the balance property's +25% envelope.
		if max := keyCount / len(nodes) * 5 / 4; moved > max {
			t.Errorf("removing %s moved %d keys, want <= ~K/N = %d", removed, moved, max)
		}
		if moved == 0 {
			t.Errorf("removing %s moved no keys — ring is not partitioning", removed)
		}
	}
}

// TestRingJoinMovement is the mirror property: a joining node only claims
// keys (every moved key moves TO it), again ~K/N of them.
func TestRingJoinMovement(t *testing.T) {
	const keyCount = 1000
	nodes := nodeAddrs(5)
	small, err := NewRing(nodes[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	joined := nodes[4]
	moved := 0
	for _, k := range genKeys(3, keyCount) {
		before, after := small.Owner(k), grown.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != joined {
			t.Fatalf("key %q moved %s -> %s, but the joining node is %s", k, before, after, joined)
		}
	}
	if max := keyCount / 5 * 5 / 4; moved > max {
		t.Errorf("join moved %d keys, want <= ~K/N = %d", moved, max)
	}
	if moved == 0 {
		t.Error("join moved no keys")
	}
}

// TestRingDeterminism: ownership is a function of the member set, not the
// order the members were configured in.
func TestRingDeterminism(t *testing.T) {
	nodes := nodeAddrs(4)
	a, _ := NewRing(nodes, 64)
	b, _ := NewRing([]string{nodes[2], nodes[0], nodes[3], nodes[1]}, 64)
	for _, k := range genKeys(4, 200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner depends on configuration order (%s vs %s)", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingOwnerAvoid: the failover walk skips avoided nodes and fails only
// when every member is down.
func TestRingOwnerAvoid(t *testing.T) {
	nodes := nodeAddrs(3)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range genKeys(5, 100) {
		primary := r.Owner(k)
		next, ok := r.OwnerAvoid(k, func(n string) bool { return n == primary })
		if !ok {
			t.Fatalf("key %q: no owner with one of three nodes down", k)
		}
		if next == primary {
			t.Fatalf("key %q: avoid did not skip the down node", k)
		}
		if _, ok := r.OwnerAvoid(k, func(string) bool { return true }); ok {
			t.Fatalf("key %q: found an owner with every node down", k)
		}
	}
}

func TestNewRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing accepted an empty member set")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Fatal("NewRing accepted an empty node address")
	}
}

func TestParseNodes(t *testing.T) {
	got, err := ParseNodes(" a:1, b:2 ,a:1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("ParseNodes = %v", got)
	}
	for _, bad := range []string{"", " , ", "a:1,,b:2"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Fatalf("ParseNodes(%q) accepted", bad)
		}
	}
}

func TestReadNodesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts")
	content := "# filter tier\n10.0.0.1:9310\n\n10.0.0.2:9310  # node B\n10.0.0.1:9310\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNodesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "10.0.0.1:9310" || got[1] != "10.0.0.2:9310" {
		t.Fatalf("ReadNodesFile = %v", got)
	}
	empty := filepath.Join(t.TempDir(), "empty")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := ReadNodesFile(empty); err == nil {
		t.Fatal("ReadNodesFile accepted a file with no nodes")
	}
}
