// Package cluster makes N unmodified xpushserve nodes look like one broker:
// a consistent-hash ring partitions the filter workload across nodes by
// canonical filter text (durable subscriptions by durable name, so their
// replay cursors stay node-local), a health-checked connection pool keeps a
// publish/control channel to every node, and the Gate terminates subscriber
// connections, routing each subscription to its owning node and merging the
// nodes' delivery streams back.
//
// The key insight is that it is the *filters* that shard, not the documents:
// the XPush machine's lazy-DFA state is per-workload, so giving each node a
// slice of the filter set keeps each node's machine small and warm, while
// every published document fans out only to the nodes that own at least one
// live filter.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-node virtual point count used when a Ring
// is built with vnodes <= 0. 256 points per node keeps the ownership split
// of a uniformly hashed key population within a few percent of ideal.
const DefaultVirtualNodes = 256

// Ring is an immutable consistent-hash ring mapping stable string keys
// (canonical filter text, durable names) to member nodes. Each node
// contributes vnodes virtual points; a key is owned by the node of the
// first point at or clockwise after the key's hash. Because points are
// per-node, removing a node only reassigns the keys it owned (to each key's
// next owner), and adding one only claims keys from its new points'
// predecessors — the consistent-hashing contract the failover path and the
// property tests pin.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the ring and the index of
// the member that owns it.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring over the given nodes (deduplicated, order
// irrelevant) with vnodes virtual points each (<= 0 = DefaultVirtualNodes).
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	var members []string
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		members = append(members, n)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(members) // point layout independent of config order
	r := &Ring{nodes: members, points: make([]ringPoint, 0, len(members)*vnodes)}
	var buf []byte
	for i, n := range members {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], n...)
			buf = append(buf, '#')
			buf = appendUint(buf, uint64(v))
			r.points = append(r.points, ringPoint{hash: hash64(buf), node: int32(i)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Nodes returns the ring's members in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key.
func (r *Ring) Owner(key string) string {
	node, _ := r.OwnerAvoid(key, nil)
	return node
}

// OwnerAvoid returns the first owner of key, walking clockwise past nodes
// for which avoid reports true (a down set). It reports false only when
// every member is avoided. A nil avoid never skips.
func (r *Ring) OwnerAvoid(key string, avoid func(node string) bool) (string, bool) {
	h := hash64String(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	tried := make(map[int32]bool, 2)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if tried[p.node] {
			continue
		}
		tried[p.node] = true
		n := r.nodes[p.node]
		if avoid == nil || !avoid(n) {
			return n, true
		}
		if len(tried) == len(r.nodes) {
			break
		}
	}
	return "", false
}

// hash64String hashes a key string (FNV-1a 64).
func hash64String(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// Finalize with a 64-bit mix (splitmix64): FNV alone clusters nearby
	// inputs, and ring balance depends on point/key hashes filling the
	// 64-bit space uniformly.
	return mix64(h)
}

func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return mix64(h)
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
