package load

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/datagen"
	"repro/internal/load/generator"
	"repro/internal/workload"
)

// Seed derivation: every random stream gets its own sub-seed so the streams
// are independent and each is reproducible regardless of how far the others
// were consumed.
const (
	seedFilters   = 1 // filter-pool generation
	seedAssign    = 2 // subscriber -> filter popularity draws
	seedDurable   = 3 // durable-subscriber selection
	seedDocs      = 4 // document-pool generation
	seedPublish   = 5 // publisher's per-document draws (class + doc)
	seedChurn     = 6 // churn engine's slot + filter draws
	seedReconnect = 7 // reconnect-storm connection draws
)

// SubSpec is one planned subscriber: which filter it holds, whether it is
// durable, and which connection slot carries it.
type SubSpec struct {
	Filter  int
	Durable bool
	Conn    int // index into the ephemeral or durable connection set
}

// Plan is a Spec deterministically materialized: the filter pool, every
// subscriber's assignment, and the padded document pool. Two BuildPlan
// calls with the same Spec produce identical Plans (and identical draw
// sequences from the pickers derived off it) — the reproducibility
// guarantee behind comparing runs across commits.
type Plan struct {
	Spec    Spec
	Dataset *datagen.Dataset

	// Filters is the distinct-filter pool (XPath source text).
	Filters []string
	// Subs holds one entry per subscriber.
	Subs []SubSpec
	// Docs is the document pool: for each size class (outer, in Spec
	// order), DocPool pre-padded documents.
	Docs [][][]byte

	// classWeights is the cumulative weight table for class draws.
	classWeights []int
	totalWeight  int
}

// BuildPlan materializes a validated spec.
func BuildPlan(spec Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ds, ok := datagen.ByName(spec.Dataset)
	if !ok {
		return nil, fmt.Errorf("load: unknown dataset %q", spec.Dataset)
	}
	p := &Plan{Spec: spec, Dataset: ds}

	// Filter pool: the repo's YFilter-style generator, one distinct filter
	// per pool slot.
	filters := workload.Generate(ds, workload.Params{
		Seed:           spec.Seed + seedFilters,
		NumQueries:     spec.Filters,
		MeanPreds:      spec.MeanPreds,
		NestedPredProb: 0.2,
	})
	p.Filters = make([]string, len(filters))
	for i, f := range filters {
		p.Filters[i] = f.Source
	}

	// Subscriber assignments: popularity draws the filter, an independent
	// stream draws durability, and connections are filled round-robin
	// within each class.
	pop, err := generator.New(spec.Popularity, int64(spec.Filters), spec.ZipfTheta, spec.Seed+seedAssign)
	if err != nil {
		return nil, err
	}
	durRand := rand.New(rand.NewSource(spec.Seed + seedDurable))
	p.Subs = make([]SubSpec, spec.Subscribers)
	nEph, nDur := 0, 0
	for i := range p.Subs {
		durable := durRand.Float64() < spec.DurableRatio
		sub := SubSpec{Filter: int(pop.Next()), Durable: durable}
		if durable {
			sub.Conn = nDur % spec.DurableConnections
			nDur++
		} else {
			sub.Conn = nEph % spec.Connections
			nEph++
		}
		p.Subs[i] = sub
	}

	// Document pool: DocPool documents per size class, padded with an XML
	// comment to the class size so "document size" is a controlled axis
	// (the filter machine skips comments; the broker forwards bytes
	// verbatim, so padding rides the whole pipeline).
	gen := datagen.NewGenerator(ds, spec.Seed+seedDocs)
	p.Docs = make([][][]byte, len(spec.DocSizes))
	for ci, class := range spec.DocSizes {
		p.Docs[ci] = make([][]byte, spec.DocPool)
		for di := range p.Docs[ci] {
			p.Docs[ci][di] = padDocument(gen.GenerateDocument(), class.Bytes)
		}
		p.classWeights = append(p.classWeights, p.totalWeight+class.Weight)
		p.totalWeight += class.Weight
	}
	return p, nil
}

// padDocument grows doc to at least target bytes by prepending one comment
// (documents already larger pass through untouched — size classes are
// floors, since a DTD-shaped document cannot be shrunk).
func padDocument(doc []byte, target int) []byte {
	const overhead = len("<!--->")
	pad := target - len(doc) - overhead - 1
	if pad <= 0 {
		return doc
	}
	var sb strings.Builder
	sb.Grow(target)
	sb.WriteString("<!--")
	for pad >= 8 {
		sb.WriteString("xpadxpad")
		pad -= 8
	}
	for ; pad > 0; pad-- {
		sb.WriteByte('x')
	}
	sb.WriteString("-->")
	sb.Write(doc)
	return []byte(sb.String())
}

// DurableName returns the persistent name for durable connection i. The
// broker scopes one durable name (and cursor) per connection — every
// durable filter on the connection shares its replay pump — so names are
// per-connection, deterministic across runs of the same spec, and a
// reconnecting run resumes the same cursors.
func (p *Plan) DurableName(conn int) string {
	return fmt.Sprintf("%s-s%d-c%03d", p.Spec.Name, p.Spec.Seed, conn)
}

// docPicker draws the publisher's document sequence: size class by weight,
// then a pool document, both from the seedPublish stream.
type docPicker struct {
	p *Plan
	r *rand.Rand
}

func (p *Plan) newDocPicker() *docPicker {
	return &docPicker{p: p, r: rand.New(rand.NewSource(p.Spec.Seed + seedPublish))}
}

// next returns the class and pool indexes of the next document.
func (d *docPicker) next() (class, doc int) {
	w := d.r.Intn(d.p.totalWeight)
	for ci, cum := range d.p.classWeights {
		if w < cum {
			return ci, d.r.Intn(len(d.p.Docs[ci]))
		}
	}
	return len(d.p.Docs) - 1, d.r.Intn(len(d.p.Docs[len(d.p.Docs)-1]))
}

// churnPicker draws the churn engine's sequence: which ephemeral slot to
// churn and which filter it resubscribes to (popularity-distributed, so
// churn keeps the workload's skew alive instead of flattening it).
type churnPicker struct {
	r   *rand.Rand
	pop generator.Generator
	// slots lists the churnable (ephemeral) subscriber indexes.
	slots []int
}

func (p *Plan) newChurnPicker() (*churnPicker, error) {
	pop, err := generator.New(p.Spec.Popularity, int64(p.Spec.Filters), p.Spec.ZipfTheta, p.Spec.Seed+seedChurn)
	if err != nil {
		return nil, err
	}
	c := &churnPicker{r: rand.New(rand.NewSource(p.Spec.Seed + seedChurn)), pop: pop}
	for i, s := range p.Subs {
		if !s.Durable {
			c.slots = append(c.slots, i)
		}
	}
	return c, nil
}

// next returns the subscriber slot to churn and its new filter index; ok is
// false when the plan has no ephemeral subscribers to churn.
func (c *churnPicker) next() (slot, filter int, ok bool) {
	if len(c.slots) == 0 {
		return 0, 0, false
	}
	return c.slots[c.r.Intn(len(c.slots))], int(c.pop.Next()), true
}
