// Command xpushload is a YCSB-style open-loop load harness for xpushserve:
// it materializes a seeded workload (skewed subscriber popularity over a
// distinct-filter pool, durable/ephemeral mix, weighted document sizes),
// drives it against a real broker over TCP through the client package, and
// measures publish-ack and end-to-end delivery latency without coordinated
// omission — every latency is taken from the document's intended start
// under the target arrival rate.
//
//	xpushload -addr 127.0.0.1:9310 -workload workloads/smoke.props \
//	    -set seed=7 -json BENCH.json
//
// Workload properties come from the -workload file, overridden by repeated
// -set key=value flags (see internal/load.Spec for the key set). Phases run
// in file order; each can layer churn (subscribe/unsubscribe) and reconnect
// storms on top of the publish schedule:
//
//	phase.warmup = 1s
//	phase.steady = 10s
//	phase.churn  = 10s churn=200 reconnect=10
//
// The exit status is non-zero when the run could not complete or any phase
// recorded errors, so CI can gate on a smoke scenario directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xpushload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9310", "broker data-plane address")
	workload := fs.String("workload", "", "workload properties file (see workloads/*.props)")
	jsonPath := fs.String("json", "", "write a BENCH-style JSON report to this file")
	title := fs.String("title", "", "report title for -json (default derived from the workload name)")
	quiet := fs.Bool("quiet", false, "suppress per-interval progress lines")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = sum of phases + 1m)")
	var sets []string
	fs.Func("set", "override one workload property, key=value (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("expected key=value, got %q", v)
		}
		sets = append(sets, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := load.DefaultSpec()
	if *workload != "" {
		f, err := os.Open(*workload)
		if err != nil {
			fmt.Fprintln(stderr, "xpushload:", err)
			return 2
		}
		err = load.ParseProps(f, &spec)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "xpushload: %s: %v\n", *workload, err)
			return 2
		}
	}
	for _, kv := range sets {
		key, value, _ := strings.Cut(kv, "=")
		if err := spec.Set(strings.TrimSpace(key), strings.TrimSpace(value)); err != nil {
			fmt.Fprintf(stderr, "xpushload: -set %s: %v\n", kv, err)
			return 2
		}
	}

	plan, err := load.BuildPlan(spec)
	if err != nil {
		fmt.Fprintln(stderr, "xpushload:", err)
		return 2
	}

	budget := *timeout
	if budget <= 0 {
		budget = time.Minute
		for _, ph := range spec.Phases {
			budget += ph.Duration
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	fmt.Fprintf(stdout, "xpushload: %s seed=%d: %d subscribers (%.0f%% durable) over %d filters (%s), %s docs, target %g docs/s -> %s\n",
		spec.Name, spec.Seed, spec.Subscribers, spec.DurableRatio*100, spec.Filters,
		spec.Popularity, load.SizeMixString(spec.DocSizes), spec.Rate, *addr)

	var progress io.Writer
	if !*quiet {
		progress = stdout
	}
	res, err := (&load.Runner{Plan: plan, Addr: *addr, Log: progress}).Run(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "xpushload:", err)
		return 1
	}

	failed := false
	for _, ph := range res.Phases {
		fmt.Fprintf(stdout, "\nphase %-10s %6.1fs  target %g/s achieved %.0f/s  published %d  deliveries %d (%d durable)\n",
			ph.Name, ph.Seconds, ph.TargetRate, ph.AchievedRate, ph.Published, ph.Deliveries, ph.DurableDeliveries)
		if ph.ChurnOps+ph.Reconnects > 0 {
			fmt.Fprintf(stdout, "  churn %d ops, %d reconnect storms\n", ph.ChurnOps, ph.Reconnects)
		}
		fmt.Fprintf(stdout, "  pub-ack   p50=%-10v p99=%-10v p99.9=%-10v max=%v\n",
			ph.PubAck.P50.Round(time.Microsecond), ph.PubAck.P99.Round(time.Microsecond),
			ph.PubAck.P999.Round(time.Microsecond), ph.PubAck.Max.Round(time.Microsecond))
		fmt.Fprintf(stdout, "  delivery  p50=%-10v p99=%-10v p99.9=%-10v max=%v\n",
			ph.Delivery.P50.Round(time.Microsecond), ph.Delivery.P99.Round(time.Microsecond),
			ph.Delivery.P999.Round(time.Microsecond), ph.Delivery.Max.Round(time.Microsecond))
		if ph.MaxSchedLagMs > 0 {
			fmt.Fprintf(stdout, "  max scheduler lag %.1fms\n", ph.MaxSchedLagMs)
		}
		if ph.Failed() {
			failed = true
			fmt.Fprintf(stdout, "  ERRORS: %d ack errors, %d harness errors\n", ph.AckErrors, ph.Errors)
		}
	}

	if *jsonPath != "" {
		t := *title
		if t == "" {
			t = fmt.Sprintf("xpushload %s: open-loop load against xpushserve", spec.Name)
		}
		cmd := "xpushload " + strings.Join(args, " ")
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(stderr, "xpushload:", err)
			return 1
		}
		werr := res.BenchReport(t, cmd).WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "xpushload:", werr)
			return 1
		}
		fmt.Fprintf(stdout, "\nreport written to %s\n", *jsonPath)
	}

	if failed {
		fmt.Fprintln(stderr, "xpushload: run recorded errors")
		return 1
	}
	return 0
}
