package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/afa"
	"repro/internal/dtd"
	"repro/internal/naive"
	"repro/internal/xpath"
)

func compileWorkload(t testing.TB, queries ...string) *afa.AFA {
	t.Helper()
	filters := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		filters[i] = xpath.MustParse(q)
	}
	a, err := afa.Compile(filters)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runningMachine(t testing.TB, opts Options) *Machine {
	return New(compileWorkload(t,
		"//a[b/text()=1 and .//a[@c>2]]",
		"//a[@c>2 and b/text()=1]",
	), opts)
}

// TestFig3Trace replays the execution trace of Fig. 3 on the basic
// bottom-up machine and checks the bottom-up state contents at every event.
// Paper state numbering maps to ours as 1→0, 2→6, 3→2, 4→1, 5→3, 6→5, 7→4,
// 8→7, 9→12, 10→9, 11→8, 12→11, 13→10.
func TestFig3Trace(t *testing.T) {
	m := runningMachine(t, Options{})
	check := func(label string, want string) {
		t.Helper()
		_, qb := m.Current()
		if got := fmt.Sprint(m.BStateSet(qb)); got != want {
			t.Fatalf("after %s: qb = %s, want %s", label, got, want)
		}
	}
	m.StartDocument()
	m.StartElement("a") // outer <a>
	check("<a>", "[]")
	m.StartElement("b")
	m.Text(" 1 ")
	check("text(1)", "[1 10]") // paper q1 = {4,13}
	m.EndElement("b")
	check("</b>", "[2 11]") // paper q3 = {3,12}
	m.StartElement("a")     // inner <a c="3">
	m.StartElement("@c")
	m.Text("3")
	check("text(3)", "[4 8]") // paper q2 = {7,11}
	m.EndElement("@c")
	check("</@c>", "[5 9]") // paper q4 = {6,10}
	m.StartElement("b")
	m.Text(" 1 ")
	check("inner text(1)", "[1 10]")
	m.EndElement("b")
	check("inner </b>", "[2 5 9 11]") // paper q5 = {3,6,10,12}
	m.EndElement("a")
	check("inner </a>", "[2 3 7 11]") // paper q9 = {3,5,8,12}
	m.EndElement("a")
	check("outer </a>", "[0 3 7]") // paper q15 = {1,5,8}
	m.EndDocument()
	if got := fmt.Sprint(m.Results()); got != "[0 1]" {
		t.Fatalf("taccept = %s, want [0 1] (both P1 and P2 match)", got)
	}
	if m.StackDepth() != 0 {
		t.Errorf("stack depth = %d", m.StackDepth())
	}
}

// allOptionCombos returns machine configurations covering every
// optimization combination (order uses the universal attributes-first
// order, which is always sound).
func allOptionCombos() map[string]Options {
	return map[string]Options{
		"basic":          {},
		"precomp":        {PrecomputeValues: true},
		"td":             {TopDown: true},
		"order":          {Order: dtd.EmptyOrder()},
		"td-order":       {TopDown: true, Order: dtd.EmptyOrder()},
		"early":          {Early: true},
		"order-early":    {Order: dtd.EmptyOrder(), Early: true},
		"td-order-early": {TopDown: true, Order: dtd.EmptyOrder(), Early: true},
	}
}

// TestMatrixAllCombos runs the naive-oracle matrix through every
// optimization combination.
func TestMatrixAllCombos(t *testing.T) {
	cases := []struct {
		query string
		doc   string
		want  bool
	}{
		{"/a", "<a/>", true},
		{"/a", "<b/>", false},
		{"/a/b", "<a><b/></a>", true},
		{"/a/b", "<a><c><b/></c></a>", false},
		{"//b", "<a><c><b/></c></a>", true},
		{"/a//b", "<a><b/></a>", true},
		{"/a//b", "<b><a/></b>", false},
		{"/*", "<z/>", true},
		{"/a/*", "<a><x/></a>", true},
		{"/a/*", "<a>text</a>", false},
		{"/a/@c", `<a c="1"/>`, true},
		{"/a/@c", `<a d="1"/>`, false},
		{"/a/@*", `<a d="1"/>`, true},
		{"/a/@*", `<a/>`, false},
		{"/a/text()", "<a>x</a>", true},
		{"/a/text()", "<a><b/></a>", false},
		{"/a[b]", "<a><b/></a>", true},
		{"/a[b]", "<a><c/></a>", false},
		{"/a[b=1]", "<a><b>1</b></a>", true},
		{"/a[b=1]", "<a><b>2</b></a>", false},
		{"/a[b=1]", "<a><b>2</b><b>1</b></a>", true},
		{"/a[b!=1]", "<a><b>2</b></a>", true},
		{"/a[b!=1]", "<a><b>1</b></a>", false},
		{"/a[b<5 and b>2]", "<a><b>3</b></a>", true},
		{"/a[b<5 and b>2]", "<a><b>7</b></a>", false},
		{"/a[b<3 and b>4]", "<a><b>2</b><b>5</b></a>", true},
		{"/a[b=1 or c=2]", "<a><c>2</c></a>", true},
		{"/a[b=1 or c=2]", "<a><c>3</c></a>", false},
		{"/a[not(b=1)]", "<a><b>2</b></a>", true},
		{"/a[not(b=1)]", "<a><b>1</b></a>", false},
		{"/a[not(b=1)]", "<a/>", true},
		{"/a[not(not(b=1))]", "<a><b>1</b></a>", true},
		{"/a[not(not(b=1))]", "<a/>", false},
		{"/a[.=5]", "<a>5</a>", true},
		{"/a[.=5]", "<a>6</a>", false},
		{"/a[text()=5]", "<a>5</a>", true},
		{"/a[@c>2]", `<a c="3"/>`, true},
		{"/a[@c>2]", `<a c="2"/>`, false},
		{"/a[@c>2 and text()=1]", `<a c="3">1</a>`, true},
		{"/a[@c=2 and .=1]", `<a c="2">1</a>`, true},
		{"//a[b/text()=1 and .//a[@c>2]]", `<a><b>1</b><a c="3"><b>1</b></a></a>`, true},
		{"//a[b/text()=1 and .//a[@c>2]]", `<a><b>1</b></a>`, false},
		{"/a[b[c=1]]", "<a><b><c>1</c></b></a>", true},
		{"/a[b[c=1]]", "<a><b><c>2</c></b></a>", false},
		{"/a[.//x=9]", "<a><p><q><x>9</x></q></p></a>", true},
		{"/a/b[c=1]/d", "<a><b><c>1</c><d/></b></a>", true},
		{"/a/b[c=1]/d", "<a><b><c>2</c><d/></b></a>", false},
		{"/a/b[c=1]/d", "<a><b><c>1</c></b><b><d/></b></a>", false},
		{"/a[b='x y']", "<a><b>x y</b></a>", true},
		{"/a[b>'m']", "<a><b>z</b></a>", true},
		{"/a[b>'m']", "<a><b>a</b></a>", false},
		{"/a[contains(b, 'ell')]", "<a><b>hello</b></a>", true},
		{"/a[starts-with(b, 'he')]", "<a><b>hello</b></a>", true},
		{"/a[starts-with(b, 'el')]", "<a><b>hello</b></a>", false},
		{"/a[.//text()='x']", "<a><p><q>x</q></p></a>", true},
		{"/a[b][c]", "<a><b/><c/></a>", true},
		{"/a[b][c]", "<a><b/></a>", false},
		{"//x[y=1]", "<r><s><x><y>1</y></x></s></r>", true},
		{"//x[y=1]", "<r><s><x><y>2</y></x></s></r>", false},
		{"/a[not(b) and c]", "<a><c/></a>", true},
		{"/a[not(b) and c]", "<a><b/><c/></a>", false},
		{"/a[not(b or c)]", "<a><d/></a>", true},
		{"/a[not(b or c)]", "<a><c/></a>", false},
	}
	for name, opts := range allOptionCombos() {
		t.Run(name, func(t *testing.T) {
			for _, tc := range cases {
				m := New(compileWorkload(t, tc.query), opts)
				got, err := m.FilterDocument([]byte(tc.doc))
				if err != nil {
					t.Errorf("%s on %s: %v", tc.query, tc.doc, err)
					continue
				}
				if (len(got) == 1) != tc.want {
					t.Errorf("[%s] %s on %s = %v, want match=%v",
						name, tc.query, tc.doc, got, tc.want)
				}
			}
		})
	}
}

// TestWorkloadSharing verifies that one machine answers a whole workload
// per document.
func TestWorkloadSharing(t *testing.T) {
	queries := []string{
		"/inv[item=1]",
		"/inv[item=2]",
		"/inv[item=1 and qty=5]",
		"/inv[item=1 or qty=9]",
		"//item",
		"/inv/item",
		"/other",
	}
	for name, opts := range allOptionCombos() {
		m := New(compileWorkload(t, queries...), opts)
		got, err := m.FilterDocument([]byte("<inv><item>1</item><qty>5</qty></inv>"))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != "[0 2 3 4 5]" {
			t.Errorf("[%s] matches = %v, want [0 2 3 4 5]", name, got)
		}
	}
}

func TestMultiDocumentStream(t *testing.T) {
	m := runningMachine(t, Options{})
	var perDoc []string
	m.OnDocument = func(oids []int32) { perDoc = append(perDoc, fmt.Sprint(oids)) }
	stream := `<a><b>1</b><a c="3"><b>1</b></a></a>` + // both match
		`<a><b>1</b></a>` + // no @c>2: none match
		`<a c="5"><b>1</b></a>` // P2 matches (P1 needs a nested a)
	if err := m.Run([]byte(stream)); err != nil {
		t.Fatal(err)
	}
	want := []string{"[0 1]", "[]", "[1]"}
	for i := range want {
		if perDoc[i] != want[i] {
			t.Errorf("doc %d: %s, want %s", i, perDoc[i], want[i])
		}
	}
	if m.Stats().Docs != 3 {
		t.Errorf("docs = %d", m.Stats().Docs)
	}
}

// TestStateReuse checks the lazy machine reuses states across documents —
// the cache behaviour behind Fig. 8.
func TestStateReuse(t *testing.T) {
	m := runningMachine(t, Options{})
	doc := []byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`)
	if _, err := m.FilterDocument(doc); err != nil {
		t.Fatal(err)
	}
	statesAfterFirst := m.Stats().BStates
	lookups1 := m.Stats().Lookups
	hits1 := m.Stats().Hits
	for i := 0; i < 10; i++ {
		if _, err := m.FilterDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.BStates != statesAfterFirst {
		t.Errorf("states grew on identical documents: %d → %d", statesAfterFirst, st.BStates)
	}
	// All lookups after the first document must hit.
	if st.Hits-hits1 != st.Lookups-lookups1 {
		t.Errorf("expected 100%% hit ratio on repeats: hits %d/%d",
			st.Hits-hits1, st.Lookups-lookups1)
	}
}

func TestEarlyNotificationReducesStateSize(t *testing.T) {
	// A workload of single-predicate filters: with early notification the
	// machine behaves like a top-down automaton and bottom-up states stay
	// tiny.
	queries := make([]string, 30)
	for i := range queries {
		queries[i] = fmt.Sprintf("/r/e%d[v=%d]", i%5, i)
	}
	var doc strings.Builder
	doc.WriteString("<r>")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&doc, "<e%d><v>%d</v></e%d>", i%5, i, i%5)
	}
	doc.WriteString("</r>")

	plain := New(compileWorkload(t, queries...), Options{TopDown: true})
	early := New(compileWorkload(t, queries...), Options{Early: true})
	rPlain, err := plain.FilterDocument([]byte(doc.String()))
	if err != nil {
		t.Fatal(err)
	}
	rEarly, err := early.FilterDocument([]byte(doc.String()))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rPlain) != fmt.Sprint(rEarly) {
		t.Fatalf("early changed results: %v vs %v", rPlain, rEarly)
	}
	if len(rEarly) != 30 {
		t.Fatalf("matches = %v", rEarly)
	}
	if es, ps := early.Stats().AvgStateSize(), plain.Stats().AvgStateSize(); es >= ps {
		t.Errorf("early avg state size %.2f should be below plain %.2f", es, ps)
	}
}

func TestOrderOptimizationReducesStates(t *testing.T) {
	// The Sec. 5 order example: name ≺ age ≺ phone. Feeding permutations
	// of subsets, the unordered machine builds states for every subset
	// of satisfied predicates; the ordered machine only for prefixes.
	d := dtd.MustParse(`
<!ELEMENT person (name, age, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
`)
	query := `/person[name="Smith" and age=33 and phone=5551234]`
	docs := []string{
		`<person><name>Smith</name><age>33</age><phone>5551234</phone></person>`,
		`<person><age>33</age><phone>5551234</phone></person>`,
		`<person><age>33</age></person>`,
		`<person><phone>5551234</phone></person>`,
		`<person><name>Smith</name><phone>5551234</phone></person>`,
		`<person><name>Smith</name></person>`,
	}
	base := New(compileWorkload(t, query), Options{})
	ord := New(compileWorkload(t, query), Options{Order: d.SiblingOrder()})
	for _, doc := range docs {
		rb, err := base.FilterDocument([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		ro, err := ord.FilterDocument([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(rb) != fmt.Sprint(ro) {
			t.Errorf("order changed result on %s: %v vs %v", doc, rb, ro)
		}
	}
	if ord.Stats().BStates >= base.Stats().BStates {
		t.Errorf("order opt states %d should be below basic %d",
			ord.Stats().BStates, base.Stats().BStates)
	}
}

func TestTopDownPruningReducesStates(t *testing.T) {
	// The Sec. 5 motivating workload: /ei[c/text()="ci"]. Without
	// top-down pruning, c elements under the wrong ei create false-lead
	// states.
	var queries []string
	for i := 0; i < 8; i++ {
		queries = append(queries, fmt.Sprintf("/e%d[c/text()=%d]", i, i))
	}
	var doc strings.Builder
	doc.WriteString("<e0>")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&doc, "<c>%d</c>", i)
	}
	doc.WriteString("</e0>")
	base := New(compileWorkload(t, queries...), Options{})
	td := New(compileWorkload(t, queries...), Options{TopDown: true})
	rb, err := base.FilterDocument([]byte(doc.String()))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := td.FilterDocument([]byte(doc.String()))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rb) != "[0]" || fmt.Sprint(rt) != "[0]" {
		t.Fatalf("results: %v, %v", rb, rt)
	}
	if td.Stats().BStates >= base.Stats().BStates {
		t.Errorf("TD states %d should be below basic %d",
			td.Stats().BStates, base.Stats().BStates)
	}
}

func TestPrecomputeValues(t *testing.T) {
	m := New(compileWorkload(t, "/a[b=1]", "/a[b=2]", "/a[c='x']"), Options{PrecomputeValues: true})
	// The three point-interval value states must exist before any input.
	if m.Stats().BStates < 4 { // empty + three value states
		t.Errorf("precomputed states = %d", m.Stats().BStates)
	}
	got, err := m.FilterDocument([]byte("<a><b>2</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Errorf("matches = %v", got)
	}
}

func TestMixedContentCounting(t *testing.T) {
	m := runningMachine(t, Options{})
	if _, err := m.FilterDocument([]byte("<a>text<b>1</b>more</a>")); err != nil {
		t.Fatal(err)
	}
	if m.Stats().MixedContentEvents == 0 {
		t.Error("mixed content not counted")
	}
	strict := runningMachine(t, Options{StrictMixedContent: true})
	if _, err := strict.FilterDocument([]byte("<a>text<b>1</b></a>")); err == nil {
		t.Error("strict mode should report mixed content")
	}
}

func TestMixedContentUnionSemantics(t *testing.T) {
	// Under union semantics the machine still agrees with the DOM oracle
	// on mixed content.
	query := "/a[text()=1 and b=2]"
	doc := "<a>1<b>2</b></a>"
	m := New(compileWorkload(t, query), Options{})
	got, err := m.FilterDocument([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	e := naive.NewEngine([]*xpath.Filter{xpath.MustParse(query)})
	want, _ := e.FilterDocument([]byte(doc))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("machine %v vs oracle %v", got, want)
	}
}

func TestMaxStatesFlush(t *testing.T) {
	m := New(compileWorkload(t, "/a[b=1]"), Options{MaxStates: 2})
	for i := 0; i < 20; i++ {
		doc := fmt.Sprintf("<a><b>%d</b></a>", i%7)
		if _, err := m.FilterDocument([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Flushes == 0 {
		t.Error("expected cache flushes")
	}
	// Flushing must not change answers.
	got, err := m.FilterDocument([]byte("<a><b>1</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("post-flush matches = %v", got)
	}
}

func TestTraining(t *testing.T) {
	m := runningMachine(t, Options{TopDown: true})
	training := []byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`)
	if err := m.Train(training); err != nil {
		t.Fatal(err)
	}
	statesAfterTraining := m.Stats().BStates
	if statesAfterTraining < 3 {
		t.Fatalf("training created %d states", statesAfterTraining)
	}
	if m.Stats().Lookups != 0 || m.Stats().Docs != 0 {
		t.Error("training must reset runtime counters")
	}
	got, err := m.FilterDocument(training)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("matches = %v", got)
	}
	st := m.Stats()
	if st.Hits != st.Lookups {
		t.Errorf("trained machine should hit 100%%: %d/%d", st.Hits, st.Lookups)
	}
	if st.BStates != statesAfterTraining {
		t.Errorf("trained machine created states at runtime: %d → %d",
			statesAfterTraining, st.BStates)
	}
}

func TestStatsBasics(t *testing.T) {
	m := runningMachine(t, Options{})
	if _, err := m.FilterDocument([]byte(`<a><b>1</b></a>`)); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Events != 7 { // startDoc, <a>, <b>, text, </b>, </a>, endDoc
		t.Errorf("events = %d", st.Events)
	}
	if st.AvgStateSize() <= 0 {
		t.Errorf("avg state size = %f", st.AvgStateSize())
	}
	if st.HitRatio() < 0 || st.HitRatio() > 1 {
		t.Errorf("hit ratio = %f", st.HitRatio())
	}
}

func TestUnknownLabelsShareStates(t *testing.T) {
	m := New(compileWorkload(t, "//known[x=1]"), Options{})
	if _, err := m.FilterDocument([]byte("<u1><u2><u3/></u2></u1>")); err != nil {
		t.Fatal(err)
	}
	lookups := m.Stats().Lookups
	hits := m.Stats().Hits
	if _, err := m.FilterDocument([]byte("<z9><z8><z7/></z8></z9>")); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// Different unknown labels map to the same sentinel symbol, so the
	// second document is all cache hits.
	if st.Hits-hits != st.Lookups-lookups {
		t.Errorf("unknown labels missed the cache: %d/%d", st.Hits-hits, st.Lookups-lookups)
	}
}

// TestDifferentialRandom cross-checks the machine against the DOM oracle on
// random workloads, random documents, and every optimization combination.
func TestDifferentialRandom(t *testing.T) {
	combos := allOptionCombos()
	r := rand.New(rand.NewSource(2026))
	trials := 120
	if testing.Short() {
		trials = 25
	}
	if s := os.Getenv("XPUSH_DIFF_TRIALS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			trials = n
		}
	}
	for trial := 0; trial < trials; trial++ {
		nq := 1 + r.Intn(8)
		filters := make([]*xpath.Filter, nq)
		queries := make([]string, nq)
		for i := range filters {
			filters[i] = randomTestFilter(r)
			queries[i] = filters[i].String()
		}
		oracle := naive.NewEngine(filters)
		docs := make([][]byte, 4)
		for i := range docs {
			docs[i] = []byte(randomTestDoc(r))
		}
		var wants []string
		for _, doc := range docs {
			w, err := oracle.FilterDocument(doc)
			if err != nil {
				t.Fatalf("oracle on %s: %v", doc, err)
			}
			wants = append(wants, fmt.Sprint(w))
		}
		for name, opts := range combos {
			a, err := afa.Compile(filters)
			if err != nil {
				t.Fatalf("compile %v: %v", queries, err)
			}
			m := New(a, opts)
			for di, doc := range docs {
				got, err := m.FilterDocument(doc)
				if err != nil {
					t.Fatalf("[%s] machine on %s: %v", name, doc, err)
				}
				if fmt.Sprint(got) != wants[di] {
					t.Fatalf("[%s] mismatch\n queries: %v\n doc: %s\n machine: %v\n oracle:  %s",
						name, queries, doc, got, wants[di])
				}
			}
		}
	}
}

var testLabels = []string{"a", "b", "c", "d", "e"}
var testWords = []string{"x", "y", "zz"}

func randomTestFilter(r *rand.Rand) *xpath.Filter {
	var sb strings.Builder
	if r.Intn(2) == 0 {
		sb.WriteString("/")
	} else {
		sb.WriteString("//")
	}
	writeTestSteps(r, &sb, 1+r.Intn(2), 2)
	f, err := xpath.Parse(sb.String())
	if err != nil {
		panic(err)
	}
	return f
}

func writeTestSteps(r *rand.Rand, sb *strings.Builder, n, depth int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			if r.Intn(4) == 0 {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
		}
		if r.Intn(8) == 0 {
			sb.WriteString("*")
		} else {
			sb.WriteString(testLabels[r.Intn(len(testLabels))])
		}
		if depth > 0 && r.Intn(2) == 0 {
			sb.WriteString("[")
			writeTestExpr(r, sb, depth-1)
			sb.WriteString("]")
		}
	}
}

func writeTestExpr(r *rand.Rand, sb *strings.Builder, depth int) {
	if depth <= 0 || r.Intn(3) > 0 {
		writeTestAtom(r, sb, depth)
		return
	}
	switch r.Intn(3) {
	case 0:
		writeTestAtom(r, sb, depth)
		sb.WriteString(" and ")
		writeTestExpr(r, sb, depth-1)
	case 1:
		writeTestAtom(r, sb, depth)
		sb.WriteString(" or ")
		writeTestExpr(r, sb, depth-1)
	default:
		sb.WriteString("not(")
		writeTestExpr(r, sb, depth-1)
		sb.WriteString(")")
	}
}

func writeTestAtom(r *rand.Rand, sb *strings.Builder, depth int) {
	switch r.Intn(10) {
	case 0: // existence
		sb.WriteString(testLabels[r.Intn(len(testLabels))])
	case 1: // attribute comparison
		fmt.Fprintf(sb, "@%s=%d", testLabels[r.Intn(len(testLabels))], r.Intn(5))
	case 2: // descendant path
		fmt.Fprintf(sb, ".//%s=%d", testLabels[r.Intn(len(testLabels))], r.Intn(5))
	case 3: // string comparison
		fmt.Fprintf(sb, "%s='%s'", testLabels[r.Intn(len(testLabels))], testWords[r.Intn(len(testWords))])
	case 4: // text()
		fmt.Fprintf(sb, "text()=%d", r.Intn(5))
	case 5: // contains
		fmt.Fprintf(sb, "contains(%s, '%s')", testLabels[r.Intn(len(testLabels))], testWords[r.Intn(len(testWords))])
	case 6: // nested predicate path
		if depth > 0 {
			fmt.Fprintf(sb, "%s[", testLabels[r.Intn(len(testLabels))])
			writeTestExpr(r, sb, depth-1)
			sb.WriteString("]")
		} else {
			fmt.Fprintf(sb, "%s=%d", testLabels[r.Intn(len(testLabels))], r.Intn(5))
		}
	default: // numeric comparison with a random operator
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		fmt.Fprintf(sb, "%s%s%d", testLabels[r.Intn(len(testLabels))], ops[r.Intn(len(ops))], r.Intn(5))
	}
}

func randomTestDoc(r *rand.Rand) string {
	var sb strings.Builder
	writeTestElement(r, &sb, 3)
	return sb.String()
}

func writeTestElement(r *rand.Rand, sb *strings.Builder, depth int) {
	name := testLabels[r.Intn(len(testLabels))]
	sb.WriteByte('<')
	sb.WriteString(name)
	for i := r.Intn(3); i > 0; i-- {
		fmt.Fprintf(sb, ` %s="%d"`, testLabels[r.Intn(len(testLabels))], r.Intn(5))
	}
	if depth == 0 || r.Intn(6) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	switch r.Intn(3) {
	case 0: // numeric or string text
		if r.Intn(2) == 0 {
			fmt.Fprintf(sb, "%d", r.Intn(5))
		} else {
			sb.WriteString(testWords[r.Intn(len(testWords))])
		}
	default:
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			writeTestElement(r, sb, depth-1)
		}
	}
	fmt.Fprintf(sb, "</%s>", name)
}

func TestApproxMemoryBytes(t *testing.T) {
	m := runningMachine(t, Options{})
	if _, err := m.FilterDocument([]byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`)); err != nil {
		t.Fatal(err)
	}
	mem := m.ApproxMemoryBytes()
	if mem <= 0 {
		t.Fatalf("memory estimate = %d", mem)
	}
	// Growing the machine grows the estimate.
	if _, err := m.FilterDocument([]byte(`<a c="9"><b>1</b></a>`)); err != nil {
		t.Fatal(err)
	}
	if m.ApproxMemoryBytes() < mem {
		t.Error("memory estimate shrank as states grew")
	}
}

// TestEarlyPositionGatingRegression pins a soundness bug found by the
// differential soak: with early notification, the first branching AND state
// of /b[not(b!=0)]//a (whose only navigation-gated conjunct is a
// position-sloppy descendant branch) fired at a nested element that matched
// the predicates but not the navigation. Detection must be restricted to
// states enabled in the current top-down state.
func TestEarlyPositionGatingRegression(t *testing.T) {
	queries := []string{
		"/b[not(b!=0)]//a",
		"/a[b[b=1] and b]//e",
	}
	doc := `<b e="4" c="4"><a><c>zz</c><c d="3"><d/></c></a>` +
		`<c b="3"><e d="2"><b b="2"/><e c="2"/><a d="2"/></e>` +
		`<c a="0"><c c="0"/></c><c c="4" d="2"/></c><b d="2">4</b></b>`
	oracle := naive.NewEngine(func() []*xpath.Filter {
		out := make([]*xpath.Filter, len(queries))
		for i, q := range queries {
			out[i] = xpath.MustParse(q)
		}
		return out
	}())
	want, err := oracle.FilterDocument([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 0 {
		t.Fatalf("oracle unexpectedly matched: %v", want)
	}
	for name, opts := range allOptionCombos() {
		m := New(compileWorkload(t, queries...), opts)
		got, err := m.FilterDocument([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("[%s] spurious match: %v", name, got)
		}
	}
	// The positive side still fires early: root b with no b!=0 children
	// and a descendant a.
	m := New(compileWorkload(t, queries[0]), Options{Early: true})
	got, err := m.FilterDocument([]byte(`<b><c/><a/></b>`))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("positive case = %v", got)
	}
}
