// Command xpushfilter evaluates a workload of XPath filters over a stream
// of XML documents using the XPush machine, printing the matching filters
// for every document — the message-broker core loop of the paper.
//
// Usage:
//
//	xpushfilter -queries filters.txt [-xml stream.xml] [-dtd schema.dtd]
//	            [-topdown] [-order] [-early] [-train] [-max-doc-bytes 0]
//	            [-stats] [-stats-format text|json|prom] [-trace trace.json]
//
// The queries file holds one XPath filter per line; blank lines and lines
// starting with '#' are ignored. XML is read from -xml or stdin and may
// contain any number of concatenated documents. -stats appends a runtime
// report after the stream: human-readable text (including per-document
// filter-latency quantiles), a JSON document, or Prometheus text format.
// -trace records a span trace for every document (per-layer timings plus
// machine telemetry: states created, table flushes, matches) and writes the
// most recent ones as a Chrome trace_event file — load it at
// ui.perfetto.dev or chrome://tracing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	xpushstream "repro"
	"repro/internal/obs"
	"repro/internal/sax"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "xpushfilter: %v\n", err)
		os.Exit(1)
	}
}

// run executes the tool; factored out of main for testing.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("xpushfilter", flag.ContinueOnError)
	queriesPath := fs.String("queries", "", "file with one XPath filter per line (required)")
	xmlPath := fs.String("xml", "", "XML stream file (default: stdin)")
	dtdPath := fs.String("dtd", "", "DTD file (enables -order and -train)")
	topdown := fs.Bool("topdown", false, "enable top-down pruning")
	order := fs.Bool("order", false, "enable the order optimization (needs -dtd)")
	early := fs.Bool("early", false, "enable early notification (implies -topdown)")
	train := fs.Bool("train", false, "warm the machine with synthetic training data (needs -dtd)")
	strict := fs.Bool("strict", false, "reject mixed element/text content")
	maxStates := fs.Int("maxstates", 0, "flush lazily built state tables past this count (0 = unlimited)")
	maxDocBytes := fs.Int("max-doc-bytes", 0, "per-document size bound in bytes; >0 uses the streaming splitter and rejects oversized documents (0 = unbounded)")
	showQueries := fs.Bool("show-queries", false, "print matching filter text instead of indexes")
	stats := fs.Bool("stats", false, "print machine statistics after the stream")
	statsFormat := fs.String("stats-format", "text", "stats report format: text, json, or prom (Prometheus text)")
	tracePath := fs.String("trace", "", "record a span trace per document and write a Chrome trace_event file (view at ui.perfetto.dev)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *queriesPath == "" {
		return fmt.Errorf("-queries is required")
	}
	queries, err := readQueries(*queriesPath)
	if err != nil {
		return err
	}
	cfg := xpushstream.Config{
		TopDownPruning:     *topdown,
		OrderOptimization:  *order,
		EarlyNotification:  *early,
		Training:           *train,
		StrictMixedContent: *strict,
		MaxStates:          *maxStates,
	}
	if *dtdPath != "" {
		text, err := os.ReadFile(*dtdPath)
		if err != nil {
			return err
		}
		d, err := xpushstream.ParseDTD(string(text))
		if err != nil {
			return err
		}
		cfg.DTD = d
	}
	engine, err := xpushstream.Compile(queries, cfg)
	if err != nil {
		return err
	}

	in := stdin
	if *xmlPath != "" {
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	doc := 0
	onDocument := func(matches []int) {
		doc++
		fmt.Fprintf(w, "document %d: %d match(es)", doc, len(matches))
		if len(matches) > 0 {
			if *showQueries {
				fmt.Fprintln(w)
				for _, m := range matches {
					fmt.Fprintf(w, "  [%d] %s\n", m, engine.Query(m))
				}
			} else {
				fmt.Fprintf(w, " %v\n", matches)
			}
		} else {
			fmt.Fprintln(w)
		}
	}
	switch {
	case *tracePath != "":
		// Traced runs split the stream per document so each gets its own
		// trace: a "document" root with the filter span, per-layer timings,
		// and machine-telemetry attributes. Sampling 1/1 keeps everything
		// (the recorder ring retains the most recent documents).
		rec := xpushstream.NewTraceRecorder(1, 0)
		err = sax.StreamDocumentsLimit(in, *maxDocBytes, func(doc []byte) error {
			tc := rec.Begin("document")
			ferr := engine.FilterBytesTraced(doc, tc, xpushstream.TraceRoot, onDocument)
			tc.Finish()
			return ferr
		})
		if err == nil {
			err = writeTraceFile(rec, *tracePath)
		}
	case *maxDocBytes > 0:
		err = engine.FilterStreamingLimit(in, *maxDocBytes, onDocument)
	default:
		err = engine.FilterStream(in, onDocument)
	}
	if err != nil {
		return err
	}
	if *stats {
		if err := writeStats(w, engine, *statsFormat); err != nil {
			return err
		}
	}
	return nil
}

// writeTraceFile dumps the recorder's retained traces in Chrome trace_event
// format.
func writeTraceFile(rec *xpushstream.TraceRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStats renders the post-stream runtime report in one of the three
// formats.
func writeStats(w io.Writer, engine *xpushstream.Engine, format string) error {
	s := engine.Stats()
	switch format {
	case "text":
		lat := s.LatencySummary()
		fmt.Fprintf(w, "---\ndocuments=%d events=%d bytes=%d matches=%d\n", s.Documents, s.Events, s.Bytes, s.Matches)
		fmt.Fprintf(w, "states=%d topdown-states=%d avg-state-size=%.2f\n", s.States, s.TopDownStates, s.AvgStateSize)
		fmt.Fprintf(w, "table lookups=%d hits=%d hit-ratio=%.4f window-hit-ratio=%.4f flushes=%d\n",
			s.Lookups, s.Hits, s.HitRatio, s.WindowHitRatio, s.Flushes)
		fmt.Fprintf(w, "doc latency p50=%v p90=%v p99=%v max=%v\n",
			latDur(lat.P50), latDur(lat.P90), latDur(lat.P99), latDur(lat.Max))
		return nil
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			xpushstream.Stats
			LatencySummary obs.Summary
		}{s, s.LatencySummary()})
	case "prom":
		reg := xpushstream.NewRegistry()
		xpushstream.RegisterMetrics(reg, "xpush", engine)
		return reg.WritePrometheus(w)
	default:
		return fmt.Errorf("unknown -stats-format %q (text, json, prom)", format)
	}
}

// latDur renders a latency in seconds as a rounded duration.
func latDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond)
}

func readQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return out, nil
}
