package load

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is an HDR-style log-linear latency histogram: values (nanoseconds)
// are bucketed into 64 linear sub-buckets per power of two, giving a
// worst-case quantile error of ~1.6% across the whole range — fine enough
// to report p99.9 honestly, unlike a plain factor-of-two log histogram
// (obs.Histogram), whose buckets are too coarse above p99.
//
// Recording is lock-free (atomic adds), so delivery callbacks on many
// connection read loops can record concurrently; Snapshot gives a
// consistent-enough copy for reporting, and Snapshot.DeltaSince supports
// the per-interval view (mirroring obs.Snapshot.DeltaSince).
//
// The zero value is ready to use.
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds; monotonic, plain add
	max     atomic.Uint64 // CAS-updated
}

const (
	histSubBits = 6                // 64 linear sub-buckets per octave
	histSub     = 1 << histSubBits // 64
	histMaxVal  = uint64(1) << 42  // ~73 min in ns; larger values clamp
	histOctaves = 42 - histSubBits // octaves above the linear range
	histBuckets = (histOctaves + 2) * histSub
)

// histIndex maps a nanosecond value to its bucket.
func histIndex(v uint64) int {
	if v >= histMaxVal {
		v = histMaxVal - 1
	}
	if v < histSub {
		return int(v)
	}
	// Shift v down until its mantissa fits in [64, 128); the shift count
	// picks the octave, the mantissa the linear sub-bucket.
	exp := uint(bits.Len64(v)) - histSubBits - 1
	return int(uint64(exp)<<histSubBits + v>>exp)
}

// histUpper returns the exclusive upper value bound of bucket i (used as
// the reported quantile value, so estimates err on the honest, high side).
func histUpper(i int) uint64 {
	if i < histSub {
		return uint64(i) + 1
	}
	exp := uint(i>>histSubBits) - 1
	sub := uint64(i&(histSub-1)) + histSub
	return (sub + 1) << exp
}

// Record adds one duration observation.
func (h *Hist) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old {
			return
		}
		if h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram for quantile estimation. Per-field reads
// are individually atomic but not globally consistent; concurrent
// recordings may be partially reflected, which is irrelevant for load
// reporting.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist.
type HistSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64 // nanoseconds
	Max     uint64 // nanoseconds
}

// DeltaSince returns the observations recorded between prev and s: the
// per-interval view behind xpushload's progress lines. Max is exact when
// the cumulative max advanced during the interval, otherwise it is bounded
// by the highest non-empty delta bucket.
func (s HistSnapshot) DeltaSince(prev HistSnapshot) HistSnapshot {
	var d HistSnapshot
	top := -1
	for i := range s.Buckets {
		if s.Buckets[i] >= prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
		}
		if d.Buckets[i] > 0 {
			top = i
		}
	}
	if s.Count >= prev.Count {
		d.Count = s.Count - prev.Count
	}
	if s.Sum >= prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	switch {
	case s.Max > prev.Max:
		d.Max = s.Max
	case top >= 0:
		d.Max = histUpper(top)
	}
	return d
}

// Quantile estimates the q-th quantile (0 < q <= 1) in nanoseconds,
// reporting the containing bucket's upper bound (clamped to Max).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			v := histUpper(i)
			if s.Max > 0 && v > s.Max {
				v = s.Max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the mean observation.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// LatencySummary is the quantile set load reports carry.
type LatencySummary struct {
	Count                     uint64
	Mean, P50, P90, P99, P999 time.Duration
	Max                       time.Duration
}

// Summary condenses a snapshot into p50/p90/p99/p99.9/max.
func (s HistSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   time.Duration(s.Max),
	}
}
