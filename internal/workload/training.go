package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/predindex"
	"repro/internal/sax"
	"repro/internal/xpath"
)

// TrainingData implements the training-data generator of Sec. 5: one XML
// document per XPath query, where atomic predicates are replaced with values
// that satisfy them, label constants become elements or attributes,
// wildcards and descendant axes are expanded using the DTD, boolean
// connectors are simply ignored, and the DTD's sibling order decides element
// order. All documents are concatenated; running the lazy XPush machine on
// the result warms its state tables.
func TrainingData(filters []*xpath.Filter, d *dtd.DTD) []byte {
	t := &trainer{
		d:     d,
		order: d.SiblingOrder(),
	}
	var sb strings.Builder
	for _, f := range filters {
		doc := t.document(f)
		if doc != nil {
			doc.write(&sb)
			sb.WriteByte('\n')
		}
	}
	return []byte(sb.String())
}

type trainer struct {
	d     *dtd.DTD
	order *dtd.Order
}

// tnode is a document-tree node under construction. Attributes are children
// with "@"-prefixed names.
type tnode struct {
	name     string
	text     string
	children []*tnode
}

func (n *tnode) write(sb *strings.Builder) {
	sb.WriteByte('<')
	sb.WriteString(n.name)
	var elems []*tnode
	for _, c := range n.children {
		if strings.HasPrefix(c.name, "@") {
			fmt.Fprintf(sb, ` %s="%s"`, c.name[1:], sax.EscapeAttr(c.text))
		} else {
			elems = append(elems, c)
		}
	}
	if len(elems) == 0 && n.text == "" {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	if n.text != "" {
		sb.WriteString(sax.EscapeText(n.text))
	}
	for _, c := range elems {
		c.write(sb)
	}
	sb.WriteString("</")
	sb.WriteString(n.name)
	sb.WriteByte('>')
}

// document builds the training document for one filter, or nil when the
// filter's labels cannot be resolved against the DTD.
func (t *trainer) document(f *xpath.Filter) *tnode {
	root := &tnode{name: "\x00virtual"}
	if !t.materialize(root, "", f.Path) {
		return nil
	}
	t.sortChildren(root)
	if len(root.children) != 1 {
		return nil
	}
	return root.children[0]
}

// materialize grows the tree under parent so that the path's navigation and
// predicates are exercised. ctx is the DTD element name of parent ("" for
// the virtual root). Reports false when a label cannot be reached.
func (t *trainer) materialize(parent *tnode, ctx string, p *xpath.Path) bool {
	cur := parent
	curCtx := ctx
	for i := range p.Steps {
		step := &p.Steps[i]
		if step.Test.Kind == xpath.Self {
			continue
		}
		if step.Test.Kind == xpath.Text {
			// Bare text() existence: give the element some text.
			if cur.text == "" {
				cur.text = "1"
			}
			break
		}
		label, chain, ok := t.resolveStep(curCtx, step)
		if !ok {
			return false
		}
		// Materialise intermediate elements for // expansions.
		for _, mid := range chain {
			mid := &tnode{name: mid}
			cur.children = append(cur.children, mid)
			cur = mid
		}
		node := &tnode{name: label}
		cur.children = append(cur.children, node)
		cur = node
		if !strings.HasPrefix(label, "@") {
			curCtx = label
		}
		for _, q := range step.Preds {
			if !t.materializeExpr(cur, curCtx, q) {
				return false
			}
		}
	}
	return true
}

// resolveStep picks a concrete label for a step and, for descendant axes,
// the chain of intermediate elements from the context to it (expanded via
// the DTD, as the paper prescribes for * and //).
func (t *trainer) resolveStep(ctx string, step *xpath.Step) (label string, chain []string, ok bool) {
	switch step.Test.Kind {
	case xpath.Element:
		label = step.Test.Name
	case xpath.Attribute:
		label = "@" + step.Test.Name
	case xpath.AnyElement:
		// Expand * to the first child element of the context.
		cands := t.childElements(ctx)
		if len(cands) == 0 {
			return "", nil, false
		}
		label = cands[0]
	case xpath.AnyAttribute:
		cands := t.attrs(ctx)
		if len(cands) == 0 {
			return "", nil, false
		}
		label = cands[0]
	default:
		return "", nil, false
	}
	if ctx == "" {
		// Top of the document: the chain must start at the DTD root.
		if strings.HasPrefix(label, "@") {
			return "", nil, false
		}
		if step.Axis == xpath.Child || label == t.d.Root {
			if label != t.d.Root && t.d.Element(label) == nil {
				// Unknown root element: accept verbatim (the
				// workload may be DTD-free).
				return label, nil, true
			}
			if label != t.d.Root {
				return "", nil, false
			}
			return label, nil, true
		}
		// //label from the top: path root ... label.
		path := t.pathTo(t.d.Root, label)
		if path == nil {
			return "", nil, false
		}
		return label, append([]string{t.d.Root}, path[:len(path)-1]...), true
	}
	if step.Axis == xpath.Child {
		if t.directChild(ctx, label) {
			return label, nil, true
		}
		if t.d.Element(ctx) == nil {
			// Context unknown to the DTD: accept verbatim.
			return label, nil, true
		}
		return "", nil, false
	}
	// Descendant: find an intermediate chain.
	path := t.pathTo(ctx, label)
	if path == nil {
		return "", nil, false
	}
	return label, path[:len(path)-1], true
}

func (t *trainer) childElements(ctx string) []string {
	if ctx == "" {
		return []string{t.d.Root}
	}
	var out []string
	for _, c := range t.d.Children(ctx) {
		if t.d.Element(c) != nil {
			out = append(out, c)
		}
	}
	return out
}

func (t *trainer) attrs(ctx string) []string {
	el := t.d.Element(ctx)
	if el == nil {
		return nil
	}
	var out []string
	for _, a := range el.Attrs {
		out = append(out, "@"+a.Name)
	}
	return out
}

func (t *trainer) directChild(ctx, label string) bool {
	if strings.HasPrefix(label, "@") {
		for _, a := range t.attrs(ctx) {
			if a == label {
				return true
			}
		}
		return false
	}
	for _, c := range t.d.Children(ctx) {
		if c == label {
			return true
		}
	}
	return false
}

// pathTo returns the element chain from ctx (exclusive) to target
// (inclusive) via BFS over the DTD graph, attributes allowed as final step.
func (t *trainer) pathTo(ctx, target string) []string {
	if t.d.Element(ctx) == nil {
		return nil
	}
	type qe struct {
		name string
		path []string
	}
	seen := map[string]bool{ctx: true}
	queue := []qe{{name: ctx}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if t.directChild(e.name, target) {
			return append(e.path, target)
		}
		for _, c := range t.d.Children(e.name) {
			if !seen[c] && t.d.Element(c) != nil {
				seen[c] = true
				cp := make([]string, len(e.path), len(e.path)+1)
				copy(cp, e.path)
				queue = append(queue, qe{name: c, path: append(cp, c)})
			}
		}
	}
	return nil
}

// materializeExpr grows the tree to exercise a predicate expression.
// Boolean connectors are "simply ignored" (Sec. 5): all operands of and/or
// and the bodies of not(...) are materialised.
func (t *trainer) materializeExpr(node *tnode, ctx string, e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.And:
		return t.materializeExpr(node, ctx, x.L) && t.materializeExpr(node, ctx, x.R)
	case *xpath.Or:
		return t.materializeExpr(node, ctx, x.L) && t.materializeExpr(node, ctx, x.R)
	case *xpath.Not:
		return t.materializeExpr(node, ctx, x.X)
	case *xpath.Exists:
		return t.materialize(node, ctx, x.Path)
	case *xpath.Cmp:
		v, ok := predindex.SatisfyingValue(x.Op, x.Const)
		if !ok {
			return false
		}
		return t.materializeCmp(node, ctx, x.Path, v.Text)
	default:
		return false
	}
}

// materializeCmp materialises a comparison's path and plants the satisfying
// value at its end.
func (t *trainer) materializeCmp(node *tnode, ctx string, p *xpath.Path, value string) bool {
	// Build the path, then set the text of the deepest created node.
	probe := &tnode{name: node.name}
	if !t.materialize(probe, ctx, p) {
		return false
	}
	deepest := probe
	for len(deepest.children) > 0 {
		deepest = deepest.children[len(deepest.children)-1]
	}
	if deepest == probe {
		// Self/text() path: the value lands on the node itself.
		if node.text == "" {
			node.text = value
		}
		return true
	}
	deepest.text = value
	node.children = append(node.children, probe.children...)
	return true
}

// sortChildren orders every element's children by the DTD sibling order
// (attributes first, then a topological order of the ≺ relation), as the
// paper requires for training data.
func (t *trainer) sortChildren(n *tnode) {
	for _, c := range n.children {
		t.sortChildren(c)
	}
	if len(n.children) < 2 {
		return
	}
	// Stable topological-ish sort: selection by "no remaining
	// predecessor". The relation is a partial order on small sets.
	sort.SliceStable(n.children, func(i, j int) bool {
		return t.order.Precedes(n.children[i].name, n.children[j].name)
	})
}
