// Package predindex implements the atomic predicate index of Sec. 2 of the
// paper: given a data value v ∈ V, find which predicates from a collection of
// atomic predicates are true on v.
//
// Relational predicates (=, !=, <, <=, >, >=) over the ordered domains int
// and string are answered with a sorted-boundary index: the distinct
// constants partition V into alternating open intervals and points, and the
// set of satisfied predicates is constant on each part (this is exactly the
// interval decomposition visible in the Tvalue table of Fig. 3). Satisfied
// sets are computed lazily per interval and cached.
//
// The contains / starts-with extension sketched in Sec. 2 is supported with
// an Aho–Corasick dictionary automaton (contains) and a prefix trie
// (starts-with), following the paper's pointer to Aho and Corasick [1].
package predindex

import (
	"sort"

	"repro/internal/xmlval"
)

// entry is one registered predicate.
type entry struct {
	id int32
	op xmlval.Op
	c  xmlval.Const
}

// Builder accumulates predicates before freezing them into an Index.
type Builder struct {
	entries []entry
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Add registers a predicate under the caller's id (typically the terminal
// AFA state id). IDs need not be distinct: registering the same id for two
// predicates means the id fires when either holds.
func (b *Builder) Add(id int32, op xmlval.Op, c xmlval.Const) {
	b.entries = append(b.entries, entry{id: id, op: op, c: c})
}

// Len reports the number of registered predicates.
func (b *Builder) Len() int { return len(b.entries) }

// Build freezes the registered predicates into an Index.
func (b *Builder) Build() *Index {
	ix := &Index{
		numCache: make(map[int][]int32),
		strCache: make(map[int][]int32),
	}
	numBuckets := map[float64]*opBuckets{}
	strBuckets := map[string]*opBuckets{}
	for _, e := range b.entries {
		switch e.op {
		case xmlval.OpExists:
			ix.always = append(ix.always, e.id)
		case xmlval.OpContains:
			ix.ac.add(e.c.Str, e.id)
			ix.hasStringFuncs = true
		case xmlval.OpStartsWith:
			ix.prefix.add(e.c.Str, e.id)
			ix.hasStringFuncs = true
		default:
			if e.c.Kind == xmlval.Number {
				bk := numBuckets[e.c.Num]
				if bk == nil {
					bk = &opBuckets{}
					numBuckets[e.c.Num] = bk
				}
				bk.add(e.op, e.id)
				ix.numPreds++
			} else {
				bk := strBuckets[e.c.Str]
				if bk == nil {
					bk = &opBuckets{}
					strBuckets[e.c.Str] = bk
				}
				bk.add(e.op, e.id)
				ix.strPreds++
			}
		}
	}
	ix.numConsts = make([]float64, 0, len(numBuckets))
	for c := range numBuckets {
		ix.numConsts = append(ix.numConsts, c)
	}
	sort.Float64s(ix.numConsts)
	ix.numOps = make([]*opBuckets, len(ix.numConsts))
	for i, c := range ix.numConsts {
		ix.numOps[i] = numBuckets[c]
	}
	ix.strConsts = make([]string, 0, len(strBuckets))
	for c := range strBuckets {
		ix.strConsts = append(ix.strConsts, c)
	}
	sort.Strings(ix.strConsts)
	ix.strOps = make([]*opBuckets, len(ix.strConsts))
	for i, c := range ix.strConsts {
		ix.strOps[i] = strBuckets[c]
	}
	sortIDs(ix.always)
	ix.ac.build()
	return ix
}

// opBuckets groups predicate ids per relational operator for one constant.
type opBuckets struct {
	eq, ne, lt, le, gt, ge []int32
}

func (b *opBuckets) add(op xmlval.Op, id int32) {
	switch op {
	case xmlval.OpEq:
		b.eq = append(b.eq, id)
	case xmlval.OpNe:
		b.ne = append(b.ne, id)
	case xmlval.OpLt:
		b.lt = append(b.lt, id)
	case xmlval.OpLe:
		b.le = append(b.le, id)
	case xmlval.OpGt:
		b.gt = append(b.gt, id)
	case xmlval.OpGe:
		b.ge = append(b.ge, id)
	}
}

// Index answers "which predicates hold on v" queries. It is safe for
// concurrent reads only after a warm-up that has touched the relevant
// intervals; the lazy per-interval cache is not synchronised (the XPush
// machine is single-threaded per stream, per the paper's execution model).
type Index struct {
	numConsts []float64
	numOps    []*opBuckets
	strConsts []string
	strOps    []*opBuckets
	numPreds  int
	strPreds  int

	always []int32 // OpExists predicates: true on every value

	ac             acAutomaton
	prefix         trieNode
	hasStringFuncs bool

	numCache map[int][]int32
	strCache map[int][]int32
}

// HasStringFuncs reports whether any contains/starts-with predicates are
// registered; their results are not interval-cacheable.
func (ix *Index) HasStringFuncs() bool { return ix.hasStringFuncs }

// NumIntervals reports the number of parts in the numeric interval
// partition (2k+1 for k distinct constants).
func (ix *Index) NumIntervals() int { return 2*len(ix.numConsts) + 1 }

// IntervalKey returns a compact identity of the (numeric, string) interval
// pair a value falls into. Values with equal keys satisfy exactly the same
// relational predicates, so the key can memoize downstream state lookups
// (it is how the paper precomputes "all the XPush states of the form
// tvalue(qt0, v)", Sec. 4).
func (ix *Index) IntervalKey(v xmlval.Value) int64 {
	n := 0
	if v.IsNum {
		n = numIntervalID(ix.numConsts, v.Num)
	} else {
		n = -1 // non-numeric: no numeric predicate can hold
	}
	s := strIntervalID(ix.strConsts, v.Trimmed())
	return (int64(n)+1)<<32 | int64(s)
}

// Match returns the sorted ids of all predicates true on v, including the
// always-true (exists) predicates. The returned slice must not be modified.
// When string-function predicates fire, a fresh slice is returned; otherwise
// the result is a cached per-interval slice.
func (ix *Index) Match(v xmlval.Value) []int32 {
	rel := ix.matchRelational(v)
	if !ix.hasStringFuncs {
		return rel
	}
	text := v.Trimmed()
	var dyn []int32
	dyn = ix.ac.match(text, dyn)
	dyn = ix.prefix.match(text, dyn)
	if len(dyn) == 0 {
		return rel
	}
	sortIDs(dyn)
	return mergeSorted(rel, dedupSorted(dyn))
}

// matchRelational returns the cached sorted satisfied set of relational and
// exists predicates for v.
func (ix *Index) matchRelational(v xmlval.Value) []int32 {
	var num []int32
	if v.IsNum && ix.numPreds > 0 {
		iid := numIntervalID(ix.numConsts, v.Num)
		var ok bool
		num, ok = ix.numCache[iid]
		if !ok {
			num = ix.computeNumInterval(iid)
			ix.numCache[iid] = num
		}
	}
	var str []int32
	if ix.strPreds > 0 {
		iid := strIntervalID(ix.strConsts, v.Trimmed())
		var ok bool
		str, ok = ix.strCache[iid]
		if !ok {
			str = ix.computeStrInterval(iid)
			ix.strCache[iid] = str
		}
	}
	// Merge the two cached slices plus the always-true set. The common
	// case has at most one non-empty side.
	switch {
	case len(num) == 0 && len(str) == 0:
		return ix.always
	case len(str) == 0 && len(ix.always) == 0:
		return num
	case len(num) == 0 && len(ix.always) == 0:
		return str
	default:
		return mergeSorted(mergeSorted(num, str), ix.always)
	}
}

// Interval ids: 2*i   = open interval just below constant i (or above all
//
//	constants when i == len(consts)),
//
// 2*i+1 = the point at constant i.
func numIntervalID(consts []float64, v float64) int {
	i := sort.SearchFloat64s(consts, v)
	if i < len(consts) && consts[i] == v {
		return 2*i + 1
	}
	return 2 * i
}

func strIntervalID(consts []string, v string) int {
	i := sort.SearchStrings(consts, v)
	if i < len(consts) && consts[i] == v {
		return 2*i + 1
	}
	return 2 * i
}

func (ix *Index) computeNumInterval(iid int) []int32 {
	return computeInterval(iid, len(ix.numConsts), func(i int) *opBuckets { return ix.numOps[i] })
}

func (ix *Index) computeStrInterval(iid int) []int32 {
	return computeInterval(iid, len(ix.strConsts), func(i int) *opBuckets { return ix.strOps[i] })
}

// computeInterval materialises the satisfied-predicate set for one interval
// of the partition.
func computeInterval(iid, k int, bucket func(int) *opBuckets) []int32 {
	var out []int32
	point := iid%2 == 1
	pos := iid / 2 // for a point: the constant index; for a gap: the
	// index of the first constant above the interval.
	for j := 0; j < k; j++ {
		b := bucket(j)
		switch {
		case point && j == pos:
			out = append(out, b.eq...)
			out = append(out, b.le...)
			out = append(out, b.ge...)
		case j >= pos && !point || point && j > pos:
			// Constant j lies strictly above the value.
			out = append(out, b.lt...)
			out = append(out, b.le...)
			out = append(out, b.ne...)
		default:
			// Constant j lies strictly below the value.
			out = append(out, b.gt...)
			out = append(out, b.ge...)
			out = append(out, b.ne...)
		}
	}
	sortIDs(out)
	return dedupSorted(out)
}

func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func dedupSorted(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// mergeSorted merges two sorted id slices into a fresh sorted deduplicated
// slice.
func mergeSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Representatives returns one value per interval of the partition: every
// numeric and string constant (the point intervals) plus a witness inside
// each gap between and beyond them. Touching all of them materialises every
// satisfied-set the relational predicates can produce; the XPush machine's
// state precomputation (Sec. 4) and eager construction iterate them.
func (ix *Index) Representatives() []xmlval.Value {
	out := make([]xmlval.Value, 0, 2*(len(ix.numConsts)+len(ix.strConsts))+2)
	for i, c := range ix.numConsts {
		if i == 0 {
			out = append(out, xmlval.FromNumber(c-1))
		} else {
			prev := ix.numConsts[i-1]
			out = append(out, xmlval.FromNumber((prev+c)/2))
		}
		out = append(out, xmlval.FromNumber(c))
	}
	if n := len(ix.numConsts); n > 0 {
		out = append(out, xmlval.FromNumber(ix.numConsts[n-1]+1))
	}
	for i, c := range ix.strConsts {
		if i == 0 && c != "" {
			out = append(out, xmlval.New(""))
		} else if i > 0 {
			// The first string strictly above the previous constant.
			out = append(out, xmlval.New(ix.strConsts[i-1]+"\x00"))
		}
		out = append(out, xmlval.New(c))
	}
	if n := len(ix.strConsts); n > 0 {
		out = append(out, xmlval.New(ix.strConsts[n-1]+"\x7f"))
	}
	return out
}

// SatisfyingValue produces a value that satisfies the predicate, used by the
// training-data generator of Sec. 5 ("atomic predicates are replaced with
// values that satisfy them"). The second result is false when no value in
// the domain satisfies the predicate (cannot happen for this fragment).
func SatisfyingValue(op xmlval.Op, c xmlval.Const) (xmlval.Value, bool) {
	if c.Kind == xmlval.Number {
		switch op {
		case xmlval.OpEq, xmlval.OpLe, xmlval.OpGe:
			return xmlval.FromNumber(c.Num), true
		case xmlval.OpNe:
			return xmlval.FromNumber(c.Num + 1), true
		case xmlval.OpLt:
			return xmlval.FromNumber(c.Num - 1), true
		case xmlval.OpGt:
			return xmlval.FromNumber(c.Num + 1), true
		case xmlval.OpExists:
			return xmlval.New("x"), true
		default:
			return xmlval.Value{}, false
		}
	}
	switch op {
	case xmlval.OpEq, xmlval.OpLe, xmlval.OpGe, xmlval.OpContains, xmlval.OpStartsWith:
		return xmlval.New(c.Str), true
	case xmlval.OpNe, xmlval.OpGt:
		return xmlval.New(c.Str + "z"), true
	case xmlval.OpLt:
		if c.Str == "" {
			return xmlval.Value{}, false // nothing sorts below ""
		}
		return xmlval.New(""), true
	case xmlval.OpExists:
		return xmlval.New("x"), true
	default:
		return xmlval.Value{}, false
	}
}
