package afa

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/xpath"
)

// Property tests for the eval closure (Sec. 3.2): for any input set q,
// eval(q) ⊇ q, eval is idempotent, monotone in its input for NOT-free
// workloads, and deterministic.
func propertyAFA(t *testing.T, queries ...string) *AFA {
	t.Helper()
	fs := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		fs[i] = xpath.MustParse(q)
	}
	a, err := Compile(fs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func randomSet(r *rand.Rand, n int) []int32 {
	var out []int32
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

func copyOf(a []int32) []int32 { return append([]int32(nil), a...) }

func TestEvalExtensive(t *testing.T) {
	workloads := [][]string{
		{"//a[b/text()=1 and .//a[@c>2]]", "//a[@c>2 and b/text()=1]"},
		{"/a[b=1 or c=2 or d=3]", "/a[(b=1 or c=2) and d=3]"},
		{"/a[b[c[d=1]]]", "/a[.//x=1]", "//y[z>5 and w<3]"},
	}
	r := rand.New(rand.NewSource(31))
	for _, queries := range workloads {
		a := propertyAFA(t, queries...)
		ev := a.NewEvaluator()
		for trial := 0; trial < 300; trial++ {
			q := randomSet(r, a.NumStates())
			out := copyOf(ev.Eval(q, nil))
			// Superset of the input.
			if !isSubset(q, out) {
				t.Fatalf("eval(%v) = %v does not contain input", q, out)
			}
			// Sorted, deduplicated.
			if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
				t.Fatalf("eval output unsorted: %v", out)
			}
			for i := 1; i < len(out); i++ {
				if out[i] == out[i-1] {
					t.Fatalf("eval output has duplicates: %v", out)
				}
			}
			// Idempotent.
			out2 := copyOf(ev.Eval(out, nil))
			if !equalSets(out, out2) {
				t.Fatalf("eval not idempotent: %v -> %v", out, out2)
			}
			// Deterministic.
			out3 := copyOf(ev.Eval(q, nil))
			if !equalSets(out, out3) {
				t.Fatalf("eval not deterministic: %v vs %v", out, out3)
			}
		}
	}
}

func TestEvalMonotoneWithoutNot(t *testing.T) {
	// Without NOT states, q ⊆ q' implies eval(q) ⊆ eval(q').
	a := propertyAFA(t,
		"/a[b=1 and c=2 and d=3]",
		"/a[b=1 or c[x=4]]",
		"//m[n=1 and .//p=2]",
	)
	ev := a.NewEvaluator()
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 300; trial++ {
		q1 := randomSet(r, a.NumStates())
		q2 := copyOf(q1)
		// Grow q2 by a few extra states.
		for i := 0; i < 3; i++ {
			q2 = append(q2, int32(r.Intn(a.NumStates())))
		}
		sort.Slice(q2, func(i, j int) bool { return q2[i] < q2[j] })
		q2 = dedup(q2)
		e1 := copyOf(ev.Eval(q1, nil))
		e2 := copyOf(ev.Eval(q2, nil))
		if !isSubset(e1, e2) {
			t.Fatalf("monotonicity violated: eval(%v)=%v ⊄ eval(%v)=%v", q1, e1, q2, e2)
		}
	}
}

func TestEvalAntitoneNot(t *testing.T) {
	// A NOT state is in eval(q) exactly when its successor is not implied
	// by q: adding the successor must remove the NOT.
	a := propertyAFA(t, "/a[not(b=1)]")
	ev := a.NewEvaluator()
	var not int32 = -1
	for i := 0; i < a.NumStates(); i++ {
		if a.Kind(int32(i)) == NOT {
			not = int32(i)
		}
	}
	if not < 0 {
		t.Fatal("no NOT state")
	}
	succ := a.Eps(not)[0]
	with := copyOf(ev.Eval([]int32{succ}, nil))
	without := copyOf(ev.Eval(nil, nil))
	if containsState(with, not) {
		t.Errorf("NOT fired although successor present: %v", with)
	}
	if !containsState(without, not) {
		t.Errorf("NOT did not fire on empty set: %v", without)
	}
}

func TestDeltaInvSorted(t *testing.T) {
	a := propertyAFA(t, "//a[b=1]", "//a//b[c=2]", "/x/*/y[@z=3]")
	r := rand.New(rand.NewSource(33))
	syms := []int32{SymOtherElem, SymOtherAttr}
	for name := range map[string]bool{"a": true, "b": true, "c": true, "x": true, "y": true, "@z": true} {
		if id, ok := a.Syms.Lookup(name); ok {
			syms = append(syms, id)
		}
	}
	for trial := 0; trial < 500; trial++ {
		q := randomSet(r, a.NumStates())
		sym := syms[r.Intn(len(syms))]
		out := a.DeltaInv(q, sym, nil)
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			t.Fatalf("DeltaInv unsorted: %v", out)
		}
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				t.Fatalf("DeltaInv duplicates: %v", out)
			}
		}
		// Every reported state really transitions into q on sym.
		for _, s := range out {
			hit := false
			for _, tgt := range a.Delta(s, sym, nil) {
				if containsState(q, tgt) {
					hit = true
					break
				}
			}
			if !hit {
				t.Fatalf("DeltaInv reported %d which has no %s-edge into %v",
					s, a.Syms.Name(sym), q)
			}
		}
	}
}

func isSubset(sub, super []int32) bool {
	for _, x := range sub {
		if !containsState(super, x) {
			return false
		}
	}
	return true
}

func containsState(set []int32, x int32) bool {
	for _, e := range set {
		if e == x {
			return true
		}
	}
	return false
}

func equalSets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
