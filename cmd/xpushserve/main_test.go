package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/server"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, opts, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":9310" || cfg.MetricsAddr != ":9311" {
		t.Errorf("addrs = %q, %q", cfg.Addr, cfg.MetricsAddr)
	}
	if cfg.Backend != server.BackendEngine {
		t.Errorf("backend = %q", cfg.Backend)
	}
	if cfg.Policy != server.DropNewest {
		t.Errorf("policy = %q", cfg.Policy)
	}
	if cfg.QueueDepth != 128 || cfg.BlockDeadline != time.Second {
		t.Errorf("queue = %d/%v", cfg.QueueDepth, cfg.BlockDeadline)
	}
	if opts.drain != 10*time.Second {
		t.Errorf("drain = %v", opts.drain)
	}
	if cfg.WAL != nil || opts.wal != nil {
		t.Error("WAL enabled without -wal-dir")
	}
}

func TestBuildConfigFull(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("# c\n//a[b > 1]\n\n//c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, opts, err := buildConfig([]string{
		"-addr", "127.0.0.1:0",
		"-metrics-addr", "",
		"-queries", queries,
		"-backend", "pool",
		"-workers", "3",
		"-policy", "block",
		"-queue-depth", "64",
		"-block-deadline", "250ms",
		"-max-conns", "10",
		"-max-doc-bytes", "4096",
		"-snapshot", filepath.Join(dir, "s.xpw"),
		"-snapshot-interval", "5s",
		"-drain-timeout", "3s",
		"-topdown",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backend != server.BackendPool || cfg.Workers != 3 {
		t.Errorf("backend = %q workers=%d", cfg.Backend, cfg.Workers)
	}
	if cfg.Policy != server.Block || cfg.QueueDepth != 64 || cfg.BlockDeadline != 250*time.Millisecond {
		t.Errorf("policy = %q/%d/%v", cfg.Policy, cfg.QueueDepth, cfg.BlockDeadline)
	}
	if cfg.MaxConns != 10 || cfg.MaxDocBytes != 4096 {
		t.Errorf("limits = %d/%d", cfg.MaxConns, cfg.MaxDocBytes)
	}
	if len(cfg.InitialQueries) != 2 || cfg.InitialQueries[0] != "//a[b > 1]" {
		t.Errorf("initial queries = %v", cfg.InitialQueries)
	}
	if !cfg.Engine.TopDownPruning {
		t.Error("-topdown not wired through")
	}
	if cfg.SnapshotInterval != 5*time.Second || opts.drain != 3*time.Second {
		t.Errorf("intervals = %v/%v", cfg.SnapshotInterval, opts.drain)
	}
}

func TestBuildConfigTracing(t *testing.T) {
	cfg, opts, err := buildConfig([]string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "",
		"-debug-addr", "127.0.0.1:0",
		"-trace-sample", "500",
		"-trace-slow", "50ms",
		"-trace-out", "trace.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DebugAddr != "127.0.0.1:0" {
		t.Errorf("debug addr = %q", cfg.DebugAddr)
	}
	if cfg.TraceSample != 500 || cfg.TraceSlow != 50*time.Millisecond {
		t.Errorf("tracing = 1/%d, slow %v", cfg.TraceSample, cfg.TraceSlow)
	}
	if opts.traceOut != "trace.json" {
		t.Errorf("trace out = %q", opts.traceOut)
	}
	// Defaults: fully off.
	cfg, opts, err = buildConfig([]string{"-addr", "127.0.0.1:0", "-metrics-addr", ""})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DebugAddr != "" || cfg.TraceSample != 0 || cfg.TraceSlow != 0 || opts.traceOut != "" {
		t.Errorf("tracing defaults not off: %q 1/%d %v %q", cfg.DebugAddr, cfg.TraceSample, cfg.TraceSlow, opts.traceOut)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, _, err := buildConfig([]string{"-policy", "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, _, err := buildConfig([]string{"-backend", "bogus"}); err == nil {
		t.Error("bogus backend accepted")
	}
	if _, _, err := buildConfig([]string{"-queries", "/nonexistent.txt"}); err == nil {
		t.Error("missing queries file accepted")
	}
	if _, _, err := buildConfig([]string{"-dtd", "/nonexistent.dtd"}); err == nil {
		t.Error("missing dtd file accepted")
	}
	if _, _, err := buildConfig([]string{"-fsync", "sometimes"}); err == nil {
		t.Error("bogus fsync policy accepted")
	}
	if _, _, err := buildConfig([]string{"-trace-sample", "-1"}); err == nil {
		t.Error("negative trace sample accepted")
	}
}

func TestBuildConfigWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal") // create-if-missing path
	cfg, opts, err := buildConfig([]string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "",
		"-wal-dir", dir, "-fsync", "never",
		"-wal-segment-bytes", "4096", "-retention-bytes", "65536",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WAL == nil || cfg.Cursors == nil || opts.wal == nil {
		t.Fatal("-wal-dir did not wire the WAL and cursor store")
	}
	defer opts.wal.Close()
	if _, err := cfg.WAL.Append([]byte("<x/>")); err != nil {
		t.Fatalf("append through wired WAL: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "cursors")); err != nil || !fi.IsDir() {
		t.Errorf("cursor dir not created: %v", err)
	}
}

func TestBuildConfigWALUnwritable(t *testing.T) {
	// A path below a regular file cannot be created, even running as root
	// (where permission-bit checks would pass).
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := buildConfig([]string{"-wal-dir", filepath.Join(blocker, "wal")})
	if err == nil || !strings.Contains(err.Error(), "-wal-dir") {
		t.Fatalf("unwritable -wal-dir accepted: %v", err)
	}
}

func TestVersionFlag(t *testing.T) {
	_, opts, err := buildConfig([]string{"-version"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.version {
		t.Fatal("-version not reported")
	}
	v := versionString()
	if !strings.Contains(v, "xpushserve") || !strings.Contains(v, "go1") {
		t.Errorf("versionString() = %q, want name and Go runtime", v)
	}
}

// TestServeAndDrain boots the broker through the same configuration main
// uses (WAL included) and exercises the drain path New→Shutdown without
// signals.
func TestServeAndDrain(t *testing.T) {
	cfg, opts, err := buildConfig([]string{
		"-addr", "127.0.0.1:0", "-metrics-addr", "",
		"-wal-dir", filepath.Join(t.TempDir(), "wal"), "-fsync", "never",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := opts.wal.Close(); err != nil {
		t.Fatal(err)
	}
}
