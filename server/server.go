package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	xpushstream "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Backend selects the filtering deployment behind the broker.
type Backend string

const (
	// BackendEngine is a single shared engine: publishes are serialized,
	// subscription changes are cheap copy-on-write layer derivations that
	// keep the warm machine state (the default, and the only backend that
	// supports snapshot checkpoints).
	BackendEngine Backend = "engine"
	// BackendPool runs publishes concurrently on a pool of engine clones
	// (documents are embarrassingly parallel). Subscription changes
	// rebuild the pool, so it fits mostly-static workloads under heavy
	// publish traffic.
	BackendPool Backend = "pool"
	// BackendSharded partitions the workload across shards that filter
	// each document in parallel — for huge cold workloads (see the
	// ShardedEngine caveats). Subscription changes recompile the shards.
	BackendSharded Backend = "sharded"
)

// ParseBackend validates a backend name from configuration.
func ParseBackend(s string) (Backend, error) {
	switch b := Backend(s); b {
	case BackendEngine, BackendPool, BackendSharded:
		return b, nil
	case "":
		return BackendEngine, nil
	}
	return "", fmt.Errorf("server: unknown backend %q (want %s, %s, or %s)",
		s, BackendEngine, BackendPool, BackendSharded)
}

// Config configures a Server. The zero value listens on a random loopback
// port with the engine backend, drop-newest backpressure, and no metrics
// endpoint.
type Config struct {
	// Addr is the data-plane listen address ("" = 127.0.0.1:0).
	Addr string
	// MetricsAddr serves GET /metrics and /healthz ("" = disabled).
	MetricsAddr string
	// DebugAddr serves the introspection endpoints ("" = disabled):
	// /debug/traces (recorded document traces), /debug/machine (live
	// filter-machine snapshot), /debug/pprof/* (Go profiling), plus
	// /metrics and /healthz. pprof exposes heap contents — bind it to
	// loopback or a trusted network.
	DebugAddr string

	// TraceSample enables head sampling: one of every TraceSample published
	// documents is traced end to end (PUBLISH receive through the last
	// DELIVER write, including WAL fsync and queue wait). 0 disables.
	TraceSample int
	// TraceSlow enables tail capture: every document is measured and any
	// whose end-to-end latency exceeds the threshold is kept in a separate
	// slow-trace ring regardless of sampling. 0 disables. With both
	// TraceSample and TraceSlow zero, tracing is compiled in but fully
	// disabled and the publish hot path stays zero-allocation.
	TraceSlow time.Duration

	// Backend selects the filtering deployment ("" = BackendEngine).
	Backend Backend
	// Workers sets the pool size / shard count (<= 0 = GOMAXPROCS).
	Workers int
	// Engine is the compile configuration for the filter workload.
	Engine xpushstream.Config
	// InitialQueries is the boot workload (e.g. for warm-start
	// benchmarks); its filters are unbound until a subscriber claims new
	// ones, but they warm the machine.
	InitialQueries []string

	// Policy selects the slow-subscriber backpressure policy
	// ("" = DropNewest).
	Policy Policy
	// QueueDepth bounds each subscriber's delivery queue (<= 0 = 128).
	QueueDepth int
	// BlockDeadline is the Block policy's maximum wait for queue space
	// (<= 0 = 1s).
	BlockDeadline time.Duration

	// AsyncPublishWindow bounds how many PublishAsync frames one connection
	// may have in flight before its read loop stops consuming new frames
	// (<= 0 = 256). The window is the server-side backstop; clients window
	// themselves via Client.PublishPipelined.
	AsyncPublishWindow int

	// MaxConns bounds concurrent connections (0 = unlimited).
	MaxConns int
	// MaxDocBytes bounds a published document, mirroring
	// sax.Splitter.MaxDocBytes on the streaming publish path
	// (0 = 64 MiB). It is enforced as the frame payload limit.
	MaxDocBytes int
	// ReadTimeout is the per-frame read deadline for connections with no
	// active subscriptions (0 = none). Subscriber connections are exempt:
	// they legitimately go quiet forever.
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (0 = none).
	WriteTimeout time.Duration

	// WAL, when set, makes publishing durable: every document is appended
	// to the log (assigned a monotonic offset) before fan-out, and durable
	// subscriptions replay from it. Use WrapWAL to pass a *wal.Log.
	WAL DocLog
	// Cursors persists durable subscribers' replay cursors; durable
	// subscriptions require it alongside WAL.
	Cursors CursorStore

	// SnapshotPath enables warm-start: on boot, if the file exists, the
	// workload and machine state are restored from it (engine backend
	// only); Checkpoint and Shutdown write it.
	SnapshotPath string
	// SnapshotInterval enables periodic checkpoints (0 = only on
	// Shutdown).
	SnapshotInterval time.Duration

	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) maxDocBytes() int {
	if c.MaxDocBytes > 0 {
		return c.MaxDocBytes
	}
	return 64 << 20
}

func (c *Config) blockDeadline() time.Duration {
	if c.BlockDeadline > 0 {
		return c.BlockDeadline
	}
	return time.Second
}

func (c *Config) asyncPublishWindow() int {
	if c.AsyncPublishWindow > 0 {
		return c.AsyncPublishWindow
	}
	return 256
}

// errDraining rejects work arriving during graceful shutdown.
var errDraining = errors.New("server: draining")

// core is one immutable generation of the broker's workload: the compiled
// backend plus the filter-id -> subscriber binding. Subscription changes
// build the next core off to the side and atomically swap the pointer
// (copy-on-write), so the publish path never observes a half-updated
// workload — it either filters on the old generation or the new one.
type core struct {
	queries []string
	removed []bool
	subs    []*conn // filter id -> owning subscriber (nil = unbound)
	durable []bool  // filter id -> delivered by the owner's WAL pump, not the queues

	engine  *xpushstream.Engine        // BackendEngine
	pool    *xpushstream.Pool          // BackendPool
	sharded *xpushstream.ShardedEngine // BackendSharded
}

// filterDocument runs one document through the core's backend. For the
// engine and sharded backends the caller must hold the server's publish
// lock (they process one stream at a time); the pool backend is internally
// concurrent. tc is nil for untraced documents (the common case) and
// selects the backend's plain filtering path.
func (c *core) filterDocument(doc []byte, tc *trace.Ctx, parent trace.SpanID) ([]int, error) {
	switch {
	case c.pool != nil:
		return c.pool.FilterDocumentTraced(doc, tc, parent)
	case c.sharded != nil:
		return c.sharded.FilterDocumentTraced(doc, tc, parent)
	default:
		return c.engine.FilterDocumentTraced(doc, tc, parent)
	}
}

// concurrent reports whether filterDocument may be called without the
// publish lock.
func (c *core) concurrent() bool { return c.pool != nil }

func (c *core) stats() xpushstream.Stats {
	switch {
	case c.pool != nil:
		return c.pool.Stats()
	case c.sharded != nil:
		return c.sharded.Stats()
	default:
		return c.engine.Stats()
	}
}

// subscriptions counts bound filters.
func (c *core) subscriptions() int {
	n := 0
	for _, s := range c.subs {
		if s != nil {
			n++
		}
	}
	return n
}

// Server is the broker: it owns the listener, the subscription table, the
// copy-on-write filter core, and the per-subscriber delivery queues.
type Server struct {
	cfg Config

	ln       net.Listener
	mln      net.Listener
	dln      net.Listener
	httpSrv  *http.Server
	debugSrv *http.Server
	reg      *obs.Registry
	tracer   *trace.Recorder // nil when tracing is disabled

	// ctl serializes control-plane changes (subscribe/unsubscribe/
	// checkpoint); pubMu serializes filtering for the single-stream
	// backends. They are independent: a subscription change builds the
	// next core without stalling publishes on the current one.
	ctl   sync.Mutex
	pubMu sync.Mutex
	cur   atomic.Pointer[core]

	draining atomic.Bool

	// Durable delivery (nil / empty unless Config.WAL is set).
	wal      DocLog
	cursors  CursorStore
	durMu    sync.Mutex
	durables map[string]*conn // durable name -> owning connection
	noteMu   sync.Mutex
	walNote  chan struct{} // closed-and-replaced on every append

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wg       sync.WaitGroup
	ckStop   chan struct{}
	ckWG     sync.WaitGroup
	closeOne sync.Once

	// Metrics.
	pumpsActive  atomic.Int64 // running durable pump goroutines
	mPublishes   *obs.Counter
	mPublishErrs *obs.Counter
	mDeliveries  *obs.Counter
	mConnReject  *obs.Counter
	mDropped     map[Policy]*obs.Counter
	mAcks        *obs.Counter
	mDurDeliver  *obs.Counter
	deliverLat   obs.Histogram
}

// New compiles (or warm-starts) the workload, starts the listeners, and
// returns a serving broker.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == "" {
		cfg.Backend = BackendEngine
	}
	if cfg.Policy == "" {
		cfg.Policy = DropNewest
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if _, err := ParseBackend(string(cfg.Backend)); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		conns:    map[*conn]struct{}{},
		reg:      obs.NewRegistry(),
		tracer:   trace.New(cfg.TraceSample, cfg.TraceSlow),
		ckStop:   make(chan struct{}),
		wal:      cfg.WAL,
		cursors:  cfg.Cursors,
		durables: map[string]*conn{},
		walNote:  make(chan struct{}),
	}
	c, err := s.bootCore()
	if err != nil {
		return nil, err
	}
	s.cur.Store(c)
	s.registerMetrics()

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	s.ln, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.MetricsAddr != "" {
		s.mln, err = net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			s.ln.Close()
			return nil, err
		}
		s.httpSrv = &http.Server{Handler: s.reg.NewMuxWithStatus(s.healthStatus)}
		go s.httpSrv.Serve(s.mln)
	}
	if cfg.DebugAddr != "" {
		s.dln, err = net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			s.ln.Close()
			if s.mln != nil {
				s.mln.Close()
			}
			return nil, err
		}
		s.debugSrv = &http.Server{Handler: s.debugMux()}
		go s.debugSrv.Serve(s.dln)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.SnapshotPath != "" && cfg.SnapshotInterval > 0 {
		s.ckWG.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// bootCore builds the boot workload: from the snapshot file when warm-start
// is configured and the file exists, otherwise from InitialQueries.
func (s *Server) bootCore() (*core, error) {
	if s.cfg.SnapshotPath != "" && s.cfg.Backend == BackendEngine {
		if f, err := os.Open(s.cfg.SnapshotPath); err == nil {
			defer f.Close()
			e, err := xpushstream.OpenWorkloadSnapshot(bufio.NewReader(f), s.cfg.Engine)
			if err != nil {
				return nil, fmt.Errorf("server: warm-start from %s: %w", s.cfg.SnapshotPath, err)
			}
			q := e.Queries()
			s.logf("warm-start: restored %d filters, %d machine states from %s",
				len(q), e.Stats().States, s.cfg.SnapshotPath)
			return &core{queries: q, removed: e.Removed(), subs: make([]*conn, len(q)),
				durable: make([]bool, len(q)), engine: e}, nil
		}
	}
	return s.buildCore(append([]string(nil), s.cfg.InitialQueries...),
		make([]bool, len(s.cfg.InitialQueries)), make([]*conn, len(s.cfg.InitialQueries)),
		make([]bool, len(s.cfg.InitialQueries)), nil)
}

// buildCore compiles a full workload for the configured backend. For the
// engine backend, derived is used when non-nil (the copy-on-write fast
// path); the pool and sharded backends always recompile.
func (s *Server) buildCore(queries []string, removed []bool, subs []*conn, durable []bool, derived *xpushstream.Engine) (*core, error) {
	c := &core{queries: queries, removed: removed, subs: subs, durable: durable}
	switch s.cfg.Backend {
	case BackendPool:
		e, err := s.compileWithRemoved(queries, removed)
		if err != nil {
			return nil, err
		}
		c.pool, err = xpushstream.NewPool(e, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
	case BackendSharded:
		var err error
		c.sharded, err = xpushstream.CompileSharded(queries, s.cfg.Engine, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
	default:
		if derived != nil {
			c.engine = derived
			break
		}
		e, err := s.compileWithRemoved(queries, removed)
		if err != nil {
			return nil, err
		}
		c.engine = e
	}
	return c, nil
}

func (s *Server) compileWithRemoved(queries []string, removed []bool) (*xpushstream.Engine, error) {
	e, err := xpushstream.Compile(queries, s.cfg.Engine)
	if err != nil {
		return nil, err
	}
	for i, r := range removed {
		if r {
			if err := e.RemoveQuery(i); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// Addr returns the data-plane listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the /metrics listen address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.mln == nil {
		return ""
	}
	return s.mln.Addr().String()
}

// Stats returns the current workload generation's engine statistics.
func (s *Server) Stats() xpushstream.Stats { return s.cur.Load().stats() }

// Registry exposes the server's metric registry so embedders (like
// examples/netrouter) can add their own series next to the built-ins.
func (s *Server) Registry() *xpushstream.Registry { return s.reg }

// NumSubscriptions reports the number of bound filters.
func (s *Server) NumSubscriptions() int { return s.cur.Load().subscriptions() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) registerMetrics() {
	xpushstream.RegisterMetrics(s.reg, "xpush", xpushstream.StatsFunc(func() xpushstream.Stats {
		return s.cur.Load().stats()
	}))
	s.mPublishes = s.reg.Counter("xpushserve_publishes_total", "documents published to the broker")
	s.mPublishErrs = s.reg.Counter("xpushserve_publish_errors_total", "rejected or failed publishes")
	s.mDeliveries = s.reg.Counter("xpushserve_deliveries_total", "DELIVER frames written to subscribers")
	s.mConnReject = s.reg.Counter("xpushserve_connections_rejected_total", "connections refused by the max-connections limit")
	s.mDropped = map[Policy]*obs.Counter{}
	for _, p := range []Policy{DropOldest, DropNewest, Block, Disconnect} {
		name := "xpushserve_dropped_" + strings.ReplaceAll(string(p), "-", "_") + "_total"
		s.mDropped[p] = s.reg.Counter(name, "deliveries dropped under the "+string(p)+" backpressure policy")
	}
	s.reg.CounterFunc("xpushserve_dropped_total", "deliveries dropped across all backpressure policies", func() int64 {
		var n int64
		for _, c := range s.mDropped {
			n += c.Value()
		}
		return n
	})
	s.reg.GaugeFunc("xpushserve_connections", "open broker connections", func() float64 {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		return float64(len(s.conns))
	})
	s.reg.GaugeFunc("xpushserve_subscriptions", "bound subscriber filters", func() float64 {
		return float64(s.cur.Load().subscriptions())
	})
	s.reg.GaugeFunc("xpushserve_queue_depth", "queued deliveries summed over subscribers", func() float64 {
		s.connMu.Lock()
		defer s.connMu.Unlock()
		n := 0
		for cn := range s.conns {
			n += cn.queueDepth()
		}
		return float64(n)
	})
	s.reg.SummaryFunc("xpushserve_delivery_latency_seconds",
		"publish-to-DELIVER-write latency quantiles", []float64{0.5, 0.9, 0.99},
		s.deliverLat.Snapshot)
	s.reg.HistogramFunc("xpushserve_delivery_latency_histogram_seconds",
		"publish-to-DELIVER-write latency (log buckets)", s.deliverLat.Snapshot)
	if s.tracer.Enabled() {
		s.reg.CounterFunc("xpushserve_traces_started_total", "document traces begun (sampled or slow-candidate)", func() int64 {
			return s.tracer.Stats().Started
		})
		s.reg.CounterFunc("xpushserve_traces_kept_total", "document traces retained in a ring", func() int64 {
			return s.tracer.Stats().Kept
		})
		s.reg.CounterFunc("xpushserve_traces_slow_total", "document traces kept by the slow-outlier tail capture", func() int64 {
			return s.tracer.Stats().Slow
		})
	}
	obs.RegisterProcessMetrics(s.reg)
	if s.wal != nil {
		s.registerDurableMetrics()
	}
}

// ---------------------------------------------------------------------------
// Control plane: copy-on-write workload swaps.

// subscribe registers one filter for cn and returns its id. The id is the
// filter's index in the engine workload; ids are never reused. Durable
// filters are excluded from queue fan-out: the owner's WAL pump delivers
// them (see subscribeDurable).
func (s *Server) subscribe(cn *conn, query string, durable bool) (uint64, error) {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	if s.draining.Load() {
		return 0, errDraining
	}
	cur := s.cur.Load()
	id := uint64(len(cur.queries))
	queries := append(append(make([]string, 0, len(cur.queries)+1), cur.queries...), query)
	removed := append(append(make([]bool, 0, len(queries)), cur.removed...), false)
	subs := append(append(make([]*conn, 0, len(queries)), cur.subs...), cn)
	dur := append(append(make([]bool, 0, len(queries)), cur.durable...), durable)
	var derived *xpushstream.Engine
	if s.cfg.Backend == BackendEngine {
		var err error
		derived, err = cur.engine.WithQueries([]string{query})
		if err != nil {
			return 0, err
		}
	}
	next, err := s.buildCore(queries, removed, subs, dur, derived)
	if err != nil {
		return 0, err
	}
	s.cur.Store(next)
	return id, nil
}

// unsubscribe removes one filter; only the owning connection may remove it.
func (s *Server) unsubscribe(cn *conn, id uint64) error {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	cur := s.cur.Load()
	if id >= uint64(len(cur.subs)) || cur.subs[id] != cn {
		return fmt.Errorf("server: filter %d is not subscribed on this connection", id)
	}
	next, err := s.coreWithout(cur, []uint64{id})
	if err != nil {
		return err
	}
	s.cur.Store(next)
	return nil
}

// unsubscribeConn removes every filter bound to a departing connection.
func (s *Server) unsubscribeConn(cn *conn) {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	cur := s.cur.Load()
	var ids []uint64
	for i, owner := range cur.subs {
		if owner == cn {
			ids = append(ids, uint64(i))
		}
	}
	if len(ids) == 0 {
		return
	}
	next, err := s.coreWithout(cur, ids)
	if err != nil {
		s.logf("unsubscribe on disconnect: %v", err)
		return
	}
	s.cur.Store(next)
}

// coreWithout builds the next core with the given filter ids removed.
func (s *Server) coreWithout(cur *core, ids []uint64) (*core, error) {
	queries := append([]string(nil), cur.queries...)
	removed := append([]bool(nil), cur.removed...)
	subs := append([]*conn(nil), cur.subs...)
	durable := append([]bool(nil), cur.durable...)
	for _, id := range ids {
		removed[id] = true
		subs[id] = nil
		durable[id] = false
	}
	var derived *xpushstream.Engine
	if s.cfg.Backend == BackendEngine {
		derived = cur.engine
		for _, id := range ids {
			var err error
			derived, err = derived.WithoutQuery(int(id))
			if err != nil {
				return nil, err
			}
		}
	}
	return s.buildCore(queries, removed, subs, durable, derived)
}

// ---------------------------------------------------------------------------
// Data plane.

// publish filters one document on the current workload generation and fans
// the matches out to subscriber queues. It returns the matched-filter
// count. On a WAL-backed server the document is appended to the log (and
// the append is durable per the fsync policy) before anything else — a
// failed append rejects the publish, so every accepted document is
// replayable.
func (s *Server) publish(doc []byte) (int, error) {
	if s.draining.Load() {
		s.mPublishErrs.Inc()
		return 0, errDraining
	}
	// tc is nil for untraced documents — the common case, and the one the
	// zero-allocation guarantee covers; every span call below is a nil
	// no-op then. The publish path holds one trace reference, released by
	// the deferred Finish; each enqueued delivery takes another, so the
	// trace completes (and its total latency is measured) at the last
	// DELIVER write, not when publish returns.
	tc := s.tracer.Begin("publish")
	defer tc.Finish()
	tc.SetAttr(trace.Root, "doc_bytes", int64(len(doc)))
	if s.wal != nil {
		wspan := tc.StartSpan("wal_append", trace.Root)
		var err error
		if tl, ok := s.wal.(docLogTraced); ok {
			_, err = tl.AppendTraced(doc, tc, wspan)
		} else {
			_, err = s.wal.Append(doc)
		}
		tc.EndSpan(wspan)
		if err != nil {
			s.mPublishErrs.Inc()
			return 0, fmt.Errorf("server: wal append: %w", err)
		}
		// Wake the durable pumps parked at the old tail once the fan-out
		// below has run (they deliver independently of the queues).
		defer s.walBroadcast()
	}
	c, matches, err := s.filter(doc, tc)
	if err != nil {
		s.mPublishErrs.Inc()
		return 0, err
	}
	s.mPublishes.Inc()
	s.fanout(c, matches, doc, tc)
	return len(matches), nil
}

// filter runs one document through the current workload generation and
// returns that generation plus the matched filter ids.
func (s *Server) filter(doc []byte, tc *trace.Ctx) (*core, []int, error) {
	if cc := s.cur.Load(); cc.concurrent() {
		matches, err := cc.filterDocument(doc, tc, trace.Root)
		return cc, matches, err
	}
	lspan := tc.StartSpan("publish_lock", trace.Root)
	s.pubMu.Lock()
	tc.EndSpan(lspan)
	c := s.cur.Load() // reload under the lock: always the freshest generation
	matches, err := c.filterDocument(doc, tc, trace.Root)
	s.pubMu.Unlock()
	return c, matches, err
}

// fanout enqueues one delivery per matched subscriber. c must be the
// generation the matches were computed on.
func (s *Server) fanout(c *core, matches []int, doc []byte, tc *trace.Ctx) {
	if len(matches) == 0 {
		return
	}
	// Group the matched filter ids by owning subscriber; each subscriber
	// gets one delivery per document regardless of how many of its filters
	// matched.
	now := time.Now()
	var single *conn // fast path: all matches belong to one subscriber
	var singleIDs []uint64
	var perConn map[*conn][]uint64
	for _, m := range matches {
		owner := c.subs[m]
		if owner == nil || c.durable[m] {
			continue // durable filters are delivered by the owner's WAL pump
		}
		switch {
		case single == nil && perConn == nil:
			single = owner
			singleIDs = append(singleIDs, uint64(m))
		case perConn == nil && owner == single:
			singleIDs = append(singleIDs, uint64(m))
		default:
			if perConn == nil {
				perConn = map[*conn][]uint64{single: singleIDs}
				single = nil
			}
			perConn[owner] = append(perConn[owner], uint64(m))
		}
	}
	if single != nil {
		s.enqueue(single, delivery{doc: doc, filters: singleIDs, enq: now, tc: tc})
	}
	for owner, ids := range perConn {
		s.enqueue(owner, delivery{doc: doc, filters: ids, enq: now, tc: tc})
	}
}

// publishAsyncStaged completes one pipelined publish whose WAL append was
// already staged into a group-commit batch (pend; nil on a non-WAL server
// or when the log has no async seam — then the append runs here). The
// document is filtered FIRST and the batch outcome awaited after, so the
// filter work of consecutive pipelined publishes overlaps the shared batch
// fsync instead of serializing behind it.
func (s *Server) publishAsyncStaged(doc []byte, pend PendingAppend) (int, error) {
	tc := s.tracer.Begin("publish")
	defer tc.Finish()
	tc.SetAttr(trace.Root, "doc_bytes", int64(len(doc)))
	if s.wal != nil && pend == nil {
		wspan := tc.StartSpan("wal_append", trace.Root)
		var err error
		if tl, ok := s.wal.(docLogTraced); ok {
			_, err = tl.AppendTraced(doc, tc, wspan)
		} else {
			_, err = s.wal.Append(doc)
		}
		tc.EndSpan(wspan)
		if err != nil {
			s.mPublishErrs.Inc()
			return 0, fmt.Errorf("server: wal append: %w", err)
		}
		defer s.walBroadcast()
	}
	c, matches, ferr := s.filter(doc, tc)
	if pend != nil {
		wspan := tc.StartSpan("wal_append", trace.Root)
		_, aerr := pend.Wait()
		tc.EndSpan(wspan)
		if bs, ok := pend.(interface{ BatchSize() int }); ok {
			tc.SetAttr(wspan, "batch_size", int64(bs.BatchSize()))
		}
		if aerr != nil {
			// The publish is rejected even though it was filtered: the
			// document is not durable, so fanning it out would deliver a
			// document that a crash could un-accept.
			s.mPublishErrs.Inc()
			return 0, fmt.Errorf("server: wal append: %w", aerr)
		}
		defer s.walBroadcast()
	}
	if ferr != nil {
		s.mPublishErrs.Inc()
		return 0, ferr
	}
	s.mPublishes.Inc()
	s.fanout(c, matches, doc, tc)
	return len(matches), nil
}

func (s *Server) enqueue(cn *conn, d delivery) {
	q := cn.queue()
	if q == nil {
		return // subscriber is already tearing down
	}
	// The delivery holds a trace reference until the DELIVER write (or the
	// drop point that discards it — every queue.push exit path accounts for
	// it, see delivery.release).
	d.tc.Ref()
	if q.push(d) {
		s.logf("disconnecting slow subscriber %s (policy=%s)", cn.nc.RemoteAddr(), s.cfg.Policy)
		cn.close()
	}
}

// ---------------------------------------------------------------------------
// Connections.

type conn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	mu        sync.Mutex
	q         *queue
	nsubs     int
	deliverWG sync.WaitGroup

	async *asyncPub // guarded by mu; lazily created on first PublishAsync

	// Durable state (zero unless the client sent SubscribeDurable).
	durName  string // guarded by mu; the cursor identity this conn owns
	resume   uint64 // guarded by mu; offset the pump started from
	pumpOn   bool   // guarded by mu
	pumpStop chan struct{}
	pumpOnce sync.Once
	pumpWG   sync.WaitGroup
	pumpOff  atomic.Uint64 // next offset the pump will replay (lag gauge)
	acked    atomic.Uint64 // persisted cursor (monotonic)

	closeOnce sync.Once
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.connMu.Unlock()
			s.mConnReject.Inc()
			WriteFrame(nc, FrameErr, []byte("server: connection limit reached"))
			nc.Close()
			continue
		}
		cn := &conn{s: s, nc: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 64<<10)}
		s.conns[cn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			cn.serve()
			s.connMu.Lock()
			delete(s.conns, cn)
			s.connMu.Unlock()
		}()
	}
}

// serve runs one connection's frame loop until error or close.
func (s *Server) maxPayload() int { return s.cfg.maxDocBytes() }

// healthStatus backs /healthz: not-ok while draining, and degraded when the
// WAL has latched a persistent storage failure (appends fail fast then —
// the broker answers but cannot accept durable publishes).
func (s *Server) healthStatus() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if h, ok := s.wal.(docLogHealth); ok {
		if err := h.Failed(); err != nil {
			return false, "degraded: " + err.Error()
		}
	}
	return true, "ok"
}

func (cn *conn) serve() {
	defer cn.teardown()
	s := cn.s
	for {
		if s.cfg.ReadTimeout > 0 && !cn.hasSubs() {
			cn.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		} else {
			cn.nc.SetReadDeadline(time.Time{})
		}
		f, err := ReadFrame(cn.br, s.maxPayload())
		if err != nil {
			var big *ErrFrameTooLarge
			if errors.As(err, &big) {
				// The oversized payload was not consumed; the stream is
				// desynchronized. Report and close.
				cn.writeFrame(FrameErr, []byte(big.Error()))
			}
			return
		}
		switch f.Type {
		case FramePing:
			if cn.writeFrame(FramePong, nil) != nil {
				return
			}
		case FrameSubscribe:
			// Bind the queue before the new workload generation is
			// published, so a publish racing with this subscribe never
			// fans out to a queueless subscriber.
			cn.ensureQueue()
			id, err := s.subscribe(cn, string(f.Payload), false)
			if cn.reply(id, err) != nil {
				return
			}
			if err == nil {
				cn.mu.Lock()
				cn.nsubs++
				cn.mu.Unlock()
			}
		case FrameSubscribeDurable:
			name, xpath, err := ParseSubscribeDurablePayload(f.Payload)
			var id, resume uint64
			if err == nil {
				id, resume, err = s.subscribeDurable(cn, name, xpath)
			}
			if err != nil {
				if cn.writeFrame(FrameErr, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			if cn.writeFrame(FrameOK, AppendUint64(AppendUint64(nil, id), resume)) != nil {
				return
			}
			cn.mu.Lock()
			cn.nsubs++
			cn.mu.Unlock()
		case FrameAck:
			off, err := ParseUint64(f.Payload)
			if err != nil {
				// A malformed ack is a protocol violation; there is no ack
				// response slot, so report and drop the connection.
				cn.writeFrame(FrameErr, []byte(err.Error()))
				return
			}
			cn.handleAck(off)
		case FrameUnsubscribe:
			id, err := ParseUint64(f.Payload)
			if err == nil {
				err = s.unsubscribe(cn, id)
			}
			if cn.reply(id, err) != nil {
				return
			}
			if err == nil {
				cn.mu.Lock()
				cn.nsubs--
				cn.mu.Unlock()
			}
		case FramePublish:
			n, err := s.publish(f.Payload)
			if cn.reply(uint64(n), err) != nil {
				return
			}
		case FramePublishAsync:
			seq, doc, err := ParsePublishAsyncPayload(f.Payload)
			if err != nil {
				// A malformed pipelined publish desynchronizes the ack
				// sequence; report and drop the connection.
				cn.writeFrame(FrameErr, []byte(err.Error()))
				return
			}
			cn.publishAsync(seq, doc)
		default:
			if cn.writeFrame(FrameErr, []byte(fmt.Sprintf("server: unknown frame type 0x%02x", f.Type))) != nil {
				return
			}
		}
	}
}

// reply writes OK(v) or Err(err).
func (cn *conn) reply(v uint64, err error) error {
	if err != nil {
		return cn.writeFrame(FrameErr, []byte(err.Error()))
	}
	return cn.writeFrame(FrameOK, AppendUint64(nil, v))
}

func (cn *conn) writeFrame(typ byte, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	if err := WriteFrame(cn.bw, typ, payload); err != nil {
		return err
	}
	return cn.bw.Flush()
}

// writeFrameBuffered writes a frame into the connection's buffered writer
// without flushing; the caller coalesces a burst of frames under one
// flushFrames. Used by the durable pump — the bufio layer still flushes on
// its own when the 64KB buffer fills.
func (cn *conn) writeFrameBuffered(typ byte, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return WriteFrame(cn.bw, typ, payload)
}

// flushFrames flushes frames staged by writeFrameBuffered.
func (cn *conn) flushFrames() error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	return cn.bw.Flush()
}

// pumpFlushEvery bounds how many DeliverAt frames the durable pump stages
// between explicit flushes while replaying a backlog.
const pumpFlushEvery = 64

// maxPubAckBatch bounds how many publish outcomes one PubAcks frame
// coalesces.
const maxPubAckBatch = 512

// asyncPub is one connection's pipelined-publish state: sem is the in-flight
// window (acquired by the read loop, so a client overrunning the window is
// paced by TCP backpressure), acks carries publish outcomes to the single
// ack-writer goroutine, which coalesces everything immediately available
// into one PubAcks frame.
type asyncPub struct {
	sem   chan struct{}
	acks  chan PubAck
	wg    sync.WaitGroup // in-flight publish workers
	ackWG sync.WaitGroup // the ack-writer goroutine
}

// ensureAsync lazily creates the pipelined-publish state and its ack writer.
func (cn *conn) ensureAsync() *asyncPub {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.async == nil {
		a := &asyncPub{
			sem:  make(chan struct{}, cn.s.cfg.asyncPublishWindow()),
			acks: make(chan PubAck, cn.s.cfg.asyncPublishWindow()),
		}
		cn.async = a
		a.ackWG.Add(1)
		go cn.ackLoop(a)
	}
	return cn.async
}

// publishAsync runs on the read loop: it stages the document's WAL append
// into the open group-commit batch (keeping the log in frame order for this
// connection) and hands the rest of the publish — filtering, the batch
// wait, fan-out, ack — to a worker, so the read loop is already parsing the
// next frame while this document's batch accumulates. That decoupling is
// what feeds multi-record batches: without it each publish would seal a
// batch of one.
func (cn *conn) publishAsync(seq uint64, doc []byte) {
	s := cn.s
	a := cn.ensureAsync()
	a.sem <- struct{}{} // in-flight window: blocks the read loop when full
	if s.draining.Load() {
		s.mPublishErrs.Inc()
		<-a.sem
		a.acks <- PubAck{Seq: seq, Err: errDraining.Error()}
		return
	}
	var pend PendingAppend
	if s.wal != nil {
		if al, ok := s.wal.(docLogAsync); ok {
			pend = al.AppendAsync(doc)
		}
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		defer func() { <-a.sem }()
		n, err := s.publishAsyncStaged(doc, pend)
		ack := PubAck{Seq: seq, Matches: uint64(n)}
		if err != nil {
			ack.Err = err.Error()
		}
		a.acks <- ack
	}()
}

// ackLoop is the per-connection ack writer: it blocks for one outcome, then
// drains everything else already queued and writes a single PubAcks frame.
// On a write error the connection is closed but the loop keeps draining so
// publish workers never block on the acks channel.
func (cn *conn) ackLoop(a *asyncPub) {
	defer a.ackWG.Done()
	var batch []PubAck
	var buf []byte
	dead := false
	for ack := range a.acks {
		batch = append(batch[:0], ack)
	fill:
		for len(batch) < maxPubAckBatch {
			select {
			case more, ok := <-a.acks:
				if !ok {
					break fill
				}
				batch = append(batch, more)
			default:
				break fill
			}
		}
		if dead {
			continue
		}
		buf = AppendPubAcksPayload(buf[:0], batch)
		if cn.writeFrame(FramePubAcks, buf) != nil {
			dead = true
			cn.close()
		}
	}
}

// stopAsync waits out in-flight pipelined publishes and stops the ack
// writer. Called from teardown after the read loop has exited, so no new
// publishes can arrive.
func (cn *conn) stopAsync() {
	cn.mu.Lock()
	a := cn.async
	cn.mu.Unlock()
	if a == nil {
		return
	}
	a.wg.Wait()
	close(a.acks)
	a.ackWG.Wait()
}

func (cn *conn) hasSubs() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.nsubs > 0
}

// queue returns the delivery queue, nil if never subscribed.
func (cn *conn) queue() *queue {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.q
}

func (cn *conn) queueDepth() int {
	if q := cn.queue(); q != nil {
		return q.depth()
	}
	return 0
}

// ensureQueue lazily creates the delivery queue and its consumer goroutine.
func (cn *conn) ensureQueue() *queue {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.q == nil {
		s := cn.s
		cn.q = newQueue(s.cfg.QueueDepth, s.cfg.Policy, s.cfg.blockDeadline(), s.mDropped[s.cfg.Policy])
		cn.deliverWG.Add(1)
		go func() {
			defer cn.deliverWG.Done()
			cn.q.consume(cn.deliverBatch)
		}()
	}
	return cn.q
}

// deliverBatch writes one DELIVER frame per delivery, all under a single
// writer-lock acquisition and a single flush — every frame ready for this
// subscriber in one queue wakeup shares the syscall instead of paying a
// 64KB-buffer flush each. Returning false aborts the consumer. For a traced
// delivery it records the queue wait and the frame write as spans on the
// subscriber's own render track, stamps the trace id into the payload, and
// releases the delivery's trace reference.
func (cn *conn) deliverBatch(ds []delivery) bool {
	cn.wmu.Lock()
	if t := cn.s.cfg.WriteTimeout; t > 0 {
		cn.nc.SetWriteDeadline(time.Now().Add(t))
	}
	var werr error
	for i := range ds {
		d := &ds[i]
		tc := d.tc
		var traceID uint64
		var wspan trace.SpanID = trace.NoSpan
		if tc != nil {
			traceID = tc.ID
			track := tc.NextTrack()
			qw := tc.AddSpan("queue_wait", trace.Root, tc.Offset(d.enq), tc.Offset(time.Now()))
			tc.SetTrack(qw, track)
			wspan = tc.StartSpan("deliver_write", trace.Root)
			tc.SetTrack(wspan, track)
			tc.SetAttr(wspan, "filters", int64(len(d.filters)))
		}
		if werr == nil {
			payload := AppendDeliverPayloadTrace(make([]byte, 0, 12+8*len(d.filters)+len(d.doc)), d.filters, d.doc, traceID)
			werr = WriteFrame(cn.bw, FrameDeliver, payload)
		}
		tc.EndSpan(wspan)
	}
	if werr == nil {
		werr = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	now := time.Now()
	for i := range ds {
		ds[i].tc.Finish()
		if werr == nil {
			cn.s.deliverLat.Observe(now.Sub(ds[i].enq).Seconds())
		}
	}
	if werr != nil {
		return false
	}
	cn.s.mDeliveries.Add(int64(len(ds)))
	return true
}

// beginDrain stops the queue consumer after a final flush (graceful
// shutdown); the connection itself stays open until Shutdown closes it.
func (cn *conn) beginDrain() {
	if q := cn.queue(); q != nil {
		q.close()
	}
}

// close tears the connection down immediately (Disconnect policy, server
// close).
func (cn *conn) close() {
	cn.closeOnce.Do(func() { cn.nc.Close() })
}

// teardown runs when the frame loop exits: settle in-flight pipelined
// publishes, unbind filters, flush and stop the delivery consumer, close
// the socket, stop the WAL pump (the closed socket unsticks a pump blocked
// in a frame write), release the durable name.
func (cn *conn) teardown() {
	cn.stopAsync()
	cn.s.unsubscribeConn(cn)
	if q := cn.queue(); q != nil {
		q.close()
		cn.deliverWG.Wait()
		// A push racing with close can land in the buffered channel after
		// the consumer exits; release those so their traces complete.
		q.drainRelease()
	}
	cn.close()
	cn.stopPump()
	cn.s.releaseDurable(cn)
}

// ---------------------------------------------------------------------------
// Checkpoints and shutdown.

// Checkpoint writes a workload snapshot (engine backend only) so the next
// boot starts with a warm machine. The write happens under the publish
// lock against an in-memory buffer; disk I/O is outside the lock.
func (s *Server) Checkpoint() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("server: no SnapshotPath configured")
	}
	c := s.cur.Load()
	if c.engine == nil {
		return fmt.Errorf("server: checkpoints require the engine backend")
	}
	var buf bytes.Buffer
	s.pubMu.Lock()
	err := c.engine.WriteWorkloadSnapshot(&buf)
	s.pubMu.Unlock()
	if err != nil {
		return err
	}
	return xpushstream.WriteFileAtomic(s.cfg.SnapshotPath, func(w io.Writer) error {
		_, err := w.Write(buf.Bytes())
		return err
	})
}

func (s *Server) checkpointLoop() {
	defer s.ckWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				s.logf("checkpoint: %v", err)
			}
		case <-s.ckStop:
			return
		}
	}
}

// Shutdown drains the broker gracefully: stop accepting connections and
// publishes, flip /healthz to not-ready, flush every subscriber's queued
// deliveries, then close connections. ctx bounds the flush; a final
// checkpoint is written when SnapshotPath is configured. Shutdown returns
// ctx.Err() if the drain deadline expired with deliveries still queued.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()
	s.closeOne.Do(func() { close(s.ckStop) })
	s.ckWG.Wait()

	s.connMu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.connMu.Unlock()
	for _, cn := range conns {
		cn.beginDrain()
	}
	flushed := make(chan struct{})
	go func() {
		defer close(flushed)
		for _, cn := range conns {
			cn.deliverWG.Wait()
		}
	}()
	var drainErr error
	select {
	case <-flushed:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}
	for _, cn := range conns {
		cn.close()
	}
	s.wg.Wait()
	if s.cfg.SnapshotPath != "" && s.cfg.Backend == BackendEngine {
		if err := s.Checkpoint(); err != nil {
			s.logf("final checkpoint: %v", err)
		}
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.debugSrv != nil {
		s.debugSrv.Close()
	}
	return drainErr
}

// Close shuts the broker down immediately, discarding queued deliveries.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}
