package cluster

import (
	"context"
	"sync"
	"time"

	"repro/client"
)

// DefaultPingInterval is the health-check cadence used when PoolOptions
// leaves PingInterval zero.
const DefaultPingInterval = 2 * time.Second

// PoolOptions configures a Pool. OnUp/OnDown are the pool's whole contract
// with its owner: the owner learns about the current connection only through
// OnUp and must stop using it on OnDown.
type PoolOptions struct {
	// Client configures each node connection. Set Timeout so a hung node
	// fails a ping instead of wedging the health loop (defaulted to 5s).
	Client client.Options
	// Backoff shapes each node's reconnect schedule. MaxAttempts is ignored
	// (a pool retries until Close); Probe defaults to a Ping so a node that
	// accepts and drops connections while booting stays down.
	Backoff client.Backoff
	// PingInterval is the health-check cadence (0 = DefaultPingInterval).
	PingInterval time.Duration
	// OnUp is called (from the node's manage goroutine) with each freshly
	// established, probed connection, before the node is marked up.
	OnUp func(node string, c *client.Client)
	// OnDown is called after a node is marked down, with the error that
	// killed the connection. The *client.Client passed to the matching OnUp
	// is closed after OnDown returns.
	OnDown func(node string, err error)
}

// NodeStatus is one node's health snapshot for /metrics and /debug.
type NodeStatus struct {
	Node       string    `json:"node"`
	Up         bool      `json:"up"`
	Reconnects uint64    `json:"reconnects"`
	Since      time.Time `json:"since"` // last up/down transition
	LastErr    string    `json:"last_err,omitempty"`
}

// Pool maintains one health-checked connection per cluster node: each node
// gets a manage goroutine that dials with jittered backoff, probes, marks
// the node up, pings on an interval, and on any failure marks it down and
// starts over. Probe() accelerates a node's next health check when the
// owner sees independent evidence of trouble (e.g. a per-subscriber
// downstream connection to that node died).
type Pool struct {
	opt    PoolOptions
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	states map[string]*nodeState
	order  []string
}

type nodeState struct {
	c          *client.Client // nil while down
	up         bool
	reconnects uint64
	since      time.Time
	lastErr    error
	kick       chan struct{} // buffered(1): accelerate the next health check
}

// NewPool starts a pool over the given nodes. It returns immediately;
// connections come up asynchronously (watch OnUp, or poll Up).
func NewPool(nodes []string, opt PoolOptions) *Pool {
	if opt.Client.Timeout <= 0 {
		opt.Client.Timeout = 5 * time.Second
	}
	if opt.PingInterval <= 0 {
		opt.PingInterval = DefaultPingInterval
	}
	opt.Backoff.MaxAttempts = 0
	if opt.Backoff.Probe == nil {
		opt.Backoff.Probe = func(c *client.Client) error { return c.Ping() }
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		opt:    opt,
		ctx:    ctx,
		cancel: cancel,
		states: make(map[string]*nodeState, len(nodes)),
	}
	for _, n := range nodes {
		if _, dup := p.states[n]; dup {
			continue
		}
		p.states[n] = &nodeState{kick: make(chan struct{}, 1), since: time.Now()}
		p.order = append(p.order, n)
	}
	for _, n := range p.order {
		p.wg.Add(1)
		go p.manage(n)
	}
	return p
}

// manage is one node's supervisor: dial → up → ping loop → down → redial.
func (p *Pool) manage(node string) {
	defer p.wg.Done()
	st := p.states[node]
	for {
		c, err := client.DialRetryContext(p.ctx, node, p.opt.Client, p.opt.Backoff)
		if err != nil {
			return // only a done context escapes an unbounded retry loop
		}
		if p.opt.OnUp != nil {
			p.opt.OnUp(node, c)
		}
		p.mu.Lock()
		st.c, st.up, st.since, st.lastErr = c, true, time.Now(), nil
		st.reconnects++
		p.mu.Unlock()

		err = p.watch(c, st)

		p.mu.Lock()
		st.c, st.up, st.since, st.lastErr = nil, false, time.Now(), err
		p.mu.Unlock()
		if p.opt.OnDown != nil {
			p.opt.OnDown(node, err)
		}
		c.Close()
		select {
		case <-p.ctx.Done():
			return
		default:
		}
	}
}

// watch pings c until it fails or the pool closes, returning the terminal
// error (nil on pool shutdown).
func (p *Pool) watch(c *client.Client, st *nodeState) error {
	t := time.NewTimer(p.opt.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return nil
		case <-c.Done():
			return c.Err()
		case <-t.C:
		case <-st.kick:
			if !t.Stop() {
				<-t.C
			}
		}
		if err := c.Ping(); err != nil {
			return err
		}
		t.Reset(p.opt.PingInterval)
	}
}

// Probe schedules an immediate health check for node (no-op for unknown or
// already-down nodes; the down path is already redialing).
func (p *Pool) Probe(node string) {
	p.mu.Lock()
	st := p.states[node]
	p.mu.Unlock()
	if st == nil {
		return
	}
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// Up reports whether node currently has a live connection.
func (p *Pool) Up(node string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.states[node]
	return st != nil && st.up
}

// Get returns node's current connection, or false while it is down. The
// connection may die at any moment; callers must treat errors as "node
// down" and let OnDown/reroute handle it.
func (p *Pool) Get(node string) (*client.Client, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.states[node]
	if st == nil || !st.up {
		return nil, false
	}
	return st.c, true
}

// Snapshot returns every node's health, in configuration order.
func (p *Pool) Snapshot() []NodeStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeStatus, 0, len(p.order))
	for _, n := range p.order {
		st := p.states[n]
		ns := NodeStatus{Node: n, Up: st.up, Reconnects: st.reconnects, Since: st.since}
		if st.lastErr != nil {
			ns.LastErr = st.lastErr.Error()
		}
		out = append(out, ns)
	}
	return out
}

// Close stops every manage goroutine and closes all connections.
func (p *Pool) Close() {
	p.cancel()
	p.wg.Wait()
}
