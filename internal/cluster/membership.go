package cluster

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// ParseNodes parses a comma-separated node address list ("host:port,...").
// Entries are trimmed; empties between commas are rejected (a typo'd flag
// should fail loudly, not silently shrink the cluster). Duplicates are
// collapsed.
func ParseNodes(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty node list")
	}
	var nodes []string
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		addr := strings.TrimSpace(part)
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty node address in %q", spec)
		}
		if seen[addr] {
			continue
		}
		seen[addr] = true
		nodes = append(nodes, addr)
	}
	return nodes, nil
}

// ReadNodesFile reads a hosts file: one node address per line, blank lines
// and '#' comments skipped. This is the static-membership config for
// clusters too large for a flag.
func ReadNodesFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var nodes []string
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Allow trailing comments: "10.0.0.1:9310  # filter node A".
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
			if line == "" {
				continue
			}
		}
		if seen[line] {
			continue
		}
		seen[line] = true
		nodes = append(nodes, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: %s lists no nodes", path)
	}
	return nodes, nil
}
