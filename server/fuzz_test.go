package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws hostile byte streams at the wire decoder. Invariants:
// never panic, never allocate past the payload limit, and on every frame a
// well-formed writer produced, decode exactly what was written.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames.
	var ok bytes.Buffer
	WriteFrame(&ok, FrameSubscribe, []byte(`//a[b = 1]`))
	f.Add(ok.Bytes(), 1<<16)
	ok.Reset()
	WriteFrame(&ok, FramePing, nil)
	f.Add(ok.Bytes(), 1<<16)
	ok.Reset()
	WriteFrame(&ok, FrameDeliverAt, AppendDeliverAtPayload(nil, 7, []uint64{1, 2}, []byte(`<a/>`)))
	f.Add(ok.Bytes(), 1<<16)

	// Hostile corpus: zero length, length < 1 via underflow, oversized
	// length, truncated payload, truncated header.
	f.Add([]byte{0, 0, 0, 0}, 1<<16)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 1<<16)
	f.Add([]byte{0, 0, 0, 10, FramePublish, 'x'}, 1<<16)
	f.Add([]byte{0, 0}, 1<<16)
	f.Add([]byte{0, 0, 0, 2, FramePublish, 'x', 'x', 'x'}, 4)

	f.Fuzz(func(t *testing.T, data []byte, maxPayload int) {
		if maxPayload < 0 || maxPayload > 1<<20 {
			maxPayload = 1 << 20
		}
		r := bytes.NewReader(data)
		fr, err := ReadFrame(r, maxPayload)
		if err != nil {
			var big *ErrFrameTooLarge
			if errors.As(err, &big) {
				// The oversized frame must not have been consumed past its
				// header, and the reported size must exceed the limit.
				if big.Size <= big.Limit {
					t.Fatalf("ErrFrameTooLarge with size %d <= limit %d", big.Size, big.Limit)
				}
				if r.Len() != len(data)-4 {
					t.Fatalf("oversized frame consumed payload bytes: %d left of %d", r.Len(), len(data))
				}
			}
			return
		}
		if len(fr.Payload) > maxPayload {
			t.Fatalf("payload %d bytes exceeds limit %d", len(fr.Payload), maxPayload)
		}
		// A decoded frame must survive a write/read round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr.Type, fr.Payload); err != nil {
			t.Fatalf("re-encoding decoded frame: %v", err)
		}
		// The re-encoded bytes must match the consumed prefix of the input.
		consumed := len(data) - r.Len()
		if !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data[:consumed], buf.Bytes())
		}
		fr2, err := ReadFrame(&buf, maxPayload)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if fr2.Type != fr.Type || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatal("round-trip changed the frame")
		}
		// The typed payload parsers must not panic on arbitrary payloads.
		ParseUint64(fr.Payload)
		ParseDeliverPayload(fr.Payload)
		ParseDeliverAtPayload(fr.Payload)
		ParseSubscribeDurablePayload(fr.Payload)
	})
}

// FuzzReadFrameStream checks that a frame decoder pointed at a stream of
// frames stays in sync: decoding stops cleanly at EOF, never mid-frame
// garbage.
func FuzzReadFrameStream(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, FramePing, nil)
	WriteFrame(&buf, FramePublish, []byte(`<a/>`))
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			_, err := ReadFrame(r, 1<<16)
			if err != nil {
				if errors.Is(err, io.EOF) && r.Len() != 0 {
					t.Fatalf("clean EOF with %d bytes left", r.Len())
				}
				return
			}
		}
	})
}

// sanity check the corpus frame builder used above
func TestFuzzCorpusLengthField(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, FramePing, nil)
	if n := binary.BigEndian.Uint32(buf.Bytes()[:4]); n != 1 {
		t.Fatalf("PING length field = %d, want 1", n)
	}
}
