package core

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// TestInsertSorted: the sorted-insertion helper that replaced appendOid's
// append-then-re-sort (which was O(n² log n) across a per-state loop) must
// keep the slice sorted and duplicate-free under any insertion order.
func TestInsertSorted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var got []int32
		ref := map[int32]bool{}
		for i := 0; i < 50; i++ {
			v := int32(r.Intn(20))
			got = insertSorted(got, v)
			ref[v] = true
		}
		want := make([]int32, 0, len(ref))
		for v := range ref {
			want = append(want, v)
		}
		slices.Sort(want)
		if !equalIDs(got, want) {
			t.Fatalf("insertSorted produced %v, want %v", got, want)
		}
	}
	// Explicit cases: front, back, middle, duplicate.
	s := []int32{10, 20, 30}
	for _, tc := range []struct {
		v    int32
		want string
	}{
		{5, "[5 10 20 30]"},
		{35, "[10 20 30 35]"},
		{25, "[10 20 25 30]"},
		{20, "[10 20 30]"},
	} {
		got := insertSorted(append([]int32(nil), s...), tc.v)
		if fmt.Sprint(got) != tc.want {
			t.Errorf("insertSorted(%v, %d) = %v, want %s", s, tc.v, got, tc.want)
		}
	}
}

// TestWarmRunZeroAllocs is the tentpole regression test: filtering a
// document on a warmed machine (numeric predicates only, no OnDocument
// output) must perform zero heap allocations.
func TestWarmRunZeroAllocs(t *testing.T) {
	doc := []byte(`<a><b> 1 </b><a c="3"><b>1</b></a></a>`)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"basic", Options{PrecomputeValues: true}},
		{"td-early", Options{TopDown: true, Early: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := runningMachine(t, tc.opts)
			// Warm: materialise all states, tables and scratch buffers.
			for i := 0; i < 5; i++ {
				if err := m.Run(doc); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := m.Run(doc); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm Run allocates %.1f times per document, want 0", allocs)
			}
			if got := fmt.Sprint(m.Results()); got != "[0 1]" {
				t.Fatalf("matches = %s, want [0 1]", got)
			}
		})
	}
}

// TestWarmFilterDocumentAllocs: FilterDocument returns a fresh copy of the
// match set, so it gets exactly that one allocation per document and no
// more.
func TestWarmFilterDocumentAllocs(t *testing.T) {
	doc := []byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`)
	m := runningMachine(t, Options{PrecomputeValues: true})
	for i := 0; i < 5; i++ {
		if _, err := m.FilterDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.FilterDocument(doc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("warm FilterDocument allocates %.1f times per document, want <= 1", allocs)
	}
}

// TestTab64MatchesMap drives the flat table and a reference map through an
// identical random operation sequence — the "old map semantics" the table
// replaced — and requires identical observable behaviour, including across
// growth and key collisions (the key space is kept small on purpose).
func TestTab64MatchesMap(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var tab tab64
	ref := map[uint64]int32{}
	for i := 0; i < 50000; i++ {
		key := packPush(int32(r.Intn(200)), int32(r.Intn(40)))
		switch r.Intn(3) {
		case 0:
			val := int32(r.Intn(1 << 20))
			tab.put(key, val)
			ref[key] = val
		default:
			got, ok := tab.get(key)
			want, wok := ref[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: get(%#x) = (%d,%v), map says (%d,%v)", i, key, got, ok, want, wok)
			}
		}
	}
	if tab.len() != len(ref) {
		t.Fatalf("table has %d entries, map has %d", tab.len(), len(ref))
	}
	seen := map[uint64]int32{}
	tab.each(func(k uint64, v int32) { seen[k] = v })
	if len(seen) != len(ref) {
		t.Fatalf("each() visited %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("each() saw %d for %#x, want %d", seen[k], k, v)
		}
	}
}

// TestTabEMatchesMap is TestTab64MatchesMap for the two-word-key entry
// table (pop and value transitions).
func TestTabEMatchesMap(t *testing.T) {
	type refKey struct{ lo, hi uint64 }
	r := rand.New(rand.NewSource(2))
	var tab tabE
	ref := map[refKey]entry{}
	randEarly := func() []int32 {
		if r.Intn(4) != 0 {
			return nil
		}
		e := make([]int32, 1+r.Intn(3))
		for i := range e {
			e[i] = int32(r.Intn(100))
		}
		slices.Sort(e)
		return dedupSorted(e)
	}
	for i := 0; i < 50000; i++ {
		var key key128
		if r.Intn(2) == 0 {
			key = packPop(int32(r.Intn(100)), int32(r.Intn(20)), int32(r.Intn(30)))
		} else {
			key = packValue(int32(r.Intn(20)), int64(r.Intn(50))<<32|int64(r.Intn(8)))
		}
		rk := refKey{key.lo, key.hi}
		switch r.Intn(3) {
		case 0:
			e := entry{state: int32(r.Intn(1 << 20)), early: randEarly()}
			tab.put(key, e)
			ref[rk] = e
		default:
			got, ok := tab.get(key)
			want, wok := ref[rk]
			if ok != wok || (ok && got.state != want.state) || (ok && !equalIDs(got.early, want.early)) {
				t.Fatalf("op %d: get = (%v,%v), map says (%v,%v)", i, got, ok, want, wok)
			}
		}
	}
	if tab.len() != len(ref) {
		t.Fatalf("table has %d entries, map has %d", tab.len(), len(ref))
	}
	n := 0
	tab.each(func(k key128, e entry) {
		n++
		want := ref[refKey{k.lo, k.hi}]
		if e.state != want.state || !equalIDs(e.early, want.early) {
			t.Fatalf("each() saw %v, want %v", e, want)
		}
	})
	if n != len(ref) {
		t.Fatalf("each() visited %d entries, want %d", n, len(ref))
	}
}

// TestInternTabMatchesMap replays the hash-cons interning protocol (the old
// map[uint64][]int32 index) against internTab: equal sets get equal ids,
// distinct sets get distinct ids, including under signature collisions.
func TestInternTabMatchesMap(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var tab internTab
	var sets [][]int32
	intern := func(set []int32) int32 {
		h := hashIDs(set)
		if id := tab.lookup(h, func(id int32) bool { return equalIDs(sets[id], set) }); id >= 0 {
			return id
		}
		id := int32(len(sets))
		sets = append(sets, append([]int32(nil), set...))
		tab.add(h, id)
		return id
	}
	ref := map[string]int32{}
	for i := 0; i < 20000; i++ {
		set := make([]int32, r.Intn(6))
		for j := range set {
			set[j] = int32(r.Intn(30))
		}
		slices.Sort(set)
		set = dedupSorted(set)
		if len(set) == 0 {
			continue
		}
		id := intern(set)
		key := fmt.Sprint(set)
		if want, ok := ref[key]; ok {
			if id != want {
				t.Fatalf("set %v interned as %d, previously %d", set, id, want)
			}
		} else {
			ref[key] = id
		}
	}
	if len(ref) != len(sets) {
		t.Fatalf("interned %d distinct sets, reference says %d", len(sets), len(ref))
	}
}

// TestInternTabSignatureCollision: two different sets sharing a signature
// must still intern to different ids (probing continues past non-matching
// entries with equal signatures).
func TestInternTabSignatureCollision(t *testing.T) {
	a := []int32{1, 2}
	b := []int32{3, 4}
	sets := [][]int32{a, b}
	var tab internTab
	sig := uint64(0x1234) // force a shared signature
	tab.add(sig, 0)
	tab.add(sig, 1)
	if id := tab.lookup(sig, func(id int32) bool { return equalIDs(sets[id], a) }); id != 0 {
		t.Fatalf("lookup(a) = %d, want 0", id)
	}
	if id := tab.lookup(sig, func(id int32) bool { return equalIDs(sets[id], b) }); id != 1 {
		t.Fatalf("lookup(b) = %d, want 1", id)
	}
	if id := tab.lookup(sig, func(id int32) bool { return false }); id != -1 {
		t.Fatalf("lookup(absent) = %d, want -1", id)
	}
}
