package xpushstream

import (
	"fmt"
	"strings"
	"testing"
)

const orderDTD = `
<!ELEMENT orders (order+)>
<!ELEMENT order (customer, item+, total)>
<!ATTLIST order id CDATA #REQUIRED priority (low|high) "low">
<!ELEMENT customer (name, country)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT item (sku, qty)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT total (#PCDATA)>
`

const orderDoc = `
<orders>
  <order id="17" priority="high">
    <customer><name>Ada</name><country>US</country></customer>
    <item><sku>X1</sku><qty>2</qty></item>
    <total>1500</total>
  </order>
</orders>`

func TestQuickstart(t *testing.T) {
	engine, err := Compile([]string{
		`//order[total > 1000]`,
		`//order[customer/country = "US" and total > 100]`,
		`//order[customer/country = "DE"]`,
		`//order[@priority = "high" and item/qty >= 2]`,
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.FilterDocument([]byte(orderDoc))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 3]" {
		t.Fatalf("matches = %v, want [0 1 3]", got)
	}
	if engine.NumQueries() != 4 {
		t.Errorf("NumQueries = %d", engine.NumQueries())
	}
	if engine.Query(2) != `//order[customer/country = "DE"]` {
		t.Errorf("Query(2) = %s", engine.Query(2))
	}
}

func TestAllConfigsAgree(t *testing.T) {
	d, err := ParseDTD(orderDTD)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`//order[total > 1000]`,
		`//order[customer/country = "US" and total > 100]`,
		`/orders/order[item/sku = "X1"]`,
		`//order[not(customer/country = "DE")]`,
		`//item[qty = 2]`,
	}
	configs := map[string]Config{
		"basic":       {},
		"td":          {TopDownPruning: true},
		"order":       {OrderOptimization: true, DTD: d},
		"early":       {EarlyNotification: true},
		"full":        {TopDownPruning: true, OrderOptimization: true, EarlyNotification: true, Training: true, DTD: d},
		"noprecomp":   {DisablePrecompute: true},
		"td-training": {TopDownPruning: true, Training: true, DTD: d},
	}
	want := ""
	for name, cfg := range configs {
		e, err := Compile(queries, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := e.FilterDocument([]byte(orderDoc))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want == "" {
			want = fmt.Sprint(got)
		} else if fmt.Sprint(got) != want {
			t.Errorf("%s: matches %v, others %s", name, got, want)
		}
	}
}

func TestFilterStream(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]", "/m[v=2]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	stream := "<m><v>1</v></m><m><v>2</v></m><m><v>3</v></m>"
	var per []string
	err = e.FilterStream(strings.NewReader(stream), func(matches []int) {
		per = append(per, fmt.Sprint(matches))
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(per) != "[[0] [1] []]" {
		t.Errorf("per-doc = %v", per)
	}
	st := e.Stats()
	if st.Documents != 3 || st.Matches != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFilterStreaming(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]", "/m[v=2]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// An "endless" stream presented incrementally through a pipe-like
	// reader; bounded memory is the point.
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<m><v>%d</v></m>\n", i%3)
	}
	var count, matched int
	err = e.FilterStreaming(strings.NewReader(sb.String()), func(m []int) {
		count++
		matched += len(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Errorf("documents = %d", count)
	}
	if matched != 333 { // i%3 ∈ {1,2} matches ⌈...⌉
		t.Errorf("matches = %d", matched)
	}
	// Malformed mid-stream input surfaces as an error.
	err = e.FilterStreaming(strings.NewReader("<m><v>1</v></m><broken>"), func([]int) {})
	if err == nil {
		t.Error("truncated stream should error")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile([]string{"/a", "not an xpath"}, Config{}); err == nil {
		t.Error("bad query must fail compile")
	} else if !strings.Contains(err.Error(), "query 1") {
		t.Errorf("error should name the query: %v", err)
	}
	if _, err := Compile([]string{"/a"}, Config{OrderOptimization: true}); err == nil {
		t.Error("order optimization without DTD must fail")
	}
	if _, err := Compile([]string{"/a"}, Config{Training: true}); err == nil {
		t.Error("training without DTD must fail")
	}
}

func TestValidateQuery(t *testing.T) {
	if err := ValidateQuery("//a[b=1 and not(c)]"); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := ValidateQuery("//a[b//.=1]"); err == nil {
		t.Error("descendant-or-self should be rejected")
	}
	if err := ValidateQuery("(("); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestClone(t *testing.T) {
	e, err := Compile([]string{"/a[b=1]"}, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte("<a><b>1</b></a>")
	r1, _ := e.FilterDocument(doc)
	r2, _ := c.FilterDocument(doc)
	if fmt.Sprint(r1) != "[0]" || fmt.Sprint(r2) != "[0]" {
		t.Errorf("clone disagrees: %v vs %v", r1, r2)
	}
}

func TestStatsAndTraining(t *testing.T) {
	d, err := ParseDTD(orderDTD)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile([]string{`//order[total=1500]`}, Config{TopDownPruning: true, DTD: d})
	if err != nil {
		t.Fatal(err)
	}
	td, err := e.TrainingData()
	if err != nil {
		t.Fatal(err)
	}
	if len(td) == 0 {
		t.Fatal("no training data")
	}
	if err := e.Train(td); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FilterDocument([]byte(orderDoc)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.HitRatio < 0.5 {
		t.Errorf("trained engine hit ratio = %.2f", st.HitRatio)
	}
	if st.States == 0 || st.Events == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMaxStatesBoundedMemory(t *testing.T) {
	var queries []string
	for i := 0; i < 10; i++ {
		queries = append(queries, fmt.Sprintf("/a[b=%d]", i))
	}
	e, err := Compile(queries, Config{MaxStates: 4, DisablePrecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		doc := fmt.Sprintf("<a><b>%d</b></a>", i%10)
		if _, err := e.FilterDocument([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Flushes == 0 {
		t.Error("expected flushes")
	}
}

func TestStrictMixedContent(t *testing.T) {
	e, err := Compile([]string{"/a"}, Config{StrictMixedContent: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FilterDocument([]byte("<a>x<b/>y</a>")); err == nil {
		t.Error("mixed content should error in strict mode")
	}
}

func TestPrecomputeEagerFacade(t *testing.T) {
	e, err := Compile([]string{
		"//a[b/text()=1 and .//a[@c>2]]",
		"//a[@c>2 and b/text()=1]",
	}, Config{DisablePrecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.PrecomputeEager(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 22 {
		t.Errorf("eager states = %d, want the paper's 22", n)
	}
	got, err := e.FilterDocument([]byte(`<a><b>1</b><a c="3"><b>1</b></a></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("matches = %v", got)
	}
	// Top-down engines must refuse.
	td, _ := Compile([]string{"/a"}, Config{TopDownPruning: true})
	if _, err := td.PrecomputeEager(100); err == nil {
		t.Error("eager precompute must reject top-down engines")
	}
}

func TestAnalyzeWorkload(t *testing.T) {
	e, err := Compile([]string{
		"//a[b/text()=1 and .//a[@c>2]]",
		"//a[@c>2 and b/text()=1]",
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.AnalyzeWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if r.States != 13 || r.TotalAtomicPreds != 4 {
		t.Errorf("report = %+v", r)
	}
	if r.EquivalentPairs < 2 || r.InconsistentPairs == 0 {
		t.Errorf("report = %+v", r)
	}
}

func TestDTDHelpers(t *testing.T) {
	d, err := ParseDTD(orderDTD)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsRecursive() {
		t.Error("orders DTD is not recursive")
	}
	if d.MaxDepth(50) != 4 {
		t.Errorf("depth = %d", d.MaxDepth(50))
	}
	if _, err := ParseDTD("garbage"); err == nil {
		t.Error("bad DTD should fail")
	}
}
