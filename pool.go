package xpushstream

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/sax"
)

// Pool parallelises filtering over documents: n cloned engines consume a
// shared document queue, giving near-linear throughput scaling for streams
// of independent documents. This is the recommended multicore deployment —
// the warm machine's O(1)-per-event cost makes workload sharding
// (ShardedEngine) pointless, but documents are embarrassingly parallel.
//
// Clones do not share lazily built state: each worker warms up
// independently (or restore a shared snapshot into each clone before
// starting).
type Pool struct {
	engines []*Engine
	// free is the idle-worker list for FilterDocument; FilterStream drives
	// the workers directly instead.
	free chan *Engine
}

// NewPool builds a pool of n clones of the engine (n <= 0 selects
// GOMAXPROCS). The source engine itself is not used by the pool.
func NewPool(e *Engine, n int) (*Pool, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{free: make(chan *Engine, n)}
	for i := 0; i < n; i++ {
		c, err := e.Clone()
		if err != nil {
			return nil, fmt.Errorf("clone %d: %w", i, err)
		}
		p.engines = append(p.engines, c)
		p.free <- c
	}
	return p, nil
}

// FilterDocument filters one document on an idle worker engine, blocking
// while all workers are busy. Unlike Engine.FilterDocument it is safe to
// call from many goroutines at once — the request/response deployment shape
// (e.g. a broker's publisher connections), complementing FilterStream's
// single-reader shape. Do not run it concurrently with FilterStream, which
// takes over every worker.
func (p *Pool) FilterDocument(doc []byte) ([]int, error) {
	e := <-p.free
	matches, err := e.FilterDocument(doc)
	p.free <- e
	return matches, err
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.engines) }

// Result is one document's filtering outcome. Seq is the document's
// position in the stream (0-based); results are delivered in arbitrary
// order.
type Result struct {
	Seq     int
	Matches []int
	Err     error
}

// errPoolStopped is the sentinel the split callback returns to cancel the
// splitter once the collector has recorded a document-level error.
var errPoolStopped = errors.New("xpushstream: pool stream stopped after first error")

// FilterStream splits the reader into documents and filters them on all
// workers concurrently, invoking onResult (from multiple goroutines is
// avoided: results are delivered from a single collector goroutine) for
// each document. The first document-level error stops the stream: the
// splitter stops reading and no further documents are submitted (documents
// already in flight on other workers still deliver their results).
func (p *Pool) FilterStream(r io.Reader, onResult func(Result)) error {
	type job struct {
		seq int
		doc []byte
	}
	jobs := make(chan job, 2*len(p.engines))
	results := make(chan Result, 2*len(p.engines))
	stop := make(chan struct{}) // closed by the collector on the first error

	var wg sync.WaitGroup
	for _, e := range p.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for j := range jobs {
				m, err := e.FilterDocument(j.doc)
				results <- Result{Seq: j.seq, Matches: m, Err: err}
			}
		}(e)
	}
	collectorDone := make(chan struct{})
	var firstErr error
	go func() {
		defer close(collectorDone)
		for res := range results {
			if res.Err != nil && firstErr == nil {
				firstErr = res.Err
				close(stop)
			}
			onResult(res)
		}
	}()

	seq := 0
	splitErr := sax.StreamDocuments(r, func(doc []byte) error {
		select {
		case <-stop:
			return errPoolStopped
		default:
		}
		cp := make([]byte, len(doc))
		copy(cp, doc)
		select {
		case jobs <- job{seq: seq, doc: cp}:
			seq++
			return nil
		case <-stop:
			return errPoolStopped
		}
	})
	close(jobs)
	wg.Wait()
	close(results)
	<-collectorDone
	if splitErr != nil && splitErr != errPoolStopped {
		return splitErr
	}
	return firstErr
}

// Stats aggregates runtime counters across the pool's workers: stream
// counters (documents, events, bytes, matches) sum over the disjoint
// document sets the workers processed, state/lookup counters sum over the
// independently warmed clones, and the latency histograms merge. Safe to
// call while FilterStream runs.
func (p *Pool) Stats() Stats {
	var out Stats
	var sizeSum float64
	for _, e := range p.engines {
		s := e.Stats()
		out.States += s.States
		out.TopDownStates += s.TopDownStates
		sizeSum += s.AvgStateSize * float64(s.States)
		out.Lookups += s.Lookups
		out.Hits += s.Hits
		out.Matches += s.Matches
		out.MixedContentEvents += s.MixedContentEvents
		out.Flushes += s.Flushes
		out.Documents += s.Documents
		out.Events += s.Events
		out.Bytes += s.Bytes
		out.WindowDocuments += s.WindowDocuments
		out.WindowLookups += s.WindowLookups
		out.WindowHits += s.WindowHits
		out.WindowStatesAdded += s.WindowStatesAdded
		out.FilterLatency.Merge(s.FilterLatency)
	}
	finishStats(&out, sizeSum)
	return out
}
