package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Machine state snapshots: a broker can persist its lazily built (or
// trained) state tables and restart warm, instead of re-paying lazy
// construction after every restart — the operational complement to the
// paper's training optimization. The snapshot is tied to the exact workload
// and option set via a fingerprint; loading into a machine built from a
// different workload is rejected.

const snapshotMagic uint64 = 0x5850555348534e31 // "XPUSHSN1"

// Fingerprint identifies the (workload, options) pair a snapshot belongs
// to.
func (m *Machine) Fingerprint() uint64 {
	h := fnv.New64a()
	var opts uint64
	if m.opts.TopDown {
		opts |= 1
	}
	if m.opts.Order != nil {
		opts |= 2
	}
	if m.opts.Early {
		opts |= 4
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], opts)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(m.afa.NumStates()))
	h.Write(buf[:])
	for _, q := range m.afa.Queries {
		io.WriteString(h, q.Source)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (sw *snapWriter) u64(v uint64) {
	if sw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, sw.err = sw.w.Write(buf[:])
}

func (sw *snapWriter) i32(v int32) { sw.u64(uint64(uint32(v))) }

func (sw *snapWriter) ids(s []int32) {
	sw.u64(uint64(len(s)))
	for _, v := range s {
		sw.i32(v)
	}
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (sr *snapReader) u64() uint64 {
	if sr.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(sr.r, buf[:]); err != nil {
		sr.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (sr *snapReader) i32() int32 { return int32(uint32(sr.u64())) }

func (sr *snapReader) ids() []int32 {
	n := sr.u64()
	if sr.err != nil || n > 1<<28 {
		if sr.err == nil {
			sr.err = fmt.Errorf("xpush: corrupt snapshot (slice length %d)", n)
		}
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = sr.i32()
	}
	return out
}

// WriteSnapshot serialises the machine's interned states and transition
// tables.
func (m *Machine) WriteSnapshot(w io.Writer) error {
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.u64(snapshotMagic)
	sw.u64(m.Fingerprint())

	sw.u64(uint64(len(m.bsets)))
	for _, s := range m.bsets {
		sw.ids(s)
	}
	sw.u64(uint64(len(m.tsets)))
	for _, s := range m.tsets {
		sw.ids(s)
	}
	sw.u64(uint64(m.pushTab.len()))
	m.pushTab.each(func(k uint64, v int32) {
		sw.i32(int32(k >> 32))   // qt
		sw.i32(int32(uint32(k))) // sym
		sw.i32(v)
	})
	sw.u64(uint64(m.popTab.len()))
	m.popTab.each(func(k key128, e entry) {
		sw.i32(int32(k.lo >> 32))   // qb
		sw.i32(int32(uint32(k.lo))) // qt
		sw.i32(int32(uint32(k.hi))) // sym
		sw.i32(e.state)
		sw.ids(e.early)
	})
	sw.u64(uint64(m.addTab.len()))
	m.addTab.each(func(k uint64, v int32) {
		sw.i32(int32(k >> 32))   // qbs
		sw.i32(int32(uint32(k))) // qaux
		sw.i32(v)
	})
	sw.u64(uint64(m.valueTab.len()))
	m.valueTab.each(func(k key128, e entry) {
		sw.i32(int32(uint32(k.lo))) // qt
		sw.u64(k.hi)                // interval
		sw.i32(e.state)
		sw.ids(e.early)
	})
	sw.u64(uint64(m.sectTab.len()))
	m.sectTab.each(func(k uint64, v int32) {
		sw.i32(int32(k >> 32))   // qaux
		sw.i32(int32(uint32(k))) // qt
		sw.i32(v)
	})
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// ReadSnapshot restores a snapshot into a machine built from the same
// workload and options, replacing any lazily built state. The machine must
// not be mid-document.
func (m *Machine) ReadSnapshot(r io.Reader) error {
	if m.inDoc {
		return fmt.Errorf("xpush: cannot load a snapshot mid-document")
	}
	sr := &snapReader{r: bufio.NewReader(r)}
	if sr.u64() != snapshotMagic {
		return fmt.Errorf("xpush: not a machine snapshot")
	}
	if fp := sr.u64(); fp != m.Fingerprint() {
		return fmt.Errorf("xpush: snapshot fingerprint mismatch (different workload or options)")
	}

	nB := sr.u64()
	if sr.err != nil || nB == 0 || nB > 1<<28 {
		return fmt.Errorf("xpush: corrupt snapshot: %v", sr.err)
	}
	bsets := make([][]int32, nB)
	for i := range bsets {
		bsets[i] = sr.ids()
	}
	nT := sr.u64()
	if sr.err != nil || nT == 0 || nT > 1<<28 {
		return fmt.Errorf("xpush: corrupt snapshot: %v", sr.err)
	}
	tsets := make([][]int32, nT)
	for i := range tsets {
		tsets[i] = sr.ids()
	}
	type i32Rec struct {
		a, b, c int32
		val     int32
	}
	type entryRec struct {
		a, b, c  int32
		interval uint64
		e        entry
	}
	pushRecs := make([]i32Rec, 0)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		pushRecs = append(pushRecs, i32Rec{a: sr.i32(), b: sr.i32(), val: sr.i32()})
	}
	popRecs := make([]entryRec, 0)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		r := entryRec{a: sr.i32(), b: sr.i32(), c: sr.i32()}
		r.e.state = sr.i32()
		r.e.early = sr.ids()
		if len(r.e.early) == 0 {
			r.e.early = nil
		}
		popRecs = append(popRecs, r)
	}
	addRecs := make([]i32Rec, 0)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		addRecs = append(addRecs, i32Rec{a: sr.i32(), b: sr.i32(), val: sr.i32()})
	}
	valueRecs := make([]entryRec, 0)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		r := entryRec{a: sr.i32()}
		r.interval = sr.u64()
		r.e.state = sr.i32()
		r.e.early = sr.ids()
		if len(r.e.early) == 0 {
			r.e.early = nil
		}
		valueRecs = append(valueRecs, r)
	}
	sectRecs := make([]i32Rec, 0)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		sectRecs = append(sectRecs, i32Rec{a: sr.i32(), b: sr.i32(), val: sr.i32()})
	}
	if sr.err != nil {
		return fmt.Errorf("xpush: corrupt snapshot: %v", sr.err)
	}

	// Validate state references before installing.
	checkB := func(id int32) error {
		if id < 0 || int(id) >= len(bsets) {
			return fmt.Errorf("xpush: corrupt snapshot: bottom-up state %d out of range", id)
		}
		return nil
	}
	checkT := func(id int32) error {
		if id < 0 || int(id) >= len(tsets) {
			return fmt.Errorf("xpush: corrupt snapshot: top-down state %d out of range", id)
		}
		return nil
	}
	nStates := int32(m.afa.NumStates())
	for _, set := range bsets {
		for _, s := range set {
			if s < 0 || s >= nStates {
				return fmt.Errorf("xpush: corrupt snapshot: AFA state %d out of range", s)
			}
		}
	}
	for _, r := range pushRecs {
		if err := checkT(r.a); err != nil {
			return err
		}
		if err := checkT(r.val); err != nil {
			return err
		}
	}
	for _, r := range popRecs {
		if err := checkB(r.a); err != nil {
			return err
		}
		if err := checkT(r.b); err != nil {
			return err
		}
		if err := checkB(r.e.state); err != nil {
			return err
		}
	}
	for _, r := range addRecs {
		if err := checkB(r.a); err != nil {
			return err
		}
		if err := checkB(r.b); err != nil {
			return err
		}
		if err := checkB(r.val); err != nil {
			return err
		}
	}
	for _, r := range valueRecs {
		if err := checkT(r.a); err != nil {
			return err
		}
		if err := checkB(r.e.state); err != nil {
			return err
		}
	}
	for _, r := range sectRecs {
		if err := checkB(r.a); err != nil {
			return err
		}
		if err := checkT(r.b); err != nil {
			return err
		}
		if err := checkB(r.val); err != nil {
			return err
		}
	}

	// Install: rebuild intern indexes and derived caches.
	m.bsets = bsets
	m.bintern = internTab{}
	m.baccept = make([][]int32, len(bsets))
	m.ctr.bstates.Store(int64(len(bsets)))
	m.ctr.bstateAFASum.Store(0)
	for i, s := range bsets {
		if i > 0 {
			m.bintern.add(hashIDs(s), int32(i))
		}
		m.ctr.bstateAFASum.Add(int64(len(s)))
	}
	m.tsets = tsets
	m.tintern = internTab{}
	m.ttOf = make([][]int32, len(tsets))
	m.ctr.tstates.Store(int64(len(tsets)))
	for i, s := range tsets {
		if i > 0 {
			m.tintern.add(hashIDs(s), int32(i))
		}
		m.ttOf[i] = intersectSorted(m.trueTermAll, s, nil)
	}
	if !m.opts.TopDown {
		// The basic machine's single top-down state enables every
		// TrueTerminal.
		m.ttOf[0] = m.trueTermAll
	}
	m.pushTab = tab64{}
	for _, r := range pushRecs {
		m.pushTab.put(packPush(r.a, r.b), r.val)
	}
	m.popTab = tabE{}
	for _, r := range popRecs {
		m.popTab.put(packPop(r.a, r.b, r.c), r.e)
	}
	m.addTab = tab64{}
	for _, r := range addRecs {
		m.addTab.put(packAdd(r.a, r.b), r.val)
	}
	m.valueTab = tabE{}
	for _, r := range valueRecs {
		m.valueTab.put(packValue(r.a, int64(r.interval)), r.e)
	}
	m.sectTab = tab64{}
	for _, r := range sectRecs {
		m.sectTab.put(packAdd(r.a, r.b), r.val)
	}
	m.qt, m.qb = 0, 0
	m.stack = m.stack[:0]
	return nil
}
