package xpushstream

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomic: success replaces the file; a mid-write failure leaves
// the previous contents intact and no temp litter behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	put := func(s string) error {
		return WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, s)
			return err
		})
	}
	if err := put("first"); err != nil {
		t.Fatal(err)
	}
	if err := put("second"); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("content = %q", b)
	}

	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "torn-partial-")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second" {
		t.Fatalf("failed write clobbered the file: %q", b)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestSaveWorkloadSnapshotAtomic: a snapshot write that fails must leave the
// previous snapshot fully loadable.
func TestSaveWorkloadSnapshotAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.xpw")
	e, err := Compile([]string{`//order[total > 1000]`, `//a/b`}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.FilterDocument([]byte(`<order><total>2000</total></order>`)); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveWorkloadSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Simulate a failed snapshot: the write callback dies partway.
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if werr := e.WriteWorkloadSnapshot(w); werr != nil {
			return werr
		}
		return errors.New("simulated crash before fsync")
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}

	// The previous snapshot must still restore a working engine.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := OpenWorkloadSnapshot(f, Config{})
	if err != nil {
		t.Fatalf("previous snapshot unreadable after failed write: %v", err)
	}
	matches, err := restored.FilterDocument([]byte(`<order><total>2000</total></order>`))
	if err != nil || len(matches) != 1 || matches[0] != 0 {
		t.Fatalf("restored engine filter = %v, %v", matches, err)
	}
}
