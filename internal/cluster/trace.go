package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/trace"
)

// nodeTraceTimeout bounds each node's /debug/traces fetch when assembling
// a merged cluster trace.
const nodeTraceTimeout = 2 * time.Second

// Tracer exposes the gate's trace recorder (nil when tracing is off), for
// tests and embedders.
func (g *Gate) Tracer() *trace.Recorder { return g.tracer }

// gateTraces returns the gate's retained traces (sampled and slow rings)
// deduplicated by id, the merge exporter's gate-side input.
func (g *Gate) gateTraces() []trace.JSONTrace {
	p := g.tracer.Payload()
	seen := make(map[uint64]bool, len(p.Traces)+len(p.SlowTraces))
	out := make([]trace.JSONTrace, 0, len(p.Traces)+len(p.SlowTraces))
	for _, t := range append(p.Traces, p.SlowTraces...) {
		if seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		out = append(out, t)
	}
	return out
}

// fetchNodeTraces pulls one node's /debug/traces payload from its
// introspection address.
func fetchNodeTraces(debugAddr string) ([]trace.JSONTrace, error) {
	c := &http.Client{Timeout: nodeTraceTimeout}
	resp, err := c.Get("http://" + debugAddr + "/debug/traces")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s/debug/traces: %s", debugAddr, resp.Status)
	}
	var p trace.TracesPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil, err
	}
	traces := p.Traces
	seen := make(map[uint64]bool, len(traces))
	for _, t := range traces {
		seen[t.ID] = true
	}
	for _, t := range p.SlowTraces {
		if !seen[t.ID] {
			traces = append(traces, t)
		}
	}
	return traces, nil
}

// debugClusterTraces serves /debug/cluster/traces: the gate's retained
// publish traces merged with each node's /debug/traces (fetched live from
// the configured NodeDebug addresses) into one Chrome trace_event
// document — one process per publish, with the gate's ingress/fan-out/ack
// rows followed by each node's wal/filter/queue/deliver rows, matched by
// the propagated trace id. Nodes that cannot be reached are skipped and
// named in an X-Trace-Skipped header so a partial merge is still visibly
// partial.
func (g *Gate) debugClusterTraces(w http.ResponseWriter, _ *http.Request) {
	gate := g.gateTraces()
	var nodes []trace.NodeTraces
	var skipped []string
	for _, n := range g.ring.Nodes() {
		dbg, ok := g.nodeDebug[n]
		if !ok {
			continue
		}
		ts, err := fetchNodeTraces(dbg)
		if err != nil {
			g.logf("cluster: trace fetch from %s (%s) failed: %v", n, dbg, err)
			skipped = append(skipped, n)
			continue
		}
		nodes = append(nodes, trace.NodeTraces{Node: n, Traces: ts})
	}
	if len(skipped) > 0 {
		w.Header().Set("X-Trace-Skipped", strings.Join(skipped, ","))
	}
	w.Header().Set("Content-Type", "application/json")
	trace.MergeChrome(w, gate, nodes)
}
