// Command xmlgen generates synthetic XML streams from the built-in datasets
// (Protein-like and NASA-like, the substitutes for the paper's evaluation
// data) or from a user-supplied DTD.
//
// Usage:
//
//	xmlgen -dataset protein -mb 9.12 -seed 1 > stream.xml
//	xmlgen -dtd schema.dtd -mb 1 > stream.xml
//	xmlgen -dataset nasa -print-dtd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/dtd"
)

func main() {
	dataset := flag.String("dataset", "protein", "built-in dataset: protein or nasa")
	dtdPath := flag.String("dtd", "", "generate from this DTD instead of a built-in dataset")
	mb := flag.Float64("mb", 1.0, "approximate output size in MiB")
	seed := flag.Int64("seed", 1, "deterministic generator seed")
	out := flag.String("o", "", "output file (default: stdout)")
	printDTD := flag.Bool("print-dtd", false, "print the dataset's DTD and exit")
	flag.Parse()

	var ds *datagen.Dataset
	if *dtdPath != "" {
		text, err := os.ReadFile(*dtdPath)
		if err != nil {
			fatalf("%v", err)
		}
		d, err := dtd.Parse(string(text))
		if err != nil {
			fatalf("%v", err)
		}
		ds = &datagen.Dataset{Name: *dtdPath, DTD: d, DepthCap: 16}
	} else {
		var ok bool
		ds, ok = datagen.ByName(*dataset)
		if !ok {
			fatalf("unknown dataset %q (protein, nasa)", *dataset)
		}
	}
	if *printDTD {
		fmt.Print(ds.DTD.String())
		return
	}
	data := datagen.NewGenerator(ds, *seed).GenerateBytes(int(*mb * (1 << 20)))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xmlgen: "+format+"\n", args...)
	os.Exit(1)
}
