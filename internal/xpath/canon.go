package xpath

import (
	"sort"
	"strings"
)

// Canonical returns a canonical serialization of the filter: two filters that
// are structurally identical up to whitespace, quoting, associativity and
// operand order of and/or, duplicate conjuncts/disjuncts, and the
// [p and q] vs [p][q] split of step predicates render to the same string.
// The result re-parses to an equivalent filter, and canonicalization is
// idempotent: Canonicalize(f.Canonical()) == f.Canonical().
//
// The broker keys its workload-dedup registry on this form, so every
// normalization here directly translates into shared machine queries.
func (f *Filter) Canonical() string {
	cp := canonPath(f.Path)
	var sb strings.Builder
	writePath(&sb, cp, true)
	return sb.String()
}

// Canonicalize parses query and returns its canonical form.
func Canonicalize(query string) (string, error) {
	f, err := Parse(query)
	if err != nil {
		return "", err
	}
	return f.Canonical(), nil
}

// canonPath rebuilds a path with canonicalized steps. Each step's predicate
// list is normalized by splitting every top-level conjunction into separate
// [..] predicates (they qualify the same node, so [p and q] ≡ [p][q]),
// canonicalizing each conjunct, then sorting and deduplicating the set.
func canonPath(p *Path) *Path {
	out := &Path{Steps: make([]Step, 0, len(p.Steps))}
	forceDesc := false
	for i, s := range p.Steps {
		if s.Test.Kind == Self && len(s.Preds) == 0 && len(p.Steps) > 1 {
			// A predicate-less child-axis self step is a no-op (a/./b == a/b,
			// a/b/. == a/b); drop it unless it is the whole path. A
			// descendant-axis one folds into the following step (a//./b ==
			// a//b) but must survive in trailing position, where it still
			// selects descendants-or-self.
			if s.Axis == Child {
				continue
			}
			if i+1 < len(p.Steps) {
				forceDesc = true
				continue
			}
		}
		cs := Step{Axis: s.Axis, Test: s.Test}
		if forceDesc {
			cs.Axis = Descendant
			forceDesc = false
		}
		if len(s.Preds) > 0 {
			var conjuncts []Expr
			for _, q := range s.Preds {
				conjuncts = appendConjuncts(conjuncts, canonExpr(q))
			}
			cs.Preds = sortDedupe(conjuncts)
		}
		out.Steps = append(out.Steps, cs)
	}
	return out
}

// appendConjuncts flattens a (possibly nested) conjunction into the list.
func appendConjuncts(dst []Expr, e Expr) []Expr {
	if a, ok := e.(*And); ok {
		dst = appendConjuncts(dst, a.L)
		return appendConjuncts(dst, a.R)
	}
	return append(dst, e)
}

// appendDisjuncts flattens a (possibly nested) disjunction into the list.
func appendDisjuncts(dst []Expr, e Expr) []Expr {
	if o, ok := e.(*Or); ok {
		dst = appendDisjuncts(dst, o.L)
		return appendDisjuncts(dst, o.R)
	}
	return append(dst, e)
}

// canonExpr canonicalizes a predicate expression: and/or chains are
// flattened, their operands canonicalized, sorted by rendered form, and
// deduplicated (both ops are commutative, associative, and idempotent);
// nested paths are canonicalized recursively.
func canonExpr(e Expr) Expr {
	switch x := e.(type) {
	case *And:
		ops := sortDedupe(mapCanon(appendConjuncts(nil, x)))
		return foldAnd(ops)
	case *Or:
		ops := sortDedupe(mapCanon(appendDisjuncts(nil, x)))
		return foldOr(ops)
	case *Not:
		return &Not{X: canonExpr(x.X)}
	case *Exists:
		return &Exists{Path: canonPath(x.Path)}
	case *Cmp:
		return &Cmp{Path: canonPath(x.Path), Op: x.Op, Const: x.Const}
	default:
		return e
	}
}

// mapCanon canonicalizes every element. The and/or callers flatten first and
// canonicalize after, so operands that only become nested chains after
// canonicalization are re-flattened by the fold helpers below.
func mapCanon(ops []Expr) []Expr {
	out := make([]Expr, 0, len(ops))
	for _, e := range ops {
		c := canonExpr(e)
		out = append(out, c)
	}
	return out
}

func foldAnd(ops []Expr) Expr {
	if len(ops) == 1 {
		return ops[0]
	}
	acc := ops[0]
	for _, e := range ops[1:] {
		acc = &And{L: acc, R: e}
	}
	return acc
}

func foldOr(ops []Expr) Expr {
	if len(ops) == 1 {
		return ops[0]
	}
	acc := ops[0]
	for _, e := range ops[1:] {
		acc = &Or{L: acc, R: e}
	}
	return acc
}

// sortDedupe orders expressions by their rendered form and drops duplicates.
func sortDedupe(ops []Expr) []Expr {
	if len(ops) <= 1 {
		return ops
	}
	keys := make([]string, len(ops))
	for i, e := range ops {
		keys[i] = exprKey(e)
	}
	sort.Sort(&exprSorter{ops: ops, keys: keys})
	out := ops[:1]
	for i := 1; i < len(ops); i++ {
		if keys[i] != keys[i-1] {
			out = append(out, ops[i])
		}
	}
	return out
}

func exprKey(e Expr) string {
	var sb strings.Builder
	e.writeTo(&sb)
	return sb.String()
}

type exprSorter struct {
	ops  []Expr
	keys []string
}

func (s *exprSorter) Len() int           { return len(s.ops) }
func (s *exprSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *exprSorter) Swap(i, j int) {
	s.ops[i], s.ops[j] = s.ops[j], s.ops[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
