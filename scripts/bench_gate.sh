#!/usr/bin/env bash
# bench_gate.sh — fail if tracing-disabled broker throughput regresses more
# than BUDGET_PCT versus the recorded baseline in a BENCH_*.json file.
#
# Usage: scripts/bench_gate.sh [baseline.json] [budget-pct] [benchtime]
#
# The gate runs BenchmarkServeLoopback (tracing compiled in but disabled) and
# compares its docs/sec against the baseline file's BenchmarkServeLoopback
# entry. Benchmarks on shared CI runners are noisy, so the default budget is
# deliberately loose (25%); locally, 5% with -benchtime=3s is realistic.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_PR4.json}"
BUDGET_PCT="${2:-25}"
BENCHTIME="${3:-2s}"

base=$(awk '
  /"name": "BenchmarkServeLoopback"/ { found = 1 }
  found && /"docs_per_sec"/ {
    gsub(/[^0-9.]/, "", $2); print $2; exit
  }' "$BASELINE")
if [ -z "$base" ]; then
  echo "bench_gate: no BenchmarkServeLoopback docs_per_sec in $BASELINE" >&2
  exit 2
fi

out=$(go test -run=NONE -bench='BenchmarkServeLoopback$' -benchtime="$BENCHTIME" -count=3 ./server/)
echo "$out"
best=$(echo "$out" | awk '/docs\/sec/ { for (i = 1; i < NF; i++) if ($(i+1) == "docs/sec" && $i > m) m = $i } END { print m }')
if [ -z "$best" ] || [ "$best" = "0" ]; then
  echo "bench_gate: benchmark produced no docs/sec metric" >&2
  exit 2
fi

awk -v base="$base" -v best="$best" -v budget="$BUDGET_PCT" 'BEGIN {
  floor = base * (1 - budget / 100)
  printf "bench_gate: baseline %.0f docs/sec, best of 3 runs %.0f, floor %.0f (-%s%%)\n",
    base, best, floor, budget
  if (best < floor) {
    print "bench_gate: FAIL — tracing-disabled loopback throughput regressed past the budget" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'
