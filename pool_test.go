package xpushstream

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func TestPoolMatchesSequential(t *testing.T) {
	base, err := Compile([]string{"/m[v=1]", "/m[v=2]", "//m[w>3]"}, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	var stream strings.Builder
	var want []string
	for i := 0; i < 200; i++ {
		doc := fmt.Sprintf("<m><v>%d</v><w>%d</w></m>", i%4, i%6)
		stream.WriteString(doc)
		m, err := base.FilterDocument([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fmt.Sprint(m))
	}
	pool, err := NewPool(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 4 {
		t.Fatalf("size = %d", pool.Size())
	}
	got := make([]string, len(want))
	var mu sync.Mutex
	err = pool.FilterStream(strings.NewReader(stream.String()), func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		if r.Err != nil {
			t.Errorf("doc %d: %v", r.Seq, r.Err)
			return
		}
		got[r.Seq] = fmt.Sprint(r.Matches)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("doc %d: pool %s vs sequential %s", i, got[i], want[i])
		}
	}
}

func TestPoolErrorPropagates(t *testing.T) {
	base, err := Compile([]string{"/a"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Malformed stream: splitter error.
	err = pool.FilterStream(strings.NewReader("<a/><broken"), func(Result) {})
	if err == nil {
		t.Error("truncated stream should error")
	}
}

func TestPoolStopsSubmittingAfterFirstError(t *testing.T) {
	base, err := Compile([]string{"//x"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A poisoned document mid-stream: the splitter sees balanced tag depth
	// and hands it over as a complete document, but the scanner rejects
	// the mismatched end tag. Everything after it must not be filtered.
	const n = 5000
	var stream strings.Builder
	stream.WriteString("<d><x/></d>")
	stream.WriteString("<a><b></c></a>") // poison: seq 1
	for i := 2; i < n; i++ {
		stream.WriteString("<d><x/></d>")
	}
	var mu sync.Mutex
	delivered := 0
	sawErr := false
	err = pool.FilterStream(strings.NewReader(stream.String()), func(r Result) {
		mu.Lock()
		defer mu.Unlock()
		delivered++
		if r.Err != nil {
			sawErr = true
		}
	})
	if err == nil {
		t.Fatal("poisoned document must surface as a stream error")
	}
	if !sawErr {
		t.Error("poisoned document's Result.Err not delivered")
	}
	// The collector records the error while at most a handful of documents
	// are buffered or in flight; the seed behavior (split and filter the
	// entire remaining stream) delivers all n.
	if delivered >= n/2 {
		t.Errorf("delivered %d of %d documents after the first error; splitter was not cancelled", delivered, n)
	}
}

func TestPoolAllDocumentsSeen(t *testing.T) {
	base, err := Compile([]string{"//x"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	var stream strings.Builder
	const n = 1000
	for i := 0; i < n; i++ {
		stream.WriteString("<d><x/></d>")
	}
	var mu sync.Mutex
	var seqs []int
	err = pool.FilterStream(strings.NewReader(stream.String()), func(r Result) {
		mu.Lock()
		seqs = append(seqs, r.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != n {
		t.Fatalf("results = %d", len(seqs))
	}
	sort.Ints(seqs)
	for i, s := range seqs {
		if s != i {
			t.Fatalf("missing/duplicate sequence at %d: %d", i, s)
		}
	}
}

// TestPoolFilterDocument: the request/response entry point agrees with the
// sequential engine under concurrent callers.
func TestPoolFilterDocument(t *testing.T) {
	base, err := Compile([]string{"/m[v=1]", "/m[v=2]", "//m[w>3]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	docs := make([][]byte, 64)
	want := make([]string, len(docs))
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf("<m><v>%d</v><w>%d</w></m>", i%4, i%6))
		m, err := base.FilterDocument(docs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprint(m)
	}
	pool, err := NewPool(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(docs))
	for i := range docs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := pool.FilterDocument(docs[i])
			if err != nil {
				errs <- err
				return
			}
			if got := fmt.Sprint(m); got != want[i] {
				errs <- fmt.Errorf("doc %d: pool %s vs sequential %s", i, got, want[i])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func BenchmarkPoolThroughput(b *testing.B) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, bench.WorkloadParams(59, 2000, 5))
	queries := make([]string, len(filters))
	for i, f := range filters {
		queries[i] = f.Source
	}
	base, err := Compile(queries, Config{TopDownPruning: true})
	if err != nil {
		b.Fatal(err)
	}
	data := datagen.NewGenerator(ds, 60).GenerateBytes(1 << 20)
	// Scaling needs cores: on GOMAXPROCS=1 the extra workers are pure
	// scheduling overhead.
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			pool, err := NewPool(base, n)
			if err != nil {
				b.Fatal(err)
			}
			// Warm every worker.
			if err := pool.FilterStream(strings.NewReader(string(data)), func(Result) {}); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.FilterStream(strings.NewReader(string(data)), func(Result) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
