// Package integration cross-checks every engine in the repository on
// realistic generated workloads and data: the XPush machine under all
// optimization stacks, the per-query baseline, the shared-navigation
// baseline, and the DOM oracle must produce identical match sets, document
// by document.
package integration

import (
	"fmt"
	"testing"

	"repro/internal/afa"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/naive"
	"repro/internal/perquery"
	"repro/internal/workload"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// stacks returns the XPush configurations under test.
func stacks(ds *datagen.Dataset) map[string]core.Options {
	order := ds.DTD.SiblingOrder()
	return map[string]core.Options{
		"basic":          {},
		"precomp":        {PrecomputeValues: true},
		"td":             {TopDown: true},
		"order":          {Order: order},
		"td-order":       {TopDown: true, Order: order},
		"td-order-early": {TopDown: true, Order: order, Early: true},
	}
}

func crossCheck(t *testing.T, ds *datagen.Dataset, params workload.Params, docs int, dataSeed int64, train bool) {
	t.Helper()
	filters := workload.Generate(ds, params)
	oracle := naive.NewEngine(filters)
	yf := yfilter.NewEngine(filters)
	pq, err := perquery.NewEngine(filters)
	if err != nil {
		t.Fatal(err)
	}
	machines := map[string]*core.Machine{}
	for name, opts := range stacks(ds) {
		a, err := afa.Compile(filters)
		if err != nil {
			t.Fatal(err)
		}
		m := core.New(a, opts)
		if train {
			if err := m.Train(workload.TrainingData(filters, ds.DTD)); err != nil {
				t.Fatal(err)
			}
			name += "+train"
		}
		machines[name] = m
	}
	gen := datagen.NewGenerator(ds, dataSeed)
	for di := 0; di < docs; di++ {
		doc := gen.GenerateDocument()
		want, err := oracle.FilterDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		wantS := fmt.Sprint(want)
		if got, err := yf.FilterDocument(doc); err != nil || fmt.Sprint(got) != wantS {
			t.Fatalf("doc %d: yfilter %v (err %v) vs oracle %s", di, got, err, wantS)
		}
		if got, err := pq.FilterDocument(doc); err != nil || fmt.Sprint(got) != wantS {
			t.Fatalf("doc %d: perquery %v (err %v) vs oracle %s", di, got, err, wantS)
		}
		for name, m := range machines {
			got, err := m.FilterDocument(doc)
			if err != nil {
				t.Fatalf("doc %d: xpush[%s]: %v", di, name, err)
			}
			if fmt.Sprint(got) != wantS {
				t.Fatalf("doc %d: xpush[%s] %v vs oracle %s", di, name, got, wantS)
			}
		}
	}
}

func TestProteinPlainWorkload(t *testing.T) {
	crossCheck(t, datagen.ProteinLike(), workload.Params{
		Seed: 1, NumQueries: 120, MeanPreds: 3, NestedPredProb: 0.3,
	}, 8, 100, false)
}

func TestProteinRichWorkload(t *testing.T) {
	crossCheck(t, datagen.ProteinLike(), workload.Params{
		Seed: 2, NumQueries: 120, MeanPreds: 5, NestedPredProb: 0.3,
		WildcardProb: 0.15, DescendantProb: 0.2, OrProb: 0.2, NotProb: 0.15,
		StringFuncProb: 0.1,
	}, 8, 200, false)
}

func TestProteinTrainedMachines(t *testing.T) {
	crossCheck(t, datagen.ProteinLike(), workload.Params{
		Seed: 3, NumQueries: 80, MeanPreds: 4, NestedPredProb: 0.2,
		DescendantProb: 0.1,
	}, 6, 300, true)
}

func TestNASARecursiveWorkload(t *testing.T) {
	crossCheck(t, datagen.NASALike(), workload.Params{
		Seed: 4, NumQueries: 120, MeanPreds: 3, NestedPredProb: 0.3,
		DescendantProb: 0.25, WildcardProb: 0.1, NotProb: 0.1,
	}, 8, 400, false)
}

// TestStreamContinuity runs one machine over a long multi-document stream
// and verifies per-document results against the oracle, the rising hit
// ratio, and state-count stability between identical streams.
func TestStreamContinuity(t *testing.T) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, workload.Params{Seed: 5, NumQueries: 150, MeanPreds: 2})
	a, err := afa.Compile(filters)
	if err != nil {
		t.Fatal(err)
	}
	m := core.New(a, core.Options{TopDown: true, Order: ds.DTD.SiblingOrder()})
	oracle := naive.NewEngine(filters)
	data := datagen.NewGenerator(ds, 6).GenerateBytes(512 << 10)

	docs, err := naive.Build(data)
	if err != nil {
		t.Fatal(err)
	}
	var wants []string
	for _, d := range docs {
		wants = append(wants, fmt.Sprint(oracle.FilterTree(d)))
	}
	i := 0
	m.OnDocument = func(oids []int32) {
		if fmt.Sprint(oids) != wants[i] {
			t.Errorf("doc %d: machine %v vs oracle %s", i, oids, wants[i])
		}
		i++
	}
	if err := m.Run(data); err != nil {
		t.Fatal(err)
	}
	if i != len(wants) {
		t.Fatalf("documents processed %d, want %d", i, len(wants))
	}
	firstPassStates := m.Stats().BStates
	// Second pass: zero new states, 100% hits on the delta.
	l0, h0 := m.Stats().Lookups, m.Stats().Hits
	m.OnDocument = nil
	if err := m.Run(data); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.BStates != firstPassStates {
		t.Errorf("states grew on replay: %d -> %d", firstPassStates, st.BStates)
	}
	if st.Hits-h0 != st.Lookups-l0 {
		t.Errorf("replay not fully cached: %d/%d", st.Hits-h0, st.Lookups-l0)
	}
}

// TestEarlyDescendantIntersection targets the Sec. 5 correctness fix: early
// notification with descendant axes intersects the bottom-up state with the
// top-down state after pops.
func TestEarlyDescendantIntersection(t *testing.T) {
	queries := []string{
		"//a[b=1 and c=2]",
		"/r//a[b=1]",
		"//x//y[z=3]",
		"/r/a//c[.=2]",
	}
	filters := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		filters[i] = xpath.MustParse(q)
	}
	oracle := naive.NewEngine(filters)
	docs := []string{
		`<r><a><b>1</b><c>2</c></a></r>`,
		`<r><q><a><b>1</b></a></q></r>`,
		`<x><m><y><z>3</z></y></m></x>`,
		`<r><a><q><c>2</c></q></a></r>`,
		`<w><a><b>1</b><c>2</c></a></w>`, // matches 0 only (// at top)
		`<r><c>2</c></r>`,                // no match
	}
	for _, doc := range docs {
		want, _ := oracle.FilterDocument([]byte(doc))
		a, err := afa.Compile(filters)
		if err != nil {
			t.Fatal(err)
		}
		m := core.New(a, core.Options{Early: true})
		got, err := m.FilterDocument([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("doc %s: early %v vs oracle %v", doc, got, want)
		}
	}
}
