package server

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Policy selects what happens when a subscriber's bounded delivery queue is
// full — the classic slow-consumer problem of a broker fanning one fast
// stream out to many subscribers of varying speed.
type Policy string

const (
	// DropOldest evicts the oldest queued delivery to admit the new one:
	// the subscriber lags but always converges to recent traffic.
	DropOldest Policy = "drop-oldest"
	// DropNewest discards the incoming delivery: the subscriber keeps a
	// contiguous prefix and loses the tail.
	DropNewest Policy = "drop-newest"
	// Block makes the publisher wait (up to the configured deadline) for
	// queue space: lossless as long as consumers keep up on average, at
	// the cost of publisher latency. On deadline expiry the delivery is
	// dropped and counted.
	Block Policy = "block"
	// Disconnect drops the delivery and closes the slow subscriber's
	// connection: strict-SLA deployments where a lagging consumer must
	// re-sync out of band anyway.
	Disconnect Policy = "disconnect"
)

// ParsePolicy validates a policy name from configuration.
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(s); p {
	case DropOldest, DropNewest, Block, Disconnect:
		return p, nil
	}
	return "", fmt.Errorf("server: unknown backpressure policy %q (want %s, %s, %s, or %s)",
		s, DropOldest, DropNewest, Block, Disconnect)
}

// delivery is one queued notification for a subscriber.
type delivery struct {
	doc     []byte   // shared, read-only
	filters []uint64 // the subscriber's filter ids that matched
	enq     time.Time
	tc      *trace.Ctx // nil unless the document is traced
}

// release drops a delivery that will never be written (queue overflow,
// closed queue, aborted consumer), returning its trace reference so the
// trace still completes. A nil tc makes this free.
func (d *delivery) release() {
	d.tc.Finish()
}

// queue is a bounded per-subscriber delivery queue. Producers (publish
// fan-out) push under the configured policy; a single consumer (the
// subscriber connection's delivery goroutine) pops and writes frames.
type queue struct {
	ch       chan delivery
	policy   Policy
	deadline time.Duration // Block policy: max wait for space
	dropped  *obs.Counter  // policy-specific drop counter (shared, server-wide)

	closeOnce sync.Once
	done      chan struct{} // closed to stop the consumer (after draining)
}

func newQueue(depth int, policy Policy, deadline time.Duration, dropped *obs.Counter) *queue {
	if depth <= 0 {
		depth = 128
	}
	return &queue{
		ch:       make(chan delivery, depth),
		policy:   policy,
		deadline: deadline,
		dropped:  dropped,
		done:     make(chan struct{}),
	}
}

// depth reports the current queue length (the queue-depth gauge).
func (q *queue) depth() int { return len(q.ch) }

// push enqueues one delivery under the queue's policy. It reports whether
// the subscriber should be disconnected (Disconnect policy on overflow).
func (q *queue) push(d delivery) (disconnect bool) {
	select {
	case q.ch <- d:
		return false
	case <-q.done:
		d.release()
		return false
	default:
	}
	switch q.policy {
	case DropOldest:
		for {
			select {
			case q.ch <- d:
				return false
			case <-q.done:
				d.release()
				return false
			default:
			}
			select {
			case old := <-q.ch: // evict the oldest, then retry
				old.release()
				q.dropped.Inc()
			default:
			}
		}
	case Block:
		t := time.NewTimer(q.deadline)
		defer t.Stop()
		select {
		case q.ch <- d:
			return false
		case <-q.done:
			d.release()
			return false
		case <-t.C:
			q.dropped.Inc()
			d.release()
			return false
		}
	case Disconnect:
		q.dropped.Inc()
		d.release()
		return true
	default: // DropNewest
		q.dropped.Inc()
		d.release()
		return false
	}
}

// close stops the consumer. The consumer drains whatever is queued first
// (see drainLoop), which is what graceful shutdown relies on.
func (q *queue) close() {
	q.closeOnce.Do(func() { close(q.done) })
}

// maxConsumeBatch bounds how many deliveries one consume wakeup hands to
// the deliver callback (and so how many DELIVER frames share one flush).
const maxConsumeBatch = 128

// fillBatch collects first plus everything else immediately available, in
// FIFO order, up to maxConsumeBatch.
func (q *queue) fillBatch(batch []delivery, first delivery) []delivery {
	batch = append(batch[:0], first)
	for len(batch) < maxConsumeBatch {
		select {
		case d := <-q.ch:
			batch = append(batch, d)
		default:
			return batch
		}
	}
	return batch
}

// consume runs the consumer loop: deliver is called with every queued item
// available at each wakeup (in FIFO order) until close(), then the
// remaining items are flushed. Handing the whole ready batch to one call
// lets the subscriber connection write all those DELIVER frames under a
// single flush. deliver returns false to abort (e.g. the connection broke);
// queued deliveries are then released so their traces still complete.
func (q *queue) consume(deliver func([]delivery) bool) {
	var batch []delivery
	for {
		select {
		case d := <-q.ch:
			batch = q.fillBatch(batch, d)
			if !deliver(batch) {
				q.drainRelease()
				return
			}
		case <-q.done:
			for {
				select {
				case d := <-q.ch:
					batch = q.fillBatch(batch, d)
					if !deliver(batch) {
						q.drainRelease()
						return
					}
				default:
					return
				}
			}
		}
	}
}

// drainRelease empties the queue after an aborted consumer, releasing each
// delivery's trace reference. A push racing with the drain may land after
// it and hold its trace open until the queue's done channel closes at
// teardown — a bounded accounting delay, not a leak of ring memory.
func (q *queue) drainRelease() {
	for {
		select {
		case d := <-q.ch:
			d.release()
		default:
			return
		}
	}
}
