package load

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
)

// Runner drives a Plan against a live broker. Addr is the broker's TCP
// address; Log (optional) receives one progress line per report interval.
type Runner struct {
	Plan *Plan
	Addr string
	Log  io.Writer
}

// Result is a completed run: per-phase counters and latency summaries.
type Result struct {
	Spec   Spec          `json:"spec"`
	Phases []PhaseResult `json:"phases"`
}

// PhaseResult reports one phase. All latencies are coordinated-omission
// safe: measured from each document's intended start under the target
// arrival rate, not from the moment the send finally went out.
type PhaseResult struct {
	Name       string  `json:"name"`
	Seconds    float64 `json:"seconds"`
	TargetRate float64 `json:"target_rate"`

	Published    uint64  `json:"published"`
	AchievedRate float64 `json:"achieved_rate"`
	AckErrors    uint64  `json:"ack_errors"`

	Deliveries        uint64 `json:"deliveries"`
	DurableDeliveries uint64 `json:"durable_deliveries"`

	ChurnOps   uint64 `json:"churn_ops"`
	Reconnects uint64 `json:"reconnects"`
	Errors     uint64 `json:"errors"`

	// MaxSchedLagMs is the worst lateness of the open-loop scheduler itself
	// (intended start vs. actual send). Large values mean the generator — not
	// the broker — was the bottleneck, and the latency percentiles carry
	// that lag; report it so a saturated-generator run is not mistaken for a
	// slow broker.
	MaxSchedLagMs float64 `json:"max_sched_lag_ms"`

	PubAck   LatencySummary `json:"pub_ack"`
	Delivery LatencySummary `json:"delivery"`
}

// Failed reports whether the phase saw any broker or harness errors.
func (p PhaseResult) Failed() bool { return p.AckErrors+p.Errors > 0 }

// measure accumulates one phase's observations. Deliveries are attributed
// to the phase that published the document (carried in the doc tag), so a
// document published at the end of phase N and delivered during phase N+1
// still lands in N's histogram.
type measure struct {
	pubAck Hist
	e2e    Hist

	published         atomic.Uint64
	ackErrors         atomic.Uint64
	deliveries        atomic.Uint64
	durableDeliveries atomic.Uint64
	churnOps          atomic.Uint64
	reconnects        atomic.Uint64
	errors            atomic.Uint64
	maxLagNanos       atomic.Int64

	seconds float64 // actual elapsed, set at phase end
}

func (m *measure) noteLag(lag time.Duration) {
	v := int64(lag)
	for {
		old := m.maxLagNanos.Load()
		if v <= old || m.maxLagNanos.CompareAndSwap(old, v) {
			return
		}
	}
}

// pubIntent is a registered publish: its intended start (since the run
// epoch) and owning phase, keyed by pipeline sequence number.
type pubIntent struct {
	intended time.Duration
	phase    int
}

// connSlot is one subscriber connection. Its mutex serializes structural
// changes (churn resubscribes, reconnect storms) against each other; the
// delivery path never takes it (handlers reach the current client through
// the atomic pointer, so a reconnect cannot deadlock against its own
// read loop).
type connSlot struct {
	mu      sync.Mutex
	cc      atomic.Pointer[client.Client]
	durable bool
	name    string         // durable connections: the broker-side durable name
	subs    map[int]uint64 // subscriber index -> live subscription id
}

type runState struct {
	r     *Runner
	ctx   context.Context // whole-run context (reconnect dials outlive phases)
	epoch time.Time

	measures []*measure
	curPhase atomic.Int32

	// Run-wide histograms double-record every observation so the interval
	// reporter can window across phase boundaries.
	allPubAck Hist
	allE2E    Hist

	intentMu sync.Mutex
	intents  map[uint64]pubIntent
	nextSeq  uint64

	ephSlots []*connSlot
	durSlots []*connSlot
	subSlot  []*connSlot // per subscriber index
	// subFilter is each subscriber's current filter (churn moves it);
	// guarded by the subscriber's slot mutex.
	subFilter []int

	docs  *docPicker
	churn *churnPicker
}

// Run executes every phase of the plan against the broker and returns the
// per-phase results. It returns an error only when the run could not be
// carried out (setup failure, publisher connection lost); broker-side
// per-document failures are counted in the results instead.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	plan := r.Plan
	st := &runState{
		r:         r,
		ctx:       ctx,
		measures:  make([]*measure, len(plan.Spec.Phases)),
		intents:   make(map[uint64]pubIntent),
		nextSeq:   1,
		subSlot:   make([]*connSlot, len(plan.Subs)),
		subFilter: make([]int, len(plan.Subs)),
		docs:      plan.newDocPicker(),
	}
	for i := range st.measures {
		st.measures[i] = &measure{}
	}
	var err error
	if st.churn, err = plan.newChurnPicker(); err != nil {
		return nil, err
	}

	if err := st.connect(); err != nil {
		st.closeSlots()
		return nil, err
	}
	defer st.closeSlots()

	// The publisher rides its own connection so subscriber fan-out cannot
	// head-of-line-block publish acks.
	pub, err := client.DialRetry(ctx, r.Addr, client.Options{Timeout: 30 * time.Second}, client.Backoff{})
	if err != nil {
		return nil, fmt.Errorf("load: dial publisher: %w", err)
	}
	defer pub.Close()
	pipe, err := pub.PublishPipelined(plan.Spec.Window, st.onPubResult)
	if err != nil {
		return nil, err
	}

	st.epoch = time.Now()
	reportDone := make(chan struct{})
	var reportWG sync.WaitGroup
	if r.Log != nil {
		reportWG.Add(1)
		go func() { defer reportWG.Done(); st.reportLoop(reportDone) }()
	}

	var runErr error
	for i := range plan.Spec.Phases {
		st.curPhase.Store(int32(i))
		if err := st.runPhase(i, pipe); err != nil {
			runErr = err
			break
		}
		if ctx.Err() != nil {
			runErr = ctx.Err()
			break
		}
	}

	// Drain the pipeline window, then give trailing deliveries a moment to
	// land before snapshotting.
	if err := pipe.Close(); err != nil && runErr == nil {
		runErr = err
	}
	time.Sleep(250 * time.Millisecond)
	close(reportDone)
	reportWG.Wait()

	if runErr != nil {
		return nil, runErr
	}
	return st.collect(), nil
}

// connect dials every subscriber connection and establishes the planned
// subscriptions, parallel across connections.
func (st *runState) connect() error {
	plan := st.r.Plan
	st.ephSlots = make([]*connSlot, plan.Spec.Connections)
	st.durSlots = make([]*connSlot, plan.Spec.DurableConnections)
	for i := range st.ephSlots {
		st.ephSlots[i] = &connSlot{subs: make(map[int]uint64)}
	}
	for i := range st.durSlots {
		st.durSlots[i] = &connSlot{durable: true, name: plan.DurableName(i), subs: make(map[int]uint64)}
	}
	for i, sub := range plan.Subs {
		slot := st.ephSlots[sub.Conn]
		if sub.Durable {
			slot = st.durSlots[sub.Conn]
		}
		st.subSlot[i] = slot
		st.subFilter[i] = sub.Filter
		slot.subs[i] = 0 // id filled in below
	}

	slots := append(append([]*connSlot(nil), st.ephSlots...), st.durSlots...)
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for si, slot := range slots {
		wg.Add(1)
		go func(si int, slot *connSlot) {
			defer wg.Done()
			if err := st.dialSlot(slot); err != nil {
				errs[si] = err
				return
			}
			c := slot.cc.Load()
			for sub := range slot.subs {
				id, err := st.subscribe(c, slot, sub)
				if err != nil {
					errs[si] = fmt.Errorf("subscriber %d: %w", sub, err)
					return
				}
				slot.subs[sub] = id
			}
		}(si, slot)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("load: connect: %w", err)
		}
	}
	return nil
}

// subscribe establishes subscriber sub's current filter on c. Durable
// slots subscribe under the connection's stable durable name (the broker
// scopes one name and replay cursor per connection), so a reconnecting
// durable slot resumes where its acks left off.
func (st *runState) subscribe(c *client.Client, slot *connSlot, sub int) (uint64, error) {
	xp := st.r.Plan.Filters[st.subFilter[sub]]
	if slot.durable {
		id, _, err := c.SubscribeDurable(slot.name, xp)
		return id, err
	}
	return c.Subscribe(xp)
}

// dialSlot (re)establishes a slot's connection with retry and installs the
// measuring delivery handler.
func (st *runState) dialSlot(slot *connSlot) error {
	c, err := client.DialRetry(st.ctx, st.r.Addr, client.Options{
		OnDeliver: st.deliverHandler(slot),
		Timeout:   30 * time.Second,
	}, client.Backoff{Probe: func(c *client.Client) error { return c.Ping() }})
	if err != nil {
		return err
	}
	slot.cc.Store(c)
	return nil
}

// deliverHandler records end-to-end latency from the doc tag's intended
// start and acks durable deliveries. It runs on the connection's read loop
// and takes no slot lock.
func (st *runState) deliverHandler(slot *connSlot) func(client.Delivery) {
	return func(d client.Delivery) {
		now := time.Since(st.epoch)
		if d.Durable {
			if c := slot.cc.Load(); c != nil {
				c.Ack(d.Offset)
			}
		}
		phase, intended, ok := parseDocTag(d.Doc)
		if !ok || phase < 0 || phase >= len(st.measures) {
			return
		}
		m := st.measures[phase]
		m.deliveries.Add(uint64(len(d.Filters)))
		if d.Durable {
			m.durableDeliveries.Add(uint64(len(d.Filters)))
		}
		lat := now - intended
		m.e2e.Record(lat)
		st.allE2E.Record(lat)
	}
}

// onPubResult records publish-ack latency against the registered intent.
func (st *runState) onPubResult(res client.PublishResult) {
	now := time.Since(st.epoch)
	st.intentMu.Lock()
	in, ok := st.intents[res.Seq]
	delete(st.intents, res.Seq)
	st.intentMu.Unlock()
	if !ok {
		return
	}
	m := st.measures[in.phase]
	if res.Err != nil {
		m.ackErrors.Add(1)
		return
	}
	lat := now - in.intended
	m.pubAck.Record(lat)
	st.allPubAck.Record(lat)
}

// runPhase runs one phase: the open-loop publisher plus churn and
// reconnect loops for the phase's duration.
func (st *runState) runPhase(idx int, pipe *client.Pipeline) error {
	ph := st.r.Plan.Spec.Phases[idx]
	rate := ph.Rate
	if rate == 0 {
		rate = st.r.Plan.Spec.Rate
	}
	m := st.measures[idx]
	start := time.Now()
	phCtx, cancel := context.WithDeadline(st.ctx, start.Add(ph.Duration))
	defer cancel()

	var wg sync.WaitGroup
	if ph.ChurnRate > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); st.churnLoop(phCtx, ph.ChurnRate, m) }()
	}
	if ph.ReconnectRate > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); st.reconnectLoop(phCtx, ph.ReconnectRate, m) }()
	}
	err := st.publishLoop(phCtx, idx, rate, pipe, m)
	wg.Wait()
	m.seconds = time.Since(start).Seconds()
	return err
}

// publishLoop is the open-loop arrival scheduler: document i's intended
// start is phaseStart + i/rate, the loop sleeps until then (never longer),
// and every latency downstream is measured from that intended start. When
// the loop itself falls behind (window full, CPU starved) it publishes
// immediately and records the lag in MaxSchedLag.
func (st *runState) publishLoop(ctx context.Context, phase int, rate float64, pipe *client.Pipeline, m *measure) error {
	if rate <= 0 { // churn-only phase
		<-ctx.Done()
		return nil
	}
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
	for n := int64(0); ; n++ {
		target := start.Add(time.Duration(n) * interval)
		if wait := time.Until(target); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return nil
			}
		} else {
			m.noteLag(-wait)
			select {
			case <-ctx.Done():
				return nil
			default:
			}
		}

		ci, di := st.docs.next()
		doc := st.r.Plan.Docs[ci][di]
		intended := target.Sub(st.epoch)
		payload := appendDocTag(nil, phase, intended, doc)

		// Register the intent before the frame can be acked: the pipeline
		// assigns sequence numbers in submission order starting at 1, and
		// this loop is the only publisher, so the next seq is ours.
		st.intentMu.Lock()
		seq := st.nextSeq
		st.nextSeq++
		st.intents[seq] = pubIntent{intended: intended, phase: phase}
		st.intentMu.Unlock()

		if _, err := pipe.Publish(payload); err != nil {
			st.intentMu.Lock()
			delete(st.intents, seq)
			st.intentMu.Unlock()
			return fmt.Errorf("load: publish: %w", err)
		}
		m.published.Add(1)
	}
}

// churnLoop unsubscribes a random ephemeral subscriber and resubscribes it
// to a popularity-drawn filter, ChurnRate times per second.
func (st *runState) churnLoop(ctx context.Context, rate float64, m *measure) {
	ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		sub, filter, ok := st.churn.next()
		if !ok {
			return // nothing ephemeral to churn
		}
		slot := st.subSlot[sub]
		slot.mu.Lock()
		c := slot.cc.Load()
		if err := c.Unsubscribe(slot.subs[sub]); err != nil {
			m.errors.Add(1)
			slot.mu.Unlock()
			continue
		}
		id, err := c.Subscribe(st.r.Plan.Filters[filter])
		if err != nil {
			m.errors.Add(1)
			slot.mu.Unlock()
			continue
		}
		slot.subs[sub] = id
		st.subFilter[sub] = filter
		slot.mu.Unlock()
		m.churnOps.Add(1)
	}
}

// reconnectLoop storms random ephemeral connections: close outright (the
// broker sees an abrupt disconnect), redial with backoff, resubscribe
// everything the connection carried.
func (st *runState) reconnectLoop(ctx context.Context, rate float64, m *measure) {
	rng := rand.New(rand.NewSource(st.r.Plan.Spec.Seed + seedReconnect))
	ticker := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		slot := st.ephSlots[rng.Intn(len(st.ephSlots))]
		slot.mu.Lock()
		if old := slot.cc.Load(); old != nil {
			old.Close()
		}
		if err := st.dialSlot(slot); err != nil {
			m.errors.Add(1)
			slot.mu.Unlock()
			return // context is gone or the broker is unreachable
		}
		c := slot.cc.Load()
		failed := false
		for sub := range slot.subs {
			id, err := st.subscribe(c, slot, sub)
			if err != nil {
				m.errors.Add(1)
				failed = true
				continue
			}
			slot.subs[sub] = id
		}
		slot.mu.Unlock()
		if !failed {
			m.reconnects.Add(1)
		}
	}
}

// reportLoop prints one progress line per report interval, windowing the
// run-wide histograms (per-interval deltas, not cumulative smoothing).
func (st *runState) reportLoop(done <-chan struct{}) {
	iv := st.r.Plan.Spec.ReportInterval
	if iv <= 0 {
		iv = time.Second
	}
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	var prevAck, prevE2E HistSnapshot
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		ack := st.allPubAck.Snapshot()
		e2e := st.allE2E.Snapshot()
		dAck := ack.DeltaSince(prevAck)
		dE2E := e2e.DeltaSince(prevE2E)
		prevAck, prevE2E = ack, e2e
		name := st.r.Plan.Spec.Phases[st.curPhase.Load()].Name
		fmt.Fprintf(st.r.Log,
			"%7.1fs %-8s pub %6.0f/s ack p50=%-9v p99=%-9v | deliver %7.0f/s e2e p50=%-9v p99=%-9v p99.9=%v\n",
			time.Since(st.epoch).Seconds(), name,
			float64(dAck.Count)/iv.Seconds(),
			dAck.Quantile(0.50).Round(time.Microsecond), dAck.Quantile(0.99).Round(time.Microsecond),
			float64(dE2E.Count)/iv.Seconds(),
			dE2E.Quantile(0.50).Round(time.Microsecond), dE2E.Quantile(0.99).Round(time.Microsecond),
			dE2E.Quantile(0.999).Round(time.Microsecond))
	}
}

// collect snapshots every phase into the final result.
func (st *runState) collect() *Result {
	res := &Result{Spec: st.r.Plan.Spec}
	for i, m := range st.measures {
		ph := st.r.Plan.Spec.Phases[i]
		rate := ph.Rate
		if rate == 0 {
			rate = st.r.Plan.Spec.Rate
		}
		pr := PhaseResult{
			Name:              ph.Name,
			Seconds:           m.seconds,
			TargetRate:        rate,
			Published:         m.published.Load(),
			AckErrors:         m.ackErrors.Load(),
			Deliveries:        m.deliveries.Load(),
			DurableDeliveries: m.durableDeliveries.Load(),
			ChurnOps:          m.churnOps.Load(),
			Reconnects:        m.reconnects.Load(),
			Errors:            m.errors.Load(),
			MaxSchedLagMs:     float64(m.maxLagNanos.Load()) / 1e6,
			PubAck:            m.pubAck.Snapshot().Summary(),
			Delivery:          m.e2e.Snapshot().Summary(),
		}
		if m.seconds > 0 {
			pr.AchievedRate = float64(pr.Published) / m.seconds
		}
		res.Phases = append(res.Phases, pr)
	}
	return res
}

func (st *runState) closeSlots() {
	for _, slot := range append(append([]*connSlot(nil), st.ephSlots...), st.durSlots...) {
		if c := slot.cc.Load(); c != nil {
			c.Close()
		}
	}
}

// Doc tag: every published document carries an XML comment prefix
// `<!--xpl:p<phase>:<intendedNanos>-->` holding its phase index and
// intended-start offset (nanoseconds since the run epoch). The broker
// forwards document bytes verbatim and the SAX scanner skips comments, so
// the tag rides the whole pipeline and lets any subscriber connection
// compute coordinated-omission-safe end-to-end latency without a shared
// seq map.

const docTagPrefix = "<!--xpl:p"

// appendDocTag writes the tag followed by doc into dst.
func appendDocTag(dst []byte, phase int, intended time.Duration, doc []byte) []byte {
	dst = append(dst, docTagPrefix...)
	dst = appendInt(dst, int64(phase))
	dst = append(dst, ':')
	dst = appendInt(dst, int64(intended))
	dst = append(dst, '-', '-', '>')
	return append(dst, doc...)
}

// parseDocTag extracts the phase and intended start from a tagged document.
func parseDocTag(doc []byte) (phase int, intended time.Duration, ok bool) {
	if len(doc) < len(docTagPrefix) || string(doc[:len(docTagPrefix)]) != docTagPrefix {
		return 0, 0, false
	}
	i := len(docTagPrefix)
	p, i, ok := parseInt(doc, i)
	if !ok || i >= len(doc) || doc[i] != ':' {
		return 0, 0, false
	}
	v, i, ok := parseInt(doc, i+1)
	if !ok || i+3 > len(doc) || doc[i] != '-' || doc[i+1] != '-' || doc[i+2] != '>' {
		return 0, 0, false
	}
	return int(p), time.Duration(v), true
}

func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

func parseInt(b []byte, i int) (int64, int, bool) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg, i = true, i+1
	}
	start := i
	var v int64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + int64(b[i]-'0')
		i++
	}
	if i == start {
		return 0, i, false
	}
	if neg {
		v = -v
	}
	return v, i, true
}
