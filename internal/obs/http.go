package obs

import (
	"net/http"
	"net/http/pprof"
)

// MetricsHandler returns an http.Handler that serves the registry in
// Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}

// NewMux returns a ServeMux with the conventional observability endpoints:
// GET /metrics (Prometheus text) and GET /healthz (always "ok" — the
// process is healthy if it can answer).
func (r *Registry) NewMux() *http.ServeMux {
	return r.NewMuxWithReadiness(nil)
}

// NewMuxWithReadiness is NewMux with a readiness probe: while ready returns
// false, GET /healthz answers 503 "draining" so load balancers stop routing
// to an instance that is shutting down, while /metrics stays scrapeable for
// the final flush. A nil ready means always ready.
func (r *Registry) NewMuxWithReadiness(ready func() bool) *http.ServeMux {
	if ready == nil {
		return r.NewMuxWithStatus(nil)
	}
	return r.NewMuxWithStatus(func() (bool, string) {
		if !ready() {
			return false, "draining"
		}
		return true, "ok"
	})
}

// NewMuxWithStatus is NewMux with a full health probe: when status reports
// not-ok, GET /healthz answers 503 with the status message as the body (e.g.
// "draining", "degraded: ..."), while /metrics stays scrapeable. A nil
// status means always healthy.
func (r *Registry) NewMuxWithStatus(status func() (ok bool, msg string)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if status != nil {
			if ok, msg := status(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(msg + "\n"))
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

// NewDebugMux returns a mux for an opt-in debug listener: everything from
// NewMux plus the net/http/pprof handlers under /debug/pprof/. The pprof
// endpoints expose heap contents and CPU samples, so callers should bind
// the mux to a loopback or otherwise trusted address.
func (r *Registry) NewDebugMux() *http.ServeMux {
	mux := r.NewMux()
	RegisterPprof(mux)
	return mux
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/, matching what importing net/http/pprof does to
// http.DefaultServeMux — without touching the default mux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
