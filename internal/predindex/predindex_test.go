package predindex

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/xmlval"
)

func TestFig3ValueIndex(t *testing.T) {
	// The running example's index holds two predicates: =1 and >2.
	// Fig. 3 shows the induced interval partition
	// (-inf,1) {1} (1,2] (2,inf) with {1} -> =1 and (2,inf) -> >2.
	b := NewBuilder()
	b.Add(4, xmlval.OpEq, xmlval.NumberConst(1))  // AFA state 4 (and 13 shares the predicate)
	b.Add(13, xmlval.OpEq, xmlval.NumberConst(1)) // π13(1) = true
	b.Add(7, xmlval.OpGt, xmlval.NumberConst(2))
	b.Add(11, xmlval.OpGt, xmlval.NumberConst(2))
	ix := b.Build()

	check := func(text string, want []int32) {
		t.Helper()
		got := ix.Match(xmlval.New(text))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("Match(%q) = %v, want %v", text, got, want)
		}
	}
	check("0", []int32{})
	check("1", []int32{4, 13})
	check("1.5", []int32{})
	check("2", []int32{})
	check("3", []int32{7, 11})
	check("55", []int32{7, 11})
	check("abc", []int32{}) // non-numeric satisfies no numeric predicate
}

func TestAlwaysTrue(t *testing.T) {
	b := NewBuilder()
	b.Add(1, xmlval.OpExists, xmlval.Const{})
	b.Add(2, xmlval.OpEq, xmlval.NumberConst(5))
	ix := b.Build()
	if got := fmt.Sprint(ix.Match(xmlval.New("anything"))); got != "[1]" {
		t.Errorf("always: %s", got)
	}
	if got := fmt.Sprint(ix.Match(xmlval.New("5"))); got != "[1 2]" {
		t.Errorf("always+eq: %s", got)
	}
}

func TestStringPredicates(t *testing.T) {
	b := NewBuilder()
	b.Add(1, xmlval.OpEq, xmlval.StringConst("m"))
	b.Add(2, xmlval.OpLt, xmlval.StringConst("m"))
	b.Add(3, xmlval.OpGe, xmlval.StringConst("m"))
	b.Add(4, xmlval.OpNe, xmlval.StringConst("m"))
	ix := b.Build()
	cases := map[string]string{
		"a": "[2 4]",
		"m": "[1 3]",
		"z": "[3 4]",
	}
	for in, want := range cases {
		if got := fmt.Sprint(ix.Match(xmlval.New(in))); got != want {
			t.Errorf("Match(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestMixedDomains(t *testing.T) {
	// Numeric text can satisfy string predicates too (lexicographic).
	b := NewBuilder()
	b.Add(1, xmlval.OpEq, xmlval.NumberConst(10))
	b.Add(2, xmlval.OpEq, xmlval.StringConst("10"))
	ix := b.Build()
	if got := fmt.Sprint(ix.Match(xmlval.New("10"))); got != "[1 2]" {
		t.Errorf("both domains: %s", got)
	}
	if got := fmt.Sprint(ix.Match(xmlval.New("10.0"))); got != "[1]" {
		t.Errorf("numeric only: %s", got)
	}
}

func TestContainsStartsWith(t *testing.T) {
	b := NewBuilder()
	b.Add(1, xmlval.OpContains, xmlval.StringConst("ell"))
	b.Add(2, xmlval.OpContains, xmlval.StringConst("lo w"))
	b.Add(3, xmlval.OpStartsWith, xmlval.StringConst("hel"))
	b.Add(4, xmlval.OpStartsWith, xmlval.StringConst("world"))
	b.Add(5, xmlval.OpContains, xmlval.StringConst("he"))
	ix := b.Build()
	if !ix.HasStringFuncs() {
		t.Fatal("HasStringFuncs")
	}
	got := fmt.Sprint(ix.Match(xmlval.New("hello world")))
	if got != "[1 2 3 5]" {
		t.Errorf("match = %s", got)
	}
	if got := fmt.Sprint(ix.Match(xmlval.New("world"))); got != "[4]" {
		t.Errorf("match = %s", got)
	}
	// Repeated occurrences must not duplicate ids.
	if got := fmt.Sprint(ix.Match(xmlval.New("hehehe"))); got != "[5]" {
		t.Errorf("dedup: %s", got)
	}
}

func TestIntervalKeyConsistency(t *testing.T) {
	b := NewBuilder()
	b.Add(1, xmlval.OpLt, xmlval.NumberConst(10))
	b.Add(2, xmlval.OpEq, xmlval.StringConst("x"))
	ix := b.Build()
	if ix.IntervalKey(xmlval.New("3")) != ix.IntervalKey(xmlval.New("4")) {
		t.Error("values in the same interval must share a key")
	}
	if ix.IntervalKey(xmlval.New("3")) == ix.IntervalKey(xmlval.New("10")) {
		t.Error("point and gap must differ")
	}
	if ix.IntervalKey(xmlval.New("x")) == ix.IntervalKey(xmlval.New("y")) {
		t.Error("string point vs gap must differ")
	}
	if ix.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d", ix.NumIntervals())
	}
}

// TestBruteForceProperty cross-checks the index against direct evaluation of
// every predicate on random values.
func TestBruteForceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ops := []xmlval.Op{xmlval.OpEq, xmlval.OpNe, xmlval.OpLt, xmlval.OpLe, xmlval.OpGt, xmlval.OpGe}
	words := []string{"", "a", "ab", "abc", "b", "hello", "m", "zz"}
	for trial := 0; trial < 60; trial++ {
		b := NewBuilder()
		type pred struct {
			op xmlval.Op
			c  xmlval.Const
		}
		var preds []pred
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			var p pred
			switch r.Intn(6) {
			case 0:
				p = pred{xmlval.OpContains, xmlval.StringConst(words[1+r.Intn(len(words)-1)])}
			case 1:
				p = pred{xmlval.OpStartsWith, xmlval.StringConst(words[1+r.Intn(len(words)-1)])}
			case 2:
				p = pred{ops[r.Intn(len(ops))], xmlval.StringConst(words[r.Intn(len(words))])}
			case 3:
				p = pred{xmlval.OpExists, xmlval.Const{}}
			default:
				p = pred{ops[r.Intn(len(ops))], xmlval.NumberConst(float64(r.Intn(10) - 5))}
			}
			preds = append(preds, p)
			b.Add(int32(i), p.op, p.c)
		}
		ix := b.Build()
		for probe := 0; probe < 50; probe++ {
			var v xmlval.Value
			if r.Intn(2) == 0 {
				v = xmlval.FromNumber(float64(r.Intn(14)-7) / 2)
			} else {
				v = xmlval.New(words[r.Intn(len(words))])
			}
			var want []int32
			for i, p := range preds {
				if xmlval.Eval(p.op, v, p.c) {
					want = append(want, int32(i))
				}
			}
			got := ix.Match(v)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d: Match(%q) = %v, want %v (preds %v)",
					trial, v.Text, got, want, preds)
			}
		}
	}
}

func TestIntervalCacheReuse(t *testing.T) {
	b := NewBuilder()
	b.Add(1, xmlval.OpLt, xmlval.NumberConst(100))
	ix := b.Build()
	a1 := ix.Match(xmlval.New("5"))
	a2 := ix.Match(xmlval.New("7"))
	if &a1[0] != &a2[0] {
		t.Error("same interval should return the cached slice")
	}
}

func TestSatisfyingValue(t *testing.T) {
	cases := []struct {
		op xmlval.Op
		c  xmlval.Const
	}{
		{xmlval.OpEq, xmlval.NumberConst(5)},
		{xmlval.OpNe, xmlval.NumberConst(5)},
		{xmlval.OpLt, xmlval.NumberConst(5)},
		{xmlval.OpLe, xmlval.NumberConst(5)},
		{xmlval.OpGt, xmlval.NumberConst(5)},
		{xmlval.OpGe, xmlval.NumberConst(5)},
		{xmlval.OpEq, xmlval.StringConst("abc")},
		{xmlval.OpNe, xmlval.StringConst("abc")},
		{xmlval.OpLt, xmlval.StringConst("abc")},
		{xmlval.OpGt, xmlval.StringConst("abc")},
		{xmlval.OpContains, xmlval.StringConst("abc")},
		{xmlval.OpStartsWith, xmlval.StringConst("abc")},
		{xmlval.OpExists, xmlval.Const{}},
	}
	for _, tc := range cases {
		v, ok := SatisfyingValue(tc.op, tc.c)
		if !ok {
			t.Errorf("SatisfyingValue(%v, %v) impossible", tc.op, tc.c)
			continue
		}
		if !xmlval.Eval(tc.op, v, tc.c) {
			t.Errorf("SatisfyingValue(%v, %v) = %q does not satisfy", tc.op, tc.c, v.Text)
		}
	}
	if _, ok := SatisfyingValue(xmlval.OpLt, xmlval.StringConst("")); ok {
		t.Error("nothing sorts below the empty string")
	}
}

func TestBuilderLen(t *testing.T) {
	b := NewBuilder()
	if b.Len() != 0 {
		t.Error("empty")
	}
	b.Add(1, xmlval.OpEq, xmlval.NumberConst(1))
	b.Add(2, xmlval.OpEq, xmlval.NumberConst(2))
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewBuilder().Build()
	if got := ix.Match(xmlval.New("anything")); len(got) != 0 {
		t.Errorf("empty index matched %v", got)
	}
}

func BenchmarkMatchRelational(b *testing.B) {
	bd := NewBuilder()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		op := []xmlval.Op{xmlval.OpEq, xmlval.OpLt, xmlval.OpGt}[r.Intn(3)]
		bd.Add(int32(i), op, xmlval.NumberConst(float64(r.Intn(50000))))
	}
	ix := bd.Build()
	// Warm the touched intervals.
	for i := 0; i < 1000; i++ {
		ix.Match(xmlval.FromNumber(float64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Match(xmlval.FromNumber(float64(i % 1000)))
	}
}

func BenchmarkAhoCorasick(b *testing.B) {
	bd := NewBuilder()
	for i := 0; i < 1000; i++ {
		bd.Add(int32(i), xmlval.OpContains, xmlval.StringConst(fmt.Sprintf("pat%dx", i)))
	}
	ix := bd.Build()
	text := strings.Repeat("some text with pat42x inside ", 10)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Match(xmlval.New(text))
	}
}

// Guard against regressions in the merge helper.
func TestMergeSorted(t *testing.T) {
	cases := []struct{ a, b, want []int32 }{
		{nil, nil, nil},
		{[]int32{1}, nil, []int32{1}},
		{nil, []int32{2}, []int32{2}},
		{[]int32{1, 3, 5}, []int32{2, 3, 4}, []int32{1, 2, 3, 4, 5}},
		{[]int32{1, 2}, []int32{1, 2}, []int32{1, 2}},
	}
	for _, c := range cases {
		got := mergeSorted(c.a, c.b)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("mergeSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Errorf("unsorted: %v", got)
		}
	}
}
