package server

import (
	"testing"

	"repro/internal/trace"
)

func TestProfilerSnapshotRanking(t *testing.T) {
	p := newQueryProfiler(0)
	p.observeFilter([]uint64{1, 2}, []string{"//a", "//b"}, 100, 5)
	p.observeFilter([]uint64{2}, []string{"//b"}, 300, 7)
	p.observeFanout(2, 3)
	p.observeReplay([]uint64{1}, []string{"//a"})
	// nil canons map: resolution must come from the text captured at first
	// observation, which survives the key leaving the dedup registry.
	entries, other, overflow := p.snapshot(nil)
	if overflow != 0 {
		t.Fatalf("overflow = %d, want 0", overflow)
	}
	if len(entries) != 2 {
		t.Fatalf("len(entries) = %d, want 2", len(entries))
	}
	// Key 2 accumulated 400ns of filter time vs key 1's 100ns, so it ranks
	// first and resolves to its canonical text.
	if entries[0].Key != 2 || entries[0].Query != "//b" {
		t.Fatalf("entries[0] = %+v, want key 2 (//b) first", entries[0])
	}
	if entries[0].FilterSeconds != 400e-9 || entries[0].Matches != 2 || entries[0].Fanout != 3 || entries[0].StatesCreated != 12 {
		t.Fatalf("entries[0] = %+v", entries[0])
	}
	if entries[1].Key != 1 || entries[1].ReplayDocs != 1 || entries[1].Matches != 1 {
		t.Fatalf("entries[1] = %+v", entries[1])
	}
	if other.Matches != 0 || other.Query != "other" {
		t.Fatalf("other = %+v", other)
	}
}

func TestProfilerCardinalityCap(t *testing.T) {
	p := newQueryProfiler(2)
	p.observeFilter([]uint64{1}, []string{"//a"}, 10, 0)
	p.observeFilter([]uint64{2}, []string{"//b"}, 10, 0)
	p.observeFilter([]uint64{3, 4}, []string{"//c", "//d"}, 10, 0) // past the cap: both fold into other
	p.observeFilter([]uint64{deadKey}, []string{"//x"}, 10, 0)
	entries, other, overflow := p.snapshot(nil)
	if len(entries) != 2 {
		t.Fatalf("len(entries) = %d, want 2 (cap)", len(entries))
	}
	if overflow != 2 {
		t.Fatalf("overflow = %d, want 2", overflow)
	}
	if other.Matches != 2 || other.FilterSeconds != 20e-9 {
		t.Fatalf("other = %+v", other)
	}
}

// TestUntracedProfilerZeroAllocs pins the nil-receiver discipline: with
// tracing off the profiler is nil and every observation is a free no-op,
// so the untraced publish hot path stays zero-allocation.
func TestUntracedProfilerZeroAllocs(t *testing.T) {
	var p *queryProfiler
	keys := []uint64{1, 2, 3}
	canons := []string{"//a", "//b", "//c"}
	if n := testing.AllocsPerRun(100, func() {
		p.observeFilter(keys, canons, 10, 5)
		p.observeFanout(1, 1)
		p.observeReplay(keys, canons)
	}); n != 0 {
		t.Fatalf("nil profiler allocated %v per observation", n)
	}
	// The other guard on the hot path: reading span cost off a nil trace
	// context (the untraced-document case) must also be free.
	var tc *trace.Ctx
	if n := testing.AllocsPerRun(100, func() {
		if _, _, ok := tc.SpanCost("filter", "states_created"); ok {
			t.Fatal("nil ctx reported a span")
		}
	}); n != 0 {
		t.Fatalf("nil ctx SpanCost allocated %v per call", n)
	}
}

// TestWarmProfilerZeroAllocs: once a key's cell exists, further traced
// observations mutate it in place — no per-document allocation even on the
// traced path.
func TestWarmProfilerZeroAllocs(t *testing.T) {
	p := newQueryProfiler(8)
	keys := []uint64{1, 2}
	canons := []string{"//a", "//b"}
	p.observeFilter(keys, canons, 10, 5)
	p.observeReplay(keys, canons)
	if n := testing.AllocsPerRun(100, func() {
		p.observeFilter(keys, canons, 10, 5)
		p.observeFanout(1, 2)
		p.observeReplay(keys, canons)
	}); n != 0 {
		t.Fatalf("warm profiler allocated %v per observation", n)
	}
}

func TestTracedPayloadRoundTrip(t *testing.T) {
	doc := []byte("<a/>")
	p := AppendTracedPayload(nil, 0xdeadbeef, doc)
	id, rest, err := SplitTracedPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xdeadbeef || string(rest) != "<a/>" {
		t.Fatalf("round trip = (%#x, %q)", id, rest)
	}
	if _, _, err := SplitTracedPayload([]byte("short")); err == nil {
		t.Fatal("short traced payload accepted")
	}
}
