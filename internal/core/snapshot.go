package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Machine state snapshots: a broker can persist its lazily built (or
// trained) state tables and restart warm, instead of re-paying lazy
// construction after every restart — the operational complement to the
// paper's training optimization. The snapshot is tied to the exact workload
// and option set via a fingerprint; loading into a machine built from a
// different workload is rejected.

const snapshotMagic uint64 = 0x5850555348534e31 // "XPUSHSN1"

// Fingerprint identifies the (workload, options) pair a snapshot belongs
// to.
func (m *Machine) Fingerprint() uint64 {
	h := fnv.New64a()
	var opts uint64
	if m.opts.TopDown {
		opts |= 1
	}
	if m.opts.Order != nil {
		opts |= 2
	}
	if m.opts.Early {
		opts |= 4
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], opts)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(m.afa.NumStates()))
	h.Write(buf[:])
	for _, q := range m.afa.Queries {
		io.WriteString(h, q.Source)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (sw *snapWriter) u64(v uint64) {
	if sw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, sw.err = sw.w.Write(buf[:])
}

func (sw *snapWriter) i32(v int32) { sw.u64(uint64(uint32(v))) }

func (sw *snapWriter) ids(s []int32) {
	sw.u64(uint64(len(s)))
	for _, v := range s {
		sw.i32(v)
	}
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (sr *snapReader) u64() uint64 {
	if sr.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(sr.r, buf[:]); err != nil {
		sr.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (sr *snapReader) i32() int32 { return int32(uint32(sr.u64())) }

func (sr *snapReader) ids() []int32 {
	n := sr.u64()
	if sr.err != nil || n > 1<<28 {
		if sr.err == nil {
			sr.err = fmt.Errorf("xpush: corrupt snapshot (slice length %d)", n)
		}
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = sr.i32()
	}
	return out
}

// WriteSnapshot serialises the machine's interned states and transition
// tables.
func (m *Machine) WriteSnapshot(w io.Writer) error {
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.u64(snapshotMagic)
	sw.u64(m.Fingerprint())

	sw.u64(uint64(len(m.bsets)))
	for _, s := range m.bsets {
		sw.ids(s)
	}
	sw.u64(uint64(len(m.tsets)))
	for _, s := range m.tsets {
		sw.ids(s)
	}
	sw.u64(uint64(len(m.pushTab)))
	for k, v := range m.pushTab {
		sw.i32(k.qt)
		sw.i32(k.sym)
		sw.i32(v)
	}
	sw.u64(uint64(len(m.popTab)))
	for k, v := range m.popTab {
		sw.i32(k.qb)
		sw.i32(k.qt)
		sw.i32(k.sym)
		sw.i32(v.state)
		sw.ids(v.early)
	}
	sw.u64(uint64(len(m.addTab)))
	for k, v := range m.addTab {
		sw.i32(k.qbs)
		sw.i32(k.qaux)
		sw.i32(v)
	}
	sw.u64(uint64(len(m.valueTab)))
	for k, v := range m.valueTab {
		sw.i32(k.qt)
		sw.u64(uint64(k.interval))
		sw.i32(v.state)
		sw.ids(v.early)
	}
	sw.u64(uint64(len(m.sectTab)))
	for k, v := range m.sectTab {
		sw.i32(k.qbs)
		sw.i32(k.qaux)
		sw.i32(v)
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// ReadSnapshot restores a snapshot into a machine built from the same
// workload and options, replacing any lazily built state. The machine must
// not be mid-document.
func (m *Machine) ReadSnapshot(r io.Reader) error {
	if m.inDoc {
		return fmt.Errorf("xpush: cannot load a snapshot mid-document")
	}
	sr := &snapReader{r: bufio.NewReader(r)}
	if sr.u64() != snapshotMagic {
		return fmt.Errorf("xpush: not a machine snapshot")
	}
	if fp := sr.u64(); fp != m.Fingerprint() {
		return fmt.Errorf("xpush: snapshot fingerprint mismatch (different workload or options)")
	}

	nB := sr.u64()
	if sr.err != nil || nB == 0 || nB > 1<<28 {
		return fmt.Errorf("xpush: corrupt snapshot: %v", sr.err)
	}
	bsets := make([][]int32, nB)
	for i := range bsets {
		bsets[i] = sr.ids()
	}
	nT := sr.u64()
	if sr.err != nil || nT == 0 || nT > 1<<28 {
		return fmt.Errorf("xpush: corrupt snapshot: %v", sr.err)
	}
	tsets := make([][]int32, nT)
	for i := range tsets {
		tsets[i] = sr.ids()
	}
	pushTab := make(map[pushKey]int32)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		k := pushKey{qt: sr.i32(), sym: sr.i32()}
		pushTab[k] = sr.i32()
	}
	popTab := make(map[popKey]entry)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		k := popKey{qb: sr.i32(), qt: sr.i32(), sym: sr.i32()}
		e := entry{state: sr.i32()}
		e.early = sr.ids()
		if len(e.early) == 0 {
			e.early = nil
		}
		popTab[k] = e
	}
	addTab := make(map[addKey]int32)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		k := addKey{qbs: sr.i32(), qaux: sr.i32()}
		addTab[k] = sr.i32()
	}
	valueTab := make(map[valueKey]entry)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		k := valueKey{qt: sr.i32(), interval: int64(sr.u64())}
		e := entry{state: sr.i32()}
		e.early = sr.ids()
		if len(e.early) == 0 {
			e.early = nil
		}
		valueTab[k] = e
	}
	sectTab := make(map[addKey]int32)
	for i, n := uint64(0), sr.u64(); i < n && sr.err == nil; i++ {
		k := addKey{qbs: sr.i32(), qaux: sr.i32()}
		sectTab[k] = sr.i32()
	}
	if sr.err != nil {
		return fmt.Errorf("xpush: corrupt snapshot: %v", sr.err)
	}

	// Validate state references before installing.
	checkB := func(id int32) error {
		if id < 0 || int(id) >= len(bsets) {
			return fmt.Errorf("xpush: corrupt snapshot: bottom-up state %d out of range", id)
		}
		return nil
	}
	checkT := func(id int32) error {
		if id < 0 || int(id) >= len(tsets) {
			return fmt.Errorf("xpush: corrupt snapshot: top-down state %d out of range", id)
		}
		return nil
	}
	nStates := int32(m.afa.NumStates())
	for _, set := range bsets {
		for _, s := range set {
			if s < 0 || s >= nStates {
				return fmt.Errorf("xpush: corrupt snapshot: AFA state %d out of range", s)
			}
		}
	}
	for k, v := range pushTab {
		if err := checkT(k.qt); err != nil {
			return err
		}
		if err := checkT(v); err != nil {
			return err
		}
	}
	for k, v := range popTab {
		if err := checkB(k.qb); err != nil {
			return err
		}
		if err := checkT(k.qt); err != nil {
			return err
		}
		if err := checkB(v.state); err != nil {
			return err
		}
	}
	for k, v := range addTab {
		if err := checkB(k.qbs); err != nil {
			return err
		}
		if err := checkB(k.qaux); err != nil {
			return err
		}
		if err := checkB(v); err != nil {
			return err
		}
	}
	for k, v := range valueTab {
		if err := checkT(k.qt); err != nil {
			return err
		}
		if err := checkB(v.state); err != nil {
			return err
		}
	}
	for k, v := range sectTab {
		if err := checkB(k.qbs); err != nil {
			return err
		}
		if err := checkT(k.qaux); err != nil {
			return err
		}
		if err := checkB(v); err != nil {
			return err
		}
	}

	// Install: rebuild intern indexes and derived caches.
	m.bsets = bsets
	m.bintern = make(map[uint64][]int32, len(bsets))
	m.baccept = make([][]int32, len(bsets))
	m.ctr.bstates.Store(int64(len(bsets)))
	m.ctr.bstateAFASum.Store(0)
	for i, s := range bsets {
		h := hashIDs(s)
		m.bintern[h] = append(m.bintern[h], int32(i))
		m.ctr.bstateAFASum.Add(int64(len(s)))
	}
	m.tsets = tsets
	m.tintern = make(map[uint64][]int32, len(tsets))
	m.ttOf = make([][]int32, len(tsets))
	m.ctr.tstates.Store(int64(len(tsets)))
	for i, s := range tsets {
		if i > 0 {
			h := hashIDs(s)
			m.tintern[h] = append(m.tintern[h], int32(i))
		}
		m.ttOf[i] = intersectSorted(m.trueTermAll, s, nil)
	}
	if !m.opts.TopDown {
		// The basic machine's single top-down state enables every
		// TrueTerminal.
		m.ttOf[0] = m.trueTermAll
	}
	m.pushTab = pushTab
	m.popTab = popTab
	m.addTab = addTab
	m.valueTab = valueTab
	m.sectTab = sectTab
	m.qt, m.qb = 0, 0
	m.stack = m.stack[:0]
	return nil
}
