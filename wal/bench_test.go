package wal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWALAppend measures raw append throughput per fsync policy with a
// broker-representative ~1 KiB document.
func BenchmarkWALAppend(b *testing.B) {
	doc := make([]byte, 1024)
	for i := range doc {
		doc[i] = byte('a' + i%26)
	}
	copy(doc, "<doc>")
	copy(doc[len(doc)-6:], "</doc>")
	for _, pol := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(string(pol), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Fsync: pol, FsyncEvery: 100 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if lat := l.FsyncLatency(); lat.Count > 0 {
				b.ReportMetric(lat.Sum/float64(lat.Count)*1e6, "fsync-µs/op")
			}
		})
	}
}

// BenchmarkWALAppendBatched measures group-commit throughput: concurrent
// appenders coalesce into shared writes and fsyncs, so fsync=always should
// land within a small factor of interval instead of the ~16x gap a private
// fsync per append pays.
func BenchmarkWALAppendBatched(b *testing.B) {
	doc := make([]byte, 1024)
	for i := range doc {
		doc[i] = byte('a' + i%26)
	}
	copy(doc, "<doc>")
	copy(doc[len(doc)-6:], "</doc>")
	for _, pol := range []FsyncPolicy{FsyncInterval, FsyncAlways} {
		b.Run(string(pol), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Fsync: pol, FsyncEvery: 100 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(doc)))
			b.SetParallelism(16) // 16*GOMAXPROCS concurrent publishers
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(doc); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := l.Stats()
			if snap := l.BatchSizes(); snap.Count > 0 {
				b.ReportMetric(float64(st.Appends)/float64(snap.Count), "records/batch")
			}
		})
	}
}

// BenchmarkWALReplay measures sequential read throughput over a pre-built log.
func BenchmarkWALReplay(b *testing.B) {
	const n = 4096
	l, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncNever, SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var bytes int64
	for i := 0; i < n; i++ {
		doc := []byte(fmt.Sprintf("<doc n='%d'>%s</doc>", i, "payload-payload-payload"))
		bytes += int64(len(doc))
		if _, err := l.Append(doc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(bytes / n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := l.OpenReader(0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if _, _, err := r.Next(); err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
	}
	b.ReportMetric(float64(n), "records/replay")
}
