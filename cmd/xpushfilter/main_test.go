package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	queries := writeFile(t, "q.txt", `
# comment line
//order[total>100]
//order[@priority="high"]

/note
`)
	xml := writeFile(t, "s.xml",
		`<order priority="high"><total>250</total></order><note>n</note><order><total>5</total></order>`)
	var out strings.Builder
	if err := run([]string{"-queries", queries, "-xml", xml, "-stats", "-topdown"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"document 1: 2 match(es) [0 1]",
		"document 2: 1 match(es) [2]",
		"document 3: 0 match(es)",
		"documents=3",
		"hit-ratio=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTrace(t *testing.T) {
	queries := writeFile(t, "q.txt", "//order[total>100]\n")
	xml := writeFile(t, "s.xml", `<order><total>250</total></order><order><total>5</total></order>`)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-queries", queries, "-xml", xml, "-trace", tracePath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	// Matching output is unchanged under tracing.
	for _, want := range []string{"document 1: 1 match(es) [0]", "document 2: 0 match(es)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// The trace file is a Chrome trace_event array with one "document" root
	// per document and filter/layer child spans.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not a JSON array: %v\n%s", err, raw)
	}
	counts := map[string]int{}
	for _, ev := range events {
		if name, ok := ev["name"].(string); ok {
			counts[name]++
		}
	}
	if counts["document"] != 2 || counts["filter"] != 2 || counts["layer0"] == 0 {
		t.Errorf("span counts = %v, want 2 document, 2 filter, >0 layer0", counts)
	}
}

func TestRunStatsFormats(t *testing.T) {
	queries := writeFile(t, "q.txt", "//order[total>100]\n")
	xml := writeFile(t, "s.xml", `<order><total>250</total></order><order><total>5</total></order>`)

	var text strings.Builder
	if err := run([]string{"-queries", queries, "-xml", xml, "-stats"}, nil, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "doc latency p50=") {
		t.Errorf("text stats missing latency line:\n%s", text.String())
	}

	var jsonOut strings.Builder
	if err := run([]string{"-queries", queries, "-xml", xml, "-stats", "-stats-format", "json"}, nil, &jsonOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Documents": 2`, `"LatencySummary"`, `"P99"`, `"Bytes"`} {
		if !strings.Contains(jsonOut.String(), want) {
			t.Errorf("json stats missing %q:\n%s", want, jsonOut.String())
		}
	}

	var prom strings.Builder
	if err := run([]string{"-queries", queries, "-xml", xml, "-stats", "-stats-format", "prom"}, nil, &prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"xpush_documents_total 2", `xpush_filter_latency_seconds{quantile="0.99"}`} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom stats missing %q:\n%s", want, prom.String())
		}
	}

	if err := run([]string{"-queries", queries, "-xml", xml, "-stats", "-stats-format", "bogus"}, nil, &strings.Builder{}); err == nil {
		t.Error("bogus -stats-format must fail")
	}
}

func TestRunShowQueries(t *testing.T) {
	queries := writeFile(t, "q.txt", "/a[b=1]\n")
	var out strings.Builder
	err := run([]string{"-queries", queries, "-show-queries"},
		strings.NewReader("<a><b>1</b></a>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[0] /a[b=1]") {
		t.Errorf("show-queries output:\n%s", out.String())
	}
}

func TestRunWithDTDAndTraining(t *testing.T) {
	queries := writeFile(t, "q.txt", "/m[v=1]\n")
	dtd := writeFile(t, "s.dtd", "<!ELEMENT m (v)><!ELEMENT v (#PCDATA)>")
	var out strings.Builder
	err := run([]string{"-queries", queries, "-dtd", dtd, "-order", "-train", "-stats"},
		strings.NewReader("<m><v>1</v></m>"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "document 1: 1 match(es)") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, nil, &strings.Builder{}); err == nil {
		t.Error("missing -queries must fail")
	}
	empty := writeFile(t, "empty.txt", "# only comments\n")
	if err := run([]string{"-queries", empty}, nil, &strings.Builder{}); err == nil {
		t.Error("empty queries file must fail")
	}
	bad := writeFile(t, "bad.txt", "not an xpath\n")
	if err := run([]string{"-queries", bad}, nil, &strings.Builder{}); err == nil {
		t.Error("bad query must fail")
	}
	good := writeFile(t, "good.txt", "/a\n")
	if err := run([]string{"-queries", good, "-order"}, nil, &strings.Builder{}); err == nil {
		t.Error("-order without -dtd must fail")
	}
	if err := run([]string{"-queries", good, "-xml", "/nonexistent.xml"}, nil, &strings.Builder{}); err == nil {
		t.Error("missing xml file must fail")
	}
	if err := run([]string{"-queries", good, "-strict"},
		strings.NewReader("<a>x<b/>y</a>"), &strings.Builder{}); err == nil {
		t.Error("strict mixed content must fail")
	}
}

func TestRunMaxDocBytes(t *testing.T) {
	queries := writeFile(t, "q.txt", "//order\n")
	small := `<order><total>1</total></order>`
	big := `<order><pad>` + strings.Repeat("x", 512) + `</pad></order>`

	// Within the bound the streaming path behaves like the buffered one.
	var out strings.Builder
	if err := run([]string{"-queries", queries, "-max-doc-bytes", "256"},
		strings.NewReader(small+small), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "document 2: 1 match(es)") {
		t.Errorf("bounded run output:\n%s", out.String())
	}

	// An oversized document fails with a clean parse error, not an OOM.
	err := run([]string{"-queries", queries, "-max-doc-bytes", "256"},
		strings.NewReader(big), &strings.Builder{})
	if err == nil {
		t.Fatal("oversized document passed -max-doc-bytes")
	}
	if !strings.Contains(err.Error(), "size bound") {
		t.Errorf("error %q does not mention the size bound", err)
	}
}

func TestReadQueries(t *testing.T) {
	path := writeFile(t, "q.txt", "  /a \n\n#skip\n//b[c=1]\n")
	qs, err := readQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != "/a" || qs[1] != "//b[c=1]" {
		t.Errorf("queries = %v", qs)
	}
	if _, err := readQueries("/nonexistent"); err == nil {
		t.Error("missing file must fail")
	}
}
