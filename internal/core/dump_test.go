package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpTables(t *testing.T) {
	m := runningMachine(t, Options{})
	if _, err := m.PrecomputeEager(10000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.DumpTables(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"bottom-up states (22):",
		"q0    = []",
		"Tvalue (representative value -> state):",
		"Tpop[q",
		"Tbadd[q",
		"Taccept (non-empty):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// The accepting states report both filters somewhere.
	if !strings.Contains(out, "= [0 1]") {
		t.Errorf("no state accepts both filters:\n%s", out)
	}
}

func TestDumpTablesTopDown(t *testing.T) {
	m := runningMachine(t, Options{TopDown: true})
	if _, err := m.FilterDocument([]byte(`<a><b>1</b></a>`)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.DumpTables(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "top-down states") {
		t.Errorf("top-down dump missing:\n%s", buf.String())
	}
}
