package datagen

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/sax"
)

func TestGenerateParses(t *testing.T) {
	for _, name := range []string{"protein", "nasa"} {
		ds, ok := ByName(name)
		if !ok {
			t.Fatalf("dataset %s missing", name)
		}
		g := NewGenerator(ds, 1)
		data := g.GenerateBytes(200 << 10)
		if len(data) < 200<<10 {
			t.Fatalf("%s: generated only %d bytes", name, len(data))
		}
		var c sax.Collector
		if err := sax.Parse(data, &c); err != nil {
			t.Fatalf("%s: generated XML does not parse: %v", name, err)
		}
		docs := 0
		depth, maxDepth := 0, 0
		for _, e := range c.Events {
			switch e.Kind {
			case sax.StartDocument:
				docs++
			case sax.StartElement:
				depth++
				if depth > maxDepth {
					maxDepth = depth
				}
			case sax.EndElement:
				depth--
			}
		}
		if docs == 0 {
			t.Fatalf("%s: no documents", name)
		}
		// Attribute pseudo-elements add one level past the DTD cap.
		if maxDepth > ds.DepthCap+1 {
			t.Errorf("%s: depth %d exceeds cap %d", name, maxDepth, ds.DepthCap)
		}
		if name == "protein" && maxDepth < 6 {
			t.Errorf("protein: max depth %d, want near 7", maxDepth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds := ProteinLike()
	a := NewGenerator(ds, 42).GenerateBytes(50 << 10)
	b := NewGenerator(ds, 42).GenerateBytes(50 << 10)
	if !bytes.Equal(a, b) {
		t.Error("same seed must generate identical data")
	}
	c := NewGenerator(ds, 43).GenerateBytes(50 << 10)
	if bytes.Equal(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateAgainstStdParser(t *testing.T) {
	for _, name := range []string{"protein", "nasa"} {
		ds, _ := ByName(name)
		data := NewGenerator(ds, 7).GenerateBytes(100 << 10)
		var a, b sax.Collector
		if err := sax.Parse(data, &a); err != nil {
			t.Fatalf("%s scanner: %v", name, err)
		}
		if err := sax.StdParse(data, &b); err != nil {
			t.Fatalf("%s std: %v", name, err)
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("%s: event counts differ: %d vs %d", name, len(a.Events), len(b.Events))
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("%s: event %d differs: %v vs %v", name, i, a.Events[i], b.Events[i])
			}
		}
	}
}

func TestNASARecursion(t *testing.T) {
	ds := NASALike()
	if !ds.DTD.IsRecursive() {
		t.Error("NASA-like DTD must be recursive")
	}
	if ProteinLike().DTD.IsRecursive() {
		t.Error("Protein-like DTD must not be recursive")
	}
	if got := ProteinLike().DTD.MaxDepth(50); got != 7 {
		t.Errorf("protein depth = %d, want 7", got)
	}
}

func TestPoolSampling(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := &Pool{Kind: IntPool, Lo: 5, Hi: 9}
	for i := 0; i < 100; i++ {
		v := p.Sample(r)
		if v < "5" || v > "9" {
			t.Fatalf("out of range: %s", v)
		}
	}
	skewed := &Pool{Kind: StrPool, Words: []string{"a", "b", "c", "d", "e", "f", "g", "h"}, Skew: 1.0}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[skewed.Sample(r)]++
	}
	if counts["a"] <= counts["h"] {
		t.Errorf("skew should favour early values: a=%d h=%d", counts["a"], counts["h"])
	}
	single := &Pool{Kind: StrPool, Words: []string{"only"}}
	if single.Sample(r) != "only" {
		t.Error("singleton pool")
	}
}

func TestGenerateDocument(t *testing.T) {
	doc := NewGenerator(ProteinLike(), 3).GenerateDocument()
	var c sax.Collector
	if err := sax.Parse(doc, &c); err != nil {
		t.Fatal(err)
	}
	if c.Events[1].Name != "ProteinDatabase" {
		t.Errorf("root = %s", c.Events[1].Name)
	}
}
