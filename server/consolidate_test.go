package server_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/server"
)

// stormSnapshot is the slice of /debug/machine this test cares about.
type stormSnapshot struct {
	Layers         int   `json:"layers"`
	RemovedSlots   int   `json:"removed_slots"`
	Consolidations int64 `json:"consolidations"`
	MemoryBytes    int64 `json:"memory_bytes"`
}

// medianPublishLatency publishes the doc n times and returns the median
// round-trip — median rather than mean so one scheduler hiccup cannot skew
// the storm comparison.
func medianPublishLatency(t *testing.T, pub interface {
	Publish([]byte) (int, error)
}, doc []byte, n int) time.Duration {
	t.Helper()
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := pub.Publish(doc); err != nil {
			t.Fatalf("publish: %v", err)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2]
}

// TestConsolidationStormKeepsMachineFlat is the regression test for layer
// accumulation: a long subscribe/unsubscribe storm of unique filters would,
// without consolidation, pile up one COW layer per subscribe and one removed
// slot per unsubscribe, growing both memory and per-document latency without
// bound. With the consolidation thresholds wired into the swap path, the
// machine must stay flat: layers and removed slots bounded near the
// thresholds, memory flat, and median publish latency in the same regime at
// the end of the storm as at the start.
func TestConsolidationStormKeepsMachineFlat(t *testing.T) {
	srv := startServer(t, server.Config{
		DebugAddr:          "127.0.0.1:0",
		ConsolidateLayers:  8,
		ConsolidateRemoved: 8,
	})
	base := "http://" + srv.DebugAddr()
	cn := dialSub(t, srv.Addr(), newCollector())
	pub := dialSub(t, srv.Addr(), nil)
	doc := []byte("<storm><q>0</q></storm>")

	// Warm up past the first few subscribes so both latency samples see a
	// machine with some queries in it.
	const window = 4
	var active []uint64
	subscribe := func(i int) {
		id, err := cn.Subscribe(fmt.Sprintf("/storm[q=%d]", i))
		if err != nil {
			t.Fatalf("subscribe %d: %v", i, err)
		}
		active = append(active, id)
		if len(active) > window {
			if err := cn.Unsubscribe(active[0]); err != nil {
				t.Fatalf("unsubscribe: %v", err)
			}
			active = active[1:]
		}
	}
	for i := 0; i < 2*window; i++ {
		subscribe(i)
	}
	early := medianPublishLatency(t, pub, doc, 30)
	var earlySnap stormSnapshot
	getJSON(t, base+"/debug/machine", &earlySnap)

	// The storm: 300 unique-filter subscribe/unsubscribe cycles. Unshared
	// filters defeat dedup on purpose — every cycle costs a real COW layer
	// plus a removed slot, so only consolidation keeps the machine small.
	const storm = 300
	for i := 2 * window; i < 2*window+storm; i++ {
		subscribe(i)
	}
	late := medianPublishLatency(t, pub, doc, 30)
	var lateSnap stormSnapshot
	getJSON(t, base+"/debug/machine", &lateSnap)

	if lateSnap.Consolidations == 0 {
		t.Fatal("storm never triggered a consolidation")
	}
	// The thresholds bound the machine: one consolidation window of slack on
	// top of the configured limits.
	if lateSnap.Layers > 2*8 {
		t.Errorf("layers = %d after storm, want <= %d (threshold 8)", lateSnap.Layers, 2*8)
	}
	if lateSnap.RemovedSlots > 2*8 {
		t.Errorf("removed slots = %d after storm, want <= %d (threshold 8)", lateSnap.RemovedSlots, 2*8)
	}
	// Memory flat: the live working set is `window` queries throughout, so
	// post-storm memory must stay within a small factor of the early
	// snapshot instead of growing with the 300 retired layers. The factor
	// absorbs where each snapshot lands in the consolidation cycle (one cold
	// layer right after a rebuild vs several warm ones right before); an
	// unconsolidated 300-layer machine would sit ~40x above the early
	// snapshot and keep growing with the storm.
	if earlySnap.MemoryBytes > 0 && lateSnap.MemoryBytes > 12*earlySnap.MemoryBytes {
		t.Errorf("memory grew %d -> %d bytes across the storm; not flat",
			earlySnap.MemoryBytes, lateSnap.MemoryBytes)
	}
	// Latency flat: generous factor — loopback noise is real — but far below
	// the ~40x a 300-layer machine would cost.
	if late > 25*early {
		t.Errorf("median publish latency grew %v -> %v across the storm; not flat", early, late)
	}
}
