#!/usr/bin/env bash
# bench_gate.sh — performance gates for the broker's hot paths.
#
# Usage: scripts/bench_gate.sh [baseline.json] [budget-pct] [benchtime] [ratio-budget] [dedup-budget]
#
# Gate 1 (regression vs baseline): runs BenchmarkServeLoopback (tracing
# compiled in but disabled) and fails if docs/sec drops more than BUDGET_PCT
# versus the baseline file's BenchmarkServeLoopback entry. Benchmarks on
# shared CI runners are noisy, so the default budget is deliberately loose
# (25%); locally, 5% with -benchtime=3s is realistic.
#
# Gate 2 (durability-cost ratio): runs the pipelined durable loopback
# benchmark under fsync=always and fsync=interval and fails if always is
# more than RATIO_BUDGET times slower. Group commit is what holds this
# ratio down (it was ~16x with one fsync per publish); the gate is relative
# to the same machine and run, so it is robust to slow CI disks.
#
# Gate 3 (WAL append batching ratio): same ratio check one layer down, on
# BenchmarkWALAppendBatched's concurrent appenders, pinning the group-commit
# mechanism itself independent of the network stack.
#
# Gate 4 (workload deduplication ratio): runs BenchmarkZipfianSubscribers
# and fails if the deduplicated workload is not at least DEDUP_BUDGET (5th
# arg, default 5) times faster than the naive one-query-per-subscription
# path.
#
# Gate 5 (open-loop delivery latency): runs the xpushload smoke scenario
# against a real broker (or reuses a report at $XPUSHLOAD_SMOKE_JSON, e.g.
# the one scripts/load_smoke.sh just wrote in CI) and fails if the steady
# phase's coordinated-omission-safe delivery p99 exceeds
# $LOAD_P99_BUDGET_US microseconds (default 500000 — loose, because shared
# CI runners stall; locally ~10000 is realistic).
#
# Gate 6 (gated delivery latency): same check through a 2-node cluster
# behind xpushgate (or a report at $XPUSHGATE_SMOKE_JSON, e.g. the one
# scripts/cluster_smoke.sh just wrote in CI), against
# $GATE_P99_BUDGET_US microseconds (default 750000 — the ingress hop and
# fan-out merge cost something, but not an order of magnitude).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-BENCH_PR4.json}"
BUDGET_PCT="${2:-25}"
BENCHTIME="${3:-2s}"
RATIO_BUDGET="${4:-4}"

base=$(awk '
  /"name": "BenchmarkServeLoopback"/ { found = 1 }
  found && /"docs_per_sec"/ {
    gsub(/[^0-9.]/, "", $2); print $2; exit
  }' "$BASELINE")
if [ -z "$base" ]; then
  echo "bench_gate: no BenchmarkServeLoopback docs_per_sec in $BASELINE" >&2
  exit 2
fi

out=$(go test -run=NONE -bench='BenchmarkServeLoopback$' -benchtime="$BENCHTIME" -count=3 ./server/)
echo "$out"
best=$(echo "$out" | awk '/docs\/sec/ { for (i = 1; i < NF; i++) if ($(i+1) == "docs/sec" && $i > m) m = $i } END { print m }')
if [ -z "$best" ] || [ "$best" = "0" ]; then
  echo "bench_gate: benchmark produced no docs/sec metric" >&2
  exit 2
fi

awk -v base="$base" -v best="$best" -v budget="$BUDGET_PCT" 'BEGIN {
  floor = base * (1 - budget / 100)
  printf "bench_gate: baseline %.0f docs/sec, best of 3 runs %.0f, floor %.0f (-%s%%)\n",
    base, best, floor, budget
  if (best < floor) {
    print "bench_gate: FAIL — tracing-disabled loopback throughput regressed past the budget" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'

# Gate 2: pipelined durable loopback, fsync=always within RATIO_BUDGET of
# fsync=interval.
dur=$(go test -run=NONE -bench='BenchmarkServeDurableLoopbackPipelined/fsync=(always|interval)$' \
  -benchtime="$BENCHTIME" ./server/)
echo "$dur"
always=$(echo "$dur" | awk '/fsync=always/ { for (i = 1; i < NF; i++) if ($(i+1) == "docs/sec") print $i }' | tail -1)
interval=$(echo "$dur" | awk '/fsync=interval/ { for (i = 1; i < NF; i++) if ($(i+1) == "docs/sec") print $i }' | tail -1)
if [ -z "$always" ] || [ -z "$interval" ]; then
  echo "bench_gate: durable pipelined benchmark produced no docs/sec metric" >&2
  exit 2
fi
awk -v a="$always" -v i="$interval" -v budget="$RATIO_BUDGET" 'BEGIN {
  ratio = i / a
  printf "bench_gate: durable pipelined fsync=interval %.0f docs/sec, fsync=always %.0f (%.2fx slower, budget %sx)\n",
    i, a, ratio, budget
  if (ratio > budget) {
    print "bench_gate: FAIL — fsync=always durable throughput fell out of budget vs interval (group commit regressed?)" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'

# Gate 3: concurrent WAL appends, fsync=always within RATIO_BUDGET of
# fsync=interval (MB/s; same doc size, so ratio is ratio).
walout=$(go test -run=NONE -bench='BenchmarkWALAppendBatched' -benchtime="$BENCHTIME" ./wal/)
echo "$walout"
walways=$(echo "$walout" | awk '/WALAppendBatched\/always/ { for (i = 1; i < NF; i++) if ($(i+1) == "MB/s") print $i }' | tail -1)
winterval=$(echo "$walout" | awk '/WALAppendBatched\/interval/ { for (i = 1; i < NF; i++) if ($(i+1) == "MB/s") print $i }' | tail -1)
if [ -z "$walways" ] || [ -z "$winterval" ]; then
  echo "bench_gate: WAL batched benchmark produced no MB/s metric" >&2
  exit 2
fi
awk -v a="$walways" -v i="$winterval" -v budget="$RATIO_BUDGET" 'BEGIN {
  ratio = i / a
  printf "bench_gate: wal batched append fsync=interval %.1f MB/s, fsync=always %.1f (%.2fx slower, budget %sx)\n",
    i, a, ratio, budget
  if (ratio > budget) {
    print "bench_gate: FAIL — group-committed fsync=always append fell out of budget vs interval" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'

# Gate 4 (workload deduplication ratio): 50k zipfian subscriptions over 1k
# distinct filters, deduped vs naive (one machine query per subscription,
# the pre-dedup broker's subscribe path). Sharing must buy at least
# DEDUP_BUDGET x docs/sec; in practice the ratio tracks the ~50x sharing
# factor, so 5x leaves ample noise headroom while still catching a dedup
# layer that silently stops coalescing.
DEDUP_BUDGET="${5:-5}"
zipf=$(go test -run=NONE -bench='BenchmarkZipfianSubscribers/(naive|dedup)$' -benchtime=1s .)
echo "$zipf"
zn=$(echo "$zipf" | awk '/ZipfianSubscribers\/naive/ { for (i = 1; i < NF; i++) if ($(i+1) == "docs/sec") print $i }' | tail -1)
zd=$(echo "$zipf" | awk '/ZipfianSubscribers\/dedup/ { for (i = 1; i < NF; i++) if ($(i+1) == "docs/sec") print $i }' | tail -1)
if [ -z "$zn" ] || [ -z "$zd" ]; then
  echo "bench_gate: zipfian subscriber benchmark produced no docs/sec metric" >&2
  exit 2
fi
awk -v n="$zn" -v d="$zd" -v budget="$DEDUP_BUDGET" 'BEGIN {
  ratio = d / n
  printf "bench_gate: zipfian 50k-subscriber workload naive %.0f docs/sec, deduped %.0f (%.1fx faster, budget %sx)\n",
    n, d, ratio, budget
  if (ratio < budget) {
    print "bench_gate: FAIL — workload deduplication no longer pays for itself on the zipfian workload" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'

# Gate 5 (open-loop delivery latency): steady-phase delivery p99 from the
# xpushload smoke scenario, measured from intended starts (coordinated-
# omission safe), against an absolute budget.
LOAD_P99_BUDGET_US="${LOAD_P99_BUDGET_US:-500000}"
SMOKE_JSON="${XPUSHLOAD_SMOKE_JSON:-}"
if [ -z "$SMOKE_JSON" ] || [ ! -f "$SMOKE_JSON" ]; then
  SMOKE_JSON=$(mktemp /tmp/xpushload_smoke.XXXXXX.json)
  scripts/load_smoke.sh "$SMOKE_JSON"
fi
p99=$(awk '
  /"name": "xpushload\/smoke\/steady"/ { found = 1 }
  found && /"delivery_p99_us"/ { gsub(/[^0-9.]/, "", $2); print $2; exit }
' "$SMOKE_JSON")
if [ -z "$p99" ]; then
  echo "bench_gate: no steady-phase delivery_p99_us in $SMOKE_JSON" >&2
  exit 2
fi
awk -v p="$p99" -v budget="$LOAD_P99_BUDGET_US" 'BEGIN {
  printf "bench_gate: open-loop steady delivery p99 %.0fus, budget %sus\n", p, budget
  if (p > budget + 0) {
    print "bench_gate: FAIL — open-loop delivery p99 blew the latency budget" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'

# Gate 6 (gated delivery latency): steady-phase delivery p99 of the same
# smoke scenario run through xpushgate in front of a 2-node cluster.
GATE_P99_BUDGET_US="${GATE_P99_BUDGET_US:-750000}"
GATE_JSON="${XPUSHGATE_SMOKE_JSON:-}"
if [ -z "$GATE_JSON" ] || [ ! -f "$GATE_JSON" ]; then
  GATE_JSON=$(mktemp /tmp/xpushgate_smoke.XXXXXX.json)
  scripts/cluster_smoke.sh "$GATE_JSON"
fi
gp99=$(awk '
  /"name": "xpushload\/smoke\/steady"/ { found = 1 }
  found && /"delivery_p99_us"/ { gsub(/[^0-9.]/, "", $2); print $2; exit }
' "$GATE_JSON")
if [ -z "$gp99" ]; then
  echo "bench_gate: no steady-phase delivery_p99_us in $GATE_JSON" >&2
  exit 2
fi
awk -v p="$gp99" -v budget="$GATE_P99_BUDGET_US" 'BEGIN {
  printf "bench_gate: gated 2-node steady delivery p99 %.0fus, budget %sus\n", p, budget
  if (p > budget + 0) {
    print "bench_gate: FAIL — delivery p99 through xpushgate blew the latency budget" > "/dev/stderr"
    exit 1
  }
  print "bench_gate: OK"
}'
