// Package trace is a low-overhead per-document span recorder for the
// filtering pipeline: each traced document carries a fixed-size array of
// named spans (PUBLISH receive, WAL append, fsync wait, filter, queue wait,
// DELIVER write, ...) with integer attributes, completed traces land in a
// lock-free ring buffer, and exporters render them as JSON
// (/debug/traces) or in the Chrome trace_event format for
// chrome://tracing / Perfetto.
//
// Two capture modes compose:
//
//   - head sampling: one of every N documents gets a trace (sampleEvery);
//   - tail capture: when a slow threshold is set, every document is
//     recorded and any whose end-to-end latency exceeds the threshold is
//     kept unconditionally in a separate slow ring.
//
// The cardinal constraint is that tracing must cost nothing when it is
// off: a nil *Recorder returns a nil *Ctx from Begin, and every *Ctx
// method is a nil-receiver no-op, so the hot path stays zero-allocation
// with tracing compiled in but disabled.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID indexes a span inside its trace. The root span is always Root;
// NoSpan is returned for dropped spans (nil context or a full span table)
// and is safe to pass back into every method.
type SpanID int32

const (
	// NoSpan is the nil span id; every method accepts it and does nothing.
	NoSpan SpanID = -1
	// Root is the id of the trace's root span, created by Begin.
	Root SpanID = 0
)

const (
	// MaxSpans bounds the per-trace span array. A publish that fans out to
	// many subscribers records two spans per subscriber; past the cap
	// further spans are counted in Truncated instead of recorded, so a
	// hot document cannot make its own trace allocate.
	MaxSpans = 48
	// maxAttrs bounds the per-span attribute array.
	maxAttrs = 6

	// ringSize is the completed-trace ring capacity (head-sampled traces).
	ringSize = 256
	// slowRingSize is the slow-trace ring capacity (tail-captured traces).
	slowRingSize = 64
)

// Attr is one integer span attribute (states created, queue depth, ...).
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span is one named stage of a traced document's lifecycle. Start and End
// are nanosecond offsets from the trace start; End < 0 marks a span still
// open (it is closed at trace completion). Track separates concurrently
// running spans (per-subscriber delivery, per-shard filtering) into
// parallel rows for the Chrome exporter.
type Span struct {
	Name   string
	Parent SpanID
	Track  int32
	Start  int64
	End    int64
	attrs  [maxAttrs]Attr
	nattrs int32
}

// Dur returns the span duration (0 while the span is open).
func (s *Span) Dur() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// Attrs returns the span's recorded attributes.
func (s *Span) Attrs() []Attr { return s.attrs[:s.nattrs] }

// Ctx is one in-flight (or completed) document trace. A nil *Ctx is the
// "not traced" state: every method is a nil-safe no-op, so call sites
// thread the pointer unconditionally. Span mutation is mutex-guarded —
// delivery spans arrive from per-subscriber goroutines — but only for
// traced documents; untraced documents never touch the lock.
//
// After the last reference calls Finish the trace is immutable: readers
// (the /debug/traces handler, the Chrome exporter) access ring entries
// without synchronization.
type Ctx struct {
	ID      uint64
	Kind    string // root span name: "publish", "replay", "document"
	Wall    time.Time
	Total   time.Duration
	Slow    bool // kept by tail capture (total latency over the threshold)
	Sampled bool // kept by head sampling
	Remote  bool // begun by BeginRemote: ID was assigned by an upstream hop

	mu        sync.Mutex
	spans     [MaxSpans]Span
	n         int32
	truncated int32

	start  time.Time // monotonic base for span offsets
	rec    *Recorder
	refs   atomic.Int32
	tracks atomic.Int32
}

// StartSpan opens a child span of parent and returns its id.
func (c *Ctx) StartSpan(name string, parent SpanID) SpanID {
	if c == nil {
		return NoSpan
	}
	return c.addSpan(name, parent, time.Since(c.start).Nanoseconds(), -1)
}

// StartSpanAt is StartSpan with an explicit start time (e.g. a queue-wait
// span whose wait began when the delivery was enqueued).
func (c *Ctx) StartSpanAt(name string, parent SpanID, at time.Time) SpanID {
	if c == nil {
		return NoSpan
	}
	off := at.Sub(c.start).Nanoseconds()
	if off < 0 {
		off = 0
	}
	return c.addSpan(name, parent, off, -1)
}

// AddSpan records a complete span from explicit nanosecond offsets
// (relative to the trace start), for stages timed outside the context.
func (c *Ctx) AddSpan(name string, parent SpanID, startNS, endNS int64) SpanID {
	if c == nil {
		return NoSpan
	}
	if startNS < 0 {
		startNS = 0
	}
	if endNS < startNS {
		endNS = startNS
	}
	return c.addSpan(name, parent, startNS, endNS)
}

func (c *Ctx) addSpan(name string, parent SpanID, start, end int64) SpanID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(c.n) >= MaxSpans {
		c.truncated++
		return NoSpan
	}
	id := SpanID(c.n)
	c.spans[id] = Span{Name: name, Parent: parent, Start: start, End: end}
	c.n++
	return id
}

// EndSpan closes an open span.
func (c *Ctx) EndSpan(id SpanID) {
	if c == nil || id < 0 {
		return
	}
	now := time.Since(c.start).Nanoseconds()
	c.mu.Lock()
	if id < SpanID(c.n) && c.spans[id].End < 0 {
		c.spans[id].End = now
	}
	c.mu.Unlock()
}

// SetAttr records an integer attribute on a span, overwriting an existing
// value for the same key. Attributes past the per-span cap are dropped.
func (c *Ctx) SetAttr(id SpanID, key string, val int64) {
	if c == nil || id < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= SpanID(c.n) {
		return
	}
	s := &c.spans[id]
	for i := int32(0); i < s.nattrs; i++ {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	if s.nattrs < maxAttrs {
		s.attrs[s.nattrs] = Attr{Key: key, Val: val}
		s.nattrs++
	}
}

// SetTrack assigns a span to a render track (Chrome tid). Concurrent spans
// (per-subscriber delivery, per-shard filtering) on distinct tracks render
// as parallel rows instead of malformed nesting.
func (c *Ctx) SetTrack(id SpanID, track int32) {
	if c == nil || id < 0 {
		return
	}
	c.mu.Lock()
	if id < SpanID(c.n) {
		c.spans[id].Track = track
	}
	c.mu.Unlock()
}

// NextTrack allocates a fresh render track (track 0 is the main pipeline).
func (c *Ctx) NextTrack() int32 {
	if c == nil {
		return 0
	}
	return c.tracks.Add(1)
}

// Offset converts a time.Time into this trace's nanosecond offset
// (clamped at 0 for times before the trace started).
func (c *Ctx) Offset(t time.Time) int64 {
	if c == nil {
		return 0
	}
	off := t.Sub(c.start).Nanoseconds()
	if off < 0 {
		off = 0
	}
	return off
}

// TraceID returns the trace's id, or 0 for a nil Ctx. Zero is what the wire
// protocol treats as "untraced", so callers can tag frames unconditionally.
func (c *Ctx) TraceID() uint64 {
	if c == nil {
		return 0
	}
	return c.ID
}

// Ref adds a reference: the trace completes when every holder has called
// Finish. The publish path takes one reference per fanned-out delivery so
// the trace's total latency covers the last DELIVER write.
func (c *Ctx) Ref() {
	if c == nil {
		return
	}
	c.refs.Add(1)
}

// Finish releases one reference. The last release completes the trace:
// open spans are closed, the total latency is computed, and the trace is
// published to the recorder's rings (head-sampled, tail-captured slow, or
// recycled when neither applies).
func (c *Ctx) Finish() {
	if c == nil {
		return
	}
	if c.refs.Add(-1) != 0 {
		return
	}
	c.Total = time.Since(c.start)
	end := c.Total.Nanoseconds()
	c.mu.Lock()
	for i := int32(0); i < c.n; i++ {
		if c.spans[i].End < 0 {
			c.spans[i].End = end
		}
	}
	c.mu.Unlock()
	c.rec.complete(c)
}

// Spans returns a copy of the recorded spans. On a completed trace this is
// race-free; on an in-flight trace it is a consistent snapshot.
func (c *Ctx) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]Span, c.n)
	copy(out, c.spans[:c.n])
	c.mu.Unlock()
	return out
}

// Truncated reports how many spans were dropped by the MaxSpans cap.
func (c *Ctx) Truncated() int32 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.truncated
}

// Recorder samples, records, and retains document traces. A nil *Recorder
// is the disabled state: Begin returns nil and costs one branch.
type Recorder struct {
	sampleEvery uint64
	slow        time.Duration

	seq  atomic.Uint64
	pool sync.Pool

	ring    [ringSize]atomic.Pointer[Ctx]
	pos     atomic.Uint64
	slowST  [slowRingSize]atomic.Pointer[Ctx]
	slowPos atomic.Uint64

	started atomic.Int64
	kept    atomic.Int64
	slowHit atomic.Int64
}

// New builds a recorder. sampleEvery selects head sampling (trace 1 of
// every N documents; <= 0 disables), slow selects tail capture (keep any
// document slower than the threshold; 0 disables). When both are off New
// returns nil — the fully disabled recorder.
func New(sampleEvery int, slow time.Duration) *Recorder {
	if sampleEvery <= 0 && slow <= 0 {
		return nil
	}
	r := &Recorder{slow: slow}
	if sampleEvery > 0 {
		r.sampleEvery = uint64(sampleEvery)
	}
	r.pool.New = func() any { return new(Ctx) }
	return r
}

// Enabled reports whether any capture mode is active.
func (r *Recorder) Enabled() bool { return r != nil }

// SampleEvery returns the head-sampling period (0 = off).
func (r *Recorder) SampleEvery() int {
	if r == nil {
		return 0
	}
	return int(r.sampleEvery)
}

// SlowThreshold returns the tail-capture latency threshold (0 = off).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slow
}

// Begin starts a trace for the next document, or returns nil when this
// document is not recorded (recorder disabled, or not head-sampled with
// tail capture off). kind names the root span.
func (r *Recorder) Begin(kind string) *Ctx {
	return r.BeginAt(kind, time.Now())
}

// BeginAt is Begin with an explicit start time, for pipelines that know
// the document's arrival time before deciding to trace it (the durable
// replay pump times the log read that precedes the trace decision).
func (r *Recorder) BeginAt(kind string, at time.Time) *Ctx {
	if r == nil {
		return nil
	}
	seq := r.seq.Add(1)
	sampled := r.sampleEvery > 0 && seq%r.sampleEvery == 0
	if !sampled && r.slow <= 0 {
		return nil
	}
	r.started.Add(1)
	c := r.pool.Get().(*Ctx)
	*c = Ctx{ID: seq, Kind: kind, Wall: at, Sampled: sampled, start: at, rec: r}
	c.refs.Store(1)
	c.addSpan(kind, NoSpan, 0, -1)
	return c
}

// BeginRemote starts a trace for a document whose trace id was assigned by
// an upstream hop (an xpushgate that sampled it at ingress). Propagated
// traces bypass local head sampling — the upstream recorder already made
// the keep decision — so the document is always captured (when the local
// recorder is enabled at all) and retained in the sampled ring under the
// carried id, letting the cluster merge exporter stitch both hops by id.
func (r *Recorder) BeginRemote(kind string, id uint64, at time.Time) *Ctx {
	if r == nil {
		return nil
	}
	r.started.Add(1)
	c := r.pool.Get().(*Ctx)
	*c = Ctx{ID: id, Kind: kind, Wall: at, Sampled: true, Remote: true, start: at, rec: r}
	c.refs.Store(1)
	c.addSpan(kind, NoSpan, 0, -1)
	return c
}

// SpanCost returns the duration and one integer attribute of the most
// recently recorded span with the given name — the per-query profiler's
// window into the filter span's machine telemetry (states_created, ...)
// without copying the span table. attrVal is 0 when the span lacks the
// attribute; ok is false when no such span exists (or c is nil).
func (c *Ctx) SpanCost(name, attrKey string) (durNS, attrVal int64, ok bool) {
	if c == nil {
		return 0, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := c.n - 1; i >= 0; i-- {
		s := &c.spans[i]
		if s.Name != name {
			continue
		}
		durNS = s.End - s.Start
		if durNS < 0 {
			durNS = 0
		}
		for j := int32(0); j < s.nattrs; j++ {
			if s.attrs[j].Key == attrKey {
				attrVal = s.attrs[j].Val
				break
			}
		}
		return durNS, attrVal, true
	}
	return 0, 0, false
}

// complete publishes a finished trace. Kept traces are inserted into the
// rings and never recycled (ring readers access them lock-free); traces
// kept by neither mode return to the pool.
func (r *Recorder) complete(c *Ctx) {
	c.Slow = r.slow > 0 && c.Total >= r.slow
	kept := false
	if c.Slow {
		r.slowHit.Add(1)
		slot := (r.slowPos.Add(1) - 1) % slowRingSize
		r.slowST[slot].Store(c)
		kept = true
	}
	if c.Sampled {
		slot := (r.pos.Add(1) - 1) % ringSize
		r.ring[slot].Store(c)
		kept = true
	}
	if kept {
		r.kept.Add(1)
	} else {
		c.rec = nil
		r.pool.Put(c)
	}
}

// collectRing reads a ring oldest-first.
func collectRing(ring []atomic.Pointer[Ctx], pos uint64) []*Ctx {
	n := uint64(len(ring))
	out := make([]*Ctx, 0, n)
	for i := uint64(0); i < n; i++ {
		if c := ring[(pos+i)%n].Load(); c != nil {
			out = append(out, c)
		}
	}
	return out
}

// Traces returns the retained head-sampled traces, oldest first.
func (r *Recorder) Traces() []*Ctx {
	if r == nil {
		return nil
	}
	return collectRing(r.ring[:], r.pos.Load())
}

// SlowTraces returns the retained tail-captured traces, oldest first.
func (r *Recorder) SlowTraces() []*Ctx {
	if r == nil {
		return nil
	}
	return collectRing(r.slowST[:], r.slowPos.Load())
}

// Collect returns every retained trace exactly once (traces can sit in
// both rings), ordered oldest first — the Chrome exporter's input.
func (r *Recorder) Collect() []*Ctx {
	if r == nil {
		return nil
	}
	seen := map[*Ctx]bool{}
	var out []*Ctx
	for _, c := range append(r.Traces(), r.SlowTraces()...) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Wall.Before(out[j-1].Wall); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RecorderStats summarises the recorder's activity.
type RecorderStats struct {
	Started int64 `json:"started"` // traces begun (sampled or slow-candidate)
	Kept    int64 `json:"kept"`    // traces retained in a ring
	Slow    int64 `json:"slow"`    // traces kept by tail capture
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Started: r.started.Load(),
		Kept:    r.kept.Load(),
		Slow:    r.slowHit.Load(),
	}
}
