package bench

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
)

// Scale selects experiment sizes. The paper's hardware (700 MHz Pentium
// III) and full scale (200 000 queries over 9.12 MB) are reproducible with
// Scale "paper" but take a while; "default" keeps every figure's shape at a
// fraction of the cost.
type Scale struct {
	Name string
	// QueryCounts is the Fig. 5(a)/6(a)/7(a) x-axis (paper: 50k..200k at
	// 1.15 predicates per query).
	QueryCounts []int
	// HighPredQueryCounts is the Fig. 5(b)/6(b)/7(b) x-axis (paper:
	// 5k..20k at 10.45 predicates per query).
	HighPredQueryCounts []int
	// DataBytes is the stream size for the query/predicate sweeps
	// (paper: 9.12 MB).
	DataBytes int
	// PredCounts is the Fig. 9(a)/10(a)/11(a) x-axis (paper: 1..20
	// predicates per query with 200k total atomic predicates).
	PredCounts []int
	// TotalPreds is the fixed total for the predicate sweep.
	TotalPreds int
	// DataWorkloads are the series of Figs. 8/9(b)/10(b)/11(b) (paper:
	// 50k..200k queries at 5 predicates each).
	DataWorkloads []int
	// ChunkBytes × Chunks is the Fig. 8/9(b) stream (paper: 100 MB).
	ChunkBytes int
	Chunks     int
	// AbstractQueries sizes the abstract-claim run.
	AbstractQueries int
}

// Scales are the built-in experiment sizes.
var Scales = map[string]Scale{
	"smoke": {
		Name:                "smoke",
		QueryCounts:         []int{200, 400},
		HighPredQueryCounts: []int{50, 100},
		DataBytes:           128 << 10,
		PredCounts:          []int{1, 2, 5},
		TotalPreds:          1000,
		DataWorkloads:       []int{200},
		ChunkBytes:          128 << 10,
		Chunks:              4,
		AbstractQueries:     500,
	},
	"default": {
		Name:                "default",
		QueryCounts:         []int{2500, 5000, 7500, 10000},
		HighPredQueryCounts: []int{250, 500, 750, 1000},
		DataBytes:           2 << 20,
		PredCounts:          []int{1, 2, 5, 10, 15, 20},
		TotalPreds:          10000,
		DataWorkloads:       []int{2500, 5000, 7500, 10000},
		ChunkBytes:          1 << 20,
		Chunks:              10,
		AbstractQueries:     10000,
	},
	"paper": {
		Name:                "paper",
		QueryCounts:         []int{50000, 100000, 150000, 200000},
		HighPredQueryCounts: []int{5000, 10000, 15000, 20000},
		DataBytes:           9561088, // 9.12 MB
		PredCounts:          []int{1, 2, 5, 10, 15, 20},
		TotalPreds:          200000,
		DataWorkloads:       []int{50000, 100000, 150000, 200000},
		ChunkBytes:          5 << 20,
		Chunks:              20,
		AbstractQueries:     175000, // ≈200k atomic predicates at 1.15/query
	},
}

// FigureIDs lists the reproducible figures in paper order.
var FigureIDs = []string{
	"5a", "5b", "6a", "6b", "7a", "7b", "8",
	"9a", "9b", "10a", "10b", "11a", "11b", "abstract",
}

// figureInfo describes one figure: which sweep it views and which metric it
// plots.
type figureInfo struct {
	Title  string
	Sweep  string // "q115", "q1045", "preds", "data"
	Metric string // "time", "states", "avgsize", "hit"
	XLabel string
}

var figures = map[string]figureInfo{
	"5a":  {"Fig 5(a): Filtering time, 1.15 predicates/query", "q115", "time", "queries"},
	"5b":  {"Fig 5(b): Filtering time, 10.45 predicates/query", "q1045", "time", "queries"},
	"6a":  {"Fig 6(a): Number of XPush states, 1.15 predicates/query", "q115", "states", "queries"},
	"6b":  {"Fig 6(b): Number of XPush states, 10.45 predicates/query", "q1045", "states", "queries"},
	"7a":  {"Fig 7(a): Average XPush state size, 1.15 predicates/query", "q115", "avgsize", "queries"},
	"7b":  {"Fig 7(b): Average XPush state size, 10.45 predicates/query", "q1045", "avgsize", "queries"},
	"8":   {"Fig 8: Hit ratio vs data processed", "data", "hit", "MB"},
	"9a":  {"Fig 9(a): Filtering time vs predicates/query (total atomic predicates fixed)", "preds", "time", "preds/query"},
	"9b":  {"Fig 9(b): Filtering time vs data size", "data", "time", "MB"},
	"10a": {"Fig 10(a): Number of states vs predicates/query", "preds", "states", "preds/query"},
	"10b": {"Fig 10(b): Number of states vs data size", "data", "states", "MB"},
	"11a": {"Fig 11(a): Average state size vs predicates/query", "preds", "avgsize", "preds/query"},
	"11b": {"Fig 11(b): Average state size vs data size", "data", "avgsize", "MB"},
}

// Runner executes figures against one dataset at one scale, caching the
// underlying sweeps so that e.g. Figs. 5(a), 6(a) and 7(a) share a run.
type Runner struct {
	DS      *datagen.Dataset
	Scale   Scale
	Out     io.Writer
	Verbose bool
	cache   map[string][]Row
	// abstracts stashes abstract-claim results for WriteJSON.
	abstracts []namedAbstract
}

type namedAbstract struct {
	name string
	res  AbstractResult
}

// NewRunner builds a Runner.
func NewRunner(ds *datagen.Dataset, scale Scale, out io.Writer) *Runner {
	return &Runner{DS: ds, Scale: scale, Out: out, cache: map[string][]Row{}}
}

func (r *Runner) log() io.Writer {
	if r.Verbose {
		return r.Out
	}
	return nil
}

func (r *Runner) sweep(name string) ([]Row, error) {
	if rows, ok := r.cache[name]; ok {
		return rows, nil
	}
	var rows []Row
	var err error
	switch name {
	case "q115":
		rows, err = SweepQueries(r.DS, r.Scale.QueryCounts, 1.15, r.Scale.DataBytes, r.log())
	case "q1045":
		rows, err = SweepQueries(r.DS, r.Scale.HighPredQueryCounts, 10.45, r.Scale.DataBytes, r.log())
	case "preds":
		rows, err = SweepPreds(r.DS, r.Scale.PredCounts, r.Scale.TotalPreds, r.Scale.DataBytes, r.log())
	case "data":
		rows, err = SweepData(r.DS, r.Scale.DataWorkloads, r.Scale.ChunkBytes, r.Scale.Chunks, r.log())
	default:
		err = fmt.Errorf("unknown sweep %q", name)
	}
	if err != nil {
		return nil, err
	}
	r.cache[name] = rows
	return rows, nil
}

// Figure runs (or reuses) the sweep behind a figure and renders its table.
func (r *Runner) Figure(id string) error {
	if id == "abstract" {
		return r.abstract()
	}
	info, ok := figures[id]
	if !ok {
		return fmt.Errorf("unknown figure %q (have %v)", id, FigureIDs)
	}
	rows, err := r.sweep(info.Sweep)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.Out, "\n%s  [dataset=%s scale=%s]\n", info.Title, r.DS.Name, r.Scale.Name)
	renderPivot(r.Out, rows, info, id)
	return nil
}

// All runs every figure.
func (r *Runner) All() error {
	for _, id := range FigureIDs {
		if err := r.Figure(id); err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
	}
	return nil
}

func (r *Runner) abstract() error {
	fmt.Fprintf(r.Out, "\nAbstract throughput claims  [dataset=%s scale=%s]\n", r.DS.Name, r.Scale.Name)
	// Single-predicate workload (the "4.5 MB/s" end of the claim).
	one, err := Abstract(r.DS, r.Scale.AbstractQueries, 1, r.Scale.DataBytes)
	if err != nil {
		return err
	}
	// Predicate-heavy workload at the same total atomic predicates.
	heavy, err := Abstract(r.DS, r.Scale.AbstractQueries/10, 10.45, r.Scale.DataBytes)
	if err != nil {
		return err
	}
	r.abstracts = append(r.abstracts,
		namedAbstract{"1 predicate/filter", one},
		namedAbstract{"10.45 predicates/filter", heavy})
	fmt.Fprintf(r.Out, "  %-34s %12s %12s %12s\n", "workload", "cold MB/s", "warm MB/s", "preds")
	fmt.Fprintf(r.Out, "  %-34s %12.2f %12.2f %12d\n",
		"1 predicate/filter", one.ColdMBPerSec, one.WarmMBPerSec, one.TotalPreds)
	fmt.Fprintf(r.Out, "  %-34s %12.2f %12.2f %12d\n",
		"10.45 predicates/filter", heavy.ColdMBPerSec, heavy.WarmMBPerSec, heavy.TotalPreds)
	fmt.Fprintf(r.Out, "  %-34s %12.2f\n", "hand-written parser alone", one.ScannerMBPerSec)
	fmt.Fprintf(r.Out, "  %-34s %12.2f\n", "encoding/xml parser alone", one.StdParserMBPerSec)
	fmt.Fprintf(r.Out, "\n  warm per-document filter latency (n=%d docs per workload):\n", one.WarmLatency.Count)
	fmt.Fprintf(r.Out, "  %-34s %10s %10s %10s %10s\n", "workload", "p50", "p90", "p99", "max")
	for _, row := range []struct {
		name string
		lat  obs.Summary
	}{
		{"1 predicate/filter", one.WarmLatency},
		{"10.45 predicates/filter", heavy.WarmLatency},
	} {
		fmt.Fprintf(r.Out, "  %-34s %10s %10s %10s %10s\n", row.name,
			fmtLatency(row.lat.P50), fmtLatency(row.lat.P90), fmtLatency(row.lat.P99), fmtLatency(row.lat.Max))
	}
	return nil
}

// fmtLatency renders a latency in seconds as a rounded duration.
func fmtLatency(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// WriteCSV dumps every cached sweep's raw rows as CSV (one line per
// measured point, all metrics), for plotting the figures externally.
func (r *Runner) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "sweep,series,x,seconds,mb_per_sec,states,avg_state_size,hit_ratio,total_atomic_preds,matches,approx_mem_bytes"); err != nil {
		return err
	}
	names := make([]string, 0, len(r.cache))
	for name := range r.cache {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, row := range r.cache[name] {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%.3f,%d,%.2f,%.4f,%d,%d,%d\n",
				name, row.Series, fmtX(row.X), row.Time.Seconds(), row.MBPerSec,
				row.States, row.AvgSize, row.HitRatio, row.TotalPred, row.Matches, row.MemBytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderPivot prints rows as an x-by-series table of the figure's metric.
func renderPivot(w io.Writer, rows []Row, info figureInfo, id string) {
	// Collect axes.
	var xs []float64
	var series []string
	seenX := map[float64]bool{}
	seenS := map[string]bool{}
	cell := map[[2]string]string{}
	for _, row := range rows {
		if skipRow(info, row) {
			continue
		}
		if !seenX[row.X] {
			seenX[row.X] = true
			xs = append(xs, row.X)
		}
		if !seenS[row.Series] {
			seenS[row.Series] = true
			series = append(series, row.Series)
		}
		cell[[2]string{fmtX(row.X), row.Series}] = metric(info.Metric, row)
	}
	sort.Float64s(xs)
	fmt.Fprintf(w, "  %-12s", info.XLabel)
	for _, s := range series {
		fmt.Fprintf(w, " %*s", colWidth(s), s)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "  %-12s", fmtX(x))
		for _, s := range series {
			v := cell[[2]string{fmtX(x), s}]
			if v == "" {
				v = "-"
			}
			fmt.Fprintf(w, " %*s", colWidth(s), v)
		}
		fmt.Fprintln(w)
	}
}

// skipRow drops series that have no values for a figure's metric (the parse
// series has no state counts).
func skipRow(info figureInfo, row Row) bool {
	if info.Metric != "time" && (row.Series == "parse" || row.Series == "stdparse") {
		return true
	}
	return false
}

func colWidth(series string) int {
	if w := len(series); w > 10 {
		return w
	}
	return 10
}

func fmtX(x float64) string {
	if x == float64(int64(x)) {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'f', 1, 64)
}

func metric(kind string, row Row) string {
	switch kind {
	case "time":
		return fmt.Sprintf("%.3fs", row.Time.Seconds())
	case "states":
		return strconv.Itoa(row.States)
	case "avgsize":
		return fmt.Sprintf("%.1f", row.AvgSize)
	case "hit":
		return fmt.Sprintf("%.4f", row.HitRatio)
	default:
		return "?"
	}
}
