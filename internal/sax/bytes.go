package sax

import (
	"bytes"
	"fmt"
	"unicode/utf8"
)

// BytesHandler is the byte-level counterpart of Handler: event names and
// character data are delivered as sub-slices of the input buffer (or of an
// internal scratch buffer when entity decoding or run coalescing forces a
// copy). Slices are only valid for the duration of the callback — handlers
// that retain them must copy. The XPush machine consumes this interface
// directly, resolving names to interned symbols without ever materialising a
// string, which is what makes the warm filtering path allocation-free.
type BytesHandler interface {
	StartDocument()
	StartElementBytes(name []byte)
	TextBytes(data []byte)
	EndElementBytes(name []byte)
	EndDocument()
}

// handlerShim adapts a string-level Handler to BytesHandler, paying one
// string allocation per named event (the cost the byte path exists to avoid).
type handlerShim struct{ h Handler }

func (s handlerShim) StartDocument()                { s.h.StartDocument() }
func (s handlerShim) StartElementBytes(name []byte) { s.h.StartElement(string(name)) }
func (s handlerShim) TextBytes(data []byte)         { s.h.Text(string(data)) }
func (s handlerShim) EndElementBytes(name []byte)   { s.h.EndElement(string(name)) }
func (s handlerShim) EndDocument()                  { s.h.EndDocument() }

// AsBytesHandler returns h itself when it already implements BytesHandler,
// and a string-converting shim otherwise.
func AsBytesHandler(h Handler) BytesHandler {
	if bh, ok := h.(BytesHandler); ok {
		return bh
	}
	return handlerShim{h}
}

// span is a byte range into the scanner's input buffer.
type span struct{ start, end int }

// Text accumulation modes: most text nodes are one contiguous raw segment of
// the input and are delivered without copying; entity references and
// coalescing across CDATA/comments fall back to a reusable buffer.
const (
	textNone = iota
	textSimple
	textBuffered
)

// ByteScanner is a push-mode, reusable counterpart of Scanner: it parses the
// same document syntax and produces the same event stream, but delivers
// events through BytesHandler callbacks instead of an Event queue, and after
// its internal buffers have warmed up it performs no heap allocations per
// document. One ByteScanner serves one goroutine; reuse it across Parse
// calls to amortise buffer growth.
type ByteScanner struct {
	data []byte
	pos  int
	h    BytesHandler

	stack []span // open element names, as ranges into data
	inDoc bool

	textMode           uint8
	textStart, textEnd int
	textBuf            []byte

	attrName []byte // "@" + attribute label scratch
	attrVal  []byte // entity-decoded attribute value scratch

	// MaxDepth bounds element nesting; 0 selects DefaultMaxDepth.
	MaxDepth int
}

// ParseBytes parses one or more concatenated documents with a throwaway
// ByteScanner. Hot paths should hold a ByteScanner and call its Parse method
// so buffers are reused.
func ParseBytes(data []byte, h BytesHandler) error {
	var s ByteScanner
	return s.Parse(data, h)
}

// Parse runs the handler over a buffer holding one or more concatenated
// documents. The scanner can be reused for subsequent Parse calls.
func (s *ByteScanner) Parse(data []byte, h BytesHandler) error {
	if s.MaxDepth == 0 {
		s.MaxDepth = DefaultMaxDepth
	}
	s.data, s.pos, s.h = data, 0, h
	s.stack = s.stack[:0]
	s.inDoc = false
	s.textMode = textNone
	err := s.run()
	s.data, s.h = nil, nil
	return err
}

func (s *ByteScanner) errf(format string, args ...any) error {
	return &ParseError{Offset: s.pos, Msg: fmt.Sprintf(format, args...)}
}

func (s *ByteScanner) run() error {
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		if c == '<' {
			if err := s.markup(); err != nil {
				return err
			}
			continue
		}
		if !s.inDoc || len(s.stack) == 0 {
			// Character data outside any element: only whitespace is
			// allowed.
			if isSpace(c) {
				s.pos++
				continue
			}
			return s.errf("character data outside document element")
		}
		if err := s.textRun(); err != nil {
			return err
		}
	}
	if len(s.stack) > 0 {
		top := s.stack[len(s.stack)-1]
		return s.errf("unexpected end of input: %d unclosed element(s), innermost %q",
			len(s.stack), s.data[top.start:top.end])
	}
	if s.inDoc {
		s.inDoc = false
		s.h.EndDocument()
	}
	return nil
}

// addTextSegment records raw character data [start, end) of the input,
// staying in zero-copy simple mode while the pending text is one contiguous
// range.
func (s *ByteScanner) addTextSegment(start, end int) {
	switch s.textMode {
	case textNone:
		s.textMode, s.textStart, s.textEnd = textSimple, start, end
	case textSimple:
		if start == s.textEnd {
			s.textEnd = end
			return
		}
		s.toBuffered()
		s.textBuf = append(s.textBuf, s.data[start:end]...)
	default:
		s.textBuf = append(s.textBuf, s.data[start:end]...)
	}
}

// toBuffered switches text accumulation to the scratch buffer, preserving
// any pending simple segment.
func (s *ByteScanner) toBuffered() {
	switch s.textMode {
	case textNone:
		s.textBuf = s.textBuf[:0]
	case textSimple:
		s.textBuf = append(s.textBuf[:0], s.data[s.textStart:s.textEnd]...)
	default:
		return
	}
	s.textMode = textBuffered
}

// flushText emits accumulated character data as one TextBytes event,
// dropping whitespace-only runs (the data model has no mixed content, so
// inter-element whitespace is insignificant).
func (s *ByteScanner) flushText() {
	var t []byte
	switch s.textMode {
	case textNone:
		return
	case textSimple:
		t = s.data[s.textStart:s.textEnd]
	default:
		t = s.textBuf
	}
	s.textMode = textNone
	if len(bytes.TrimSpace(t)) == 0 {
		return
	}
	s.h.TextBytes(t)
}

// textRun consumes character data up to the next '<'.
func (s *ByteScanner) textRun() error {
	start := s.pos
	for s.pos < len(s.data) && s.data[s.pos] != '<' {
		if s.data[s.pos] == '&' {
			s.toBuffered()
			s.textBuf = append(s.textBuf, s.data[start:s.pos]...)
			r, err := s.entity()
			if err != nil {
				return err
			}
			s.textBuf = utf8.AppendRune(s.textBuf, r)
			start = s.pos
			continue
		}
		s.pos++
	}
	s.addTextSegment(start, s.pos)
	return nil
}

// entity decodes an entity reference starting at '&' without allocating:
// the five predefined names compare directly against the input and numeric
// character references are accumulated by hand (matching
// strconv.ParseUint's 32-bit range semantics).
func (s *ByteScanner) entity() (rune, error) {
	end := s.pos + 1
	for end < len(s.data) && s.data[end] != ';' {
		if end-s.pos > 12 {
			return 0, s.errf("malformed entity reference")
		}
		end++
	}
	if end >= len(s.data) {
		return 0, s.errf("unterminated entity reference")
	}
	name := s.data[s.pos+1 : end]
	s.pos = end + 1
	switch string(name) {
	case "lt":
		return '<', nil
	case "gt":
		return '>', nil
	case "amp":
		return '&', nil
	case "apos":
		return '\'', nil
	case "quot":
		return '"', nil
	}
	if len(name) > 1 && name[0] == '#' {
		base, digits := uint64(10), name[1:]
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			base, digits = 16, digits[1:]
		}
		n := uint64(0)
		ok := len(digits) > 0
		for _, c := range digits {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				ok = false
			}
			if !ok {
				break
			}
			n = n*base + d
			if n > 1<<32-1 {
				ok = false
				break
			}
		}
		if !ok {
			return 0, s.errf("bad character reference &%s;", name)
		}
		return rune(uint32(n)), nil
	}
	return 0, s.errf("unknown entity &%s;", name)
}

// markup handles everything starting with '<'.
func (s *ByteScanner) markup() error {
	if s.pos+1 >= len(s.data) {
		return s.errf("unexpected end of input after '<'")
	}
	switch s.data[s.pos+1] {
	case '?':
		end := indexFrom(s.data, s.pos+2, "?>")
		if end < 0 {
			return s.errf("unterminated processing instruction")
		}
		s.pos = end + 2
		return nil
	case '!':
		return s.bang()
	case '/':
		return s.endTag()
	default:
		return s.startTag()
	}
}

func (s *ByteScanner) bang() error {
	rest := s.data[s.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		end := indexFrom(s.data, s.pos+4, "-->")
		if end < 0 {
			return s.errf("unterminated comment")
		}
		s.pos = end + 3
		return nil
	case hasPrefix(rest, "<![CDATA["):
		end := indexFrom(s.data, s.pos+9, "]]>")
		if end < 0 {
			return s.errf("unterminated CDATA section")
		}
		if !s.inDoc || len(s.stack) == 0 {
			return s.errf("CDATA outside document element")
		}
		if end > s.pos+9 {
			s.addTextSegment(s.pos+9, end)
		}
		s.pos = end + 3
		return nil
	case hasPrefix(rest, "<!DOCTYPE"):
		depth := 0
		for i := s.pos; i < len(s.data); i++ {
			switch s.data[i] {
			case '[':
				depth++
			case ']':
				depth--
			case '>':
				if depth <= 0 {
					s.pos = i + 1
					return nil
				}
			}
		}
		return s.errf("unterminated DOCTYPE declaration")
	default:
		return s.errf("unsupported markup declaration")
	}
}

func (s *ByteScanner) startTag() error {
	if !s.inDoc {
		s.inDoc = true
		s.h.StartDocument()
	}
	s.flushText()
	i := s.pos + 1
	nameStart := i
	for i < len(s.data) && !isSpace(s.data[i]) && s.data[i] != '>' && s.data[i] != '/' {
		i++
	}
	if i == nameStart {
		return s.errf("missing element name")
	}
	name := s.data[nameStart:i]
	if len(s.stack) >= s.MaxDepth {
		return s.errf("maximum element depth %d exceeded", s.MaxDepth)
	}
	s.h.StartElementBytes(name)
	// Attributes.
	for {
		for i < len(s.data) && isSpace(s.data[i]) {
			i++
		}
		if i >= len(s.data) {
			return s.errf("unterminated start tag <%s", name)
		}
		if s.data[i] == '>' {
			s.stack = append(s.stack, span{start: nameStart, end: nameStart + len(name)})
			s.pos = i + 1
			return nil
		}
		if s.data[i] == '/' {
			if i+1 >= len(s.data) || s.data[i+1] != '>' {
				return s.errf("bad '/' in start tag")
			}
			// Self-closing element.
			s.h.EndElementBytes(name)
			s.pos = i + 2
			if len(s.stack) == 0 {
				s.inDoc = false
				s.h.EndDocument()
			}
			return nil
		}
		attrStart := i
		for i < len(s.data) && s.data[i] != '=' && !isSpace(s.data[i]) && s.data[i] != '>' {
			i++
		}
		if i >= len(s.data) || s.data[i] != '=' {
			return s.errf("attribute without value in <%s>", name)
		}
		s.attrName = append(s.attrName[:0], '@')
		s.attrName = append(s.attrName, s.data[attrStart:i]...)
		i++ // skip '='
		for i < len(s.data) && isSpace(s.data[i]) {
			i++
		}
		if i >= len(s.data) || (s.data[i] != '"' && s.data[i] != '\'') {
			return s.errf("attribute value must be quoted in <%s>", name)
		}
		quote := s.data[i]
		i++
		valStart := i
		buffered := false
		for i < len(s.data) && s.data[i] != quote {
			if s.data[i] == '&' {
				if !buffered {
					s.attrVal = s.attrVal[:0]
					buffered = true
				}
				s.attrVal = append(s.attrVal, s.data[valStart:i]...)
				save := s.pos
				s.pos = i
				r, err := s.entity()
				if err != nil {
					return err
				}
				i = s.pos
				s.pos = save
				s.attrVal = utf8.AppendRune(s.attrVal, r)
				valStart = i
				continue
			}
			i++
		}
		if i >= len(s.data) {
			return s.errf("unterminated attribute value in <%s>", name)
		}
		val := s.data[valStart:i]
		if buffered {
			s.attrVal = append(s.attrVal, s.data[valStart:i]...)
			val = s.attrVal
		}
		i++ // skip closing quote
		s.h.StartElementBytes(s.attrName)
		s.h.TextBytes(val)
		s.h.EndElementBytes(s.attrName)
	}
}

func (s *ByteScanner) endTag() error {
	i := s.pos + 2
	nameStart := i
	for i < len(s.data) && s.data[i] != '>' && !isSpace(s.data[i]) {
		i++
	}
	name := s.data[nameStart:i]
	for i < len(s.data) && isSpace(s.data[i]) {
		i++
	}
	if i >= len(s.data) || s.data[i] != '>' {
		return s.errf("unterminated end tag </%s", name)
	}
	if len(s.stack) == 0 {
		return s.errf("end tag </%s> with no open element", name)
	}
	top := s.stack[len(s.stack)-1]
	if !bytes.Equal(s.data[top.start:top.end], name) {
		return s.errf("mismatched end tag: expected </%s>, got </%s>",
			s.data[top.start:top.end], name)
	}
	s.flushText()
	s.stack = s.stack[:len(s.stack)-1]
	s.h.EndElementBytes(name)
	s.pos = i + 1
	if len(s.stack) == 0 {
		s.inDoc = false
		s.h.EndDocument()
	}
	return nil
}
