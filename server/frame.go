// Package server is the production serving subsystem for the XPush engine:
// a TCP broker that holds the subscription table (10⁴–10⁵ XPath filters, the
// paper's message-routing application from Sec. 1) and forwards every
// published XML document to the subscribers whose filters match.
//
// The wire protocol is length-prefixed framing over one TCP connection per
// peer, carrying a control plane (SUBSCRIBE / UNSUBSCRIBE / PING) and a
// data plane (PUBLISH, asynchronous DELIVER notifications). Subscription
// changes are applied behind a copy-on-write engine swap, so publishers
// never observe a half-updated workload. Per-subscriber delivery runs
// through bounded queues with a selectable backpressure policy; every drop
// is counted. The server drains gracefully: on Shutdown it stops accepting,
// rejects new publishes, flips /healthz to not-ready, and flushes every
// delivery queue before closing connections.
//
// Use the repro/client package to talk to a Server; cmd/xpushserve wraps
// one in a binary.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout: a 4-byte big-endian length n (covering the type byte and
// the payload, so n >= 1), one type byte, and n-1 payload bytes.
//
//	+--------+--------+----------------+
//	| u32 BE | type   | payload        |
//	| length | 1 byte | length-1 bytes |
//	+--------+--------+----------------+
//
// Frame types and payloads:
//
//	client -> server
//	  Subscribe         XPath filter text
//	  Unsubscribe       8-byte big-endian filter id
//	  Ping              empty
//	  Publish           one XML document
//	  SubscribeDurable  u32 BE name length, the subscriber name, then the
//	                    XPath filter text (requires a WAL-backed server)
//	  Ack               8-byte big-endian log offset: every document at or
//	                    below it is processed; the persisted cursor advances
//	                    to offset+1. No response frame is sent (acks are
//	                    fire-and-forget so they can interleave with the
//	                    client's request/response round-trips).
//	  PublishAsync      8-byte big-endian client-chosen sequence number,
//	                    then one XML document. No per-frame response: the
//	                    server answers with batched PubAcks frames, so a
//	                    client can stream documents windowed by sequence
//	                    instead of paying a round trip each.
//
//	Publish and PublishAsync additionally reserve bit 6 of the type byte
//	(FrameTraceFlag): when set, an 8-byte big-endian trace id precedes the
//	normal payload, propagating a trace begun upstream (at an xpushgate or
//	a tracing publisher) into this hop — the same reserved-bit trick the
//	Deliver frame plays with bit 31 of its count word. Untraced frames keep
//	the plain type byte and are byte-identical to the pre-flag encoding.
//	server -> client
//	  OK           8-byte big-endian value: the assigned filter id
//	               (Subscribe), the echoed id (Unsubscribe), or the
//	               matched-filter count (Publish). SubscribeDurable replies
//	               with 16 bytes: the filter id then the resume offset the
//	               replay starts from.
//	  Err          UTF-8 error message
//	  Pong         empty
//	  Deliver      u32 BE matched-filter count n, n 8-byte BE filter ids,
//	               then the document bytes. Bit 31 of the count marks a
//	               traced delivery: an 8-byte BE trace id sits between the
//	               ids and the document (the count itself is the low 31
//	               bits), letting a client correlate a delivery with the
//	               server's /debug/traces output.
//	  DeliverAt    8-byte BE log offset, then a Deliver payload — the
//	               durable delivery stream; the offset is what Ack echoes
//	  PubAcks      u32 BE entry count, then per entry: 8-byte BE sequence
//	               (echoed from PublishAsync), one status byte, and — for
//	               status 0 — an 8-byte BE matched-filter count, or — for
//	               status 1 — a u32 BE length and that many bytes of UTF-8
//	               error message. Entries for consecutive publishes are
//	               coalesced into one frame.
const (
	FrameSubscribe        byte = 0x01
	FrameUnsubscribe      byte = 0x02
	FramePing             byte = 0x03
	FramePublish          byte = 0x04
	FrameSubscribeDurable byte = 0x05
	FrameAck              byte = 0x06
	FramePublishAsync     byte = 0x07

	// FrameTraceFlag is bit 6 of a request's type byte. OR'd into
	// FramePublish or FramePublishAsync it marks a traced publish: the
	// payload starts with an 8-byte big-endian trace id (see
	// AppendTracedPayload / SplitTracedPayload), followed by the frame's
	// normal payload. Servers receiving a traced publish adopt the carried
	// id so the document's spans across processes stitch into one trace.
	FrameTraceFlag byte = 0x40

	FrameOK        byte = 0x81
	FrameErr       byte = 0x82
	FramePong      byte = 0x83
	FrameDeliver   byte = 0x84
	FrameDeliverAt byte = 0x85
	FramePubAcks   byte = 0x86

	// FrameProtoErr is a terminal protocol-level error: the payload is a
	// UTF-8 reason string and the sender closes the connection immediately
	// after writing it. Unlike FrameErr (a per-request failure on a healthy
	// connection), FrameProtoErr means the peer could not keep speaking the
	// protocol at all — e.g. an unknown frame type from version skew between
	// an xpushgate and an older node — so the violation is diagnosable
	// instead of surfacing as a bare connection drop.
	FrameProtoErr byte = 0x8F
)

// Frame is one decoded protocol frame.
type Frame struct {
	Type    byte
	Payload []byte
}

// ErrFrameTooLarge reports a frame whose declared payload exceeds the
// reader's limit. The frame has not been consumed from the stream.
type ErrFrameTooLarge struct {
	Size, Limit int
}

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("server: frame payload %d bytes exceeds limit %d", e.Size, e.Limit)
}

// ReadFrame reads one frame from r. A frame whose payload would exceed
// maxPayload returns *ErrFrameTooLarge without consuming the payload, so
// the caller can decide between discarding and closing.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, fmt.Errorf("server: zero-length frame")
	}
	if int64(n-1) > int64(maxPayload) {
		return Frame{}, &ErrFrameTooLarge{Size: int(n - 1), Limit: maxPayload}
	}
	var t [1]byte
	if _, err := io.ReadFull(r, t[:]); err != nil {
		return Frame{}, err
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, err
	}
	return Frame{Type: t[0], Payload: payload}, nil
}

// WriteFrame writes one frame. Callers interleaving writers on a shared
// connection must serialize WriteFrame calls themselves.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendUint64 encodes an 8-byte big-endian value (the OK / Unsubscribe
// payload).
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// ParseUint64 decodes an 8-byte big-endian payload.
func ParseUint64(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("server: expected 8-byte payload, got %d", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// deliverTraceFlag is bit 31 of the Deliver count word: when set, an
// 8-byte big-endian trace id follows the filter ids. The low 31 bits stay
// the filter count, so untraced payloads are byte-identical to the pre-flag
// encoding.
const deliverTraceFlag = uint32(1) << 31

// AppendDeliverPayload encodes a Deliver payload: the subscriber's matched
// filter ids followed by the document.
func AppendDeliverPayload(dst []byte, filters []uint64, doc []byte) []byte {
	return AppendDeliverPayloadTrace(dst, filters, doc, 0)
}

// AppendDeliverPayloadTrace is AppendDeliverPayload with a trace id. A zero
// traceID emits the plain (flag-free) encoding.
func AppendDeliverPayloadTrace(dst []byte, filters []uint64, doc []byte, traceID uint64) []byte {
	var b [4]byte
	n := uint32(len(filters))
	if traceID != 0 {
		n |= deliverTraceFlag
	}
	binary.BigEndian.PutUint32(b[:], n)
	dst = append(dst, b[:]...)
	for _, f := range filters {
		dst = AppendUint64(dst, f)
	}
	if traceID != 0 {
		dst = AppendUint64(dst, traceID)
	}
	return append(dst, doc...)
}

// ParseDeliverPayload decodes a Deliver payload, discarding a trace id if
// present. The returned slices alias p.
func ParseDeliverPayload(p []byte) (filters []uint64, doc []byte, err error) {
	filters, doc, _, err = ParseDeliverPayloadTrace(p)
	return filters, doc, err
}

// ParseDeliverPayloadTrace decodes a Deliver payload including its optional
// trace id (0 when the delivery is untraced). The returned slices alias p.
func ParseDeliverPayloadTrace(p []byte) (filters []uint64, doc []byte, traceID uint64, err error) {
	if len(p) < 4 {
		return nil, nil, 0, fmt.Errorf("server: short deliver payload")
	}
	n := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	traced := n&deliverTraceFlag != 0
	n &^= deliverTraceFlag
	need := int64(n) * 8
	if traced {
		need += 8
	}
	if int64(len(p)) < need {
		return nil, nil, 0, fmt.Errorf("server: deliver payload truncated (%d ids declared)", n)
	}
	filters = make([]uint64, n)
	for i := range filters {
		filters[i] = binary.BigEndian.Uint64(p[i*8:])
	}
	p = p[n*8:]
	if traced {
		traceID = binary.BigEndian.Uint64(p[:8])
		p = p[8:]
	}
	return filters, p, traceID, nil
}

// AppendSubscribeDurablePayload encodes a SubscribeDurable payload: the
// subscriber's durable name (its cursor identity) and the XPath filter.
func AppendSubscribeDurablePayload(dst []byte, name, xpath string) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(name)))
	dst = append(dst, b[:]...)
	dst = append(dst, name...)
	return append(dst, xpath...)
}

// ParseSubscribeDurablePayload decodes a SubscribeDurable payload.
func ParseSubscribeDurablePayload(p []byte) (name, xpath string, err error) {
	if len(p) < 4 {
		return "", "", fmt.Errorf("server: short subscribe-durable payload")
	}
	n := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	if int64(len(p)) < int64(n) {
		return "", "", fmt.Errorf("server: subscribe-durable payload truncated (%d-byte name declared)", n)
	}
	return string(p[:n]), string(p[n:]), nil
}

// AppendDeliverAtPayload encodes a DeliverAt payload: the record's log
// offset followed by a Deliver payload.
func AppendDeliverAtPayload(dst []byte, offset uint64, filters []uint64, doc []byte) []byte {
	dst = AppendUint64(dst, offset)
	return AppendDeliverPayload(dst, filters, doc)
}

// AppendDeliverAtPayloadTrace is AppendDeliverAtPayload with a trace id
// (see AppendDeliverPayloadTrace).
func AppendDeliverAtPayloadTrace(dst []byte, offset uint64, filters []uint64, doc []byte, traceID uint64) []byte {
	dst = AppendUint64(dst, offset)
	return AppendDeliverPayloadTrace(dst, filters, doc, traceID)
}

// ParseDeliverAtPayload decodes a DeliverAt payload, discarding a trace id
// if present. The returned slices alias p.
func ParseDeliverAtPayload(p []byte) (offset uint64, filters []uint64, doc []byte, err error) {
	offset, filters, doc, _, err = ParseDeliverAtPayloadTrace(p)
	return offset, filters, doc, err
}

// ParseDeliverAtPayloadTrace decodes a DeliverAt payload including its
// optional trace id. The returned slices alias p.
func ParseDeliverAtPayloadTrace(p []byte) (offset uint64, filters []uint64, doc []byte, traceID uint64, err error) {
	if len(p) < 8 {
		return 0, nil, nil, 0, fmt.Errorf("server: short deliver-at payload")
	}
	offset = binary.BigEndian.Uint64(p[:8])
	filters, doc, traceID, err = ParseDeliverPayloadTrace(p[8:])
	return offset, filters, doc, traceID, err
}

// AppendPublishAsyncPayload encodes a PublishAsync payload: the client's
// sequence number followed by the document.
func AppendPublishAsyncPayload(dst []byte, seq uint64, doc []byte) []byte {
	dst = AppendUint64(dst, seq)
	return append(dst, doc...)
}

// ParsePublishAsyncPayload decodes a PublishAsync payload. The returned doc
// aliases p.
func ParsePublishAsyncPayload(p []byte) (seq uint64, doc []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("server: short publish-async payload")
	}
	return binary.BigEndian.Uint64(p[:8]), p[8:], nil
}

// AppendTracedPayload encodes the payload of a FrameTraceFlag-marked
// publish: the trace id carried from the upstream hop, then the frame's
// normal payload (the document for Publish, seq+document for PublishAsync).
func AppendTracedPayload(dst []byte, traceID uint64, rest []byte) []byte {
	dst = AppendUint64(dst, traceID)
	return append(dst, rest...)
}

// SplitTracedPayload strips the 8-byte trace id off a FrameTraceFlag-marked
// payload. The returned rest aliases p.
func SplitTracedPayload(p []byte) (traceID uint64, rest []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("server: short traced payload")
	}
	return binary.BigEndian.Uint64(p[:8]), p[8:], nil
}

// PubAck is one entry of a PubAcks frame: the outcome of the PublishAsync
// carrying Seq. Err == "" means the publish was accepted and matched
// Matches filters.
type PubAck struct {
	Seq     uint64
	Matches uint64
	Err     string
}

// AppendPubAcksPayload encodes a PubAcks payload.
func AppendPubAcksPayload(dst []byte, acks []PubAck) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(acks)))
	dst = append(dst, b[:]...)
	for _, a := range acks {
		dst = AppendUint64(dst, a.Seq)
		if a.Err == "" {
			dst = append(dst, 0)
			dst = AppendUint64(dst, a.Matches)
		} else {
			dst = append(dst, 1)
			binary.BigEndian.PutUint32(b[:], uint32(len(a.Err)))
			dst = append(dst, b[:]...)
			dst = append(dst, a.Err...)
		}
	}
	return dst
}

// ParsePubAcksPayload decodes a PubAcks payload.
func ParsePubAcksPayload(p []byte) ([]PubAck, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("server: short pub-acks payload")
	}
	n := binary.BigEndian.Uint32(p[:4])
	p = p[4:]
	acks := make([]PubAck, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		if len(p) < 9 {
			return nil, fmt.Errorf("server: pub-acks payload truncated (entry %d)", i)
		}
		a := PubAck{Seq: binary.BigEndian.Uint64(p[:8])}
		status := p[8]
		p = p[9:]
		switch status {
		case 0:
			if len(p) < 8 {
				return nil, fmt.Errorf("server: pub-acks payload truncated (entry %d)", i)
			}
			a.Matches = binary.BigEndian.Uint64(p[:8])
			p = p[8:]
		case 1:
			if len(p) < 4 {
				return nil, fmt.Errorf("server: pub-acks payload truncated (entry %d)", i)
			}
			m := binary.BigEndian.Uint32(p[:4])
			p = p[4:]
			if int64(len(p)) < int64(m) {
				return nil, fmt.Errorf("server: pub-acks payload truncated (entry %d)", i)
			}
			a.Err = string(p[:m])
			p = p[m:]
		default:
			return nil, fmt.Errorf("server: pub-acks entry %d has unknown status %d", i, status)
		}
		acks = append(acks, a)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("server: pub-acks payload has %d trailing bytes", len(p))
	}
	return acks, nil
}
