package xpushstream

import (
	"strings"
	"sync"
	"testing"
)

// These tests pin down that the observability hooks are race-free: stats can
// be scraped (as a /metrics handler would) while the parallel deployment
// paths are filtering. They are fast enough for -short and are primarily
// meant to run under -race (see .github/workflows/ci.yml).

// scrapeWhile calls stats() in a tight loop until done is closed.
func scrapeWhile(done <-chan struct{}, wg *sync.WaitGroup, stats func() Stats) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				s := stats()
				_ = s.LatencySummary()
				_ = s.WindowHitRatio
			}
		}
	}()
}

func buildStream(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString("<m><v>1</v><w>4</w></m>")
	}
	return sb.String()
}

func TestPoolStatsConcurrentWithFilterStream(t *testing.T) {
	base, err := Compile([]string{"/m[v=1]", "/m[v=2]", "//m[w>3]"}, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	scrapeWhile(done, &wg, pool.Stats)
	stream := buildStream(400)
	for pass := 0; pass < 3; pass++ {
		if err := pool.FilterStream(strings.NewReader(stream), func(Result) {}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	st := pool.Stats()
	if st.Documents != 3*400 {
		t.Errorf("documents = %d", st.Documents)
	}
	if st.FilterLatency.Count != 3*400 {
		t.Errorf("latency observations = %d", st.FilterLatency.Count)
	}
}

func TestShardedStatsConcurrentWithFilterDocument(t *testing.T) {
	sh, err := CompileSharded([]string{"/m[v=1]", "/m[v=2]", "//m[w>3]", "/m"}, Config{TopDownPruning: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	scrapeWhile(done, &wg, sh.Stats)
	doc := []byte("<m><v>2</v><w>9</w></m>")
	for i := 0; i < 500; i++ {
		got, err := sh.FilterDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("matches = %v", got)
		}
	}
	close(done)
	wg.Wait()
}

func TestEngineStatsConcurrentWithFilterStream(t *testing.T) {
	e, err := Compile([]string{"/m[v=1]", "//m[w>3]"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	scrapeWhile(done, &wg, e.Stats)
	if err := e.FilterStream(strings.NewReader(buildStream(500)), func([]int) {}); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if st := e.Stats(); st.Documents != 500 || st.Bytes == 0 {
		t.Errorf("stats: %+v", st)
	}
}
