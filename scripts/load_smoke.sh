#!/usr/bin/env bash
# load_smoke.sh — end-to-end load-harness smoke: boot a WAL-backed
# xpushserve on loopback, drive workloads/smoke.props through xpushload
# (zipfian popularity, 20% durable, churn + reconnect-storm phase, ~8s),
# and assert the run finished with zero errors and non-zero deliveries.
#
# Usage: scripts/load_smoke.sh [json-out]
#
# The JSON report is left at json-out (default /tmp/xpushload_smoke.json)
# so bench_gate.sh's open-loop latency gate can reuse it instead of paying
# for a second run.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-/tmp/xpushload_smoke.json}"
PORT="${XPUSHLOAD_PORT:-19410}"
TMP=$(mktemp -d)
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/xpushserve" ./cmd/xpushserve
go build -o "$TMP/xpushload" ./cmd/xpushload

"$TMP/xpushserve" -addr "127.0.0.1:$PORT" -wal-dir "$TMP/wal" >"$TMP/server.log" 2>&1 &
SRV_PID=$!

# xpushload dials with retry/backoff, so no boot-wait is needed; a non-zero
# exit here means the run failed or a phase recorded errors.
if ! "$TMP/xpushload" -addr "127.0.0.1:$PORT" -workload workloads/smoke.props -json "$OUT"; then
  echo "load_smoke: xpushload failed; server log:" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi

deliveries=$(awk -F: '/"deliveries"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
churn=$(awk -F: '/"churn_ops"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
errors=$(awk -F: '/"errors"|"ack_errors"/ { gsub(/[^0-9]/, "", $2); s += $2 } END { print s + 0 }' "$OUT")
echo "load_smoke: $deliveries deliveries, $churn churn ops, $errors errors"
if [ "$errors" -ne 0 ]; then
  echo "load_smoke: FAIL — run recorded $errors errors" >&2
  exit 1
fi
if [ "$deliveries" -eq 0 ]; then
  echo "load_smoke: FAIL — no deliveries measured" >&2
  exit 1
fi
if [ "$churn" -eq 0 ]; then
  echo "load_smoke: FAIL — churn phase performed no subscription churn" >&2
  exit 1
fi
echo "load_smoke: OK ($OUT)"
