// Package obs is a dependency-free runtime-observability toolkit for the
// filtering engine: atomic counters and gauges, log-bucketed latency
// histograms with quantile summaries, a registry that encodes everything in
// the Prometheus text exposition format, and an optional net/http handler
// serving /metrics and /healthz.
//
// All primitives are safe for concurrent use; observation is lock-free
// (atomic adds), so they can sit on the engine's per-document hot path and
// still be read by a scraper while a stream is being filtered.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: numBuckets exponential buckets doubling from
// bucketBase, plus an implicit overflow bucket. With bucketBase = 1µs
// (observations are in seconds) the highest finite bound is ~33.5s — wide
// enough for per-document filter latencies from nanoseconds on a warm
// machine to multi-second cold-start documents.
const (
	numBuckets = 26
	bucketBase = 1e-6
)

// BucketBounds returns the histogram's finite upper bounds, in observation
// units (seconds for latency histograms). Bound i is bucketBase * 2^i.
func BucketBounds() []float64 {
	b := make([]float64, numBuckets)
	for i := range b {
		b[i] = bucketBase * float64(uint64(1)<<i)
	}
	return b
}

// Histogram is a log-bucketed histogram with lock-free observation. The
// zero value is ready to use.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Uint64 // last bucket is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	maxBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation (e.g. a latency in seconds).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	idx := bucketIndex(v)
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// bucketIndex maps an observation to its bucket: the smallest i with
// v <= bucketBase*2^i, or the overflow bucket.
func bucketIndex(v float64) int {
	for i := 0; i < numBuckets; i++ {
		if v <= bucketBase*float64(uint64(1)<<i) {
			return i
		}
	}
	return numBuckets
}

// CopyFrom replaces h's contents with src's current observations. Like
// Snapshot, the per-field reads are individually atomic but not globally
// consistent; concurrent observations on src may be partially reflected.
// Used to carry a latency history into a derived engine (see
// Engine.WithQueries).
func (h *Histogram) CopyFrom(src *Histogram) {
	for i := range src.buckets {
		h.buckets[i].Store(src.buckets[i].Load())
	}
	h.count.Store(src.count.Load())
	h.sumBits.Store(src.sumBits.Load())
	h.maxBits.Store(src.maxBits.Load())
}

// Snapshot returns a consistent-enough copy of the histogram for encoding
// or quantile estimation. (Counts are read bucket-by-bucket without a
// global lock; concurrent observations may skew a snapshot by a few
// observations, which is irrelevant for monitoring.)
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Buckets = make([]uint64, numBuckets+1)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	return s
}

// Snapshot is a point-in-time copy of a Histogram.
type Snapshot struct {
	// Buckets holds per-bucket (not cumulative) counts; the last entry is
	// the overflow (+Inf) bucket. Bounds are BucketBounds().
	Buckets []uint64
	Count   uint64
	Sum     float64
	Max     float64
}

// DeltaSince returns the observations recorded between prev and s — the
// per-interval view a scraper (or xpushload's progress reporter) computes
// from two cumulative snapshots, so interval reports and /metrics agree on
// the same underlying histogram. Cumulative encoding stays the default
// everywhere; deltas are always derived client-side from two snapshots.
//
// Sum and bucket counts subtract exactly (clamped at zero against
// concurrent-skew artifacts). Max cannot be recovered from cumulative
// counts alone: it is exact when the cumulative max advanced during the
// interval (the new max happened inside it), and otherwise bounded by the
// upper edge of the highest non-empty delta bucket.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	var d Snapshot
	d.Buckets = make([]uint64, len(s.Buckets))
	top := -1
	for i := range s.Buckets {
		p := uint64(0)
		if i < len(prev.Buckets) {
			p = prev.Buckets[i]
		}
		if s.Buckets[i] > p {
			d.Buckets[i] = s.Buckets[i] - p
			top = i
		}
	}
	if s.Count > prev.Count {
		d.Count = s.Count - prev.Count
	}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	switch {
	case s.Max > prev.Max:
		d.Max = s.Max
	case top >= 0 && top < numBuckets:
		d.Max = bucketBase * float64(uint64(1)<<top)
	case top == numBuckets:
		d.Max = s.Max // overflow bucket: cumulative max is the only bound
	}
	return d
}

// Window tracks a histogram's per-interval deltas: each Delta call returns
// the observations since the previous call (the first call returns
// everything so far). Not safe for concurrent use — give each reporter its
// own Window over the shared histogram.
type Window struct {
	h    *Histogram
	prev Snapshot
}

// NewWindow returns a delta tracker over h.
func NewWindow(h *Histogram) *Window { return &Window{h: h} }

// Delta returns the observations recorded since the last Delta call.
func (w *Window) Delta() Snapshot {
	cur := w.h.Snapshot()
	d := cur.DeltaSince(w.prev)
	w.prev = cur
	return d
}

// Merge adds another snapshot's observations into s (for aggregating
// per-worker histograms).
func (s *Snapshot) Merge(o Snapshot) {
	if len(s.Buckets) == 0 {
		s.Buckets = make([]uint64, numBuckets+1)
	}
	for i := range o.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket counts,
// interpolating linearly within the containing bucket. It returns 0 for an
// empty snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBase * float64(uint64(1)<<(i-1))
		}
		hi := s.Max
		if i < numBuckets {
			hi = bucketBase * float64(uint64(1)<<i)
		}
		if hi > s.Max && s.Max > 0 {
			hi = s.Max
		}
		cum += float64(n)
		if cum >= rank {
			// Interpolate within [lo, hi].
			frac := 1 - (cum-rank)/float64(n)
			return lo + frac*(hi-lo)
		}
	}
	return s.Max
}

// Mean returns Sum/Count (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Summary condenses a snapshot into the quantile set the engine reports.
type Summary struct {
	Count              uint64
	Sum                float64
	Mean               float64
	P50, P90, P99, Max float64
}

// Summary computes the standard p50/p90/p99/max summary.
func (s Snapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}
