package datagen

import (
	"fmt"

	"repro/internal/dtd"
)

// proteinDTD mirrors the shape of the PIR Protein dataset used in Sec. 7:
// non-recursive, maximum document depth 7 (ProteinDatabase / ProteinEntry /
// reference / refinfo / xrefs / xref / db), attribute and text leaves.
const proteinDTD = `
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header, protein, organism, reference+, genetics?, classification?, keywords?, feature*, summary, sequence)>
<!ATTLIST ProteinEntry id CDATA #REQUIRED>
<!ELEMENT header (uid, accession+, created_date, seq-rev_date, txt-rev_date)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created_date (#PCDATA)>
<!ELEMENT seq-rev_date (#PCDATA)>
<!ELEMENT txt-rev_date (#PCDATA)>
<!ELEMENT protein (name, classification?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT classification (superfamily*)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT organism (source, common?, formal?)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo?)>
<!ELEMENT refinfo (authors, citation, volume?, year, pages?, title?, xrefs?)>
<!ATTLIST refinfo refid CDATA #REQUIRED>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT xrefs (xref+)>
<!ELEMENT xref (db, uid)>
<!ELEMENT db (#PCDATA)>
<!ELEMENT accinfo (mol-type?, seq-spec?)>
<!ATTLIST accinfo refid CDATA #IMPLIED>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT genetics (gene?, introns?)>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT introns (#PCDATA)>
<!ELEMENT keywords (keyword+)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (feature-type, description?, seq-spec?)>
<!ATTLIST feature label CDATA #IMPLIED>
<!ELEMENT feature-type (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT summary (length, type)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT sequence (#PCDATA)>
`

// nasaDTD mirrors the shape of the NASA ADC dataset: a recursive DTD
// (tableHead nests tableHead) with maximum document depth 8.
const nasaDTD = `
<!ELEMENT datasets (dataset+)>
<!ELEMENT dataset (title, altname*, abstract?, keywords?, author+, holdings?, identifier, tableHead?, history?)>
<!ATTLIST dataset subject CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT altname (#PCDATA)>
<!ATTLIST altname type CDATA #IMPLIED>
<!ELEMENT abstract (para+)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT keywords (keyword+)>
<!ATTLIST keywords parentListURL CDATA #IMPLIED>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT author (initial?, lastName, affiliation?)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT lastName (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT holdings (stars?, records?)>
<!ATTLIST holdings media CDATA #IMPLIED>
<!ELEMENT stars (#PCDATA)>
<!ELEMENT records (#PCDATA)>
<!ELEMENT identifier (#PCDATA)>
<!ELEMENT tableHead (tableLinks?, fields?, tableHead?)>
<!ELEMENT tableLinks (tableLink+)>
<!ELEMENT tableLink (#PCDATA)>
<!ATTLIST tableLink href CDATA #IMPLIED>
<!ELEMENT fields (field+)>
<!ELEMENT field (name, definition?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT definition (#PCDATA)>
<!ELEMENT history (ingest?, revisions?)>
<!ELEMENT ingest (creator, date)>
<!ELEMENT creator (lastName)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT revisions (revision*)>
<!ELEMENT revision (date, description)>
<!ELEMENT description (#PCDATA)>
`

var surnames = []string{
	"Smith", "Johnson", "Lee", "Garcia", "Kim", "Chen", "Patel", "Mueller",
	"Ivanov", "Tanaka", "Brown", "Davis", "Lopez", "Singh", "Nguyen", "Cohen",
}

var proteinNames = []string{
	"cytochrome", "hemoglobin", "myoglobin", "insulin", "ferritin",
	"keratin", "collagen", "actin", "myosin", "tubulin", "albumin",
	"lysozyme", "trypsin", "pepsin", "amylase", "catalase",
}

var keywordWords = []string{
	"oxygen", "transport", "membrane", "binding", "kinase", "receptor",
	"transferase", "hydrolase", "structural", "signal", "transcription",
	"photometry", "spectroscopy", "survey", "catalog", "infrared",
}

func words(base string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", base, i)
	}
	return out
}

// ProteinLike returns the Protein-dataset substitute.
func ProteinLike() *Dataset {
	return &Dataset{
		Name:     "protein",
		DTD:      dtd.MustParse(proteinDTD),
		DepthCap: 7,
		Pools: map[string]*Pool{
			"@id":          {Kind: StrPool, Words: words("PIR", 40000)},
			"uid":          {Kind: StrPool, Words: words("U", 30000)},
			"accession":    {Kind: StrPool, Words: words("A", 30000)},
			"created_date": {Kind: IntPool, Lo: 1980, Hi: 2003},
			"seq-rev_date": {Kind: IntPool, Lo: 1980, Hi: 2003},
			"txt-rev_date": {Kind: IntPool, Lo: 1980, Hi: 2003},
			"name":         {Kind: StrPool, Words: proteinNames, Skew: 0.4},
			"superfamily":  {Kind: StrPool, Words: words("sf", 500), Skew: 0.6},
			"source":       {Kind: StrPool, Words: words("organism", 800), Skew: 0.5},
			"common":       {Kind: StrPool, Words: words("common", 400)},
			"formal":       {Kind: StrPool, Words: words("formal", 400)},
			"author":       {Kind: StrPool, Words: surnames, Skew: 0.3},
			"citation":     {Kind: StrPool, Words: words("jrnl", 300), Skew: 0.5},
			"volume":       {Kind: IntPool, Lo: 1, Hi: 350},
			"year":         {Kind: IntPool, Lo: 1970, Hi: 2003},
			"pages":        {Kind: IntPool, Lo: 1, Hi: 2000},
			"title":        {Kind: StrPool, Words: words("title", 5000)},
			"db":           {Kind: StrPool, Words: []string{"GenBank", "EMBL", "PDB", "SwissProt", "PIR"}, Skew: 0.4},
			"@refid":       {Kind: StrPool, Words: words("R", 8000)},
			"mol-type":     {Kind: StrPool, Words: []string{"DNA", "mRNA", "protein"}},
			"seq-spec":     {Kind: StrPool, Words: words("spec", 900)},
			"gene":         {Kind: StrPool, Words: words("gene", 2000), Skew: 0.4},
			"introns":      {Kind: IntPool, Lo: 0, Hi: 40},
			"keyword":      {Kind: StrPool, Words: keywordWords, Skew: 0.5},
			"feature-type": {Kind: StrPool, Words: []string{"domain", "site", "binding", "modified", "disulfide"}},
			"description":  {Kind: StrPool, Words: words("desc", 3000)},
			"@label":       {Kind: StrPool, Words: words("lbl", 600)},
			"length":       {Kind: IntPool, Lo: 40, Hi: 3000},
			"type":         {Kind: StrPool, Words: []string{"complete", "fragment", "precursor"}},
			"sequence":     {Kind: StrPool, Words: words("MKVLAAGSQRTDEHWFYPNCIMKVLAAGSQRTDEHWFYPNCIMKVLAAGSQRTDEHWFYPNCI", 12000)},
		},
	}
}

// NASALike returns the NASA-dataset substitute (recursive DTD, depth 8).
func NASALike() *Dataset {
	return &Dataset{
		Name:     "nasa",
		DTD:      dtd.MustParse(nasaDTD),
		DepthCap: 8,
		Pools: map[string]*Pool{
			"@subject":    {Kind: StrPool, Words: []string{"astronomy", "astrometry", "photometry", "spectra"}},
			"title":       {Kind: StrPool, Words: words("survey", 4000)},
			"altname":     {Kind: StrPool, Words: words("alt", 3000)},
			"@type":       {Kind: StrPool, Words: []string{"ADC", "CDS", "brief"}},
			"para":        {Kind: StrPool, Words: words("abstract", 6000)},
			"keyword":     {Kind: StrPool, Words: keywordWords, Skew: 0.5},
			"initial":     {Kind: StrPool, Words: []string{"A", "B", "C", "D", "E", "J", "K", "M"}},
			"lastName":    {Kind: StrPool, Words: surnames, Skew: 0.3},
			"affiliation": {Kind: StrPool, Words: words("inst", 300), Skew: 0.5},
			"stars":       {Kind: IntPool, Lo: 10, Hi: 500000},
			"records":     {Kind: IntPool, Lo: 10, Hi: 1000000},
			"identifier":  {Kind: StrPool, Words: words("ID", 30000)},
			"tableLink":   {Kind: StrPool, Words: words("link", 2000)},
			"@href":       {Kind: StrPool, Words: words("href", 2000)},
			"name":        {Kind: StrPool, Words: words("field", 400), Skew: 0.4},
			"definition":  {Kind: StrPool, Words: words("def", 2500)},
			"date":        {Kind: IntPool, Lo: 1985, Hi: 2003},
			"description": {Kind: StrPool, Words: words("rev", 2500)},
		},
	}
}

// ByName returns a built-in dataset ("protein" or "nasa").
func ByName(name string) (*Dataset, bool) {
	switch name {
	case "protein":
		return ProteinLike(), true
	case "nasa":
		return NASALike(), true
	default:
		return nil, false
	}
}
