package server_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/server"
	"repro/wal"
)

// walServer wires a WAL and cursor store under dir into a loopback broker.
func walServer(t testing.TB, dir string, cfg server.Config) (*server.Server, *wal.Log, *wal.CursorStore) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cs, err := wal.OpenCursorStore(filepath.Join(filepath.Dir(dir), "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = server.WrapWAL(l)
	cfg.Cursors = cs
	return startServer(t, cfg), l, cs
}

// durCollector gathers durable deliveries with their log offsets.
type durCollector struct {
	mu   sync.Mutex
	docs []string
	offs []uint64
}

func (c *durCollector) deliver(d client.Delivery) {
	if !d.Durable {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = append(c.docs, string(d.Doc))
	c.offs = append(c.offs, d.Offset)
}

func (c *durCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.docs)
}

func (c *durCollector) at(i int) (string, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.docs[i], c.offs[i]
}

func dialDur(t testing.TB, addr string, col *durCollector) *client.Client {
	t.Helper()
	opt := client.Options{Timeout: 5 * time.Second}
	if col != nil {
		opt.OnDeliver = col.deliver
	}
	c, err := client.Dial(addr, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func matchDoc(i int) []byte {
	return []byte(fmt.Sprintf(`<order seq="%d"><total>2000</total></order>`, i))
}

func missDoc(i int) []byte {
	return []byte(fmt.Sprintf(`<order seq="%d"><total>5</total></order>`, i))
}

// TestDurableSubscribeDeliverAck is the happy path: durable deliveries carry
// log offsets, acks persist the cursor, and a reconnect under the same name
// replays exactly the unacked matches.
func TestDurableSubscribeDeliverAck(t *testing.T) {
	base := t.TempDir()
	srv, _, cs := walServer(t, filepath.Join(base, "wal"), server.Config{})

	col := &durCollector{}
	sub := dialDur(t, srv.Addr(), col)
	id, resume, err := sub.SubscribeDurable("billing", `//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	if resume != 0 {
		t.Fatalf("resume = %d on an empty log", resume)
	}
	_ = id

	pub := dialDur(t, srv.Addr(), nil)
	// Interleave matches and misses; every publish lands in the log, only
	// matches are delivered.
	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(matchDoc(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := pub.Publish(missDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "10 durable deliveries", func() bool { return col.count() >= 10 })
	if col.count() != 10 {
		t.Fatalf("delivered %d docs, want 10", col.count())
	}
	// Offsets are the even log offsets (matches were published first in
	// each pair) and strictly increasing.
	for i := 0; i < 10; i++ {
		doc, off := col.at(i)
		if off != uint64(2*i) {
			t.Fatalf("delivery %d at offset %d, want %d", i, off, 2*i)
		}
		if want := string(matchDoc(i)); doc != want {
			t.Fatalf("delivery %d = %q, want %q", i, doc, want)
		}
	}

	// Ack through the 6th match (log offset 10): cursor becomes 11.
	_, ackOff := col.at(5)
	if err := sub.Ack(ackOff); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cursor persisted", func() bool {
		got, ok, err := cs.Load("billing")
		return err == nil && ok && got == ackOff+1
	})

	// Reconnect: replay must hold exactly the 4 unacked matches.
	sub.Close()
	col2 := &durCollector{}
	sub2 := dialDur(t, srv.Addr(), col2)
	_, resume2, err := sub2.SubscribeDurable("billing", `//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	if resume2 != ackOff+1 {
		t.Fatalf("resume after reconnect = %d, want %d", resume2, ackOff+1)
	}
	waitFor(t, "4 replayed deliveries", func() bool { return col2.count() >= 4 })
	for i := 0; i < 4; i++ {
		doc, _ := col2.at(i)
		if want := string(matchDoc(6 + i)); doc != want {
			t.Fatalf("replayed %d = %q, want %q", i, doc, want)
		}
	}
	// And the live tail still flows after replay.
	if _, err := pub.Publish(matchDoc(99)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live delivery after replay", func() bool { return col2.count() >= 5 })
	if doc, _ := col2.at(4); doc != string(matchDoc(99)) {
		t.Fatalf("live doc = %q", doc)
	}
}

// TestDurableResumeBeforeFirstAck: the subscription point is persisted at
// SUBSCRIBE_DURABLE time, so a subscriber that disconnects before its first
// ack resumes from where it subscribed — not from the tail — and misses
// nothing published while it was away.
func TestDurableResumeBeforeFirstAck(t *testing.T) {
	base := t.TempDir()
	srv, _, cs := walServer(t, filepath.Join(base, "wal"), server.Config{})

	// Pre-existing traffic moves the tail off zero.
	pub := dialDur(t, srv.Addr(), nil)
	for i := 0; i < 3; i++ {
		if _, err := pub.Publish(missDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	sub := dialDur(t, srv.Addr(), nil)
	_, resume, err := sub.SubscribeDurable("orders", `//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	if resume != 3 {
		t.Fatalf("resume = %d, want 3", resume)
	}
	// The subscription point is on disk immediately, before any ack.
	if got, ok, err := cs.Load("orders"); err != nil || !ok || got != 3 {
		t.Fatalf("cursor after subscribe = (%d, %v, %v), want (3, true, nil)", got, ok, err)
	}

	// Disconnect without ever acking, publish while away, reconnect.
	sub.Close()
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(matchDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	col := &durCollector{}
	sub2 := dialDur(t, srv.Addr(), col)
	_, resume2, err := sub2.SubscribeDurable("orders", `//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	if resume2 != 3 {
		t.Fatalf("resume after reconnect = %d, want 3", resume2)
	}
	waitFor(t, "docs published while away replayed", func() bool { return col.count() >= 5 })
	for i := 0; i < 5; i++ {
		if doc, _ := col.at(i); doc != string(matchDoc(i)) {
			t.Fatalf("replay %d = %q, want %q", i, doc, matchDoc(i))
		}
	}
}

// TestDurableCrashRecovery is the acceptance scenario: a broker dies
// mid-append (torn tail on disk), restarts over the same directories, and a
// reconnecting durable subscriber receives every unacked match — with the
// torn record truncated, verified by the log-integrity check.
func TestDurableCrashRecovery(t *testing.T) {
	base := t.TempDir()
	walDir := filepath.Join(base, "wal")
	srv, _, cs := walServer(t, walDir, server.Config{})

	col := &durCollector{}
	sub := dialDur(t, srv.Addr(), col)
	if _, _, err := sub.SubscribeDurable("audit", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	pub := dialDur(t, srv.Addr(), nil)
	for i := 0; i < 20; i++ {
		if _, err := pub.Publish(matchDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "20 durable deliveries", func() bool { return col.count() >= 20 })
	_, ackOff := col.at(10) // ack through the 11th doc
	if err := sub.Ack(ackOff); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cursor persisted", func() bool {
		got, ok, err := cs.Load("audit")
		return err == nil && ok && got == ackOff+1
	})

	// "Crash": kill the broker without draining, then tear the log's tail
	// as an interrupted append would — a record header promising 100
	// payload bytes with only 10 present.
	sub.Close()
	pub.Close()
	srv.Close()
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0, 0, 0, 100, 0xde, 0xad, 0xbe, 0xef}, []byte("tornrecord")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Log-integrity check before restart: the tail is torn, the 20 real
	// records are intact.
	v, err := wal.Verify(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Torn || v.NextOffset != 20 {
		t.Fatalf("pre-restart Verify = %+v, want torn with 20 records", v)
	}

	// Restart over the same directories: recovery truncates the torn tail.
	srv2, _, _ := walServer(t, walDir, server.Config{})
	if v, err = wal.Verify(walDir); err != nil || v.Torn || v.NextOffset != 20 {
		t.Fatalf("post-restart Verify = %+v, %v; want clean 20 records", v, err)
	}

	col2 := &durCollector{}
	sub2 := dialDur(t, srv2.Addr(), col2)
	_, resume, err := sub2.SubscribeDurable("audit", `//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	if resume != ackOff+1 {
		t.Fatalf("resume = %d, want %d", resume, ackOff+1)
	}
	want := 20 - int(ackOff+1)
	waitFor(t, "unacked docs replayed", func() bool { return col2.count() >= want })
	if col2.count() != want {
		t.Fatalf("replayed %d docs, want %d", col2.count(), want)
	}
	for i := 0; i < want; i++ {
		doc, off := col2.at(i)
		if off != ackOff+1+uint64(i) || doc != string(matchDoc(int(ackOff)+1+i)) {
			t.Fatalf("replay %d = (%d, %q)", i, off, doc)
		}
	}
}

// flakyLog injects append failures through the DocLog seam.
type flakyLog struct {
	server.DocLog
	fail atomic.Bool
}

func (f *flakyLog) Append(doc []byte) (uint64, error) {
	if f.fail.Load() {
		return 0, errors.New("injected disk failure")
	}
	return f.DocLog.Append(doc)
}

// TestDurableFailingWriter: when the log cannot accept writes, publishes
// fail cleanly (the error names the WAL) and the broker stays up — pings
// and control-plane traffic keep working, and publishes recover when the
// disk does.
func TestDurableFailingWriter(t *testing.T) {
	base := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: filepath.Join(base, "wal"), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	cs, err := wal.OpenCursorStore(filepath.Join(base, "cursors"))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyLog{DocLog: server.WrapWAL(l)}
	srv := startServer(t, server.Config{WAL: flaky, Cursors: cs})

	c := dialDur(t, srv.Addr(), nil)
	if _, err := c.Publish(matchDoc(0)); err != nil {
		t.Fatalf("publish before failure: %v", err)
	}
	flaky.fail.Store(true)
	_, err = c.Publish(matchDoc(1))
	if err == nil || !strings.Contains(err.Error(), "wal append") {
		t.Fatalf("publish during failure = %v, want a wal append error", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping during disk failure: %v", err)
	}
	if _, err := c.Subscribe(`//a`); err != nil {
		t.Fatalf("subscribe during disk failure: %v", err)
	}
	flaky.fail.Store(false)
	if _, err := c.Publish(matchDoc(2)); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	// Exactly the two successful publishes are in the log.
	if n := l.NextOffset(); n != 2 {
		t.Fatalf("log holds %d records, want 2", n)
	}
}

// TestDurableNameTakeover: a reconnect under a live name steals it — the old
// session is closed and only the new one receives deliveries.
func TestDurableNameTakeover(t *testing.T) {
	base := t.TempDir()
	srv, _, _ := walServer(t, filepath.Join(base, "wal"), server.Config{})

	col1 := &durCollector{}
	old := dialDur(t, srv.Addr(), col1)
	if _, _, err := old.SubscribeDurable("feed", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	col2 := &durCollector{}
	fresh := dialDur(t, srv.Addr(), col2)
	if _, _, err := fresh.SubscribeDurable("feed", `//order[total > 1000]`); err != nil {
		t.Fatal(err)
	}
	select {
	case <-old.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("old session not closed on takeover")
	}
	pub := dialDur(t, srv.Addr(), nil)
	if _, err := pub.Publish(matchDoc(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery to the new session", func() bool { return col2.count() >= 1 })
	if col1.count() != 0 {
		t.Fatalf("old session received %d deliveries after takeover", col1.count())
	}
}

// TestDurableRequiresWAL: a broker without a log rejects durable
// subscriptions but otherwise works.
func TestDurableRequiresWAL(t *testing.T) {
	srv := startServer(t, server.Config{})
	c := dialDur(t, srv.Addr(), nil)
	if _, _, err := c.SubscribeDurable("x", `//a`); err == nil {
		t.Fatal("durable subscribe accepted without a WAL")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after rejected durable subscribe: %v", err)
	}
}

// TestDurableSecondFilterSharesPump: multiple durable filters on one
// connection ride the same replay stream and each match only its own docs.
func TestDurableSecondFilterSharesPump(t *testing.T) {
	base := t.TempDir()
	srv, _, _ := walServer(t, filepath.Join(base, "wal"), server.Config{})
	col := &durCollector{}
	sub := dialDur(t, srv.Addr(), col)
	id1, _, err := sub.SubscribeDurable("multi", `//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := sub.SubscribeDurable("multi", `//order[@rush = "yes"]`)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("duplicate filter ids %d", id1)
	}
	pub := dialDur(t, srv.Addr(), nil)
	if _, err := pub.Publish([]byte(`<order rush="yes"><total>2000</total></order>`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "combined delivery", func() bool { return col.count() >= 1 })
	// One document, one DeliverAt frame, both filter ids in it.
	if col.count() != 1 {
		t.Fatalf("%d deliveries for one doc", col.count())
	}
	// A second name on the same connection is rejected.
	if _, _, err := sub.SubscribeDurable("other", `//a`); err == nil {
		t.Fatal("second durable name accepted on one connection")
	}
}

// BenchmarkServeDurableLoopback measures end-to-end durable delivery over
// loopback TCP per fsync policy: publisher → WAL append → pump re-filter →
// DeliverAt → ack. Reported latency is publish-call to OnDeliver.
func BenchmarkServeDurableLoopback(b *testing.B) {
	for _, pol := range []wal.FsyncPolicy{wal.FsyncInterval, wal.FsyncNever} {
		b.Run("fsync="+string(pol), func(b *testing.B) {
			base := b.TempDir()
			l, err := wal.Open(wal.Options{Dir: filepath.Join(base, "wal"), Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			cs, err := wal.OpenCursorStore(filepath.Join(base, "cursors"))
			if err != nil {
				b.Fatal(err)
			}
			srv := startServer(b, server.Config{WAL: server.WrapWAL(l), Cursors: cs})

			var mu sync.Mutex
			var lats []time.Duration
			var sent []time.Time
			got := make(chan uint64, 1024)
			sub, err := client.Dial(srv.Addr(), client.Options{
				Timeout: 10 * time.Second,
				OnDeliver: func(d client.Delivery) {
					mu.Lock()
					i := int(d.Offset)
					if i < len(sent) {
						lats = append(lats, time.Since(sent[i]))
					}
					mu.Unlock()
					got <- d.Offset
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Close()
			if _, _, err := sub.SubscribeDurable("bench", `//order[total > 1000]`); err != nil {
				b.Fatal(err)
			}
			pub := dialDur(b, srv.Addr(), nil)
			doc := []byte(`<order id="7" priority="high"><customer><country>DE</country></customer><total>2500</total></order>`)
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Lock()
				sent = append(sent, time.Now())
				mu.Unlock()
				if _, err := pub.Publish(doc); err != nil {
					b.Fatal(err)
				}
				off := <-got
				if err := sub.Ack(off); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/sec")
			mu.Lock()
			defer mu.Unlock()
			if len(lats) > 0 {
				var sum time.Duration
				for _, d := range lats {
					sum += d
				}
				b.ReportMetric(float64(sum.Microseconds())/float64(len(lats)), "deliver_µs/op")
			}
		})
	}
}
