package xpath

import "testing"

// FuzzParse checks that the parser never panics and that accepted filters
// survive a print/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"//a[b/text()=1 and .//a[@c>2]]",
		"/a[not(b=1 or c='x') and d]",
		"/a[contains(b, 'x') or starts-with(@c, 'y')]",
		"/*[@*=1]/text()",
		"/a[b[c[d=1]]]",
		"/a[.=5][text()=6]",
		"//",
		"/a[",
		"/a[b!<1]",
		"/a[b=1e309]",
		"/and/or[not=1]",
		"/a[b = -3.5 and c >= 'm']",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		filter, err := Parse(input)
		if err != nil {
			return
		}
		printed := filter.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed, input, err)
		}
		if !filter.Equal(again) {
			t.Fatalf("round trip changed AST: %q -> %q -> %q", input, printed, again.String())
		}
		// Derived measures must not panic and must be consistent.
		if n := filter.CountAtomicPredicates(); n < 1 {
			t.Fatalf("CountAtomicPredicates(%q) = %d", input, n)
		}
		_ = filter.HasDescendant()
	})
}
