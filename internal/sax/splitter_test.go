package sax

import (
	"io"
	"strings"
	"testing"
)

func splitAll(t *testing.T, input string) []string {
	t.Helper()
	var out []string
	err := StreamDocuments(strings.NewReader(input), func(doc []byte) error {
		out = append(out, string(doc))
		return nil
	})
	if err != nil {
		t.Fatalf("StreamDocuments(%q): %v", input, err)
	}
	return out
}

func TestSplitterBasic(t *testing.T) {
	docs := splitAll(t, `<a>1</a><b><c/></b> <d x="1"/>`)
	if len(docs) != 3 {
		t.Fatalf("docs = %v", docs)
	}
	if docs[0] != "<a>1</a>" || docs[2] != `<d x="1"/>` {
		t.Errorf("docs = %q", docs)
	}
}

func TestSplitterTrickyContent(t *testing.T) {
	input := `<?xml version="1.0"?>
<!DOCTYPE a [ <!ELEMENT a ANY> ]>
<a attr="quoted > bracket" other='/>'>
  <!-- a comment with </a> inside -->
  <![CDATA[ raw </a> text ]]>
  <b>text</b>
</a><second/>`
	docs := splitAll(t, input)
	if len(docs) != 2 {
		t.Fatalf("docs = %d: %q", len(docs), docs)
	}
	if !strings.Contains(docs[0], "CDATA") || !strings.HasSuffix(docs[0], "</a>") {
		t.Errorf("doc 0 = %q", docs[0])
	}
	if strings.TrimSpace(docs[1]) != "<second/>" {
		t.Errorf("doc 1 = %q", docs[1])
	}
	// The split documents must themselves parse.
	for _, d := range docs {
		var c Collector
		if err := Parse([]byte(d), &c); err != nil {
			t.Errorf("split doc unparsable: %v\n%s", err, d)
		}
	}
}

func TestSplitterSelfClosingRoot(t *testing.T) {
	docs := splitAll(t, `<a/><b/>`)
	if len(docs) != 2 || docs[0] != "<a/>" || docs[1] != "<b/>" {
		t.Errorf("docs = %q", docs)
	}
}

func TestSplitterNestedSameName(t *testing.T) {
	docs := splitAll(t, `<a><a><a/></a></a><a/>`)
	if len(docs) != 2 {
		t.Fatalf("docs = %q", docs)
	}
}

func TestSplitterEmpty(t *testing.T) {
	if docs := splitAll(t, "   \n  "); len(docs) != 0 {
		t.Errorf("docs = %q", docs)
	}
	if docs := splitAll(t, ""); len(docs) != 0 {
		t.Errorf("docs = %q", docs)
	}
}

func TestSplitterErrors(t *testing.T) {
	bad := []string{
		`<a><b></b>`,      // unclosed root
		`<a`,              // truncated tag
		`</a>`,            // end tag first
		`<a><!-- nope`,    // unterminated comment
		`<a attr="open`,   // unterminated attribute
		`<a><![CDATA[ x`,  // unterminated CDATA
		`<?pi never ends`, // unterminated PI
	}
	for _, in := range bad {
		err := StreamDocuments(strings.NewReader(in), func([]byte) error { return nil })
		if err == nil {
			t.Errorf("StreamDocuments(%q) succeeded", in)
		}
	}
}

func TestSplitterSizeBound(t *testing.T) {
	sp := NewSplitter(strings.NewReader("<a>" + strings.Repeat("x", 1000) + "</a>"))
	sp.MaxDocBytes = 100
	if _, err := sp.Next(); err == nil {
		t.Error("size bound not enforced")
	}
}

func TestSplitterHandlerError(t *testing.T) {
	wantErr := io.ErrClosedPipe
	err := StreamDocuments(strings.NewReader("<a/><b/>"), func(doc []byte) error {
		return wantErr
	})
	if err != wantErr {
		t.Errorf("err = %v", err)
	}
}

// TestSplitterAgainstScanner: splitting then parsing per document must give
// the same events as parsing the concatenated stream at once.
func TestSplitterAgainstScanner(t *testing.T) {
	input := `<a c="1"><b>t</b></a><x><!-- c --><y p='2'>v</y></x><z/>`
	var whole Collector
	if err := Parse([]byte(input), &whole); err != nil {
		t.Fatal(err)
	}
	var split Collector
	err := StreamDocuments(strings.NewReader(input), func(doc []byte) error {
		return Parse(doc, &split)
	})
	if err != nil {
		t.Fatal(err)
	}
	if eventString(whole.Events) != eventString(split.Events) {
		t.Errorf("events differ:\n whole %s\n split %s",
			eventString(whole.Events), eventString(split.Events))
	}
}

func TestSplitterLargeStream(t *testing.T) {
	// Many small documents through a small bufio buffer.
	var sb strings.Builder
	const n = 5000
	for i := 0; i < n; i++ {
		sb.WriteString(`<doc id="`)
		sb.WriteString(strings.Repeat("x", i%17))
		sb.WriteString(`"><v>1</v></doc>`)
	}
	count := 0
	err := StreamDocuments(strings.NewReader(sb.String()), func(doc []byte) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
}
