package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestDisabledRecorderIsNil(t *testing.T) {
	if r := New(0, 0); r != nil {
		t.Fatalf("New(0,0) = %v, want nil", r)
	}
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if tc := r.Begin("publish"); tc != nil {
		t.Fatalf("nil recorder Begin = %v, want nil", tc)
	}
	if got := r.Traces(); got != nil {
		t.Fatalf("nil recorder Traces = %v", got)
	}
	if got := r.SlowTraces(); got != nil {
		t.Fatalf("nil recorder SlowTraces = %v", got)
	}
	if s := r.Stats(); s != (RecorderStats{}) {
		t.Fatalf("nil recorder Stats = %+v", s)
	}
}

func TestNilCtxMethodsAreNoOps(t *testing.T) {
	var c *Ctx
	id := c.StartSpan("x", Root)
	if id != NoSpan {
		t.Fatalf("nil ctx StartSpan = %d, want NoSpan", id)
	}
	c.EndSpan(id)
	c.SetAttr(id, "k", 1)
	c.SetTrack(id, 3)
	c.AddSpan("y", Root, 0, 10)
	c.StartSpanAt("z", Root, time.Now())
	c.Ref()
	c.Finish()
	if c.NextTrack() != 0 {
		t.Fatal("nil ctx NextTrack != 0")
	}
	if c.Offset(time.Now()) != 0 {
		t.Fatal("nil ctx Offset != 0")
	}
	if c.Spans() != nil {
		t.Fatal("nil ctx Spans != nil")
	}
}

// The disabled path must not allocate: this is the hot-path contract that
// keeps TestWarmRunZeroAllocs green with tracing compiled in.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		tc := r.Begin("publish")
		sp := tc.StartSpan("filter", Root)
		tc.SetAttr(sp, "matches", 3)
		tc.EndSpan(sp)
		tc.Ref()
		tc.Finish()
		tc.Finish()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f allocs/op, want 0", allocs)
	}
}

// Head sampling with period N must also skip allocation on unsampled
// documents when tail capture is off.
func TestUnsampledPathZeroAllocs(t *testing.T) {
	r := New(1<<30, 0) // effectively never samples within the run
	r.Begin("warm")    // consume seq 1 alignment
	allocs := testing.AllocsPerRun(1000, func() {
		tc := r.Begin("publish")
		if tc != nil {
			t.Fatal("unexpected sampled trace")
		}
		tc.Finish()
	})
	if allocs != 0 {
		t.Fatalf("unsampled tracing allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestHeadSamplingPeriod(t *testing.T) {
	r := New(4, 0)
	var sampled int
	for i := 0; i < 40; i++ {
		if tc := r.Begin("doc"); tc != nil {
			sampled++
			tc.Finish()
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 with period 4, want 10", sampled)
	}
	if got := len(r.Traces()); got != 10 {
		t.Fatalf("ring holds %d traces, want 10", got)
	}
}

func TestSpanRecordingAndFinish(t *testing.T) {
	r := New(1, 0)
	tc := r.Begin("publish")
	if tc == nil {
		t.Fatal("expected sampled trace with period 1")
	}
	wal := tc.StartSpan("wal_append", Root)
	tc.SetAttr(wal, "bytes", 128)
	tc.SetAttr(wal, "bytes", 256) // overwrite, not duplicate
	tc.EndSpan(wal)
	fl := tc.StartSpan("filter", Root)
	tc.SetAttr(fl, "matches", 2)
	tc.EndSpan(fl)
	open := tc.StartSpan("deliver_write", Root) // left open: closed by Finish
	_ = open
	tc.Finish()

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Total <= 0 {
		t.Fatalf("Total = %v, want > 0", got.Total)
	}
	spans := got.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4 (root + 3)", len(spans))
	}
	if spans[0].Name != "publish" || spans[0].Parent != NoSpan {
		t.Fatalf("root span = %+v", spans[0])
	}
	attrs := spans[1].Attrs()
	if len(attrs) != 1 || attrs[0] != (Attr{Key: "bytes", Val: 256}) {
		t.Fatalf("wal attrs = %+v, want single bytes=256", attrs)
	}
	for i, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %d (%s) not closed: start=%d end=%d", i, s.Name, s.Start, s.End)
		}
	}
}

func TestRefCountingDelaysCompletion(t *testing.T) {
	r := New(1, 0)
	tc := r.Begin("publish")
	tc.Ref() // a pending delivery holds the trace open
	tc.Finish()
	if got := len(r.Traces()); got != 0 {
		t.Fatalf("trace completed with an outstanding ref (ring=%d)", got)
	}
	tc.Finish()
	if got := len(r.Traces()); got != 1 {
		t.Fatalf("trace not completed after last ref (ring=%d)", got)
	}
}

func TestSlowTailCapture(t *testing.T) {
	r := New(0, 5*time.Millisecond)
	fast := r.Begin("doc")
	if fast == nil {
		t.Fatal("tail capture must trace every doc")
	}
	if fast.Sampled {
		t.Fatal("tail-captured trace must not be marked sampled")
	}
	fast.Finish() // completes immediately: under threshold, dropped
	slow := r.Begin("doc")
	time.Sleep(10 * time.Millisecond)
	slow.Finish()

	if got := len(r.Traces()); got != 0 {
		t.Fatalf("sampling off but sampled ring has %d traces", got)
	}
	st := r.SlowTraces()
	if len(st) != 1 {
		t.Fatalf("slow ring has %d traces, want 1", len(st))
	}
	if !st[0].Slow || st[0].Total < 5*time.Millisecond {
		t.Fatalf("slow trace = slow:%v total:%v", st[0].Slow, st[0].Total)
	}
	s := r.Stats()
	if s.Started != 2 || s.Kept != 1 || s.Slow != 1 {
		t.Fatalf("stats = %+v, want started:2 kept:1 slow:1", s)
	}
}

func TestSpanOverflowTruncates(t *testing.T) {
	r := New(1, 0)
	tc := r.Begin("doc")
	for i := 0; i < MaxSpans+10; i++ {
		sp := tc.StartSpan("s", Root)
		tc.EndSpan(sp)
	}
	tc.Finish()
	got := r.Traces()[0]
	if n := len(got.Spans()); n != MaxSpans {
		t.Fatalf("span count = %d, want %d", n, MaxSpans)
	}
	// MaxSpans includes the root span, so 11 starts overflow.
	if tr := got.Truncated(); tr != 11 {
		t.Fatalf("truncated = %d, want 11", tr)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(1, 0)
	for i := 0; i < ringSize+16; i++ {
		r.Begin("doc").Finish()
	}
	traces := r.Traces()
	if len(traces) != ringSize {
		t.Fatalf("ring holds %d, want %d", len(traces), ringSize)
	}
	// Newest trace (highest id) must be present; the very first must be gone.
	var maxID, minID uint64 = 0, 1 << 62
	for _, c := range traces {
		if c.ID > maxID {
			maxID = c.ID
		}
		if c.ID < minID {
			minID = c.ID
		}
	}
	if maxID != ringSize+16 {
		t.Fatalf("newest id = %d, want %d", maxID, ringSize+16)
	}
	if minID != 17 {
		t.Fatalf("oldest id = %d, want 17", minID)
	}
}

func TestCollectDedupsAcrossRings(t *testing.T) {
	r := New(1, time.Nanosecond) // everything sampled AND everything slow
	tc := r.Begin("doc")
	time.Sleep(time.Millisecond)
	tc.Finish()
	all := r.Collect()
	if len(all) != 1 {
		t.Fatalf("Collect = %d traces, want 1 (dedup across rings)", len(all))
	}
	if !all[0].Slow || !all[0].Sampled {
		t.Fatalf("trace flags = slow:%v sampled:%v", all[0].Slow, all[0].Sampled)
	}
}

func TestAddSpanAndOffsets(t *testing.T) {
	r := New(1, 0)
	tc := r.Begin("doc")
	id := tc.AddSpan("queue_wait", Root, 100, 250)
	tc.Finish()
	spans := r.Traces()[0].Spans()
	s := spans[id]
	if s.Start != 100 || s.End != 250 || s.Dur() != 150 {
		t.Fatalf("AddSpan span = %+v", s)
	}
	// Negative and inverted ranges are clamped, never panic.
	tc2 := r.Begin("doc")
	id2 := tc2.AddSpan("x", Root, -5, -10)
	tc2.Finish()
	s2 := r.Traces()[1].Spans()[id2]
	if s2.Start != 0 || s2.End != 0 {
		t.Fatalf("clamped span = %+v", s2)
	}
}

func TestTracksAreDistinct(t *testing.T) {
	r := New(1, 0)
	tc := r.Begin("doc")
	t1 := tc.NextTrack()
	t2 := tc.NextTrack()
	if t1 == 0 || t2 == 0 || t1 == t2 {
		t.Fatalf("tracks %d,%d should be distinct and nonzero", t1, t2)
	}
	sp := tc.StartSpan("deliver", Root)
	tc.SetTrack(sp, t2)
	tc.Finish()
	if got := r.Traces()[0].Spans()[sp].Track; got != t2 {
		t.Fatalf("span track = %d, want %d", got, t2)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := New(1, time.Nanosecond)
	tc := r.Begin("publish")
	sp := tc.StartSpan("filter", Root)
	tc.SetAttr(sp, "matches", 7)
	tc.EndSpan(sp)
	time.Sleep(time.Millisecond)
	tc.Finish()

	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces", nil))
	if rw.Code != 200 {
		t.Fatalf("status = %d", rw.Code)
	}
	var p struct {
		Enabled     bool  `json:"enabled"`
		SampleEvery int   `json:"sample_every"`
		SlowNS      int64 `json:"slow_threshold_ns"`
		Traces      []struct {
			Kind  string `json:"kind"`
			Spans []struct {
				Name  string `json:"name"`
				DurNS int64  `json:"dur_ns"`
				Attrs []Attr `json:"attrs"`
			} `json:"spans"`
		} `json:"traces"`
		SlowTraces []json.RawMessage `json:"slow_traces"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rw.Body.String())
	}
	if !p.Enabled || p.SampleEvery != 1 || p.SlowNS != 1 {
		t.Fatalf("config = %+v", p)
	}
	if len(p.Traces) != 1 || len(p.SlowTraces) != 1 {
		t.Fatalf("traces=%d slow=%d, want 1/1", len(p.Traces), len(p.SlowTraces))
	}
	tr := p.Traces[0]
	if tr.Kind != "publish" || len(tr.Spans) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Spans[1].Attrs[0] != (Attr{Key: "matches", Val: 7}) {
		t.Fatalf("filter attrs = %+v", tr.Spans[1].Attrs)
	}
}

func TestNilHandlerReportsDisabled(t *testing.T) {
	var r *Recorder
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces", nil))
	var p struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if p.Enabled {
		t.Fatal("nil recorder handler reports enabled")
	}
}

func TestWriteChromeFormat(t *testing.T) {
	r := New(1, 0)
	tc := r.Begin("publish")
	sp := tc.StartSpan("filter", Root)
	tc.SetAttr(sp, "states_created", 12)
	tc.EndSpan(sp)
	tc.Finish()

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome dump is not a JSON array: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event missing ts: %v", ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("event missing dur: %v", ev)
			}
			args := ev["args"].(map[string]any)
			if _, ok := args["trace_id"]; !ok {
				t.Fatalf("event missing trace_id arg: %v", ev)
			}
			if ev["name"] == "filter" && args["states_created"] != float64(12) {
				t.Fatalf("filter args = %v", args)
			}
		case "M":
			meta++
		}
	}
	if complete != 2 || meta != 1 {
		t.Fatalf("complete=%d meta=%d, want 2/1", complete, meta)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty dump invalid: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty dump has %d events", len(events))
	}
}

// Concurrent span writes from multiple goroutines (publish thread plus
// delivery consumers) must be safe; run under -race.
func TestConcurrentSpansAndReaders(t *testing.T) {
	r := New(1, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tc := r.Begin("doc")
				for k := 0; k < 3; k++ {
					tc.Ref()
					go func() {
						sp := tc.StartSpan("deliver", Root)
						tc.SetAttr(sp, "n", 1)
						tc.EndSpan(sp)
						tc.Finish()
					}()
				}
				tc.Finish()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, c := range r.Collect() {
				_ = c.Spans()
			}
			var buf bytes.Buffer
			_ = r.WriteChrome(&buf)
		}
	}()
	wg.Wait()
	<-done
}
