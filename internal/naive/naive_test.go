package naive

import (
	"fmt"
	"testing"

	"repro/internal/xpath"
)

func mustBuild(t *testing.T, doc string) *Node {
	t.Helper()
	docs, err := Build([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("docs = %d", len(docs))
	}
	return docs[0]
}

func TestRunningExample(t *testing.T) {
	// Both P1 and P2 match the Fig. 3 document.
	doc := mustBuild(t, `<a> <b> 1 </b> <a c="3"> <b> 1 </b> </a> </a>`)
	p1 := xpath.MustParse("//a[b/text()=1 and .//a[@c>2]]")
	p2 := xpath.MustParse("//a[@c>2 and b/text()=1]")
	if !Matches(p1, doc) {
		t.Error("P1 should match")
	}
	if !Matches(p2, doc) {
		t.Error("P2 should match")
	}
}

func TestMatrix(t *testing.T) {
	cases := []struct {
		query string
		doc   string
		want  bool
	}{
		{"/a", "<a/>", true},
		{"/a", "<b/>", false},
		{"/a/b", "<a><b/></a>", true},
		{"/a/b", "<a><c><b/></c></a>", false},
		{"//b", "<a><c><b/></c></a>", true},
		{"/a//b", "<a><b/></a>", true}, // children are descendants
		{"/a//b", "<b><a/></b>", false},
		{"/*", "<z/>", true},
		{"/a/*", "<a><x/></a>", true},
		{"/a/*", "<a>text</a>", false}, // * selects elements only
		{"/a/@c", `<a c="1"/>`, true},
		{"/a/@c", `<a d="1"/>`, false},
		{"/a/@*", `<a d="1"/>`, true},
		{"/a/@*", `<a/>`, false},
		{"/a/text()", "<a>x</a>", true},
		{"/a/text()", "<a><b/></a>", false},
		{"/a[b]", "<a><b/></a>", true},
		{"/a[b]", "<a><c/></a>", false},
		{"/a[b=1]", "<a><b>1</b></a>", true},
		{"/a[b=1]", "<a><b>2</b></a>", false},
		{"/a[b=1]", "<a><b>2</b><b>1</b></a>", true}, // existential
		{"/a[b/text()=1]", "<a><b>1</b></a>", true},
		{"/a[b!=1]", "<a><b>2</b></a>", true},
		{"/a[b!=1]", "<a><b>1</b></a>", false},
		{"/a[b!=1]", "<a><b>x</b></a>", false}, // incomparable
		{"/a[b<5 and b>2]", "<a><b>3</b></a>", true},
		{"/a[b<5 and b>2]", "<a><b>7</b></a>", false},
		// Two different b's can satisfy the two conjuncts (existential
		// per-predicate, matching the machine).
		{"/a[b<3 and b>4]", "<a><b>2</b><b>5</b></a>", true},
		{"/a[b=1 or c=2]", "<a><c>2</c></a>", true},
		{"/a[b=1 or c=2]", "<a><c>3</c></a>", false},
		{"/a[not(b=1)]", "<a><b>2</b></a>", true},
		{"/a[not(b=1)]", "<a><b>1</b></a>", false},
		{"/a[not(b=1)]", "<a/>", true}, // universal: no b at all
		{"/a[not(not(b=1))]", "<a><b>1</b></a>", true},
		{"/a[not(not(b=1))]", "<a/>", false},
		{"/a[.=5]", "<a>5</a>", true},
		{"/a[.=5]", "<a>6</a>", false},
		{"/a[text()=5]", "<a>5</a>", true},
		{"/a[@c>2]", `<a c="3"/>`, true},
		{"/a[@c>2]", `<a c="2"/>`, false},
		{"/a[@c>2 and text()=1]", `<a c="3">1</a>`, true},
		{"//a[b/text()=1 and .//a[@c>2]]", `<a><b>1</b><a c="3"><b>1</b></a></a>`, true},
		{"//a[b/text()=1 and .//a[@c>2]]", `<a><b>1</b></a>`, false},
		{"/a[b[c=1]]", "<a><b><c>1</c></b></a>", true},
		{"/a[b[c=1]]", "<a><b><c>2</c></b></a>", false},
		{"/a[.//x=9]", "<a><p><q><x>9</x></q></p></a>", true},
		{"/a/b[c=1]/d", "<a><b><c>1</c><d/></b></a>", true},
		{"/a/b[c=1]/d", "<a><b><c>2</c><d/></b></a>", false},
		{"/a/b[c=1]/d", "<a><b><c>1</c></b><b><d/></b></a>", false},
		{"/a[b='x y']", "<a><b>x y</b></a>", true},
		{"/a[b>'m']", "<a><b>z</b></a>", true},
		{"/a[b>'m']", "<a><b>a</b></a>", false},
		{"/a[contains(b, 'ell')]", "<a><b>hello</b></a>", true},
		{"/a[starts-with(b, 'he')]", "<a><b>hello</b></a>", true},
		{"/a[starts-with(b, 'el')]", "<a><b>hello</b></a>", false},
		{"/a[.//text()='x']", "<a><p><q>x</q></p></a>", true},
		{"/a[b][c]", "<a><b/><c/></a>", true},
		{"/a[b][c]", "<a><b/></a>", false},
		// Attribute + text side by side (the Sec. 3.2 requirement).
		{"/a[@c=2 and .=1]", `<a c="2">1</a>`, true},
	}
	for _, tc := range cases {
		doc := mustBuild(t, tc.doc)
		f := xpath.MustParse(tc.query)
		if got := Matches(f, doc); got != tc.want {
			t.Errorf("Matches(%s, %s) = %v, want %v", tc.query, tc.doc, got, tc.want)
		}
	}
}

func TestEngine(t *testing.T) {
	e := NewEngine([]*xpath.Filter{
		xpath.MustParse("/a[b=1]"),
		xpath.MustParse("/a[b=2]"),
		xpath.MustParse("//b"),
	})
	got, err := e.FilterDocument([]byte("<a><b>2</b></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Errorf("matches = %v", got)
	}
}

func TestEngineMultiDoc(t *testing.T) {
	e := NewEngine([]*xpath.Filter{xpath.MustParse("/a")})
	got, err := e.FilterDocument([]byte("<b/><a/>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0]" {
		t.Errorf("matches = %v", got)
	}
}

func TestBuildTreeShape(t *testing.T) {
	doc := mustBuild(t, `<a c="3"><b>4</b></a>`)
	if doc.Kind != RootNode || len(doc.Children) != 1 {
		t.Fatalf("root = %+v", doc)
	}
	a := doc.Children[0]
	if a.Name != "a" || len(a.Children) != 2 {
		t.Fatalf("a = %+v", a)
	}
	if a.Children[0].Kind != AttrNode || a.Children[0].Name != "@c" {
		t.Errorf("attr = %+v", a.Children[0])
	}
	if a.Children[0].Children[0].Value != "3" {
		t.Errorf("attr value = %+v", a.Children[0].Children[0])
	}
	b := a.Children[1]
	if b.Name != "b" || b.Children[0].Kind != TextNode || b.Children[0].Value != "4" {
		t.Errorf("b = %+v", b)
	}
}
