package xpushstream

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/workload"
)

func TestShardedMatchesPlain(t *testing.T) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, bench.WorkloadParams(55, 120, 3))
	queries := make([]string, len(filters))
	for i, f := range filters {
		queries[i] = f.Source
	}
	plain, err := Compile(queries, Config{TopDownPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7, 120} {
		sh, err := CompileSharded(queries, Config{TopDownPruning: true}, shards)
		if err != nil {
			t.Fatal(err)
		}
		if sh.NumQueries() != len(queries) {
			t.Fatalf("NumQueries = %d", sh.NumQueries())
		}
		gen := datagen.NewGenerator(ds, 56)
		for d := 0; d < 5; d++ {
			doc := gen.GenerateDocument()
			want, err := plain.FilterDocument(doc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.FilterDocument(doc)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("shards=%d doc %d: %v vs %v", shards, d, got, want)
			}
		}
	}
}

func TestShardedDefaults(t *testing.T) {
	sh, err := CompileSharded([]string{"/a", "/b", "/c"}, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() < 1 || sh.NumShards() > 3 {
		t.Errorf("shards = %d", sh.NumShards())
	}
	got, err := sh.FilterDocument([]byte("<b/>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Errorf("matches = %v", got)
	}
	if sh.Stats().Documents != 1 {
		t.Errorf("stats = %+v", sh.Stats())
	}
}

func TestShardedEmptyWorkload(t *testing.T) {
	for _, shards := range []int{0, 1, 4} {
		sh, err := CompileSharded(nil, Config{}, shards)
		if err != nil {
			t.Fatal(err)
		}
		// An empty workload must collapse to one empty shard, not
		// GOMAXPROCS idle engines each spawning a goroutine per document.
		if sh.NumShards() != 1 {
			t.Errorf("shards=%d: NumShards = %d, want 1", shards, sh.NumShards())
		}
		got, err := sh.FilterDocument([]byte("<a><b>1</b></a>"))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("matches = %v", got)
		}
	}
}

func TestShardedMoreShardsThanQueries(t *testing.T) {
	sh, err := CompileSharded([]string{"/a", "/b", "/c"}, Config{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 3 {
		t.Errorf("NumShards = %d, want 3", sh.NumShards())
	}
	got, err := sh.FilterDocument([]byte("<c/>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[2]" {
		t.Errorf("matches = %v", got)
	}
}

func TestShardedBufferReuse(t *testing.T) {
	sh, err := CompileSharded([]string{"/m[v=1]", "/m[v=2]", "//w"}, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated documents through the same engine must stay correct while
	// the parse buffer and result slices are being reused.
	for i := 0; i < 50; i++ {
		want := "[]"
		doc := "<m><v>9</v></m>"
		switch i % 3 {
		case 0:
			doc, want = "<m><v>1</v></m>", "[0]"
		case 1:
			doc, want = "<m><v>2</v><w/></m>", "[1 2]"
		}
		got, err := sh.FilterDocument([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != want {
			t.Fatalf("doc %d: matches = %v, want %s", i, got, want)
		}
	}
	st := sh.Stats()
	if st.Documents != 50 || st.Bytes == 0 {
		t.Errorf("stats: docs=%d bytes=%d", st.Documents, st.Bytes)
	}
	if st.FilterLatency.Count != 50 {
		t.Errorf("latency count = %d", st.FilterLatency.Count)
	}
}

func TestShardedCompileError(t *testing.T) {
	if _, err := CompileSharded([]string{"/a", "bad["}, Config{}, 2); err == nil {
		t.Error("bad query must fail")
	}
}

func TestShardedTrain(t *testing.T) {
	d, err := ParseDTD("<!ELEMENT m (v)><!ELEMENT v (#PCDATA)>")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := CompileSharded([]string{"/m[v=1]", "/m[v=2]"}, Config{TopDownPruning: true, DTD: d}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Train([]byte("<m><v>1</v></m><m><v>2</v></m>")); err != nil {
		t.Fatal(err)
	}
	got, err := sh.FilterDocument([]byte("<m><v>2</v></m>"))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1]" {
		t.Errorf("matches = %v", got)
	}
}

func BenchmarkSharded(b *testing.B) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, bench.WorkloadParams(57, 4000, 5))
	queries := make([]string, len(filters))
	for i, f := range filters {
		queries[i] = f.Source
	}
	doc := datagen.NewGenerator(ds, 58).GenerateDocument()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh, err := CompileSharded(queries, Config{TopDownPruning: true}, shards)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sh.FilterDocument(doc); err != nil { // warm
				b.Fatal(err)
			}
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.FilterDocument(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
