package xpushstream

import (
	"time"

	"repro/internal/core"
	"repro/internal/sax"
	"repro/internal/trace"
)

// Re-exported tracing types, mirroring the obs re-exports in metrics.go so
// applications embedding the engine can trace documents without importing
// the internal package. A nil *TraceRecorder / *TraceCtx is the disabled
// state: every method is a no-op and the filtering hot path stays
// zero-allocation.
type (
	// TraceRecorder samples and retains per-document traces.
	TraceRecorder = trace.Recorder
	// TraceCtx is one in-flight document trace.
	TraceCtx = trace.Ctx
	// TraceSpanID identifies a span within its trace.
	TraceSpanID = trace.SpanID
)

// TraceRoot is the id of a trace's root span.
const TraceRoot = trace.Root

// NewTraceRecorder builds a recorder: sampleEvery picks head sampling
// (trace 1 of every N documents, <= 0 off), slow picks tail capture (keep
// any document slower than the threshold, 0 off). Both off returns nil —
// fully disabled tracing.
func NewTraceRecorder(sampleEvery int, slow time.Duration) *TraceRecorder {
	return trace.New(sampleEvery, slow)
}

// layerSpanNames gives small layer counts a constant span name without a
// per-document allocation; deeper layer stacks share the last name and are
// distinguished by their `layer` attribute.
var layerSpanNames = [...]string{
	"layer0", "layer1", "layer2", "layer3", "layer4", "layer5", "layer6", "layer7",
}

func layerSpanName(li int) string {
	if li < len(layerSpanNames) {
		return layerSpanNames[li]
	}
	return "layerN"
}

// sumCounters adds up the machine-telemetry counters across layers.
func sumCounters(layers []*core.Machine) (c [4]int64) {
	for _, m := range layers {
		b, f, mt, ev := m.Counters()
		c[0] += b
		c[1] += f
		c[2] += mt
		c[3] += ev
	}
	return c
}

// traceStartDocument opens the per-document filter span and captures the
// machine-counter baselines for the end-of-document deltas.
func (d *byteDriver) traceStartDocument() {
	d.tcSpan = d.tc.StartSpan("filter", d.tcParent)
	if cap(d.layerNS) < len(d.e.layers) {
		d.layerNS = make([]int64, len(d.e.layers))
	}
	d.layerNS = d.layerNS[:len(d.e.layers)]
	for i := range d.layerNS {
		d.layerNS[i] = 0
	}
	d.ctrBase = sumCounters(d.e.layers)
}

// traceEndDocument closes the filter span: machine telemetry deltas become
// span attributes, and each layer's accumulated event time becomes a child
// span (stacked sequentially — layers run in lockstep per event, so the
// per-layer times are exclusive and sum to the machine portion of the
// filter span).
func (d *byteDriver) traceEndDocument(matches int) {
	tc, sp := d.tc, d.tcSpan
	now := sumCounters(d.e.layers)
	tc.SetAttr(sp, "states_created", now[0]-d.ctrBase[0])
	tc.SetAttr(sp, "table_flushes", now[1]-d.ctrBase[1])
	tc.SetAttr(sp, "matches", int64(matches))
	tc.SetAttr(sp, "events", now[3]-d.ctrBase[3])
	cur := tc.Offset(d.docStart)
	for li, ns := range d.layerNS {
		id := tc.AddSpan(layerSpanName(li), sp, cur, cur+ns)
		tc.SetAttr(id, "layer", int64(li))
		cur += ns
	}
	tc.EndSpan(sp)
}

// FilterBytesTraced is FilterBytes with span recording: each document in
// data gets a "filter" child span of parent on tc, carrying machine
// telemetry attributes (states created, table flushes, match count, event
// count) and per-layer child spans. A nil tc selects the plain path — call
// sites thread the context unconditionally.
func (e *Engine) FilterBytesTraced(data []byte, tc *TraceCtx, parent TraceSpanID, onDocument func(matches []int)) error {
	if tc == nil {
		return e.FilterBytes(data, onDocument)
	}
	e.bytes.Add(int64(len(data)))
	e.drv.e = e
	e.drv.onDocument = onDocument
	e.drv.tc = tc
	e.drv.tcParent = parent
	err := e.bscan.Parse(data, &e.drv)
	e.drv.onDocument = nil
	e.drv.tc = nil
	if err != nil {
		return err
	}
	for _, m := range e.layers {
		if err := m.Err(); err != nil {
			return err
		}
	}
	return nil
}

// FilterDocumentTraced is FilterDocument with span recording (see
// FilterBytesTraced). A nil tc selects the plain path.
func (e *Engine) FilterDocumentTraced(doc []byte, tc *TraceCtx, parent TraceSpanID) ([]int, error) {
	if tc == nil {
		return e.FilterDocument(doc)
	}
	var out []int
	var n int
	err := e.FilterBytesTraced(doc, tc, parent, func(matches []int) {
		n++
		out = append(out[:0], matches...)
	})
	if err != nil {
		return nil, err
	}
	if n != 1 {
		return nil, errExpectOneDocument(n)
	}
	return out, nil
}

// FilterDocumentTraced filters on an idle worker, recording the wait for a
// free engine as a "pool_wait" span and the filtering itself through the
// worker's traced path. A nil tc selects the plain path.
func (p *Pool) FilterDocumentTraced(doc []byte, tc *TraceCtx, parent TraceSpanID) ([]int, error) {
	if tc == nil {
		return p.FilterDocument(doc)
	}
	wait := tc.StartSpan("pool_wait", parent)
	e := <-p.free
	tc.EndSpan(wait)
	matches, err := e.FilterDocumentTraced(doc, tc, parent)
	p.free <- e
	return matches, err
}

// FilterDocumentTraced is ShardedEngine.FilterDocument with span recording:
// the single parse gets a "parse" span and each shard's filtering a
// per-shard span on its own render track (shards run concurrently). A nil
// tc selects the plain path.
func (s *ShardedEngine) FilterDocumentTraced(doc []byte, tc *TraceCtx, parent TraceSpanID) ([]int, error) {
	return s.filterDocument(doc, tc, parent)
}

// shardSpanNames mirrors layerSpanNames for shard spans.
var shardSpanNames = [...]string{
	"shard0", "shard1", "shard2", "shard3", "shard4", "shard5", "shard6", "shard7",
}

func shardSpanName(sh int) string {
	if sh < len(shardSpanNames) {
		return shardSpanNames[sh]
	}
	return "shardN"
}

// traceShard wraps one shard's filtering in a span on its own track.
func (s *ShardedEngine) traceShard(sh int, tc *TraceCtx, parent TraceSpanID, events []sax.Event) ([]int, error) {
	sp := tc.StartSpan(shardSpanName(sh), parent)
	if tc != nil && len(s.shards) > 1 {
		tc.SetTrack(sp, tc.NextTrack())
	}
	local, err := s.shards[sh].filterParsedDocument(events)
	tc.SetAttr(sp, "shard", int64(sh))
	tc.SetAttr(sp, "matches", int64(len(local)))
	tc.EndSpan(sp)
	return local, err
}

// ShardStats returns each shard's engine statistics, for live machine
// introspection (/debug/machine reports per-shard state counts and sizes).
func (s *ShardedEngine) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, e := range s.shards {
		out[i] = e.Stats()
	}
	return out
}

// ShardQueries returns the number of queries assigned to shard sh.
func (s *ShardedEngine) ShardQueries(sh int) int { return len(s.mapping[sh]) }
