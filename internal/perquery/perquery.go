// Package perquery is the XFilter-style baseline: one finite machine per
// XPath filter, run independently over the stream. It shares nothing — no
// common navigation, no common predicates — which is exactly the strawman
// the paper's introduction argues cannot scale ("a naive approach to query
// evaluation, which computes each query separately, obviously doesn't
// scale"). Each per-query machine is a single-filter XPush machine, so the
// per-event work is O(#queries) instead of O(1).
package perquery

import (
	"repro/internal/afa"
	"repro/internal/core"
	"repro/internal/sax"
	"repro/internal/xpath"
)

// Engine evaluates each filter with its own machine.
type Engine struct {
	machines []*core.Machine
	hits     []bool
}

// NewEngine compiles one machine per filter.
func NewEngine(filters []*xpath.Filter) (*Engine, error) {
	e := &Engine{
		machines: make([]*core.Machine, len(filters)),
		hits:     make([]bool, len(filters)),
	}
	for i, f := range filters {
		a, err := afa.Compile([]*xpath.Filter{f})
		if err != nil {
			return nil, err
		}
		m := core.New(a, core.Options{})
		i := i
		m.OnDocument = func(matches []int32) {
			if len(matches) > 0 {
				e.hits[i] = true
			}
		}
		e.machines[i] = m
	}
	return e, nil
}

// FilterDocument parses the document once and drives the events through
// every machine, returning the sorted oids of matching filters. Sharing the
// parse is a concession to the baseline: the measured gap to the XPush
// machine is purely evaluation work.
func (e *Engine) FilterDocument(data []byte) ([]int32, error) {
	var c sax.Collector
	if err := sax.Parse(data, &c); err != nil {
		return nil, err
	}
	return e.FilterEvents(c.Events)
}

// FilterEvents drives pre-parsed events (one or more documents) through
// every machine; a filter is reported if it matched any document.
func (e *Engine) FilterEvents(events []sax.Event) ([]int32, error) {
	var out []int32
	for i, m := range e.machines {
		e.hits[i] = false
		sax.Drive(events, m)
		if e.hits[i] {
			out = append(out, int32(i))
		}
	}
	return out, nil
}

// NumQueries returns the workload size.
func (e *Engine) NumQueries() int { return len(e.machines) }
