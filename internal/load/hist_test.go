package load

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistIndexRoundTrip checks every value lands in a bucket whose bounds
// contain it, with ~1.6% relative width.
func TestHistIndexRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 1e6, 1e9, 1e12}
	for _, v := range vals {
		i := histIndex(v)
		up := histUpper(i)
		var lo uint64
		if i > 0 {
			lo = histUpper(i - 1)
		}
		if v < lo || v >= up {
			t.Fatalf("value %d mapped to bucket %d with bounds [%d, %d)", v, i, lo, up)
		}
		if v >= 128 && float64(up-lo)/float64(v) > 0.017 {
			t.Fatalf("bucket width %d at value %d exceeds 1.7%% relative error", up-lo, v)
		}
	}
	// Clamp: beyond the range must not panic or overflow the array.
	if i := histIndex(1 << 62); i >= histBuckets {
		t.Fatalf("clamped index %d out of range %d", i, histBuckets)
	}
}

// TestHistQuantiles records a known distribution and checks the estimates.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	// 1000 observations: 1ms, 2ms, ..., 1000ms.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want*98/100 || got > c.want*102/100 {
			t.Fatalf("q%.3f = %v, want within 2%% of %v", c.q, got, c.want)
		}
	}
	if s.Max != uint64(1000*time.Millisecond) {
		t.Fatalf("max = %d", s.Max)
	}
	if m := s.Mean(); m < 498*time.Millisecond || m > 503*time.Millisecond {
		t.Fatalf("mean = %v", m)
	}
	sum := s.Summary()
	if sum.Count != 1000 || sum.P999 == 0 || sum.P50 >= sum.P99 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestHistDeltaSince pins the per-interval view: the delta holds only the
// observations recorded between the two snapshots.
func TestHistDeltaSince(t *testing.T) {
	var h Hist
	h.Record(10 * time.Microsecond)
	h.Record(20 * time.Microsecond)
	prev := h.Snapshot()
	h.Record(5 * time.Millisecond)
	h.Record(6 * time.Millisecond)
	h.Record(7 * time.Millisecond)
	d := h.Snapshot().DeltaSince(prev)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if p50 := d.Quantile(0.5); p50 < 5*time.Millisecond || p50 > 7*time.Millisecond {
		t.Fatalf("delta p50 = %v, want ~6ms (old 10-20us observations must not leak in)", p50)
	}
	// Max advanced during the window: exact.
	if d.Max != uint64(7*time.Millisecond) {
		t.Fatalf("delta max = %d, want %d", d.Max, 7*time.Millisecond)
	}
	// A window with smaller observations: max bounded by its top bucket.
	prev = h.Snapshot()
	h.Record(1 * time.Millisecond)
	d = h.Snapshot().DeltaSince(prev)
	if d.Count != 1 || time.Duration(d.Max) < 1*time.Millisecond || time.Duration(d.Max) > 2*time.Millisecond {
		t.Fatalf("delta after max plateau: count=%d max=%v", d.Count, time.Duration(d.Max))
	}
	// Empty window.
	prev = h.Snapshot()
	d = h.Snapshot().DeltaSince(prev)
	if d.Count != 0 || d.Max != 0 || d.Quantile(0.99) != 0 {
		t.Fatalf("empty delta = %+v", d.Summary())
	}
}

// TestHistConcurrent hammers Record from many goroutines; run under -race.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(r.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot().Summary()
		}
	}()
	wg.Wait()
	<-done
	if c := h.Count(); c != workers*per {
		t.Fatalf("count = %d, want %d", c, workers*per)
	}
}
