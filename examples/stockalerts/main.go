// Stock alerts: selective dissemination with thousands of value predicates.
// Every alert is a threshold on the same few numeric fields, so the atomic
// predicate index answers all of them with one binary search per tick — the
// predicate-sharing scenario the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	xpushstream "repro"
)

const tickDTD = `
<!ELEMENT tick (symbol, price, volume, change)>
<!ELEMENT symbol (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT change (#PCDATA)>
`

var symbols = []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA", "HOOLI", "STARK", "WAYNE", "TYRELL"}

func main() {
	r := rand.New(rand.NewSource(7))

	// 8000 alert subscriptions: price/volume thresholds per symbol.
	var queries []string
	for i := 0; i < 8000; i++ {
		sym := symbols[r.Intn(len(symbols))]
		switch i % 4 {
		case 0:
			queries = append(queries, fmt.Sprintf(`/tick[symbol=%q and price > %d]`, sym, 50+r.Intn(200)))
		case 1:
			queries = append(queries, fmt.Sprintf(`/tick[symbol=%q and price < %d]`, sym, 20+r.Intn(80)))
		case 2:
			queries = append(queries, fmt.Sprintf(`/tick[symbol=%q and volume >= %d]`, sym, 1000*(1+r.Intn(50))))
		default:
			queries = append(queries, fmt.Sprintf(`/tick[symbol=%q and change > %d and volume > %d]`,
				sym, r.Intn(10), 500*(1+r.Intn(20))))
		}
	}

	d, err := xpushstream.ParseDTD(tickDTD)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := xpushstream.Compile(queries, xpushstream.Config{
		TopDownPruning:    true,
		OrderOptimization: true,
		Training:          true,
		DTD:               d,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst of ticks as one XML stream.
	var stream strings.Builder
	const nTicks = 5000
	for i := 0; i < nTicks; i++ {
		fmt.Fprintf(&stream, "<tick><symbol>%s</symbol><price>%d</price><volume>%d</volume><change>%d</change></tick>\n",
			symbols[r.Intn(len(symbols))], 10+r.Intn(300), r.Intn(60000), r.Intn(12))
	}

	fired := 0
	hot := map[int]int{}
	err = engine.FilterBytes([]byte(stream.String()), func(matches []int) {
		fired += len(matches)
		for _, m := range matches {
			hot[m]++
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	s := engine.Stats()
	fmt.Printf("alerts: %d subscriptions, %d ticks, %d alert firings (%.1f per tick)\n",
		len(queries), nTicks, fired, float64(fired)/nTicks)
	fmt.Printf("machine: %d states, avg state size %.1f, hit ratio %.4f\n",
		s.States, s.AvgStateSize, s.HitRatio)

	// The busiest subscription.
	best, bestN := -1, 0
	for q, n := range hot {
		if n > bestN {
			best, bestN = q, n
		}
	}
	if best >= 0 {
		fmt.Printf("hottest alert (%d firings): %s\n", bestN, engine.Query(best))
	}
}
