package sax

import (
	"strings"
	"testing"
)

// FuzzScanner checks that the hand-written scanner never panics, and that
// on accepted inputs the event stream is well-formed: documents and elements
// balance, text only occurs inside elements, and attribute pseudo-elements
// are properly nested.
func FuzzScanner(f *testing.F) {
	seeds := []string{
		`<a c="3"> <b> 4 </b> </a>`,
		`<a><b/><c x="1"/></a>`,
		`<a>&lt;x&gt; &amp; &#65;</a>`,
		`<a><![CDATA[1 < 2]]></a>`,
		`<?xml version="1.0"?><!-- c --><a/>`,
		`<!DOCTYPE a [ <!ELEMENT a (b)> ]><a><b>1</b></a>`,
		`<a>1</a><b>2</b>`,
		`<a`,
		`</a>`,
		`<a x='1&quot;'/>`,
		`<a>&bogus;</a>`,
		"<a>\n  <b> </b>\n</a>",
		`<a x="1" y="2" z="3">mixed<b/>tail</a>`,
		strings.Repeat("<a>", 40) + strings.Repeat("</a>", 40),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		var c Collector
		if err := Parse([]byte(input), &c); err != nil {
			return // rejected inputs need no further checks
		}
		depth := 0
		inDoc := false
		var stack []string
		for i, e := range c.Events {
			switch e.Kind {
			case StartDocument:
				if inDoc {
					t.Fatalf("event %d: nested StartDocument", i)
				}
				inDoc = true
			case EndDocument:
				if !inDoc || depth != 0 {
					t.Fatalf("event %d: bad EndDocument (inDoc=%v depth=%d)", i, inDoc, depth)
				}
				inDoc = false
			case StartElement:
				if !inDoc {
					t.Fatalf("event %d: element outside document", i)
				}
				stack = append(stack, e.Name)
				depth++
			case EndElement:
				if depth == 0 || stack[len(stack)-1] != e.Name {
					t.Fatalf("event %d: unbalanced EndElement(%s)", i, e.Name)
				}
				stack = stack[:len(stack)-1]
				depth--
			case Text:
				if depth == 0 {
					t.Fatalf("event %d: text outside elements: %q", i, e.Data)
				}
				if strings.TrimSpace(e.Data) == "" && !IsAttr(stack[len(stack)-1]) {
					t.Fatalf("event %d: whitespace-only text leaked: %q", i, e.Data)
				}
			}
		}
		if inDoc || depth != 0 {
			t.Fatalf("stream ended inside a document (depth=%d)", depth)
		}
	})
}
