package sax

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DefaultMaxDepth bounds element nesting to protect against pathological or
// adversarial inputs (stack exhaustion on streaming brokers).
const DefaultMaxDepth = 512

// Scanner is a fast, allocation-conscious pull parser producing the modified
// SAX event stream of Sec. 2. It supports a concatenation of several XML
// documents in one buffer (as produced when training data documents are
// concatenated, Sec. 5): each document yields StartDocument ... EndDocument.
//
// Supported syntax: prolog and processing instructions, comments, DOCTYPE
// declarations (including skipping an internal subset), CDATA sections, the
// five predefined entities plus numeric character references, self-closing
// tags, and both attribute quote styles. Whitespace-only character data is
// dropped (the paper's data model has no mixed content); adjacent text and
// CDATA runs are coalesced into one Text event.
type Scanner struct {
	data []byte
	pos  int

	// queue of pending events (attributes expand to three events each).
	queue []Event
	qhead int

	stack    []string
	inDoc    bool
	text     strings.Builder
	hasText  bool
	MaxDepth int
	done     bool
}

// NewScanner returns a Scanner over a buffer holding one or more documents.
func NewScanner(data []byte) *Scanner {
	return &Scanner{data: data, MaxDepth: DefaultMaxDepth}
}

func (s *Scanner) errf(format string, args ...any) error {
	return &ParseError{Offset: s.pos, Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) emit(e Event) { s.queue = append(s.queue, e) }

// Next returns the next event, or io.EOF after the final EndDocument.
func (s *Scanner) Next() (Event, error) {
	for {
		if s.qhead < len(s.queue) {
			e := s.queue[s.qhead]
			s.qhead++
			if s.qhead == len(s.queue) {
				s.queue = s.queue[:0]
				s.qhead = 0
			}
			return e, nil
		}
		if s.done {
			return Event{}, io.EOF
		}
		if err := s.scan(); err != nil {
			return Event{}, err
		}
	}
}

// Run pushes all events to a handler until the input is exhausted.
func (s *Scanner) Run(h Handler) error {
	for {
		e, err := s.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch e.Kind {
		case StartDocument:
			h.StartDocument()
		case StartElement:
			h.StartElement(e.Name)
		case Text:
			h.Text(e.Data)
		case EndElement:
			h.EndElement(e.Name)
		case EndDocument:
			h.EndDocument()
		}
	}
}

// Parse runs a handler over a byte buffer containing one or more documents.
func Parse(data []byte, h Handler) error {
	return NewScanner(data).Run(h)
}

// ParseReader buffers a reader fully, then parses it. Streams of unbounded
// length should be chunked at document boundaries by the caller.
func ParseReader(r io.Reader, h Handler) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return Parse(data, h)
}

// scan consumes input until at least one event is queued or input ends.
func (s *Scanner) scan() error {
	for s.qhead >= len(s.queue) {
		if s.pos >= len(s.data) {
			return s.finish()
		}
		c := s.data[s.pos]
		if c == '<' {
			if err := s.scanMarkup(); err != nil {
				return err
			}
			continue
		}
		if !s.inDoc || len(s.stack) == 0 {
			// Character data outside any element: only whitespace
			// is allowed.
			if isSpace(c) {
				s.pos++
				continue
			}
			return s.errf("character data outside document element")
		}
		if err := s.scanText(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scanner) finish() error {
	if len(s.stack) > 0 {
		return s.errf("unexpected end of input: %d unclosed element(s), innermost %q",
			len(s.stack), s.stack[len(s.stack)-1])
	}
	if s.inDoc {
		s.inDoc = false
		s.emit(Event{Kind: EndDocument})
		return nil
	}
	s.done = true
	return nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// flushText emits accumulated character data as one Text event.
// Whitespace-only accumulations are dropped: the paper's data model has no
// mixed content, so inter-element whitespace is insignificant.
func (s *Scanner) flushText() {
	if !s.hasText {
		return
	}
	data := s.text.String()
	s.text.Reset()
	s.hasText = false
	if strings.TrimSpace(data) == "" {
		return
	}
	s.emit(Event{Kind: Text, Data: data})
}

// scanText consumes character data up to the next '<'.
func (s *Scanner) scanText() error {
	start := s.pos
	for s.pos < len(s.data) && s.data[s.pos] != '<' {
		if s.data[s.pos] == '&' {
			// Append literal prefix, then the decoded entity.
			s.text.Write(s.data[start:s.pos])
			r, err := s.scanEntity()
			if err != nil {
				return err
			}
			s.text.WriteRune(r)
			start = s.pos
			continue
		}
		s.pos++
	}
	s.text.Write(s.data[start:s.pos])
	s.hasText = true
	return nil
}

// scanEntity decodes an entity reference starting at '&'.
func (s *Scanner) scanEntity() (rune, error) {
	end := s.pos + 1
	for end < len(s.data) && s.data[end] != ';' {
		if end-s.pos > 12 {
			return 0, s.errf("malformed entity reference")
		}
		end++
	}
	if end >= len(s.data) {
		return 0, s.errf("unterminated entity reference")
	}
	name := string(s.data[s.pos+1 : end])
	s.pos = end + 1
	switch name {
	case "lt":
		return '<', nil
	case "gt":
		return '>', nil
	case "amp":
		return '&', nil
	case "apos":
		return '\'', nil
	case "quot":
		return '"', nil
	}
	if len(name) > 1 && name[0] == '#' {
		base, digits := 10, name[1:]
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			base, digits = 16, digits[1:]
		}
		n, err := strconv.ParseUint(digits, base, 32)
		if err != nil {
			return 0, s.errf("bad character reference &%s;", name)
		}
		return rune(n), nil
	}
	return 0, s.errf("unknown entity &%s;", name)
}

// scanMarkup handles everything starting with '<'.
func (s *Scanner) scanMarkup() error {
	if s.pos+1 >= len(s.data) {
		return s.errf("unexpected end of input after '<'")
	}
	switch s.data[s.pos+1] {
	case '?':
		return s.skipPI()
	case '!':
		return s.scanBang()
	case '/':
		return s.scanEndTag()
	default:
		return s.scanStartTag()
	}
}

func (s *Scanner) skipPI() error {
	end := indexFrom(s.data, s.pos+2, "?>")
	if end < 0 {
		return s.errf("unterminated processing instruction")
	}
	s.pos = end + 2
	return nil
}

func (s *Scanner) scanBang() error {
	rest := s.data[s.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		end := indexFrom(s.data, s.pos+4, "-->")
		if end < 0 {
			return s.errf("unterminated comment")
		}
		s.pos = end + 3
		return nil
	case hasPrefix(rest, "<![CDATA["):
		end := indexFrom(s.data, s.pos+9, "]]>")
		if end < 0 {
			return s.errf("unterminated CDATA section")
		}
		if !s.inDoc || len(s.stack) == 0 {
			return s.errf("CDATA outside document element")
		}
		data := s.data[s.pos+9 : end]
		if len(data) > 0 {
			s.text.Write(data)
			s.hasText = true
		}
		s.pos = end + 3
		return nil
	case hasPrefix(rest, "<!DOCTYPE"):
		return s.skipDoctype()
	default:
		return s.errf("unsupported markup declaration")
	}
}

// skipDoctype skips a DOCTYPE declaration, including an internal subset.
func (s *Scanner) skipDoctype() error {
	depth := 0
	for i := s.pos; i < len(s.data); i++ {
		switch s.data[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				s.pos = i + 1
				return nil
			}
		}
	}
	return s.errf("unterminated DOCTYPE declaration")
}

func (s *Scanner) scanStartTag() error {
	if !s.inDoc {
		s.inDoc = true
		s.emit(Event{Kind: StartDocument})
	}
	s.flushText()
	i := s.pos + 1
	nameStart := i
	for i < len(s.data) && !isSpace(s.data[i]) && s.data[i] != '>' && s.data[i] != '/' {
		i++
	}
	if i == nameStart {
		return s.errf("missing element name")
	}
	name := string(s.data[nameStart:i])
	if len(s.stack) >= s.MaxDepth {
		return s.errf("maximum element depth %d exceeded", s.MaxDepth)
	}
	s.emit(Event{Kind: StartElement, Name: name})
	// Attributes.
	for {
		for i < len(s.data) && isSpace(s.data[i]) {
			i++
		}
		if i >= len(s.data) {
			return s.errf("unterminated start tag <%s", name)
		}
		if s.data[i] == '>' {
			s.stack = append(s.stack, name)
			s.pos = i + 1
			return nil
		}
		if s.data[i] == '/' {
			if i+1 >= len(s.data) || s.data[i+1] != '>' {
				return s.errf("bad '/' in start tag")
			}
			// Self-closing element.
			s.emit(Event{Kind: EndElement, Name: name})
			s.pos = i + 2
			if len(s.stack) == 0 {
				s.emitEndDocument()
			}
			return nil
		}
		attrStart := i
		for i < len(s.data) && s.data[i] != '=' && !isSpace(s.data[i]) && s.data[i] != '>' {
			i++
		}
		if i >= len(s.data) || s.data[i] != '=' {
			return s.errf("attribute without value in <%s>", name)
		}
		attr := string(s.data[attrStart:i])
		i++ // skip '='
		for i < len(s.data) && isSpace(s.data[i]) {
			i++
		}
		if i >= len(s.data) || (s.data[i] != '"' && s.data[i] != '\'') {
			return s.errf("attribute value must be quoted in <%s>", name)
		}
		quote := s.data[i]
		i++
		valStart := i
		var val strings.Builder
		for i < len(s.data) && s.data[i] != quote {
			if s.data[i] == '&' {
				val.Write(s.data[valStart:i])
				save := s.pos
				s.pos = i
				r, err := s.scanEntity()
				if err != nil {
					return err
				}
				i = s.pos
				s.pos = save
				val.WriteRune(r)
				valStart = i
				continue
			}
			i++
		}
		if i >= len(s.data) {
			return s.errf("unterminated attribute value in <%s>", name)
		}
		val.Write(s.data[valStart:i])
		i++ // skip closing quote
		aname := "@" + attr
		s.emit(Event{Kind: StartElement, Name: aname})
		s.emit(Event{Kind: Text, Data: val.String()})
		s.emit(Event{Kind: EndElement, Name: aname})
	}
}

func (s *Scanner) scanEndTag() error {
	i := s.pos + 2
	nameStart := i
	for i < len(s.data) && s.data[i] != '>' && !isSpace(s.data[i]) {
		i++
	}
	name := string(s.data[nameStart:i])
	for i < len(s.data) && isSpace(s.data[i]) {
		i++
	}
	if i >= len(s.data) || s.data[i] != '>' {
		return s.errf("unterminated end tag </%s", name)
	}
	if len(s.stack) == 0 {
		return s.errf("end tag </%s> with no open element", name)
	}
	top := s.stack[len(s.stack)-1]
	if top != name {
		return s.errf("mismatched end tag: expected </%s>, got </%s>", top, name)
	}
	s.flushText()
	s.stack = s.stack[:len(s.stack)-1]
	s.emit(Event{Kind: EndElement, Name: name})
	s.pos = i + 1
	if len(s.stack) == 0 {
		s.emitEndDocument()
	}
	return nil
}

// emitEndDocument closes the current document after its root element closed.
func (s *Scanner) emitEndDocument() {
	s.inDoc = false
	s.emit(Event{Kind: EndDocument})
}

func hasPrefix(b []byte, p string) bool {
	if len(b) < len(p) {
		return false
	}
	for i := 0; i < len(p); i++ {
		if b[i] != p[i] {
			return false
		}
	}
	return true
}

func indexFrom(b []byte, from int, sub string) int {
	if from > len(b) {
		return -1
	}
	i := bytes.Index(b[from:], []byte(sub))
	if i < 0 {
		return -1
	}
	return from + i
}
