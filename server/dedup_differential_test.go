package server_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/client"
	"repro/server"
)

// diffGroups are pools of textually-distinct but semantically-equivalent
// filters: whitespace and quoting variants, commuted and/or operands,
// conjunctive predicates split into step predicates, and no-op self steps.
// The differential test subscribes the same mix of variants against a
// deduplicating broker and a naive one and demands identical behavior.
var diffGroups = [][]string{
	{`/a[b="x"]`, `/a[ b = "x" ]`, `/a[b='x']`, `/./a[b="x"]`},
	{`//a[b and c]`, `//a[c and b]`, `//a[b][c]`, `//a[c][b]`},
	{`/a/b[c/text()=1][d]`, `/a/b[d and c/text()=1]`},
	{`//m[v>3]`, `//m[ v > 3 ]`},
	{`/m[v=1]`, `/m[v = 1]`},
	{`/a[b or c]`, `/a[c or b]`, `/a[c or b or b]`},
	{`//d[@k="v"]`, `//d[@k='v']`},
	{`/a[not(b)]`, `/a[ not( b ) ]`},
	{`//a[b="x" and c="y"]`, `//a[c="y"][b="x"]`},
	{`//a//b`, `//a//./b`},
}

// randomDiffDoc emits a document that matches a random subset of diffGroups.
func randomDiffDoc(r *rand.Rand) []byte {
	switch r.Intn(5) {
	case 0:
		vals := []string{"x", "y", "z"}
		return []byte(fmt.Sprintf("<a><b>%s</b><c>%s</c></a>",
			vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]))
	case 1:
		return []byte(fmt.Sprintf("<m><v>%d</v></m>", r.Intn(6)))
	case 2:
		return []byte(fmt.Sprintf("<a><b><c>%d</c><d/></b></a>", r.Intn(3)))
	case 3:
		vals := []string{"v", "w"}
		return []byte(fmt.Sprintf(`<d k="%s"/>`, vals[r.Intn(len(vals))]))
	default:
		return []byte("<a><c>y</c></a>")
	}
}

// diffCollector tallies deliveries for one subscriber: the doc multiset and
// the per-filter-id counts, plus the running total of (doc, id) pairs — the
// unit the broker's publish reply counts, so the test can wait for exactly
// the deliveries it is owed.
type diffCollector struct {
	mu    sync.Mutex
	docs  []string
	ids   map[uint64]int
	total int
}

func (c *diffCollector) deliver(d client.Delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = append(c.docs, string(d.Doc))
	for _, id := range d.Filters {
		c.ids[id]++
		c.total++
	}
}

func (c *diffCollector) snapshot() ([]string, map[uint64]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	docs := append([]string(nil), c.docs...)
	sort.Strings(docs)
	ids := make(map[uint64]int, len(c.ids))
	for k, v := range c.ids {
		ids[k] = v
	}
	return docs, ids
}

func (c *diffCollector) totalIDs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// diffSide is one broker under differential test with its subscriber fleet.
type diffSide struct {
	srv  *server.Server
	subs []*client.Client
	cols []*diffCollector
	pub  *client.Client
	// active[i] lists subscriber i's live subscription ids, in subscribe
	// order, so both sides can unsubscribe "the same" subscription.
	active [][]uint64
}

func newDiffSide(t *testing.T, cfg server.Config, nsubs int) *diffSide {
	t.Helper()
	s := &diffSide{srv: startServer(t, cfg)}
	addr := s.srv.Addr()
	for i := 0; i < nsubs; i++ {
		col := &diffCollector{ids: map[uint64]int{}}
		s.cols = append(s.cols, col)
		opt := client.Options{OnDeliver: col.deliver}
		c, err := client.Dial(addr, opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		s.subs = append(s.subs, c)
		s.active = append(s.active, nil)
	}
	s.pub = dialSub(t, addr, nil)
	return s
}

// TestDedupDifferentialMatchSets is the workload-deduplication acceptance
// test: a deduplicating broker and a naive (DedupDisabled) broker run the
// same randomized subscribe/unsubscribe churn — heavy with duplicate and
// equivalent filter variants — and the same document stream. Every publish
// must report the same match count on both sides, and every subscriber must
// end up with the same delivery multiset and per-filter-id counts. Run with
// -race: deliveries land concurrently with churn.
func TestDedupDifferentialMatchSets(t *testing.T) {
	const (
		nsubs  = 5
		rounds = 4
		docs   = 12
	)
	r := rand.New(rand.NewSource(7))

	// Aggressive consolidation thresholds so the deduped side consolidates
	// mid-churn — the differential check then also covers index remapping.
	ded := newDiffSide(t, server.Config{ConsolidateLayers: 4, ConsolidateRemoved: 4}, nsubs)
	naive := newDiffSide(t, server.Config{DedupDisabled: true}, nsubs)

	wantTotal := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < nsubs; i++ {
			// Maybe drop one existing subscription — same ordinal on both
			// sides, so the workloads stay in lockstep.
			if len(ded.active[i]) > 0 && r.Intn(2) == 0 {
				k := r.Intn(len(ded.active[i]))
				for _, s := range []*diffSide{ded, naive} {
					if err := s.subs[i].Unsubscribe(s.active[i][k]); err != nil {
						t.Fatalf("unsubscribe: %v", err)
					}
					s.active[i] = append(s.active[i][:k:k], s.active[i][k+1:]...)
				}
			}
			// Add one or two fresh subscriptions drawn from the variant pools.
			for n := 1 + r.Intn(2); n > 0; n-- {
				g := diffGroups[r.Intn(len(diffGroups))]
				q := g[r.Intn(len(g))]
				for _, s := range []*diffSide{ded, naive} {
					id, err := s.subs[i].Subscribe(q)
					if err != nil {
						t.Fatalf("subscribe %q: %v", q, err)
					}
					s.active[i] = append(s.active[i], id)
				}
			}
		}
		for d := 0; d < docs; d++ {
			doc := randomDiffDoc(r)
			nd, err := ded.pub.Publish(doc)
			if err != nil {
				t.Fatalf("publish (dedup): %v", err)
			}
			nn, err := naive.pub.Publish(doc)
			if err != nil {
				t.Fatalf("publish (naive): %v", err)
			}
			if nd != nn {
				t.Fatalf("round %d doc %s: dedup matched %d subscriptions, naive %d",
					round, doc, nd, nn)
			}
			wantTotal += nd
		}
	}

	// Both sides owe the same (doc, id) pair total; wait for the async
	// delivery planes to drain before comparing multisets.
	for _, s := range []*diffSide{ded, naive} {
		s := s
		waitFor(t, "deliveries to drain", func() bool {
			got := 0
			for _, c := range s.cols {
				got += c.totalIDs()
			}
			return got == wantTotal
		})
	}

	for i := 0; i < nsubs; i++ {
		dDocs, dIDs := ded.cols[i].snapshot()
		nDocs, nIDs := naive.cols[i].snapshot()
		if len(dDocs) != len(nDocs) {
			t.Fatalf("subscriber %d: dedup delivered %d docs, naive %d", i, len(dDocs), len(nDocs))
		}
		for j := range dDocs {
			if dDocs[j] != nDocs[j] {
				t.Fatalf("subscriber %d: delivery multisets diverge at %d: %q vs %q",
					i, j, dDocs[j], nDocs[j])
			}
		}
		// Subscription ids are assigned in subscribe order on both sides, so
		// even the per-filter-id counts must agree exactly.
		if len(dIDs) != len(nIDs) {
			t.Fatalf("subscriber %d: id sets differ: %v vs %v", i, dIDs, nIDs)
		}
		for id, n := range dIDs {
			if nIDs[id] != n {
				t.Fatalf("subscriber %d filter %d: dedup count %d, naive %d", i, id, n, nIDs[id])
			}
		}
	}

	// The whole point: the deduplicated broker compiled fewer machine
	// queries for the same (heavily duplicated) workload.
	if du, nu := ded.srv.NumUniqueQueries(), naive.srv.NumUniqueQueries(); du >= nu {
		t.Fatalf("dedup compiled %d unique queries, naive %d — no sharing happened", du, nu)
	}
	if ds, ns := ded.srv.NumSubscriptions(), naive.srv.NumSubscriptions(); ds != ns {
		t.Fatalf("subscription counts diverged: dedup %d, naive %d", ds, ns)
	}
}
