package client

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Backoff shapes DialRetry's retry schedule: jittered exponential backoff
// between attempts, bounded by the caller's context. The zero value uses
// the defaults noted on each field.
type Backoff struct {
	// Min is the first retry delay (default 50ms).
	Min time.Duration
	// Max caps the delay between attempts (default 2s).
	Max time.Duration
	// Factor multiplies the delay after each failure (default 2).
	Factor float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2) so a
	// reconnect storm of many clients does not re-dial in lockstep
	// (thundering herd) against a broker that just came back.
	Jitter float64
	// MaxAttempts bounds the number of dials (0 = until ctx is done).
	MaxAttempts int
	// Probe, when non-nil, validates each established connection before
	// DialRetry returns it; a failing probe closes the connection and
	// counts as a failed attempt. Use (*Client).Ping to catch listeners
	// that accept and immediately drop connections (a booting or
	// overloaded broker).
	Probe func(*Client) error
	// rng overrides the jitter source for tests.
	rng func() float64
}

func (b Backoff) min() time.Duration {
	if b.Min > 0 {
		return b.Min
	}
	return 50 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 2 * time.Second
}

func (b Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return 2
}

func (b Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return 0.2
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

// delay returns the jittered backoff delay for attempt i (0-based).
func (b Backoff) delay(i int) time.Duration {
	d := float64(b.min())
	for ; i > 0 && d < float64(b.max()); i-- {
		d *= b.factor()
	}
	if m := float64(b.max()); d > m {
		d = m
	}
	if j := b.jitter(); j > 0 {
		rng := b.rng
		if rng == nil {
			rng = rand.Float64
		}
		d *= 1 - j + 2*j*rng() // uniform in [d*(1-j), d*(1+j)]
	}
	return time.Duration(d)
}

// DialRetry dials a broker with jittered exponential backoff until it
// succeeds, the context is done, or Backoff.MaxAttempts is exhausted. It is
// the standard building block for reconnect-storm scenarios and supervised
// subscribers: call it instead of hand-rolling a retry loop around Dial.
//
// The context bounds the whole operation, including each in-flight dial
// (Options.DialTimeout additionally bounds a single attempt, and is
// defaulted to 2s here when unset so one hung SYN cannot eat the budget).
// On give-up the last dial (or probe) error is returned, wrapped with the
// attempt count.
func DialRetry(ctx context.Context, addr string, opt Options, b Backoff) (*Client, error) {
	return DialRetryContext(ctx, addr, opt, b)
}

// DialRetryContext is DialRetry under its context-first name. The context
// cancels the retry loop *promptly*: a cancellation mid-backoff interrupts
// the sleep rather than waiting it out, so a supervisor tearing down (the
// xpushgate connection pool on shutdown, say) never blocks behind a
// multi-second reconnect delay.
func DialRetryContext(ctx context.Context, addr string, opt Options, b Backoff) (*Client, error) {
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 2 * time.Second
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if b.MaxAttempts > 0 && attempt >= b.MaxAttempts {
			return nil, fmt.Errorf("client: dial %s: giving up after %d attempts: %w", addr, attempt, lastErr)
		}
		if attempt > 0 {
			t := time.NewTimer(b.delay(attempt - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, dialRetryCtxErr(addr, attempt, ctx.Err(), lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, dialRetryCtxErr(addr, attempt, err, lastErr)
		}
		c, err := Dial(addr, opt)
		if err != nil {
			lastErr = err
			continue
		}
		if b.Probe != nil {
			if err := b.Probe(c); err != nil {
				c.Close()
				lastErr = fmt.Errorf("probe: %w", err)
				continue
			}
		}
		return c, nil
	}
}

func dialRetryCtxErr(addr string, attempts int, ctxErr, lastErr error) error {
	if lastErr == nil {
		return fmt.Errorf("client: dial %s: %w", addr, ctxErr)
	}
	return fmt.Errorf("client: dial %s: %w after %d attempts (last error: %v)", addr, ctxErr, attempts, lastErr)
}
