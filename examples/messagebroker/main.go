// Message broker: the paper's motivating application (Sec. 1). Subscribers
// register XPath filters; producers publish XML messages; the broker routes
// each message to the subscribers whose filters match, using one shared
// XPush machine for the entire subscription table.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	xpushstream "repro"
)

// Subscription pairs a subscriber with one XPath filter.
type Subscription struct {
	Subscriber string
	Filter     string
}

// Broker routes XML messages to subscribers via a compiled XPush engine.
type Broker struct {
	engine *xpushstream.Engine
	subs   []Subscription
	outs   map[string]chan string
	mu     sync.Mutex
	stats  map[string]int
}

// NewBroker compiles the subscription table.
func NewBroker(subs []Subscription) (*Broker, error) {
	queries := make([]string, len(subs))
	for i, s := range subs {
		queries[i] = s.Filter
	}
	engine, err := xpushstream.Compile(queries, xpushstream.Config{TopDownPruning: true})
	if err != nil {
		return nil, err
	}
	b := &Broker{engine: engine, subs: subs, outs: map[string]chan string{}, stats: map[string]int{}}
	for _, s := range subs {
		if _, ok := b.outs[s.Subscriber]; !ok {
			b.outs[s.Subscriber] = make(chan string, 64)
		}
	}
	return b, nil
}

// Publish routes one message; it returns the set of subscribers notified.
func (b *Broker) Publish(message string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	matches, err := b.engine.FilterDocument([]byte(message))
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, m := range matches {
		sub := b.subs[m].Subscriber
		if !seen[sub] {
			seen[sub] = true
			b.outs[sub] <- message
			b.stats[sub]++
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// Close shuts the subscriber channels.
func (b *Broker) Close() {
	for _, ch := range b.outs {
		close(ch)
	}
}

func main() {
	broker, err := NewBroker([]Subscription{
		{"billing", `//invoice[total > 0]`},
		{"fraud", `//invoice[total > 10000]`},
		{"fraud", `//invoice[customer/@risk = "high"]`},
		{"eu-compliance", `//invoice[customer/country != "US" and not(customer/vat)]`},
		{"analytics", `//invoice`},
		{"analytics", `//payment`},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Consumers drain their channels concurrently.
	var wg sync.WaitGroup
	received := make(map[string]int)
	var mu sync.Mutex
	for name, ch := range broker.outs {
		wg.Add(1)
		go func(name string, ch <-chan string) {
			defer wg.Done()
			for range ch {
				mu.Lock()
				received[name]++
				mu.Unlock()
			}
		}(name, ch)
	}

	messages := []string{
		`<invoice id="1"><customer risk="low"><country>US</country></customer><total>250</total></invoice>`,
		`<invoice id="2"><customer risk="high"><country>DE</country></customer><total>99</total></invoice>`,
		`<invoice id="3"><customer risk="low"><country>FR</country><vat>FR123</vat></customer><total>20000</total></invoice>`,
		`<payment id="4"><amount>250</amount></payment>`,
	}
	for _, msg := range messages {
		to, err := broker.Publish(msg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("routed -> %v\n", to)
	}
	broker.Close()
	wg.Wait()

	fmt.Println("\ndeliveries per subscriber:")
	var names []string
	for n := range received {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %d\n", n, received[n])
	}
}
