package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind selects the Prometheus TYPE line emitted for a metric.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindSummary
	kindGaugeVec
	kindSummaryVec
)

// Labeled is one sample of a labeled gauge family: Labels is the rendered
// label set without braces (`name="orders"`), Value the sample value.
type Labeled struct {
	Labels string
	Value  float64
}

// metric is one registered time series family.
type metric struct {
	name string
	help string
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	counterFn func() int64
	snapFn    func() Snapshot
	vecFn     func() []Labeled
	svecFn    func() []LabeledSnapshot
	quantiles []float64
}

// LabeledSnapshot is one member of a labeled summary family: Labels is the
// rendered label set without braces (`node="10.0.0.1:9310"`), Snap the
// member's observation snapshot.
type LabeledSnapshot struct {
	Labels string
	Snap   Snapshot
}

// Registry holds named metrics and encodes them in the Prometheus text
// exposition format. Registration is typically done once at startup;
// WritePrometheus may be called concurrently with observations.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]bool{}}
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[m.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.byName[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is pulled at encoding time.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	r.add(&metric{name: name, help: help, kind: kindCounter, counterFn: f})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is pulled at encoding time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.add(&metric{name: name, help: help, kind: kindGauge, gaugeFn: f})
}

// GaugeVecFunc registers a labeled gauge family pulled at encoding time:
// f returns one Labeled sample per label set (e.g. one per durable
// subscription). The family may be empty on a given scrape; only the TYPE
// and HELP lines are emitted then.
func (r *Registry) GaugeVecFunc(name, help string, f func() []Labeled) {
	r.add(&metric{name: name, help: help, kind: kindGaugeVec, vecFn: f})
}

// Histogram registers an existing histogram, encoded with cumulative
// le-labelled buckets plus _sum and _count.
func (r *Registry) Histogram(name, help string, h *Histogram) {
	r.HistogramFunc(name, help, h.Snapshot)
}

// HistogramFunc registers a histogram pulled as a Snapshot at encoding time
// (for histograms aggregated across workers on demand).
func (r *Registry) HistogramFunc(name, help string, f func() Snapshot) {
	r.add(&metric{name: name, help: help, kind: kindHistogram, snapFn: f})
}

// SummaryFunc registers a quantile summary pulled as a Snapshot at encoding
// time: the snapshot's estimated quantiles are emitted as a Prometheus
// summary ({quantile="..."} series plus _sum and _count).
func (r *Registry) SummaryFunc(name, help string, quantiles []float64, f func() Snapshot) {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	r.add(&metric{name: name, help: help, kind: kindSummary, snapFn: f, quantiles: quantiles})
}

// SummaryVecFunc registers a labeled summary family pulled at encoding
// time: f returns one LabeledSnapshot per label set (e.g. one per cluster
// node). Each member is emitted as a Prometheus summary — {labels,
// quantile="..."} series plus _sum{labels} and _count{labels}.
func (r *Registry) SummaryVecFunc(name, help string, quantiles []float64, f func() []LabeledSnapshot) {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	r.add(&metric{name: name, help: help, kind: kindSummaryVec, svecFn: f, quantiles: quantiles})
}

// WritePrometheus encodes every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	for _, m := range metrics {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) write(w io.Writer) error {
	typ := [...]string{"counter", "gauge", "histogram", "summary", "gauge", "summary"}[m.kind]
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
		return err
	}
	switch m.kind {
	case kindCounter:
		v := int64(0)
		if m.counter != nil {
			v = m.counter.Value()
		} else if m.counterFn != nil {
			v = m.counterFn()
		}
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, v)
		return err
	case kindGauge:
		v := 0.0
		if m.gauge != nil {
			v = m.gauge.Value()
		} else if m.gaugeFn != nil {
			v = m.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(v))
		return err
	case kindGaugeVec:
		for _, s := range m.vecFn() {
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", m.name, s.Labels, fmtFloat(s.Value)); err != nil {
				return err
			}
		}
		return nil
	case kindHistogram:
		s := m.snapFn()
		bounds := BucketBounds()
		var cum uint64
		for i, b := range s.Buckets {
			cum += b
			le := "+Inf"
			if i < len(bounds) {
				le = fmtFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.name, fmtFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count)
		return err
	case kindSummaryVec:
		for _, ls := range m.svecFn() {
			for _, q := range m.quantiles {
				if _, err := fmt.Fprintf(w, "%s{%s,quantile=%q} %s\n", m.name, ls.Labels, fmtFloat(q), fmtFloat(ls.Snap.Quantile(q))); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", m.name, ls.Labels, fmtFloat(ls.Snap.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", m.name, ls.Labels, ls.Snap.Count); err != nil {
				return err
			}
		}
		return nil
	case kindSummary:
		s := m.snapFn()
		for _, q := range m.quantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", m.name, fmtFloat(q), fmtFloat(s.Quantile(q))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.name, fmtFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count)
		return err
	}
	return nil
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trippable representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
