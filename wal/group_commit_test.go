package wal

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// faultFile wraps the active segment so tests can inject fsync failures.
// Sync consults failSync before touching the disk; delaySync (optional)
// stretches each successful fsync so concurrent appenders pile into the
// next batch.
type faultFile struct {
	*os.File
	mu        sync.Mutex
	failSync  error
	delaySync time.Duration
}

func (f *faultFile) Sync() error {
	f.mu.Lock()
	fail := f.failSync
	delay := f.delaySync
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return fail
	}
	return f.File.Sync()
}

func (f *faultFile) setFailSync(err error) {
	f.mu.Lock()
	f.failSync = err
	f.mu.Unlock()
}

// installFaultFile routes every segment the log opens during the test
// through a shared fault injector and restores the hook afterwards.
func installFaultFile(t *testing.T) *faultFile {
	t.Helper()
	ff := &faultFile{}
	prev := wrapSegFile
	wrapSegFile = func(f *os.File) segFile {
		ff.mu.Lock()
		ff.File = f
		ff.mu.Unlock()
		return ff
	}
	t.Cleanup(func() { wrapSegFile = prev })
	return ff
}

func (f *faultFile) Truncate(size int64) error { return f.File.Truncate(size) }

// TestGroupCommitConcurrentAppends pins the heart of group commit: many
// concurrent FsyncAlways appenders succeed with unique contiguous offsets
// while sharing far fewer fsyncs than appends.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	ff := installFaultFile(t)
	ff.delaySync = 2 * time.Millisecond // make the accumulation window real
	l := openTest(t, Options{Fsync: FsyncAlways})

	const workers, per = 8, 25
	offs := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				off, err := l.Append([]byte(fmt.Sprintf("<doc w='%d' n='%d'/>", w, i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				offs <- off
			}
		}(w)
	}
	wg.Wait()
	close(offs)

	seen := map[uint64]bool{}
	for off := range offs {
		if seen[off] {
			t.Fatalf("offset %d assigned twice", off)
		}
		seen[off] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d offsets, want %d", len(seen), workers*per)
	}
	for i := uint64(0); i < workers*per; i++ {
		if !seen[i] {
			t.Fatalf("offset %d never assigned (offsets must be contiguous)", i)
		}
	}
	st := l.Stats()
	if st.Syncs >= int64(workers*per) {
		t.Fatalf("Syncs = %d for %d appends: no batching happened", st.Syncs, workers*per)
	}
	if snap := l.BatchSizes(); snap.Count == 0 {
		t.Fatal("batch-size histogram recorded nothing")
	}
	if got := readAll(t, l, 0); len(got) != workers*per {
		t.Fatalf("log has %d records, want %d", len(got), workers*per)
	}
}

// TestGroupCommitBatchFsyncFailureRejectsAll pins batch-failure semantics:
// when the single fsync covering a batch fails, every append in the batch
// is rejected, no offsets are assigned, and the records are truncated back
// out so the log stays consistent. Run with -race: the appenders race the
// leader's commit.
func TestGroupCommitBatchFsyncFailureRejectsAll(t *testing.T) {
	ff := installFaultFile(t)
	l := openTest(t, Options{
		Fsync:           FsyncAlways,
		BatchMaxRecords: 4,
		BatchMaxWait:    200 * time.Millisecond,
	})

	bang := errors.New("injected fsync failure")
	ff.setFailSync(bang)

	// BatchMaxWait holds the leader until all four join, so they commit —
	// and fail — as one batch.
	const n = 4
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := l.Append([]byte(fmt.Sprintf("<doc n='%d'/>", i)))
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, bang) {
			t.Fatalf("append error = %v, want the injected fsync failure", err)
		}
	}
	st := l.Stats()
	if st.NextOffset != 0 {
		t.Fatalf("NextOffset = %d after failed batch, want 0", st.NextOffset)
	}
	if st.AppendErrors != n {
		t.Fatalf("AppendErrors = %d, want %d (every append in the batch)", st.AppendErrors, n)
	}
	if st.FsyncErrors == 0 {
		t.Fatal("FsyncErrors not counted")
	}

	// The batch was truncated out: the disk holds zero records and a fresh
	// append lands at offset 0.
	ff.setFailSync(nil)
	off, err := l.Append([]byte("<ok/>"))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if off != 0 {
		t.Fatalf("offset after failed batch = %d, want 0", off)
	}
	if got := readAll(t, l, 0); len(got) != 1 || got[0] != "<ok/>" {
		t.Fatalf("log contents = %q, want just <ok/>", got)
	}
}

// TestIntervalFsyncFailureLatches is the regression test for the
// silently-swallowed interval fsync errors: a persistent failure must be
// counted, surfaced in Stats, and latch the log so appends fail fast
// instead of degrading FsyncInterval to FsyncNever.
func TestIntervalFsyncFailureLatches(t *testing.T) {
	ff := installFaultFile(t)
	l := openTest(t, Options{Fsync: FsyncInterval, FsyncEvery: time.Millisecond})

	bang := errors.New("injected fsync failure")
	ff.setFailSync(bang)
	if _, err := l.Append([]byte("<doc/>")); err != nil {
		t.Fatalf("first append should succeed (fsync is deferred): %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := l.Stats()
		if st.Failed && st.FsyncErrors >= fsyncFailLimit {
			if st.LastFsyncError == "" {
				t.Fatal("LastFsyncError empty after failures")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never latched failure: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Failed(); !errors.Is(err, bang) {
		t.Fatalf("Failed() = %v, want the injected error", err)
	}
	if _, err := l.Append([]byte("<doc/>")); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("append on latched log = %v, want fail-fast error", err)
	}
}

// TestAdaptiveBatchWaitPolicy pins the window-selection rules: an explicit
// flag always wins (negative disables), the adaptive path needs FsyncAlways
// plus evidence of concurrency (previous batch ≥ 2 records) plus room to
// grow (open batch still below the previous batch's size), and the derived
// window is half the fsync EWMA capped at maxAdaptiveBatchWait.
func TestAdaptiveBatchWaitPolicy(t *testing.T) {
	l := openTest(t, Options{Fsync: FsyncAlways})
	l.mu.Lock()
	defer l.mu.Unlock()

	// Cold start: no EWMA, no batch history — never wait.
	if w := l.batchWaitLocked(1); w != 0 {
		t.Fatalf("cold adaptive wait = %v, want 0", w)
	}

	l.fsyncEWMA = 2 * time.Millisecond
	l.lastBatchN = 1
	if w := l.batchWaitLocked(1); w != 0 {
		t.Fatalf("sequential (lastBatchN=1) wait = %v, want 0", w)
	}

	l.lastBatchN = 3
	if w := l.batchWaitLocked(1); w != time.Millisecond {
		t.Fatalf("adaptive wait = %v, want half the EWMA (1ms)", w)
	}

	// A batch that already matched the previous batch's size has nobody
	// left to wait for (the closed-appender-loop case).
	if w := l.batchWaitLocked(3); w != 0 {
		t.Fatalf("caught-up batch wait = %v, want 0", w)
	}

	l.fsyncEWMA = 40 * time.Millisecond
	if w := l.batchWaitLocked(1); w != maxAdaptiveBatchWait {
		t.Fatalf("adaptive wait = %v, want the %v cap", w, maxAdaptiveBatchWait)
	}

	// Explicit flag overrides the adaptive path entirely, including the
	// caught-up skip.
	l.opt.BatchMaxWait = 7 * time.Millisecond
	if w := l.batchWaitLocked(3); w != 7*time.Millisecond {
		t.Fatalf("explicit wait = %v, want 7ms", w)
	}
	l.opt.BatchMaxWait = -1
	if w := l.batchWaitLocked(1); w != 0 {
		t.Fatalf("negative flag wait = %v, want 0 (disabled)", w)
	}

	// Without FsyncAlways there is nothing to amortize.
	l.opt.BatchMaxWait = 0
	l.opt.Fsync = FsyncInterval
	if w := l.batchWaitLocked(1); w != 0 {
		t.Fatalf("FsyncInterval adaptive wait = %v, want 0", w)
	}
}

// TestAdaptiveFsyncEWMATracksLatency pins that committed FsyncAlways appends
// feed the latency EWMA the adaptive window is derived from.
func TestAdaptiveFsyncEWMATracksLatency(t *testing.T) {
	ff := installFaultFile(t)
	ff.delaySync = time.Millisecond
	l := openTest(t, Options{Fsync: FsyncAlways})
	appendN(t, l, 3)
	l.mu.Lock()
	ewma := l.fsyncEWMA
	l.mu.Unlock()
	if ewma < time.Millisecond {
		t.Fatalf("fsyncEWMA = %v after 1ms-delayed fsyncs, want >= 1ms", ewma)
	}
}

// TestGroupCommitSequentialUnchanged pins that uncontended appends behave
// exactly as before group commit: batches of one, one fsync per append
// under FsyncAlways.
func TestGroupCommitSequentialUnchanged(t *testing.T) {
	l := openTest(t, Options{Fsync: FsyncAlways})
	appendN(t, l, 5)
	st := l.Stats()
	if st.Appends != 5 || st.NextOffset != 5 {
		t.Fatalf("Appends=%d NextOffset=%d, want 5/5", st.Appends, st.NextOffset)
	}
	if st.Syncs < 5 {
		t.Fatalf("Syncs = %d, want >= 5 (one per uncontended append)", st.Syncs)
	}
	snap := l.BatchSizes()
	if snap.Count != 5 {
		t.Fatalf("batch count = %d, want 5", snap.Count)
	}
}
