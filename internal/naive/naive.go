// Package naive provides the correctness oracle and scalability strawman for
// the XPush machine: it materialises each XML document as an in-memory tree
// (the DOM representation the paper's streaming approach avoids) and
// evaluates every XPath filter on it directly and independently.
//
// Its semantics define the reference behaviour the XPush machine must agree
// with; the differential tests in internal/core run both on random
// workloads and documents.
package naive

import (
	"repro/internal/sax"
	"repro/internal/xmlval"
	"repro/internal/xpath"
)

// NodeKind discriminates tree nodes.
type NodeKind uint8

const (
	// ElementNode is an element; attributes are pseudo-element children
	// whose name carries the "@" prefix, matching the SAX convention.
	ElementNode NodeKind = iota
	// AttrNode is an attribute pseudo-element.
	AttrNode
	// TextNode is a run of character data.
	TextNode
	// RootNode is the virtual node above the document element (the
	// XPath evaluation root).
	RootNode
)

// Node is one node of the document tree.
type Node struct {
	Kind     NodeKind
	Name     string // element/attribute label
	Value    string // text content for TextNode (and attribute values)
	Children []*Node
}

// Build parses a buffer holding one or more XML documents into trees, one
// per document.
func Build(data []byte) ([]*Node, error) {
	b := &builder{}
	if err := sax.Parse(data, b); err != nil {
		return nil, err
	}
	return b.docs, nil
}

type builder struct {
	docs  []*Node
	stack []*Node
}

func (b *builder) StartDocument() {
	root := &Node{Kind: RootNode}
	b.docs = append(b.docs, root)
	b.stack = b.stack[:0]
	b.stack = append(b.stack, root)
}

func (b *builder) StartElement(name string) {
	kind := ElementNode
	if sax.IsAttr(name) {
		kind = AttrNode
	}
	n := &Node{Kind: kind, Name: name}
	top := b.stack[len(b.stack)-1]
	top.Children = append(top.Children, n)
	b.stack = append(b.stack, n)
}

func (b *builder) Text(data string) {
	top := b.stack[len(b.stack)-1]
	top.Children = append(top.Children, &Node{Kind: TextNode, Value: data})
}

func (b *builder) EndElement(name string) {
	b.stack = b.stack[:len(b.stack)-1]
}

func (b *builder) EndDocument() {}

// Matches reports whether the filter selects at least one node when
// evaluated on the document tree.
func Matches(f *xpath.Filter, doc *Node) bool {
	return len(selectPath(f.Path, []*Node{doc})) > 0
}

// selectPath evaluates a path from a set of context nodes and returns the
// selected nodes.
func selectPath(p *xpath.Path, ctx []*Node) []*Node {
	cur := ctx
	for i := range p.Steps {
		step := &p.Steps[i]
		var next []*Node
		for _, n := range cur {
			next = appendStepMatches(next, n, step)
		}
		cur = dedupNodes(next)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// appendStepMatches appends the nodes selected by one step from one context
// node.
func appendStepMatches(out []*Node, n *Node, step *xpath.Step) []*Node {
	if step.Test.Kind == xpath.Self {
		if step.Axis == xpath.Descendant {
			// Descendant-or-self is rejected by the AFA compiler;
			// mirror that by selecting nothing.
			return out
		}
		if stepPredicatesHold(n, step) {
			out = append(out, n)
		}
		return out
	}
	candidates := directChildren(n)
	if step.Axis == xpath.Descendant {
		// descendant::test ≡ children of n and of every element
		// descendant of n.
		var walk func(*Node)
		walk = func(x *Node) {
			for _, c := range x.Children {
				if testMatches(c, step.Test) && stepPredicatesHold(c, step) {
					out = append(out, c)
				}
				if c.Kind == ElementNode {
					walk(c)
				}
			}
		}
		walk(n)
		return out
	}
	for _, c := range candidates {
		if testMatches(c, step.Test) && stepPredicatesHold(c, step) {
			out = append(out, c)
		}
	}
	return out
}

func directChildren(n *Node) []*Node { return n.Children }

func testMatches(n *Node, t xpath.NodeTest) bool {
	switch t.Kind {
	case xpath.Element:
		return n.Kind == ElementNode && n.Name == t.Name
	case xpath.Attribute:
		return n.Kind == AttrNode && n.Name == "@"+t.Name
	case xpath.AnyElement:
		return n.Kind == ElementNode
	case xpath.AnyAttribute:
		return n.Kind == AttrNode
	case xpath.Text:
		return n.Kind == TextNode
	default:
		return false
	}
}

func stepPredicatesHold(n *Node, step *xpath.Step) bool {
	for _, q := range step.Preds {
		if !evalExpr(q, n) {
			return false
		}
	}
	return true
}

func evalExpr(e xpath.Expr, n *Node) bool {
	switch x := e.(type) {
	case *xpath.And:
		return evalExpr(x.L, n) && evalExpr(x.R, n)
	case *xpath.Or:
		return evalExpr(x.L, n) || evalExpr(x.R, n)
	case *xpath.Not:
		return !evalExpr(x.X, n)
	case *xpath.Exists:
		return len(selectPath(x.Path, []*Node{n})) > 0
	case *xpath.Cmp:
		return evalCmp(x, n)
	default:
		return false
	}
}

// evalCmp evaluates E op const: the relative path's selected nodes are
// reduced to data values and the predicate holds if some value satisfies it.
// A path ending in an element label compares the element's direct text runs
// (the b=1 ≡ b/text()=1 reading documented in DESIGN.md); attributes compare
// their value.
func evalCmp(c *xpath.Cmp, n *Node) bool {
	nodes := selectPath(c.Path, []*Node{n})
	for _, sel := range nodes {
		switch sel.Kind {
		case TextNode:
			if xmlval.Eval(c.Op, xmlval.New(sel.Value), c.Const) {
				return true
			}
		case AttrNode, ElementNode:
			for _, ch := range sel.Children {
				if ch.Kind == TextNode && xmlval.Eval(c.Op, xmlval.New(ch.Value), c.Const) {
					return true
				}
			}
		}
	}
	return false
}

func dedupNodes(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	seen := make(map[*Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Engine is the naive baseline: it evaluates every filter independently on a
// DOM built per document.
type Engine struct {
	filters []*xpath.Filter
}

// NewEngine builds a naive engine over a workload.
func NewEngine(filters []*xpath.Filter) *Engine {
	return &Engine{filters: filters}
}

// FilterDocument parses one document and returns the sorted oids (workload
// indexes) of the filters that match it.
func (e *Engine) FilterDocument(data []byte) ([]int32, error) {
	docs, err := Build(data)
	if err != nil {
		return nil, err
	}
	var out []int32
	for i, f := range e.filters {
		for _, d := range docs {
			if Matches(f, d) {
				out = append(out, int32(i))
				break
			}
		}
	}
	return out, nil
}

// FilterTree returns the sorted oids of filters matching an already built
// tree.
func (e *Engine) FilterTree(doc *Node) []int32 {
	var out []int32
	for i, f := range e.filters {
		if Matches(f, doc) {
			out = append(out, int32(i))
		}
	}
	return out
}
