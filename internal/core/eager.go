package core

import (
	"fmt"

	"repro/internal/afa"
)

// PrecomputeEager materialises the accessible states of the bottom-up XPush
// machine ahead of any input — the eager construction of Sec. 3.2, with its
// no-mixed-content pruning ("we will not compute tbadd if this is
// violated"). After it returns, streams whose labels and values fall inside
// the precomputed alphabet and value partition run entirely on cache hits:
// the "completed" machine of Sec. 7, which the paper measures by running the
// data twice.
//
// The closure seeds the empty state and one value state per interval of the
// atomic predicate index, then alternates tpop over every alphabet symbol
// with tbadd over every (state, addable) pair until fixpoint. The worst
// case is exponential (the reason the machine is normally built lazily), so
// maxStates bounds the exploration; exceeding it returns an error and
// leaves the machine valid (partially warmed).
//
// Only the basic machine supports eager construction: with top-down pruning
// the value and pop transitions are parameterised by top-down states, whose
// reachable set depends on the document structure (exactly the paper's
// observation that TD defeats precomputation).
func (m *Machine) PrecomputeEager(maxStates int) (int, error) {
	if m.opts.TopDown {
		return 0, fmt.Errorf("xpush: eager construction requires the basic (non-top-down) machine")
	}
	if maxStates <= 0 {
		maxStates = 1 << 20
	}

	// Seed the value states, one per interval of the predicate index.
	addable := map[int32]bool{}
	for _, v := range m.index.Representatives() {
		addable[m.valueState(0, v)] = true
	}
	// Concrete input symbols: every interned label plus the two
	// unknown-label sentinels; the wildcards are transition labels, not
	// inputs.
	var inputs []int32
	for sym := int32(0); sym < int32(m.afa.Syms.Len()); sym++ {
		if sym == afa.SymAnyElem || sym == afa.SymAnyAttr {
			continue
		}
		inputs = append(inputs, sym)
	}

	poppedThrough := 0 // how many of bsets have had all pops applied
	addables := make([]int32, 0, len(addable))
	for id := range addable {
		addables = append(addables, id)
	}
	for {
		grew := false
		// tpop closure over new states.
		for ; poppedThrough < len(m.bsets); poppedThrough++ {
			qb := int32(poppedThrough)
			for _, sym := range inputs {
				qaux := m.popState(qb, 0, sym)
				if qaux != 0 && !addable[qaux] {
					addable[qaux] = true
					addables = append(addables, qaux)
				}
			}
			if len(m.bsets) > maxStates {
				m.flushPending()
				return len(m.bsets), fmt.Errorf("xpush: eager construction exceeded %d states", maxStates)
			}
			grew = true
		}
		// tbadd closure: every accumulated state × every addable.
		// Repeated pairs are cheap addTab hits, so the loop simply
		// revisits all pairs each round.
		before := len(m.bsets)
		for qbs := 0; qbs < before; qbs++ {
			for _, qaux := range addables {
				if m.mixedMerge(int32(qbs), qaux) {
					continue
				}
				m.addStates(int32(qbs), qaux)
				if len(m.bsets) > maxStates {
					m.flushPending()
					return len(m.bsets), fmt.Errorf("xpush: eager construction exceeded %d states", maxStates)
				}
			}
		}
		if len(m.bsets) > before {
			grew = true
		}
		if !grew && poppedThrough == len(m.bsets) {
			m.flushPending()
			return len(m.bsets), nil
		}
	}
}

// mixedMerge reports whether merging the two states is excluded by the
// no-mixed-content data model of Sec. 3.2: value-leaf AFA states never
// co-occur with element-matching states, and two value states never merge
// (an element has at most one text run). With this rule the eager closure
// over the running example produces exactly the 22 states of Fig. 3.
func (m *Machine) mixedMerge(qbs, qaux int32) bool {
	aLeaf, aElem := m.leafElem(qbs)
	bLeaf, bElem := m.leafElem(qaux)
	if aLeaf && bLeaf {
		return true
	}
	return (aLeaf || bLeaf) && (aElem || bElem)
}

// leafElem classifies a state's members.
func (m *Machine) leafElem(qb int32) (hasLeaf, hasElem bool) {
	for _, s := range m.bsets[qb] {
		if m.afa.Terminal(s) == afa.LeafTerminal {
			hasLeaf = true
		} else {
			hasElem = true
		}
	}
	return
}
