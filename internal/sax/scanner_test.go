package sax

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func events(t *testing.T, input string) []Event {
	t.Helper()
	var c Collector
	if err := Parse([]byte(input), &c); err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return c.Events
}

func eventString(evs []Event) string {
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

func TestPaperExample(t *testing.T) {
	// Sec. 2: <a c="3"> <b> 4 </b> </a> produces exactly the listed
	// ten events.
	got := eventString(events(t, `<a c="3"> <b> 4 </b> </a>`))
	want := `startDocument startElement(a) startElement(@c) text("3") endElement(@c) ` +
		`startElement(b) text(" 4 ") endElement(b) endElement(a) endDocument`
	if got != want {
		t.Errorf("events:\n got  %s\n want %s", got, want)
	}
}

func TestRunningExampleDocument(t *testing.T) {
	// The Fig. 3 trace document.
	evs := events(t, `<a> <b> 1 </b> <a c="3"> <b> 1 </b> </a> </a>`)
	var kinds []EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{
		StartDocument, StartElement, StartElement, Text, EndElement,
		StartElement, StartElement, Text, EndElement, StartElement,
		Text, EndElement, EndElement, EndElement, EndDocument,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events: %s", len(kinds), eventString(evs))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (%s)", i, kinds[i], want[i], eventString(evs))
		}
	}
}

func TestSelfClosing(t *testing.T) {
	got := eventString(events(t, `<a><b/><c x="1"/></a>`))
	want := `startDocument startElement(a) startElement(b) endElement(b) ` +
		`startElement(c) startElement(@x) text("1") endElement(@x) endElement(c) ` +
		`endElement(a) endDocument`
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
}

func TestEntities(t *testing.T) {
	evs := events(t, `<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos; &#65;&#x42;</a>`)
	if len(evs) != 5 || evs[2].Kind != Text {
		t.Fatalf("events: %s", eventString(evs))
	}
	want := `<x> & "y" 'z' AB`
	if evs[2].Data != want {
		t.Errorf("text = %q, want %q", evs[2].Data, want)
	}
}

func TestEntityInAttribute(t *testing.T) {
	evs := events(t, `<a x="1&lt;2&amp;3"/>`)
	if evs[3].Data != "1<2&3" {
		t.Errorf("attr value = %q", evs[3].Data)
	}
}

func TestCDATA(t *testing.T) {
	evs := events(t, `<a><![CDATA[1 < 2 & raw]]></a>`)
	if evs[2].Data != "1 < 2 & raw" {
		t.Errorf("cdata = %q (%s)", evs[2].Data, eventString(evs))
	}
	// CDATA coalesces with surrounding text.
	evs = events(t, `<a>x<![CDATA[y]]>z</a>`)
	if evs[2].Data != "xyz" {
		t.Errorf("coalesced = %q", evs[2].Data)
	}
}

func TestCommentsAndPIs(t *testing.T) {
	got := eventString(events(t, "<?xml version=\"1.0\"?>\n<!-- c --><a><!-- inside --><b>1</b><?pi data?></a>"))
	want := `startDocument startElement(a) startElement(b) text("1") endElement(b) endElement(a) endDocument`
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
}

func TestDoctypeSkipped(t *testing.T) {
	input := `<!DOCTYPE a [ <!ELEMENT a (b)> <!ELEMENT b (#PCDATA)> ]><a><b>1</b></a>`
	got := eventString(events(t, input))
	if !strings.HasPrefix(got, "startDocument startElement(a)") {
		t.Errorf("doctype not skipped: %s", got)
	}
}

func TestWhitespaceOnlyTextDropped(t *testing.T) {
	evs := events(t, "<a>\n  <b>1</b>\n  <c> </c>\n</a>")
	for _, e := range evs {
		if e.Kind == Text && strings.TrimSpace(e.Data) == "" {
			t.Errorf("whitespace-only text leaked: %q", e.Data)
		}
	}
}

func TestMultipleDocuments(t *testing.T) {
	evs := events(t, `<a>1</a><b>2</b> <c/>`)
	docs := 0
	for _, e := range evs {
		if e.Kind == StartDocument {
			docs++
		}
	}
	if docs != 3 {
		t.Errorf("documents = %d, want 3 (%s)", docs, eventString(evs))
	}
}

func TestScannerErrors(t *testing.T) {
	bad := []string{
		`<a>`,
		`<a></b>`,
		`</a>`,
		`<a attr></a>`,
		`<a x=1></a>`,
		`<a x="1></a>`,
		`<a>&bogus;</a>`,
		`<a>&lt</a>`,
		`text outside`,
		`<a></a>junk`,
		`<a><!-- unterminated</a>`,
		`<a><![CDATA[x]]</a>`,
		`<!DOCTYPE a [ <a></a>`,
		`<`,
		`<a><b></a></b>`,
		`<a>&#xZZ;</a>`,
	}
	for _, in := range bad {
		var c Collector
		if err := Parse([]byte(in), &c); err == nil {
			t.Errorf("Parse(%q) succeeded: %s", in, eventString(c.Events))
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("Parse(%q) error type %T", in, err)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	deep := strings.Repeat("<a>", 600) + strings.Repeat("</a>", 600)
	var c Collector
	err := Parse([]byte(deep), &c)
	if err == nil {
		t.Fatal("expected depth error")
	}
	s := NewScanner([]byte(deep))
	s.MaxDepth = 1000
	if err := s.Run(&Collector{}); err != nil {
		t.Fatalf("custom depth: %v", err)
	}
}

func TestScannerPull(t *testing.T) {
	s := NewScanner([]byte(`<a>1</a>`))
	var got []Event
	for {
		e, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != 5 {
		t.Fatalf("events = %d", len(got))
	}
}

func TestParseReader(t *testing.T) {
	var c Collector
	if err := ParseReader(strings.NewReader(`<a>1</a>`), &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Events) != 5 {
		t.Fatalf("events = %d", len(c.Events))
	}
}

func TestIsAttr(t *testing.T) {
	if !IsAttr("@c") || IsAttr("c") || IsAttr("") {
		t.Error("IsAttr misclassifies")
	}
}

func TestDrive(t *testing.T) {
	src := events(t, `<a c="1"><b>2</b></a>`)
	var c Collector
	Drive(src, &c)
	if eventString(c.Events) != eventString(src) {
		t.Error("Drive did not replay faithfully")
	}
}

// TestDifferentialStd compares the hand-written Scanner against the
// encoding/xml-based reference on randomly generated documents.
func TestDifferentialStd(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		doc := randomXML(r)
		var a, b Collector
		errA := Parse([]byte(doc), &a)
		errB := StdParse([]byte(doc), &b)
		if errA != nil || errB != nil {
			t.Fatalf("doc %q: scanner err %v, std err %v", doc, errA, errB)
		}
		ga, gb := eventString(a.Events), eventString(b.Events)
		if ga != gb {
			t.Fatalf("mismatch on %q:\n scanner %s\n std     %s", doc, ga, gb)
		}
	}
}

var randNames = []string{"a", "b", "c", "item", "x"}

func randomXML(r *rand.Rand) string {
	var sb strings.Builder
	writeRandomElement(r, &sb, 3)
	return sb.String()
}

func writeRandomElement(r *rand.Rand, sb *strings.Builder, depth int) {
	name := randNames[r.Intn(len(randNames))]
	sb.WriteByte('<')
	sb.WriteString(name)
	for i := r.Intn(3); i > 0; i-- {
		fmt.Fprintf(sb, ` %s%d="%d"`, randNames[r.Intn(len(randNames))], i, r.Intn(100))
	}
	if depth == 0 || r.Intn(5) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	if r.Intn(2) == 0 {
		fmt.Fprintf(sb, "%d", r.Intn(1000))
	} else {
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			sb.WriteString("\n  ")
			writeRandomElement(r, sb, depth-1)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("</")
	sb.WriteString(name)
	sb.WriteByte('>')
}

func BenchmarkScanner(b *testing.B) {
	doc := buildBenchDoc(1 << 16)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Parse(doc, &nullHandler{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStdParser(b *testing.B) {
	doc := buildBenchDoc(1 << 16)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := StdParse(doc, &nullHandler{}); err != nil {
			b.Fatal(err)
		}
	}
}

type nullHandler struct{}

func (nullHandler) StartDocument()      {}
func (nullHandler) StartElement(string) {}
func (nullHandler) Text(string)         {}
func (nullHandler) EndElement(string)   {}
func (nullHandler) EndDocument()        {}

func buildBenchDoc(size int) []byte {
	var sb strings.Builder
	sb.WriteString("<root>")
	i := 0
	for sb.Len() < size {
		fmt.Fprintf(&sb, `<item id="%d"><name>n%d</name><price>%d</price></item>`, i, i, i%97)
		i++
	}
	sb.WriteString("</root>")
	return []byte(sb.String())
}
