package xpushstream

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sax"
)

// ShardedEngine partitions one workload across several engines that filter
// each document in parallel. Queries are distributed round-robin.
//
// Use it deliberately: because the warm XPush machine processes each event
// in O(1) time regardless of workload size (the paper's central property),
// workload sharding does NOT speed up a warm machine — every shard still
// consumes every event, so total work grows with the shard count
// (BenchmarkSharded demonstrates this, a nice empirical confirmation of the
// O(1) claim). Sharding pays off in the phases whose cost grows with
// workload size: cold-start lazy construction, very large machine states,
// and per-document match-set assembly on unselective workloads. For raw
// throughput on a warm machine, parallelise over documents with Pool
// instead.
type ShardedEngine struct {
	shards  []*Engine
	mapping [][]int // per shard: local index -> global index
	n       int
}

// CompileSharded compiles a workload split across the given number of
// shards (<= 0 selects GOMAXPROCS).
func CompileSharded(queries []string, cfg Config, shards int) (*ShardedEngine, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(queries) && len(queries) > 0 {
		shards = len(queries)
	}
	if shards == 0 {
		shards = 1
	}
	s := &ShardedEngine{n: len(queries)}
	parts := make([][]string, shards)
	s.mapping = make([][]int, shards)
	for i, q := range queries {
		sh := i % shards
		parts[sh] = append(parts[sh], q)
		s.mapping[sh] = append(s.mapping[sh], i)
	}
	for sh := 0; sh < shards; sh++ {
		e, err := Compile(parts[sh], cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		s.shards = append(s.shards, e)
	}
	return s, nil
}

// NumQueries returns the workload size.
func (s *ShardedEngine) NumQueries() int { return s.n }

// NumShards returns the shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// FilterDocument filters one document on all shards concurrently and
// returns the sorted global indexes of matching filters. The document is
// parsed once; shards consume the shared event sequence.
func (s *ShardedEngine) FilterDocument(doc []byte) ([]int, error) {
	var c sax.Collector
	if err := sax.Parse(doc, &c); err != nil {
		return nil, err
	}
	results := make([][]int, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for sh := range s.shards {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			local, err := s.shards[sh].filterParsedDocument(c.Events)
			if err != nil {
				errs[sh] = err
				return
			}
			global := make([]int, len(local))
			for i, l := range local {
				global[i] = s.mapping[sh][l]
			}
			results[sh] = global
		}(sh)
	}
	wg.Wait()
	var out []int
	for sh := range s.shards {
		if errs[sh] != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, errs[sh])
		}
		out = append(out, results[sh]...)
	}
	sort.Ints(out)
	return out, nil
}

// Train warms every shard with the same data.
func (s *ShardedEngine) Train(data []byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for sh := range s.shards {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			errs[sh] = s.shards[sh].Train(data)
		}(sh)
	}
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return nil
}

// Stats aggregates shard counters (documents/events are per-stream and
// taken from shard 0).
func (s *ShardedEngine) Stats() Stats {
	var out Stats
	var sizeSum float64
	for i, e := range s.shards {
		st := e.Stats()
		out.States += st.States
		out.TopDownStates += st.TopDownStates
		sizeSum += st.AvgStateSize * float64(st.States)
		out.Lookups += st.Lookups
		out.Hits += st.Hits
		out.Matches += st.Matches
		out.MixedContentEvents += st.MixedContentEvents
		out.Flushes += st.Flushes
		if i == 0 {
			out.Documents = st.Documents
			out.Events = st.Events
		}
	}
	if out.States > 0 {
		out.AvgStateSize = sizeSum / float64(out.States)
	}
	if out.Lookups > 0 {
		out.HitRatio = float64(out.Hits) / float64(out.Lookups)
	}
	return out
}
