package afa

import (
	"fmt"
	"testing"

	"repro/internal/xmlval"
	"repro/internal/xpath"
)

// compileRunning compiles the running example P1, P2 of Example 1.1.
func compileRunning(t *testing.T) *AFA {
	t.Helper()
	a, err := Compile([]*xpath.Filter{
		xpath.MustParse("//a[b/text()=1 and .//a[@c>2]]"),
		xpath.MustParse("//a[@c>2 and b/text()=1]"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// State numbering produced by the compiler for the running example
// (isomorphic to Fig. 4 of the paper; the paper numbers 1..13):
//
//	A1: 0=initial(OR, *-loop, a→6)  6=AND{2,3}
//	    2=OR(b→1)   1=leaf[=1]      3=OR(*-loop, a→5)  5=OR(@c→4)  4=leaf[>2]
//	A2: 7=initial(OR, *-loop, a→12) 12=AND{9,11}
//	    9=OR(@c→8)  8=leaf[>2]      11=OR(b→10)        10=leaf[=1]
func TestCompileRunningExampleStructure(t *testing.T) {
	a := compileRunning(t)
	if a.NumStates() != 13 {
		t.Fatalf("states = %d, want 13 (7+6 per Fig. 4); dump:\n%s", a.NumStates(), dumpAll(a))
	}
	if a.NumLeafTerminals() != 4 {
		t.Errorf("leaf terminals = %d, want 4", a.NumLeafTerminals())
	}
	if len(a.TrueTerminals()) != 0 {
		t.Errorf("true terminals = %v, want none", a.TrueTerminals())
	}
	q0, q1 := a.Queries[0], a.Queries[1]
	if q0.Initial != 0 || q1.Initial != 7 {
		t.Errorf("initials = %d, %d", q0.Initial, q1.Initial)
	}
	if !q0.HasDescendant || !q1.HasDescendant {
		t.Error("both queries use //")
	}
	// The first branching states (paper: 2 and 9) are the AND states.
	if a.Kind(q0.Early) != AND || a.Kind(q1.Early) != AND {
		t.Errorf("early states %d(%v), %d(%v) should be the ANDs",
			q0.Early, a.Kind(q0.Early), q1.Early, a.Kind(q1.Early))
	}
	// Leaf predicates match Fig. 4.
	checkLeaf := func(s int32, wantOp xmlval.Op, wantC float64) {
		t.Helper()
		if a.Terminal(s) != LeafTerminal {
			t.Fatalf("state %d not leaf: %s", s, a.DumpState(s))
		}
		op, c := a.Predicate(s)
		if op != wantOp || c.Num != wantC {
			t.Errorf("state %d predicate %v %v", s, op, c)
		}
	}
	checkLeaf(1, xmlval.OpEq, 1)
	checkLeaf(4, xmlval.OpGt, 2)
	checkLeaf(8, xmlval.OpGt, 2)
	checkLeaf(10, xmlval.OpEq, 1)
}

func dumpAll(a *AFA) string {
	out := ""
	for i := 0; i < a.NumStates(); i++ {
		out += a.DumpState(int32(i)) + "\n"
	}
	return out
}

// TestPaperTransitionComputations replays the transition computations worked
// through in Example 3.4, translated to our state numbering:
// paper {4,13}=q1 ↦ {1,10}; {3,12}=q3 ↦ {2,11}; {6,10}=q4 ↦ {5,9};
// {5}=q6 ↦ {3}; {3,5,12}=q8 ↦ {2,3,11}; {1,5}=q14 ↦ {0,3}.
func TestPaperTransitionComputations(t *testing.T) {
	a := compileRunning(t)
	ev := a.NewEvaluator()
	symB, _ := a.Syms.Lookup("b")
	symA, _ := a.Syms.Lookup("a")
	symC, _ := a.Syms.Lookup("@c")

	// tpop(q1, b) = δ⁻¹(eval({1,10}), b) = {2,11}   (paper: {3,12}).
	got := a.DeltaInv(ev.Eval([]int32{1, 10}, nil), symB, nil)
	if fmt.Sprint(got) != "[2 11]" {
		t.Errorf("tpop(q1,b) = %v, want [2 11]", got)
	}
	// tpop(q2, @c) = {5, 9}   (paper: tpop(q2,@c) = {6,10}).
	got = a.DeltaInv(ev.Eval([]int32{4, 8}, nil), symC, nil)
	if fmt.Sprint(got) != "[5 9]" {
		t.Errorf("tpop(q2,@c) = %v, want [5 9]", got)
	}
	// tpop(q4, a) = {3}   (paper: tpop(q4,a) = q6 = {5}).
	got = a.DeltaInv(ev.Eval([]int32{5, 9}, nil), symA, nil)
	if fmt.Sprint(got) != "[3]" {
		t.Errorf("tpop(q4,a) = %v, want [3]", got)
	}
	// eval(q8) = eval({2,3,11}) = {2,3,6,11}: the AND of A1 joins
	// (paper: eval({3,5,12}) = {2,3,5,12}).
	if got := ev.Eval([]int32{2, 3, 11}, nil); fmt.Sprint(got) != "[2 3 6 11]" {
		t.Errorf("eval(q8) = %v, want [2 3 6 11]", got)
	}
	// tpop(q8, a) = {0, 3}   (paper: {1,5} = q14).
	got = a.DeltaInv(ev.Eval([]int32{2, 3, 11}, nil), symA, nil)
	if fmt.Sprint(got) != "[0 3]" {
		t.Errorf("tpop(q8,a) = %v, want [0 3]", got)
	}
}

func TestDeltaForward(t *testing.T) {
	a := compileRunning(t)
	symA, _ := a.Syms.Lookup("a")
	symB, _ := a.Syms.Lookup("b")
	// δ(0, a) = {0, 6}: the initial state self-loops on * and advances.
	if got := a.Delta(0, symA, nil); fmt.Sprint(got) != "[0 6]" {
		t.Errorf("δ(0,a) = %v", got)
	}
	// δ(0, b) = {0}: only the wildcard loop.
	if got := a.Delta(0, symB, nil); fmt.Sprint(got) != "[0]" {
		t.Errorf("δ(0,b) = %v", got)
	}
	// δ(3, a) = {3, 5} (paper δ(5,a) = {5,6}).
	if got := a.Delta(3, symA, nil); fmt.Sprint(got) != "[3 5]" {
		t.Errorf("δ(3,a) = %v", got)
	}
	// Unknown labels only fire wildcards.
	if got := a.Delta(0, SymOtherElem, nil); fmt.Sprint(got) != "[0]" {
		t.Errorf("δ(0,other) = %v", got)
	}
	if got := a.Delta(5, SymOtherAttr, nil); len(got) != 0 {
		t.Errorf("δ(5,otherattr) = %v", got)
	}
}

func TestTrueTerminalsForStructuralFilters(t *testing.T) {
	a := MustCompile(
		xpath.MustParse("/a/b"),
		xpath.MustParse("/x[y]"),
	)
	if len(a.TrueTerminals()) != 2 {
		t.Fatalf("true terminals = %v\n%s", a.TrueTerminals(), dumpAll(a))
	}
	// Early state of a linear filter is its unique terminal.
	if a.Terminal(a.Queries[0].Early) != TrueTerminal {
		t.Errorf("early of /a/b = %s", a.DumpState(a.Queries[0].Early))
	}
}

func TestWildcardAndAttributeCompilation(t *testing.T) {
	a := MustCompile(xpath.MustParse("/*[@*=1]/c"))
	// entry --*--> AND? No: step * has pred [@*=1] and continuation c:
	// entry --*--> AND{predroot, cont}, cont --c--> TT.
	init := a.Queries[0].Initial
	tgt := a.Delta(init, SymOtherElem, nil)
	if len(tgt) != 1 || a.Kind(tgt[0]) != AND {
		t.Fatalf("δ(init, other) = %v\n%s", tgt, dumpAll(a))
	}
}

func TestNestedNotEval(t *testing.T) {
	// /a[not(not(b=1))] must behave like /a[b=1] through two NOT strata.
	a := MustCompile(xpath.MustParse("/a[not(not(b=1))]"))
	ev := a.NewEvaluator()
	// Find the leaf.
	var leaf int32 = -1
	a.EachLeafTerminal(func(s int32, op xmlval.Op, c xmlval.Const) { leaf = s })
	if leaf < 0 {
		t.Fatal("no leaf")
	}
	symB, _ := a.Syms.Lookup("b")
	symA, _ := a.Syms.Lookup("a")
	// With the leaf matched on b's text: popping b yields the inner OR;
	// eval then flips inner NOT off, outer NOT... work the full chain:
	qb := a.DeltaInv(ev.Eval([]int32{leaf}, nil), symB, nil)
	// qb matches the a element: {entry-of-b-path}. eval(qb) must contain
	// the outer NOT (b=1 holds → inner not false → outer not true).
	closed := ev.Eval(qb, nil)
	qaux := a.DeltaInv(closed, symA, nil)
	if fmt.Sprint(qaux) != fmt.Sprintf("[%d]", a.Queries[0].Initial) {
		t.Errorf("not(not(b=1)) with b=1: pop(a) = %v, want initial", qaux)
	}
	// Without the leaf: eval(∅) contains inner NOT but not outer; popping
	// a yields nothing.
	qaux = a.DeltaInv(ev.Eval(nil, nil), symA, nil)
	if len(qaux) != 0 {
		t.Errorf("not(not(b=1)) with no b: pop(a) = %v, want empty", qaux)
	}
}

func TestSingleNotEval(t *testing.T) {
	// /a[not(b=1)]: the NOT fires exactly when the leaf is absent.
	a := MustCompile(xpath.MustParse("/a[not(b=1)]"))
	ev := a.NewEvaluator()
	symA, _ := a.Syms.Lookup("a")
	if got := a.DeltaInv(ev.Eval(nil, nil), symA, nil); fmt.Sprint(got) != fmt.Sprintf("[%d]", a.Queries[0].Initial) {
		t.Errorf("empty qb: pop(a) = %v, want initial", got)
	}
	var leaf int32 = -1
	a.EachLeafTerminal(func(s int32, _ xmlval.Op, _ xmlval.Const) { leaf = s })
	symB, _ := a.Syms.Lookup("b")
	qb := a.DeltaInv(ev.Eval([]int32{leaf}, nil), symB, nil)
	if got := a.DeltaInv(ev.Eval(qb, nil), symA, nil); len(got) != 0 {
		t.Errorf("b=1 present: pop(a) = %v, want empty", got)
	}
}

func TestOrEval(t *testing.T) {
	a := MustCompile(xpath.MustParse("/a[b=1 or c=2]"))
	ev := a.NewEvaluator()
	var leaves []int32
	a.EachLeafTerminal(func(s int32, _ xmlval.Op, _ xmlval.Const) { leaves = append(leaves, s) })
	if len(leaves) != 2 {
		t.Fatalf("leaves = %v", leaves)
	}
	symB, _ := a.Syms.Lookup("b")
	symA, _ := a.Syms.Lookup("a")
	qb := a.DeltaInv(ev.Eval(leaves[:1], nil), symB, nil)
	closed := ev.Eval(qb, nil)
	if got := a.DeltaInv(closed, symA, nil); fmt.Sprint(got) != fmt.Sprintf("[%d]", a.Queries[0].Initial) {
		t.Errorf("or left branch: %v", got)
	}
}

func TestExistsViaTrueTerminalInjection(t *testing.T) {
	// /a[b]: popping an empty <b/> must still match, via injecting the
	// TrueTerminal into eval.
	a := MustCompile(xpath.MustParse("/a[b]"))
	ev := a.NewEvaluator()
	symB, _ := a.Syms.Lookup("b")
	symA, _ := a.Syms.Lookup("a")
	qb := a.DeltaInv(ev.Eval(nil, a.TrueTerminals()), symB, nil)
	if len(qb) != 1 {
		t.Fatalf("pop(b) = %v", qb)
	}
	if got := a.DeltaInv(ev.Eval(qb, a.TrueTerminals()), symA, nil); fmt.Sprint(got) != fmt.Sprintf("[%d]", a.Queries[0].Initial) {
		t.Errorf("pop(a) = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"/a[b//.=1]", // descendant-or-self
	}
	for _, q := range bad {
		if _, err := Compile([]*xpath.Filter{xpath.MustParse(q)}); err == nil {
			t.Errorf("Compile(%q) succeeded", q)
		}
	}
}

func TestEarlyStateLinearQuery(t *testing.T) {
	a := MustCompile(xpath.MustParse("//x/y[z=5]"))
	// Single predicate: the chain is linear; early is the leaf terminal.
	if a.Terminal(a.Queries[0].Early) != LeafTerminal {
		t.Errorf("early = %s", a.DumpState(a.Queries[0].Early))
	}
}

type fixedOrder map[[2]string]bool

func (f fixedOrder) Precedes(a, b string) bool {
	if len(a) > 0 && a[0] == '@' && (len(b) == 0 || b[0] != '@') {
		return true
	}
	return f[[2]string{a, b}]
}

func TestApplyOrder(t *testing.T) {
	a := MustCompile(xpath.MustParse("/person[name='x' and age=3 and phone=5]"))
	a.ApplyOrder(fixedOrder{
		{"name", "age"}: true, {"age", "phone"}: true, {"name", "phone"}: true,
	})
	// Find the AND and its children; each child's prec must list the
	// earlier siblings.
	var and int32 = -1
	for i := 0; i < a.NumStates(); i++ {
		if a.Kind(int32(i)) == AND {
			and = int32(i)
		}
	}
	if and < 0 {
		t.Fatal("no AND state")
	}
	kids := a.Eps(and)
	if len(kids) != 3 {
		t.Fatalf("AND children = %v", kids)
	}
	if len(a.Prec(kids[0])) != 0 {
		t.Errorf("prec(name-branch) = %v", a.Prec(kids[0]))
	}
	if fmt.Sprint(a.Prec(kids[1])) != fmt.Sprintf("[%d]", kids[0]) {
		t.Errorf("prec(age-branch) = %v", a.Prec(kids[1]))
	}
	if len(a.Prec(kids[2])) != 2 {
		t.Errorf("prec(phone-branch) = %v", a.Prec(kids[2]))
	}
}

func TestApplyOrderAttributesFirst(t *testing.T) {
	a := MustCompile(xpath.MustParse("/r[@id=1 and name='x']"))
	a.ApplyOrder(fixedOrder{})
	var and int32 = -1
	for i := 0; i < a.NumStates(); i++ {
		if a.Kind(int32(i)) == AND {
			and = int32(i)
		}
	}
	kids := a.Eps(and)
	// The name branch must require the @id branch first.
	if fmt.Sprint(a.Prec(kids[1])) != fmt.Sprintf("[%d]", kids[0]) {
		t.Errorf("prec(name) = %v", a.Prec(kids[1]))
	}
}

func TestApplyOrderWildcardUnordered(t *testing.T) {
	a := MustCompile(xpath.MustParse("/r[*=1 and b=2]"))
	a.ApplyOrder(fixedOrder{{"*", "b"}: true})
	for i := 0; i < a.NumStates(); i++ {
		if len(a.Prec(int32(i))) != 0 {
			t.Errorf("wildcard branch got ordered: %s", a.DumpState(int32(i)))
		}
	}
}

func TestSymbols(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("a")
	at := s.Intern("@c")
	if s.IsAttr(a) || !s.IsAttr(at) {
		t.Error("IsAttr wrong")
	}
	if s.Intern("a") != a {
		t.Error("intern not idempotent")
	}
	if s.InputSym("a") != a {
		t.Error("InputSym known")
	}
	if s.InputSym("zzz") != SymOtherElem || s.InputSym("@zzz") != SymOtherAttr {
		t.Error("InputSym sentinels")
	}
	if !s.Matches(SymAnyElem, SymOtherElem) || s.Matches(SymAnyElem, SymOtherAttr) {
		t.Error("wildcard matching on sentinels")
	}
	if !s.Matches(a, a) || s.Matches(a, at) {
		t.Error("exact matching")
	}
	if !s.Matches(SymAnyAttr, at) || s.Matches(SymAnyAttr, a) {
		t.Error("@* matching")
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Name(a) != "a" {
		t.Errorf("Name = %q", s.Name(a))
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup invented a symbol")
	}
}

func TestEvaluatorEpochWrap(t *testing.T) {
	a := compileRunning(t)
	ev := a.NewEvaluator()
	ev.epoch = ^uint32(0) - 1
	r1 := fmt.Sprint(ev.Eval([]int32{2, 3, 11}, nil))
	r2 := fmt.Sprint(ev.Eval([]int32{2, 3, 11}, nil)) // wraps here
	r3 := fmt.Sprint(ev.Eval([]int32{2, 3, 11}, nil))
	if r1 != r2 || r2 != r3 {
		t.Errorf("epoch wrap changed results: %s %s %s", r1, r2, r3)
	}
}
