package server_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/server"
)

// startServer runs a broker on loopback ports and registers cleanup.
func startServer(t testing.TB, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// collector gathers deliveries on one subscriber connection.
type collector struct {
	mu   sync.Mutex
	docs []string
	ids  map[uint64]int // filter id -> delivery count
}

func newCollector() *collector { return &collector{ids: map[uint64]int{}} }

func (c *collector) deliver(d client.Delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = append(c.docs, string(d.Doc))
	for _, id := range d.Filters {
		c.ids[id]++
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.docs)
}

func (c *collector) idCount(id uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ids[id]
}

func dialSub(t testing.TB, addr string, col *collector) *client.Client {
	t.Helper()
	opt := client.Options{Timeout: 5 * time.Second}
	if col != nil {
		opt.OnDeliver = col.deliver
	}
	c, err := client.Dial(addr, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeLoopbackEndToEnd is the acceptance scenario: N subscribers with
// distinct filters, one publisher, correct per-subscriber delivery sets,
// zero drops under the block policy, and a drain that flushes every queued
// delivery before the server exits.
func TestServeLoopbackEndToEnd(t *testing.T) {
	srv := startServer(t, server.Config{
		MetricsAddr: "127.0.0.1:0",
		Policy:      server.Block,
		QueueDepth:  256,
	})

	alerts, eu, audit := newCollector(), newCollector(), newCollector()
	cAlerts := dialSub(t, srv.Addr(), alerts)
	cEU := dialSub(t, srv.Addr(), eu)
	cAudit := dialSub(t, srv.Addr(), audit)

	idBig, err := cAlerts.Subscribe(`//order[total > 1000]`)
	if err != nil {
		t.Fatal(err)
	}
	idHigh, err := cAlerts.Subscribe(`//order[@priority = "high"]`)
	if err != nil {
		t.Fatal(err)
	}
	idEU, err := cEU.Subscribe(`//order[customer/country != "US"]`)
	if err != nil {
		t.Fatal(err)
	}
	idAll, err := cAudit.Subscribe(`//order`)
	if err != nil {
		t.Fatal(err)
	}
	if idBig == idHigh || idEU == idAll || idBig == idAll {
		t.Fatalf("filter ids not distinct: %d %d %d %d", idBig, idHigh, idEU, idAll)
	}

	pub := dialSub(t, srv.Addr(), nil)
	docs := []struct {
		xml     string
		matches int
	}{
		{`<order id="1" priority="high"><customer><country>US</country></customer><total>40</total></order>`, 2},
		{`<order id="2" priority="low"><customer><country>DE</country></customer><total>2500</total></order>`, 3},
		{`<order id="3" priority="low"><customer><country>US</country></customer><total>10</total></order>`, 1},
		{`<note>not an order</note>`, 0},
	}
	const rounds = 10
	for round := 0; round < rounds; round++ {
		for _, d := range docs {
			n, err := pub.Publish([]byte(d.xml))
			if err != nil {
				t.Fatal(err)
			}
			if n != d.matches {
				t.Fatalf("publish %q: %d matches, want %d", d.xml, n, d.matches)
			}
		}
	}

	// Graceful drain must flush every queued delivery before closing.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-cAlerts.Done()
	<-cEU.Done()
	<-cAudit.Done()

	// Per-subscriber delivery sets: alerts gets docs 1 and 2 (one delivery
	// each, even though doc 1 matches its filter idHigh and doc 2 its
	// idBig), eu gets doc 2, audit gets docs 1-3.
	if got, want := alerts.count(), 2*rounds; got != want {
		t.Errorf("alerts received %d deliveries, want %d", got, want)
	}
	if got, want := alerts.idCount(idBig), rounds; got != want {
		t.Errorf("alerts filter %d matched %d times, want %d", idBig, got, want)
	}
	if got, want := alerts.idCount(idHigh), rounds; got != want {
		t.Errorf("alerts filter %d matched %d times, want %d", idHigh, got, want)
	}
	if got, want := eu.count(), rounds; got != want {
		t.Errorf("eu received %d deliveries, want %d", got, want)
	}
	if got, want := audit.count(), 3*rounds; got != want {
		t.Errorf("audit received %d deliveries, want %d", got, want)
	}
	if got, want := audit.idCount(idAll), 3*rounds; got != want {
		t.Errorf("audit filter %d matched %d times, want %d", idAll, got, want)
	}
}

// scrape fetches the metrics endpoint as text lines.
func scrape(t testing.TB, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts a single un-labelled series value from a scrape.
func metricValue(t testing.TB, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// TestMetricsAndHealth pins the observability surface: engine metrics,
// per-policy drop counters, queue-depth gauge, and delivery-latency
// quantiles are exported; /healthz answers ok while serving.
func TestMetricsAndHealth(t *testing.T) {
	srv := startServer(t, server.Config{MetricsAddr: "127.0.0.1:0", Policy: server.Block})
	col := newCollector()
	sub := dialSub(t, srv.Addr(), col)
	if _, err := sub.Subscribe(`//m`); err != nil {
		t.Fatal(err)
	}
	pub := dialSub(t, srv.Addr(), nil)
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish([]byte(`<m><v>1</v></m>`)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "deliveries", func() bool { return col.count() == 5 })

	text := scrape(t, srv.MetricsAddr())
	for _, want := range []string{
		"xpush_documents_total 5",
		"xpushserve_publishes_total 5",
		"xpushserve_deliveries_total 5",
		"xpushserve_dropped_total 0",
		"xpushserve_dropped_drop_oldest_total 0",
		"xpushserve_dropped_drop_newest_total 0",
		"xpushserve_dropped_block_total 0",
		"xpushserve_dropped_disconnect_total 0",
		"xpushserve_queue_depth 0",
		"xpushserve_subscriptions 1",
		`xpushserve_delivery_latency_seconds{quantile="0.5"}`,
		"xpushserve_delivery_latency_seconds_count 5",
		"xpushserve_delivery_latency_histogram_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	resp, err := http.Get("http://" + srv.MetricsAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d, want 200", resp.StatusCode)
	}
}

// TestUnsubscribeStopsDeliveries is the RemoveQuery regression: after
// UNSUBSCRIBE, the removed filter stops matching (through the engine's
// removed mask, not just the delivery table) while the connection's other
// filter keeps delivering.
func TestUnsubscribeStopsDeliveries(t *testing.T) {
	srv := startServer(t, server.Config{Policy: server.Block})
	col := newCollector()
	sub := dialSub(t, srv.Addr(), col)
	idA, err := sub.Subscribe(`//m[a = 1]`)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := sub.Subscribe(`//m[b = 2]`)
	if err != nil {
		t.Fatal(err)
	}
	pub := dialSub(t, srv.Addr(), nil)
	doc := []byte(`<m><a>1</a><b>2</b></m>`)
	if n, err := pub.Publish(doc); err != nil || n != 2 {
		t.Fatalf("publish: n=%d err=%v, want 2 matches", n, err)
	}
	waitFor(t, "both filters delivered", func() bool {
		return col.idCount(idA) == 1 && col.idCount(idB) == 1
	})

	if err := sub.Unsubscribe(idA); err != nil {
		t.Fatal(err)
	}
	// The publish match count drops to 1: the removed filter is masked in
	// the engine itself (Engine.RemoveQuery semantics through the server).
	if n, err := pub.Publish(doc); err != nil || n != 1 {
		t.Fatalf("publish after unsubscribe: n=%d err=%v, want 1 match", n, err)
	}
	waitFor(t, "remaining filter delivered", func() bool { return col.idCount(idB) == 2 })
	if got := col.idCount(idA); got != 1 {
		t.Errorf("removed filter %d delivered %d times, want it frozen at 1", idA, got)
	}

	// Unsubscribing someone else's filter must fail.
	other := dialSub(t, srv.Addr(), newCollector())
	if _, err := other.Subscribe(`//x`); err != nil {
		t.Fatal(err)
	}
	if err := other.Unsubscribe(idB); err == nil {
		t.Error("unsubscribing another connection's filter succeeded")
	}
}

// TestSubscriptionChurn drives SUBSCRIBE/UNSUBSCRIBE concurrently with
// document flow: the copy-on-write engine swap must keep every publish on a
// consistent workload generation (run with -race), and the stable audit
// subscriber must see every document under the block policy.
func TestSubscriptionChurn(t *testing.T) {
	for _, backend := range []server.Backend{server.BackendEngine, server.BackendPool} {
		t.Run(string(backend), func(t *testing.T) {
			srv := startServer(t, server.Config{
				Policy:     server.Block,
				QueueDepth: 512,
				Backend:    backend,
				Workers:    2,
			})
			audit := newCollector()
			cAudit := dialSub(t, srv.Addr(), audit)
			if _, err := cAudit.Subscribe(`//m`); err != nil {
				t.Fatal(err)
			}

			const docsN = 120
			const churnN = 40
			var wg sync.WaitGroup
			errs := make(chan error, 2)
			wg.Add(2)
			go func() { // publisher
				defer wg.Done()
				pub := dialSub(t, srv.Addr(), nil)
				for i := 0; i < docsN; i++ {
					doc := fmt.Sprintf(`<m><v>%d</v></m>`, i)
					if n, err := pub.Publish([]byte(doc)); err != nil {
						errs <- fmt.Errorf("publish %d: %w", i, err)
						return
					} else if n < 1 {
						errs <- fmt.Errorf("publish %d: audit filter did not match", i)
						return
					}
				}
			}()
			go func() { // churner
				defer wg.Done()
				churn := dialSub(t, srv.Addr(), newCollector())
				for i := 0; i < churnN; i++ {
					id, err := churn.Subscribe(fmt.Sprintf(`//m[v > %d]`, i))
					if err != nil {
						errs <- fmt.Errorf("churn subscribe %d: %w", i, err)
						return
					}
					if i%2 == 0 {
						if err := churn.Unsubscribe(id); err != nil {
							errs <- fmt.Errorf("churn unsubscribe %d: %w", i, err)
							return
						}
					}
				}
			}()
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}

			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
			<-cAudit.Done()
			if got := audit.count(); got != docsN {
				t.Errorf("audit received %d documents, want %d (zero drops under block)", got, docsN)
			}
		})
	}
}

// TestBackpressurePolicies exercises the drop accounting for a slow
// subscriber under each lossy policy. Documents are large enough that the
// held subscriber's kernel socket buffers fill and its delivery consumer
// blocks, backing deliveries up into the bounded queue.
func TestBackpressurePolicies(t *testing.T) {
	const burst = 64
	bigDoc := []byte("<m><pad>" + strings.Repeat("x", 1<<18) + "</pad></m>")
	t.Run("drop-newest", func(t *testing.T) {
		srv := startServer(t, server.Config{
			MetricsAddr: "127.0.0.1:0",
			Policy:      server.DropNewest,
			QueueDepth:  1,
		})
		slow := newCollector()
		gate := make(chan struct{})
		c, err := client.Dial(srv.Addr(), client.Options{
			Timeout: 5 * time.Second,
			OnDeliver: func(d client.Delivery) {
				<-gate // hold the read loop: queue backs up
				slow.deliver(d)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if _, err := c.Subscribe(`//m`); err != nil {
			t.Fatal(err)
		}
		pub := dialSub(t, srv.Addr(), nil)
		for i := 0; i < burst; i++ {
			if _, err := pub.Publish(bigDoc); err != nil {
				t.Fatal(err)
			}
		}
		close(gate)
		text := scrape(t, srv.MetricsAddr())
		dropped := metricValue(t, text, "xpushserve_dropped_drop_newest_total")
		if dropped == 0 {
			t.Error("expected drops under drop-newest with a held subscriber")
		}
		if total := metricValue(t, text, "xpushserve_dropped_total"); total != dropped {
			t.Errorf("dropped_total %v != policy counter %v", total, dropped)
		}
	})
	t.Run("disconnect", func(t *testing.T) {
		srv := startServer(t, server.Config{
			Policy:     server.Disconnect,
			QueueDepth: 1,
		})
		gate := make(chan struct{})
		c, err := client.Dial(srv.Addr(), client.Options{
			OnDeliver: func(d client.Delivery) { <-gate },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if _, err := c.Subscribe(`//m`); err != nil {
			t.Fatal(err)
		}
		pub := dialSub(t, srv.Addr(), nil)
		for i := 0; i < burst; i++ {
			if _, err := pub.Publish(bigDoc); err != nil {
				t.Fatal(err)
			}
		}
		// The server has closed the connection by now; release the held
		// read loop so it can observe that and close Done.
		close(gate)
		select {
		case <-c.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("slow subscriber was not disconnected")
		}
	})
}

// TestMaxDocBytes: an oversized publish is rejected with a clean protocol
// error instead of unbounded buffering.
func TestMaxDocBytes(t *testing.T) {
	srv := startServer(t, server.Config{MaxDocBytes: 256})
	pub := dialSub(t, srv.Addr(), nil)
	big := []byte("<m>" + strings.Repeat("x", 1024) + "</m>")
	_, err := pub.Publish(big)
	if err == nil {
		t.Fatal("oversized publish succeeded")
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("error %q does not mention the size limit", err)
	}
}

// TestSnapshotWarmStart: a restarted broker resumes with the previous
// workload and its lazily built machine states.
func TestSnapshotWarmStart(t *testing.T) {
	path := t.TempDir() + "/state.xpw"
	cfg := server.Config{
		SnapshotPath:   path,
		InitialQueries: []string{`//m[v > 1]`, `//m[v > 2]`, `//a//b[c = "x"]`},
	}
	srv1 := startServer(t, cfg)
	pub := dialSub(t, srv1.Addr(), nil)
	for i := 0; i < 20; i++ {
		if _, err := pub.Publish([]byte(fmt.Sprintf(`<m><v>%d</v></m>`, i%5))); err != nil {
			t.Fatal(err)
		}
	}
	warm := srv1.Stats()
	if warm.States == 0 {
		t.Fatal("no machine states after warm-up")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2 := startServer(t, cfg)
	boot := srv2.Stats()
	if boot.States != warm.States {
		t.Errorf("warm-start restored %d states, want %d", boot.States, warm.States)
	}
	// The restored workload still filters correctly.
	pub2 := dialSub(t, srv2.Addr(), nil)
	n, err := pub2.Publish([]byte(`<m><v>3</v></m>`))
	if err != nil || n != 2 {
		t.Fatalf("publish on warm-started broker: n=%d err=%v, want 2 matches", n, err)
	}
}

// TestShardedBackendRoutes smoke-tests the sharded deployment end to end.
func TestShardedBackendRoutes(t *testing.T) {
	srv := startServer(t, server.Config{Backend: server.BackendSharded, Workers: 2, Policy: server.Block})
	col := newCollector()
	sub := dialSub(t, srv.Addr(), col)
	ids := make([]uint64, 3)
	for i, q := range []string{`//m[v = 1]`, `//m[v = 2]`, `//m`} {
		id, err := sub.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pub := dialSub(t, srv.Addr(), nil)
	if n, err := pub.Publish([]byte(`<m><v>2</v></m>`)); err != nil || n != 2 {
		t.Fatalf("publish: n=%d err=%v, want 2", n, err)
	}
	waitFor(t, "sharded delivery", func() bool {
		return col.idCount(ids[1]) == 1 && col.idCount(ids[2]) == 1 && col.idCount(ids[0]) == 0
	})
}

// TestPingAndReadTimeout: PING keeps an idle control connection alive and
// round-trips.
func TestPing(t *testing.T) {
	srv := startServer(t, server.Config{ReadTimeout: 200 * time.Millisecond})
	c := dialSub(t, srv.Addr(), nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// An idle connection without subscriptions is reaped by the read
	// deadline.
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle connection was not reaped by the read timeout")
	}
}

// TestUnknownFrameProtoErr pins the version-skew contract: an unknown frame
// type draws a terminal PROTO_ERR (0x8F) frame naming the bad opcode, and
// the server closes the connection instead of continuing to parse a stream
// it no longer understands.
func TestUnknownFrameProtoErr(t *testing.T) {
	srv := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := server.WriteFrame(nc, 0x7e, []byte("bogus")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := server.ReadFrame(bufio.NewReader(nc), 1<<20)
	if err != nil {
		t.Fatalf("expected a PROTO_ERR frame, got read error %v", err)
	}
	if f.Type != server.FrameProtoErr {
		t.Fatalf("frame type = 0x%02x, want PROTO_ERR 0x%02x", f.Type, server.FrameProtoErr)
	}
	if !strings.Contains(string(f.Payload), "0x7e") {
		t.Fatalf("reason %q does not name the offending opcode", f.Payload)
	}
	// The connection must be closed right after: the next read is EOF.
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the connection open after a protocol error")
	}
}

// BenchmarkServeLoopback measures broker round-trip throughput over real
// loopback TCP: one publisher, one subscriber holding three filters, block
// policy (lossless). Reported docs/sec is the publisher's synchronous
// publish rate including delivery fan-out.
func BenchmarkServeLoopback(b *testing.B) {
	srv := startServer(b, server.Config{
		MetricsAddr: "127.0.0.1:0",
		Policy:      server.Block,
		QueueDepth:  1024,
	})
	col := newCollector()
	sub := dialSub(b, srv.Addr(), col)
	for _, q := range []string{`//order[total > 1000]`, `//order[@priority = "high"]`, `//order`} {
		if _, err := sub.Subscribe(q); err != nil {
			b.Fatal(err)
		}
	}
	pub := dialSub(b, srv.Addr(), nil)
	doc := []byte(`<order id="7" priority="high"><customer><country>DE</country></customer><total>2500</total></order>`)
	// Warm the machine before timing.
	for i := 0; i < 100; i++ {
		if _, err := pub.Publish(doc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Publish(doc); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	waitFor(b, "all deliveries flushed", func() bool { return col.count() >= b.N+100 })
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/sec")
	text := scrape(b, srv.MetricsAddr())
	for _, q := range []struct{ quantile, label string }{
		{"0.5", "p50_µs"}, {"0.9", "p90_µs"}, {"0.99", "p99_µs"},
	} {
		var v float64
		prefix := `xpushserve_delivery_latency_seconds{quantile="` + q.quantile + `"} `
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, prefix) {
				fmt.Sscanf(strings.TrimPrefix(line, prefix), "%g", &v)
			}
		}
		b.ReportMetric(v*1e6, q.label)
	}
}
