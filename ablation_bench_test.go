package xpushstream

// Ablation benchmarks for the implementation-level design choices recorded
// in DESIGN.md: the interval-partition predicate index, the unknown-label
// sentinel symbols, value-state precomputation, and the warm-up strategies
// (lazy / trained / eager).

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/afa"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/predindex"
	"repro/internal/workload"
	"repro/internal/xmlval"
	"repro/internal/xpath"
)

// BenchmarkAblationPredicateIndex compares the interval-partition index
// against the naive alternative: evaluating every atomic predicate per
// value.
func BenchmarkAblationPredicateIndex(b *testing.B) {
	type pred struct {
		op xmlval.Op
		c  xmlval.Const
	}
	const n = 20000
	preds := make([]pred, n)
	builder := predindex.NewBuilder()
	for i := range preds {
		op := []xmlval.Op{xmlval.OpEq, xmlval.OpEq, xmlval.OpEq, xmlval.OpLt, xmlval.OpGt}[i%5]
		preds[i] = pred{op, xmlval.NumberConst(float64(i % 5000))}
		builder.Add(int32(i), preds[i].op, preds[i].c)
	}
	ix := builder.Build()
	values := make([]xmlval.Value, 256)
	for i := range values {
		values[i] = xmlval.FromNumber(float64(i * 13 % 5000))
	}
	b.Run("interval-index", func(b *testing.B) {
		for _, v := range values { // warm the touched intervals
			ix.Match(v)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Match(values[i%len(values)])
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		out := make([]int32, 0, n)
		for i := 0; i < b.N; i++ {
			v := values[i%len(values)]
			out = out[:0]
			for j := range preds {
				if xmlval.Eval(preds[j].op, v, preds[j].c) {
					out = append(out, int32(j))
				}
			}
		}
	})
}

// BenchmarkAblationSentinelSymbols measures the unknown-label sentinel: a
// document full of labels no filter mentions costs two shared table entries
// with sentinels, or one entry per distinct label without them (simulated
// by interning every document label into the symbol table).
func BenchmarkAblationSentinelSymbols(b *testing.B) {
	filters := []string{"//known[x=1]", "//other[y=2]"}
	var doc strings.Builder
	doc.WriteString("<root>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&doc, "<u%d><v%d>t</v%d></u%d>", i, i, i, i)
	}
	doc.WriteString("</root>")
	data := []byte(doc.String())

	build := func(intern bool) *core.Machine {
		a, err := afa.Compile(mustFilters(b, filters))
		if err != nil {
			b.Fatal(err)
		}
		if intern {
			for i := 0; i < 400; i++ {
				a.Syms.Intern(fmt.Sprintf("u%d", i))
				a.Syms.Intern(fmt.Sprintf("v%d", i))
			}
		}
		return core.New(a, core.Options{})
	}
	b.Run("sentinels", func(b *testing.B) {
		m := build(false)
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := m.Run(data); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(m.Stats().Lookups-m.Stats().Hits), "misses")
	})
	b.Run("per-label", func(b *testing.B) {
		m := build(true)
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := m.Run(data); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(m.Stats().Lookups-m.Stats().Hits), "misses")
	})
}

// BenchmarkAblationWarmup compares cold lazy start, value-precomputation,
// synthetic training, and full eager construction on first-pass time.
func BenchmarkAblationWarmup(b *testing.B) {
	ds := datagen.ProteinLike()
	filters := workload.Generate(ds, bench.WorkloadParams(9, 500, 3))
	data := datagen.NewGenerator(ds, 10).GenerateBytes(256 << 10)
	mk := func() *afa.AFA {
		a, err := afa.Compile(filters)
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	b.Run("cold-lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := core.New(mk(), core.Options{})
			if err := m.Run(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomputed-values", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := core.New(mk(), core.Options{PrecomputeValues: true})
			if err := m.Run(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trained", func(b *testing.B) {
		td := workload.TrainingData(filters, ds.DTD)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := core.New(mk(), core.Options{})
			if err := m.Train(td); err != nil {
				b.Fatal(err)
			}
			if err := m.Run(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustFilters(tb testing.TB, queries []string) []*xpath.Filter {
	tb.Helper()
	out := make([]*xpath.Filter, len(queries))
	for i, q := range queries {
		f, err := xpath.Parse(q)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = f
	}
	return out
}
