// Package generator provides the seeded index distributions behind the
// xpushload workload generator, modeled on the YCSB generator suite: every
// distribution draws indexes into a pool of items (filters, documents,
// subscriber slots) so workload skew is a property of the draw, not of the
// pool. All generators are deterministic functions of their seed — two
// generators built with the same parameters produce the same sequence —
// which is what makes load scenarios reproducible across runs and machines.
//
// None of the types are safe for concurrent use; give each goroutine its
// own generator (with its own seed) instead of sharing one behind a lock,
// so a scenario's sequence does not depend on goroutine interleaving.
package generator

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator draws item indexes in [0, n) from some distribution.
type Generator interface {
	// Next returns the next index in the sequence.
	Next() int64
	// N returns the current item-pool size.
	N() int64
}

// New constructs a named distribution over [0, n): "uniform", "zipfian",
// "latest", or "sequential". theta is only meaningful for zipfian and
// latest (0 means the YCSB default 0.99).
func New(name string, n int64, theta float64, seed int64) (Generator, error) {
	switch name {
	case "uniform", "":
		return NewUniform(n, seed), nil
	case "zipfian":
		return NewZipfian(n, theta, seed), nil
	case "latest":
		return NewLatest(n, theta, seed), nil
	case "sequential":
		return NewSequential(n), nil
	default:
		return nil, fmt.Errorf("generator: unknown distribution %q (uniform, zipfian, latest, sequential)", name)
	}
}

// Uniform draws every index with equal probability.
type Uniform struct {
	n int64
	r *rand.Rand
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n, seed int64) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{n: n, r: rand.New(rand.NewSource(seed))}
}

// Next returns a uniformly distributed index.
func (u *Uniform) Next() int64 { return u.r.Int63n(u.n) }

// N returns the pool size.
func (u *Uniform) N() int64 { return u.n }

// Sequential cycles 0, 1, ..., n-1, 0, ... — the round-robin baseline.
type Sequential struct {
	n, i int64
}

// NewSequential returns a sequential generator over [0, n).
func NewSequential(n int64) *Sequential {
	if n < 1 {
		n = 1
	}
	return &Sequential{n: n}
}

// Next returns the next index in round-robin order.
func (s *Sequential) Next() int64 {
	v := s.i
	s.i = (s.i + 1) % s.n
	return v
}

// N returns the pool size.
func (s *Sequential) N() int64 { return s.n }

// DefaultZipfTheta is the YCSB-standard zipfian skew constant: the head
// item draws a few percent of all traffic and popularity falls off as
// 1/rank^0.99.
const DefaultZipfTheta = 0.99

// Zipfian draws index k with probability proportional to 1/(k+1)^theta,
// using the Gray et al. "Quickly generating billion-record synthetic
// databases" algorithm (the one YCSB uses). Unlike math/rand's Zipf it
// supports the interesting regime theta < 1, where the tail still carries
// real mass — the regime subscriber-popularity distributions live in.
type Zipfian struct {
	n     int64
	theta float64
	r     *rand.Rand

	alpha, zetan, eta, zeta2 float64
}

// NewZipfian returns a zipfian generator over [0, n) with skew theta
// (0 < theta < 1; 0 means DefaultZipfTheta). Item 0 is the most popular.
func NewZipfian(n int64, theta float64, seed int64) *Zipfian {
	if n < 1 {
		n = 1
	}
	if theta <= 0 {
		theta = DefaultZipfTheta
	}
	z := &Zipfian{n: n, theta: theta, r: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns a zipfian-distributed index (0 = most popular).
func (z *Zipfian) Next() int64 {
	if z.n == 1 {
		return 0
	}
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}

// N returns the pool size.
func (z *Zipfian) N() int64 { return z.n }

// Latest is the YCSB "latest" distribution: a zipfian over recency, so the
// most recently inserted item is the most popular. It models subscribers
// piling onto whatever filter is currently hot. Insert advances the
// frontier; Next draws indexes biased toward it.
type Latest struct {
	z    *Zipfian
	last int64 // most recently inserted index (the popularity head)
}

// NewLatest returns a latest generator whose frontier starts at n-1 (the
// pool is considered fully inserted).
func NewLatest(n int64, theta float64, seed int64) *Latest {
	if n < 1 {
		n = 1
	}
	return &Latest{z: NewZipfian(n, theta, seed), last: n - 1}
}

// Next returns an index biased toward the most recently inserted item.
func (l *Latest) Next() int64 {
	off := l.z.Next() // 0 = most recent
	idx := l.last - off
	if idx < 0 {
		idx += l.z.N()
	}
	return idx
}

// Insert advances the recency frontier to idx (monotonic in normal use:
// the caller inserts n, n+1, ... modulo the pool).
func (l *Latest) Insert(idx int64) {
	if idx >= 0 && idx < l.z.N() {
		l.last = idx
	}
}

// N returns the pool size.
func (l *Latest) N() int64 { return l.z.N() }
